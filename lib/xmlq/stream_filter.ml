type report = { n : int; scans : int; registers : int; tapes : int }

let seek tp target =
  while Tape.position tp < target do
    Tape.move tp Tape.Right
  done;
  while Tape.position tp > target do
    Tape.move tp Tape.Left
  done

let read_at tp pos =
  seek tp pos;
  Tape.read tp

(* One forward scan of the serialized document: the set1/set2 string
   contents are spilled onto two tapes. Internal state: a bounded tag
   buffer, one value register, flags and counters. *)
let extract input tx ty =
  let nx = ref 0 and ny = ref 0 in
  let tag = Buffer.create 16 in
  let value = Buffer.create 64 in
  let in_tag = ref false in
  let in_string = ref false in
  let current_set = ref 0 in
  Tape.iter_right input (fun c ->
      match c with
      | '<' ->
          if !in_tag then invalid_arg "Stream_filter: nested '<'";
          in_tag := true;
          Buffer.clear tag
      | '>' ->
          if not !in_tag then invalid_arg "Stream_filter: stray '>'";
          in_tag := false;
          (match Buffer.contents tag with
          | "set1" -> current_set := 1
          | "set2" -> current_set := 2
          | "string" ->
              in_string := true;
              Buffer.clear value
          | "/string" ->
              in_string := false;
              let v = Buffer.contents value in
              if !current_set = 1 then begin
                seek tx !nx;
                Tape.write tx v;
                incr nx
              end
              else if !current_set = 2 then begin
                seek ty !ny;
                Tape.write ty v;
                incr ny
              end
              else invalid_arg "Stream_filter: string outside sets"
          | _ -> ())
      | c ->
          if !in_tag then Buffer.add_char tag c
          else if !in_string then Buffer.add_char value c);
  if !in_tag then invalid_arg "Stream_filter: unterminated tag";
  (!nx, !ny)

let with_extracted ?observe stream f =
  let g = Tape.Group.create () in
  (match observe with None -> () | Some f -> f g);
  let meter = Tape.Group.meter g in
  let input =
    Tape.Group.tape_of_list g ~name:"stream" ~blank:' '
      (List.init (String.length stream) (String.get stream))
  in
  let tx = Tape.Group.tape g ~name:"set1-strings" ~blank:"" () in
  let ty = Tape.Group.tape g ~name:"set2-strings" ~blank:"" () in
  let verdict =
    Tape.Meter.with_units meter 8 (fun () ->
        let nx, ny = extract input tx ty in
        if nx > 1 then Extsort.sort_tape g tx ~len:nx;
        if ny > 1 then Extsort.sort_tape g ty ~len:ny;
        f tx nx ty ny)
  in
  let rep = Tape.Group.report g in
  ( verdict,
    {
      n = String.length stream;
      scans = rep.Tape.Group.scans_used;
      registers = rep.Tape.Group.internal_peak_units;
      tapes = List.length rep.Tape.Group.reversals_by_tape;
    } )

let figure1_filter ?observe stream =
  (* does some set1 string miss from set2? (one selected node exists) *)
  with_extracted ?observe stream (fun tx nx ty ny ->
      let missing = ref false in
      let j = ref 0 in
      for i = 0 to nx - 1 do
        let v = read_at tx i in
        while !j < ny && String.compare (read_at ty !j) v < 0 do
          incr j
        done;
        if !j >= ny || not (String.equal (read_at ty !j) v) then missing := true
      done;
      !missing)

let theorem12_query ?observe stream =
  (* set equality of the two sides: compare deduplicated sorted streams *)
  with_extracted ?observe stream (fun tx nx ty ny ->
      let next_distinct tp len i =
        let v = read_at tp i in
        let j = ref (i + 1) in
        while !j < len && String.equal (read_at tp !j) v do
          incr j
        done;
        !j
      in
      let rec go i j =
        if i >= nx && j >= ny then true
        else if i >= nx || j >= ny then false
        else if not (String.equal (read_at tx i) (read_at ty j)) then false
        else go (next_distinct tx nx i) (next_distinct ty ny j)
      in
      go 0 0)
