(** Streaming companion to the XPath filter (the upper-bound side of
    Theorem 13's tightness).

    Theorem 13 shows Figure 1's filter needs [Ω(log N)] reversals in
    the sublogarithmic-memory regime; by Corollary 7 its decision —
    "is some [set1] string missing from [set2]?" — {e is} computable
    with [O(log N)] reversals and constant internal registers. This
    module implements that: one forward scan of the serialized document
    stream extracts the two string multisets onto tapes, then a
    sort-and-merge subset test decides the filter. *)

type report = { n : int; scans : int; registers : int; tapes : int }

val figure1_filter :
  ?observe:(Tape.Group.t -> unit) -> string -> bool * report
(** [figure1_filter stream] — does the Figure 1 XPath query select at
    least one node of the document serialized as [stream]? Measured on
    the tape substrate; [n] is the stream length. [observe] is called
    with the run's tape group right after creation (the hook the query
    and serve layers use to attach an [Obs.Ledger.Recorder]).
    @raise Invalid_argument if the stream is not a serialized Section 4
    instance document. *)

val theorem12_query :
  ?observe:(Tape.Group.t -> unit) -> string -> bool * report
(** The Theorem 12 XQuery decision ("the two string sets are equal"),
    streaming: the same extraction scan, then sorted deduplicated
    comparison of the two sides. Also [O(log N)] scans — the
    deterministic counterpart whose optimality Theorem 12 establishes.
    @raise Invalid_argument on malformed streams (as above). *)
