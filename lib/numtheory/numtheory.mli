(** Number theory for the fingerprinting upper bound (Theorem 8(a)).

    The algorithm of Theorem 8(a) needs: a uniformly random prime
    [p1 ≤ k] for [k = m³·n·log(m³·n)]; an arbitrary prime
    [p2 ∈ (3k, 6k]] (Bertrand's postulate); arithmetic modulo [p2]; and
    the residue of a long bit string modulo [p1], computed in one
    streaming pass. All arithmetic stays within OCaml's 63-bit native
    integers: multiplication modulo large moduli uses binary
    (double-and-add) reduction, so moduli up to [2^61] are safe without
    an external bignum dependency. *)

val add_mod : int -> int -> int -> int
(** [add_mod a b m] is [(a + b) mod m] without overflow for
    [0 ≤ a, b < m < 2^61]. *)

val mul_mod : int -> int -> int -> int
(** [mul_mod a b m] is [(a · b) mod m], overflow-safe for [m < 2^61];
    uses direct multiplication when [m < 2^31]. Arguments are reduced
    first. @raise Invalid_argument if [m <= 0]. *)

val pow_mod : int -> int -> int -> int
(** [pow_mod b e m] is [b^e mod m] for [e ≥ 0], overflow-safe.
    @raise Invalid_argument if [e < 0] or [m <= 0]. *)

val is_prime : int -> bool
(** Deterministic Miller–Rabin, correct for all [n < 2^62] (uses the
    standard 12-witness base set valid below 3.3·10^24). *)

val next_prime : int -> int
(** Smallest prime strictly greater than the argument. *)

val primes_upto : int -> int list
(** Sieve of Eratosthenes; intended for tests and small experiments. *)

val count_primes_upto : int -> int

val primes_le : int -> int array
(** The primes [≤ k], sieved once per distinct [k] and memoized
    (domain-safe). Backs {!random_prime_le} below the cache threshold.
    @raise Invalid_argument if [k < 2]. *)

val prime_cache_threshold : int
(** Largest [k] the {!primes_le} memo will sieve; above it
    {!random_prime_le} falls back to rejection sampling. *)

val random_prime_le : Random.State.t -> int -> int
(** [random_prime_le st k] is a uniformly random prime [p ≤ k]: an
    index into the memoized sieve for [k ≤ prime_cache_threshold]
    (one random draw, no Miller–Rabin), rejection sampling over
    [\[2, k\]] beyond it.
    @raise Invalid_argument if [k < 2]. *)

val bertrand_prime : int -> int
(** [bertrand_prime k] is the smallest prime in [(3k, 6k]]; its
    existence for [k ≥ 1] is Bertrand's postulate (step (3) of the
    Theorem 8(a) algorithm).
    @raise Invalid_argument if [k < 1]. *)

val random_unit : Random.State.t -> int -> int
(** [random_unit st p] is uniform in [{1,..,p−1}] (step (4)).
    @raise Invalid_argument if [p < 2]. *)

val mod_of_bits : Util.Bitstring.t -> modulus:int -> int
(** [mod_of_bits v ~modulus:p] is the value of [v] (read MSB-first as a
    binary integer) modulo [p], computed by the streaming recurrence
    [e ← (2e + bit) mod p] — one left-to-right scan, O(log p) state, as
    required for step (5) of the Theorem 8(a) algorithm.
    @raise Invalid_argument if [p <= 0]. *)

val fingerprint_k : m:int -> n:int -> int
(** The paper's [k := m³ · n · ⌈log2 (m³ · n)⌉] parameter.
    @raise Invalid_argument if the value would overflow 62 bits. *)
