let add_mod a b m =
  (* a, b < m < 2^61 so a + b < 2^62: no overflow. *)
  let s = a + b in
  if s >= m then s - m else s

let mul_mod a b m =
  if m <= 0 then invalid_arg "Numtheory.mul_mod: modulus";
  let a = ((a mod m) + m) mod m in
  let b = ((b mod m) + m) mod m in
  if m < 1 lsl 31 then a * b mod m
  else begin
    (* double-and-add: invariant acc, base < m < 2^61 *)
    let acc = ref 0 and base = ref a and e = ref b in
    while !e > 0 do
      if !e land 1 = 1 then acc := add_mod !acc !base m;
      base := add_mod !base !base m;
      e := !e lsr 1
    done;
    !acc
  end

let pow_mod b e m =
  if e < 0 then invalid_arg "Numtheory.pow_mod: negative exponent";
  if m <= 0 then invalid_arg "Numtheory.pow_mod: modulus";
  let acc = ref 1 and base = ref (((b mod m) + m) mod m) and e = ref e in
  while !e > 0 do
    if !e land 1 = 1 then acc := mul_mod !acc !base m;
    base := mul_mod !base !base m;
    e := !e lsr 1
  done;
  !acc

(* Deterministic Miller-Rabin witness set, valid for n < 3.3e24. *)
let mr_witnesses = [ 2; 3; 5; 7; 11; 13; 17; 19; 23; 29; 31; 37 ]

let is_prime n =
  if n < 2 then false
  else if n < 4 then true
  else if n mod 2 = 0 then false
  else begin
    (* n - 1 = d * 2^s with d odd *)
    let s = ref 0 and d = ref (n - 1) in
    while !d land 1 = 0 do
      incr s;
      d := !d lsr 1
    done;
    let witnesses_pass a =
      let a = a mod n in
      if a = 0 then true
      else begin
        let x = ref (pow_mod a !d n) in
        if !x = 1 || !x = n - 1 then true
        else begin
          let ok = ref false and i = ref 1 in
          while (not !ok) && !i < !s do
            x := mul_mod !x !x n;
            if !x = n - 1 then ok := true;
            incr i
          done;
          !ok
        end
      end
    in
    List.for_all witnesses_pass mr_witnesses
  end

let next_prime n =
  let c = ref (max 2 (n + 1)) in
  while not (is_prime !c) do
    incr c
  done;
  !c

let primes_upto n =
  if n < 2 then []
  else begin
    let sieve = Array.make (n + 1) true in
    sieve.(0) <- false;
    sieve.(1) <- false;
    let i = ref 2 in
    while !i * !i <= n do
      if sieve.(!i) then begin
        let j = ref (!i * !i) in
        while !j <= n do
          sieve.(!j) <- false;
          j := !j + !i
        done
      end;
      incr i
    done;
    let acc = ref [] in
    for p = n downto 2 do
      if sieve.(p) then acc := p :: !acc
    done;
    !acc
  end

let count_primes_upto n = List.length (primes_upto n)

(* Per-k memo of the sieve, for the per-trial prime sampling of the
   fingerprint experiments: the same k is drawn from hundreds of times
   per table row, and rejection sampling re-runs Miller-Rabin on every
   candidate. Above the threshold (where the sieve itself would cost
   tens of MB) the rejection path is kept. The caches are shared across
   domains, hence the mutex; a hit is one Hashtbl lookup. *)
let prime_cache_threshold = 1 lsl 24

let sieve_cache : (int, int array) Hashtbl.t = Hashtbl.create 8
let bertrand_cache : (int, int) Hashtbl.t = Hashtbl.create 8
let cache_mutex = Mutex.create ()

let locked f =
  Mutex.lock cache_mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock cache_mutex) f

let primes_le k =
  if k < 2 then invalid_arg "Numtheory.primes_le: k < 2";
  locked (fun () ->
      match Hashtbl.find_opt sieve_cache k with
      | Some a -> a
      | None ->
          (* sieve inside the lock: briefly serializing the domains
             beats every one of them sieving the same k *)
          let a = Array.of_list (primes_upto k) in
          Hashtbl.add sieve_cache k a;
          a)

let random_prime_le st k =
  if k < 2 then invalid_arg "Numtheory.random_prime_le: k < 2";
  if k <= prime_cache_threshold then begin
    let ps = primes_le k in
    ps.(Random.State.full_int st (Array.length ps))
  end
  else begin
    let rec pick () =
      let c = 2 + Random.State.full_int st (k - 1) in
      if is_prime c then c else pick ()
    in
    pick ()
  end

let bertrand_prime k =
  if k < 1 then invalid_arg "Numtheory.bertrand_prime: k < 1";
  match locked (fun () -> Hashtbl.find_opt bertrand_cache k) with
  | Some p -> p
  | None ->
      let p = next_prime (3 * k) in
      (* Bertrand's postulate guarantees a prime in (3k, 6k]. *)
      assert (p <= 6 * k);
      locked (fun () -> Hashtbl.replace bertrand_cache k p);
      p

let random_unit st p =
  if p < 2 then invalid_arg "Numtheory.random_unit: p < 2";
  1 + Random.State.full_int st (p - 1)

let mod_of_bits v ~modulus =
  if modulus <= 0 then invalid_arg "Numtheory.mod_of_bits: modulus";
  Util.Bitstring.fold_bits
    (fun _ bit e -> add_mod (add_mod e e modulus) (Bool.to_int bit mod modulus) modulus)
    v 0

let fingerprint_k ~m ~n =
  if m < 1 || n < 1 then invalid_arg "Numtheory.fingerprint_k: m, n >= 1";
  let cube = m * m * m in
  if cube / m / m <> m then invalid_arg "Numtheory.fingerprint_k: m^3 overflow";
  let prod = cube * n in
  if prod / n <> cube then invalid_arg "Numtheory.fingerprint_k: m^3*n overflow";
  let lg =
    let rec go acc x = if x <= 1 then acc else go (acc + 1) ((x + 1) / 2) in
    max 1 (go 0 prod)
  in
  let k = prod * lg in
  if k / lg <> prod || 6 * k < 0 then
    invalid_arg "Numtheory.fingerprint_k: k overflow";
  k
