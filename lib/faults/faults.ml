(* Deterministic fault injection for the tape substrate, plus the
   retry/backoff combinators the deciders use to survive it.

   The whole module is seeded: a [Plan] derives one private
   [Random.State] per tape from [(plan seed, tape name)] by the same
   splitmix64 finalizer [lib/parallel] uses for chunk seeding — never
   from allocation order, wall clock or worker count — so a faulty run
   is bit-identical under -j 1 / -j 2 / -j 4, exactly like a clean
   one. *)

exception Transient_io of string

type rates = {
  bit_flip : float;
  stuck_read : float;
  torn_write : float;
  transient : float;
}

let zero = { bit_flip = 0.0; stuck_read = 0.0; torn_write = 0.0; transient = 0.0 }

let check_rate label r =
  if not (r >= 0.0 && r <= 1.0) then
    invalid_arg (Printf.sprintf "Faults: %s rate %g outside [0,1]" label r)

(* FNV-1a over a name folded into a seed — the shared name-hashing half
   of every derived stream (per-tape injection, per-device storage
   faults, per-label backoff jitter). *)
let fnv64 ~seed name =
  let h = ref (Int64.of_int seed) in
  String.iter
    (fun c ->
      h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) 0x100000001B3L)
    name;
  !h

(* [fnv64] finalized by splitmix64 into the four words a [Random.State]
   wants. The name is the only per-stream input: streams created in any
   order, on any domain, with the same name draw identically. *)
let derive_words ~seed ~name =
  let h = fnv64 ~seed name in
  Array.init 4 (fun i ->
      let word =
        Parallel.Rng.mix64
          (Int64.add h (Int64.mul (Int64.of_int (i + 1)) 0x9E3779B97F4A7C15L))
      in
      Int64.to_int (Int64.logand word 0x3FFFFFFFFFFFFFFFL))

module Plan = struct
  type t = { seed : int; rates : rates }

  let create ~seed ~rates =
    check_rate "bit_flip" rates.bit_flip;
    check_rate "stuck_read" rates.stuck_read;
    check_rate "torn_write" rates.torn_write;
    check_rate "transient" rates.transient;
    { seed; rates }

  let seed t = t.seed
  let rates t = t.rates
  let derive t ~name = derive_words ~seed:t.seed ~name
  let tape_state t ~name = Random.State.make (derive t ~name)
end

(* ------------------------------------------------------------------ *)
(* corruptors *)

let flip01 _st c =
  match c with '0' -> '1' | '1' -> '0' | c -> c

let flip_string_bit st s =
  if String.length s = 0 then s
  else begin
    let i = Random.State.int st (String.length s) in
    let b = Bytes.of_string s in
    (* xor of the low bit always changes the byte and keeps the {0,1}
       and decimal-digit alphabets inside themselves *)
    Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 1));
    Bytes.to_string b
  end

(* ------------------------------------------------------------------ *)
(* attaching a plan to a tape *)

let hit st p = p > 0.0 && Random.State.float st 1.0 < p

let injection plan ~name ~blank ~corrupt =
  let st = Plan.tape_state plan ~name in
  let r = plan.Plan.rates in
  let transient op = Transient_io (Printf.sprintf "%s: transient %s fault" name op) in
  {
    Tape.Injection.on_read =
      (fun ~pos:_ v ->
        if hit st r.transient then Tape.Injection.Read_fail (transient "read")
        else if hit st r.stuck_read then Tape.Injection.Read_value blank
        else if hit st r.bit_flip then Tape.Injection.Read_value (corrupt st v)
        else Tape.Injection.Read_ok);
    on_write =
      (fun ~pos:_ v ->
        if hit st r.transient then Tape.Injection.Write_fail (transient "write")
        else if hit st r.torn_write then Tape.Injection.Write_drop
        else if hit st r.bit_flip then Tape.Injection.Write_value (corrupt st v)
        else Tape.Injection.Write_ok);
    on_move =
      (fun ~pos:_ _dir ->
        if hit st r.transient then Tape.Injection.Move_fail (transient "seek")
        else Tape.Injection.Move_ok);
  }

let attach plan ~corrupt tp =
  Tape.set_injection tp
    (Some (injection plan ~name:(Tape.name tp) ~blank:(Tape.blank tp) ~corrupt))

let attach_char plan tp = attach plan ~corrupt:flip01 tp
let attach_string plan tp = attach plan ~corrupt:flip_string_bit tp

(* ------------------------------------------------------------------ *)
(* storage faults: injection below the [Tape.Device.Raw] syscall seam *)

module Storage = struct
  type rates = {
    bit_rot : float;
    short_read : float;
    short_write : float;
    io_error : float;
    torn_write : float;
  }

  let zero =
    {
      bit_rot = 0.0;
      short_read = 0.0;
      short_write = 0.0;
      io_error = 0.0;
      torn_write = 0.0;
    }

  exception Crashed of { op : int }

  module Plan = struct
    type t = {
      seed : int;
      rates : rates;
      enospc_after : int option;
      crash_at : int option;
      crash : int -> unit;
      ops : int Atomic.t;
      write_ops : int Atomic.t;
    }

    let create ?enospc_after ?crash_at ?crash ~seed ~rates () =
      check_rate "bit_rot" rates.bit_rot;
      check_rate "short_read" rates.short_read;
      check_rate "short_write" rates.short_write;
      check_rate "io_error" rates.io_error;
      check_rate "torn_write" rates.torn_write;
      {
        seed;
        rates;
        enospc_after;
        crash_at;
        crash =
          (match crash with
          | Some f -> f
          | None -> fun op -> raise (Crashed { op }));
        ops = Atomic.make 0;
        write_ops = Atomic.make 0;
      }

    let seed t = t.seed
    let rates t = t.rates
    let ops t = Atomic.get t.ops
  end

  (* The raw-seam wrapper for one device. Each stream is keyed on
     ("storage:" ^ tape name) — a disjoint namespace from the
     above-seam injection streams — so the two plans can share a seed
     without correlating. The op counter is plan-global (1-based, in
     syscall order), which is what makes a crash point like
     "the 17th raw op" meaningful and reproducible. *)
  let raw_for (t : Plan.t) : Tape.Device.raw_factory =
   fun ~name ->
    let st = Random.State.make (derive_words ~seed:t.Plan.seed ~name:("storage:" ^ name)) in
    let real = Tape.Device.Raw.real in
    let r = t.Plan.rates in
    let tick () =
      let op = Atomic.fetch_and_add t.Plan.ops 1 + 1 in
      (match t.Plan.crash_at with
      | Some k when op = k -> t.Plan.crash op
      | _ -> ());
      op
    in
    {
      Tape.Device.Raw.pread =
        (fun fd buf ~pos ~len ~off ->
          ignore (tick ());
          if hit st r.io_error then
            raise (Unix.Unix_error (Unix.EIO, "pread", name));
          let n = real.Tape.Device.Raw.pread fd buf ~pos ~len ~off in
          let n =
            if n > 1 && hit st r.short_read then 1 + Random.State.int st (n - 1)
            else n
          in
          if n > 0 && hit st r.bit_rot then begin
            let i = pos + Random.State.int st n in
            Bytes.set buf i
              (Char.chr
                 (Char.code (Bytes.get buf i) lxor (1 lsl Random.State.int st 8)));
          end;
          n);
      pwrite =
        (fun fd buf ~pos ~len ~off ->
          ignore (tick ());
          let wop = Atomic.fetch_and_add t.Plan.write_ops 1 + 1 in
          (match t.Plan.enospc_after with
          | Some k when wop >= k ->
              (* a full disk stays full: every later write fails too *)
              raise (Unix.Unix_error (Unix.ENOSPC, "pwrite", name))
          | _ -> ());
          if hit st r.io_error then
            raise (Unix.Unix_error (Unix.EIO, "pwrite", name));
          if hit st r.torn_write then begin
            (* tear at the pwrite boundary: a strict prefix lands on
               disk, then the write reports failure *)
            let cut = Random.State.int st len in
            if cut > 0 then
              ignore (real.Tape.Device.Raw.pwrite fd buf ~pos ~len:cut ~off);
            raise (Unix.Unix_error (Unix.EIO, "pwrite", name))
          end;
          if len > 1 && hit st r.short_write then
            real.Tape.Device.Raw.pwrite fd buf ~pos
              ~len:(1 + Random.State.int st (len - 1))
              ~off
          else real.Tape.Device.Raw.pwrite fd buf ~pos ~len ~off);
      fsync =
        (fun fd ->
          ignore (tick ());
          real.Tape.Device.Raw.fsync fd);
      rename =
        (fun a b ->
          ignore (tick ());
          real.Tape.Device.Raw.rename a b);
      remove =
        (fun p ->
          ignore (tick ());
          real.Tape.Device.Raw.remove p);
    }
end

(* ------------------------------------------------------------------ *)
(* retry/backoff *)

module Retry = struct
  type classification = Transient | Fatal

  type policy = {
    attempts : int;
    base_backoff_s : float;
    sleep : float -> unit;
    classify : exn -> classification;
  }

  exception Gave_up of { label : string; attempts : int; last : exn }

  (* Real device I/O can fail transiently too: a byte-backed tape
     surfaces interrupted syscalls as [Unix_error]s, and a restartable
     phase recovers from those exactly as from an injected fault. A
     checksum failure is transient on purpose: the offending block is
     quarantined before [Corrupt] is raised, so the retrying phase
     re-reads it from disk (in-transit rot heals; rot at rest gives
     up after [attempts]). ENOSPC and EROFS are explicitly fatal — a
     full or read-only disk never heals by retrying, it needs the
     operator (and exit code 10). *)
  let classify_default = function
    | Transient_io _ -> Transient
    | Tape.Device.Corrupt _ -> Transient
    | Unix.Unix_error ((Unix.ENOSPC | Unix.EROFS), _, _) -> Fatal
    | Unix.Unix_error
        ((Unix.EINTR | Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EIO), _, _) ->
        Transient
    | _ -> Fatal
  let is_transient e = classify_default e = Transient

  let default =
    {
      attempts = 3;
      base_backoff_s = 0.0;
      sleep = (fun _ -> ());
      classify = classify_default;
    }

  (* Exponential backoff with a deterministic jitter in [1, 2): the
     jitter is splitmix64 of (seed, attempt), never a clock or a shared
     RNG, so two runs of the same plan back off identically. *)
  let backoff policy ~seed ~attempt =
    if policy.base_backoff_s <= 0.0 then 0.0
    else begin
      let word =
        Parallel.Rng.mix64
          (Int64.add (Int64.of_int seed)
             (Int64.mul (Int64.of_int (attempt + 1)) 0x9E3779B97F4A7C15L))
      in
      let jitter =
        Int64.to_float (Int64.logand word 0xFFFFFFL) /. float_of_int 0x1000000
      in
      policy.base_backoff_s *. (2.0 ** float_of_int (attempt - 1)) *. (1.0 +. jitter)
    end

  let run ?(policy = default) ?(seed = 0) ?(label = "operation") ?on_retry f =
    if policy.attempts < 1 then invalid_arg "Faults.Retry.run: attempts >= 1";
    (* fold the phase label into the jitter seed: concurrent phases of
       one plan de-correlate their backoff schedules, yet the schedule
       of a given (seed, label) pair is fixed for every worker count *)
    let seed = Int64.to_int (fnv64 ~seed label) in
    let rec go attempt =
      try f ()
      with e -> (
        match policy.classify e with
        | Fatal -> raise e
        | Transient ->
            if attempt >= policy.attempts then begin
              Obs.Counters.add_retry_gave_up 1;
              raise (Gave_up { label; attempts = policy.attempts; last = e })
            end
            else begin
              Obs.Counters.add_retry_attempts 1;
              (match on_retry with Some h -> h ~attempt e | None -> ());
              let d = backoff policy ~seed ~attempt in
              if d > 0.0 then policy.sleep d;
              go (attempt + 1)
            end)
    in
    go 1
end
