(* Deterministic fault injection for the tape substrate, plus the
   retry/backoff combinators the deciders use to survive it.

   The whole module is seeded: a [Plan] derives one private
   [Random.State] per tape from [(plan seed, tape name)] by the same
   splitmix64 finalizer [lib/parallel] uses for chunk seeding — never
   from allocation order, wall clock or worker count — so a faulty run
   is bit-identical under -j 1 / -j 2 / -j 4, exactly like a clean
   one. *)

exception Transient_io of string

type rates = {
  bit_flip : float;
  stuck_read : float;
  torn_write : float;
  transient : float;
}

let zero = { bit_flip = 0.0; stuck_read = 0.0; torn_write = 0.0; transient = 0.0 }

let check_rate label r =
  if not (r >= 0.0 && r <= 1.0) then
    invalid_arg (Printf.sprintf "Faults: %s rate %g outside [0,1]" label r)

module Plan = struct
  type t = { seed : int; rates : rates }

  let create ~seed ~rates =
    check_rate "bit_flip" rates.bit_flip;
    check_rate "stuck_read" rates.stuck_read;
    check_rate "torn_write" rates.torn_write;
    check_rate "transient" rates.transient;
    { seed; rates }

  let seed t = t.seed
  let rates t = t.rates

  (* FNV-1a over the tape name folded into the plan seed, finalized by
     splitmix64 into the four words a [Random.State] wants. The name is
     the only per-tape input: tapes created in any order, on any
     domain, with the same name draw the same fault stream. *)
  let derive t ~name =
    let h = ref (Int64.of_int t.seed) in
    String.iter
      (fun c ->
        h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) 0x100000001B3L)
      name;
    Array.init 4 (fun i ->
        let word =
          Parallel.Rng.mix64
            (Int64.add !h (Int64.mul (Int64.of_int (i + 1)) 0x9E3779B97F4A7C15L))
        in
        Int64.to_int (Int64.logand word 0x3FFFFFFFFFFFFFFFL))

  let tape_state t ~name = Random.State.make (derive t ~name)
end

(* ------------------------------------------------------------------ *)
(* corruptors *)

let flip01 _st c =
  match c with '0' -> '1' | '1' -> '0' | c -> c

let flip_string_bit st s =
  if String.length s = 0 then s
  else begin
    let i = Random.State.int st (String.length s) in
    let b = Bytes.of_string s in
    (* xor of the low bit always changes the byte and keeps the {0,1}
       and decimal-digit alphabets inside themselves *)
    Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 1));
    Bytes.to_string b
  end

(* ------------------------------------------------------------------ *)
(* attaching a plan to a tape *)

let hit st p = p > 0.0 && Random.State.float st 1.0 < p

let injection plan ~name ~blank ~corrupt =
  let st = Plan.tape_state plan ~name in
  let r = plan.Plan.rates in
  let transient op = Transient_io (Printf.sprintf "%s: transient %s fault" name op) in
  {
    Tape.Injection.on_read =
      (fun ~pos:_ v ->
        if hit st r.transient then Tape.Injection.Read_fail (transient "read")
        else if hit st r.stuck_read then Tape.Injection.Read_value blank
        else if hit st r.bit_flip then Tape.Injection.Read_value (corrupt st v)
        else Tape.Injection.Read_ok);
    on_write =
      (fun ~pos:_ v ->
        if hit st r.transient then Tape.Injection.Write_fail (transient "write")
        else if hit st r.torn_write then Tape.Injection.Write_drop
        else if hit st r.bit_flip then Tape.Injection.Write_value (corrupt st v)
        else Tape.Injection.Write_ok);
    on_move =
      (fun ~pos:_ _dir ->
        if hit st r.transient then Tape.Injection.Move_fail (transient "seek")
        else Tape.Injection.Move_ok);
  }

let attach plan ~corrupt tp =
  Tape.set_injection tp
    (Some (injection plan ~name:(Tape.name tp) ~blank:(Tape.blank tp) ~corrupt))

let attach_char plan tp = attach plan ~corrupt:flip01 tp
let attach_string plan tp = attach plan ~corrupt:flip_string_bit tp

(* ------------------------------------------------------------------ *)
(* retry/backoff *)

module Retry = struct
  type classification = Transient | Fatal

  type policy = {
    attempts : int;
    base_backoff_s : float;
    sleep : float -> unit;
    classify : exn -> classification;
  }

  exception Gave_up of { label : string; attempts : int; last : exn }

  (* Real device I/O can fail transiently too: a byte-backed tape
     surfaces interrupted syscalls as [Unix_error]s, and a restartable
     phase recovers from those exactly as from an injected fault. *)
  let classify_default = function
    | Transient_io _ -> Transient
    | Unix.Unix_error ((Unix.EINTR | Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
        Transient
    | _ -> Fatal
  let is_transient e = classify_default e = Transient

  let default =
    {
      attempts = 3;
      base_backoff_s = 0.0;
      sleep = (fun _ -> ());
      classify = classify_default;
    }

  (* Exponential backoff with a deterministic jitter in [1, 2): the
     jitter is splitmix64 of (seed, attempt), never a clock or a shared
     RNG, so two runs of the same plan back off identically. *)
  let backoff policy ~seed ~attempt =
    if policy.base_backoff_s <= 0.0 then 0.0
    else begin
      let word =
        Parallel.Rng.mix64
          (Int64.add (Int64.of_int seed)
             (Int64.mul (Int64.of_int (attempt + 1)) 0x9E3779B97F4A7C15L))
      in
      let jitter =
        Int64.to_float (Int64.logand word 0xFFFFFFL) /. float_of_int 0x1000000
      in
      policy.base_backoff_s *. (2.0 ** float_of_int (attempt - 1)) *. (1.0 +. jitter)
    end

  let run ?(policy = default) ?(seed = 0) ?(label = "operation") ?on_retry f =
    if policy.attempts < 1 then invalid_arg "Faults.Retry.run: attempts >= 1";
    let rec go attempt =
      try f ()
      with e -> (
        match policy.classify e with
        | Fatal -> raise e
        | Transient ->
            if attempt >= policy.attempts then begin
              Obs.Counters.add_retry_gave_up 1;
              raise (Gave_up { label; attempts = policy.attempts; last = e })
            end
            else begin
              Obs.Counters.add_retry_attempts 1;
              (match on_retry with Some h -> h ~attempt e | None -> ());
              let d = backoff policy ~seed ~attempt in
              if d > 0.0 then policy.sleep d;
              go (attempt + 1)
            end)
    in
    go 1
end
