(** Deterministic, seeded fault injection for the tape substrate.

    The paper's model is a model of real external-memory I/O
    (Grohe–Koch–Schweikardt, arXiv:cs/0505002), where silent corruption
    and partial failure are the norm — this module makes the substrate
    hostile on purpose. A {!Plan} fixes a root seed and per-operation
    fault rates; attaching it to a tape installs a {!Tape.Injection}
    hook that flips cell values on read/write, sticks reads at the
    blank symbol, drops (tears) writes, and raises {!Transient_io} from
    any operation. Everything is derived from [(plan seed, tape name)]
    by the same splitmix64 scheme [lib/parallel] uses for chunk
    seeding, so a faulty run is bit-identical for every worker count —
    the E16 experiment and [test/test_faults.ml] pin this down.

    {!Retry} provides the recovery side: bounded attempts with
    deterministic jittered exponential backoff and
    transient-versus-fatal exception classification. The extsort merge
    passes and fingerprint scans wrap their restartable phases in
    {!Retry.run}; a retried scan re-walks its tape through the ordinary
    [move] calls, so recovery is charged honest reversal costs. *)

exception Transient_io of string
(** A fault that a retry may clear (the injected model of a failed
    disk/network operation). Classified [Transient] by
    {!Retry.classify_default}. *)

(** Per-operation fault probabilities, each in [[0, 1]]. *)
type rates = {
  bit_flip : float;  (** corrupt the value seen by a read / written by a write *)
  stuck_read : float;  (** a read returns the blank symbol instead *)
  torn_write : float;  (** a write is silently dropped *)
  transient : float;  (** read/write/move raises {!Transient_io} *)
}

val zero : rates
(** All rates 0 — attaching this plan never injects anything (and
    draws no randomness, so it is observationally identical to not
    attaching a plan at all). *)

(** A seeded fault plan: the pure data determining every fault of a
    run. *)
module Plan : sig
  type t

  val create : seed:int -> rates:rates -> t
  (** @raise Invalid_argument if any rate is outside [[0, 1]]. *)

  val seed : t -> int
  val rates : t -> rates

  val derive : t -> name:string -> int array
  (** The four seed words for tape [name]'s private fault stream:
      FNV-1a of the name folded into the plan seed, finalized by
      splitmix64. Depends on nothing but [(seed t, name)] — exposed for
      the determinism tests. *)

  val tape_state : t -> name:string -> Random.State.t
  (** [Random.State.make (derive t ~name)]. *)
end

val attach : Plan.t -> corrupt:(Random.State.t -> 'a -> 'a) -> 'a Tape.t -> unit
(** Install the plan's injection hook on a tape. [corrupt] produces the
    value a corrupted read/write sees, drawing any choices from the
    tape's private fault stream. The hook keys on {!Tape.name}, so give
    tapes stable explicit names — auto-generated [tapeN] names depend
    on allocation order and would break cross-worker determinism. *)

val attach_char : Plan.t -> char Tape.t -> unit
(** {!attach} with {!flip01}: value corruption on [{0,1}] cells that
    never damages ['#'] separators or blanks. *)

val attach_string : Plan.t -> string Tape.t -> unit
(** {!attach} with {!flip_string_bit}. *)

val flip01 : Random.State.t -> char -> char
(** ['0' ↔ '1']; any other symbol is left alone. *)

val flip_string_bit : Random.State.t -> string -> string
(** Flip the low bit of one uniformly chosen byte (the empty string is
    returned unchanged). On the {0,1}-string items of an instance this
    is exactly a one-bit value corruption. *)

(** Storage-level fault injection {e below} the {!Tape.Device.Raw}
    syscall seam — distinct from the above-seam {!Tape.Injection} plan
    ({!attach}): these faults hit the bytes and syscalls of the backing
    files themselves, so they exercise the device layer's CRC framing,
    full-transfer loops and atomic-rename protocol rather than the
    tape head. Streams are keyed on [("storage:" ^ tape name)], so a
    storage plan and an injection plan may share a seed without
    correlating, and the whole campaign is bit-identical under
    -j 1/2/4. *)
module Storage : sig
  (** Per-syscall fault probabilities, each in [[0, 1]]. *)
  type rates = {
    bit_rot : float;  (** flip one random bit of a successful pread *)
    short_read : float;  (** return a strict prefix of the bytes read *)
    short_write : float;  (** transfer a strict prefix (no error) *)
    io_error : float;  (** raise [EIO] from pread/pwrite *)
    torn_write : float;
        (** write a strict prefix to disk, then raise [EIO] — the torn
            frame is what the CRC framing must catch on readback *)
  }

  val zero : rates

  exception Crashed of { op : int }
  (** The default crash action: raised by the [op]-th raw syscall when
      the plan's [crash_at] fires. Classified [Fatal]. *)

  module Plan : sig
    type t

    val create :
      ?enospc_after:int ->
      ?crash_at:int ->
      ?crash:(int -> unit) ->
      seed:int ->
      rates:rates ->
      unit ->
      t
    (** [enospc_after:k] makes the [k]-th and every later raw write
        raise [ENOSPC] (a full disk stays full). [crash_at:k] invokes
        [crash] (default: raise {!Crashed}) at the [k]-th raw syscall,
        counted plan-globally in syscall order — [stlb decide
        --crash-at] passes an abrupt [_exit] so no cleanup runs, which
        is what the crash-matrix test recovers from.
        @raise Invalid_argument if any rate is outside [[0, 1]]. *)

    val seed : t -> int
    val rates : t -> rates

    val ops : t -> int
    (** Raw syscalls performed so far under this plan. *)
  end

  val raw_for : Plan.t -> Tape.Device.raw_factory
  (** The injecting wrapper of {!Tape.Device.Raw.real} to pass as
      [?raw] to {!Tape.Device.file_spec}/{!Tape.Device.shard_spec}. *)
end

(** Bounded retry with deterministic backoff — the recovery combinators
    used by the extsort and fingerprint scan phases. *)
module Retry : sig
  type classification = Transient | Fatal

  type policy = {
    attempts : int;  (** total attempts, including the first ([≥ 1]) *)
    base_backoff_s : float;  (** 0 disables backoff entirely *)
    sleep : float -> unit;
        (** how to spend the backoff; defaults to a no-op so simulated
            faults never slow a test suite down *)
    classify : exn -> classification;
  }

  exception Gave_up of { label : string; attempts : int; last : exn }
  (** Raised — and classified fatal — once all attempts failed on
      transient errors. [last] is the final transient exception. *)

  val default : policy
  (** 3 attempts, no backoff, {!classify_default}. *)

  val classify_default : exn -> classification
  (** {!Transient_io} is [Transient], as are the retryable device I/O
      errors a byte-backed tape can surface ([Unix.EINTR]/[EAGAIN]/
      [EWOULDBLOCK]/[EIO]) and {!Tape.Device.Corrupt} (the bad block is
      quarantined before the raise, so a retry re-reads it from disk).
      [ENOSPC] and [EROFS] are explicitly [Fatal] — a full or read-only
      disk never heals by retrying — as is everything else, including
      {!Gave_up}, {!Storage.Crashed} and {!Tape.Budget_exceeded}. *)

  val is_transient : exn -> bool

  val backoff : policy -> seed:int -> attempt:int -> float
  (** Backoff before retrying [attempt] (1-based):
      [base · 2^(attempt−1) · (1 + jitter)] with the jitter in [[0, 1)]
      derived by splitmix64 from [(seed, attempt)] — deterministic, so
      identically seeded runs back off identically. *)

  val run :
    ?policy:policy ->
    ?seed:int ->
    ?label:string ->
    ?on_retry:(attempt:int -> exn -> unit) ->
    (unit -> 'a) ->
    'a
  (** Run [f], retrying on [Transient]-classified exceptions up to
      [policy.attempts] total attempts with {!backoff} between them —
      the jitter seed is [(seed, label)] (FNV-1a of the label folded
      into [seed]), so concurrent phases de-correlate their schedules
      while staying reproducible for every worker count.
      Fatal exceptions propagate immediately; exhausting the attempts
      raises {!Gave_up}. [f] must be restartable: each attempt must
      redo any state the previous one half-built (the tape-walking
      callers restart by rewinding, which charges honest reversals).
      [on_retry] is called before each re-attempt. *)
end
