(** Deterministic, seeded fault injection for the tape substrate.

    The paper's model is a model of real external-memory I/O
    (Grohe–Koch–Schweikardt, arXiv:cs/0505002), where silent corruption
    and partial failure are the norm — this module makes the substrate
    hostile on purpose. A {!Plan} fixes a root seed and per-operation
    fault rates; attaching it to a tape installs a {!Tape.Injection}
    hook that flips cell values on read/write, sticks reads at the
    blank symbol, drops (tears) writes, and raises {!Transient_io} from
    any operation. Everything is derived from [(plan seed, tape name)]
    by the same splitmix64 scheme [lib/parallel] uses for chunk
    seeding, so a faulty run is bit-identical for every worker count —
    the E16 experiment and [test/test_faults.ml] pin this down.

    {!Retry} provides the recovery side: bounded attempts with
    deterministic jittered exponential backoff and
    transient-versus-fatal exception classification. The extsort merge
    passes and fingerprint scans wrap their restartable phases in
    {!Retry.run}; a retried scan re-walks its tape through the ordinary
    [move] calls, so recovery is charged honest reversal costs. *)

exception Transient_io of string
(** A fault that a retry may clear (the injected model of a failed
    disk/network operation). Classified [Transient] by
    {!Retry.classify_default}. *)

(** Per-operation fault probabilities, each in [[0, 1]]. *)
type rates = {
  bit_flip : float;  (** corrupt the value seen by a read / written by a write *)
  stuck_read : float;  (** a read returns the blank symbol instead *)
  torn_write : float;  (** a write is silently dropped *)
  transient : float;  (** read/write/move raises {!Transient_io} *)
}

val zero : rates
(** All rates 0 — attaching this plan never injects anything (and
    draws no randomness, so it is observationally identical to not
    attaching a plan at all). *)

(** A seeded fault plan: the pure data determining every fault of a
    run. *)
module Plan : sig
  type t

  val create : seed:int -> rates:rates -> t
  (** @raise Invalid_argument if any rate is outside [[0, 1]]. *)

  val seed : t -> int
  val rates : t -> rates

  val derive : t -> name:string -> int array
  (** The four seed words for tape [name]'s private fault stream:
      FNV-1a of the name folded into the plan seed, finalized by
      splitmix64. Depends on nothing but [(seed t, name)] — exposed for
      the determinism tests. *)

  val tape_state : t -> name:string -> Random.State.t
  (** [Random.State.make (derive t ~name)]. *)
end

val attach : Plan.t -> corrupt:(Random.State.t -> 'a -> 'a) -> 'a Tape.t -> unit
(** Install the plan's injection hook on a tape. [corrupt] produces the
    value a corrupted read/write sees, drawing any choices from the
    tape's private fault stream. The hook keys on {!Tape.name}, so give
    tapes stable explicit names — auto-generated [tapeN] names depend
    on allocation order and would break cross-worker determinism. *)

val attach_char : Plan.t -> char Tape.t -> unit
(** {!attach} with {!flip01}: value corruption on [{0,1}] cells that
    never damages ['#'] separators or blanks. *)

val attach_string : Plan.t -> string Tape.t -> unit
(** {!attach} with {!flip_string_bit}. *)

val flip01 : Random.State.t -> char -> char
(** ['0' ↔ '1']; any other symbol is left alone. *)

val flip_string_bit : Random.State.t -> string -> string
(** Flip the low bit of one uniformly chosen byte (the empty string is
    returned unchanged). On the {0,1}-string items of an instance this
    is exactly a one-bit value corruption. *)

(** Bounded retry with deterministic backoff — the recovery combinators
    used by the extsort and fingerprint scan phases. *)
module Retry : sig
  type classification = Transient | Fatal

  type policy = {
    attempts : int;  (** total attempts, including the first ([≥ 1]) *)
    base_backoff_s : float;  (** 0 disables backoff entirely *)
    sleep : float -> unit;
        (** how to spend the backoff; defaults to a no-op so simulated
            faults never slow a test suite down *)
    classify : exn -> classification;
  }

  exception Gave_up of { label : string; attempts : int; last : exn }
  (** Raised — and classified fatal — once all attempts failed on
      transient errors. [last] is the final transient exception. *)

  val default : policy
  (** 3 attempts, no backoff, {!classify_default}. *)

  val classify_default : exn -> classification
  (** {!Transient_io} is [Transient], as are the retryable device I/O
      errors a byte-backed tape can surface ([Unix.EINTR]/[EAGAIN]/
      [EWOULDBLOCK]); everything else — including {!Gave_up} and
      {!Tape.Budget_exceeded} — is [Fatal]. *)

  val is_transient : exn -> bool

  val backoff : policy -> seed:int -> attempt:int -> float
  (** Backoff before retrying [attempt] (1-based):
      [base · 2^(attempt−1) · (1 + jitter)] with the jitter in [[0, 1)]
      derived by splitmix64 from [(seed, attempt)] — deterministic, so
      identically seeded runs back off identically. *)

  val run :
    ?policy:policy ->
    ?seed:int ->
    ?label:string ->
    ?on_retry:(attempt:int -> exn -> unit) ->
    (unit -> 'a) ->
    'a
  (** Run [f], retrying on [Transient]-classified exceptions up to
      [policy.attempts] total attempts with {!backoff} between them.
      Fatal exceptions propagate immediately; exhausting the attempts
      raises {!Gave_up}. [f] must be restartable: each attempt must
      redo any state the previous one half-built (the tape-walking
      callers restart by rewinding, which charges honest reversals).
      [on_retry] is called before each re-attempt. *)
end
