(** Order-preserving, self-delimiting tuple encoding (FoundationDB
    tuple-layer style) — the cell format of the byte-backed tape
    devices.

    The two properties that make file-backed merge passes cheap:

    - {b order preservation}: [String.compare (pack a) (pack b)] agrees
      with {!compare_tuple}[ a b], so a k-way merge compares keys
      bytewise {e without decoding};
    - {b self-delimitation}: each element carries its own end (strings
      are 0x00-terminated with 0x00 inside escaped as 0x00 0xFF; ints
      carry their byte count in the type code), so a run file of
      concatenated encodings needs no external index — {!scan_elt}
      finds every cell boundary. *)

type elt =
  | Int of int  (** code byte [0x14 ± k], [k] big-endian payload bytes *)
  | Str of string  (** code byte [0x02], terminator-escaped, 0x00-ended *)

exception Malformed of string
(** Raised by {!unpack}/{!scan_elt} on bytes that are not a valid
    encoding (truncated element, unknown type code). *)

val pack : elt list -> string
val pack_str : string -> string
val pack_int : int -> string

val unpack : string -> elt list
(** Inverse of {!pack}. @raise Malformed on invalid input. *)

val decode_elt : string -> int -> elt * int
(** [decode_elt s pos] decodes the single element starting at [pos],
    returning it with the offset just past its encoding.
    @raise Malformed *)

val scan_elt : string -> int -> int
(** [scan_elt s pos] is the offset just past the single element
    starting at [pos] — the boundary scan the sharded device uses to
    cut a run file back into cells. @raise Malformed *)

val compare_packed : string -> string -> int
(** [String.compare] — named to document that bytewise comparison of
    encodings is the intended comparison. *)

val compare_tuple : elt list -> elt list -> int
(** Value-level order; agrees with {!compare_packed} on encodings
    (a tested invariant). Strings sort below ints (their type code is
    smaller), shorter tuples below their extensions. *)

val range_prefix : elt list -> string * string
(** [range_prefix p] is the half-open byte interval [(lo, hi)] such
    that a packed tuple [t] extends [p] iff [lo <= t < hi] — prefix
    scans over sorted runs without decoding. *)

val pp_elt : Format.formatter -> elt -> unit
val pp : Format.formatter -> elt list -> unit
