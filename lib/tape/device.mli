(** Pluggable storage backends for tapes — the seam that lets the same
    instrumented head run over RAM, a flat file, or a directory of run
    files, with identical cost accounting.

    A device is a dumb cell store: get/set by position, extent, sync,
    close. Head position, direction, reversal counting, budgets, fault
    injection and observers all live {e above} this seam in [Tape], so
    swapping the backend cannot change any measured number — the
    backend-parity property the test suite pins down. *)

type stats = {
  resident_bytes : int;  (** bytes currently cached in RAM *)
  io_read_bytes : int;  (** bytes read from backing storage so far *)
  io_write_bytes : int;  (** bytes written to backing storage so far *)
  backing_files : int;  (** files on disk (0 for the mem backend) *)
}

val zero_stats : stats

type 'a t
(** A cell store for values of type ['a]. Positions are 0-based;
    reading a never-written position yields the blank. *)

val kind : 'a t -> string
(** ["mem"], ["file"] or ["shard"]. *)

val get : 'a t -> int -> 'a
val set : 'a t -> int -> 'a -> unit

val extent : 'a t -> int
(** One past the highest position ever written (0 if none). *)

val sync : 'a t -> unit
(** Flush dirty cached state to backing storage. No-op for [mem]. *)

val close : 'a t -> unit
(** Flush and release the backing storage ({e deleting} backing files —
    a tape's spill is scratch space, not a persistent artifact). *)

val stats : 'a t -> stats

(** How cells become bytes. Byte-backed devices need one; the mem
    backend does not. *)
module Codec : sig
  type 'a codec = {
    encode : 'a -> string;
        (** at most [max_bytes] long; order-preserving encoders (the
            {!Tuple} ones) make sorted runs bytewise-comparable *)
    decode : string -> int -> 'a * int;
        (** [decode buf pos] returns the value whose encoding starts at
            [pos] together with the offset just past it — encodings
            must be self-delimiting *)
    max_bytes : int;
  }

  type 'a t = 'a codec

  val tuple_string : max_len:int -> string t
  (** Cells are strings of length [<= max_len], framed as
      {!Tuple.pack_str} — bytewise comparison of stored cells agrees
      with [String.compare] on the values. *)

  val tuple_int : int t
  val tuple_char : char t
end

(** A backend recipe: what to build when a tape is created. *)
type spec =
  | Mem
  | File of { dir : string; block_bytes : int; cache_blocks : int }
      (** one flat file of fixed-size slots (2-byte length prefix +
          payload, slot size from the codec's [max_bytes]) behind a
          direct-mapped block cache with sequential read-ahead *)
  | Shard of { dir : string; shard_bytes : int; cache_shards : int }
      (** a directory of run files, each the concatenation of
          presence-flagged self-delimiting cell encodings; whole shards
          load and rewrite on cache eviction, so sequential run writes
          touch each file once per pass *)

val mem_spec : spec
val file_spec : ?block_bytes:int -> ?cache_blocks:int -> string -> spec
(** Defaults: 64 KiB blocks, 16 cached blocks. *)

val shard_spec : ?shard_bytes:int -> ?cache_shards:int -> string -> spec
(** Defaults: 1 MiB shards, 2 cached shards. *)

val pp_spec : Format.formatter -> spec -> unit

val mem : blank:'a -> 'a t
(** The original growable in-RAM array. *)

val instantiate : ?codec:'a Codec.t -> spec -> blank:'a -> name:string -> 'a t
(** Build the backend a spec describes. [File]/[Shard] require a
    [codec]; without one the result falls back to {!mem} (the tape
    still works, just not externally). Backing files are created under
    the spec's directory, uniquely named per tape, and removed on
    {!close}. *)
