(** Pluggable storage backends for tapes — the seam that lets the same
    instrumented head run over RAM, a flat file, or a directory of run
    files, with identical cost accounting.

    A device is a dumb cell store: get/set by position, extent, sync,
    close. Head position, direction, reversal counting, budgets, fault
    injection and observers all live {e above} this seam in [Tape], so
    swapping the backend cannot change any measured number — the
    backend-parity property the test suite pins down.

    The byte-backed backends are additionally {e crash- and
    corruption-hardened}: every block/shard is CRC-32 framed and
    verified on read ({!Corrupt}, {!verify}), whole files are written
    via atomic tmp+rename, shard directories carry a MANIFEST, and all
    syscalls go through the {!Raw} seam so [lib/faults] can inject
    storage-level failures deterministically. *)

type stats = {
  resident_bytes : int;  (** bytes currently cached in RAM *)
  io_read_bytes : int;  (** payload bytes read from backing storage *)
  io_write_bytes : int;  (** payload bytes written to backing storage *)
  backing_files : int;  (** run files on disk (0 for the mem backend) *)
}

val zero_stats : stats

exception Corrupt of { device : string; path : string; offset : int }
(** A CRC-framed block or shard failed verification on read. [device]
    is the tape name, [path] the backing file, [offset] the first tape
    cell position the bad block covers. The offending cache line is
    quarantined before the raise, so a retry that re-reads the region
    goes back to disk — {!Faults.Retry.classify_default} treats
    [Corrupt] as transient for exactly this reason. *)

(** {2 Integrity health — process-wide counters and events}

    The device layer cannot depend on [lib/obs], so it keeps its own
    atomics; [Obs.Counters] snapshots them and [Obs.Trace] installs the
    event listener at link time. *)

type event =
  | Corrupt_detected of { device : string; offset : int }
      (** a framed read failed its checksum (the read raised {!Corrupt}) *)
  | Quarantine_reread of { device : string; offset : int }
      (** a quarantined block was re-read cleanly — the recovery path *)
  | Cleanup_failed of { device : string; path : string; error : string }
      (** a close/remove during [close] failed; the spill file may be
          leaked.  Never raised: close paths run in finalizers. *)

val on_event : (event -> unit) -> unit
(** Install the process-wide event listener (latest wins; [Obs.Trace]
    installs one that forwards to the current trace sink). *)

val corrupt_detected : unit -> int
val quarantine_rereads : unit -> int
val cleanup_failures : unit -> int

val reset_health : unit -> unit
(** Zero the three health counters (tests only). *)

val crc32 : string -> int
(** The frame checksum (IEEE CRC-32, reflected 0xEDB88320), exposed for
    tests and tooling. *)

(** {2 The raw syscall seam} *)

(** Single-syscall closures under the byte-backed backends. [pread] and
    [pwrite] may transfer fewer than [len] bytes (the full-transfer
    loops live above the seam), [pread] returns 0 at EOF. [lib/faults]
    builds wrappers of {!Raw.real} that inject short transfers, EIO,
    ENOSPC, torn writes, bit rot and crash points deterministically. *)
module Raw : sig
  type t = {
    pread : Unix.file_descr -> Bytes.t -> pos:int -> len:int -> off:int -> int;
    pwrite : Unix.file_descr -> Bytes.t -> pos:int -> len:int -> off:int -> int;
    fsync : Unix.file_descr -> unit;
    rename : string -> string -> unit;
    remove : string -> unit;
  }

  val real : t
  (** The actual syscalls (lseek+read/write, fsync, rename, remove). *)
end

type raw_factory = name:string -> Raw.t
(** Builds the raw seam for one device, keyed by the {e tape name} (the
    only stable per-device identity — backing paths contain allocation
    counters), so fault streams are independent of creation order. *)

type 'a t
(** A cell store for values of type ['a]. Positions are 0-based;
    reading a never-written position yields the blank. *)

val kind : 'a t -> string
(** ["mem"], ["file"] or ["shard"]. *)

val get : 'a t -> int -> 'a
val set : 'a t -> int -> 'a -> unit

val extent : 'a t -> int
(** One past the highest position ever written (0 if none). *)

val sync : 'a t -> unit
(** Flush dirty cached state to backing storage and make it durable:
    the file backend fsyncs its fd, the shard backend rewrites and
    fsyncs its MANIFEST. No-op for [mem]. *)

val close : 'a t -> unit
(** Release the backing storage ({e deleting} backing files — a tape's
    spill is scratch space, not a persistent artifact). Never raises:
    failures are counted in {!cleanup_failures} and announced via
    {!on_event}. *)

val stats : 'a t -> stats

type verify_report = { blocks_checked : int; corrupt_at : int list }
(** [corrupt_at] lists the first cell position of each bad block. *)

val verify : 'a t -> verify_report
(** Flush, then re-read and CRC-check every block/shard of a live
    device without disturbing its cache. Diagnostic: reports rather
    than raises. Trivially clean for [mem]. *)

(** How cells become bytes. Byte-backed devices need one; the mem
    backend does not. *)
module Codec : sig
  type 'a codec = {
    encode : 'a -> string;
        (** at most [max_bytes] long; order-preserving encoders (the
            {!Tuple} ones) make sorted runs bytewise-comparable *)
    decode : string -> int -> 'a * int;
        (** [decode buf pos] returns the value whose encoding starts at
            [pos] together with the offset just past it — encodings
            must be self-delimiting *)
    max_bytes : int;
  }

  type 'a t = 'a codec

  val tuple_string : max_len:int -> string t
  (** Cells are strings of length [<= max_len], framed as
      {!Tuple.pack_str} — bytewise comparison of stored cells agrees
      with [String.compare] on the values. *)

  val tuple_int : int t
  val tuple_char : char t
end

(** A backend recipe: what to build when a tape is created. *)
type spec =
  | Mem
  | File of {
      dir : string;
      block_bytes : int;
      cache_blocks : int;
      raw : raw_factory option;
    }
      (** one flat file of CRC-framed blocks of fixed-size slots
          (2-byte length prefix + payload, slot size from the codec's
          [max_bytes]) behind a direct-mapped block cache with
          sequential read-ahead *)
  | Shard of {
      dir : string;
      shard_bytes : int;
      cache_shards : int;
      raw : raw_factory option;
    }
      (** a directory of CRC-framed run files, each the concatenation
          of presence-flagged self-delimiting cell encodings, indexed
          by an atomically-renamed MANIFEST; whole shards load and
          rewrite on cache eviction, so sequential run writes touch
          each file once per pass *)

val mem_spec : spec

val file_spec :
  ?block_bytes:int -> ?cache_blocks:int -> ?raw:raw_factory -> string -> spec
(** Defaults: 64 KiB blocks, 16 cached blocks, real syscalls. *)

val shard_spec :
  ?shard_bytes:int -> ?cache_shards:int -> ?raw:raw_factory -> string -> spec
(** Defaults: 1 MiB shards, 2 cached shards, real syscalls. *)

val pp_spec : Format.formatter -> spec -> unit

val mem : blank:'a -> 'a t
(** The original growable in-RAM array. *)

val instantiate : ?codec:'a Codec.t -> spec -> blank:'a -> name:string -> 'a t
(** Build the backend a spec describes. [File]/[Shard] require a
    [codec]; without one the result falls back to {!mem} (the tape
    still works, just not externally). Backing files are created under
    the spec's directory, uniquely named per tape, and removed on
    {!close}; a shard device clears stale leftovers from its directory
    at creation, so a crashed run's torn tails are never read back as
    data. *)

(** Offline integrity walk over a spill directory — the reopen
    protocol: a ".tape" file must carry its magic header and every
    complete frame must pass its CRC (a trailing partial frame is a
    torn tail); a shard directory's MANIFEST vouches for run files by
    checksum, and unlisted, mismatched or ".tmp" files are torn tails
    or orphans. [stlb scrub] is a thin wrapper over {!Scrub.dir}. *)
module Scrub : sig
  type finding = {
    path : string;
    offset : int;  (** byte offset of the bad frame, or -1 for whole-file *)
    what : string;
        (** ["crc-mismatch"], ["torn"], ["orphan"], ["missing"] or
            ["bad-header"] *)
  }

  type report = {
    files_checked : int;
    blocks_checked : int;
    findings : finding list;
    removed : int;  (** files deleted (only with [~fix:true]) *)
  }

  val dir : ?fix:bool -> string -> report
  (** Walk one spill directory. With [~fix:true], flagged files are
      removed and emptied shard directories pruned. A missing [root]
      yields the empty report. *)
end
