(* Order-preserving tuple encoding for byte-backed tape devices.

   The layout follows the FoundationDB tuple layer: every element is
   emitted with a leading type code chosen so that [String.compare] on
   the encodings agrees with the natural order on the values, and every
   element is self-delimiting, so a run file of concatenated encodings
   can be cut back into cells without an external index.

   - [Str s]  ->  0x02, escaped bytes of [s], 0x00.  A 0x00 byte inside
     [s] is escaped as 0x00 0xFF; since 0xFF can never follow a
     terminating 0x00 inside a well-formed stream, the first unescaped
     0x00 ends the element.  The escape preserves order: it maps the
     smallest byte to the smallest two-byte sequence starting with it.
   - [Int n]  ->  a code byte centred on 0x14 (zero), 0x14+k for a
     positive integer needing [k] big-endian bytes, 0x14-k for a
     negative one stored as the offset from the smallest k-byte
     negative (i.e. n + 2^(8k) - 1), so larger negatives still compare
     smaller bytewise. *)

type elt = Int of int | Str of string

let zero_code = 0x14
let str_code = 0x02
let max_int_bytes = 8

exception Malformed of string

let bytes_needed n =
  (* bytes needed for |n| — also the k with n + 2^(8k) - 1 >= 0 when
     n < 0; [Int64.neg] is safe for every 63-bit OCaml int *)
  let rec go k v =
    if Int64.equal v 0L then max 1 k else go (k + 1) (Int64.shift_right_logical v 8)
  in
  go 0 (Int64.abs (Int64.of_int n))

let add_elt buf = function
  | Str s ->
      Buffer.add_char buf (Char.chr str_code);
      String.iter
        (fun c ->
          Buffer.add_char buf c;
          if c = '\x00' then Buffer.add_char buf '\xFF')
        s;
      Buffer.add_char buf '\x00'
  | Int 0 -> Buffer.add_char buf (Char.chr zero_code)
  | Int n when n > 0 ->
      let k = bytes_needed n in
      Buffer.add_char buf (Char.chr (zero_code + k));
      for i = k - 1 downto 0 do
        Buffer.add_char buf (Char.chr ((n lsr (8 * i)) land 0xff))
      done
  | Int n ->
      (* negative: store n + (2^(8k) - 1) so bytewise order matches *)
      let k = bytes_needed n in
      Buffer.add_char buf (Char.chr (zero_code - k));
      let off = Int64.add (Int64.of_int n) (if k = 8 then Int64.minus_one else Int64.sub (Int64.shift_left 1L (8 * k)) 1L) in
      for i = k - 1 downto 0 do
        Buffer.add_char buf
          (Char.chr (Int64.to_int (Int64.shift_right_logical off (8 * i)) land 0xff))
      done

let pack elts =
  let buf = Buffer.create 32 in
  List.iter (add_elt buf) elts;
  Buffer.contents buf

let pack_str s = pack [ Str s ]
let pack_int n = pack [ Int n ]

(* [scan_elt s pos] is the offset just past the element starting at
   [pos] — the self-delimiting property as a function. *)
let scan_elt s pos =
  if pos >= String.length s then raise (Malformed "scan_elt: past end");
  let code = Char.code s.[pos] in
  if code = str_code then begin
    let n = String.length s in
    let i = ref (pos + 1) in
    let stop = ref (-1) in
    while !stop < 0 do
      if !i >= n then raise (Malformed "unterminated string element");
      if s.[!i] = '\x00' then
        if !i + 1 < n && s.[!i + 1] = '\xFF' then i := !i + 2
        else stop := !i + 1
      else incr i
    done;
    !stop
  end
  else if code >= zero_code - max_int_bytes && code <= zero_code + max_int_bytes
  then begin
    let k = abs (code - zero_code) in
    if pos + 1 + k > String.length s then raise (Malformed "truncated int element");
    pos + 1 + k
  end
  else raise (Malformed (Printf.sprintf "unknown type code 0x%02x" code))

let decode_elt s pos =
  let stop = scan_elt s pos in
  let code = Char.code s.[pos] in
  let elt =
    if code = str_code then begin
      let buf = Buffer.create (stop - pos) in
      let i = ref (pos + 1) in
      while !i < stop - 1 do
        Buffer.add_char buf s.[!i];
        if s.[!i] = '\x00' then i := !i + 2 else incr i
      done;
      Str (Buffer.contents buf)
    end
    else begin
      let k = abs (code - zero_code) in
      let mag = ref 0L in
      for i = pos + 1 to pos + k do
        mag := Int64.logor (Int64.shift_left !mag 8) (Int64.of_int (Char.code s.[i]))
      done;
      if code >= zero_code then Int (Int64.to_int !mag)
      else
        let off = if k = 8 then Int64.minus_one else Int64.sub (Int64.shift_left 1L (8 * k)) 1L in
        Int (Int64.to_int (Int64.sub !mag off))
    end
  in
  (elt, stop)

let unpack s =
  let n = String.length s in
  let rec go pos acc =
    if pos >= n then List.rev acc
    else
      let elt, stop = decode_elt s pos in
      go stop (elt :: acc)
  in
  go 0 []

let compare_packed = String.compare

(* The code bytes put strings (0x02) below every int (0x0c..0x1c), so
   the cross-type branches must sort [Str _] first. *)
let compare_elt a b =
  match (a, b) with
  | Int x, Int y -> compare x y
  | Str x, Str y -> String.compare x y
  | Str _, Int _ -> -1
  | Int _, Str _ -> 1

let compare_tuple a b =
  let rec go = function
    | [], [] -> 0
    | [], _ :: _ -> -1
    | _ :: _, [] -> 1
    | x :: xs, y :: ys ->
        let c = compare_elt x y in
        if c <> 0 then c else go (xs, ys)
  in
  go (a, b)

(* Prefix range: every packed tuple extending [elts] sorts inside
   [fst, snd).  0x00 is below every type code and 0xFF above, exactly
   the FoundationDB [range] convention. *)
let range_prefix elts =
  let p = pack elts in
  (p ^ "\x00", p ^ "\xFF")

let pp_elt ppf = function
  | Int n -> Format.fprintf ppf "Int %d" n
  | Str s -> Format.fprintf ppf "Str %S" s

let pp ppf elts =
  Format.fprintf ppf "(@[%a@])"
    (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ",@ ") pp_elt)
    elts
