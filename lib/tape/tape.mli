(** Instrumented external-memory tapes — the cost model of the paper.

    The ST(r,s,t) model (Definitions 1 and 2) charges two resources:

    - [r(N)]: one plus the total number of head-direction changes
      ({e reversals}) over all [t] external-memory tapes, i.e. the number
      of sequential scans;
    - [s(N)]: the total space used on the internal-memory tapes.

    This module provides one-sided-infinite tapes whose heads track their
    direction and count reversals, an internal-memory {!Meter}, and a
    {!Group} that aggregates both against an optional budget so that an
    algorithm implemented on this substrate is {e resource-sound by
    construction}: its reported scan count and internal-memory peak are
    measured, not claimed.

    Cell storage is pluggable: a tape's cells live on a {!Device} —
    RAM (the default), a block-cached flat file, or a sharded run
    directory — while all accounting stays up here, so the measured
    numbers are backend-independent by construction. *)

module Tuple = Tuple
(** Order-preserving, self-delimiting cell encoding — see {!Tuple}. *)

module Device = Device
(** Pluggable cell-storage backends — see {!Device}. *)

type direction = Left | Right

type 'a t
(** A one-sided-infinite tape with cells holding values of type ['a]
    (blank-initialized), a read/write head, and reversal accounting.
    Cell positions are 0-based; the head starts at position 0 moving
    {!Right}. *)

exception Budget_exceeded of string
(** Raised by any movement or allocation that would exceed the enclosing
    {!Group}'s budget. The payload describes the violated resource. *)

val create : ?name:string -> ?device:'a Device.t -> blank:'a -> unit -> 'a t
(** An empty tape. [name] appears in reports and error messages.
    [device] selects the cell store (default: in-RAM array). *)

val of_list : ?name:string -> ?device:'a Device.t -> blank:'a -> 'a list -> 'a t
(** A tape pre-loaded with the given cells starting at position 0. *)

val preload : 'a t -> 'a list -> unit
(** Fill cells [0 .. length - 1] at the device level: no head movement,
    no reversal, no injection or observer traffic — the cost-free "the
    input is already on the tape" premise of the model, available on
    every backend. *)

val preload_seq : 'a t -> 'a Seq.t -> unit
(** {!preload} from a sequence — fills huge external tapes without
    materializing an intermediate list. *)

val sync : 'a t -> unit
(** Flush the device's dirty cached state to backing storage. *)

val close : 'a t -> unit
(** Flush and release the device (deleting any backing files). *)

val device_kind : 'a t -> string
(** ["mem"], ["file"] or ["shard"]. *)

val device_stats : 'a t -> Device.stats

val name : 'a t -> string

val blank : 'a t -> 'a
(** The blank symbol this tape was created with. *)

val read : 'a t -> 'a
(** The cell under the head (blank if never written). Passes through the
    tape's {!Injection} hook, if any. *)

val write : 'a t -> 'a -> unit
(** Overwrite the cell under the head. Passes through the tape's
    {!Injection} hook, if any. *)

val move : 'a t -> direction -> unit
(** Move the head one cell. A change of direction relative to the
    previous movement increments the reversal counter.
    @raise Invalid_argument when moving [Left] at position 0. *)

val position : 'a t -> int
val head_direction : 'a t -> direction
(** Direction of the most recent movement ([Right] initially). *)

val at_left_end : 'a t -> bool

val reversals : 'a t -> int
(** Head-direction changes so far on this tape. *)

val cells_used : 'a t -> int
(** Highest position ever visited or written, plus one. *)

val rewind : 'a t -> unit
(** Move the head back to position 0 by repeated [move Left]
    (costing one reversal if the head was last moving right and is not
    already at position 0).

    {b Invariant}: a head already at position 0 — in particular a fresh
    head still moving {!Right} — issues no movement at all, so the call
    charges no reversal and the head direction is unchanged. Restart
    code (the fault layer's retried scans) relies on this: prefixing a
    forward scan with [rewind] is free when nothing needs rewinding.

    {b Fast path}: when the tape has neither an injection hook nor an
    observer, the rewind is a constant-time seek with identical
    accounting (one reversal if the head was moving right, budget
    checked before the position changes — so a {!Budget_exceeded} run
    observes the same tape state the per-cell loop would leave). With a
    hook installed the per-cell loop runs, so fault plans and move
    counters see every step. *)

val to_list : 'a t -> 'a list
(** Cells [0 .. cells_used - 1] as a list (includes blanks). *)

val iter_right : 'a t -> ('a -> unit) -> unit
(** Scan from the current position to the last used cell, applying the
    function to each cell and moving the head right past the end of the
    used region. *)

(** Fault-injection hooks — the seam the [lib/faults] layer plugs into.

    A hook sees every [read], [write] and [move] on the tape and decides
    its outcome. Any outcome other than [*_ok] increments the tape's
    {!faults} counter (surfaced per tape in {!Group.report}); [*_fail]
    outcomes additionally raise the carried exception at the call site
    (the fault layer uses a transient-I/O exception that its retry
    combinators classify). The substrate itself stays policy-free:
    which faults fire, at what rate and how values are corrupted is
    entirely the hook's business. *)
module Injection : sig
  type 'a read_outcome =
    | Read_ok  (** faithful read *)
    | Read_value of 'a
        (** silent read corruption (bit-flip, stuck or blank cell): the
            caller sees this value, the cell content is untouched *)
    | Read_fail of exn  (** transient I/O failure; raised to the caller *)

  type 'a write_outcome =
    | Write_ok  (** faithful write *)
    | Write_value of 'a  (** corrupted value written instead *)
    | Write_drop  (** torn write: nothing is written at all *)
    | Write_fail of exn  (** transient I/O failure; raised to the caller *)

  type move_outcome = Move_ok | Move_fail of exn

  type 'a t = {
    on_read : pos:int -> 'a -> 'a read_outcome;
    on_write : pos:int -> 'a -> 'a write_outcome;
    on_move : pos:int -> direction -> move_outcome;
  }
end

val set_injection : 'a t -> 'a Injection.t option -> unit
(** Install (or with [None] remove) the tape's fault-injection hook.
    Fault-free tapes pay a single [match] per operation. *)

val faults : 'a t -> int
(** Number of injected faults (corrupted/dropped/failed operations) so
    far on this tape. *)

(** Observation hooks — the seam the [lib/obs] metrics layer plugs
    into, symmetric with {!Injection}.

    An observer sees every completed [read], [write] and [move] on the
    tape (operations aborted by an injected fault are {e not} reported
    — a retried scan recounts its operations honestly, exactly as it
    re-pays its reversals). Observers are value-blind: they receive
    positions only, so one observer type serves tapes of every cell
    type and an unobserved tape pays a single [match] per operation —
    instrumentation is zero-cost when disabled. *)
module Observer : sig
  type t = {
    on_read : pos:int -> unit;
    on_write : pos:int -> unit;
    on_move : pos:int -> direction -> unit;
  }
end

val set_observer : 'a t -> Observer.t option -> unit
(** Install (or with [None] remove) the tape's observer. *)

(** Internal-memory meter (the [s(N)] resource). *)
module Meter : sig
  type t

  val create : unit -> t

  val alloc : t -> int -> unit
  (** Charge [n ≥ 0] units (bytes/cells — the unit is the caller's
      convention, kept consistent per algorithm). *)

  val free : t -> int -> unit
  (** Release [n] units. @raise Invalid_argument on underflow. *)

  val with_units : ?fail_fast:bool -> t -> int -> (unit -> 'b) -> 'b
  (** [with_units m n f] allocates [n], runs [f], frees [n] (also on
      exceptions). [~fail_fast:false] suspends {!Budget_exceeded} for
      the extent of the call: allocations past the budget are counted
      in {!overruns} instead of raising — the escape hatch the fault
      layer uses so a retried scan that re-charges its registers
      degrades a report rather than aborting a recovery. The previous
      fail-fast setting is restored on exit. *)

  val current : t -> int
  val peak : t -> int

  val overruns : t -> int
  (** Allocations that exceeded the budget while fail-fast was off. *)
end

(** Aggregation of tapes + meter against an [(r, s, t)] budget. *)
module Group : sig
  type 'a tape := 'a t
  type t

  type budget = {
    max_scans : int option;  (** bound on [1 + Σ reversals] *)
    max_internal : int option;  (** bound on the meter's peak *)
  }

  val unlimited : budget

  val create :
    ?fail_fast:bool -> ?budget:budget -> ?device:Device.spec -> unit -> t
  (** [~fail_fast:false] (default [true]) makes budget violations —
      both the scan bound and the meter's internal-memory bound —
      accumulate in [report.budget_overruns] instead of raising
      {!Budget_exceeded}: the fault layer's escape hatch for runs that
      must survive to the end of a recovery.

      [device] (default {!Device.Mem}) is the backend recipe for member
      tapes created through {!tape}/{!tape_of_list} {e with a codec}:
      the group owns the policy, each call site owns the byte format. *)

  val device : t -> Device.spec

  val add_tape : t -> 'a tape -> unit
  (** Register a tape; all its subsequent reversals count toward the
      group's scan budget. If the group carries an observer factory
      ({!set_observer}), the tape is instrumented on registration.
      @raise Invalid_argument if the tape already belongs to a group. *)

  val set_observer : t -> (string -> Observer.t) option -> unit
  (** Install an observer factory on the group: every member tape —
      current and future, keyed by its {!name} — gets the factory's
      observer installed. This is how the metrics layer reaches the
      auxiliary tapes an algorithm creates internally. [None] removes
      the observers from all members. *)

  val tape :
    t -> ?name:string -> ?codec:'a Device.Codec.t -> blank:'a -> unit -> 'a tape
  (** Create and register in one step. A [codec] opts the tape into the
      group's {!device} spec; without one (or under {!Device.Mem}) the
      tape's cells stay in RAM. *)

  val tape_of_list :
    t -> ?name:string -> ?codec:'a Device.Codec.t -> blank:'a -> 'a list ->
    'a tape
  (** {!tape} followed by a device-level {!preload} — no head motion. *)

  val sync_all : t -> unit
  (** {!Tape.sync} every member tape. *)

  val close_all : t -> unit
  (** {!Tape.close} every member tape (deleting backing files). *)

  val device_stats : t -> Device.stats
  (** Member devices' stats, summed. *)

  val meter : t -> Meter.t

  val total_reversals : t -> int
  val scans : t -> int
  (** [1 + total_reversals] — the paper's [r(N)] usage. *)

  val internal_peak : t -> int

  type report = {
    scans_used : int;
    reversals_by_tape : (string * int) list;
    internal_peak_units : int;
    cells_by_tape : (string * int) list;
    faults_by_tape : (string * int) list;
        (** injected faults per registered tape (all zero without a
            fault-injection hook) *)
    budget_overruns : int;
        (** budget violations tolerated while fail-fast was off *)
  }

  val report : t -> report

  val faults_injected : t -> int
  (** Total injected faults over all registered tapes. *)

  val budget_overruns : t -> int

  val pp_report : Format.formatter -> report -> unit
end
