(* Pluggable storage backends for tapes.

   A device is the dumb cell store underneath a tape: get/set by
   position, extent, sync, close.  Everything the cost model cares
   about — head position, direction, reversal counting, budgets, fault
   injection, observers — lives above this seam in [Tape], so swapping
   the backend cannot change any measured number.

   Three backends:
   - [Mem]: the original growable in-RAM array (the default, and the
     fallback when no byte codec is available for the cell type);
   - [File]: one flat file of fixed-size slots behind a direct-mapped
     block cache with sequential read-ahead;
   - [Shard]: a directory of run files, each the concatenation of
     self-delimiting tuple-framed cells (Extsort's spill format; the
     frames are order-preserving so merges compare cells bytewise). *)

type stats = {
  resident_bytes : int;  (** bytes currently cached in RAM *)
  io_read_bytes : int;
  io_write_bytes : int;
  backing_files : int;  (** files on disk (0 for the mem backend) *)
}

let zero_stats =
  { resident_bytes = 0; io_read_bytes = 0; io_write_bytes = 0; backing_files = 0 }

type 'a t = {
  dev_kind : string;
  dev_get : int -> 'a;
  dev_set : int -> 'a -> unit;
  dev_extent : unit -> int;
  dev_sync : unit -> unit;
  dev_close : unit -> unit;
  dev_stats : unit -> stats;
}

let kind d = d.dev_kind
let get d i = d.dev_get i
let set d i v = d.dev_set i v
let extent d = d.dev_extent ()
let sync d = d.dev_sync ()
let close d = d.dev_close ()
let stats d = d.dev_stats ()

module Codec = struct
  (* How cells of type ['a] become bytes.  [encode]'s output must be at
     most [max_bytes] long (the file backend sizes its slots with it);
     [decode buf pos] returns the value together with the offset just
     past its encoding, so shard files need no cell index. *)
  type 'a codec = {
    encode : 'a -> string;
    decode : string -> int -> 'a * int;
    max_bytes : int;
  }

  type 'a t = 'a codec

  let tuple_string ~max_len =
    {
      encode = (fun s -> Tuple.pack_str s);
      decode =
        (fun buf pos ->
          match Tuple.decode_elt buf pos with
          | Tuple.Str s, stop -> (s, stop)
          | Tuple.Int _, _ -> raise (Tuple.Malformed "expected Str cell"));
      (* worst case: every byte escaped, plus code + terminator *)
      max_bytes = (2 * max_len) + 2;
    }

  let tuple_int =
    {
      encode = (fun n -> Tuple.pack_int n);
      decode =
        (fun buf pos ->
          match Tuple.decode_elt buf pos with
          | Tuple.Int n, stop -> (n, stop)
          | Tuple.Str _, _ -> raise (Tuple.Malformed "expected Int cell"));
      max_bytes = 9;
    }

  let tuple_char =
    {
      encode = (fun c -> Tuple.pack_int (Char.code c));
      decode =
        (fun buf pos ->
          match Tuple.decode_elt buf pos with
          | Tuple.Int n, stop -> (Char.chr (n land 0xff), stop)
          | Tuple.Str _, _ -> raise (Tuple.Malformed "expected char cell"));
      max_bytes = 2;
    }
end

type spec =
  | Mem
  | File of { dir : string; block_bytes : int; cache_blocks : int }
  | Shard of { dir : string; shard_bytes : int; cache_shards : int }

let mem_spec = Mem
let file_spec ?(block_bytes = 1 lsl 16) ?(cache_blocks = 16) dir =
  File { dir; block_bytes; cache_blocks }
let shard_spec ?(shard_bytes = 1 lsl 20) ?(cache_shards = 2) dir =
  Shard { dir; shard_bytes; cache_shards }

let pp_spec ppf = function
  | Mem -> Format.fprintf ppf "mem"
  | File { dir; block_bytes; cache_blocks } ->
      Format.fprintf ppf "file(%s, block=%dB, cache=%d)" dir block_bytes
        cache_blocks
  | Shard { dir; shard_bytes; cache_shards } ->
      Format.fprintf ppf "shard(%s, shard=%dB, cache=%d)" dir shard_bytes
        cache_shards

(* ------------------------------------------------------------------ *)
(* Mem: the original growable array.                                   *)

let mem ~blank =
  let cells = ref (Array.make 16 blank) in
  let hi = ref 0 in
  let grow pos =
    if pos >= Array.length !cells then begin
      let cap = max (pos + 1) (2 * Array.length !cells) in
      let fresh = Array.make cap blank in
      Array.blit !cells 0 fresh 0 (Array.length !cells);
      cells := fresh
    end
  in
  {
    dev_kind = "mem";
    dev_get = (fun i -> if i < Array.length !cells then !cells.(i) else blank);
    dev_set =
      (fun i v ->
        grow i;
        !cells.(i) <- v;
        if i >= !hi then hi := i + 1);
    dev_extent = (fun () -> !hi);
    dev_sync = (fun () -> ());
    dev_close = (fun () -> ());
    dev_stats =
      (fun () ->
        { zero_stats with resident_bytes = Array.length !cells * 8 });
  }

(* ------------------------------------------------------------------ *)
(* Shared plumbing for the on-disk backends.                           *)

let mkdir_p dir =
  let rec go d =
    if d <> "/" && d <> "." && not (Sys.file_exists d) then begin
      go (Filename.dirname d);
      try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
    end
  in
  go dir

let sanitize name =
  String.map (fun c ->
      match c with 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '-' | '_' | '.' -> c | _ -> '-')
    name

(* unique backing-file names even when two tapes share a name *)
let file_counter = Atomic.make 0

let pread fd buf ~off =
  ignore (Unix.LargeFile.lseek fd (Int64.of_int off) Unix.SEEK_SET);
  let len = Bytes.length buf in
  let rec go done_ =
    if done_ < len then
      let n = Unix.read fd buf done_ (len - done_) in
      if n = 0 then begin
        (* past EOF: the rest of the block is blank *)
        Bytes.fill buf done_ (len - done_) '\x00';
        len
      end
      else go (done_ + n)
    else len
  in
  go 0

let pwrite fd buf ~off =
  ignore (Unix.LargeFile.lseek fd (Int64.of_int off) Unix.SEEK_SET);
  let len = Bytes.length buf in
  let rec go done_ =
    if done_ < len then go (done_ + Unix.write fd buf done_ (len - done_))
  in
  go 0

(* ------------------------------------------------------------------ *)
(* File: fixed-size slots, direct-mapped block cache, read-ahead.      *)

type block = {
  mutable blk : int; (* block index, -1 = empty *)
  mutable dirty : bool;
  buf : Bytes.t;
}

let file (type a) ~dir ~block_bytes ~cache_blocks ~(codec : a Codec.t)
    ~(blank : a) ~name : a t =
  mkdir_p dir;
  let id = Atomic.fetch_and_add file_counter 1 in
  let path = Filename.concat dir (Printf.sprintf "%s-%d.tape" (sanitize name) id) in
  let fd = Unix.openfile path [ Unix.O_RDWR; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
  (* slot = 2-byte big-endian payload length + payload; length 0 means
     never written, so a fresh (sparse) region reads as blank *)
  let slot_bytes = codec.Codec.max_bytes + 2 in
  let slots_per_block = max 1 (block_bytes / slot_bytes) in
  let bbytes = slots_per_block * slot_bytes in
  let cache =
    Array.init (max 1 cache_blocks) (fun _ ->
        { blk = -1; dirty = false; buf = Bytes.create bbytes })
  in
  let nlines = Array.length cache in
  let hi = ref 0 in
  let io_r = ref 0 and io_w = ref 0 in
  let last_loaded = ref (-2) in
  let flush line =
    if line.dirty then begin
      pwrite fd line.buf ~off:(line.blk * bbytes);
      io_w := !io_w + bbytes;
      line.dirty <- false
    end
  in
  let load line b =
    ignore (pread fd line.buf ~off:(b * bbytes));
    io_r := !io_r + bbytes;
    line.blk <- b
  in
  let line_for b =
    let line = cache.(b mod nlines) in
    if line.blk <> b then begin
      flush line;
      let sequential = b = !last_loaded + 1 in
      load line b;
      last_loaded := b;
      (* sequential scan: pull the next block in while the disk head is
         here, provided its cache line is idle *)
      if sequential && nlines > 1 then begin
        let nb = b + 1 in
        let nline = cache.(nb mod nlines) in
        if nline.blk <> nb && not nline.dirty then load nline nb
      end
    end
    else last_loaded := b;
    line
  in
  let slot_off i = i mod slots_per_block * slot_bytes in
  {
    dev_kind = "file";
    dev_get =
      (fun i ->
        let line = line_for (i / slots_per_block) in
        let off = slot_off i in
        let len = (Char.code (Bytes.get line.buf off) lsl 8)
                  lor Char.code (Bytes.get line.buf (off + 1)) in
        if len = 0 then blank
        else
          let s = Bytes.sub_string line.buf (off + 2) len in
          fst (codec.Codec.decode s 0));
    dev_set =
      (fun i v ->
        let line = line_for (i / slots_per_block) in
        let off = slot_off i in
        let enc = codec.Codec.encode v in
        let len = String.length enc in
        if len > codec.Codec.max_bytes then
          invalid_arg "Device.file: encoded cell exceeds codec max_bytes";
        Bytes.set line.buf off (Char.chr (len lsr 8));
        Bytes.set line.buf (off + 1) (Char.chr (len land 0xff));
        Bytes.blit_string enc 0 line.buf (off + 2) len;
        (* zero the slack so the backing file is deterministic *)
        Bytes.fill line.buf (off + 2 + len) (codec.Codec.max_bytes - len) '\x00';
        line.dirty <- true;
        if i >= !hi then hi := i + 1);
    dev_extent = (fun () -> !hi);
    dev_sync = (fun () -> Array.iter flush cache);
    dev_close =
      (fun () ->
        Array.iter flush cache;
        Unix.close fd;
        try Sys.remove path with Sys_error _ -> ());
    dev_stats =
      (fun () ->
        {
          resident_bytes = nlines * bbytes;
          io_read_bytes = !io_r;
          io_write_bytes = !io_w;
          backing_files = 1;
        });
  }

(* ------------------------------------------------------------------ *)
(* Shard: directory of run files of self-delimiting framed cells.      *)

(* In-cache image of one shard: the decoded cells plus a written map.
   On disk each cell is a 1-byte presence flag (0x00 = blank, 0x01 =
   present) followed, when present, by the codec's self-delimiting
   encoding — so a fully-written run file is exactly the concatenation
   of order-preserving cell encodings interleaved with 0x01 flags, and
   boundaries are recovered by [codec.decode]'s consumed offsets. *)
type 'a shard = {
  mutable sh : int; (* shard index, -1 = empty *)
  mutable sh_dirty : bool;
  vals : 'a array;
  present : Bytes.t;
}

let shard (type a) ~dir ~shard_bytes ~cache_shards ~(codec : a Codec.t)
    ~(blank : a) ~name : a t =
  mkdir_p dir;
  let id = Atomic.fetch_and_add file_counter 1 in
  let base = Filename.concat dir (Printf.sprintf "%s-%d" (sanitize name) id) in
  mkdir_p base;
  (* cells per shard from the target shard size and the worst-case cell *)
  let cells = max 16 (shard_bytes / (codec.Codec.max_bytes + 1)) in
  let cache =
    Array.init (max 1 cache_shards) (fun _ ->
        {
          sh = -1;
          sh_dirty = false;
          vals = Array.make cells blank;
          present = Bytes.make cells '\x00';
        })
  in
  let nlines = Array.length cache in
  let hi = ref 0 in
  let io_r = ref 0 and io_w = ref 0 in
  let nfiles = ref 0 in
  let path s = Filename.concat base (Printf.sprintf "run-%06d.shard" s) in
  let flush line =
    if line.sh_dirty then begin
      let buf = Buffer.create (cells * 2) in
      for i = 0 to cells - 1 do
        if Bytes.get line.present i = '\x00' then Buffer.add_char buf '\x00'
        else begin
          Buffer.add_char buf '\x01';
          Buffer.add_string buf (codec.Codec.encode line.vals.(i))
        end
      done;
      let p = path line.sh in
      if not (Sys.file_exists p) then incr nfiles;
      let oc = Out_channel.open_bin p in
      Out_channel.output_string oc (Buffer.contents buf);
      Out_channel.close oc;
      io_w := !io_w + Buffer.length buf;
      line.sh_dirty <- false
    end
  in
  let load line s =
    Array.fill line.vals 0 cells blank;
    Bytes.fill line.present 0 cells '\x00';
    let p = path s in
    (if Sys.file_exists p then begin
       let ic = In_channel.open_bin p in
       let data = In_channel.input_all ic in
       In_channel.close ic;
       io_r := !io_r + String.length data;
       let pos = ref 0 in
       let i = ref 0 in
       while !pos < String.length data && !i < cells do
         (match data.[!pos] with
         | '\x00' -> incr pos
         | _ ->
             let v, stop = codec.Codec.decode data (!pos + 1) in
             line.vals.(!i) <- v;
             Bytes.set line.present !i '\x01';
             pos := stop);
         incr i
       done
     end);
    line.sh <- s
  in
  let line_for s =
    let line = cache.(s mod nlines) in
    if line.sh <> s then begin
      flush line;
      load line s
    end;
    line
  in
  {
    dev_kind = "shard";
    dev_get =
      (fun i ->
        let line = line_for (i / cells) in
        let j = i mod cells in
        if Bytes.get line.present j = '\x00' then blank else line.vals.(j));
    dev_set =
      (fun i v ->
        let line = line_for (i / cells) in
        let j = i mod cells in
        line.vals.(j) <- v;
        Bytes.set line.present j '\x01';
        line.sh_dirty <- true;
        if i >= !hi then hi := i + 1);
    dev_extent = (fun () -> !hi);
    dev_sync = (fun () -> Array.iter flush cache);
    dev_close =
      (fun () ->
        (try
           let files = Sys.readdir base in
           Array.iter (fun f -> try Sys.remove (Filename.concat base f) with Sys_error _ -> ()) files;
           Unix.rmdir base
         with Sys_error _ | Unix.Unix_error _ -> ()));
    dev_stats =
      (fun () ->
        {
          resident_bytes = nlines * cells * (codec.Codec.max_bytes + 1);
          io_read_bytes = !io_r;
          io_write_bytes = !io_w;
          backing_files = !nfiles;
        });
  }

let instantiate (type a) ?(codec : a Codec.t option) spec ~(blank : a) ~name :
    a t =
  match (spec, codec) with
  | Mem, _ | _, None ->
      (* byte-backed backends need a codec; without one the tape is
         honest RAM — the caller keeps working, just not externally *)
      mem ~blank
  | File { dir; block_bytes; cache_blocks }, Some codec ->
      file ~dir ~block_bytes ~cache_blocks ~codec ~blank ~name
  | Shard { dir; shard_bytes; cache_shards }, Some codec ->
      shard ~dir ~shard_bytes ~cache_shards ~codec ~blank ~name
