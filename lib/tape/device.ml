(* Pluggable storage backends for tapes.

   A device is the dumb cell store underneath a tape: get/set by
   position, extent, sync, close.  Everything the cost model cares
   about — head position, direction, reversal counting, budgets, fault
   injection, observers — lives above this seam in [Tape], so swapping
   the backend cannot change any measured number.

   Three backends:
   - [Mem]: the original growable in-RAM array (the default, and the
     fallback when no byte codec is available for the cell type);
   - [File]: one flat file of CRC-framed fixed-size-slot blocks behind
     a direct-mapped block cache with sequential read-ahead;
   - [Shard]: a directory of run files, each a CRC-framed
     concatenation of self-delimiting tuple-framed cells (Extsort's
     spill format; the frames are order-preserving so merges compare
     cells bytewise), indexed by an atomically-renamed MANIFEST.

   The byte-backed backends do all their syscalls through a [Raw]
   record of closures (pread/pwrite/fsync/rename/remove), so
   [lib/faults] can inject storage-level failures — short reads and
   writes, EIO, ENOSPC, torn writes, bit rot — underneath the cost
   model.  Every framed read is checksum-verified; a mismatch
   quarantines the cache line and raises [Corrupt], which the
   phase-level retry combinator treats as transient: the re-scan pays
   honest reversals and the reread of the quarantined block is counted
   in the health counters below. *)

type stats = {
  resident_bytes : int;  (** bytes currently cached in RAM *)
  io_read_bytes : int;
  io_write_bytes : int;
  backing_files : int;  (** files on disk (0 for the mem backend) *)
}

let zero_stats =
  { resident_bytes = 0; io_read_bytes = 0; io_write_bytes = 0; backing_files = 0 }

(* ------------------------------------------------------------------ *)
(* CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) — the same
   checksum the checkpoint journal uses, computed table-driven here so
   the tape library stays dependency-free. *)

let crc_table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           c := if !c land 1 = 1 then 0xEDB88320 lxor (!c lsr 1) else !c lsr 1
         done;
         !c))

let crc32_sub buf pos len =
  let t = Lazy.force crc_table in
  let c = ref 0xFFFFFFFF in
  for i = pos to pos + len - 1 do
    c := t.((!c lxor Char.code (Bytes.get buf i)) land 0xff) lxor (!c lsr 8)
  done;
  !c lxor 0xFFFFFFFF

let crc32 s = crc32_sub (Bytes.unsafe_of_string s) 0 (String.length s)

(* ------------------------------------------------------------------ *)
(* Health: process-wide integrity counters and the event hook.

   These are the device-side halves of [Obs.Counters] fields: [lib/obs]
   snapshots them (it depends on this library; this library cannot
   depend on it) and installs the trace listener at link time. *)

type event =
  | Corrupt_detected of { device : string; offset : int }
  | Quarantine_reread of { device : string; offset : int }
  | Cleanup_failed of { device : string; path : string; error : string }

let listener : (event -> unit) ref = ref (fun _ -> ())
let on_event f = listener := f
let emit_event e = !listener e

let corrupt_counter = Atomic.make 0
let reread_counter = Atomic.make 0
let cleanup_counter = Atomic.make 0
let corrupt_detected () = Atomic.get corrupt_counter
let quarantine_rereads () = Atomic.get reread_counter
let cleanup_failures () = Atomic.get cleanup_counter

let reset_health () =
  Atomic.set corrupt_counter 0;
  Atomic.set reread_counter 0;
  Atomic.set cleanup_counter 0

exception Corrupt of { device : string; path : string; offset : int }

let () =
  Printexc.register_printer (function
    | Corrupt { device; path; offset } ->
        Some
          (Printf.sprintf "Tape.Device.Corrupt(device %s, cell %d, %s)" device
             offset path)
    | _ -> None)

(* A cleanup failure (close/remove in a [dev_close]) must never raise:
   close paths run inside [Fun.protect] finalizers, where an exception
   would mask the real error and leave sibling tapes unclosed.  It is
   counted and announced instead, so leaked spill files are never
   invisible. *)
let cleanup_failed ~device ~path e =
  Atomic.incr cleanup_counter;
  emit_event (Cleanup_failed { device; path; error = Printexc.to_string e })

let raise_corrupt ~device ~path ~offset =
  Atomic.incr corrupt_counter;
  emit_event (Corrupt_detected { device; offset });
  raise (Corrupt { device; path; offset })

(* ------------------------------------------------------------------ *)
(* Raw: the syscall seam under the byte-backed backends.

   One closure per primitive, each performing (at most) a single
   syscall — [pread]/[pwrite] may return short counts, and the
   full-transfer loops live {e above} the seam, so injected short
   transfers exercise the same loops real ones do. *)

module Raw = struct
  type t = {
    pread : Unix.file_descr -> Bytes.t -> pos:int -> len:int -> off:int -> int;
    pwrite : Unix.file_descr -> Bytes.t -> pos:int -> len:int -> off:int -> int;
    fsync : Unix.file_descr -> unit;
    rename : string -> string -> unit;
    remove : string -> unit;
  }

  let real =
    {
      pread =
        (fun fd buf ~pos ~len ~off ->
          ignore (Unix.LargeFile.lseek fd (Int64.of_int off) Unix.SEEK_SET);
          Unix.read fd buf pos len);
      pwrite =
        (fun fd buf ~pos ~len ~off ->
          ignore (Unix.LargeFile.lseek fd (Int64.of_int off) Unix.SEEK_SET);
          Unix.write fd buf pos len);
      fsync = Unix.fsync;
      rename = Sys.rename;
      remove = Sys.remove;
    }
end

type raw_factory = name:string -> Raw.t

(* Full-transfer loops over the single-syscall seam.  A zero-byte read
   means EOF: the rest of the buffer is blank (the backing file is
   sparse at never-written offsets). *)
let full_pread (raw : Raw.t) fd buf ~off =
  let len = Bytes.length buf in
  let rec go done_ =
    if done_ < len then begin
      let n = raw.pread fd buf ~pos:done_ ~len:(len - done_) ~off:(off + done_) in
      if n = 0 then Bytes.fill buf done_ (len - done_) '\x00' else go (done_ + n)
    end
  in
  go 0

let full_pwrite (raw : Raw.t) fd buf ~off =
  let len = Bytes.length buf in
  let rec go done_ =
    if done_ < len then
      go (done_ + raw.pwrite fd buf ~pos:done_ ~len:(len - done_) ~off:(off + done_))
  in
  go 0

(* Whole small files (shards, manifests) are written to a ".tmp"
   sibling and renamed into place, so a crash at any raw-op boundary
   leaves either the old file, the new file, or a detectable ".tmp"
   torn tail — never a silently half-new file under the final name. *)
let write_file_atomic (raw : Raw.t) path content ~fsync =
  let tmp = path ^ ".tmp" in
  let fd = Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
  (try
     full_pwrite raw fd (Bytes.unsafe_of_string content) ~off:0;
     if fsync then raw.Raw.fsync fd;
     Unix.close fd
   with e ->
     (* the half-written tmp must not outlive the failure (ENOSPC
        aborts leave no orphans); removal best-effort on a sick disk *)
     (try Unix.close fd with Unix.Unix_error _ -> ());
     (try raw.Raw.remove tmp with _ -> ());
     raise e);
  raw.Raw.rename tmp path

type 'a t = {
  dev_kind : string;
  dev_get : int -> 'a;
  dev_set : int -> 'a -> unit;
  dev_extent : unit -> int;
  dev_sync : unit -> unit;
  dev_close : unit -> unit;
  dev_stats : unit -> stats;
  dev_verify : unit -> verify_report;
}

and verify_report = { blocks_checked : int; corrupt_at : int list }

let clean_report = { blocks_checked = 0; corrupt_at = [] }

let kind d = d.dev_kind
let get d i = d.dev_get i
let set d i v = d.dev_set i v
let extent d = d.dev_extent ()
let sync d = d.dev_sync ()
let close d = d.dev_close ()
let stats d = d.dev_stats ()
let verify d = d.dev_verify ()

module Codec = struct
  (* How cells of type ['a] become bytes.  [encode]'s output must be at
     most [max_bytes] long (the file backend sizes its slots with it);
     [decode buf pos] returns the value together with the offset just
     past its encoding, so shard files need no cell index. *)
  type 'a codec = {
    encode : 'a -> string;
    decode : string -> int -> 'a * int;
    max_bytes : int;
  }

  type 'a t = 'a codec

  let tuple_string ~max_len =
    {
      encode = (fun s -> Tuple.pack_str s);
      decode =
        (fun buf pos ->
          match Tuple.decode_elt buf pos with
          | Tuple.Str s, stop -> (s, stop)
          | Tuple.Int _, _ -> raise (Tuple.Malformed "expected Str cell"));
      (* worst case: every byte escaped, plus code + terminator *)
      max_bytes = (2 * max_len) + 2;
    }

  let tuple_int =
    {
      encode = (fun n -> Tuple.pack_int n);
      decode =
        (fun buf pos ->
          match Tuple.decode_elt buf pos with
          | Tuple.Int n, stop -> (n, stop)
          | Tuple.Str _, _ -> raise (Tuple.Malformed "expected Int cell"));
      max_bytes = 9;
    }

  let tuple_char =
    {
      encode = (fun c -> Tuple.pack_int (Char.code c));
      decode =
        (fun buf pos ->
          match Tuple.decode_elt buf pos with
          | Tuple.Int n, stop -> (Char.chr (n land 0xff), stop)
          | Tuple.Str _, _ -> raise (Tuple.Malformed "expected char cell"));
      max_bytes = 2;
    }
end

type spec =
  | Mem
  | File of {
      dir : string;
      block_bytes : int;
      cache_blocks : int;
      raw : raw_factory option;
    }
  | Shard of {
      dir : string;
      shard_bytes : int;
      cache_shards : int;
      raw : raw_factory option;
    }

let mem_spec = Mem

let file_spec ?(block_bytes = 1 lsl 16) ?(cache_blocks = 16) ?raw dir =
  File { dir; block_bytes; cache_blocks; raw }

let shard_spec ?(shard_bytes = 1 lsl 20) ?(cache_shards = 2) ?raw dir =
  Shard { dir; shard_bytes; cache_shards; raw }

let pp_spec ppf = function
  | Mem -> Format.fprintf ppf "mem"
  | File { dir; block_bytes; cache_blocks; _ } ->
      Format.fprintf ppf "file(%s, block=%dB, cache=%d)" dir block_bytes
        cache_blocks
  | Shard { dir; shard_bytes; cache_shards; _ } ->
      Format.fprintf ppf "shard(%s, shard=%dB, cache=%d)" dir shard_bytes
        cache_shards

(* ------------------------------------------------------------------ *)
(* Mem: the original growable array.                                   *)

let mem ~blank =
  let cells = ref (Array.make 16 blank) in
  let hi = ref 0 in
  let grow pos =
    if pos >= Array.length !cells then begin
      let cap = max (pos + 1) (2 * Array.length !cells) in
      let fresh = Array.make cap blank in
      Array.blit !cells 0 fresh 0 (Array.length !cells);
      cells := fresh
    end
  in
  {
    dev_kind = "mem";
    dev_get = (fun i -> if i < Array.length !cells then !cells.(i) else blank);
    dev_set =
      (fun i v ->
        grow i;
        !cells.(i) <- v;
        if i >= !hi then hi := i + 1);
    dev_extent = (fun () -> !hi);
    dev_sync = (fun () -> ());
    dev_close = (fun () -> ());
    dev_stats =
      (fun () ->
        { zero_stats with resident_bytes = Array.length !cells * 8 });
    dev_verify = (fun () -> clean_report);
  }

(* ------------------------------------------------------------------ *)
(* Shared plumbing for the on-disk backends.                           *)

let mkdir_p dir =
  let rec go d =
    if d <> "/" && d <> "." && not (Sys.file_exists d) then begin
      go (Filename.dirname d);
      try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
    end
  in
  go dir

let sanitize name =
  String.map (fun c ->
      match c with 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '-' | '_' | '.' -> c | _ -> '-')
    name

(* unique backing-file names even when two tapes share a name *)
let file_counter = Atomic.make 0

let raw_of = function Some f -> f | None -> (fun ~name:_ -> Raw.real)

(* ------------------------------------------------------------------ *)
(* On-disk framing constants, shared with the offline scrubber.        *)

let file_magic = "STLBTAP2"
let file_header_bytes = 16

(* frame = presence byte (0x00 blank / 0x01 written) + CRC-32 of the
   payload (big-endian) + payload *)
let frame_overhead = 5
let shard_magic = "STLBSHD2"
let shard_header_bytes = 12
let manifest_name = "MANIFEST"
let manifest_magic = "STLBMAN2"

(* ------------------------------------------------------------------ *)
(* File: CRC-framed fixed-size slots, direct-mapped cache, read-ahead. *)

type block = {
  mutable blk : int; (* block index, -1 = empty *)
  mutable dirty : bool;
  buf : Bytes.t;
}

let file (type a) ~dir ~block_bytes ~cache_blocks ~raw ~(codec : a Codec.t)
    ~(blank : a) ~name : a t =
  mkdir_p dir;
  let raw = (raw_of raw) ~name in
  let id = Atomic.fetch_and_add file_counter 1 in
  let path = Filename.concat dir (Printf.sprintf "%s-%d.tape" (sanitize name) id) in
  let fd = Unix.openfile path [ Unix.O_RDWR; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
  (* slot = 2-byte big-endian payload length + payload; length 0 means
     never written, so a fresh (sparse) region reads as blank *)
  let slot_bytes = codec.Codec.max_bytes + 2 in
  let slots_per_block = max 1 (block_bytes / slot_bytes) in
  let bbytes = slots_per_block * slot_bytes in
  let fbytes = frame_overhead + bbytes in
  (* self-describing header so the offline scrubber can walk the file
     without knowing the codec *)
  let hdr = Bytes.make file_header_bytes '\x00' in
  Bytes.blit_string file_magic 0 hdr 0 8;
  Bytes.set_int32_be hdr 8 (Int32.of_int bbytes);
  Bytes.set_int32_be hdr 12 (Int32.of_int slot_bytes);
  (* if the header write itself fails (ENOSPC on a just-created file),
     the constructor must not leak the empty file it O_CREAT'd *)
  (try full_pwrite raw fd hdr ~off:0
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     (try raw.Raw.remove path with _ -> ());
     raise e);
  let frame = Bytes.create fbytes in
  let cache =
    Array.init (max 1 cache_blocks) (fun _ ->
        { blk = -1; dirty = false; buf = Bytes.create bbytes })
  in
  let nlines = Array.length cache in
  let hi = ref 0 in
  let io_r = ref 0 and io_w = ref 0 in
  let last_loaded = ref (-2) in
  (* block index quarantined by the last CRC failure; the next clean
     load of the same block is the recovery reread the ledger counts *)
  let quarantined = ref (-1) in
  let block_off b = file_header_bytes + (b * fbytes) in
  let flush line =
    if line.dirty then begin
      Bytes.set frame 0 '\x01';
      Bytes.set_int32_be frame 1 (Int32.of_int (crc32_sub line.buf 0 bbytes));
      Bytes.blit line.buf 0 frame frame_overhead bbytes;
      full_pwrite raw fd frame ~off:(block_off line.blk);
      io_w := !io_w + bbytes;
      line.dirty <- false
    end
  in
  let bad line b =
    line.blk <- -1;
    quarantined := b;
    raise_corrupt ~device:name ~path ~offset:(b * slots_per_block)
  in
  let load line b =
    full_pread raw fd frame ~off:(block_off b);
    io_r := !io_r + bbytes;
    (match Bytes.get frame 0 with
    | '\x00' ->
        (* never-written (sparse) region: the whole frame must be
           blank — a non-zero CRC field under a zero presence byte is
           a torn or rotted frame *)
        if Bytes.get_int32_be frame 1 <> 0l then bad line b;
        Bytes.fill line.buf 0 bbytes '\x00'
    | '\x01' ->
        let stored = Bytes.get_int32_be frame 1 in
        let actual = Int32.of_int (crc32_sub frame frame_overhead bbytes) in
        if stored <> actual then bad line b;
        Bytes.blit frame frame_overhead line.buf 0 bbytes
    | _ -> bad line b);
    if !quarantined = b then begin
      quarantined := -1;
      Atomic.incr reread_counter;
      emit_event (Quarantine_reread { device = name; offset = b * slots_per_block })
    end;
    line.blk <- b
  in
  let line_for b =
    let line = cache.(b mod nlines) in
    if line.blk <> b then begin
      flush line;
      let sequential = b = !last_loaded + 1 in
      load line b;
      last_loaded := b;
      (* sequential scan: pull the next block in while the disk head is
         here, provided its cache line is idle *)
      if sequential && nlines > 1 then begin
        let nb = b + 1 in
        let nline = cache.(nb mod nlines) in
        (* a speculative prefetch must not fail a block nobody asked
           for: the detection is counted, but the demand load decides
           whether the corruption is real (bit rot in transit heals on
           the re-read; rot at rest raises there) *)
        if nline.blk <> nb && not nline.dirty then
          try load nline nb with Corrupt _ -> quarantined := -1
      end
    end
    else last_loaded := b;
    line
  in
  let slot_off i = i mod slots_per_block * slot_bytes in
  {
    dev_kind = "file";
    dev_get =
      (fun i ->
        let line = line_for (i / slots_per_block) in
        let off = slot_off i in
        let len = (Char.code (Bytes.get line.buf off) lsl 8)
                  lor Char.code (Bytes.get line.buf (off + 1)) in
        if len = 0 then blank
        else
          let s = Bytes.sub_string line.buf (off + 2) len in
          fst (codec.Codec.decode s 0));
    dev_set =
      (fun i v ->
        let line = line_for (i / slots_per_block) in
        let off = slot_off i in
        let enc = codec.Codec.encode v in
        let len = String.length enc in
        if len > codec.Codec.max_bytes then
          invalid_arg "Device.file: encoded cell exceeds codec max_bytes";
        Bytes.set line.buf off (Char.chr (len lsr 8));
        Bytes.set line.buf (off + 1) (Char.chr (len land 0xff));
        Bytes.blit_string enc 0 line.buf (off + 2) len;
        (* zero the slack so the backing file is deterministic *)
        Bytes.fill line.buf (off + 2 + len) (codec.Codec.max_bytes - len) '\x00';
        line.dirty <- true;
        if i >= !hi then hi := i + 1);
    dev_extent = (fun () -> !hi);
    dev_sync =
      (fun () ->
        Array.iter flush cache;
        raw.Raw.fsync fd);
    dev_close =
      (fun () ->
        (* the spill file is about to be deleted, so dirty cache lines
           are not flushed: a close must succeed even on a full disk *)
        (try Unix.close fd with e -> cleanup_failed ~device:name ~path e);
        try raw.Raw.remove path with e -> cleanup_failed ~device:name ~path e);
    dev_stats =
      (fun () ->
        {
          resident_bytes = nlines * bbytes;
          io_read_bytes = !io_r;
          io_write_bytes = !io_w;
          backing_files = 1;
        });
    dev_verify =
      (fun () ->
        Array.iter flush cache;
        let nblocks = (!hi + slots_per_block - 1) / slots_per_block in
        let scratch = Bytes.create fbytes in
        let corrupt_at = ref [] in
        for b = nblocks - 1 downto 0 do
          full_pread raw fd scratch ~off:(block_off b);
          io_r := !io_r + bbytes;
          let ok =
            match Bytes.get scratch 0 with
            | '\x00' -> Bytes.get_int32_be scratch 1 = 0l
            | '\x01' ->
                Bytes.get_int32_be scratch 1
                = Int32.of_int (crc32_sub scratch frame_overhead bbytes)
            | _ -> false
          in
          if not ok then corrupt_at := (b * slots_per_block) :: !corrupt_at
        done;
        { blocks_checked = nblocks; corrupt_at = !corrupt_at });
  }

(* ------------------------------------------------------------------ *)
(* Shard: directory of run files of self-delimiting framed cells.      *)

(* In-cache image of one shard: the decoded cells plus a written map.
   On disk each cell is a 1-byte presence flag (0x00 = blank, 0x01 =
   present) followed, when present, by the codec's self-delimiting
   encoding — so a fully-written run file is exactly the concatenation
   of order-preserving cell encodings interleaved with 0x01 flags, and
   boundaries are recovered by [codec.decode]'s consumed offsets.  The
   file itself carries an 8-byte magic and the CRC-32 of that payload,
   and the directory's MANIFEST lists every run file with its expected
   checksum — the reopen protocol (see DESIGN.md) discards anything
   the MANIFEST does not vouch for. *)
type 'a shard = {
  mutable sh : int; (* shard index, -1 = empty *)
  mutable sh_dirty : bool;
  vals : 'a array;
  present : Bytes.t;
}

let shard (type a) ~dir ~shard_bytes ~cache_shards ~raw ~(codec : a Codec.t)
    ~(blank : a) ~name : a t =
  mkdir_p dir;
  let raw = (raw_of raw) ~name in
  let id = Atomic.fetch_and_add file_counter 1 in
  let base = Filename.concat dir (Printf.sprintf "%s-%d" (sanitize name) id) in
  mkdir_p base;
  (* a fresh device owns its directory: stale leftovers (from a
     crashed run that reused the name) would otherwise be read back as
     data, so they are cleared — loudly, via the cleanup counter, if
     clearing fails *)
  (match Sys.readdir base with
  | [||] -> ()
  | entries ->
      Array.iter
        (fun f ->
          let p = Filename.concat base f in
          try raw.Raw.remove p with e -> cleanup_failed ~device:name ~path:p e)
        entries
  | exception Sys_error _ -> ());
  (* cells per shard from the target shard size and the worst-case cell *)
  let cells = max 16 (shard_bytes / (codec.Codec.max_bytes + 1)) in
  let cache =
    Array.init (max 1 cache_shards) (fun _ ->
        {
          sh = -1;
          sh_dirty = false;
          vals = Array.make cells blank;
          present = Bytes.make cells '\x00';
        })
  in
  let nlines = Array.length cache in
  let hi = ref 0 in
  let io_r = ref 0 and io_w = ref 0 in
  let nfiles = ref 0 in
  let quarantined = ref (-1) in
  (* filename -> (payload crc, payload bytes); mirrored to MANIFEST on
     every flush (atomic tmp+rename), fsync'd on [sync] *)
  let manifest : (string, int * int) Hashtbl.t = Hashtbl.create 16 in
  let fname s = Printf.sprintf "run-%06d.shard" s in
  let path s = Filename.concat base (fname s) in
  let manifest_path = Filename.concat base manifest_name in
  let write_manifest ~fsync =
    let b = Buffer.create 256 in
    Buffer.add_string b manifest_magic;
    Buffer.add_char b '\n';
    Hashtbl.fold (fun f meta acc -> (f, meta) :: acc) manifest []
    |> List.sort compare
    |> List.iter (fun (f, (crc, len)) ->
           Buffer.add_string b (Printf.sprintf "%08x %d %s\n" crc len f));
    write_file_atomic raw manifest_path (Buffer.contents b) ~fsync
  in
  let flush line =
    if line.sh_dirty then begin
      let buf = Buffer.create (cells * 2) in
      for i = 0 to cells - 1 do
        if Bytes.get line.present i = '\x00' then Buffer.add_char buf '\x00'
        else begin
          Buffer.add_char buf '\x01';
          Buffer.add_string buf (codec.Codec.encode line.vals.(i))
        end
      done;
      let payload = Buffer.contents buf in
      let crc = crc32 payload in
      let framed = Buffer.create (String.length payload + shard_header_bytes) in
      Buffer.add_string framed shard_magic;
      let crcb = Bytes.create 4 in
      Bytes.set_int32_be crcb 0 (Int32.of_int crc);
      Buffer.add_bytes framed crcb;
      Buffer.add_string framed payload;
      let f = fname line.sh in
      if not (Hashtbl.mem manifest f) then incr nfiles;
      write_file_atomic raw (path line.sh) (Buffer.contents framed) ~fsync:false;
      Hashtbl.replace manifest f (crc, String.length payload);
      write_manifest ~fsync:false;
      io_w := !io_w + String.length payload;
      line.sh_dirty <- false
    end
  in
  (* read + CRC-check one shard file; [None] when absent, payload when
     intact, [Corrupt] (with the shard's first cell position) when the
     frame fails any check *)
  let read_shard s =
    let p = path s in
    if not (Sys.file_exists p) then None
    else begin
      let fd = Unix.openfile p [ Unix.O_RDONLY ] 0o644 in
      let size = (Unix.fstat fd).Unix.st_size in
      let data = Bytes.create size in
      (try full_pread raw fd data ~off:0
       with e ->
         (try Unix.close fd with Unix.Unix_error _ -> ());
         raise e);
      Unix.close fd;
      let intact =
        size >= shard_header_bytes
        && Bytes.sub_string data 0 8 = shard_magic
        && Bytes.get_int32_be data 8
           = Int32.of_int (crc32_sub data shard_header_bytes (size - shard_header_bytes))
      in
      if not intact then begin
        quarantined := s;
        raise_corrupt ~device:name ~path:p ~offset:(s * cells)
      end;
      Some (Bytes.sub_string data shard_header_bytes (size - shard_header_bytes))
    end
  in
  let load line s =
    Array.fill line.vals 0 cells blank;
    Bytes.fill line.present 0 cells '\x00';
    line.sh <- -1;
    (match read_shard s with
    | None -> ()
    | Some data ->
        io_r := !io_r + String.length data;
        let pos = ref 0 in
        let i = ref 0 in
        while !pos < String.length data && !i < cells do
          (match data.[!pos] with
          | '\x00' -> incr pos
          | _ ->
              let v, stop = codec.Codec.decode data (!pos + 1) in
              line.vals.(!i) <- v;
              Bytes.set line.present !i '\x01';
              pos := stop);
          incr i
        done);
    if !quarantined = s then begin
      quarantined := -1;
      Atomic.incr reread_counter;
      emit_event (Quarantine_reread { device = name; offset = s * cells })
    end;
    line.sh <- s
  in
  let line_for s =
    let line = cache.(s mod nlines) in
    if line.sh <> s then begin
      flush line;
      load line s
    end;
    line
  in
  {
    dev_kind = "shard";
    dev_get =
      (fun i ->
        let line = line_for (i / cells) in
        let j = i mod cells in
        if Bytes.get line.present j = '\x00' then blank else line.vals.(j));
    dev_set =
      (fun i v ->
        let line = line_for (i / cells) in
        let j = i mod cells in
        line.vals.(j) <- v;
        Bytes.set line.present j '\x01';
        line.sh_dirty <- true;
        if i >= !hi then hi := i + 1);
    dev_extent = (fun () -> !hi);
    dev_sync =
      (fun () ->
        Array.iter flush cache;
        write_manifest ~fsync:true);
    dev_close =
      (fun () ->
        (* spill is scratch: delete without flushing, and never raise —
           each failure is counted instead of aborting the sweep *)
        (match Sys.readdir base with
        | entries ->
            Array.iter
              (fun f ->
                let p = Filename.concat base f in
                try raw.Raw.remove p
                with e -> cleanup_failed ~device:name ~path:p e)
              entries
        | exception Sys_error _ -> ());
        try Unix.rmdir base with e -> cleanup_failed ~device:name ~path:base e);
    dev_stats =
      (fun () ->
        {
          resident_bytes = nlines * cells * (codec.Codec.max_bytes + 1);
          io_read_bytes = !io_r;
          io_write_bytes = !io_w;
          backing_files = !nfiles;
        });
    dev_verify =
      (fun () ->
        Array.iter flush cache;
        let nshards = (!hi + cells - 1) / cells in
        let corrupt_at = ref [] in
        let checked = ref 0 in
        for s = nshards - 1 downto 0 do
          if Sys.file_exists (path s) then begin
            incr checked;
            match read_shard s with
            | Some payload -> io_r := !io_r + String.length payload
            | None -> ()
            | exception Corrupt _ ->
                quarantined := -1;
                corrupt_at := (s * cells) :: !corrupt_at
          end
        done;
        { blocks_checked = !checked; corrupt_at = !corrupt_at });
  }

let instantiate (type a) ?(codec : a Codec.t option) spec ~(blank : a) ~name :
    a t =
  match (spec, codec) with
  | Mem, _ | _, None ->
      (* byte-backed backends need a codec; without one the tape is
         honest RAM — the caller keeps working, just not externally *)
      mem ~blank
  | File { dir; block_bytes; cache_blocks; raw }, Some codec ->
      file ~dir ~block_bytes ~cache_blocks ~raw ~codec ~blank ~name
  | Shard { dir; shard_bytes; cache_shards; raw }, Some codec ->
      shard ~dir ~shard_bytes ~cache_shards ~raw ~codec ~blank ~name

(* ------------------------------------------------------------------ *)
(* Scrub: offline integrity walk over a spill directory.               *)

module Scrub = struct
  type finding = { path : string; offset : int; what : string }

  type report = {
    files_checked : int;
    blocks_checked : int;
    findings : finding list;
    removed : int;
  }

  let empty = { files_checked = 0; blocks_checked = 0; findings = []; removed = 0 }

  let finding ~path ~offset what = { path; offset; what }

  let read_file path =
    let ic = In_channel.open_bin path in
    let data = In_channel.input_all ic in
    In_channel.close ic;
    data

  (* One ".tape" file: self-describing header, then CRC-framed blocks
     to EOF.  A trailing partial frame is a torn tail (a crash mid
     pwrite); any interior frame failing its checksum is corrupt. *)
  let check_tape_file path =
    let data = read_file path in
    let len = String.length data in
    if len < file_header_bytes || String.sub data 0 8 <> file_magic then
      (0, [ finding ~path ~offset:(-1) "bad-header" ])
    else begin
      let b = Bytes.unsafe_of_string data in
      let bbytes = Int32.to_int (Bytes.get_int32_be b 8) in
      let fbytes = frame_overhead + bbytes in
      if bbytes <= 0 then (0, [ finding ~path ~offset:(-1) "bad-header" ])
      else begin
        let findings = ref [] in
        let blocks = ref 0 in
        let off = ref file_header_bytes in
        while !off < len do
          if len - !off < fbytes then begin
            findings := finding ~path ~offset:!off "torn" :: !findings;
            off := len
          end
          else begin
            incr blocks;
            let ok =
              match data.[!off] with
              | '\x00' -> Bytes.get_int32_be b (!off + 1) = 0l
              | '\x01' ->
                  Bytes.get_int32_be b (!off + 1)
                  = Int32.of_int (crc32_sub b (!off + frame_overhead) bbytes)
              | _ -> false
            in
            if not ok then
              findings := finding ~path ~offset:!off "crc-mismatch" :: !findings;
            off := !off + fbytes
          end
        done;
        (!blocks, List.rev !findings)
      end
    end

  let check_shard_payload path data =
    let len = String.length data in
    if
      len >= shard_header_bytes
      && String.sub data 0 8 = shard_magic
      && Bytes.get_int32_be (Bytes.unsafe_of_string data) 8
         = Int32.of_int
             (crc32_sub (Bytes.unsafe_of_string data) shard_header_bytes
                (len - shard_header_bytes))
    then None
    else Some (finding ~path ~offset:0 "crc-mismatch")

  let parse_manifest data =
    match String.split_on_char '\n' data with
    | magic :: rest when magic = manifest_magic ->
        let entries =
          List.filter_map
            (fun line ->
              match String.index_opt line ' ' with
              | None -> None
              | Some i -> (
                  let crc = int_of_string_opt ("0x" ^ String.sub line 0 i) in
                  let rest = String.sub line (i + 1) (String.length line - i - 1) in
                  match (crc, String.index_opt rest ' ') with
                  | Some crc, Some j ->
                      let len = int_of_string_opt (String.sub rest 0 j) in
                      let f = String.sub rest (j + 1) (String.length rest - j - 1) in
                      Option.map (fun len -> (f, (crc, len))) len
                  | _ -> None))
            rest
        in
        Some entries
    | _ -> None

  (* One shard directory: the MANIFEST vouches for run files by
     checksum; a run file it does not vouch for — unlisted, mismatched,
     or a leftover ".tmp" — is a torn tail or an orphan. *)
  let check_shard_dir base =
    let entries = try Sys.readdir base with Sys_error _ -> [||] in
    let mpath = Filename.concat base manifest_name in
    let listed =
      if Sys.file_exists mpath then parse_manifest (read_file mpath) else None
    in
    let findings = ref [] in
    let blocks = ref 0 in
    let files = ref 0 in
    (match (listed, Sys.file_exists mpath) with
    | None, true ->
        findings := finding ~path:mpath ~offset:(-1) "bad-header" :: !findings
    | _ -> ());
    Array.iter
      (fun f ->
        let p = Filename.concat base f in
        if f <> manifest_name && not (Sys.is_directory p) then begin
          incr files;
          if Filename.check_suffix f ".tmp" then
            findings := finding ~path:p ~offset:(-1) "torn" :: !findings
          else begin
            incr blocks;
            let data = read_file p in
            let self = check_shard_payload p data in
            match listed with
            | None -> (
                (* no manifest vouches for this file: even an intact
                   frame is an orphan of a crashed run *)
                match self with
                | None -> findings := finding ~path:p ~offset:(-1) "orphan" :: !findings
                | Some bad -> findings := bad :: !findings)
            | Some entries -> (
                match (List.assoc_opt f entries, self) with
                | None, None ->
                    findings := finding ~path:p ~offset:(-1) "orphan" :: !findings
                | None, Some bad -> findings := bad :: !findings
                | Some _, Some bad -> findings := bad :: !findings
                | Some (crc, len), None ->
                    if
                      crc <> crc32_sub (Bytes.unsafe_of_string data)
                               shard_header_bytes
                               (String.length data - shard_header_bytes)
                      || len <> String.length data - shard_header_bytes
                    then
                      findings := finding ~path:p ~offset:(-1) "torn" :: !findings)
          end
        end)
      entries;
    (* files listed in the manifest but gone from disk: a crash between
       a remove and the manifest rewrite *)
    (match listed with
    | Some entries ->
        List.iter
          (fun (f, _) ->
            if not (Sys.file_exists (Filename.concat base f)) then
              findings :=
                finding ~path:(Filename.concat base f) ~offset:(-1) "missing"
                :: !findings)
          entries
    | None -> ());
    (!files, !blocks, List.rev !findings)

  let dir ?(fix = false) root =
    if not (Sys.file_exists root && Sys.is_directory root) then empty
    else begin
      let files_checked = ref 0 in
      let blocks_checked = ref 0 in
      let findings = ref [] in
      Array.iter
        (fun f ->
          let p = Filename.concat root f in
          if Sys.is_directory p then begin
            let nf, nb, fs = check_shard_dir p in
            files_checked := !files_checked + nf;
            blocks_checked := !blocks_checked + nb;
            findings := !findings @ fs
          end
          else if Filename.check_suffix f ".tape" then begin
            incr files_checked;
            let nb, fs = check_tape_file p in
            blocks_checked := !blocks_checked + nb;
            findings := !findings @ fs
          end
          else begin
            incr files_checked;
            findings := !findings @ [ finding ~path:p ~offset:(-1) "orphan" ]
          end)
        (try Sys.readdir root with Sys_error _ -> [||]);
      let removed = ref 0 in
      if fix then begin
        (* a flagged file is scratch from a dead run: remove it, then
           prune directories the removals emptied *)
        List.iter
          (fun { path; _ } ->
            if Sys.file_exists path then begin
              try
                Sys.remove path;
                incr removed
              with Sys_error _ -> ()
            end)
          !findings;
        Array.iter
          (fun f ->
            let p = Filename.concat root f in
            if Sys.is_directory p then begin
              (* drop manifest entries whose shard was removed above
                 (or lost to the crash) so the survivors re-verify
                 clean; same sorted format as the device's own
                 rewrite *)
              let mpath = Filename.concat p manifest_name in
              (if Sys.file_exists mpath then
                 match parse_manifest (read_file mpath) with
                 | Some entries ->
                     let live =
                       List.filter
                         (fun (f, _) -> Sys.file_exists (Filename.concat p f))
                         entries
                     in
                     if List.length live <> List.length entries then begin
                       let b = Buffer.create 256 in
                       Buffer.add_string b manifest_magic;
                       Buffer.add_char b '\n';
                       List.iter
                         (fun (f, (crc, len)) ->
                           Buffer.add_string b
                             (Printf.sprintf "%08x %d %s\n" crc len f))
                         (List.sort compare live);
                       let oc = Out_channel.open_bin mpath in
                       Out_channel.output_string oc (Buffer.contents b);
                       Out_channel.close oc
                     end
                 | None -> ());
              (match Sys.readdir p with
              | [| m |] when m = manifest_name ->
                  (* the manifest alone vouches for nothing *)
                  (try
                     Sys.remove (Filename.concat p m);
                     incr removed
                   with Sys_error _ -> ())
              | _ -> ());
              match Sys.readdir p with
              | [||] -> ( try Unix.rmdir p with Unix.Unix_error _ -> ())
              | _ -> ()
            end)
          (try Sys.readdir root with Sys_error _ -> [||])
      end;
      {
        files_checked = !files_checked;
        blocks_checked = !blocks_checked;
        findings = !findings;
        removed = !removed;
      }
    end
end
