type direction = Left | Right

exception Budget_exceeded of string

module Meter = struct
  type t = {
    mutable current : int;
    mutable peak : int;
    mutable limit : int option;
    mutable fail_fast : bool;
    mutable overruns : int;
  }

  let create () =
    { current = 0; peak = 0; limit = None; fail_fast = true; overruns = 0 }

  let alloc m n =
    if n < 0 then invalid_arg "Meter.alloc: negative";
    m.current <- m.current + n;
    if m.current > m.peak then begin
      m.peak <- m.current;
      match m.limit with
      | Some lim when m.peak > lim ->
          if m.fail_fast then
            raise
              (Budget_exceeded
                 (Printf.sprintf "internal memory: peak %d > budget %d" m.peak lim))
          else m.overruns <- m.overruns + 1
      | Some _ | None -> ()
    end

  let free m n =
    if n < 0 || n > m.current then invalid_arg "Meter.free: underflow";
    m.current <- m.current - n

  let with_units ?fail_fast m n f =
    let saved = m.fail_fast in
    (match fail_fast with Some b -> m.fail_fast <- b | None -> ());
    Fun.protect
      ~finally:(fun () -> m.fail_fast <- saved)
      (fun () ->
        alloc m n;
        Fun.protect ~finally:(fun () -> free m n) f)

  let current m = m.current
  let peak m = m.peak
  let overruns m = m.overruns
end

module Injection = struct
  type 'a read_outcome = Read_ok | Read_value of 'a | Read_fail of exn
  type 'a write_outcome = Write_ok | Write_value of 'a | Write_drop | Write_fail of exn
  type move_outcome = Move_ok | Move_fail of exn

  type 'a t = {
    on_read : pos:int -> 'a -> 'a read_outcome;
    on_write : pos:int -> 'a -> 'a write_outcome;
    on_move : pos:int -> direction -> move_outcome;
  }
end

module Observer = struct
  type t = {
    on_read : pos:int -> unit;
    on_write : pos:int -> unit;
    on_move : pos:int -> direction -> unit;
  }
end

type member = {
  m_name : string;
  m_revs : unit -> int;
  m_cells : unit -> int;
  m_faults : unit -> int;
  m_set_observer : Observer.t option -> unit;
}

type group_state = {
  mutable members : member list; (* reversed registration order *)
  g_meter : Meter.t;
  max_scans : int option;
  mutable g_fail_fast : bool;
  mutable scan_overruns : int;
  mutable g_observer : (string -> Observer.t) option;
}

type 'a t = {
  name : string;
  blank : 'a;
  mutable cells : 'a array;
  mutable used : int;
  mutable pos : int;
  mutable dir : direction;
  mutable revs : int;
  mutable group : group_state option;
  mutable injection : 'a Injection.t option;
  mutable faults : int;
  mutable observer : Observer.t option;
}

(* atomic: tapes are created from several domains at once under the
   parallel harness, and a plain ref would race *)
let fresh_counter = Atomic.make 0

let create ?name ~blank () =
  let id = Atomic.fetch_and_add fresh_counter 1 + 1 in
  let name = match name with Some n -> n | None -> Printf.sprintf "tape%d" id
  in
  {
    name;
    blank;
    cells = Array.make 16 blank;
    used = 0;
    pos = 0;
    dir = Right;
    revs = 0;
    group = None;
    injection = None;
    faults = 0;
    observer = None;
  }

let touch tp pos =
  if pos >= tp.used then tp.used <- pos + 1;
  if pos >= Array.length tp.cells then begin
    let cap = max (pos + 1) (2 * Array.length tp.cells) in
    let fresh = Array.make cap tp.blank in
    Array.blit tp.cells 0 fresh 0 (Array.length tp.cells);
    tp.cells <- fresh
  end

let of_list ?name ~blank items =
  let tp = create ?name ~blank () in
  List.iteri
    (fun i x ->
      touch tp i;
      tp.cells.(i) <- x)
    items;
  tp

let name tp = tp.name
let blank tp = tp.blank

let set_injection tp h = tp.injection <- h
let faults tp = tp.faults
let set_observer tp o = tp.observer <- o

(* Observers fire only once an operation has completed: an operation
   aborted by an injected fault is re-counted when its phase retries,
   so observed counts are as honest as the reversal accounting. *)
let observe_read tp =
  match tp.observer with None -> () | Some o -> o.Observer.on_read ~pos:tp.pos

let observe_write tp =
  match tp.observer with None -> () | Some o -> o.Observer.on_write ~pos:tp.pos

let observe_move tp dir =
  match tp.observer with
  | None -> ()
  | Some o -> o.Observer.on_move ~pos:tp.pos dir

let read tp =
  touch tp tp.pos;
  let v = tp.cells.(tp.pos) in
  match tp.injection with
  | None ->
      observe_read tp;
      v
  | Some h -> (
      match h.Injection.on_read ~pos:tp.pos v with
      | Injection.Read_ok ->
          observe_read tp;
          v
      | Injection.Read_value v' ->
          (* silent read corruption: the cell itself is untouched *)
          tp.faults <- tp.faults + 1;
          observe_read tp;
          v'
      | Injection.Read_fail e ->
          tp.faults <- tp.faults + 1;
          raise e)

let write tp x =
  touch tp tp.pos;
  match tp.injection with
  | None ->
      tp.cells.(tp.pos) <- x;
      observe_write tp
  | Some h -> (
      match h.Injection.on_write ~pos:tp.pos x with
      | Injection.Write_ok ->
          tp.cells.(tp.pos) <- x;
          observe_write tp
      | Injection.Write_value x' ->
          tp.faults <- tp.faults + 1;
          tp.cells.(tp.pos) <- x';
          observe_write tp
      | Injection.Write_drop ->
          (* torn write: the old cell content survives *)
          tp.faults <- tp.faults + 1;
          observe_write tp
      | Injection.Write_fail e ->
          tp.faults <- tp.faults + 1;
          raise e)

let total_group_reversals g =
  List.fold_left (fun acc m -> acc + m.m_revs ()) 0 g.members

let check_scan_budget tp =
  match tp.group with
  | None -> ()
  | Some g -> (
      match g.max_scans with
      | None -> ()
      | Some lim ->
          let scans = 1 + total_group_reversals g in
          if scans > lim then
            if g.g_fail_fast then
              raise
                (Budget_exceeded
                   (Printf.sprintf "scans: %d > budget %d (reversal on %s)" scans
                      lim tp.name))
            else g.scan_overruns <- g.scan_overruns + 1)

let move tp dir =
  (match dir with
  | Left -> if tp.pos = 0 then invalid_arg "Tape.move: left of position 0"
  | Right -> ());
  (match tp.injection with
  | None -> ()
  | Some h -> (
      match h.Injection.on_move ~pos:tp.pos dir with
      | Injection.Move_ok -> ()
      | Injection.Move_fail e ->
          tp.faults <- tp.faults + 1;
          raise e));
  if dir <> tp.dir then begin
    tp.revs <- tp.revs + 1;
    tp.dir <- dir;
    check_scan_budget tp
  end;
  tp.pos <- (match dir with Left -> tp.pos - 1 | Right -> tp.pos + 1);
  touch tp tp.pos;
  observe_move tp dir

let position tp = tp.pos
let head_direction tp = tp.dir
let at_left_end tp = tp.pos = 0
let reversals tp = tp.revs
let cells_used tp = tp.used

(* Invariant: a head already at position 0 — in particular the initial
   head, still moving Right — issues no move, so rewinding it charges no
   reversal and leaves the direction untouched. *)
let rewind tp =
  if tp.pos > 0 then
    while tp.pos > 0 do
      move tp Left
    done

let to_list tp = Array.to_list (Array.sub tp.cells 0 tp.used)

let iter_right tp f =
  (* capture the content boundary first: moving right extends [used] *)
  let stop = tp.used in
  while tp.pos < stop do
    f (read tp);
    move tp Right
  done

let tape_create = create
let tape_of_list' = of_list

module Group = struct
  type t = group_state

  type budget = { max_scans : int option; max_internal : int option }

  let unlimited = { max_scans = None; max_internal = None }

  let create ?(fail_fast = true) ?(budget = unlimited) () =
    let meter = Meter.create () in
    meter.Meter.limit <- budget.max_internal;
    meter.Meter.fail_fast <- fail_fast;
    {
      members = [];
      g_meter = meter;
      max_scans = budget.max_scans;
      g_fail_fast = fail_fast;
      scan_overruns = 0;
      g_observer = None;
    }

  let add_tape g tp =
    (match tp.group with
    | Some _ -> invalid_arg "Group.add_tape: tape already grouped"
    | None -> ());
    tp.group <- Some g;
    (match g.g_observer with
    | None -> ()
    | Some factory -> tp.observer <- Some (factory tp.name));
    g.members <-
      {
        m_name = tp.name;
        m_revs = (fun () -> tp.revs);
        m_cells = (fun () -> tp.used);
        m_faults = (fun () -> tp.faults);
        m_set_observer = (fun o -> tp.observer <- o);
      }
      :: g.members

  let set_observer g factory =
    g.g_observer <- factory;
    List.iter
      (fun m ->
        m.m_set_observer
          (match factory with None -> None | Some f -> Some (f m.m_name)))
      g.members

  let tape g ?name ~blank () =
    let tp = tape_create ?name ~blank () in
    add_tape g tp;
    tp

  let tape_of_list g ?name ~blank items =
    let tp = tape_of_list' ?name ~blank items in
    add_tape g tp;
    tp

  let meter g = g.g_meter
  let total_reversals = total_group_reversals
  let scans g = 1 + total_reversals g
  let internal_peak g = Meter.peak g.g_meter

  type report = {
    scans_used : int;
    reversals_by_tape : (string * int) list;
    internal_peak_units : int;
    cells_by_tape : (string * int) list;
    faults_by_tape : (string * int) list;
    budget_overruns : int;
  }

  let faults_injected g =
    List.fold_left (fun acc m -> acc + m.m_faults ()) 0 g.members

  let budget_overruns g = g.scan_overruns + Meter.overruns g.g_meter

  let report g =
    let members = List.rev g.members in
    {
      scans_used = scans g;
      reversals_by_tape = List.map (fun m -> (m.m_name, m.m_revs ())) members;
      internal_peak_units = internal_peak g;
      cells_by_tape = List.map (fun m -> (m.m_name, m.m_cells ())) members;
      faults_by_tape = List.map (fun m -> (m.m_name, m.m_faults ())) members;
      budget_overruns = budget_overruns g;
    }

  let pp_report ppf r =
    let pp_pairs =
      Fmt.list ~sep:(Fmt.any ",@ ") (Fmt.pair ~sep:(Fmt.any "=") Fmt.string Fmt.int)
    in
    Format.fprintf ppf
      "@[<v>scans: %d@,reversals: @[%a@]@,internal peak: %d@,cells: @[%a@]"
      r.scans_used pp_pairs r.reversals_by_tape r.internal_peak_units pp_pairs
      r.cells_by_tape;
    if List.exists (fun (_, f) -> f > 0) r.faults_by_tape then
      Format.fprintf ppf "@,faults: @[%a@]" pp_pairs r.faults_by_tape;
    if r.budget_overruns > 0 then
      Format.fprintf ppf "@,budget overruns: %d" r.budget_overruns;
    Format.fprintf ppf "@]"
end
