(* Re-exports: the byte-level cell format and the storage backends live
   in sibling modules; [Tape.Tuple] / [Tape.Device] is their public
   address. *)
module Tuple = Tuple
module Device = Device

type direction = Left | Right

exception Budget_exceeded of string

module Meter = struct
  type t = {
    mutable current : int;
    mutable peak : int;
    mutable limit : int option;
    mutable fail_fast : bool;
    mutable overruns : int;
  }

  let create () =
    { current = 0; peak = 0; limit = None; fail_fast = true; overruns = 0 }

  let alloc m n =
    if n < 0 then invalid_arg "Meter.alloc: negative";
    m.current <- m.current + n;
    if m.current > m.peak then begin
      m.peak <- m.current;
      match m.limit with
      | Some lim when m.peak > lim ->
          if m.fail_fast then
            raise
              (Budget_exceeded
                 (Printf.sprintf "internal memory: peak %d > budget %d" m.peak lim))
          else m.overruns <- m.overruns + 1
      | Some _ | None -> ()
    end

  let free m n =
    if n < 0 || n > m.current then invalid_arg "Meter.free: underflow";
    m.current <- m.current - n

  let with_units ?fail_fast m n f =
    let saved = m.fail_fast in
    (match fail_fast with Some b -> m.fail_fast <- b | None -> ());
    Fun.protect
      ~finally:(fun () -> m.fail_fast <- saved)
      (fun () ->
        alloc m n;
        Fun.protect ~finally:(fun () -> free m n) f)

  let current m = m.current
  let peak m = m.peak
  let overruns m = m.overruns
end

module Injection = struct
  type 'a read_outcome = Read_ok | Read_value of 'a | Read_fail of exn
  type 'a write_outcome = Write_ok | Write_value of 'a | Write_drop | Write_fail of exn
  type move_outcome = Move_ok | Move_fail of exn

  type 'a t = {
    on_read : pos:int -> 'a -> 'a read_outcome;
    on_write : pos:int -> 'a -> 'a write_outcome;
    on_move : pos:int -> direction -> move_outcome;
  }
end

module Observer = struct
  type t = {
    on_read : pos:int -> unit;
    on_write : pos:int -> unit;
    on_move : pos:int -> direction -> unit;
  }
end

type member = {
  m_name : string;
  m_revs : unit -> int;
  m_cells : unit -> int;
  m_faults : unit -> int;
  m_set_observer : Observer.t option -> unit;
  m_sync : unit -> unit;
  m_close : unit -> unit;
  m_stats : unit -> Device.stats;
}

type group_state = {
  mutable members : member list; (* reversed registration order *)
  g_meter : Meter.t;
  max_scans : int option;
  mutable g_fail_fast : bool;
  mutable scan_overruns : int;
  mutable g_observer : (string -> Observer.t) option;
  g_device : Device.spec;
}

type 'a t = {
  name : string;
  blank : 'a;
  dev : 'a Device.t;
  mutable used : int; (* highest position visited or written, plus one *)
  mutable pos : int;
  mutable dir : direction;
  mutable revs : int;
  mutable group : group_state option;
  mutable injection : 'a Injection.t option;
  mutable faults : int;
  mutable observer : Observer.t option;
}

(* atomic: tapes are created from several domains at once under the
   parallel harness, and a plain ref would race *)
let fresh_counter = Atomic.make 0

let create ?name ?device ~blank () =
  let id = Atomic.fetch_and_add fresh_counter 1 + 1 in
  let name = match name with Some n -> n | None -> Printf.sprintf "tape%d" id
  in
  let dev = match device with Some d -> d | None -> Device.mem ~blank in
  {
    name;
    blank;
    dev;
    used = 0;
    pos = 0;
    dir = Right;
    revs = 0;
    group = None;
    injection = None;
    faults = 0;
    observer = None;
  }

let touch tp pos = if pos >= tp.used then tp.used <- pos + 1

(* Device-level fill: no head movement, no reversal, no observer or
   injection traffic — the cost-free "the input is already on the tape"
   premise every experiment starts from, at any backend. *)
let preload_seq tp items =
  Seq.iteri
    (fun i x ->
      touch tp i;
      Device.set tp.dev i x)
    items

let preload tp items = preload_seq tp (List.to_seq items)

let of_list ?name ?device ~blank items =
  let tp = create ?name ?device ~blank () in
  preload tp items;
  tp

let name tp = tp.name
let blank tp = tp.blank
let device_kind tp = Device.kind tp.dev
let device_stats tp = Device.stats tp.dev
let sync tp = Device.sync tp.dev
let close tp = Device.close tp.dev

let set_injection tp h = tp.injection <- h
let faults tp = tp.faults
let set_observer tp o = tp.observer <- o

(* Observers fire only once an operation has completed: an operation
   aborted by an injected fault is re-counted when its phase retries,
   so observed counts are as honest as the reversal accounting. *)
let observe_read tp =
  match tp.observer with None -> () | Some o -> o.Observer.on_read ~pos:tp.pos

let observe_write tp =
  match tp.observer with None -> () | Some o -> o.Observer.on_write ~pos:tp.pos

let observe_move tp dir =
  match tp.observer with
  | None -> ()
  | Some o -> o.Observer.on_move ~pos:tp.pos dir

let read tp =
  touch tp tp.pos;
  let v = Device.get tp.dev tp.pos in
  match tp.injection with
  | None ->
      observe_read tp;
      v
  | Some h -> (
      match h.Injection.on_read ~pos:tp.pos v with
      | Injection.Read_ok ->
          observe_read tp;
          v
      | Injection.Read_value v' ->
          (* silent read corruption: the cell itself is untouched *)
          tp.faults <- tp.faults + 1;
          observe_read tp;
          v'
      | Injection.Read_fail e ->
          tp.faults <- tp.faults + 1;
          raise e)

let write tp x =
  touch tp tp.pos;
  match tp.injection with
  | None ->
      Device.set tp.dev tp.pos x;
      observe_write tp
  | Some h -> (
      match h.Injection.on_write ~pos:tp.pos x with
      | Injection.Write_ok ->
          Device.set tp.dev tp.pos x;
          observe_write tp
      | Injection.Write_value x' ->
          tp.faults <- tp.faults + 1;
          Device.set tp.dev tp.pos x';
          observe_write tp
      | Injection.Write_drop ->
          (* torn write: the old cell content survives *)
          tp.faults <- tp.faults + 1;
          observe_write tp
      | Injection.Write_fail e ->
          tp.faults <- tp.faults + 1;
          raise e)

let total_group_reversals g =
  List.fold_left (fun acc m -> acc + m.m_revs ()) 0 g.members

let check_scan_budget tp =
  match tp.group with
  | None -> ()
  | Some g -> (
      match g.max_scans with
      | None -> ()
      | Some lim ->
          let scans = 1 + total_group_reversals g in
          if scans > lim then
            if g.g_fail_fast then
              raise
                (Budget_exceeded
                   (Printf.sprintf "scans: %d > budget %d (reversal on %s)" scans
                      lim tp.name))
            else g.scan_overruns <- g.scan_overruns + 1)

let move tp dir =
  (match dir with
  | Left -> if tp.pos = 0 then invalid_arg "Tape.move: left of position 0"
  | Right -> ());
  (match tp.injection with
  | None -> ()
  | Some h -> (
      match h.Injection.on_move ~pos:tp.pos dir with
      | Injection.Move_ok -> ()
      | Injection.Move_fail e ->
          tp.faults <- tp.faults + 1;
          raise e));
  if dir <> tp.dir then begin
    tp.revs <- tp.revs + 1;
    tp.dir <- dir;
    check_scan_budget tp
  end;
  tp.pos <- (match dir with Left -> tp.pos - 1 | Right -> tp.pos + 1);
  touch tp tp.pos;
  observe_move tp dir

let position tp = tp.pos
let head_direction tp = tp.dir
let at_left_end tp = tp.pos = 0
let reversals tp = tp.revs
let cells_used tp = tp.used

(* Invariant: a head already at position 0 — in particular the initial
   head, still moving Right — issues no move, so rewinding it charges no
   reversal and leaves the direction untouched.

   Fast path: with no injection hook and no observer installed, nobody
   is entitled to see the individual [move Left] steps, so the seek is
   constant-time. It replicates the per-cell loop's accounting exactly,
   including the failure state: the loop's first leftward move charges
   the reversal and checks the scan budget BEFORE the position changes,
   so on [Budget_exceeded] the head must still be at its old position
   with [dir = Left] and the reversal recorded. A hooked tape takes the
   loop so fault plans (and move counters) still see every step. *)
let rewind tp =
  if tp.pos > 0 then
    match (tp.injection, tp.observer) with
    | None, None ->
        if tp.dir <> Left then begin
          tp.revs <- tp.revs + 1;
          tp.dir <- Left;
          check_scan_budget tp
        end;
        tp.pos <- 0
    | _ ->
        while tp.pos > 0 do
          move tp Left
        done

let to_list tp = List.init tp.used (Device.get tp.dev)

let iter_right tp f =
  (* capture the content boundary first: moving right extends [used] *)
  let stop = tp.used in
  while tp.pos < stop do
    f (read tp);
    move tp Right
  done

let tape_create = create

module Group = struct
  type t = group_state

  type budget = { max_scans : int option; max_internal : int option }

  let unlimited = { max_scans = None; max_internal = None }

  let create ?(fail_fast = true) ?(budget = unlimited) ?(device = Device.Mem) ()
      =
    let meter = Meter.create () in
    meter.Meter.limit <- budget.max_internal;
    meter.Meter.fail_fast <- fail_fast;
    {
      members = [];
      g_meter = meter;
      max_scans = budget.max_scans;
      g_fail_fast = fail_fast;
      scan_overruns = 0;
      g_observer = None;
      g_device = device;
    }

  let device g = g.g_device

  let add_tape g tp =
    (match tp.group with
    | Some _ -> invalid_arg "Group.add_tape: tape already grouped"
    | None -> ());
    tp.group <- Some g;
    (match g.g_observer with
    | None -> ()
    | Some factory -> tp.observer <- Some (factory tp.name));
    g.members <-
      {
        m_name = tp.name;
        m_revs = (fun () -> tp.revs);
        m_cells = (fun () -> tp.used);
        m_faults = (fun () -> tp.faults);
        m_set_observer = (fun o -> tp.observer <- o);
        m_sync = (fun () -> Device.sync tp.dev);
        m_close = (fun () -> Device.close tp.dev);
        m_stats = (fun () -> Device.stats tp.dev);
      }
      :: g.members

  let set_observer g factory =
    g.g_observer <- factory;
    List.iter
      (fun m ->
        m.m_set_observer
          (match factory with None -> None | Some f -> Some (f m.m_name)))
      g.members

  (* A codec opts the tape into the group's device spec; without one the
     cell type has no byte format, so the tape stays in RAM. *)
  let tape g ?name ?codec ~blank () =
    let tp =
      match (g.g_device, codec) with
      | Device.Mem, _ | _, None -> tape_create ?name ~blank ()
      | spec, Some codec ->
          let id = Atomic.fetch_and_add fresh_counter 1 + 1 in
          let name =
            match name with Some n -> n | None -> Printf.sprintf "tape%d" id
          in
          let dev = Device.instantiate ~codec spec ~blank ~name in
          tape_create ~name ~device:dev ~blank ()
    in
    add_tape g tp;
    tp

  let tape_of_list g ?name ?codec ~blank items =
    let tp = tape g ?name ?codec ~blank () in
    preload tp items;
    tp

  let sync_all g = List.iter (fun m -> m.m_sync ()) g.members

  let close_all g = List.iter (fun m -> m.m_close ()) g.members

  let device_stats g =
    List.fold_left
      (fun acc m ->
        let s = m.m_stats () in
        Device.
          {
            resident_bytes = acc.resident_bytes + s.resident_bytes;
            io_read_bytes = acc.io_read_bytes + s.io_read_bytes;
            io_write_bytes = acc.io_write_bytes + s.io_write_bytes;
            backing_files = acc.backing_files + s.backing_files;
          })
      Device.zero_stats g.members

  let meter g = g.g_meter
  let total_reversals = total_group_reversals
  let scans g = 1 + total_reversals g
  let internal_peak g = Meter.peak g.g_meter

  type report = {
    scans_used : int;
    reversals_by_tape : (string * int) list;
    internal_peak_units : int;
    cells_by_tape : (string * int) list;
    faults_by_tape : (string * int) list;
    budget_overruns : int;
  }

  let faults_injected g =
    List.fold_left (fun acc m -> acc + m.m_faults ()) 0 g.members

  let budget_overruns g = g.scan_overruns + Meter.overruns g.g_meter

  let report g =
    let members = List.rev g.members in
    {
      scans_used = scans g;
      reversals_by_tape = List.map (fun m -> (m.m_name, m.m_revs ())) members;
      internal_peak_units = internal_peak g;
      cells_by_tape = List.map (fun m -> (m.m_name, m.m_cells ())) members;
      faults_by_tape = List.map (fun m -> (m.m_name, m.m_faults ())) members;
      budget_overruns = budget_overruns g;
    }

  let pp_report ppf r =
    let pp_pairs =
      Fmt.list ~sep:(Fmt.any ",@ ") (Fmt.pair ~sep:(Fmt.any "=") Fmt.string Fmt.int)
    in
    Format.fprintf ppf
      "@[<v>scans: %d@,reversals: @[%a@]@,internal peak: %d@,cells: @[%a@]"
      r.scans_used pp_pairs r.reversals_by_tape r.internal_peak_units pp_pairs
      r.cells_by_tape;
    if List.exists (fun (_, f) -> f > 0) r.faults_by_tape then
      Format.fprintf ppf "@,faults: @[%a@]" pp_pairs r.faults_by_tape;
    if r.budget_overruns > 0 then
      Format.fprintf ppf "@,budget overruns: %d" r.budget_overruns;
    Format.fprintf ppf "@]"
end
