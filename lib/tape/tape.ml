type direction = Left | Right

exception Budget_exceeded of string

module Meter = struct
  type t = {
    mutable current : int;
    mutable peak : int;
    mutable limit : int option;
  }

  let create () = { current = 0; peak = 0; limit = None }

  let alloc m n =
    if n < 0 then invalid_arg "Meter.alloc: negative";
    m.current <- m.current + n;
    if m.current > m.peak then begin
      m.peak <- m.current;
      match m.limit with
      | Some lim when m.peak > lim ->
          raise
            (Budget_exceeded
               (Printf.sprintf "internal memory: peak %d > budget %d" m.peak lim))
      | Some _ | None -> ()
    end

  let free m n =
    if n < 0 || n > m.current then invalid_arg "Meter.free: underflow";
    m.current <- m.current - n

  let with_units m n f =
    alloc m n;
    Fun.protect ~finally:(fun () -> free m n) f

  let current m = m.current
  let peak m = m.peak
end

type member = {
  m_name : string;
  m_revs : unit -> int;
  m_cells : unit -> int;
}

type group_state = {
  mutable members : member list; (* reversed registration order *)
  g_meter : Meter.t;
  max_scans : int option;
}

type 'a t = {
  name : string;
  blank : 'a;
  mutable cells : 'a array;
  mutable used : int;
  mutable pos : int;
  mutable dir : direction;
  mutable revs : int;
  mutable group : group_state option;
}

(* atomic: tapes are created from several domains at once under the
   parallel harness, and a plain ref would race *)
let fresh_counter = Atomic.make 0

let create ?name ~blank () =
  let id = Atomic.fetch_and_add fresh_counter 1 + 1 in
  let name = match name with Some n -> n | None -> Printf.sprintf "tape%d" id
  in
  {
    name;
    blank;
    cells = Array.make 16 blank;
    used = 0;
    pos = 0;
    dir = Right;
    revs = 0;
    group = None;
  }

let touch tp pos =
  if pos >= tp.used then tp.used <- pos + 1;
  if pos >= Array.length tp.cells then begin
    let cap = max (pos + 1) (2 * Array.length tp.cells) in
    let fresh = Array.make cap tp.blank in
    Array.blit tp.cells 0 fresh 0 (Array.length tp.cells);
    tp.cells <- fresh
  end

let of_list ?name ~blank items =
  let tp = create ?name ~blank () in
  List.iteri
    (fun i x ->
      touch tp i;
      tp.cells.(i) <- x)
    items;
  tp

let name tp = tp.name

let read tp =
  touch tp tp.pos;
  tp.cells.(tp.pos)

let write tp x =
  touch tp tp.pos;
  tp.cells.(tp.pos) <- x

let total_group_reversals g =
  List.fold_left (fun acc m -> acc + m.m_revs ()) 0 g.members

let check_scan_budget tp =
  match tp.group with
  | None -> ()
  | Some g -> (
      match g.max_scans with
      | None -> ()
      | Some lim ->
          let scans = 1 + total_group_reversals g in
          if scans > lim then
            raise
              (Budget_exceeded
                 (Printf.sprintf "scans: %d > budget %d (reversal on %s)" scans
                    lim tp.name)))

let move tp dir =
  (match dir with
  | Left -> if tp.pos = 0 then invalid_arg "Tape.move: left of position 0"
  | Right -> ());
  if dir <> tp.dir then begin
    tp.revs <- tp.revs + 1;
    tp.dir <- dir;
    check_scan_budget tp
  end;
  tp.pos <- (match dir with Left -> tp.pos - 1 | Right -> tp.pos + 1);
  touch tp tp.pos

let position tp = tp.pos
let head_direction tp = tp.dir
let at_left_end tp = tp.pos = 0
let reversals tp = tp.revs
let cells_used tp = tp.used

let rewind tp =
  while tp.pos > 0 do
    move tp Left
  done

let to_list tp = Array.to_list (Array.sub tp.cells 0 tp.used)

let iter_right tp f =
  (* capture the content boundary first: moving right extends [used] *)
  let stop = tp.used in
  while tp.pos < stop do
    f (read tp);
    move tp Right
  done

let tape_create = create
let tape_of_list' = of_list

module Group = struct
  type t = group_state

  type budget = { max_scans : int option; max_internal : int option }

  let unlimited = { max_scans = None; max_internal = None }

  let create ?(budget = unlimited) () =
    let meter = Meter.create () in
    meter.Meter.limit <- budget.max_internal;
    { members = []; g_meter = meter; max_scans = budget.max_scans }

  let add_tape g tp =
    (match tp.group with
    | Some _ -> invalid_arg "Group.add_tape: tape already grouped"
    | None -> ());
    tp.group <- Some g;
    g.members <-
      {
        m_name = tp.name;
        m_revs = (fun () -> tp.revs);
        m_cells = (fun () -> tp.used);
      }
      :: g.members

  let tape g ?name ~blank () =
    let tp = tape_create ?name ~blank () in
    add_tape g tp;
    tp

  let tape_of_list g ?name ~blank items =
    let tp = tape_of_list' ?name ~blank items in
    add_tape g tp;
    tp

  let meter g = g.g_meter
  let total_reversals = total_group_reversals
  let scans g = 1 + total_reversals g
  let internal_peak g = Meter.peak g.g_meter

  type report = {
    scans_used : int;
    reversals_by_tape : (string * int) list;
    internal_peak_units : int;
    cells_by_tape : (string * int) list;
  }

  let report g =
    let members = List.rev g.members in
    {
      scans_used = scans g;
      reversals_by_tape = List.map (fun m -> (m.m_name, m.m_revs ())) members;
      internal_peak_units = internal_peak g;
      cells_by_tape = List.map (fun m -> (m.m_name, m.m_cells ())) members;
    }

  let pp_report ppf r =
    let pp_pairs =
      Fmt.list ~sep:(Fmt.any ",@ ") (Fmt.pair ~sep:(Fmt.any "=") Fmt.string Fmt.int)
    in
    Format.fprintf ppf
      "@[<v>scans: %d@,reversals: @[%a@]@,internal peak: %d@,cells: @[%a@]@]"
      r.scans_used pp_pairs r.reversals_by_tape r.internal_peak_units pp_pairs
      r.cells_by_tape
end
