(** Checkpoint/resume for the experiment harness.

    One journal file per experiment table, holding the table's entire
    stdout plus a CRC-32 of it. {!run} replays a journaled table
    verbatim — a resumed run is byte-identical to an uninterrupted one
    by construction — and computes, prints and stores a missing one.
    Entries are written atomically (tmp + rename) only after a table
    completes, so a run killed mid-table recomputes exactly that table;
    an entry that fails to parse or whose checksum disagrees with its
    payload is discarded with a warning on stderr and recomputed. *)

type t

val open_dir : string -> t
(** Open (creating as needed, like [mkdir -p]) a checkpoint directory.
    @raise Invalid_argument if the path exists and is not a directory. *)

val dir : t -> string

type health = {
  entries_stored : int;  (** journal entries written by this handle *)
  entries_replayed : int;  (** valid entries found and replayed *)
  entries_discarded : int;
      (** corrupt entries discarded and recomputed — never silent: each
          discard also warns on stderr and bumps
          [Obs.Counters.checkpoint_discarded] *)
}

val health : t -> health
(** Per-handle journal accounting, in the style of
    [Parallel.Pool.health]. A resumed run whose journal rotted shows a
    nonzero [entries_discarded] here rather than quietly recomputing. *)

val run : t option -> name:string -> (unit -> unit) -> unit
(** [run (Some t) ~name f]: if [name] has a valid journal entry, print
    its stored output and skip [f]; otherwise run [f] with stdout
    captured (at the fd level, so the text is exactly what a terminal
    would have seen), re-emit the capture, and journal it. If [f]
    raises, its partial output is re-emitted, nothing is stored, and
    the exception propagates. [run None ~name f] is just [f ()].

    Either way, [run] emits ["table"] events ([status] one of
    ["start"], ["done"], ["replayed"]) on the current {!Obs.Trace}
    sink, if one is installed. *)

val store : t -> name:string -> output:string -> unit
(** Journal [output] under [name] (atomic tmp + rename). *)

val lookup : t -> name:string -> string option
(** The stored output for [name], or [None] (with a stderr warning and
    the file removed) if the entry is missing, unparsable or fails its
    checksum. *)

val crc32 : string -> int
(** The journal checksum (standard reflected CRC-32), exposed for the
    corruption tests. *)
