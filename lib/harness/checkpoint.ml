(* Checkpoint/resume for the experiment harness.

   Granularity is one journal file per experiment table: the table's
   entire stdout is captured while it runs, stored (with a CRC-32 of
   the text) under [dir/<name>.json], and on resume replayed verbatim -
   so a resumed run is byte-identical to an uninterrupted one by
   construction. A run killed mid-table leaves no journal entry for
   that table (entries are written atomically, tmp + rename, after the
   table completes) and the table is simply recomputed.

   The journal is a tiny flat JSON object written and parsed here by
   hand - no JSON library in the tree, and the format has exactly three
   fields. Anything unparsable, or whose checksum disagrees with its
   payload, is discarded with a warning on stderr and recomputed. *)

type t = {
  dir : string;
  mutable stored : int;
  mutable replayed : int;
  mutable discarded : int;
}

type health = { entries_stored : int; entries_replayed : int; entries_discarded : int }

let dir t = t.dir

let health t =
  {
    entries_stored = t.stored;
    entries_replayed = t.replayed;
    entries_discarded = t.discarded;
  }

let rec mkdirs d =
  if d = "" || d = "." || d = "/" then ()
  else if Sys.file_exists d then begin
    if not (Sys.is_directory d) then
      invalid_arg (Printf.sprintf "Checkpoint: %s exists and is not a directory" d)
  end
  else begin
    mkdirs (Filename.dirname d);
    try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let open_dir dir =
  mkdirs dir;
  { dir; stored = 0; replayed = 0; discarded = 0 }

let path t name = Filename.concat t.dir (name ^ ".json")

(* ---------------- CRC-32 (the usual reflected 0xEDB88320) ----------- *)

let crc_table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           c := if !c land 1 = 1 then 0xEDB88320 lxor (!c lsr 1) else !c lsr 1
         done;
         !c))

let crc32 s =
  let tbl = Lazy.force crc_table in
  let c = ref 0xFFFFFFFF in
  String.iter
    (fun ch -> c := tbl.((!c lxor Char.code ch) land 0xFF) lxor (!c lsr 8))
    s;
  !c lxor 0xFFFFFFFF

(* ---------------- flat JSON encode/decode --------------------------- *)

let escape s =
  let b = Buffer.create (String.length s + 16) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let encode ~name ~output =
  Printf.sprintf "{\"experiment\":\"%s\",\"crc\":%d,\"output\":\"%s\"}\n"
    (escape name) (crc32 output) (escape output)

let index_of s pat =
  let n = String.length s and m = String.length pat in
  let rec go i =
    if i + m > n then None
    else if String.sub s i m = pat then Some i
    else go (i + 1)
  in
  go 0

let int_field s key =
  let pat = "\"" ^ key ^ "\":" in
  match index_of s pat with
  | None -> None
  | Some i ->
      let start = i + String.length pat in
      let j = ref start in
      while
        !j < String.length s
        && match s.[!j] with '0' .. '9' -> true | _ -> false
      do
        incr j
      done;
      if !j = start then None else int_of_string_opt (String.sub s start (!j - start))

let string_field s key =
  let pat = "\"" ^ key ^ "\":\"" in
  match index_of s pat with
  | None -> None
  | Some i ->
      let n = String.length s in
      let b = Buffer.create 256 in
      let rec go j =
        if j >= n then None
        else
          match s.[j] with
          | '"' -> Some (Buffer.contents b)
          | '\\' when j + 1 < n -> (
              match s.[j + 1] with
              | '"' ->
                  Buffer.add_char b '"';
                  go (j + 2)
              | '\\' ->
                  Buffer.add_char b '\\';
                  go (j + 2)
              | 'n' ->
                  Buffer.add_char b '\n';
                  go (j + 2)
              | 'r' ->
                  Buffer.add_char b '\r';
                  go (j + 2)
              | 't' ->
                  Buffer.add_char b '\t';
                  go (j + 2)
              | 'u' when j + 5 < n -> (
                  match int_of_string_opt ("0x" ^ String.sub s (j + 2) 4) with
                  | Some code when code < 256 ->
                      Buffer.add_char b (Char.chr code);
                      go (j + 6)
                  | _ -> None)
              | _ -> None)
          | c ->
              Buffer.add_char b c;
              go (j + 1)
      in
      go (i + String.length pat)

let decode s =
  match (string_field s "output", int_field s "crc") with
  | Some output, Some crc when crc = crc32 output -> Ok output
  | Some _, Some _ -> Error "checksum mismatch"
  | _ -> Error "unparsable journal entry"

(* ---------------- store / lookup ------------------------------------ *)

let store t ~name ~output =
  let final = path t name in
  let tmp = final ^ ".tmp" in
  Out_channel.with_open_bin tmp (fun oc ->
      Out_channel.output_string oc (encode ~name ~output));
  Sys.rename tmp final;
  t.stored <- t.stored + 1;
  Obs.Counters.add_checkpoint_stored 1

let lookup t ~name =
  let file = path t name in
  if not (Sys.file_exists file) then None
  else
    let contents = In_channel.with_open_bin file In_channel.input_all in
    match decode contents with
    | Ok output ->
        t.replayed <- t.replayed + 1;
        Obs.Counters.add_checkpoint_replayed 1;
        Some output
    | Error why ->
        (* A discard is never silent: warn on stderr AND count it, so a
           resumed run that recomputed tables because its journal rotted
           shows up in [health] and in the observability counters. *)
        Printf.eprintf "checkpoint: discarding corrupt journal %s (%s)\n%!" file
          why;
        t.discarded <- t.discarded + 1;
        Obs.Counters.add_checkpoint_discarded 1;
        (try Sys.remove file with Sys_error _ -> ());
        None

(* ---------------- stdout capture ------------------------------------ *)

(* Redirect fd 1 into a temp file for the extent of [f]. Capture at the
   fd level (dup/dup2), not by swapping OCaml formatters: the tables
   print through [print_string] and their output must be captured
   exactly as a terminal would have seen it. If [f] raises, the partial
   output is re-emitted (nothing is stored) and the exception
   propagates. *)
let with_captured_stdout f =
  flush stdout;
  let tmp = Filename.temp_file "stlb-ckpt" ".out" in
  let fd = Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_TRUNC ] 0o600 in
  let saved = Unix.dup Unix.stdout in
  Unix.dup2 fd Unix.stdout;
  let restore () =
    flush stdout;
    Unix.dup2 saved Unix.stdout;
    Unix.close saved;
    Unix.close fd
  in
  let result = try Ok (f ()) with e -> Error (e, Printexc.get_raw_backtrace ()) in
  restore ();
  let contents = In_channel.with_open_bin tmp In_channel.input_all in
  (try Sys.remove tmp with Sys_error _ -> ());
  match result with
  | Ok v -> (v, contents)
  | Error (e, bt) ->
      print_string contents;
      flush stdout;
      Printexc.raise_with_backtrace e bt

let trace_table ~name ~status =
  Obs.Trace.emit_current ~event:"table"
    [ ("name", Obs.Trace.String name); ("status", Obs.Trace.String status) ]

let run cp ~name f =
  match cp with
  | None ->
      trace_table ~name ~status:"start";
      f ();
      trace_table ~name ~status:"done"
  | Some t -> (
      match lookup t ~name with
      | Some output ->
          Printf.eprintf "checkpoint: replaying %s\n%!" name;
          trace_table ~name ~status:"replayed";
          print_string output;
          flush stdout
      | None ->
          trace_table ~name ~status:"start";
          let (), output = with_captured_stdout f in
          print_string output;
          flush stdout;
          store t ~name ~output;
          trace_table ~name ~status:"done")
