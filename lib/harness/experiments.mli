(** The reproduction experiments, one per paper target.

    Each function prints one measured table (see EXPERIMENTS.md for the
    index and the recorded expectations):

    - E1: Theorem 8(a) fingerprinting — completeness / error / envelope
    - E2: Claim 1 residue collisions
    - E3: Corollary 7 merge-sort deciders, scans vs N
    - E4: Theorem 6 via the Lemma 21 adversary
    - E5: Remark 20 sortedness of [ϕ_m]
    - E6: Lemmas 30/31 structural bounds on list machine runs
    - E7: Lemma 16 TM → list machine simulation
    - E8: Theorem 11 streaming relational algebra
    - E9: Theorems 12/13 and Figure 1, XML queries
    - E10: Theorem 8(b) certificate verification
    - E11: Corollary 9 separations + the paper's classification table
    - E12: Corollary 10 sorting curve and the Lemma 22 frontier
    - E13: Section 9 open problem — why composition fails for
      DISJOINT-SETS
    - E14: ablation — k-way merge arity vs scans
    - E15: ablation — Claim 1's prime-range size vs collision rate
    - E16: robustness — fault-injection detection rates and transient
      survival under retry (see [lib/faults])
    - E17: audit — measured cost ledgers ([lib/obs]) checked against
      the theorem budgets, plus a deliberately over-budget negative
      control
    - E18: scale — the spill-device backends at N = 10^7
    - E19: recovery — deciders under a seeded below-seam storage-fault
      campaign, plus crash points and scrub
    - E20: serve — the deciders as a long-running service ([stlb
      serve] + [stlb loadgen]): requests/s and p50/p99 latency across
      worker counts and devices, with verdict parity pinned *)

val exp1 : unit -> unit
val exp2 : unit -> unit
val exp3 : unit -> unit
val exp4 : unit -> unit
val exp5 : unit -> unit
val exp6 : unit -> unit
val exp7 : unit -> unit
val exp8 : unit -> unit
val exp9 : unit -> unit
val exp10 : unit -> unit
val exp11 : unit -> unit
val exp12 : unit -> unit
val exp13 : unit -> unit
val exp14 : unit -> unit
val exp15 : unit -> unit
val exp16 : unit -> unit
val exp17 : unit -> unit

val all : (string * (unit -> unit)) list
(** [("exp1", exp1); …] in order. *)

val run_all : ?checkpoint:Checkpoint.t -> unit -> unit
(** Print every table, separated by blank lines. With [?checkpoint],
    each table runs under {!Checkpoint.run}: already-journaled tables
    are replayed verbatim and newly computed ones are journaled, so an
    interrupted invocation resumes where it was killed with
    byte-identical output. *)
