(* The experiment harness: one table per reproduction target (see
   EXPERIMENTS.md and DESIGN.md section 3). Every table is produced by
   running the actual library code with measured resources - no numbers
   are hard-coded. *)

module B = Util.Bitstring
module P = Util.Permutation
module I = Problems.Instance
module D = Problems.Decide
module G = Problems.Generators
module T = Util.Table

let seed = [| 0xC0FFEE |]

let fresh_state () = Random.State.make seed

(* Trial fan-out: every table's Monte Carlo loop runs on the default
   Domain pool (sized by -j / STLB_DOMAINS / the hardware). Root seeds
   are drawn from the experiment state on the main domain, in row
   order, and each chunk of trials gets a seed-split generator - so
   table contents are bit-identical for every worker count. *)
let pool () = Parallel.Pool.default ()

let row_seed st = Parallel.Rng.seed_of_state st

let count_hits f arr =
  Array.fold_left (fun acc r -> if f r then acc + 1 else acc) 0 arr

(* ------------------------------------------------------------------ *)

let exp1 () =
  (* Theorem 8(a): the fingerprint algorithm is a co-RST(2, O(log N), 1)
     solver for MULTISET-EQUALITY. *)
  let st = fresh_state () in
  let t =
    T.create
      ~title:
        "E1 [Theorem 8(a)]  MULTISET-EQUALITY in co-RST(2, O(log N), 1): \
         fingerprinting"
      ~columns:
        [ "m"; "n"; "N"; "yes acc"; "false pos"; "95% CI"; "scans"; "int bits"; "tapes" ]
  in
  let pool = pool () in
  List.iter
    (fun m ->
      let n = 12 in
      let trials = 300 in
      let yes =
        Parallel.Pool.monte_carlo pool ~trials ~seed:(row_seed st) (fun st ->
            let inst = G.yes_instance st D.Multiset_equality ~m ~n in
            Fingerprint.run st inst)
      in
      let yes_ok = count_hits (fun (ok, _, _) -> ok) yes in
      let _, rep, params = yes.(trials - 1) in
      let fp =
        Parallel.Pool.monte_carlo_count pool ~trials ~seed:(row_seed st)
          (fun st ->
            let inst = G.no_instance st D.Multiset_equality ~m ~n in
            Fingerprint.decide st inst)
      in
      let lo, hi = Util.Stats.binomial_ci95 ~successes:fp ~trials in
      T.add_row t
        [
          string_of_int m;
          string_of_int n;
          string_of_int params.Fingerprint.input_size;
          T.fmt_ratio yes_ok trials;
          T.fmt_ratio fp trials;
          Printf.sprintf "[%.3f,%.3f]" lo hi;
          string_of_int rep.Fingerprint.scans;
          string_of_int rep.Fingerprint.internal_bits;
          string_of_int rep.Fingerprint.tapes;
        ])
    [ 2; 4; 8; 16; 32 ];
  T.print t;
  print_endline
    "  expected: yes acc = 100% (no false negatives), false pos -> 0 with m,\n\
    \  scans = 2 and tapes = 1 always, int bits = O(log N).\n"

let exp2 () =
  (* Claim 1: residue collisions under a random prime p <= k. *)
  let st = fresh_state () in
  let t =
    T.create
      ~title:"E2 [Claim 1]  residue-collision probability under a random prime p <= k"
      ~columns:[ "m"; "k"; "collision rate"; "1/m (scale ref)" ]
  in
  List.iter
    (fun m ->
      let n = 10 in
      let rate = Fingerprint.residue_collision_rate st ~m ~n ~trials:300 in
      let k = Numtheory.fingerprint_k ~m ~n in
      T.add_row t
        [
          string_of_int m;
          string_of_int k;
          T.fmt_float ~digits:4 rate;
          T.fmt_float ~digits:4 (1.0 /. float_of_int m);
        ])
    [ 2; 4; 8; 16 ];
  T.print t;
  print_endline "  expected: rate = O(1/m), in practice far below the 1/m reference.\n"

let exp3 () =
  (* Corollary 7: deterministic sort-based deciders use O(log N) scans
     and O(1) registers. *)
  let st = fresh_state () in
  let t =
    T.create
      ~title:
        "E3 [Corollary 7]  ST(O(log N), O(1), 2): merge-sort deciders, scans vs N"
      ~columns:[ "problem"; "m"; "N"; "scans"; "registers"; "verdict ok" ]
  in
  let fits = ref [] in
  List.iter
    (fun prob ->
      let pts = ref [] in
      List.iter
        (fun m ->
          let inst, label = G.labelled st prob ~m ~n:10 in
          let got, rep = Extsort.decide prob inst in
          pts := (rep.Extsort.n, rep.Extsort.scans) :: !pts;
          T.add_row t
            [
              D.problem_name prob;
              string_of_int m;
              string_of_int rep.Extsort.n;
              string_of_int rep.Extsort.scans;
              string_of_int rep.Extsort.register_peak;
              string_of_bool (got = label);
            ])
        [ 16; 64; 256; 1024 ];
      let a, b, r2 = Util.Stats.log2_fit (Array.of_list !pts) in
      fits := (D.problem_name prob, a, b, r2) :: !fits)
    D.all_problems;
  T.print t;
  List.iter
    (fun (name, a, b, r2) ->
      Printf.printf "  fit %-18s scans = %.2f*log2(N) %+.2f   (r2 = %.4f)\n" name a b r2)
    (List.rev !fits);
  print_endline "  expected: logarithmic growth (r2 ~ 1), constant registers.\n"

let staircase_row st space chains optimistic =
  let machine = Listmachine.Machines.staircase_checkphi ~space ~chains ~optimistic in
  let phi = G.Checkphi.phi space in
  let m = P.size phi in
  let values inst = Array.append (I.xs inst) (I.ys inst) in
  let vt =
    Listmachine.Nlm.run_view machine
      ~values:(values (G.Checkphi.yes st space))
      ~choices:(fun _ -> 0)
  in
  let sk = Listmachine.Skeleton.of_views vt in
  let compared = Listmachine.Skeleton.phi_compared_count sk ~m ~phi in
  let t0 = Unix.gettimeofday () in
  let outcome = Stcore.Adversary.attack st ~space ~machine () in
  let wall = Unix.gettimeofday () -. t0 in
  (machine, vt, compared, outcome, wall)

let exp4 () =
  (* Theorem 6 via the Lemma 21 adversary. *)
  let st = fresh_state () in
  let t =
    T.create
      ~title:
        "E4 [Theorem 6 / Lemma 21]  adversary vs (r,2)-bounded CHECK-phi list machines"
      ~columns:
        [
          "m"; "chains"; "scans r"; "pairs compared"; "yes acc";
          "adversary outcome"; "attack wall";
        ]
  in
  List.iter
    (fun (m, chain_set) ->
      let space = G.Checkphi.default_space ~m ~n:(2 * m) in
      let needed = Listmachine.Machines.chains_needed ~space in
      let chain_list =
        match chain_set with
        | `Full -> List.init (needed + 1) Fun.id
        (* at m=32 only the decisive configurations: blind, one chain
           short of coverage (fooled), complete (sound) *)
        | `Frontier -> List.sort_uniq compare [ 0; max 0 (needed - 1); needed ]
      in
      List.iter
        (fun chains ->
          let complete = chains >= needed in
          let _, vt, compared, outcome, wall =
            staircase_row st space chains (not complete)
          in
          let describe =
            match outcome with
            | Stcore.Adversary.Fooled { i0; _ } ->
                Printf.sprintf "FOOLED (wrong accept, i0=%d)" i0
            | Stcore.Adversary.Not_fooled { reason; _ } -> "not fooled: " ^ reason
            | Stcore.Adversary.Contract_violated _ -> "contract violated"
          in
          let acc =
            match outcome with
            | Stcore.Adversary.Fooled { yes_acceptance; _ }
            | Stcore.Adversary.Not_fooled { yes_acceptance; _ } ->
                yes_acceptance
            | Stcore.Adversary.Contract_violated { yes_acceptance } -> yes_acceptance
          in
          T.add_row t
            [
              string_of_int m;
              Printf.sprintf "%d/%d" chains needed;
              string_of_int (1 + vt.Listmachine.Nlm.vtotal_revs);
              Printf.sprintf "%d/%d" compared m;
              T.fmt_float ~digits:2 acc;
              describe;
              Printf.sprintf "%.2fs" wall;
            ])
        chain_list)
    [ (8, `Full); (16, `Full); (32, `Frontier); (64, `Frontier) ];
  T.print t;
  (* the genuinely randomized target: each run verifies one uniformly
     random chain *)
  let t2 =
    T.create
      ~title:
        "      randomized target: one uniformly random chain per run \
         (Lemma 26 path)"
      ~columns:[ "m"; "Pr[acc yes]"; "Pr[acc no]"; "adversary outcome" ]
  in
  List.iter
    (fun m ->
      let space = G.Checkphi.default_space ~m ~n:(2 * m) in
      let machine = Listmachine.Machines.random_chain_checkphi ~space in
      let values inst = Array.append (I.xs inst) (I.ys inst) in
      let p_yes =
        Listmachine.Machines.dispatch_probability machine
          ~values:(values (G.Checkphi.yes st space))
      in
      let p_no =
        Listmachine.Machines.dispatch_probability machine
          ~values:(values (G.Checkphi.no st space))
      in
      let outcome =
        match Stcore.Adversary.attack st ~space ~machine () with
        | Stcore.Adversary.Fooled { i0; _ } ->
            Printf.sprintf "FOOLED (accepting run on a no-instance, i0=%d)" i0
        | Stcore.Adversary.Not_fooled { reason; _ } -> "not fooled: " ^ reason
        | Stcore.Adversary.Contract_violated _ -> "contract violated"
      in
      T.add_row t2
        [
          string_of_int m;
          T.fmt_float ~digits:3 p_yes;
          T.fmt_float ~digits:3 p_no;
          outcome;
        ])
    [ 8; 16 ];
  T.print t2;
  print_endline
    "  expected: every machine with incomplete pair coverage is FOOLED (a\n\
    \  no-instance it accepts is exhibited, as in the Lemma 21 pipeline); the\n\
    \  complete machine cannot be fooled. Scans grow with coverage - the\n\
    \  lower-bound/upper-bound frontier of Theorem 6. The randomized machine\n\
    \  keeps Pr[accept no] > 0, so it is not a (1/2,0)-solver either.\n"

let exp5 () =
  (* Remark 20: sortedness of the reverse-binary permutation. *)
  let st = fresh_state () in
  let t =
    T.create ~title:"E5 [Remark 20]  sortedness of phi_m vs the 2*sqrt(m)-1 bound"
      ~columns:
        [ "m"; "sortedness(phi_m)"; "2*sqrt(m)-1"; "random perm (mean)"; "sqrt(m) floor" ]
  in
  List.iter
    (fun lg ->
      let m = 1 lsl lg in
      let s = P.sortedness (P.reverse_binary m) in
      let rand_mean =
        let k = 20 in
        let total =
          Parallel.Pool.monte_carlo_fold (pool ()) ~trials:k ~seed:(row_seed st)
            ~init:0 ~combine:( + )
            (fun st -> P.sortedness (P.random st m))
        in
        float_of_int total /. float_of_int k
      in
      T.add_row t
        [
          string_of_int m;
          string_of_int s;
          T.fmt_float ~digits:1 ((2.0 *. sqrt (float_of_int m)) -. 1.0);
          T.fmt_float ~digits:1 rand_mean;
          T.fmt_float ~digits:1 (sqrt (float_of_int m));
        ])
    [ 2; 4; 6; 8; 10; 12 ];
  T.print t;
  print_endline
    "  expected: sortedness(phi_m) <= 2*sqrt(m)-1 (phi_m is a worst case);\n\
    \  random permutations sit near 2*sqrt(m); nothing goes below sqrt(m)\n\
    \  (Erdos-Szekeres).\n"

let exp6 () =
  (* Lemmas 30/31: structural bounds on list machine runs. *)
  let st = fresh_state () in
  let t =
    T.create
      ~title:"E6 [Lemmas 30/31]  list machine runs vs the structural bounds"
      ~columns:
        [
          "m"; "chains"; "r"; "list len"; "bound"; "cell size"; "bound";
          "run len"; "bound";
        ]
  in
  List.iter
    (fun (m, chains) ->
      let space = G.Checkphi.default_space ~m ~n:(2 * m) in
      let machine =
        Listmachine.Machines.staircase_checkphi ~space ~chains ~optimistic:true
      in
      let inst = G.Checkphi.yes st space in
      let values = Array.append (I.xs inst) (I.ys inst) in
      let tr = Listmachine.Nlm.run machine ~values ~choices:(fun _ -> 0) in
      let me = Listmachine.Lm_bounds.measure tr in
      let r = tr.Listmachine.Nlm.total_revs in
      let k = machine.Listmachine.Nlm.state_count in
      T.add_row t
        [
          string_of_int m;
          string_of_int chains;
          string_of_int r;
          string_of_int me.Listmachine.Lm_bounds.max_total_list_length;
          string_of_int (Listmachine.Lm_bounds.total_list_length_bound ~t:2 ~r:(r + 1) ~m:(2 * m));
          string_of_int me.Listmachine.Lm_bounds.max_cell_size;
          string_of_int (Listmachine.Lm_bounds.cell_size_bound ~t:2 ~r:(r + 1));
          string_of_int me.Listmachine.Lm_bounds.run_length;
          string_of_int (Listmachine.Lm_bounds.run_length_bound ~k ~t:2 ~r ~m:(2 * m));
        ])
    [ (4, 1); (4, 2); (8, 1); (8, 3); (16, 2) ];
  T.print t;
  print_endline "  expected: every measured column is below its bound column.\n"

let exp7 () =
  (* Lemma 16: the TM -> list machine simulation. *)
  let st = fresh_state () in
  let t =
    T.create ~title:"E7 [Lemma 16]  Turing machine -> list machine simulation"
      ~columns:
        [
          "machine"; "input"; "verdict"; "agree"; "TM revs"; "LM revs"; "crossings";
        ]
  in
  let cases =
    [
      (Turing.Zoo.pair_equality (), [| "0110"; "0110" |]);
      (Turing.Zoo.pair_equality (), [| "0110"; "0111" |]);
      (Turing.Zoo.pair_equality (), [| "00110011"; "00110011" |]);
      (Turing.Zoo.parity_ones (), [| "1101"; "11" |]);
      (Turing.Zoo.parity_ones (), [| "1"; "11" |]);
    ]
  in
  List.iter
    (fun (tm, inputs) ->
      let r = Simulation.simulate tm ~inputs ~choices:(fun _ -> 0) in
      T.add_row t
        [
          tm.Turing.Machine.name;
          String.concat "#" (Array.to_list inputs);
          string_of_bool r.Simulation.lm_trace.Listmachine.Nlm.accepted;
          string_of_bool r.Simulation.agreement;
          string_of_int r.Simulation.tm_ext_reversals;
          string_of_int r.Simulation.lm_reversals;
          string_of_int r.Simulation.crossings;
        ])
    cases;
  T.print t;
  let tm = Turing.Zoo.nondet_find_one () in
  let ptm, plm = Simulation.acceptance_agreement st ~samples:400 tm ~inputs:[| "101" |] in
  Printf.printf
    "  nondeterministic agreement (find-one on 101): Pr_TM=%.3f Pr_LM=%.3f (exact 0.75)\n"
    ptm plm;
  Printf.printf
    "  state bound (2), log2|A|, for pair-equality at m=2, n=8: %.1f bits\n\n"
    (Simulation.abstract_state_bound_log2 ~d:4 ~t:2 ~r:3 ~s:1 ~m:2 ~n:8)

let exp8 () =
  (* Theorem 11: streaming relational algebra. *)
  let st = fresh_state () in
  let t =
    T.create
      ~title:
        "E8 [Theorem 11]  streaming evaluation of Q' = (R1-R2) u (R2-R1)"
      ~columns:[ "m"; "N tuples"; "scans"; "registers"; "empty iff SET-EQ" ]
  in
  let pts = ref [] in
  List.iter
    (fun m ->
      let inst, label = G.labelled st D.Set_equality ~m ~n:10 in
      let db = Relalg.instance_db inst in
      let res, rep = Relalg.eval_streaming db (Relalg.symmetric_difference "R1" "R2") in
      pts := (rep.Relalg.n, rep.Relalg.scans) :: !pts;
      T.add_row t
        [
          string_of_int m;
          string_of_int rep.Relalg.n;
          string_of_int rep.Relalg.scans;
          string_of_int rep.Relalg.registers;
          string_of_bool ((res.Relalg.tuples = []) = label);
        ])
    [ 8; 32; 128; 512 ];
  T.print t;
  let a, b, r2 = Util.Stats.log2_fit (Array.of_list !pts) in
  Printf.printf "  fit: scans = %.1f*log2(N) %+.1f (r2 = %.4f)\n" a b r2;
  print_endline
    "  expected: O(log N) scans (Theorem 11(a)); emptiness of Q' decides\n\
    \  SET-EQUALITY, which is why Theorem 11(b) inherits the Theorem 6 bound.\n"

let exp9 () =
  (* Theorems 12/13: the XQuery and XPath queries on document streams. *)
  let st = fresh_state () in
  let t =
    T.create
      ~title:"E9 [Theorems 12/13, Figure 1]  XML query evaluation on instance documents"
      ~columns:
        [
          "m"; "stream N"; "XQuery = SET-EQ"; "XPath = nonsubset"; "stream scans";
        ]
  in
  let pool = pool () in
  List.iter
    (fun m ->
      let trials = 20 in
      let runs =
        Parallel.Pool.monte_carlo pool ~trials ~seed:(row_seed st) (fun st ->
            let inst, label = G.labelled st D.Set_equality ~m ~n:8 in
            let doc = Xmlq.Doc.of_instance inst in
            let xq_hit =
              Xmlq.Xquery.holds Xmlq.Xquery.theorem12_query doc = label
            in
            let xs = Array.to_list (I.xs inst) and ys = Array.to_list (I.ys inst) in
            let missing = List.exists (fun x -> not (List.mem x ys)) xs in
            let xp_hit = Xmlq.Xpath.matches doc Xmlq.Xpath.figure1 = missing in
            let stream = Xmlq.Doc.serialize doc in
            let got, rep = Xmlq.Stream_filter.figure1_filter stream in
            ( xq_hit,
              xp_hit,
              got = missing,
              rep.Xmlq.Stream_filter.scans,
              rep.Xmlq.Stream_filter.n ))
      in
      let xq_ok = count_hits (fun (h, _, _, _, _) -> h) runs in
      let xp_ok =
        (* any streaming-filter disagreement poisons the column *)
        if Array.exists (fun (_, _, stream_ok, _, _) -> not stream_ok) runs then
          -1000
        else count_hits (fun (_, h, _, _, _) -> h) runs
      in
      let _, _, _, scans, nsz = runs.(trials - 1) in
      T.add_row t
        [
          string_of_int m;
          string_of_int nsz;
          T.fmt_ratio xq_ok trials;
          T.fmt_ratio xp_ok trials;
          string_of_int scans;
        ])
    [ 4; 16; 64 ];
  T.print t;
  print_endline
    "  expected: the Theorem 12 XQuery decides SET-EQUALITY and the Figure 1\n\
    \  XPath filter decides non-subset-ness on every instance; the streaming\n\
    \  filter implements the latter in O(log N) scans (tight by Theorem 13).\n"

let exp10 () =
  (* Theorem 8(b): certificate verification in NST(3, O(log N), 2). *)
  let st = fresh_state () in
  let t =
    T.create
      ~title:"E10 [Theorem 8(b)]  guess-and-check verification, NST(3, O(log N), 2)"
      ~columns:
        [ "problem"; "m"; "scans"; "tapes"; "registers"; "complete"; "sound" ]
  in
  let pool = pool () in
  List.iter
    (fun prob ->
      List.iter
        (fun m ->
          let trials = 20 in
          let runs =
            Parallel.Pool.monte_carlo pool ~trials ~seed:(row_seed st)
              (fun st ->
                let inst = G.yes_instance st prob ~m ~n:8 in
                match Nst.prove prob inst with
                | None -> None
                | Some cert ->
                    let ok, rep = Nst.verify prob inst cert in
                    let bad = Nst.corrupt st Nst.Wrong_value cert in
                    let caught = not (fst (Nst.verify prob inst bad)) in
                    Some (ok, caught, rep))
          in
          let complete =
            count_hits (function Some (ok, _, _) -> ok | None -> false) runs
          in
          let sound =
            count_hits (function Some (_, c, _) -> c | None -> false) runs
          in
          let scans, tapes, regs =
            Array.fold_left
              (fun acc r ->
                match r with
                | Some (_, _, rep) ->
                    (rep.Nst.scans, rep.Nst.tapes, rep.Nst.internal_registers)
                | None -> acc)
              (0, 0, 0) runs
          in
          T.add_row t
            [
              D.problem_name prob;
              string_of_int m;
              string_of_int scans;
              string_of_int tapes;
              string_of_int regs;
              T.fmt_ratio complete trials;
              T.fmt_ratio sound trials;
            ])
        [ 4; 16 ])
    D.all_problems;
  T.print t;
  print_endline
    "  expected: scans <= 3, 2 tapes, O(1) registers; honest certificates\n\
    \  always verify, value-corrupted ones never do.\n"

let exp11 () =
  (* Corollary 9: the separation landscape, measured. *)
  let st = fresh_state () in
  let t =
    T.create
      ~title:
        "E11 [Corollary 9]  measured resource envelopes at N ~ 5500 (m=256, n=10)"
      ~columns:[ "solver"; "problem"; "scans"; "errors"; "notes" ]
  in
  let m = 256 and n = 10 in
  let inst = G.yes_instance st D.Multiset_equality ~m ~n in
  let _, det_rep = Extsort.multiset_equality inst in
  T.add_row t
    [
      "deterministic (Cor 7)";
      "MULTISET-EQ";
      string_of_int det_rep.Extsort.scans;
      "none";
      "O(log N) scans required (Thm 6)";
    ];
  let _, fp_rep, _ = Fingerprint.run st inst in
  T.add_row t
    [
      "co-randomized (Thm 8a)";
      "MULTISET-EQ";
      string_of_int fp_rep.Fingerprint.scans;
      "one-sided false pos";
      "beats every deterministic solver";
    ];
  let _, nst_rep = Nst.decide_with_prover D.Multiset_equality inst in
  (match nst_rep with
  | Some r ->
      T.add_row t
        [
          "nondeterministic (Thm 8b)";
          "MULTISET-EQ";
          string_of_int r.Nst.scans;
          "none (with witness)";
          "3 scans, 2 tapes";
        ]
  | None -> ());
  T.add_row t
    [
      "randomized RST (Thm 6)";
      "all three";
      "Omega(log N)";
      "one-sided false neg";
      "no o(log N) solver exists";
    ];
  T.print t;
  print_endline "  Paper classification table (Section 2-4 results, encoded as data):";
  let t2 =
    T.create ~title:"" ~columns:[ "problem"; "class"; "member"; "provenance" ]
  in
  List.iter
    (fun mem ->
      T.add_row t2
        [
          mem.Stcore.Classes.problem;
          mem.Stcore.Classes.class_label;
          (if mem.Stcore.Classes.member then "yes" else "NO");
          mem.Stcore.Classes.provenance;
        ])
    Stcore.Classes.paper_results;
  T.print t2

let exp12 () =
  (* Corollary 10 and the Lemma 22 parameter frontier. *)
  let t =
    T.create ~title:"E12a [Corollary 10]  sorting itself: scans vs N (merge sort)"
      ~columns:[ "items"; "scans"; "registers" ]
  in
  List.iter
    (fun n ->
      let items = List.init n (fun i -> Printf.sprintf "%06d" ((i * 7919) mod n)) in
      let _, rep = Extsort.sort items in
      T.add_row t
        [
          string_of_int n;
          string_of_int rep.Extsort.scans;
          string_of_int rep.Extsort.register_peak;
        ])
    [ 16; 128; 1024; 8192 ];
  T.print t;
  let t2 =
    T.create
      ~title:
        "E12b [Lemma 22]  smallest power-of-two m satisfying equations (3) and (4) \
         (t=2, d=4, s = N^{1/4}/log N)"
      ~columns:[ "r(N)"; "min m (cap 2^14)"; "N = 2m(m^3+1)" ]
  in
  List.iter
    (fun (label, r) ->
      match Stcore.Params.find_min_m ~t:2 ~d:4 ~r ~s:(Stcore.Params.s_fourth_root ()) ~cap:(1 lsl 14) with
      | Some m ->
          T.add_row t2
            [ label; string_of_int m; string_of_int (Stcore.Params.input_size ~m) ]
      | None -> T.add_row t2 [ label; "none below cap"; "-" ])
    [
      ("1 (constant)", Stcore.Params.r_const 1);
      ("2 (constant)", Stcore.Params.r_const 2);
      ("log2 N / 8", Stcore.Params.r_log ~scale:0.125 ());
      ("log2 N", Stcore.Params.r_log ());
    ];
  T.print t2;
  print_endline
    "  expected: sorting needs Theta(log N) scans (upper: merge sort; lower:\n\
    \  Corollary 10); small/slowly-growing r admit a hard-instance size m,\n\
    \  while r = Theta(log N) pushes m beyond any cap - Theorem 6 is tight.\n"

let exp13 () =
  (* Section 9 open problem: why the Lemma 21 pipeline cannot touch
     DISJOINT-SETS. *)
  let st = fresh_state () in
  let t =
    T.create
      ~title:
        "E13 [Section 9, open problem]  composition step: does crossing the \
         halves of two yes-instances stay a yes-instance?"
      ~columns:[ "problem"; "m"; "compositions still yes"; "adversary step" ]
  in
  let pool = pool () in
  (* fan the composition trials out one at a time: each pool trial runs
     composition_preserves_yes for a single pair on its chunk state *)
  let composed st ~problem ~m ~trials =
    Parallel.Pool.monte_carlo_fold pool ~trials ~seed:(row_seed st) ~init:0
      ~combine:( + )
      (fun st ->
        Problems.Disjoint.composition_preserves_yes st ~problem ~m ~n:(2 * m)
          ~trials:1)
  in
  List.iter
    (fun m ->
      let trials = 100 in
      let space = G.Checkphi.default_space ~m ~n:(2 * m) in
      let cp = composed st ~problem:(`Checkphi space) ~m ~trials in
      T.add_row t
        [
          "CHECK-phi";
          string_of_int m;
          T.fmt_ratio cp trials;
          "crossing BREAKS yes => fooling no-instance exists";
        ];
      let dj = composed st ~problem:`Disjoint ~m ~trials in
      T.add_row t
        [
          "DISJOINT-SETS";
          string_of_int m;
          T.fmt_ratio dj trials;
          "crossing PRESERVES yes => no fooling input";
        ])
    [ 8; 16 ];
  T.print t;
  (* the O(log N) upper bound still holds for disjointness *)
  let t2 =
    T.create ~title:"      DISJOINT-SETS upper bound (sort + merge scan)"
      ~columns:[ "m"; "N"; "scans"; "verdict ok" ]
  in
  List.iter
    (fun m ->
      let inst, label = Problems.Disjoint.labelled st ~m ~n:10 in
      let got, rep = Extsort.disjoint inst in
      T.add_row t2
        [
          string_of_int m;
          string_of_int rep.Extsort.n;
          string_of_int rep.Extsort.scans;
          string_of_bool (got = label);
        ])
    [ 16; 64; 256 ];
  T.print t2;
  print_endline
    "  expected: the adversary's decisive composition step (Lemma 34) produces\n\
    \  a NO-instance 100% of the time for CHECK-phi but ~0% of the time for\n\
    \  DISJOINT-SETS - the executable content of why the paper's technique\n\
    \  leaves disjointness open (Section 9), while O(log N) scans still\n\
    \  suffice on the upper-bound side.\n"

let exp14 () =
  (* Ablation: k-way merge sort - the tape/scan trade-off. *)
  let t =
    T.create
      ~title:
        "E14 [ablation]  k-way tape merge sort: scans vs merge arity (items = 4096)"
      ~columns:[ "ways"; "tapes"; "passes"; "scans"; "registers"; "sorted ok" ]
  in
  let items = List.init 4096 (fun i -> Printf.sprintf "%06d" ((i * 7919) mod 4096)) in
  let expected = List.sort String.compare items in
  List.iter
    (fun ways ->
      let sorted, rep =
        if ways = 2 then Extsort.sort items else Extsort.sort_k ~ways items
      in
      let passes =
        int_of_float (ceil (log 4096.0 /. log (float_of_int ways)))
      in
      T.add_row t
        [
          string_of_int ways;
          string_of_int rep.Extsort.tapes;
          string_of_int passes;
          string_of_int rep.Extsort.scans;
          string_of_int rep.Extsort.register_peak;
          string_of_bool (sorted = expected);
        ])
    [ 2; 3; 4; 8 ];
  T.print t;
  print_endline
    "  expected: scans shrink like log_ways(N) passes x O(1); the model's t\n\
    \  parameter is a constant, so wider merges are free in the ST(r,s,t)\n\
    \  cost measure - which is why Corollary 7 only cares about O(log N).\n"

let exp15 () =
  (* Ablation: Claim 1's prime range k = m^3 * n * log(m^3 n). *)
  let st = fresh_state () in
  let m = 8 and n = 10 in
  let k_full = Numtheory.fingerprint_k ~m ~n in
  let t =
    T.create
      ~title:
        (Printf.sprintf
           "E15 [ablation]  Claim 1 prime range: collision rate vs k (m=%d, n=%d)" m n)
      ~columns:[ "k"; "k / k_paper"; "collision rate"; "1/m reference" ]
  in
  List.iter
    (fun (label, k) ->
      let rate = Fingerprint.residue_collision_rate ~k st ~m ~n ~trials:400 in
      T.add_row t
        [
          string_of_int k;
          label;
          T.fmt_float ~digits:4 rate;
          T.fmt_float ~digits:4 (1.0 /. float_of_int m);
        ])
    [
      ("1 (paper)", k_full);
      ("1/m", max 2 (k_full / m));
      ("1/m^2", max 2 (k_full / (m * m)));
      ("1/m^3", max 2 (k_full / (m * m * m)));
      ("1/(m^3 log)", max 2 (k_full / (m * m * m * 7)));
    ];
  T.print t;
  print_endline
    "  expected: the paper-sized k keeps collisions far below 1/m; shrinking\n\
    \  the prime range by the m^3 factor (the Claim 1 union-bound headroom)\n\
    \  degrades the guarantee measurably - the design choice is load-bearing.\n"

let exp16 () =
  (* Robustness: detection of injected tape corruption by the Theorem
     8(a) fingerprint and the Corollary 7 merge-sort decider, plus
     survival of transient I/O faults under the retry combinators. Both
     deciders run on YES-instances of MULTISET-EQUALITY: fault-free
     they always accept, so any NO verdict on a run that suffered >= 1
     injected fault is a detection. Fault plans are seeded per trial
     from the chunk generator, so the whole table is bit-identical for
     every worker count. *)
  let st = fresh_state () in
  let m = 16 and n = 10 and trials = 60 in
  let pool = pool () in
  let plan_of st rates =
    Faults.Plan.create ~seed:(Random.State.full_int st (1 lsl 30)) ~rates
  in
  let t =
    T.create
      ~title:
        (Printf.sprintf
           "E16 [robustness]  corruption detection on YES-instances (m=%d, n=%d, \
            %d trials/rate)"
           m n trials)
      ~columns:
        [
          "rate"; "fp faulty"; "fp flt/run"; "fp detect"; "ms faulty";
          "ms flt/run"; "ms detect";
        ]
  in
  List.iter
    (fun rate ->
      let runs =
        Parallel.Pool.monte_carlo pool ~trials ~seed:(row_seed st) (fun st ->
            let inst = G.yes_instance st D.Multiset_equality ~m ~n in
            (* fingerprint: value corruption on the {0,1} cells of the
               single input tape ('#' separators survive flip01) *)
            let fp_plan =
              plan_of st { Faults.zero with bit_flip = rate }
            in
            let fp_ok, fp_rep, _ = Fingerprint.run ~faults:fp_plan st inst in
            (* merge sort: value corruption plus torn writes across the
               data and auxiliary tapes *)
            let ms_plan =
              plan_of st { Faults.zero with bit_flip = rate; torn_write = rate }
            in
            let ms_ok, ms_rep =
              Extsort.multiset_equality ~faults:ms_plan inst
            in
            ( fp_rep.Fingerprint.faults,
              fp_ok,
              ms_rep.Extsort.faults,
              ms_ok ))
      in
      let faulty p = count_hits (fun r -> p r > 0) runs in
      let detected p verdict_of =
        count_hits (fun r -> p r > 0 && not (verdict_of r)) runs
      in
      let mean p =
        float_of_int (Array.fold_left (fun a r -> a + p r) 0 runs)
        /. float_of_int trials
      in
      let fp_faults (f, _, _, _) = f and fp_verdict (_, ok, _, _) = ok in
      let ms_faults (_, _, f, _) = f and ms_verdict (_, _, _, ok) = ok in
      let rate_among num den = if den = 0 then "-" else T.fmt_ratio num den in
      T.add_row t
        [
          T.fmt_float ~digits:3 rate;
          Printf.sprintf "%d/%d" (faulty fp_faults) trials;
          T.fmt_float ~digits:1 (mean fp_faults);
          rate_among (detected fp_faults fp_verdict) (faulty fp_faults);
          Printf.sprintf "%d/%d" (faulty ms_faults) trials;
          T.fmt_float ~digits:1 (mean ms_faults);
          rate_among (detected ms_faults ms_verdict) (faulty ms_faults);
        ])
    [ 0.0; 0.001; 0.005; 0.02 ];
  T.print t;
  let t2 =
    T.create
      ~title:
        "      transient-fault survival: merge-sort decider under Retry \
         (3 attempts/phase)"
      ~columns:[ "p(transient)"; "completed"; "gave up"; "verdict ok"; "flt/run" ]
  in
  List.iter
    (fun p ->
      let runs =
        Parallel.Pool.monte_carlo pool ~trials ~seed:(row_seed st) (fun st ->
            let inst = G.yes_instance st D.Multiset_equality ~m ~n in
            let plan = plan_of st { Faults.zero with transient = p } in
            match Extsort.multiset_equality ~faults:plan inst with
            | ok, rep -> `Done (ok, rep.Extsort.faults)
            | exception Faults.Retry.Gave_up _ -> `Gave_up)
      in
      let completed =
        count_hits (function `Done _ -> true | `Gave_up -> false) runs
      in
      let correct =
        count_hits (function `Done (ok, _) -> ok | `Gave_up -> false) runs
      in
      let faults =
        Array.fold_left
          (fun a -> function `Done (_, f) -> a + f | `Gave_up -> a)
          0 runs
      in
      T.add_row t2
        [
          T.fmt_float ~digits:4 p;
          T.fmt_ratio completed trials;
          T.fmt_ratio (trials - completed) trials;
          (if completed = 0 then "-" else T.fmt_ratio correct completed);
          T.fmt_float ~digits:1
            (float_of_int faults /. float_of_int (max 1 completed));
        ])
    [ 0.0005; 0.002; 0.01 ];
  T.print t2;
  print_endline
    "  expected: zero injected faults at rate 0 (verdicts all yes); detection\n\
    \  of both deciders rises with the corruption rate (a YES-instance flagged\n\
    \  NO after >= 1 fault counts as detected); retried transient faults are\n\
    \  survived at small p and degrade to Gave_up as p grows - every number\n\
    \  bit-identical for -j 1/2/4 because fault plans are chunk-seeded.\n"

let exp17 () =
  (* Observability: run each upper-bound decider under a ledger
     recorder and audit the measured ledger against the complexity
     class the paper proves for it — Theorem 8(a) for the fingerprint,
     Corollary 7 for the merge-sort decider, Theorem 8(b) for the NST
     verifier. Every row is a single fault-free run on the main domain
     (no Monte Carlo), so the table is trivially bit-identical for
     every worker count. A second table shows the audit doing its job:
     a deliberately wasteful zigzag machine blows the Corollary 7 scan
     budget and FAILs. *)
  let st = fresh_state () in
  let n = 10 in
  let sizes = [ 12; 47; 186; 745 ] (* N = 2m(n+1) spans 2^8 .. 2^14 *) in
  let t =
    T.create
      ~title:
        (Printf.sprintf
           "E17 [audit]  measured cost vs theorem budget (n=%d, N = 2m(n+1))" n)
      ~columns:
        [
          "decider"; "m"; "N"; "scans"; "<=r"; "internal"; "<=s"; "tapes";
          "<=t"; "moves"; "audit";
        ]
  in
  let allowed_of o resource =
    match
      List.find_opt
        (fun (c : Obs.Audit.check) -> c.Obs.Audit.resource = resource)
        o.Obs.Audit.checks
    with
    | Some c -> string_of_int c.Obs.Audit.allowed
    | None -> "-"
  in
  let row tbl ~decider ~m (l : Obs.Ledger.t) spec =
    let o = Obs.Audit.check spec l in
    Obs.Trace.ledger_current l;
    Obs.Trace.audit_current o;
    T.add_row tbl
      [
        decider;
        string_of_int m;
        string_of_int l.Obs.Ledger.n;
        string_of_int l.Obs.Ledger.scans;
        allowed_of o "scans";
        string_of_int l.Obs.Ledger.internal_peak;
        allowed_of o "internal";
        string_of_int (Obs.Ledger.tape_count l);
        allowed_of o "tapes";
        string_of_int (Obs.Ledger.head_moves l);
        (if o.Obs.Audit.ok then "PASS" else "FAIL");
      ];
    o.Obs.Audit.ok
  in
  List.iter
    (fun m ->
      let inst = G.yes_instance st D.Multiset_equality ~m ~n in
      let r = Obs.Ledger.Recorder.create ~label:"fingerprint" () in
      let _, _, params = Fingerprint.run ~obs:r st inst in
      let l =
        Obs.Ledger.Recorder.ledger ~n:params.Fingerprint.input_size r
      in
      ignore (row t ~decider:"fingerprint" ~m l Obs.Audit.fingerprint_spec))
    sizes;
  List.iter
    (fun m ->
      let inst = G.yes_instance st D.Multiset_equality ~m ~n in
      let r = Obs.Ledger.Recorder.create ~label:"merge sort" () in
      let _ = Extsort.multiset_equality ~obs:r inst in
      let l = Obs.Ledger.Recorder.ledger ~n:(I.size inst) r in
      ignore (row t ~decider:"merge sort" ~m l Obs.Audit.mergesort_spec))
    sizes;
  List.iter
    (fun m ->
      let inst = G.yes_instance st D.Multiset_equality ~m ~n in
      let r = Obs.Ledger.Recorder.create ~label:"nst" () in
      let _ = Nst.decide_with_prover ~obs:r D.Multiset_equality inst in
      let l = Obs.Ledger.Recorder.ledger ~n:(I.size inst) r in
      ignore (row t ~decider:"nst verify" ~m l Obs.Audit.nst_spec))
    sizes;
  T.print t;
  (* The negative control: one full head reversal per item is an
     O(N)-scan machine, far outside the O(log N) class the audit
     grants a sorting decider. *)
  let t2 =
    T.create
      ~title:
        "      negative control: zigzag machine vs the Corollary 7 scan budget"
      ~columns:
        [ "machine"; "m"; "N"; "scans"; "<=r"; "moves"; "audit" ]
  in
  let m = 186 in
  let inst = G.yes_instance st D.Multiset_equality ~m ~n in
  let r = Obs.Ledger.Recorder.create ~label:"zigzag" () in
  let g = Tape.Group.create () in
  Obs.Ledger.Recorder.observe r g;
  let items = Array.to_list (Array.map B.to_string (I.xs inst)) in
  let tape = Tape.Group.tape_of_list g ~name:"data" ~blank:"" items in
  for i = 0 to m - 1 do
    while Tape.position tape < i do
      Tape.move tape Tape.Right
    done;
    while Tape.position tape > 0 do
      Tape.move tape Tape.Left
    done
  done;
  let l = Obs.Ledger.Recorder.ledger ~n:(I.size inst) r in
  let o = Obs.Audit.check Obs.Audit.mergesort_spec l in
  Obs.Trace.ledger_current l;
  Obs.Trace.audit_current o;
  T.add_row t2
    [
      "zigzag";
      string_of_int m;
      string_of_int l.Obs.Ledger.n;
      string_of_int l.Obs.Ledger.scans;
      allowed_of o "scans";
      string_of_int (Obs.Ledger.head_moves l);
      (if o.Obs.Audit.ok then "PASS" else "FAIL");
    ];
  T.print t2;
  print_endline
    "  expected: every decider row PASSes its theorem budget - fingerprint\n\
    \  within 2 scans and O(log N) bits (Thm 8a), merge sort within\n\
    \  24 ceil(log2 N)+48 scans (3x the single-sort envelope; its two-sort\n\
    \  deciders fit 24 log2 N - 114, see E3) and O(1) registers (Cor 7),\n\
    \  the NST verifier within 3 scans, 8 registers, 2 tapes (Thm 8b) -\n\
    \  while the zigzag machine's ~2m reversals FAIL the Cor 7 allowance.\n"

let exp18 () =
  (* External memory for real (ROADMAP item 2): the same deciders, the
     same instrumented heads, but the cells live on byte-backed
     [Tape.Device] backends behind a small bounded cache — the ST model
     at an N that does not fit the cache. The claim under test is the
     device-layer invariant: scans, internal peak, tape count and the
     theorem-budget audit verdict are measured ABOVE the storage seam,
     so every number must be bit-identical across mem / file / shard
     (and, as always, across -j 1/2/4 — each row is one deterministic
     run on the main domain). Only the I/O traffic may differ, and the
     table shows it.

     RAM cap: the file device may cache 16 blocks of 64 KiB (1 MiB) per
     tape, the shard device 2 shards of ~1 MiB — while at the default
     N = 10^7 each data tape holds ~11 MB of encoded cells, so the bulk
     of every pass genuinely goes through backing files. *)
  let n = 10 in
  let target =
    match Sys.getenv_opt "STLB_E18_N" with
    | Some v -> ( try max 1024 (int_of_string v) with Failure _ -> 10_000_000)
    | None -> 10_000_000
  in
  let m = target / (2 * (n + 1)) in
  (* The fingerprint decider's field size k = m^3 * n * ceil(log2(m^3 n))
     outgrows the native int once m is a few hundred thousand, so its
     rows reach the same N with few LONG strings: N = 2 m (n+1) is
     shape-free, and m = 1000 keeps k ~ 10^14 comfortably in range.
     The merge-sort rows keep the many-short shape (n = 10), which is
     the harder case for the run store. *)
  let m_fp = max 2 (min 1000 (target / (2 * (n + 1)))) in
  let n_fp = max 1 ((target / (2 * m_fp)) - 1) in
  let st = fresh_state () in
  let inst = G.yes_instance st D.Multiset_equality ~m ~n in
  let inst_fp = G.yes_instance st D.Multiset_equality ~m:m_fp ~n:n_fp in
  let size = I.size inst in
  let spill =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "stlb-e18-%d" (Unix.getpid ()))
  in
  let devices () =
    [
      ("mem", Tape.Device.Mem);
      ("file", Tape.Device.file_spec ~block_bytes:(1 lsl 16) ~cache_blocks:16 spill);
      ("shard", Tape.Device.shard_spec ~shard_bytes:(1 lsl 20) ~cache_shards:2 spill);
    ]
  in
  let t =
    T.create
      ~title:
        (Printf.sprintf
           "E18 [external memory]  deciders on pluggable tape devices (N = %d, \
            cache <= 2 MiB/tape)" size)
      ~columns:
        [
          "decider"; "device"; "m"; "N"; "scans"; "<=r"; "internal"; "<=s";
          "audit"; "io MB"; "res MiB";
        ]
  in
  let allowed_of o resource =
    match
      List.find_opt
        (fun (c : Obs.Audit.check) -> c.Obs.Audit.resource = resource)
        o.Obs.Audit.checks
    with
    | Some c -> string_of_int c.Obs.Audit.allowed
    | None -> "-"
  in
  let mb bytes = Printf.sprintf "%.1f" (float_of_int bytes /. 1048576.0) in
  let row ~decider ~dev_name ~m ~ledger_n r spec =
    let l = Obs.Ledger.Recorder.ledger ~n:ledger_n r in
    let o = Obs.Audit.check spec l in
    let ds = Obs.Ledger.Recorder.device_stats r in
    Obs.Trace.ledger_current l;
    Obs.Trace.audit_current o;
    Obs.Trace.device_current ~label:(decider ^ "/" ^ dev_name) ~kind:dev_name ds;
    T.add_row t
      [
        decider;
        dev_name;
        string_of_int m;
        string_of_int l.Obs.Ledger.n;
        string_of_int l.Obs.Ledger.scans;
        allowed_of o "scans";
        string_of_int l.Obs.Ledger.internal_peak;
        allowed_of o "internal";
        (if o.Obs.Audit.ok then "PASS" else "FAIL");
        mb (ds.Tape.Device.io_read_bytes + ds.Tape.Device.io_write_bytes);
        mb ds.Tape.Device.resident_bytes;
      ];
    ( l.Obs.Ledger.scans,
      l.Obs.Ledger.internal_peak,
      Obs.Ledger.tape_count l,
      o.Obs.Audit.ok )
  in
  let fp_rows =
    List.map
      (fun (dev_name, device) ->
        (* a fresh identically-seeded state per backend: the decider
           must draw the same primes, so any divergence is the device's *)
        let r = Obs.Ledger.Recorder.create ~label:"fingerprint" () in
        let _, _, params =
          Fingerprint.run ~obs:r ~device (fresh_state ()) inst_fp
        in
        row ~decider:"fingerprint" ~dev_name ~m:m_fp
          ~ledger_n:params.Fingerprint.input_size r Obs.Audit.fingerprint_spec)
      (devices ())
  in
  let ms_rows =
    List.map
      (fun (dev_name, device) ->
        let r = Obs.Ledger.Recorder.create ~label:"merge sort" () in
        let _ = Extsort.multiset_equality ~obs:r ~device inst in
        row ~decider:"merge sort" ~dev_name ~m ~ledger_n:size r
          Obs.Audit.mergesort_spec)
      (devices ())
  in
  T.print t;
  (try Unix.rmdir spill with Unix.Unix_error _ -> ());
  let parity rows =
    match rows with [] -> true | x :: rest -> List.for_all (( = ) x) rest
  in
  Printf.printf "  backend parity (scans, internal, tapes, audit): %s\n"
    (if parity fp_rows && parity ms_rows then "IDENTICAL" else "DIVERGED");
  print_endline
    "  expected: per decider, all three backends report the same scans,\n\
    \  internal peak, tape count and PASS verdict - the cost model lives\n\
    \  above the storage seam - while io MB shows only the byte-backed\n\
    \  devices actually stream the run files through their bounded caches.\n\
    \  (Scale with STLB_E18_N; the committed numbers use the 10^7 default.)"

let exp19 () =
  (* Crash- and corruption-hardened devices: the same deciders as E18,
     but the backing files are made hostile on purpose. A seeded
     [Faults.Storage] plan injects faults BELOW the [Device.Raw]
     syscall seam — bit rot on readback, EIO, short transfers, torn
     writes at the pwrite boundary — and the device layer's CRC
     framing must turn every corruption into either a clean recovery
     (quarantine + re-read, paid for in honest reversals by the
     retrying phase) or a loud abort. The invariant on display: a
     corrupted run NEVER silently changes a verdict. Everything is
     seeded and main-domain, so the table is bit-identical across
     -j 1/2/4. Scale with STLB_E19_N (the committed numbers use the
     default). *)
  let module S = Faults.Storage in
  let n = 10 in
  let target =
    match Sys.getenv_opt "STLB_E19_N" with
    | Some v -> ( try max 1024 (int_of_string v) with Failure _ -> 200_000)
    | None -> 200_000
  in
  let m = max 2 (target / (2 * (n + 1))) in
  let m_fp = max 2 (min 1000 (target / (2 * (n + 1)))) in
  let n_fp = max 1 ((target / (2 * m_fp)) - 1) in
  let st = fresh_state () in
  let inst = G.yes_instance st D.Multiset_equality ~m ~n in
  let inst_fp = G.yes_instance st D.Multiset_equality ~m:m_fp ~n:n_fp in
  let size = I.size inst in
  let spill =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "stlb-e19-%d" (Unix.getpid ()))
  in
  (* Geometry scaled to the instance so every pass genuinely streams
     through the raw seam at ANY STLB_E19_N: each item tape (~m cells,
     ~size/2 bytes) spans a few dozen blocks and the cache holds only
     four of them. A function of [size] alone, so it is identical
     across -j 1/2/4. *)
  let block_bytes = max 256 (min (1 lsl 16) (size / 48)) in
  let device_for ~raw dev_name =
    match dev_name with
    | "file" -> Tape.Device.file_spec ~block_bytes ~cache_blocks:4 ~raw spill
    | _ -> Tape.Device.shard_spec ~shard_bytes:block_bytes ~cache_shards:2 ~raw spill
  in
  let retry = { Faults.Retry.default with Faults.Retry.attempts = 8 } in
  let seed = 0x5EED in
  (* one row: run [decider] on [dev_name] under [plan], classify the
     outcome, and report the recovery counters attributable to it *)
  let run_one ~decider ~dev_name plan =
    let raw = S.raw_for plan in
    let device = device_for ~raw dev_name in
    let before = Obs.Counters.snapshot () in
    let label = match decider with `Sort -> "merge sort" | `Fp -> "fingerprint" in
    let r = Obs.Ledger.Recorder.create ~label () in
    let outcome =
      try
        let verdict =
          match decider with
          | `Sort -> fst (Extsort.multiset_equality ~retry ~obs:r ~device inst)
          | `Fp -> Fingerprint.decide ~retry ~obs:r ~device (fresh_state ()) inst_fp
        in
        Ok verdict
      with
      | Faults.Retry.Gave_up _ -> Error "gave-up"
      | Tape.Device.Corrupt _ -> Error "corrupt"
      | S.Crashed _ -> Error "crash"
      | Unix.Unix_error (Unix.ENOSPC, _, _) -> Error "enospc"
      | Unix.Unix_error (e, _, _) -> Error (Unix.error_message e)
    in
    let d = Obs.Counters.diff (Obs.Counters.snapshot ()) ~since:before in
    let ledger_n = match decider with `Sort -> size | `Fp -> I.size inst_fp in
    let l = Obs.Ledger.Recorder.ledger ~n:ledger_n r in
    (outcome, d, l)
  in
  let spec_of = function
    | `Sort -> Obs.Audit.mergesort_spec
    | `Fp -> Obs.Audit.fingerprint_spec
  in
  let t =
    T.create
      ~title:
        (Printf.sprintf
           "E19 [storage faults]  deciders under a seeded below-seam fault \
            campaign (N = %d, retry x%d)"
           size retry.Faults.Retry.attempts)
      ~columns:
        [
          "decider"; "device"; "faults"; "outcome"; "verdict"; "corrupt";
          "rereads"; "retries"; "scans"; "audit";
        ]
  in
  let campaigns =
    [
      ("none", S.zero);
      ("rot 1e-3", { S.zero with S.bit_rot = 1.0e-3 });
      ("rot 5e-2", { S.zero with S.bit_rot = 5.0e-2 });
      ("eio 2e-3", { S.zero with S.io_error = 2.0e-3 });
      ("short 0.2", { S.zero with S.short_read = 0.2; S.short_write = 0.2 });
      ("torn 2e-3", { S.zero with S.torn_write = 2.0e-3 });
    ]
  in
  let pairs = [ (`Sort, "file"); (`Sort, "shard"); (`Fp, "file") ] in
  (* ops drawn by the clean run of each pair: the crash rows below
     place their crash point halfway into the same workload, so the
     point scales with STLB_E19_N instead of silently missing *)
  let clean_ops = Hashtbl.create 4 in
  let clean_scans = Hashtbl.create 4 in
  List.iter
    (fun (fault_label, rates) ->
      List.iter
        (fun (decider, dev_name) ->
          let plan = S.Plan.create ~seed ~rates () in
          let outcome, d, l = run_one ~decider ~dev_name plan in
          let dec_label =
            match decider with `Sort -> "merge sort" | `Fp -> "fingerprint"
          in
          if fault_label = "none" then begin
            Hashtbl.replace clean_ops (dec_label, dev_name) (S.Plan.ops plan);
            Hashtbl.replace clean_scans (dec_label, dev_name) l.Obs.Ledger.scans
          end;
          let audit =
            match outcome with
            | Ok _ ->
                let o = Obs.Audit.check (spec_of decider) l in
                Obs.Trace.ledger_current l;
                Obs.Trace.audit_current o;
                if o.Obs.Audit.ok then "PASS" else "FAIL"
            | Error _ -> "-"
          in
          T.add_row t
            [
              dec_label;
              dev_name;
              fault_label;
              (match outcome with Ok _ -> "ok" | Error e -> "ABORT:" ^ e);
              (match outcome with
              | Ok true -> "accept"
              | Ok false -> "reject"
              | Error _ -> "-");
              string_of_int d.Obs.Counters.device_corrupt_detected;
              string_of_int d.Obs.Counters.device_quarantine_rereads;
              string_of_int d.Obs.Counters.retry_attempts;
              string_of_int l.Obs.Ledger.scans;
              audit;
            ])
        pairs)
    campaigns;
  (* one full-disk row: the k-th and every later raw write fails with
     ENOSPC — fatal by classification, never retried *)
  (let plan = S.Plan.create ~enospc_after:10 ~seed ~rates:S.zero () in
   let outcome, d, l = run_one ~decider:`Sort ~dev_name:"file" plan in
   T.add_row t
     [
       "merge sort"; "file"; "enospc@10";
       (match outcome with Ok _ -> "ok" | Error e -> "ABORT:" ^ e);
       "-";
       string_of_int d.Obs.Counters.device_corrupt_detected;
       string_of_int d.Obs.Counters.device_quarantine_rereads;
       string_of_int d.Obs.Counters.retry_attempts;
       string_of_int l.Obs.Ledger.scans;
       "-";
     ]);
  T.print t;
  (* ---- crash-and-resume: die halfway, reopen, recompute ---- *)
  let t2 =
    T.create ~title:"E19b [crash + resume]  crash at the midpoint raw syscall"
      ~columns:
        [
          "decider"; "device"; "crash at"; "crashed"; "resume verdict";
          "resume scans"; "identical";
        ]
  in
  List.iter
    (fun (dec_label, dev_name) ->
      let total = try Hashtbl.find clean_ops (dec_label, dev_name) with Not_found -> 0 in
      let k = max 1 (total / 2) in
      let crash_plan = S.Plan.create ~crash_at:k ~seed ~rates:S.zero () in
      let crashed =
        match run_one ~decider:`Sort ~dev_name crash_plan with
        | Error "crash", _, _ -> true
        | _ -> false
      in
      let resume_plan = S.Plan.create ~seed ~rates:S.zero () in
      let outcome, _, l = run_one ~decider:`Sort ~dev_name resume_plan in
      let baseline = try Hashtbl.find clean_scans (dec_label, dev_name) with Not_found -> -1 in
      T.add_row t2
        [
          dec_label;
          dev_name;
          Printf.sprintf "op %d/%d" k total;
          (if crashed then "yes" else "no");
          (match outcome with
          | Ok true -> "accept"
          | Ok false -> "reject"
          | Error e -> "ABORT:" ^ e);
          string_of_int l.Obs.Ledger.scans;
          (if l.Obs.Ledger.scans = baseline && outcome = Ok true then "yes"
           else "NO");
        ])
    [ ("merge sort", "file"); ("merge sort", "shard") ];
  T.print t2;
  (* ---- the reopen protocol, offline: scrub a synthetic crashed
     spill directory built byte-by-byte from the documented formats *)
  let scrub_dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "stlb-e19scrub-%d" (Unix.getpid ()))
  in
  Unix.mkdir scrub_dir 0o755;
  let write path s =
    let oc = Out_channel.open_bin path in
    Out_channel.output_string oc s;
    Out_channel.close oc
  in
  let be32 v =
    let b = Bytes.create 4 in
    Bytes.set_int32_be b 0 (Int32.of_int v);
    Bytes.to_string b
  in
  (* a .tape file: magic header, one intact frame, one rotted frame,
     and a 3-byte torn tail from a crash mid-pwrite *)
  let bbytes = 8 in
  let payload = "\x00\x04ROTS\x00\x00" in
  let frame p = "\x01" ^ be32 (Tape.Device.crc32 p) ^ p in
  let rotted = "\x01" ^ be32 (Tape.Device.crc32 payload) ^ "\x00\x04ROTT\x00\x00" in
  write
    (Filename.concat scrub_dir "xs-0.tape")
    ("STLBTAP2" ^ be32 bbytes ^ be32 8 ^ frame payload ^ rotted ^ "\x01\x02\x03");
  (* a shard directory: MANIFEST vouches for run 0; run 1 is an
     unlisted orphan, run 2 a torn tmp *)
  let sdir = Filename.concat scrub_dir "ys-1" in
  Unix.mkdir sdir 0o755;
  let shard_frame p = "STLBSHD2" ^ be32 (Tape.Device.crc32 p) ^ p in
  let sp = "\x01\x02a\x00" in
  write (Filename.concat sdir "run-000000.shard") (shard_frame sp);
  write (Filename.concat sdir "run-000001.shard") (shard_frame "\x01\x02b\x00");
  write (Filename.concat sdir "run-000002.shard.tmp") "half a sh";
  write (Filename.concat sdir "MANIFEST")
    (Printf.sprintf "STLBMAN2\n%08x %d run-000000.shard\n"
       (Tape.Device.crc32 sp) (String.length sp));
  let count what (rep : Tape.Device.Scrub.report) =
    List.length
      (List.filter (fun f -> f.Tape.Device.Scrub.what = what) rep.Tape.Device.Scrub.findings)
  in
  let t3 =
    T.create ~title:"E19c [reopen protocol]  stlb scrub over a crashed spill"
      ~columns:
        [
          "step"; "files"; "blocks"; "crc-mismatch"; "torn"; "orphan"; "removed";
        ]
  in
  let scrub_row step ~fix =
    let rep = Tape.Device.Scrub.dir ~fix scrub_dir in
    T.add_row t3
      [
        step;
        string_of_int rep.Tape.Device.Scrub.files_checked;
        string_of_int rep.Tape.Device.Scrub.blocks_checked;
        string_of_int (count "crc-mismatch" rep);
        string_of_int (count "torn" rep);
        string_of_int (count "orphan" rep);
        string_of_int rep.Tape.Device.Scrub.removed;
      ]
  in
  scrub_row "scrub" ~fix:false;
  scrub_row "scrub --fix" ~fix:true;
  scrub_row "re-scrub" ~fix:false;
  T.print t3;
  (* leave no trace of either scratch tree *)
  ignore (Tape.Device.Scrub.dir ~fix:true scrub_dir);
  (try Sys.remove (Filename.concat scrub_dir "xs-0.tape") with Sys_error _ -> ());
  (try Unix.rmdir sdir with Unix.Unix_error _ -> ());
  (try Unix.rmdir scrub_dir with Unix.Unix_error _ -> ());
  (try Unix.rmdir spill with Unix.Unix_error _ -> ());
  print_endline
    "  expected: every corruption is either healed (corrupt = rereads, paid\n\
    \  in retries and extra scans) or aborts loudly - no row ever reports a\n\
    \  wrong verdict. Recovery is not free: a heavily-faulted run that still\n\
    \  completes can honestly FAIL its theorem-budget audit, because re-scans\n\
    \  cost real reversals the fault-free bound never budgeted for. ENOSPC is\n\
    \  fatal by classification (exit 10 at the CLI). A crash at any raw-\n\
    \  syscall point recovers by reopen + recompute with bit-identical scans,\n\
    \  and the scrub pass discards exactly the torn and orphaned frames the\n\
    \  crash left behind.\n\
    \  (Scale with STLB_E19_N; the committed numbers use the default.)"

let exp20 () =
  (* The deciders as a service: a real [Serve.Server] on a Unix-domain
     socket (spawned into its own domain), driven by the [Serve.Loadgen]
     mixed workload — fingerprint, sort (CHECK-SORT and SET-EQ) and nst
     requests interleaved by id. Every verdict is a function of (server
     seed, request id) alone, so the yes/no/audited counts and the
     FNV-1a workload fingerprint must be bit-identical across worker
     counts, device backends and frame batching; only the r/s and
     latency cells (normalized away in the golden) may move. Scale with
     STLB_E20_REQUESTS / STLB_E20_BATCH (the committed numbers use the
     defaults). *)
  let requests =
    match Sys.getenv_opt "STLB_E20_REQUESTS" with
    | Some v -> ( try max 8 (int_of_string v) with Failure _ -> 120)
    | None -> 120
  in
  let batch =
    match Sys.getenv_opt "STLB_E20_BATCH" with
    | Some v -> ( try max 1 (int_of_string v) with Failure _ -> 8)
    | None -> 8
  in
  let m = 6 and n = 8 in
  let seed = 42 and load_seed = 0x5EED in
  let spill =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "stlb-e20-%d" (Unix.getpid ()))
  in
  let row_idx = ref 0 in
  let run_row ~dev ~jobs ~batch =
    incr row_idx;
    let socket =
      Filename.concat (Filename.get_temp_dir_name ())
        (Printf.sprintf "stlb-e20-%d-%d.sock" (Unix.getpid ()) !row_idx)
    in
    let device =
      match dev with
      | "file" ->
          Some (Tape.Device.file_spec ~block_bytes:4096 ~cache_blocks:4 spill)
      | "shard" ->
          Some (Tape.Device.shard_spec ~shard_bytes:8192 ~cache_shards:2 spill)
      | _ -> None
    in
    let cfg =
      {
        (Serve.Server.default ~socket) with
        Serve.Server.seed;
        domains = jobs;
        device;
      }
    in
    let ready = Atomic.make false in
    let srv =
      Domain.spawn (fun () ->
          Serve.Server.run ~on_ready:(fun () -> Atomic.set ready true) cfg)
    in
    while not (Atomic.get ready) do
      Unix.sleepf 0.002
    done;
    let s = Serve.Loadgen.run ~socket ~requests ~batch ~m ~n ~seed:load_seed () in
    let c = Serve.Client.connect socket in
    Serve.Client.shutdown c ~id:requests;
    Serve.Client.close c;
    Domain.join srv;
    s
  in
  let t =
    T.create
      ~title:
        (Printf.sprintf
           "E20 [serve]  mixed decider workload over the stlb/1 socket \
            (requests = %d, batch = %d, m = %d, n = %d)"
           requests batch m n)
      ~columns:
        [
          "device"; "jobs"; "yes"; "no"; "errors"; "audited"; "fingerprint";
          "req/s"; "p50"; "p99";
        ]
  in
  let fingerprints = ref [] in
  let add_row ~dev ~jobs ~batch =
    let s = run_row ~dev ~jobs ~batch in
    fingerprints := s.Serve.Loadgen.fingerprint :: !fingerprints;
    T.add_row t
      [
        dev;
        string_of_int jobs;
        string_of_int s.Serve.Loadgen.yes;
        string_of_int s.Serve.Loadgen.no;
        string_of_int s.Serve.Loadgen.errors;
        string_of_int s.Serve.Loadgen.audited;
        Printf.sprintf "0x%016Lx" s.Serve.Loadgen.fingerprint;
        (* fixed-width timing cells: the golden sed rule replaces the
           padded number, so the rendered column widths never move *)
        Printf.sprintf "%10.1fr/s" s.Serve.Loadgen.rps;
        Printf.sprintf "%10.1fus" s.Serve.Loadgen.p50_us;
        Printf.sprintf "%10.1fus" s.Serve.Loadgen.p99_us;
      ]
  in
  List.iter
    (fun (dev, jobs) -> add_row ~dev ~jobs ~batch)
    [ ("mem", 1); ("mem", 2); ("mem", 4); ("file", 1); ("file", 2); ("file", 4) ];
  (* the batching-parity rerun: the same ids as singleton DECIDE frames
     must collapse to the same fingerprint as the batched rows *)
  let singleton = run_row ~dev:"mem" ~jobs:2 ~batch:1 in
  fingerprints := singleton.Serve.Loadgen.fingerprint :: !fingerprints;
  T.print t;
  (try Unix.rmdir spill with Unix.Unix_error _ -> ());
  let total = List.length !fingerprints in
  let distinct = List.sort_uniq Int64.compare !fingerprints in
  Printf.printf
    "  parity: %d device/worker rows + singleton-frame rerun -> %d/%d \
     fingerprints %s\n"
    (total - 1) total total
    (if List.length distinct = 1 then "IDENTICAL" else "MISMATCH");
  print_endline
    "  expected: yes/no/errors/audited and the workload fingerprint are\n\
    \  byte-identical down every row - a verdict depends only on (server\n\
    \  seed, request id), never on the device, the worker count or how\n\
    \  requests are packed into frames. Throughput and latency cells are\n\
    \  machine-dependent (and normalized in the golden); on a single-core\n\
    \  runner extra domains buy determinism coverage, not speed.\n\
    \  (Scale with STLB_E20_REQUESTS / STLB_E20_BATCH; the committed\n\
    \  numbers use the defaults.)"

let exp21 () =
  (* The differential query fuzzer as an experiment: seeded random
     well-typed list-relation queries, each compiled to an audited
     relalg/xmlq plan and executed on the tape substrate, then
     cross-checked against the naive in-memory oracle. Case [index]
     depends only on (seed, index), so the campaign fingerprint must be
     bit-identical across worker counts and devices — same contract as
     E18/E20, now for the whole query front-end. The last row is the
     negative control: the same campaign with the planted swap-compose
     planner bug, which must produce mismatches and a shrunk minimal
     counterexample. Scale with STLB_E21_ITERS (the committed numbers
     use the default). *)
  let iters =
    match Sys.getenv_opt "STLB_E21_ITERS" with
    | Some v -> ( try max 10 (int_of_string v) with Failure _ -> 400)
    | None -> 400
  in
  let seed = 2021 in
  let spill =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "stlb-e21-%d" (Unix.getpid ()))
  in
  let t =
    T.create
      ~title:
        (Printf.sprintf
           "E21 [query fuzzer]  compiled tape plans vs the naive oracle \
            (seed = %d, iters = %d)"
           seed iters)
      ~columns:
        [
          "config"; "matches"; "mismatches"; "audit fails"; "plan nodes";
          "scans"; "fingerprint";
        ]
  in
  let fingerprints = ref [] in
  let first_shrunk = ref None in
  let row ~name ?pool ?device ~clean () =
    let c = Query.Fuzz.run_campaign ?pool ?device ~seed ~iters () in
    if clean then fingerprints := c.Query.Fuzz.fingerprint :: !fingerprints
    else
      first_shrunk :=
        (match c.Query.Fuzz.discrepancies with
        | d :: _ -> Some d.Query.Fuzz.d_program
        | [] -> None);
    T.add_row t
      [
        name;
        string_of_int c.Query.Fuzz.matches;
        string_of_int c.Query.Fuzz.mismatches;
        string_of_int c.Query.Fuzz.audit_failures;
        string_of_int c.Query.Fuzz.total_plan_nodes;
        string_of_int c.Query.Fuzz.total_scans;
        Printf.sprintf "0x%016Lx" c.Query.Fuzz.fingerprint;
      ]
  in
  row ~name:"mem -j 1" ~clean:true ();
  row ~name:"mem -j 2" ~pool:(Parallel.Pool.create ~domains:2 ()) ~clean:true ();
  row ~name:"mem -j 4" ~pool:(Parallel.Pool.create ~domains:4 ()) ~clean:true ();
  row ~name:"file"
    ~device:(Tape.Device.file_spec ~block_bytes:4096 ~cache_blocks:4 spill)
    ~clean:true ();
  row ~name:"shard"
    ~device:(Tape.Device.shard_spec ~shard_bytes:8192 ~cache_shards:2 spill)
    ~clean:true ();
  (* negative control: plant the swap-compose bug in the planner and
     require the fuzzer to notice *)
  Query.Compile.swap_compose := true;
  Fun.protect
    ~finally:(fun () -> Query.Compile.swap_compose := false)
    (fun () -> row ~name:"mem + planted bug" ~clean:false ());
  T.print t;
  (try Unix.rmdir spill with Unix.Unix_error _ -> ());
  let total = List.length !fingerprints in
  let distinct = List.sort_uniq Int64.compare !fingerprints in
  Printf.printf "  parity: %d clean worker/device rows -> %d/%d fingerprints %s\n"
    total total total
    (if List.length distinct = 1 then "IDENTICAL" else "MISMATCH");
  (match !first_shrunk with
  | Some p -> Printf.printf "  planted-bug counterexample (shrunk): %s\n" p
  | None -> print_endline "  planted-bug counterexample: NOT CAUGHT");
  print_endline
    "  expected: zero mismatches and zero audit failures on every clean row,\n\
    \  one fingerprint across -j 1/2/4 and mem/file/shard (case [index] of\n\
    \  stream [seed] is a function of (seed, index) alone, and the E18 device\n\
    \  contract keeps scan counts backend-blind); the planted swap-compose\n\
    \  row must show mismatches > 0 with a shrunk self-contained\n\
    \  counterexample program. Plan-node and scan totals restate the E17\n\
    \  story at campaign scale: every executed node stayed inside its\n\
    \  Theorem 11-13 budget.\n\
    \  (Scale with STLB_E21_ITERS; the committed numbers use the default.)"

let exp22 () =
  (* The sharded Lemma 21 census: [k] collectors each sweep one residue
     class of the sample indices and emit mergeable evidence; the merge
     folds them back into the exact single-process verdict. Every
     (intern backend x shard count) cell must land on one census
     fingerprint — the merged verdict is a function of the root seed
     alone, never of how the samples were partitioned or where the
     class table lived. *)
  let root = 2022 in
  let m = 16 in
  let space = G.Checkphi.default_space ~m ~n:(2 * m) in
  let machine = Listmachine.Machines.random_chain_checkphi ~space in
  let spill =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "stlb-e22-%d" (Unix.getpid ()))
  in
  (try Unix.mkdir spill 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  let t =
    T.create
      ~title:
        (Printf.sprintf
           "E22 [sharded census]  shard-count x intern-backend parity \
            (random-chain machine, m = %d, root = %d)"
           m root)
      ~columns:
        [
          "intern"; "shards"; "classes"; "canon hits"; "machine runs";
          "spill r/w"; "spill bytes"; "merged fingerprint";
        ]
  in
  let fingerprints = ref [] in
  let backends =
    [
      ("mem", fun () -> Listmachine.Skeleton.Intern.Ram);
      ( "file",
        fun () ->
          Listmachine.Skeleton.Intern.Spill
            {
              spec = Tape.Device.file_spec ~block_bytes:4096 ~cache_blocks:4 spill;
              recent = 8;
            } );
      ( "shard",
        fun () ->
          Listmachine.Skeleton.Intern.Spill
            {
              spec = Tape.Device.shard_spec ~shard_bytes:8192 ~cache_shards:2 spill;
              recent = 8;
            } );
    ]
  in
  List.iter
    (fun (bname, backend) ->
      List.iter
        (fun k ->
          let before = Obs.Counters.snapshot () in
          let evs =
            List.init k (fun i ->
                Stcore.Adversary.Shard.collect ~intern:(backend ()) ~root ~space
                  ~machine ~shard:(i + 1) ~of_:k ())
          in
          let c = Stcore.Adversary.Shard.merge ~space ~machine evs in
          let d = Obs.Counters.(diff (snapshot ()) ~since:before) in
          fingerprints := c.Stcore.Adversary.fingerprint :: !fingerprints;
          T.add_row t
            [
              bname;
              string_of_int k;
              string_of_int c.Stcore.Adversary.classes;
              string_of_int c.Stcore.Adversary.canonical_hits;
              string_of_int c.Stcore.Adversary.machine_runs;
              Printf.sprintf "%d/%d" d.Obs.Counters.census_spill_reads
                d.Obs.Counters.census_spill_writes;
              string_of_int d.Obs.Counters.census_spill_bytes;
              Printf.sprintf "0x%016Lx" c.Stcore.Adversary.fingerprint;
            ])
        [ 1; 2; 4 ])
    backends;
  T.print t;
  (try Unix.rmdir spill with Unix.Unix_error _ -> ());
  let total = List.length !fingerprints in
  let distinct = List.sort_uniq Int64.compare !fingerprints in
  Printf.printf "  parity: %d backend/shard rows -> %d/%d fingerprints %s\n"
    total total total
    (if List.length distinct = 1 then "IDENTICAL" else "MISMATCH");
  print_endline
    "  expected: one fingerprint down the whole table. Each sample's\n\
    \  draws are keyed on its global index, so sharding repartitions\n\
    \  work without re-randomizing; the merge replays the Lemma 26 seed\n\
    \  selection and census in global sample order, so dense class ids,\n\
    \  tie-breaks and the final verdict are bit-identical to the\n\
    \  unsharded run. Spill rows pay device reads/writes (one slot per\n\
    \  class plus probe traffic) for O(1) resident class state; mem rows\n\
    \  show 0/0. Canonical-form reduction collapses each sweep to one\n\
    \  machine run per (seed, rank pattern) orbit, so machine-run counts\n\
    \  stay near the trial count while hit counts cover every sample."

let all : (string * (unit -> unit)) list =
  [
    ("exp1", exp1);
    ("exp2", exp2);
    ("exp3", exp3);
    ("exp4", exp4);
    ("exp5", exp5);
    ("exp6", exp6);
    ("exp7", exp7);
    ("exp8", exp8);
    ("exp9", exp9);
    ("exp10", exp10);
    ("exp11", exp11);
    ("exp12", exp12);
    ("exp13", exp13);
    ("exp14", exp14);
    ("exp15", exp15);
    ("exp16", exp16);
    ("exp17", exp17);
    ("exp18", exp18);
    ("exp19", exp19);
    ("exp20", exp20);
    ("exp21", exp21);
    ("exp22", exp22);
  ]

let run_all ?checkpoint () =
  List.iter
    (fun (name, f) ->
      Checkpoint.run checkpoint ~name (fun () ->
          f ();
          print_newline ()))
    all
