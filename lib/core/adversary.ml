module B = Util.Bitstring
module P = Util.Permutation
module I = Problems.Instance
module G = Problems.Generators
module Nlm = Listmachine.Nlm
module Skeleton = Listmachine.Skeleton

type outcome =
  | Fooled of {
      input : I.t;
      i0 : int;
      skeleton_classes : int;
      yes_acceptance : float;
      choice_seed : int;
    }
  | Not_fooled of {
      reason : string;
      yes_acceptance : float;
      skeleton_classes : int;
    }
  | Contract_violated of { yes_acceptance : float }

(* A deterministic pseudo-random choice function: the "fixed sequence c"
   of Lemma 26, regenerable from its seed (splitmix64-style mixing). *)
let choice_fn ~seed ~num_choices step =
  let z = ref (seed + (step * 0x9E3779B9) + 0x85EBCA6B) in
  z := (!z lxor (!z lsr 16)) * 0x45D9F3B;
  z := (!z lxor (!z lsr 16)) * 0x45D9F3B;
  z := !z lxor (!z lsr 16);
  (!z land max_int) mod num_choices

let values_of inst = Array.append (I.xs inst) (I.ys inst)

(* View runs: the skeleton pipeline never needs full configuration
   snapshots, and the in-place runner allocates O(t) per step instead of
   O(list length) — which is what lets the census sweeps actually scale
   over domains instead of contending on the major heap. *)
let run_with ~fuel machine ~seed inst =
  Nlm.run_view ~fuel machine ~values:(values_of inst)
    ~choices:(choice_fn ~seed ~num_choices:machine.Nlm.num_choices)

(* Every random draw the attack makes comes from a splitmix64 stream
   keyed on (root, index): samples at indices [0 .. yes_samples-1],
   candidate choice seeds after them, resampling states after those. So
   the whole attack is a function of the root seed — independent of the
   pool's worker count, and replayable by passing [~seed]. *)
let sample_index i = i
let trial_index ~yes_samples t = yes_samples + t
let resample_index ~yes_samples ~choice_trials n = yes_samples + choice_trials + n

let attack ?pool ?seed st ~space ~machine ?(yes_samples = 48) ?(choice_trials = 8)
    ?(resample_tries = 32) ?(fuel = 200_000) () =
  let pool = match pool with Some p -> p | None -> Parallel.Pool.default () in
  let phi = G.Checkphi.phi space in
  let inv = G.Checkphi.inv_phi space in
  let m = P.size phi in
  let root =
    match seed with Some s -> s | None -> Parallel.Rng.seed_of_state st
  in
  let sample_arr =
    Array.init yes_samples (fun i ->
        G.Checkphi.yes (Parallel.Rng.state ~seed:root ~index:(sample_index i)) space)
  in
  (* Step 1 (Lemma 26) + step 2 census input, in one sweep per candidate
     seed: replaying the machine on a sample is pure (the choice
     function is regenerated from the seed), so the samples fan out over
     the pool; [Pool.map] returns slot-indexed results and every fold
     below runs in sample order, keeping the outcome independent of the
     worker count. Skeletons are DAG views over the run's cells — cheap
     enough to build during scoring, which saves the separate census
     sweep of the accepting runs. *)
  let trials =
    if machine.Nlm.num_choices = 1 then [| 0 |]
    else
      Array.init choice_trials (fun t ->
          if t = 0 then 0
          else
            (Parallel.Rng.derive ~seed:root ~index:(trial_index ~yes_samples t)).(0))
  in
  let sweep seed =
    Parallel.Pool.map pool
      (fun inst ->
        let tr = run_with ~fuel machine ~seed inst in
        if tr.Nlm.vaccepted then Some (Skeleton.of_views tr) else None)
      sample_arr
  in
  let best = ref None in
  Array.iter
    (fun seed ->
      let skels = sweep seed in
      let hits =
        Array.fold_left (fun acc o -> if Option.is_none o then acc else acc + 1) 0 skels
      in
      match !best with
      | Some (_, best_hits, _) when best_hits >= hits -> ()
      | Some _ | None -> best := Some (seed, hits, skels))
    trials;
  let seed, hits, skels =
    match !best with Some b -> b | None -> assert false
  in
  let yes_acceptance = float_of_int hits /. float_of_int yes_samples in
  if 2 * hits < yes_samples then Contract_violated { yes_acceptance }
  else begin
    (* Step 2: skeleton census of the accepting runs. Interning maps
       structurally equal skeletons to one dense id (first-intern order,
       i.e. sample order), so class counting is integer buckets and the
       most-popular-class choice is deterministic: max count, ties to
       the earlier-seen class. *)
    let intern_tbl = Skeleton.Intern.create () in
    let class_of = Array.make yes_samples (-1) in
    let reps = Array.make yes_samples None in
    Array.iteri
      (fun i o ->
        match o with
        | None -> ()
        | Some sk ->
            let id, rep = Skeleton.Intern.intern intern_tbl sk in
            class_of.(i) <- id;
            if Option.is_none reps.(id) then reps.(id) <- Some rep)
      skels;
    let skeleton_classes = Skeleton.Intern.count intern_tbl in
    let counts = Array.make (max skeleton_classes 1) 0 in
    Array.iter (fun id -> if id >= 0 then counts.(id) <- counts.(id) + 1) class_of;
    let best_id = ref 0 in
    for id = 1 to skeleton_classes - 1 do
      if counts.(id) > counts.(!best_id) then best_id := id
    done;
    let best_id = !best_id in
    let zeta =
      match reps.(best_id) with Some sk -> sk | None -> assert false
    in
    (* Step 3 (Claim 3): an uncompared pair index. *)
    match Skeleton.uncompared_phi_indices zeta ~m ~phi with
    | [] ->
        Not_fooled
          {
            reason = "every pair (i, m+phi(i)) is compared in the skeleton";
            yes_acceptance;
            skeleton_classes;
          }
    | i0 :: _ -> begin
        (* Steps 4-5: find v, w in the class differing only in the value
           at x-position i0 (hence also at y-position phi(i0)). First look
           for a sampled pair, then actively resample the i0 value. Class
           members are yes-instances, so the x-half minus position i0
           determines everything but the i0 value: group on that key and
           a second member with a different i0 value closes a pair. The
           scan runs in sample order — first pair wins, deterministically. *)
        let key_of inst =
          let buf = Buffer.create (16 * m) in
          let xs = I.xs inst in
          Array.iteri
            (fun idx x ->
              if idx <> i0 - 1 then begin
                Buffer.add_string buf (B.to_string x);
                Buffer.add_char buf '#'
              end)
            xs;
          Buffer.contents buf
        in
        let first_with = Hashtbl.create 16 in
        let sampled_pair = ref None in
        (try
           Array.iteri
             (fun i id ->
               if id = best_id then begin
                 let inst = sample_arr.(i) in
                 let k = key_of inst in
                 match Hashtbl.find_opt first_with k with
                 | Some a when not (B.equal (I.x a i0) (I.x inst i0)) ->
                     sampled_pair := Some (a, inst);
                     raise Exit
                 | Some _ -> ()
                 | None -> Hashtbl.add first_with k inst
               end)
             class_of
         with Exit -> ());
        let witness =
          let idx = ref (-1) in
          Array.iteri (fun i id -> if !idx < 0 && id = best_id then idx := i) class_of;
          sample_arr.(!idx)
        in
        let resampled_pair () =
          (* perturb the witness at position i0 within its interval and
             keep variants whose run has skeleton ζ and accepts *)
          let intervals = G.Checkphi.intervals space in
          let rec try_ n =
            if n > resample_tries then None
            else begin
              let rng =
                Parallel.Rng.state ~seed:root
                  ~index:(resample_index ~yes_samples ~choice_trials n)
              in
              let fresh =
                Problems.Intervals.random_element rng intervals (P.apply phi i0)
              in
              if B.equal fresh (I.x witness i0) then try_ (n + 1)
              else begin
                let xs = I.xs witness in
                xs.(i0 - 1) <- fresh;
                let ys = Array.init m (fun j0 -> xs.(P.apply inv (j0 + 1) - 1)) in
                let candidate = I.make xs ys in
                let tr = run_with ~fuel machine ~seed candidate in
                if
                  tr.Nlm.vaccepted
                  && Skeleton.equal (Skeleton.of_views tr) zeta
                then Some (witness, candidate)
                else try_ (n + 1)
              end
            end
          in
          try_ 1
        in
        match
          (match !sampled_pair with Some p -> Some p | None -> resampled_pair ())
        with
        | None ->
            Not_fooled
              {
                reason =
                  Printf.sprintf
                    "no same-skeleton pair differing only at i0=%d found" i0;
                yes_acceptance;
                skeleton_classes;
              }
        | Some (v, w) -> begin
            (* Step 6 (Lemma 34): cross the halves. *)
            let u = I.make (I.xs v) (I.ys w) in
            let tr = run_with ~fuel machine ~seed u in
            if tr.Nlm.vaccepted && not (G.Checkphi.is_yes space u) then
              Fooled
                {
                  input = u;
                  i0;
                  skeleton_classes;
                  yes_acceptance;
                  choice_seed = seed;
                }
            else
              Not_fooled
                {
                  reason =
                    (if tr.Nlm.vaccepted then
                       "composed input unexpectedly a yes-instance"
                     else "machine rejected the composed input");
                  yes_acceptance;
                  skeleton_classes;
                }
          end
      end
  end

let verify_fooled ~space ~machine outcome =
  match outcome with
  | Fooled f ->
      G.Checkphi.member space f.input
      && (not (G.Checkphi.is_yes space f.input))
      && (run_with ~fuel:200_000 machine ~seed:f.choice_seed f.input).Nlm.vaccepted
  | Not_fooled _ | Contract_violated _ -> false
