module B = Util.Bitstring
module P = Util.Permutation
module I = Problems.Instance
module G = Problems.Generators
module Nlm = Listmachine.Nlm
module Skeleton = Listmachine.Skeleton

type outcome =
  | Fooled of {
      input : I.t;
      i0 : int;
      skeleton_classes : int;
      yes_acceptance : float;
      choice_seed : int;
    }
  | Not_fooled of {
      reason : string;
      yes_acceptance : float;
      skeleton_classes : int;
    }
  | Contract_violated of { yes_acceptance : float }

(* A deterministic pseudo-random choice function: the "fixed sequence c"
   of Lemma 26, regenerable from its seed (splitmix64-style mixing). *)
let choice_fn ~seed ~num_choices step =
  let z = ref (seed + (step * 0x9E3779B9) + 0x85EBCA6B) in
  z := (!z lxor (!z lsr 16)) * 0x45D9F3B;
  z := (!z lxor (!z lsr 16)) * 0x45D9F3B;
  z := !z lxor (!z lsr 16);
  (!z land max_int) mod num_choices

let values_of inst = Array.append (I.xs inst) (I.ys inst)

(* View runs: the skeleton pipeline never needs full configuration
   snapshots, and the in-place runner allocates O(t) per step instead of
   O(list length) — which is what lets the census sweeps actually scale
   over domains instead of contending on the major heap. *)
let run_with ~fuel machine ~seed inst =
  Nlm.run_view ~fuel machine ~values:(values_of inst)
    ~choices:(choice_fn ~seed ~num_choices:machine.Nlm.num_choices)

(* Every random draw the attack makes comes from a splitmix64 stream
   keyed on (root, index): samples at indices [0 .. yes_samples-1],
   candidate choice seeds after them, resampling states after those. So
   the whole attack is a function of the root seed — independent of the
   pool's worker count and of how the sample space is sharded across
   processes, and replayable by passing [~seed]. *)
let sample_index i = i
let trial_index ~yes_samples t = yes_samples + t
let resample_index ~yes_samples ~choice_trials n = yes_samples + choice_trials + n

let sample_at ~root space i =
  G.Checkphi.yes (Parallel.Rng.state ~seed:root ~index:(sample_index i)) space

let trial_seeds ~machine ~root ~yes_samples ~choice_trials =
  if machine.Nlm.num_choices = 1 then [| 0 |]
  else
    Array.init choice_trials (fun t ->
        if t = 0 then 0
        else (Parallel.Rng.derive ~seed:root ~index:(trial_index ~yes_samples t)).(0))

(* ------------------------------------------------------------------ *)
(* Canonical-form reduction.

   The machines the adversary targets observe their input only through
   value-equality tests (the [Plan] comparisons are [B.equal]), and
   skeleton cells store input *positions*, never values. So the run —
   acceptance, trace, skeleton — is a function of the order/equality
   pattern of the 2m input values and the choice sequence alone, and
   any value renaming that preserves that pattern yields literally the
   same skeleton. Replacing each value by its dense rank picks one
   representative per orbit of that symmetry; censusing the
   representative once stands for every sample in the orbit. On the
   CHECK-phi space all yes-instances share a single pattern (disjoint
   intervals, ties exactly at the (i, phi(i)) pairs), so the per-seed
   sweep collapses from [yes_samples] machine runs to one — the
   asymptotic win that makes m=64 a sub-second census. *)

let rank_map values =
  let sorted = Array.copy values in
  Array.sort B.compare sorted;
  let tbl = Hashtbl.create (2 * Array.length values) in
  let next = ref 0 in
  Array.iter
    (fun v ->
      let s = B.to_string v in
      if not (Hashtbl.mem tbl s) then begin
        Hashtbl.add tbl s !next;
        incr next
      end)
    sorted;
  (tbl, !next)

let canonical_key inst =
  let values = values_of inst in
  let tbl, _ = rank_map values in
  let buf = Buffer.create (4 * Array.length values) in
  Array.iter
    (fun v ->
      Buffer.add_string buf (string_of_int (Hashtbl.find tbl (B.to_string v)));
      Buffer.add_char buf ',')
    values;
  Buffer.contents buf

let canonicalize inst =
  let values = values_of inst in
  let tbl, distinct = rank_map values in
  let width =
    let rec bits w lim = if lim >= distinct then w else bits (w + 1) (2 * lim) in
    bits 1 2
  in
  let canon =
    Array.map (fun v -> B.of_int ~width (Hashtbl.find tbl (B.to_string v))) values
  in
  let m = Array.length values / 2 in
  I.make (Array.sub canon 0 m) (Array.sub canon m m)

(* The memoizing machine runner: one entry per (choice seed, canonical
   key), holding (accepted, skeleton-if-accepted). With [canon:false]
   every call is a real run — the escape hatch for machines that
   inspect value *content* (none in this tree do). *)
type runner = {
  r_machine : B.t Nlm.t;
  r_fuel : int;
  r_canon : bool;
  r_memo : (int * string, bool * Skeleton.t option) Hashtbl.t;
  mutable r_runs : int;
  mutable r_canon_hits : int;
}

let make_runner ~machine ~fuel ~canon =
  {
    r_machine = machine;
    r_fuel = fuel;
    r_canon = canon;
    r_memo = Hashtbl.create 64;
    r_runs = 0;
    r_canon_hits = 0;
  }

let raw_run r ~seed inst =
  let tr = run_with ~fuel:r.r_fuel r.r_machine ~seed inst in
  (tr.Nlm.vaccepted, if tr.Nlm.vaccepted then Some (Skeleton.of_views tr) else None)

let run_memo r ~seed inst =
  if not r.r_canon then begin
    r.r_runs <- r.r_runs + 1;
    raw_run r ~seed inst
  end
  else begin
    let key = canonical_key inst in
    match Hashtbl.find_opt r.r_memo (seed, key) with
    | Some res ->
        r.r_canon_hits <- r.r_canon_hits + 1;
        Obs.Counters.add_census_canonical_hits 1;
        res
    | None ->
        r.r_runs <- r.r_runs + 1;
        let res = raw_run r ~seed (canonicalize inst) in
        Hashtbl.replace r.r_memo (seed, key) res;
        res
  end

(* One census sweep: run every instance under the fixed choice seed.
   Only the first occurrence of each canonical class actually runs (and
   those fan out over the pool — the closure is pure; counters are
   settled on the calling domain afterwards). *)
let sweep r pool ~seed insts =
  if not r.r_canon then begin
    let results = Parallel.Pool.map pool (fun inst -> raw_run r ~seed inst) insts in
    r.r_runs <- r.r_runs + Array.length insts;
    results
  end
  else begin
    let keys = Array.map canonical_key insts in
    let queued = Hashtbl.create 16 in
    let fresh = ref [] in
    Array.iteri
      (fun i key ->
        if (not (Hashtbl.mem r.r_memo (seed, key))) && not (Hashtbl.mem queued key)
        then begin
          Hashtbl.add queued key ();
          fresh := (key, insts.(i)) :: !fresh
        end)
      keys;
    let fresh = Array.of_list (List.rev !fresh) in
    let results =
      Parallel.Pool.map pool
        (fun (_, inst) -> raw_run r ~seed (canonicalize inst))
        fresh
    in
    Array.iteri
      (fun j (key, _) -> Hashtbl.replace r.r_memo (seed, key) results.(j))
      fresh;
    r.r_runs <- r.r_runs + Array.length fresh;
    let memoized = Array.length insts - Array.length fresh in
    r.r_canon_hits <- r.r_canon_hits + memoized;
    Obs.Counters.add_census_canonical_hits memoized;
    Array.map (fun key -> Hashtbl.find r.r_memo (seed, key)) keys
  end

(* ------------------------------------------------------------------ *)

type census = {
  outcome : outcome;
  fingerprint : int64;
  chosen_seed : int;
  hits : int;
  samples : int;
  classes : int;
  canonical_hits : int;
  machine_runs : int;
  shards_merged : int;
}

(* The mergeable outcome fingerprint: FNV-1a 64 over a canonical
   rendering of the verdict and the census summary. Every field in the
   rendering is invariant under worker count, intern backend, canonical
   reduction and sharding, so equality of fingerprints is exactly the
   bit-identity the acceptance criterion asks for. *)
let fingerprint_of ~root ~m ~n ~chosen_seed ~hits ~samples ~classes outcome =
  let body =
    match outcome with
    | Fooled { input; i0; _ } ->
        Printf.sprintf "fooled i0=%d input=%s" i0 (I.encode input)
    | Not_fooled { reason; _ } -> Printf.sprintf "not-fooled reason=%s" reason
    | Contract_violated _ -> "contract-violated"
  in
  Skeleton.fnv64
    (Printf.sprintf "stlb-census root=%d m=%d n=%d seed=%d hits=%d/%d classes=%d %s"
       root m n chosen_seed hits samples classes body)

module Shard = struct
  type cls = { digest : int64; uncompared : int list }

  type evidence = {
    root : int;
    m : int;
    n : int;
    machine_name : string;
    yes_samples : int;
    choice_trials : int;
    resample_tries : int;
    fuel : int;
    canon : bool;
    shard : int;
    shards : int;
    trial_seeds : int array;
    accepted : (int * int) array array;
    classes : cls array;
    canonical_hits : int;
    machine_runs : int;
  }

  let magic = "stlb-census-evidence/1"

  let to_string e =
    let buf = Buffer.create 4096 in
    Buffer.add_string buf magic;
    Buffer.add_char buf '\n';
    Printf.bprintf buf
      "root=%d m=%d n=%d yes=%d trials=%d resample=%d fuel=%d canon=%b \
       shard=%d/%d canonhits=%d runs=%d\n"
      e.root e.m e.n e.yes_samples e.choice_trials e.resample_tries e.fuel
      e.canon e.shard e.shards e.canonical_hits e.machine_runs;
    Printf.bprintf buf "machine=%s\n" e.machine_name;
    Printf.bprintf buf "seeds=%s\n"
      (String.concat "," (Array.to_list (Array.map string_of_int e.trial_seeds)));
    Printf.bprintf buf "classes=%d\n" (Array.length e.classes);
    Array.iter
      (fun c ->
        Printf.bprintf buf "class %016Lx %s\n" c.digest
          (match c.uncompared with
          | [] -> "-"
          | l -> String.concat "," (List.map string_of_int l)))
      e.classes;
    Array.iteri
      (fun t acc ->
        Printf.bprintf buf "trial %d %d" t (Array.length acc);
        Array.iter (fun (i, c) -> Printf.bprintf buf " %d:%d" i c) acc;
        Buffer.add_char buf '\n')
      e.accepted;
    Buffer.add_string buf "end\n";
    Buffer.contents buf

  let of_string s =
    let fail msg = failwith ("Adversary.Shard.of_string: " ^ msg) in
    let ints_of_csv str =
      if str = "" then []
      else List.map int_of_string (String.split_on_char ',' str)
    in
    let after ~prefix line =
      let lp = String.length prefix in
      if String.length line >= lp && String.sub line 0 lp = prefix then
        String.sub line lp (String.length line - lp)
      else fail (Printf.sprintf "expected %S line" prefix)
    in
    match String.split_on_char '\n' s with
    | m0 :: header :: machine_line :: seeds_line :: nclasses_line :: rest ->
        if m0 <> magic then fail "bad magic";
        let root, m, n, yes, trials, resample, fuel, canon, shard, shards, ch, runs
            =
          try
            Scanf.sscanf header
              "root=%d m=%d n=%d yes=%d trials=%d resample=%d fuel=%d \
               canon=%B shard=%d/%d canonhits=%d runs=%d"
              (fun a b c d e f g h i j k l -> (a, b, c, d, e, f, g, h, i, j, k, l))
          with Scanf.Scan_failure _ | End_of_file -> fail "bad header"
        in
        let machine_name = after ~prefix:"machine=" machine_line in
        let trial_seeds =
          Array.of_list (ints_of_csv (after ~prefix:"seeds=" seeds_line))
        in
        let nclasses =
          try Scanf.sscanf nclasses_line "classes=%d" Fun.id
          with Scanf.Scan_failure _ | End_of_file -> fail "bad classes line"
        in
        let rec take_classes k acc rest =
          if k = 0 then (Array.of_list (List.rev acc), rest)
          else
            match rest with
            | line :: rest ->
                let c =
                  try
                    Scanf.sscanf line "class %Lx %s" (fun digest u ->
                        { digest; uncompared = (if u = "-" then [] else ints_of_csv u) })
                  with Scanf.Scan_failure _ | End_of_file -> fail "bad class line"
                in
                take_classes (k - 1) (c :: acc) rest
            | [] -> fail "truncated class list"
        in
        let classes, rest = take_classes nclasses [] rest in
        let parse_trial t line =
          match String.split_on_char ' ' line with
          | "trial" :: ts :: cnt :: pairs ->
              if int_of_string ts <> t then fail "trial records out of order";
              let cnt = int_of_string cnt in
              if List.length pairs <> cnt then fail "bad trial record count";
              Array.of_list
                (List.map
                   (fun p ->
                     match String.split_on_char ':' p with
                     | [ i; c ] -> (int_of_string i, int_of_string c)
                     | _ -> fail "bad sample record")
                   pairs)
          | _ -> fail "bad trial line"
        in
        let rec take_trials t acc rest =
          if t = Array.length trial_seeds then (Array.of_list (List.rev acc), rest)
          else
            match rest with
            | line :: rest -> take_trials (t + 1) (parse_trial t line :: acc) rest
            | [] -> fail "truncated trial list"
        in
        let accepted, rest = take_trials 0 [] rest in
        (match rest with
        | "end" :: _ -> ()
        | _ -> fail "missing end marker");
        {
          root;
          m;
          n;
          machine_name;
          yes_samples = yes;
          choice_trials = trials;
          resample_tries = resample;
          fuel;
          canon;
          shard;
          shards;
          trial_seeds;
          accepted;
          classes;
          canonical_hits = ch;
          machine_runs = runs;
        }
    | _ -> fail "truncated evidence"

  let fingerprint e = Skeleton.fnv64 (to_string e)

  let collect ?pool ?(canon = true) ?(intern = Skeleton.Intern.Ram) ~root ~space
      ~machine ?(yes_samples = 48) ?(choice_trials = 8) ?(resample_tries = 32)
      ?fuel ~shard ~of_:shards () =
    if shards < 1 || shard < 1 || shard > shards then
      invalid_arg "Adversary.Shard.collect: shard index out of range";
    (* a scripted machine visits one state per step, so the default
       budget must cover the script: every shard derives the same
       number from the same machine, keeping evidence mergeable *)
    let fuel = match fuel with
      | Some f -> f
      | None -> max 200_000 (2 * machine.Nlm.state_count)
    in
    let pool = match pool with Some p -> p | None -> Parallel.Pool.default () in
    let phi = G.Checkphi.phi space in
    let m = P.size phi in
    let n = Problems.Intervals.n (G.Checkphi.intervals space) in
    (* this shard owns the sample indices congruent to shard-1 mod k;
       every sample's stream is keyed on its global index, so ownership
       is a partition of draws, not a reseeding *)
    let owned =
      Array.of_list
        (List.filter (fun i -> i mod shards = shard - 1)
           (List.init yes_samples Fun.id))
    in
    let insts = Array.map (fun i -> sample_at ~root space i) owned in
    let seeds = trial_seeds ~machine ~root ~yes_samples ~choice_trials in
    let r = make_runner ~machine ~fuel ~canon in
    let tbl = Skeleton.Intern.create ~backend:intern () in
    let classes = ref [] in
    let n_classes = ref 0 in
    let accepted =
      Array.map
        (fun seed ->
          let results = sweep r pool ~seed insts in
          let accs = ref [] in
          Array.iteri
            (fun j (acc, sk) ->
              if acc then begin
                let sk = Option.get sk in
                let id, rep = Skeleton.Intern.intern tbl sk in
                if id = !n_classes then begin
                  (* fresh class: ids are dense, so this is its first
                     sighting — digest once, for cross-shard identity *)
                  classes :=
                    {
                      digest = Skeleton.digest rep;
                      uncompared = Skeleton.uncompared_phi_indices rep ~m ~phi;
                    }
                    :: !classes;
                  incr n_classes
                end;
                accs := (owned.(j), id) :: !accs
              end)
            results;
          Array.of_list (List.rev !accs))
        seeds
    in
    Skeleton.Intern.close tbl;
    {
      root;
      m;
      n;
      machine_name = machine.Nlm.name;
      yes_samples;
      choice_trials;
      resample_tries;
      fuel;
      canon;
      shard;
      shards;
      trial_seeds = seeds;
      accepted;
      classes = Array.of_list (List.rev !classes);
      canonical_hits = r.r_canon_hits;
      machine_runs = r.r_runs;
    }

  let merge ~space ~machine evidences =
    let evs = List.sort (fun a b -> compare a.shard b.shard) evidences in
    let e0 =
      match evs with
      | [] -> invalid_arg "Adversary.Shard.merge: no evidence"
      | e :: _ -> e
    in
    let k = e0.shards in
    if List.length evs <> k then
      failwith
        (Printf.sprintf "Adversary.Shard.merge: have %d shard(s), expected %d"
           (List.length evs) k);
    List.iteri
      (fun i e ->
        if e.shard <> i + 1 then
          failwith "Adversary.Shard.merge: duplicate or missing shard";
        if
          e.root <> e0.root || e.m <> e0.m || e.n <> e0.n
          || e.machine_name <> e0.machine_name
          || e.yes_samples <> e0.yes_samples
          || e.choice_trials <> e0.choice_trials
          || e.resample_tries <> e0.resample_tries
          || e.fuel <> e0.fuel || e.canon <> e0.canon || e.shards <> k
          || e.trial_seeds <> e0.trial_seeds
        then failwith "Adversary.Shard.merge: inconsistent shard evidence")
      evs;
    let phi = G.Checkphi.phi space in
    let m = P.size phi in
    if m <> e0.m || Problems.Intervals.n (G.Checkphi.intervals space) <> e0.n then
      invalid_arg "Adversary.Shard.merge: space does not match the evidence";
    if machine.Nlm.name <> e0.machine_name then
      invalid_arg "Adversary.Shard.merge: machine does not match the evidence";
    Obs.Counters.add_census_shard_merges 1;
    let root = e0.root and yes_samples = e0.yes_samples in
    let evs_arr = Array.of_list evs in
    (* Lemma 26 seed selection over the union of the shards' sample
       records: per-trial hit totals, first strictly-better seed wins —
       exactly the unsharded fold, because acceptance of sample i under
       seed s is a pure fact either computation observes identically. *)
    let best = ref None in
    Array.iteri
      (fun t seed ->
        let hits =
          Array.fold_left (fun a e -> a + Array.length e.accepted.(t)) 0 evs_arr
        in
        match !best with
        | Some (_, _, best_hits) when best_hits >= hits -> ()
        | Some _ | None -> best := Some (t, seed, hits))
      e0.trial_seeds;
    let best_t, seed, hits =
      match !best with Some b -> b | None -> assert false
    in
    let yes_acceptance = float_of_int hits /. float_of_int yes_samples in
    let r = make_runner ~machine ~fuel:e0.fuel ~canon:e0.canon in
    let outcome, skeleton_classes =
      if 2 * hits < yes_samples then (Contract_violated { yes_acceptance }, 0)
      else begin
        (* Merged census of the best trial: walk samples in index order
           and re-intern each one's class digest. [Skeleton.digest] is
           equal on equal skeletons and collision-free across distinct
           classes in every non-adversarial universe, so digest equality
           across shards is class identity, and first-seen order
           reproduces the unsharded table's dense ids (and its
           tie-breaks). *)
        let by_index = Hashtbl.create 64 in
        Array.iter
          (fun e ->
            Array.iter
              (fun (i, c) -> Hashtbl.replace by_index i e.classes.(c))
              e.accepted.(best_t))
          evs_arr;
        let ids = Hashtbl.create 16 in
        let info = ref [] in
        let next = ref 0 in
        let class_of = Array.make yes_samples (-1) in
        for i = 0 to yes_samples - 1 do
          match Hashtbl.find_opt by_index i with
          | None -> ()
          | Some c ->
              let id =
                match Hashtbl.find_opt ids c.digest with
                | Some id -> id
                | None ->
                    let id = !next in
                    Hashtbl.add ids c.digest id;
                    incr next;
                    info := c :: !info;
                    id
              in
              class_of.(i) <- id
        done;
        let skeleton_classes = !next in
        let class_info = Array.of_list (List.rev !info) in
        let counts = Array.make (max skeleton_classes 1) 0 in
        Array.iter
          (fun id -> if id >= 0 then counts.(id) <- counts.(id) + 1)
          class_of;
        let best_id = ref 0 in
        for id = 1 to skeleton_classes - 1 do
          if counts.(id) > counts.(!best_id) then best_id := id
        done;
        let zeta = class_info.(!best_id) in
        let best_id = !best_id in
        match zeta.uncompared with
        | [] ->
            ( Not_fooled
                {
                  reason = "every pair (i, m+phi(i)) is compared in the skeleton";
                  yes_acceptance;
                  skeleton_classes;
                },
              skeleton_classes )
        | i0 :: _ -> begin
            (* Steps 4-5: find v, w in the class differing only in the
               value at x-position i0 (hence also at y-position phi(i0)).
               First look for a sampled pair, then actively resample the
               i0 value. The instances are regenerated from the root
               seed — evidence carries verdicts, not inputs. *)
            let sample_arr = Array.init yes_samples (sample_at ~root space) in
            let inv = G.Checkphi.inv_phi space in
            let key_of inst =
              let buf = Buffer.create (16 * m) in
              let xs = I.xs inst in
              Array.iteri
                (fun idx x ->
                  if idx <> i0 - 1 then begin
                    Buffer.add_string buf (B.to_string x);
                    Buffer.add_char buf '#'
                  end)
                xs;
              Buffer.contents buf
            in
            let first_with = Hashtbl.create 16 in
            let sampled_pair = ref None in
            (try
               Array.iteri
                 (fun i id ->
                   if id = best_id then begin
                     let inst = sample_arr.(i) in
                     let key = key_of inst in
                     match Hashtbl.find_opt first_with key with
                     | Some a when not (B.equal (I.x a i0) (I.x inst i0)) ->
                         sampled_pair := Some (a, inst);
                         raise Exit
                     | Some _ -> ()
                     | None -> Hashtbl.add first_with key inst
                   end)
                 class_of
             with Exit -> ());
            let witness =
              let idx = ref (-1) in
              Array.iteri
                (fun i id -> if !idx < 0 && id = best_id then idx := i)
                class_of;
              sample_arr.(!idx)
            in
            let resampled_pair () =
              (* perturb the witness at position i0 within its interval
                 and keep variants whose run has skeleton ζ and accepts *)
              let intervals = G.Checkphi.intervals space in
              let rec try_ n =
                if n > e0.resample_tries then None
                else begin
                  let rng =
                    Parallel.Rng.state ~seed:root
                      ~index:
                        (resample_index ~yes_samples
                           ~choice_trials:e0.choice_trials n)
                  in
                  let fresh =
                    Problems.Intervals.random_element rng intervals
                      (P.apply phi i0)
                  in
                  if B.equal fresh (I.x witness i0) then try_ (n + 1)
                  else begin
                    let xs = I.xs witness in
                    xs.(i0 - 1) <- fresh;
                    let ys = Array.init m (fun j0 -> xs.(P.apply inv (j0 + 1) - 1)) in
                    let candidate = I.make xs ys in
                    let acc, sk = run_memo r ~seed candidate in
                    let same_class =
                      match sk with
                      | Some sk -> Int64.equal (Skeleton.digest sk) zeta.digest
                      | None -> false
                    in
                    if acc && same_class then Some (witness, candidate)
                    else try_ (n + 1)
                  end
                end
              in
              try_ 1
            in
            match
              (match !sampled_pair with
              | Some p -> Some p
              | None -> resampled_pair ())
            with
            | None ->
                ( Not_fooled
                    {
                      reason =
                        Printf.sprintf
                          "no same-skeleton pair differing only at i0=%d found"
                          i0;
                      yes_acceptance;
                      skeleton_classes;
                    },
                  skeleton_classes )
            | Some (v, w) -> begin
                (* Step 6 (Lemma 34): cross the halves. *)
                let u = I.make (I.xs v) (I.ys w) in
                let acc, _ = run_memo r ~seed u in
                if acc && not (G.Checkphi.is_yes space u) then
                  ( Fooled
                      {
                        input = u;
                        i0;
                        skeleton_classes;
                        yes_acceptance;
                        choice_seed = seed;
                      },
                    skeleton_classes )
                else
                  ( Not_fooled
                      {
                        reason =
                          (if acc then "composed input unexpectedly a yes-instance"
                           else "machine rejected the composed input");
                        yes_acceptance;
                        skeleton_classes;
                      },
                    skeleton_classes )
              end
          end
      end
    in
    let canonical_hits =
      List.fold_left (fun a e -> a + e.canonical_hits) r.r_canon_hits evs
    in
    let machine_runs =
      List.fold_left (fun a e -> a + e.machine_runs) r.r_runs evs
    in
    {
      outcome;
      fingerprint =
        fingerprint_of ~root ~m ~n:e0.n ~chosen_seed:seed ~hits
          ~samples:yes_samples ~classes:skeleton_classes outcome;
      chosen_seed = seed;
      hits;
      samples = yes_samples;
      classes = skeleton_classes;
      canonical_hits;
      machine_runs;
      shards_merged = k;
    }
end

let attack_census ?pool ?seed ?(canon = true) ?(intern = Skeleton.Intern.Ram) st
    ~space ~machine ?(yes_samples = 48) ?(choice_trials = 8)
    ?(resample_tries = 32) ?fuel () =
  let root =
    match seed with Some s -> s | None -> Parallel.Rng.seed_of_state st
  in
  let ev =
    Shard.collect ?pool ~canon ~intern ~root ~space ~machine ~yes_samples
      ~choice_trials ~resample_tries ?fuel ~shard:1 ~of_:1 ()
  in
  Shard.merge ~space ~machine [ ev ]

let attack ?pool ?seed ?canon ?intern st ~space ~machine ?yes_samples
    ?choice_trials ?resample_tries ?fuel () =
  (attack_census ?pool ?seed ?canon ?intern st ~space ~machine ?yes_samples
     ?choice_trials ?resample_tries ?fuel ())
    .outcome

let verify_fooled ~space ~machine outcome =
  match outcome with
  | Fooled f ->
      G.Checkphi.member space f.input
      && (not (G.Checkphi.is_yes space f.input))
      && (run_with ~fuel:(max 200_000 (2 * machine.Nlm.state_count)) machine
            ~seed:f.choice_seed f.input)
           .Nlm.vaccepted
  | Not_fooled _ | Contract_violated _ -> false
