module B = Util.Bitstring
module P = Util.Permutation
module I = Problems.Instance
module G = Problems.Generators
module Nlm = Listmachine.Nlm
module Skeleton = Listmachine.Skeleton

type outcome =
  | Fooled of {
      input : I.t;
      i0 : int;
      skeleton_classes : int;
      yes_acceptance : float;
      choice_seed : int;
    }
  | Not_fooled of {
      reason : string;
      yes_acceptance : float;
      skeleton_classes : int;
    }
  | Contract_violated of { yes_acceptance : float }

(* A deterministic pseudo-random choice function: the "fixed sequence c"
   of Lemma 26, regenerable from its seed (splitmix64-style mixing). *)
let choice_fn ~seed ~num_choices step =
  let z = ref (seed + (step * 0x9E3779B9) + 0x85EBCA6B) in
  z := (!z lxor (!z lsr 16)) * 0x45D9F3B;
  z := (!z lxor (!z lsr 16)) * 0x45D9F3B;
  z := !z lxor (!z lsr 16);
  (!z land max_int) mod num_choices

let values_of inst = Array.append (I.xs inst) (I.ys inst)

let run_with ~fuel machine ~seed inst =
  Nlm.run ~fuel machine ~values:(values_of inst)
    ~choices:(choice_fn ~seed ~num_choices:machine.Nlm.num_choices)

let attack ?pool st ~space ~machine ?(yes_samples = 48) ?(choice_trials = 8)
    ?(resample_tries = 32) ?(fuel = 200_000) () =
  let pool = match pool with Some p -> p | None -> Parallel.Pool.default () in
  let phi = G.Checkphi.phi space in
  let m = P.size phi in
  let samples = List.init yes_samples (fun _ -> G.Checkphi.yes st space) in
  let sample_arr = Array.of_list samples in
  (* Step 1 (Lemma 26): fix a choice sequence accepting many yeses.
     Replaying the machine on a sample is pure (the choice function is
     regenerated from the seed), so the sample sweeps fan out over the
     pool; folds stay in sample order, keeping the outcome independent
     of the worker count. *)
  let trials =
    if machine.Nlm.num_choices = 1 then [ 0 ]
    else List.init choice_trials (fun _ -> Random.State.full_int st max_int)
  in
  let score seed =
    Parallel.Pool.map pool
      (fun inst -> (run_with ~fuel machine ~seed inst).Nlm.accepted)
      sample_arr
    |> Array.fold_left (fun acc accepted -> if accepted then acc + 1 else acc) 0
  in
  let seed, hits =
    List.fold_left
      (fun (bs, bh) seed ->
        let h = score seed in
        if h > bh then (seed, h) else (bs, bh))
      (List.hd trials, score (List.hd trials))
      (List.tl trials)
  in
  let yes_acceptance = float_of_int hits /. float_of_int yes_samples in
  if 2 * hits < yes_samples then Contract_violated { yes_acceptance }
  else begin
    (* Step 2: skeleton census over the accepting runs (replays fan
       out; the census itself is folded in sample order). *)
    let census = Hashtbl.create 16 in
    Parallel.Pool.map pool
      (fun inst ->
        let tr = run_with ~fuel machine ~seed inst in
        if tr.Nlm.accepted then
          Some (Skeleton.serialize (Skeleton.of_trace tr), inst)
        else None)
      sample_arr
    |> Array.iter (function
         | None -> ()
         | Some (key, inst) ->
             let prev = Option.value ~default:[] (Hashtbl.find_opt census key) in
             Hashtbl.replace census key (inst :: prev));
    let skeleton_classes = Hashtbl.length census in
    let _, best_class =
      Hashtbl.fold
        (fun _ insts (bn, bi) ->
          let n = List.length insts in
          if n > bn then (n, insts) else (bn, bi))
        census (0, [])
    in
    let witness = List.hd best_class in
    let witness_trace = run_with ~fuel machine ~seed witness in
    let zeta = Skeleton.of_trace witness_trace in
    (* Step 3 (Claim 3): an uncompared pair index. *)
    match Skeleton.uncompared_phi_indices zeta ~m ~phi with
    | [] ->
        Not_fooled
          {
            reason = "every pair (i, m+phi(i)) is compared in the skeleton";
            yes_acceptance;
            skeleton_classes;
          }
    | i0 :: _ -> begin
        (* Steps 4-5: find v, w in the class differing only in the value
           at x-position i0 (hence also at y-position phi(i0)). First look
           for a sampled pair, then actively resample the i0 value. *)
        let key_of inst =
          String.concat "#"
            (List.filteri
               (fun idx _ -> idx <> i0 - 1)
               (Array.to_list (Array.map B.to_string (I.xs inst))))
        in
        let groups = Hashtbl.create 16 in
        List.iter
          (fun inst ->
            let k = key_of inst in
            let prev = Option.value ~default:[] (Hashtbl.find_opt groups k) in
            Hashtbl.replace groups k (inst :: prev))
          best_class;
        let sampled_pair =
          Hashtbl.fold
            (fun _ insts acc ->
              match acc with
              | Some _ -> acc
              | None -> (
                  match insts with
                  | a :: rest -> (
                      match
                        List.find_opt
                          (fun b -> not (B.equal (I.x a i0) (I.x b i0)))
                          rest
                      with
                      | Some b -> Some (a, b)
                      | None -> None)
                  | [] -> None))
            groups None
        in
        let resampled_pair () =
          (* perturb the witness at position i0 within its interval and
             keep variants whose run has skeleton ζ and accepts *)
          let intervals = G.Checkphi.intervals space in
          let inv = P.inverse phi in
          let rec try_ n =
            if n = 0 then None
            else begin
              let fresh =
                Problems.Intervals.random_element st intervals (P.apply phi i0)
              in
              if B.equal fresh (I.x witness i0) then try_ (n - 1)
              else begin
                let xs = I.xs witness in
                xs.(i0 - 1) <- fresh;
                let ys = Array.init m (fun j0 -> xs.(P.apply inv (j0 + 1) - 1)) in
                let candidate = I.make xs ys in
                let tr = run_with ~fuel machine ~seed candidate in
                if
                  tr.Nlm.accepted
                  && Skeleton.equal (Skeleton.of_trace tr) zeta
                then Some (witness, candidate)
                else try_ (n - 1)
              end
            end
          in
          try_ resample_tries
        in
        match
          (match sampled_pair with Some p -> Some p | None -> resampled_pair ())
        with
        | None ->
            Not_fooled
              {
                reason =
                  Printf.sprintf
                    "no same-skeleton pair differing only at i0=%d found" i0;
                yes_acceptance;
                skeleton_classes;
              }
        | Some (v, w) -> begin
            (* Step 6 (Lemma 34): cross the halves. *)
            let u = I.make (I.xs v) (I.ys w) in
            let tr = run_with ~fuel machine ~seed u in
            if tr.Nlm.accepted && not (G.Checkphi.is_yes space u) then
              Fooled
                {
                  input = u;
                  i0;
                  skeleton_classes;
                  yes_acceptance;
                  choice_seed = seed;
                }
            else
              Not_fooled
                {
                  reason =
                    (if tr.Nlm.accepted then
                       "composed input unexpectedly a yes-instance"
                     else "machine rejected the composed input");
                  yes_acceptance;
                  skeleton_classes;
                }
          end
      end
  end

let verify_fooled ~space ~machine outcome =
  match outcome with
  | Fooled f ->
      G.Checkphi.member space f.input
      && (not (G.Checkphi.is_yes space f.input))
      && (run_with ~fuel:200_000 machine ~seed:f.choice_seed f.input).Nlm.accepted
  | Not_fooled _ | Contract_violated _ -> false
