module Nlm = Listmachine.Nlm

type 'v fixed = {
  choices : int -> int;
  accepted : 'v array list;
  seed : int option;
}

let accepted_under ?pool machine ~fuel ~inputs choices =
  match pool with
  | None ->
      List.filter
        (fun values -> (Nlm.run ~fuel machine ~values ~choices).Nlm.accepted)
        inputs
  | Some pool ->
      (* runs are pure: fan out, then filter on the slot-indexed flags so
         the result is input-ordered regardless of worker count *)
      let arr = Array.of_list inputs in
      let flags =
        Parallel.Pool.map pool
          (fun values -> (Nlm.run ~fuel machine ~values ~choices).Nlm.accepted)
          arr
      in
      List.filteri (fun i _ -> flags.(i)) inputs

let exact_best ?(fuel = 100_000) ?(max_length = 12) machine ~inputs =
  let k = machine.Nlm.num_choices in
  (* observe the longest run under the all-zero sequence to size ℓ *)
  let ell =
    List.fold_left
      (fun acc values ->
        let tr = Nlm.run ~fuel machine ~values ~choices:(fun _ -> 0) in
        max acc (Array.length tr.Nlm.choices_used))
      1 inputs
  in
  let ell = min ell max_length in
  let total = float_of_int k ** float_of_int ell in
  if total > float_of_int (1 lsl 20) then
    invalid_arg "Lemma26.exact_best: |C|^l too large to enumerate";
  let best = ref None in
  let seq = Array.make ell 0 in
  let rec enumerate pos =
    if pos = ell then begin
      let arr = Array.copy seq in
      let choices step = if step < ell then arr.(step) else 0 in
      let acc = accepted_under machine ~fuel ~inputs choices in
      match !best with
      | Some (_, n) when n >= List.length acc -> ()
      | Some _ | None -> best := Some ((choices, acc), List.length acc)
    end
    else
      for c = 0 to k - 1 do
        seq.(pos) <- c;
        enumerate (pos + 1)
      done
  in
  enumerate 0;
  match !best with
  | Some ((choices, accepted), _) -> { choices; accepted; seed = None }
  | None -> assert false

let splitmix ~seed ~num_choices step =
  let z = ref (seed + (step * 0x9E3779B9) + 0x85EBCA6B) in
  z := (!z lxor (!z lsr 16)) * 0x45D9F3B;
  z := (!z lxor (!z lsr 16)) * 0x45D9F3B;
  z := !z lxor (!z lsr 16);
  (!z land max_int) mod num_choices

let sampled_best ?pool st ?(trials = 16) ?(fuel = 100_000) machine ~inputs =
  let trials = if machine.Nlm.num_choices = 1 then 1 else trials in
  let try_seed seed =
    let choices = splitmix ~seed ~num_choices:machine.Nlm.num_choices in
    (seed, choices, accepted_under ?pool machine ~fuel ~inputs choices)
  in
  let first = try_seed 0 in
  let best = ref first in
  for _ = 2 to trials do
    let seed = Random.State.full_int st max_int in
    let (_, _, acc_best) = !best in
    let (_, _, acc) as cand = try_seed seed in
    if List.length acc > List.length acc_best then best := cand
  done;
  let seed, choices, accepted = !best in
  { choices; accepted; seed = Some seed }

let meets_lemma_floor fixed ~inputs =
  2 * List.length fixed.accepted >= List.length inputs
