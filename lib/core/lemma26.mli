(** Lemma 26, executable: fixing a single choice sequence.

    The lemma: if [Pr(M accepts v) ≥ 1/2] for every [v] in a set [J],
    then some single choice sequence [c] makes the deterministic runs
    [ρ_M(·, c)] accept at least half of [J]. The proof is an averaging
    argument; this module realizes both sides:

    - {!exact_best} enumerates all of [C^ℓ] (for tiny machines) and
      returns the genuinely best sequence with its acceptance count —
      the test suite checks it meets the [|J|/2] floor whenever the
      hypothesis holds;
    - {!sampled_best} (what the adversary uses at scale) draws random
      seeds for a splitmix-derived sequence and keeps the best.

    Both treat a choice sequence as a function [step → choice] so
    unbounded run lengths need no materialized array. *)

type 'v fixed = {
  choices : int -> int;  (** the fixed sequence [c] *)
  accepted : 'v array list;  (** inputs of [J] whose run [ρ_M(·,c)] accepts *)
  seed : int option;  (** regeneration seed for sampled sequences *)
}

val exact_best :
  ?fuel:int -> ?max_length:int -> 'v Listmachine.Nlm.t -> inputs:'v array list ->
  'v fixed
(** Enumerate every [c ∈ C^ℓ] where [ℓ] is the longest run observed on
    the inputs (capped by [max_length], default 12 — the enumeration is
    [|C|^ℓ]). @raise Invalid_argument if [|C|^ℓ] exceeds 2^20. *)

val sampled_best :
  ?pool:Parallel.Pool.t ->
  Random.State.t -> ?trials:int -> ?fuel:int -> 'v Listmachine.Nlm.t ->
  inputs:'v array list -> 'v fixed
(** Try [trials] (default 16) random sequences, keep the best. For a
    deterministic machine a single trial is exact. When [pool] is given,
    each trial's input sweep fans out over it (runs are pure; the result
    is independent of the worker count). *)

val meets_lemma_floor : 'v fixed -> inputs:'v array list -> bool
(** Whether the fixed sequence accepts at least half of [inputs]. *)
