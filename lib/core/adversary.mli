(** The executable Lemma 21 adversary.

    Lemma 21 proves that {e no} small list machine solves CHECK-ϕ with
    one-sided error. The proof is constructive: given any machine that
    accepts at least half the yes-instances, it manufactures a
    {e fooling input} — a no-instance the machine accepts. This module
    runs exactly that pipeline (the numbered steps of Section 7)
    against a concrete machine:

    + fix a choice sequence [c] accepting many yes-instances
      (Lemma 26);
    + census the skeletons of the accepting runs; keep the most popular
      class [ζ] (proof step 5);
    + find an [i0] whose pair [(i0, m+ϕ(i0))] is never compared in [ζ]
      (Claim 3, via Lemma 38);
    + find two class members [v ≠ w] that differ only in the value at
      [i0] (proof steps 7–8; we both look within the sample and
      actively resample the [i0] value);
    + compose the halves (composition lemma, Lemma 34) into
      [u = (x-half of v, y-half of w)] and run the machine on it.

    The pipeline succeeds — exhibits a wrong accept — whenever the
    machine's comparison coverage leaves some ϕ-pair unobserved, which
    Lemma 38 forces in the sublogarithmic-reversal regime. On machines
    with full coverage (e.g. the complete staircase verifier) it
    reports soundness evidence instead.

    {2 Scaling levers}

    Three independent levers push the census to m=64/128, all keeping
    the verdict bit-identical to the naive pipeline:

    - {e canonical-form reduction} ({!canonicalize}): machine runs are
      memoized modulo the value-renaming symmetry the machines cannot
      observe, so each equivalence class of inputs is run once;
    - {e spill-able interning}: the census table can be backed by a
      {!Listmachine.Skeleton.Intern.backend.Spill} device, bounding RAM
      independent of the class count;
    - {e process-level sharding} ({!Shard}): the sample space splits by
      index residue into [k] shards whose evidence files fold back into
      the exact single-process verdict, with a mergeable fingerprint. *)

type outcome =
  | Fooled of {
      input : Problems.Instance.t;  (** a CHECK-ϕ {e no}-instance *)
      i0 : int;  (** the uncompared index used *)
      skeleton_classes : int;  (** census size under the fixed [c] *)
      yes_acceptance : float;  (** fraction of sampled yes accepted under [c] *)
      choice_seed : int;  (** seed regenerating the fixed choice sequence [c] *)
    }
  | Not_fooled of {
      reason : string;
      yes_acceptance : float;
      skeleton_classes : int;
    }
  | Contract_violated of {
      yes_acceptance : float;
          (** the machine is not a (1/2,0)-solver to begin with: it
              accepted fewer than half the sampled yes-instances under
              every tried choice sequence *)
    }

val canonical_key : Problems.Instance.t -> string
(** The dense rank pattern of the instance's [2m] values (ties
    included), rendered as a string — equal keys iff some value
    renaming consistent with [Bitstring.compare] maps one instance onto
    the other. The machines this module targets observe values only
    through equality tests and skeleton cells store positions, so runs
    on same-key instances have identical acceptance and skeletons. *)

val canonicalize : Problems.Instance.t -> Problems.Instance.t
(** The orbit representative: each value replaced by its dense rank,
    encoded in the minimal common width. Idempotent, and
    [canonical_key (canonicalize x) = canonical_key x]. The result
    generally leaves the CHECK-ϕ space — it is a {e run} surrogate, fed
    to the machine in place of the original, never a sample. *)

type census = {
  outcome : outcome;
  fingerprint : int64;
      (** FNV-1a 64 over a canonical rendering of the verdict + census
          summary; bit-identical across worker counts, intern backends,
          [~canon] on/off and shard partitionings *)
  chosen_seed : int;  (** the winning choice seed (Lemma 26) *)
  hits : int;  (** accepted yes-samples under [chosen_seed] *)
  samples : int;  (** total yes-samples drawn *)
  classes : int;  (** census size under [chosen_seed] *)
  canonical_hits : int;  (** machine runs saved by canonical memoization *)
  machine_runs : int;  (** machine runs actually executed *)
  shards_merged : int;  (** 1 for a direct {!attack_census} *)
}

(** Sharded censusing: [collect] runs the sample sweeps for one residue
    class of the sample indices and packages what the merge needs —
    per-trial accept verdicts with interned class ids, plus one
    structural digest per class ({!Listmachine.Skeleton.digest} is
    equal on equal skeletons and O(skeleton), so digests are the
    cross-process class identity). [merge] folds [k] such evidences
    into the exact verdict the unsharded pipeline computes: it replays
    the Lemma 26 seed selection and the census in global sample order,
    regenerates the sample instances from the root seed, and performs
    the resample/compose machine runs itself. *)
module Shard : sig
  type cls = {
    digest : int64;  (** [Skeleton.digest] of the class representative *)
    uncompared : int list;  (** its uncompared ϕ-indices (Claim 3) *)
  }

  type evidence = {
    root : int;
    m : int;
    n : int;
    machine_name : string;
    yes_samples : int;
    choice_trials : int;
    resample_tries : int;
    fuel : int;
    canon : bool;
    shard : int;  (** 1-based shard index *)
    shards : int;  (** total shard count [k] *)
    trial_seeds : int array;  (** the candidate choice seeds, in trial order *)
    accepted : (int * int) array array;
        (** per trial: [(sample index, class id)] for each accepted
            owned sample, in sample-index order *)
    classes : cls array;  (** indexed by the shard-local class id *)
    canonical_hits : int;
    machine_runs : int;
  }

  val to_string : evidence -> string
  (** A printable, versioned, line-oriented rendering (class digests
      as 16-digit hex); [of_string] inverts it exactly. *)

  val of_string : string -> evidence
  (** @raise Failure on malformed input. *)

  val fingerprint : evidence -> int64
  (** FNV-1a 64 of {!to_string} — the per-shard summary fingerprint. *)

  val collect :
    ?pool:Parallel.Pool.t ->
    ?canon:bool ->
    ?intern:Listmachine.Skeleton.Intern.backend ->
    root:int ->
    space:Problems.Generators.Checkphi.space ->
    machine:Util.Bitstring.t Listmachine.Nlm.t ->
    ?yes_samples:int ->
    ?choice_trials:int ->
    ?resample_tries:int ->
    ?fuel:int ->
    shard:int ->
    of_:int ->
    unit ->
    evidence
  (** Sweep the sample indices [i] with [i mod k = shard-1] (shards are
      1-based, [of_] is [k]) under every candidate choice seed. Each
      sample's draws are keyed on its global index, so sharding
      repartitions work without re-randomizing anything.
      @raise Invalid_argument unless [1 <= shard <= of_]. *)

  val merge :
    space:Problems.Generators.Checkphi.space ->
    machine:Util.Bitstring.t Listmachine.Nlm.t ->
    evidence list ->
    census
  (** Fold a complete shard set (any order) into the single-process
      verdict. [space]/[machine] must be the ones the shards ran
      against (checked against the evidence headers).
      @raise Failure on an incomplete, duplicated or inconsistent set.
      @raise Invalid_argument if [space]/[machine] mismatch the set. *)
end

val attack_census :
  ?pool:Parallel.Pool.t ->
  ?seed:int ->
  ?canon:bool ->
  ?intern:Listmachine.Skeleton.Intern.backend ->
  Random.State.t ->
  space:Problems.Generators.Checkphi.space ->
  machine:Util.Bitstring.t Listmachine.Nlm.t ->
  ?yes_samples:int ->
  ?choice_trials:int ->
  ?resample_tries:int ->
  ?fuel:int ->
  unit ->
  census
(** The full pipeline with its census summary:
    [Shard.merge] of a single [Shard.collect ~shard:1 ~of_:1] — the
    sharded and unsharded paths are literally the same code. *)

val attack :
  ?pool:Parallel.Pool.t ->
  ?seed:int ->
  ?canon:bool ->
  ?intern:Listmachine.Skeleton.Intern.backend ->
  Random.State.t ->
  space:Problems.Generators.Checkphi.space ->
  machine:Util.Bitstring.t Listmachine.Nlm.t ->
  ?yes_samples:int ->
  ?choice_trials:int ->
  ?resample_tries:int ->
  ?fuel:int ->
  unit ->
  outcome
(** Run the pipeline. [yes_samples] (default 48) yes-instances are
    drawn from the space; [choice_trials] (default 8) candidate choice
    sequences are tried (1 suffices for deterministic machines);
    [resample_tries] (default 32) bounds the active search in step 4.

    Determinism: every random draw (samples, candidate choice seeds,
    resampling) comes from a splitmix64 stream keyed on a root seed and
    a fixed stream index, so the outcome is a function of the root seed
    alone. The root is [seed] when given; otherwise one [full_int] is
    pulled from [st] — the only use of [st]. Machine replays (the merged
    Lemma 26 scoring / census sweep) are pure and fan out over [pool]
    (default {!Parallel.Pool.default}); results are folded in sample
    order, so the outcome is bit-identical for every worker count.

    [canon] (default [true]) memoizes machine runs modulo the
    value-renaming symmetry — sound for machines that observe input
    values only through equality tests (every machine in this tree;
    skeleton cells store positions, not values). Pass [~canon:false]
    for a machine that inspects value content. [intern] selects the
    census table backend (default RAM-resident). Neither changes any
    outcome bit.

    [fuel] defaults to [max 200_000 (2 * state_count)] — a scripted
    machine visits one state per step, so the budget always covers the
    script (the m = 128 staircase alone plans past 200k steps). *)

val verify_fooled : space:Problems.Generators.Checkphi.space ->
  machine:Util.Bitstring.t Listmachine.Nlm.t -> outcome -> bool
(** Independent re-validation of a [Fooled] outcome: the input really
    is a no-instance of CHECK-ϕ in the space, and some run of the
    machine accepts it (so [Pr(accept) > 0], contradicting the
    one-sided-error contract). [false] for other outcomes. *)
