(** The executable Lemma 21 adversary.

    Lemma 21 proves that {e no} small list machine solves CHECK-ϕ with
    one-sided error. The proof is constructive: given any machine that
    accepts at least half the yes-instances, it manufactures a
    {e fooling input} — a no-instance the machine accepts. This module
    runs exactly that pipeline (the numbered steps of Section 7)
    against a concrete machine:

    + fix a choice sequence [c] accepting many yes-instances
      (Lemma 26);
    + census the skeletons of the accepting runs; keep the most popular
      class [ζ] (proof step 5);
    + find an [i0] whose pair [(i0, m+ϕ(i0))] is never compared in [ζ]
      (Claim 3, via Lemma 38);
    + find two class members [v ≠ w] that differ only in the value at
      [i0] (proof steps 7–8; we both look within the sample and
      actively resample the [i0] value);
    + compose the halves (composition lemma, Lemma 34) into
      [u = (x-half of v, y-half of w)] and run the machine on it.

    The pipeline succeeds — exhibits a wrong accept — whenever the
    machine's comparison coverage leaves some ϕ-pair unobserved, which
    Lemma 38 forces in the sublogarithmic-reversal regime. On machines
    with full coverage (e.g. the complete staircase verifier) it
    reports soundness evidence instead. *)

type outcome =
  | Fooled of {
      input : Problems.Instance.t;  (** a CHECK-ϕ {e no}-instance *)
      i0 : int;  (** the uncompared index used *)
      skeleton_classes : int;  (** census size under the fixed [c] *)
      yes_acceptance : float;  (** fraction of sampled yes accepted under [c] *)
      choice_seed : int;  (** seed regenerating the fixed choice sequence [c] *)
    }
  | Not_fooled of {
      reason : string;
      yes_acceptance : float;
      skeleton_classes : int;
    }
  | Contract_violated of {
      yes_acceptance : float;
          (** the machine is not a (1/2,0)-solver to begin with: it
              accepted fewer than half the sampled yes-instances under
              every tried choice sequence *)
    }

val attack :
  ?pool:Parallel.Pool.t ->
  ?seed:int ->
  Random.State.t ->
  space:Problems.Generators.Checkphi.space ->
  machine:Util.Bitstring.t Listmachine.Nlm.t ->
  ?yes_samples:int ->
  ?choice_trials:int ->
  ?resample_tries:int ->
  ?fuel:int ->
  unit ->
  outcome
(** Run the pipeline. [yes_samples] (default 48) yes-instances are
    drawn from the space; [choice_trials] (default 8) candidate choice
    sequences are tried (1 suffices for deterministic machines);
    [resample_tries] (default 32) bounds the active search in step 4.

    Determinism: every random draw (samples, candidate choice seeds,
    resampling) comes from a splitmix64 stream keyed on a root seed and
    a fixed stream index, so the outcome is a function of the root seed
    alone. The root is [seed] when given; otherwise one [full_int] is
    pulled from [st] — the only use of [st]. Machine replays (the merged
    Lemma 26 scoring / census sweep) are pure and fan out over [pool]
    (default {!Parallel.Pool.default}); results are folded in sample
    order, so the outcome is bit-identical for every worker count. *)

val verify_fooled : space:Problems.Generators.Checkphi.space ->
  machine:Util.Bitstring.t Listmachine.Nlm.t -> outcome -> bool
(** Independent re-validation of a [Fooled] outcome: the input really
    is a no-instance of CHECK-ϕ in the space, and some run of the
    machine accepts it (so [Pr(accept) > 0], contradicting the
    one-sided-error contract). [false] for other outcomes. *)
