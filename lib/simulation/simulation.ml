module TM = Turing.Machine
module Nlm = Listmachine.Nlm

type result = {
  tm_stats : TM.run_stats;
  lm_trace : Nlm.trace;
  lm_reversals : int;
  tm_ext_reversals : int;
  crossings : int;
  agreement : bool;
}

(* Apply one movement vector to a list-machine configuration (the
   driven machine has a single non-final state). *)
let apply_movements ~lists ~input_length cfg movements =
  let machine =
    Nlm.make ~name:"sim-driver" ~lists ~input_length ~num_choices:1
      ~state_count:2 ~initial:0
      ~is_final:(fun s -> s >= 1)
      ~is_accepting:(fun _ -> false)
      ~alpha:(fun ~values:_ ~state:_ ~cells:_ ~choice:_ ->
        { Nlm.next_state = 0; movements })
  in
  Nlm.step machine
    ~values:(Array.make input_length "")
    cfg ~choice:0

let simulate ?(fuel = 1_000_000) tm ~inputs ~choices =
  if not (TM.is_normalized tm) then
    invalid_arg "Simulation.simulate: machine must be normalized";
  let m = Array.length inputs in
  if m < 1 then invalid_arg "Simulation.simulate: need at least one input";
  Array.iter
    (fun v ->
      if String.contains v '#' then
        invalid_arg "Simulation.simulate: inputs must not contain '#'")
    inputs;
  let w = String.concat "" (Array.to_list (Array.map (fun v -> v ^ "#") inputs)) in
  let t = tm.TM.ext in
  (* block partition of tape 0: segment i covers [start_i, start_i+len_i);
     the last block extends to infinity (the paper pads with blanks) *)
  let starts = Array.make m 0 in
  let () =
    let off = ref 0 in
    Array.iteri
      (fun i v ->
        starts.(i) <- !off;
        off := !off + String.length v + 1)
      inputs
  in
  let block_of_pos pos =
    let b = ref (m - 1) in
    for i = m - 1 downto 0 do
      if pos < starts.(i) then b := i - 1
    done;
    max 0 !b
  in
  (* list-machine side *)
  let lm_cfg =
    ref
      (Nlm.initial_config
         (Nlm.make ~name:"sim" ~lists:t ~input_length:m ~num_choices:1
            ~state_count:2 ~initial:0
            ~is_final:(fun s -> s >= 1)
            ~is_accepting:(fun _ -> false)
            ~alpha:(fun ~values:_ ~state:_ ~cells:_ ~choice:_ ->
              { Nlm.next_state = 0; movements = [||] })))
  in
  let block_cell_id = Array.init m (fun i -> !lm_cfg.Nlm.ids.(0).(i)) in
  let configs = ref [ !lm_cfg ] in
  let moves = ref [] in
  let lm_do movements =
    let c', mv = apply_movements ~lists:t ~input_length:m !lm_cfg movements in
    lm_cfg := c';
    configs := c' :: !configs;
    moves := mv :: !moves
  in
  let neutral () =
    Array.map (fun d -> { Nlm.dir = d; move = false }) !lm_cfg.Nlm.head_dir
  in
  let walk_to ~list:tau ~id ~dir =
    while !lm_cfg.Nlm.ids.(tau - 1).(!lm_cfg.Nlm.pos.(tau - 1) - 1) <> id do
      let mv = neutral () in
      mv.(tau - 1) <- { Nlm.dir; move = true };
      lm_do mv
    done
  in
  (* Turing-machine side, stepwise *)
  let crossings = ref 0 in
  let cur_block = ref 0 in
  let tmc = ref (TM.initial_config tm w) in
  let steps = ref 0 in
  let outcome = ref None in
  while !outcome = None do
    if TM.is_final tm !tmc then
      outcome :=
        Some (if TM.is_accepting tm !tmc then TM.Accepted else TM.Rejected)
    else if !steps >= fuel then outcome := Some TM.Out_of_fuel
    else begin
      match TM.enabled tm !tmc with
      | [] -> outcome := Some TM.Stuck
      | trs ->
          let k = List.length trs in
          let pick = ((choices !steps mod k) + k) mod k in
          let before = !tmc in
          tmc := TM.apply tm before (List.nth trs pick);
          incr steps;
          (* detect the (unique, by normalization) moved external head *)
          for h = 0 to t - 1 do
            let p0 = TM.head_position before h
            and p1 = TM.head_position !tmc h in
            if p0 <> p1 then begin
              let d1 = TM.head_direction !tmc h in
              if h = 0 then begin
                let b1 = block_of_pos p1 in
                if b1 <> !cur_block then begin
                  incr crossings;
                  walk_to ~list:1 ~id:block_cell_id.(b1)
                    ~dir:(if b1 > !cur_block then 1 else -1);
                  cur_block := b1
                end
                else if d1 <> TM.head_direction before h then begin
                  let mv = neutral () in
                  mv.(0) <- { Nlm.dir = d1; move = false };
                  lm_do mv
                end
              end
              else if d1 <> TM.head_direction before h then begin
                (* auxiliary tapes have a single block: only turns count *)
                let mv = neutral () in
                mv.(h) <- { Nlm.dir = d1; move = false };
                lm_do mv
              end
            end
          done
    end
  done;
  let tm_stats = TM.run ~fuel tm ~input:w ~choices in
  let lm_reversals = Array.fold_left ( + ) 0 !lm_cfg.Nlm.revs in
  let accepted = !outcome = Some TM.Accepted in
  let lm_trace =
    {
      Nlm.accepted;
      configs = Array.of_list (List.rev !configs);
      moves = Array.of_list (List.rev !moves);
      choices_used = Array.make (List.length !moves) 0;
      total_revs = lm_reversals;
    }
  in
  {
    tm_stats;
    lm_trace;
    lm_reversals;
    tm_ext_reversals = Array.fold_left ( + ) 0 tm_stats.TM.ext_reversals;
    crossings = !crossings;
    agreement = (tm_stats.TM.outcome = TM.Accepted) = accepted;
  }

let acceptance_agreement ?pool st ?(samples = 300) tm ~inputs =
  let pool = match pool with Some p -> p | None -> Parallel.Pool.default () in
  let root = Parallel.Rng.seed_of_state st in
  let hits =
    Parallel.Pool.monte_carlo pool ~trials:samples ~seed:root (fun st ->
        let seed = Random.State.full_int st max_int in
        let choices step =
          (* splitmix-style mixing so low bits are unbiased *)
          let z = ref (seed + (step * 0x9E3779B9) + 0x85EBCA6B) in
          z := (!z lxor (!z lsr 16)) * 0x45D9F3B;
          z := (!z lxor (!z lsr 16)) * 0x45D9F3B;
          (!z lxor (!z lsr 16)) land max_int
        in
        let r = simulate tm ~inputs ~choices in
        (r.tm_stats.TM.outcome = TM.Accepted, r.lm_trace.Nlm.accepted))
  in
  let count f = Array.fold_left (fun acc h -> if f h then acc + 1 else acc) 0 hits in
  ( float_of_int (count fst) /. float_of_int samples,
    float_of_int (count snd) /. float_of_int samples )

let abstract_state_bound_log2 ~d ~t ~r ~s ~m ~n =
  let nn = float_of_int (m * (n + 1)) in
  (float_of_int (d * t * t) *. float_of_int r *. float_of_int s)
  +. (3.0 *. float_of_int t *. (log nn /. log 2.0))

let choice_sequence_bound_log2 ~c ~r ~s ~t ~n =
  float_of_int n *. (2.0 ** float_of_int (c * r * (t + s)))
