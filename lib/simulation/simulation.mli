(** The simulation lemma (Lemma 16), executable: a Turing machine run
    drives a list machine run with the same acceptance behaviour.

    The construction maps each external TM tape to one list: the tape is
    partitioned into {e blocks} (initially, tape 1 into the [m] input
    segments [v_i#] and each auxiliary tape into a single block), and
    the list holds one cell per block. The list machine "acts" only when
    a TM head leaves its current block or changes direction — everything
    the TM does in between happens inside one list-machine step. Hence
    each list head turns at most as often as the corresponding TM head,
    and the list machine's reversal budget is bounded by the TM's.

    Two deliberate simplifications relative to the paper's proof, which
    do not affect what we verify:

    - the paper {e splits} blocks dynamically so that block contents can
      be reconstructed from the machine's (huge, finite) state space —
      making [|A|] finite is the point of the counting bound (2). We
      instead keep the TM configuration alongside the run and keep the
      initial partition static; the bound (2) is still computed
      numerically by {!abstract_state_bound_log2};
    - when junk cells spliced by Definition 24's forced writes land
      between block cells, the list head simply walks across them in the
      same direction — this lengthens the run but never adds reversals,
      so the resource comparison below is unaffected.

    What E7 verifies on top of this module: acceptance always agrees
    (per run, and as estimated probabilities for nondeterministic
    machines — Lemma 16's statement), and the list machine's reversals
    never exceed the TM's. *)

type result = {
  tm_stats : Turing.Machine.run_stats;
  lm_trace : Listmachine.Nlm.trace;
      (** a genuine Definition 24 run; values are the input segments *)
  lm_reversals : int;
  tm_ext_reversals : int;
  crossings : int;  (** block-boundary crossing events *)
  agreement : bool;  (** same acceptance on both sides *)
}

val simulate :
  ?fuel:int ->
  Turing.Machine.t ->
  inputs:string array ->
  choices:(int -> int) ->
  result
(** Run the TM on [v_1 # v_2 # … v_m #] (the [inputs] must not contain
    ['#']) and derive the simulating list-machine run.
    @raise Invalid_argument if the TM is not normalized (at most one
    head moving per step — Lemma 16 assumes it; use
    {!Turing.Machine.normalize}). *)

val acceptance_agreement :
  ?pool:Parallel.Pool.t ->
  Random.State.t ->
  ?samples:int ->
  Turing.Machine.t ->
  inputs:string array ->
  float * float
(** Estimated acceptance probabilities [(tm, lm)] over uniformly random
    choice sequences — equal in distribution by Lemma 16; the test
    suite checks they coincide within sampling error. Samples fan out
    over [pool] (default {!Parallel.Pool.default}) with seed-split
    generators, so the estimate is worker-count independent. *)

val abstract_state_bound_log2 :
  d:int -> t:int -> r:int -> s:int -> m:int -> n:int -> float
(** [log2] of bound (2) on the simulating machine's state count:
    [d·t²·r(m(n+1))·s(m(n+1)) + 3t·log2(m(n+1))]. *)

val choice_sequence_bound_log2 : c:int -> r:int -> s:int -> t:int -> n:int -> float
(** [log2 |C|] where [|C| ≤ 2^{O(ℓ(N))}] and [ℓ(N) = N·2^{c·r·(t+s)}]
    is the Lemma 3 run-length bound. *)
