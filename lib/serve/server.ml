(* The stlb/1 server. One select loop on the main domain owns all
   sockets and all response ordering; decide work — the only expensive
   part — fans out over a Parallel.Pool. Determinism contract: a
   verdict is a function of (cfg.seed, request id) alone, so neither
   the worker count nor the coalescing below can change any response
   byte (exp20 and test_serve pin this). *)

type config = {
  socket : string;
  seed : int;
  domains : int;
  device : Tape.Device.spec option;
  max_scans : int option;
  max_frame : int;
  max_batch : int;
  queue_bound : int;
  max_requests : int option;
}

let default ~socket =
  {
    socket;
    seed = 42;
    domains = 1;
    device = None;
    max_scans = None;
    max_frame = Frame.default_max_frame;
    max_batch = 64;
    queue_bound = 128;
    max_requests = None;
  }

(* ---------------------------------------------------------------- *)
(* request execution                                                 *)

type exec_result = {
  outcome : (Frame.verdict, Frame.error_code * string) result;
  obs : (Obs.Ledger.t * Obs.Audit.outcome) option;
      (* ledger + audit of the run, for --trace emission (main domain) *)
}

let plain v = { outcome = Ok v; obs = None }
let fail code msg = { outcome = Error (code, msg); obs = None }

(* One decide, seeded purely by (server seed, request id). Runs on a
   pool worker: no trace emission, no shared mutable state beyond the
   process atomics. *)
let exec cfg ~id (d : Frame.decide_body) : exec_result =
  match Problems.Instance.decode d.Frame.instance with
  | exception Invalid_argument m -> fail Frame.Malformed ("bad instance: " ^ m)
  | inst -> (
      let st = Parallel.Rng.request_state ~server_seed:cfg.seed ~request_id:id in
      let budget =
        Option.map
          (fun s -> { Tape.Group.max_scans = Some s; max_internal = None })
          cfg.max_scans
      in
      let r =
        Obs.Ledger.Recorder.create ~label:(Frame.algorithm_name d.Frame.algorithm) ()
      in
      let audited ~verdict ~scans ~internal ~tapes spec =
        let l = Obs.Ledger.Recorder.ledger ~n:(Problems.Instance.size inst) r in
        let o = Obs.Audit.check spec l in
        if o.Obs.Audit.ok then
          {
            outcome = Ok { Frame.verdict; audited = true; scans; internal; tapes };
            obs = Some (l, o);
          }
        else
          {
            outcome =
              Error
                ( Frame.Audit_failed,
                  Printf.sprintf "run exceeded the %s budget at N=%d"
                    o.Obs.Audit.spec_name o.Obs.Audit.n );
            obs = Some (l, o);
          }
      in
      let unaudited verdict =
        plain
          { Frame.verdict; audited = false; scans = 0; internal = 0; tapes = 0 }
      in
      try
        match (d.Frame.problem, d.Frame.algorithm) with
        | Frame.Core problem, Frame.Reference ->
            unaudited (Problems.Decide.decide problem inst)
        | Frame.Core problem, Frame.Sort ->
            let v, rep =
              Extsort.decide ?budget ?device:cfg.device ~obs:r problem inst
            in
            audited ~verdict:v ~scans:rep.Extsort.scans
              ~internal:rep.Extsort.register_peak ~tapes:rep.Extsort.tapes
              Obs.Audit.mergesort_spec
        | Frame.Core problem, Frame.Fingerprint ->
            if problem <> Problems.Decide.Multiset_equality then
              fail Frame.Malformed "fingerprint solves multiset-eq only"
            else
              let v, rep, _ = Fingerprint.run ?device:cfg.device ~obs:r st inst in
              audited ~verdict:v ~scans:rep.Fingerprint.scans
                ~internal:rep.Fingerprint.internal_bits ~tapes:rep.Fingerprint.tapes
                Obs.Audit.fingerprint_spec
        | Frame.Core problem, Frame.Nst -> (
            let v, rep = Nst.decide_with_prover ~obs:r problem inst in
            match rep with
            | Some rp ->
                audited ~verdict:v ~scans:rp.Nst.scans
                  ~internal:rp.Nst.internal_registers ~tapes:rp.Nst.tapes
                  Obs.Audit.nst_spec
            | None ->
                (* every branch rejects: nothing ran, nothing to audit *)
                unaudited v)
        (* Query-layer reductions: YES iff the two halves are equal as
           sets (relalg-symdiff, Theorem 11(b)) / iff some set1 string
           is missing from set2 (xpath-filter, Theorem 13). Only the
           reference and sort algorithms apply. *)
        | (Frame.Relalg_symdiff | Frame.Xpath_filter), (Frame.Fingerprint | Frame.Nst)
          ->
            fail Frame.Malformed
              (Frame.problem_name d.Frame.problem
              ^ " accepts only the reference and sort algorithms")
        | Frame.Relalg_symdiff, Frame.Reference ->
            let canon a =
              List.sort_uniq compare
                (Array.to_list (Array.map Util.Bitstring.to_string a))
            in
            unaudited
              (canon (Problems.Instance.xs inst)
              = canon (Problems.Instance.ys inst))
        | Frame.Relalg_symdiff, Frame.Sort ->
            let result, rep =
              Relalg.eval_streaming ?device:cfg.device
                ~observe:(Obs.Ledger.Recorder.observe r)
                (Relalg.instance_db inst)
                (Relalg.symmetric_difference "R1" "R2")
            in
            audited
              ~verdict:(result.Relalg.tuples = [])
              ~scans:rep.Relalg.scans ~internal:rep.Relalg.registers
              ~tapes:rep.Relalg.tapes Obs.Audit.relalg_symdiff_spec
        | Frame.Xpath_filter, Frame.Reference ->
            let mem a x = Array.exists (Util.Bitstring.equal x) a in
            unaudited
              (Array.exists
                 (fun x -> not (mem (Problems.Instance.ys inst) x))
                 (Problems.Instance.xs inst))
        | Frame.Xpath_filter, Frame.Sort ->
            let stream = Xmlq.Doc.serialize (Xmlq.Doc.of_instance inst) in
            let v, rep =
              Xmlq.Stream_filter.figure1_filter
                ~observe:(Obs.Ledger.Recorder.observe r)
                stream
            in
            audited ~verdict:v ~scans:rep.Xmlq.Stream_filter.scans
              ~internal:rep.Xmlq.Stream_filter.registers
              ~tapes:rep.Xmlq.Stream_filter.tapes Obs.Audit.xpath_filter_spec
      with
      | Tape.Budget_exceeded m -> fail Frame.Budget ("budget exceeded: " ^ m)
      | Faults.Retry.Gave_up { label; attempts; _ } ->
          fail Frame.Budget
            (Printf.sprintf "gave up after %d attempts in %s" attempts label)
      | e -> fail Frame.Internal (Printexc.to_string e))

(* ---------------------------------------------------------------- *)
(* server state                                                      *)

type conn = { fd : Unix.file_descr; mutable inbuf : string }

type stats = {
  mutable frames : int;
  mutable pings : int;
  mutable decides : int;
  mutable batch_frames : int;
  mutable batch_items : int;
  mutable stats_reqs : int;
  mutable health_reqs : int;
  mutable yes : int;
  mutable no : int;
  mutable shed : int;  (* OVERLOADED responses (queue or batch bound) *)
  mutable malformed : int;  (* broken frames answered with an error *)
  mutable audit_failures : int;
  mutable budget_errors : int;
  mutable internal_errors : int;
  mutable pooled_rounds : int;  (* decide groups coalesced onto the pool *)
  mutable bytes_in : int;
  mutable bytes_out : int;
  mutable max_queue : int;
}

let zero_stats () =
  {
    frames = 0;
    pings = 0;
    decides = 0;
    batch_frames = 0;
    batch_items = 0;
    stats_reqs = 0;
    health_reqs = 0;
    yes = 0;
    no = 0;
    shed = 0;
    malformed = 0;
    audit_failures = 0;
    budget_errors = 0;
    internal_errors = 0;
    pooled_rounds = 0;
    bytes_in = 0;
    bytes_out = 0;
    max_queue = 0;
  }

(* deterministic single-line JSON; field order is fixed by the caller *)
let json_of_fields fields =
  let b = Buffer.create 256 in
  let escape s =
    String.concat ""
      (List.map
         (fun c ->
           match c with
           | '"' -> "\\\""
           | '\\' -> "\\\\"
           | c when Char.code c < 0x20 -> Printf.sprintf "\\u%04x" (Char.code c)
           | c -> String.make 1 c)
         (List.init (String.length s) (String.get s)))
  in
  Buffer.add_char b '{';
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b (Printf.sprintf "\"%s\":" (escape k));
      match v with
      | `Int n -> Buffer.add_string b (string_of_int n)
      | `Str s -> Buffer.add_string b (Printf.sprintf "\"%s\"" (escape s))
      | `Raw s -> Buffer.add_string b s)
    fields;
  Buffer.add_char b '}';
  Buffer.contents b

let device_kind = function
  | None | Some Tape.Device.Mem -> "mem"
  | Some (Tape.Device.File _) -> "file"
  | Some (Tape.Device.Shard _) -> "shard"

let stats_json st ~since =
  let c = Obs.Counters.diff (Obs.Counters.snapshot ()) ~since in
  json_of_fields
    [
      ("frames", `Int st.frames);
      ("pings", `Int st.pings);
      ("decides", `Int st.decides);
      ("batch_frames", `Int st.batch_frames);
      ("batch_items", `Int st.batch_items);
      ("stats", `Int st.stats_reqs);
      ("health", `Int st.health_reqs);
      ("yes", `Int st.yes);
      ("no", `Int st.no);
      ("shed", `Int st.shed);
      ("malformed", `Int st.malformed);
      ("audit_failures", `Int st.audit_failures);
      ("budget_errors", `Int st.budget_errors);
      ("internal_errors", `Int st.internal_errors);
      ("pooled_rounds", `Int st.pooled_rounds);
      ("bytes_in", `Int st.bytes_in);
      ("bytes_out", `Int st.bytes_out);
      ("max_queue", `Int st.max_queue);
      ( "counters",
        `Raw
          (json_of_fields
             (List.map (fun (k, v) -> (k, `Int v)) (Obs.Counters.to_fields c)))
      );
    ]

let health_json cfg st ~stopping ~queue_depth ~pool =
  let h = Parallel.Pool.health pool in
  json_of_fields
    [
      ("status", `Str (if stopping then "stopping" else "ok"));
      ("protocol_version", `Int Frame.version);
      ("seed", `Int cfg.seed);
      ("domains", `Int cfg.domains);
      ("device", `Str (device_kind cfg.device));
      ("queue_bound", `Int cfg.queue_bound);
      ("max_batch", `Int cfg.max_batch);
      ("queue_depth", `Int queue_depth);
      ("frames", `Int st.frames);
      ("shed", `Int st.shed);
      ( "pool",
        `Raw
          (json_of_fields
             [
               ("chunks_retried", `Int h.Parallel.Pool.chunks_retried);
               ("deadline_overruns", `Int h.Parallel.Pool.deadline_overruns);
               ("degraded_spawns", `Int h.Parallel.Pool.degraded_spawns);
             ]) );
    ]

(* ---------------------------------------------------------------- *)
(* the serve loop                                                    *)

type pending = { pconn : conn; pmsg : Frame.msg }

let write_all st conn s =
  let b = Bytes.of_string s in
  let len = Bytes.length b in
  try
    let rec go off =
      if off < len then
        let n = Unix.write conn.fd b off (len - off) in
        go (off + n)
    in
    go 0;
    st.bytes_out <- st.bytes_out + len;
    true
  with Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) -> false

let respond st conn ~id response =
  ignore (write_all st conn (Frame.encode { Frame.id; payload = Response response }))

let run ?(on_ready = fun () -> ()) cfg =
  if cfg.domains < 1 then invalid_arg "Server.run: domains must be >= 1";
  (* writes to disconnected clients must raise EPIPE (handled in
     [write_all]), not kill the server with the default SIGPIPE *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  let pool = Parallel.Pool.create ~domains:cfg.domains () in
  let listen_fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try Unix.unlink cfg.socket with Unix.Unix_error _ -> ());
  Unix.bind listen_fd (Unix.ADDR_UNIX cfg.socket);
  Unix.listen listen_fd 16;
  on_ready ();
  let st = zero_stats () in
  let counters_at_start = Obs.Counters.snapshot () in
  let conns : conn list ref = ref [] in
  let queue : pending Queue.t = Queue.create () in
  let stopping = ref false in
  let close_conn c =
    conns := List.filter (fun c' -> c'.fd != c.fd) !conns;
    try Unix.close c.fd with Unix.Unix_error _ -> ()
  in
  let frame_seen () =
    st.frames <- st.frames + 1;
    match cfg.max_requests with
    | Some n when st.frames >= n -> stopping := true
    | _ -> ()
  in
  (* Pull every complete frame out of a connection's buffer. Broken
     frames are answered loudly; only an unrecoverable length prefix
     (consumed = 0) loses the connection. *)
  let ingest c =
    let rec go pos =
      match Frame.decode ~max_frame:cfg.max_frame c.inbuf ~pos with
      | Frame.Incomplete ->
          c.inbuf <- String.sub c.inbuf pos (String.length c.inbuf - pos)
      | Frame.Complete (msg, consumed) ->
          frame_seen ();
          if Queue.length queue >= cfg.queue_bound then begin
            st.shed <- st.shed + 1;
            respond st c ~id:msg.Frame.id
              (Frame.Error
                 {
                   code = Frame.Overloaded;
                   message =
                     Printf.sprintf "queue full (%d pending)" (Queue.length queue);
                 })
          end
          else begin
            Queue.add { pconn = c; pmsg = msg } queue;
            st.max_queue <- max st.max_queue (Queue.length queue)
          end;
          go (pos + consumed)
      | Frame.Broken { code; message; consumed } ->
          frame_seen ();
          st.malformed <- st.malformed + 1;
          let id = Option.value (Frame.peek_id c.inbuf ~pos) ~default:0 in
          respond st c ~id (Frame.Error { code; message });
          if consumed = 0 then begin
            c.inbuf <- "";
            close_conn c
          end
          else go (pos + consumed)
    in
    go 0
  in
  let read_some c =
    let chunk = Bytes.create 65536 in
    match Unix.read c.fd chunk 0 (Bytes.length chunk) with
    | 0 -> close_conn c
    | n ->
        st.bytes_in <- st.bytes_in + n;
        c.inbuf <- c.inbuf ^ Bytes.sub_string chunk 0 n;
        ingest c
    | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) ->
        close_conn c
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  in
  (* Process the drained queue: coalesce every queued decide item —
     singleton DECIDEs and BATCH items alike — into one pool round,
     then write responses in arrival order. *)
  let process_queue () =
    let entries = List.of_seq (Queue.to_seq queue) in
    Queue.clear queue;
    (* mod 2^62: masking with max_id (= 2^62 - 1) also clears the sign
       bit if base + i overflowed the native int *)
    let effective_id base i = (base + i) land Frame.max_id in
    let works = ref [] in
    List.iteri
      (fun ei p ->
        match p.pmsg.Frame.payload with
        | Frame.Request (Frame.Decide d) ->
            works := (ei, 0, p.pmsg.Frame.id, d) :: !works
        | Frame.Request (Frame.Batch items)
          when List.length items <= cfg.max_batch ->
            List.iteri
              (fun i d ->
                works := (ei, i, effective_id p.pmsg.Frame.id i, d) :: !works)
              items
        | _ -> ())
      entries;
    let works = Array.of_list (List.rev !works) in
    let run_one (_, _, id, d) = exec cfg ~id d in
    let results =
      if Array.length works > 1 && cfg.domains > 1 then begin
        st.pooled_rounds <- st.pooled_rounds + 1;
        Parallel.Pool.map pool run_one works
      end
      else Array.map run_one works
    in
    (* ledger/audit trace events: main domain, arrival order *)
    Array.iter
      (fun r ->
        match r.obs with
        | Some (l, o) ->
            Obs.Trace.ledger_current l;
            Obs.Trace.audit_current o
        | None -> ())
      results;
    let by_slot = Hashtbl.create 16 in
    Array.iteri
      (fun k (ei, i, _, _) -> Hashtbl.replace by_slot (ei, i) results.(k))
      works;
    let account r =
      match r.outcome with
      | Ok v ->
          if v.Frame.verdict then st.yes <- st.yes + 1 else st.no <- st.no + 1
      | Error (Frame.Audit_failed, _) -> st.audit_failures <- st.audit_failures + 1
      | Error (Frame.Budget, _) -> st.budget_errors <- st.budget_errors + 1
      | Error (Frame.Internal, _) -> st.internal_errors <- st.internal_errors + 1
      | Error _ -> ()
    in
    List.iteri
      (fun ei p ->
        let id = p.pmsg.Frame.id in
        let reply = respond st p.pconn ~id in
        match p.pmsg.Frame.payload with
        | Frame.Request Frame.Ping ->
            st.pings <- st.pings + 1;
            reply Frame.Pong
        | Frame.Request Frame.Stats ->
            st.stats_reqs <- st.stats_reqs + 1;
            reply (Frame.Stats_json (stats_json st ~since:counters_at_start))
        | Frame.Request Frame.Health ->
            st.health_reqs <- st.health_reqs + 1;
            reply
              (Frame.Health_json
                 (health_json cfg st ~stopping:!stopping
                    ~queue_depth:(Queue.length queue) ~pool))
        | Frame.Request Frame.Shutdown ->
            stopping := true;
            reply Frame.Bye
        | Frame.Request (Frame.Decide _) -> (
            st.decides <- st.decides + 1;
            let r = Hashtbl.find by_slot (ei, 0) in
            account r;
            match r.outcome with
            | Ok v -> reply (Frame.Verdict v)
            | Error (code, message) -> reply (Frame.Error { code; message }))
        | Frame.Request (Frame.Batch items) ->
            st.batch_frames <- st.batch_frames + 1;
            if List.length items > cfg.max_batch then begin
              st.shed <- st.shed + 1;
              reply
                (Frame.Error
                   {
                     code = Frame.Overloaded;
                     message =
                       Printf.sprintf "batch of %d exceeds max %d"
                         (List.length items) cfg.max_batch;
                   })
            end
            else begin
              st.batch_items <- st.batch_items + List.length items;
              let rs = List.mapi (fun i _ -> Hashtbl.find by_slot (ei, i)) items in
              List.iter account rs;
              match
                List.find_map
                  (fun (i, r) ->
                    match r.outcome with
                    | Error (code, m) ->
                        Some (code, Printf.sprintf "item %d: %s" i m)
                    | Ok _ -> None)
                  (List.mapi (fun i r -> (i, r)) rs)
              with
              | Some (code, message) -> reply (Frame.Error { code; message })
              | None ->
                  reply
                    (Frame.Batch_verdict
                       (List.map
                          (fun r ->
                            match r.outcome with
                            | Ok v -> v
                            | Error _ -> assert false)
                          rs))
            end
        | Frame.Response _ ->
            reply
              (Frame.Error
                 {
                   code = Frame.Bad_type;
                   message = "expected a request, got a response frame";
                 }))
      entries
  in
  let rec loop () =
    if !stopping && Queue.is_empty queue then ()
    else begin
      let fds = listen_fd :: List.map (fun c -> c.fd) !conns in
      (match Unix.select fds [] [] 0.5 with
      | readable, _, _ ->
          List.iter
            (fun fd ->
              if fd == listen_fd then begin
                let cfd, _ = Unix.accept listen_fd in
                conns := { fd = cfd; inbuf = "" } :: !conns
              end
              else
                match List.find_opt (fun c -> c.fd == fd) !conns with
                | Some c -> read_some c
                | None -> ())
            readable
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
      if not (Queue.is_empty queue) then process_queue ();
      loop ()
    end
  in
  Fun.protect
    ~finally:(fun () ->
      List.iter (fun c -> try Unix.close c.fd with Unix.Unix_error _ -> ()) !conns;
      (try Unix.close listen_fd with Unix.Unix_error _ -> ());
      try Unix.unlink cfg.socket with Unix.Unix_error _ -> ())
    loop
