(** The [stlb loadgen] workload driver: a deterministic mixed decider
    workload against a running [stlb serve], with throughput and
    latency percentiles measured client-side.

    Workload derivation is pure: request [id] carries the decider kind
    [id mod 4] — fingerprint / sort(CHECK-SORT) / sort(SET-EQ) / nst —
    and generates its instance (and its yes/no label coin) from
    [Parallel.Rng.state ~seed ~index:id]. Two loadgen runs with the
    same [(seed, first_id, requests, m, n)] therefore send byte-
    identical requests, and against servers sharing a [--seed] they
    must collect byte-identical verdicts — {!summary.fingerprint}
    condenses that into one comparable number (FNV-1a over the
    responses in id order), which is what E20 and the serve smoke
    diff across worker counts, devices and restarts. *)

type summary = {
  requests : int;  (** decide requests sent (batch items counted) *)
  frames : int;  (** frames sent ([requests / batch] rounded up) *)
  yes : int;
  no : int;
  errors : int;
  audited : int;  (** verdicts whose theorem-budget audit ran and passed *)
  fingerprint : int64;
      (** FNV-1a 64 over (verdict, audited) response bytes in id order
          (error responses fold their code byte) — the workload's
          deterministic signature *)
  wall_s : float;
  rps : float;  (** requests per second over the whole run *)
  p50_us : float;  (** median per-frame round-trip, microseconds *)
  p99_us : float;
}

val mixed_item : seed:int -> m:int -> n:int -> id:int -> Frame.decide_body
(** The deterministic workload function (exposed for tests and for
    PROTOCOL.md's worked examples). *)

val run :
  socket:string ->
  requests:int ->
  ?batch:int ->
  ?first_id:int ->
  ?m:int ->
  ?n:int ->
  seed:int ->
  unit ->
  summary
(** Drive [requests] decide requests with ids [first_id ..
    first_id+requests-1] (default [first_id = 0]), grouped into BATCH
    frames of [batch] (default 1 = singleton DECIDE frames), instances
    of [m] strings of [n] bits per half (defaults 6 and 8).
    @raise Invalid_argument if [requests < 1] or [batch < 1]. *)

val print_summary : summary -> unit
(** The loadgen report: deterministic lines (counts, fingerprint)
    first, then the timing line — scripts diff the former and read the
    latter. *)
