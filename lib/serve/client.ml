type t = { fd : Unix.file_descr; mutable inbuf : string }

(* a write to a peer-closed socket must surface as EPIPE, not kill the
   process with the default SIGPIPE disposition *)
let ignore_sigpipe =
  lazy
    (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
     with Invalid_argument _ -> ())

let connect ?(retries = 50) path =
  Lazy.force ignore_sigpipe;
  let rec go attempt =
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    match Unix.connect fd (Unix.ADDR_UNIX path) with
    | () -> { fd; inbuf = "" }
    | exception Unix.Unix_error ((Unix.ENOENT | Unix.ECONNREFUSED), _, _)
      when attempt < retries ->
        (try Unix.close fd with Unix.Unix_error _ -> ());
        Unix.sleepf 0.1;
        go (attempt + 1)
    | exception e ->
        (try Unix.close fd with Unix.Unix_error _ -> ());
        raise e
  in
  go 0

let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()

let send_raw t s =
  let b = Bytes.of_string s in
  let rec go off =
    if off < Bytes.length b then
      go (off + Unix.write t.fd b off (Bytes.length b - off))
  in
  go 0

let read_response t =
  let chunk = Bytes.create 65536 in
  let rec go () =
    match Frame.decode t.inbuf ~pos:0 with
    | Frame.Complete (msg, consumed) ->
        t.inbuf <- String.sub t.inbuf consumed (String.length t.inbuf - consumed);
        msg
    | Frame.Broken { message; _ } -> failwith ("undecodable response: " ^ message)
    | Frame.Incomplete -> (
        match Unix.read t.fd chunk 0 (Bytes.length chunk) with
        | 0 -> failwith "connection closed by server"
        | n ->
            t.inbuf <- t.inbuf ^ Bytes.sub_string chunk 0 n;
            go ())
  in
  go ()

let call t msg =
  send_raw t (Frame.encode msg);
  read_response t

let request t ~id r = call t { Frame.id; payload = Frame.Request r }

let ping t ~id =
  match request t ~id Frame.Ping with
  | { Frame.payload = Frame.Response Frame.Pong; id = rid } -> rid = id
  | _ -> false

let decide t ~id ~problem ~algorithm ~instance =
  match
    request t ~id (Frame.Decide { Frame.problem; algorithm; instance })
  with
  | { Frame.payload = Frame.Response (Frame.Verdict v); _ } -> Ok v
  | { Frame.payload = Frame.Response (Frame.Error { code; message }); _ } ->
      Error (code, message)
  | m -> failwith ("unexpected response: " ^ Frame.describe m)

let batch t ~id items =
  match request t ~id (Frame.Batch items) with
  | { Frame.payload = Frame.Response (Frame.Batch_verdict vs); _ } -> Ok vs
  | { Frame.payload = Frame.Response (Frame.Error { code; message }); _ } ->
      Error (code, message)
  | m -> failwith ("unexpected response: " ^ Frame.describe m)

let stats t ~id =
  match request t ~id Frame.Stats with
  | { Frame.payload = Frame.Response (Frame.Stats_json s); _ } -> s
  | m -> failwith ("unexpected response: " ^ Frame.describe m)

let health t ~id =
  match request t ~id Frame.Health with
  | { Frame.payload = Frame.Response (Frame.Health_json s); _ } -> s
  | m -> failwith ("unexpected response: " ^ Frame.describe m)

let shutdown t ~id =
  match request t ~id Frame.Shutdown with
  | { Frame.payload = Frame.Response Frame.Bye; _ } -> ()
  | m -> failwith ("unexpected response: " ^ Frame.describe m)
