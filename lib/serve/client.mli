(** A minimal synchronous client for the stlb/1 protocol — the library
    behind [stlb loadgen], the E20 harness and the serve tests.

    One request in flight at a time: {!call} writes a frame and blocks
    until the matching response (the server answers in per-connection
    order, and every response echoes the request id). *)

type t

val connect : ?retries:int -> string -> t
(** Connect to a Unix-domain socket, retrying [retries] times (default
    50) with a 0.1 s pause — covers the window between spawning a
    server and its [listen].
    @raise Unix.Unix_error when the last retry fails. *)

val close : t -> unit

val call : t -> Frame.msg -> Frame.msg
(** Send one request frame, read one response frame.
    @raise Failure on a closed connection or an undecodable response. *)

val send_raw : t -> string -> unit
(** Write raw bytes (fuzz tests: malformed frames on purpose). *)

val read_response : t -> Frame.msg
(** Read the next response frame (after {!send_raw}).
    @raise Failure on EOF. *)

val ping : t -> id:int -> bool
(** [true] iff the server answered PONG to this id. *)

val decide :
  t ->
  id:int ->
  problem:Frame.problem ->
  algorithm:Frame.algorithm ->
  instance:string ->
  (Frame.verdict, Frame.error_code * string) result

val batch :
  t ->
  id:int ->
  Frame.decide_body list ->
  (Frame.verdict list, Frame.error_code * string) result

val stats : t -> id:int -> string
(** The STATS JSON body. @raise Failure on an unexpected response. *)

val health : t -> id:int -> string

val shutdown : t -> id:int -> unit
(** SHUTDOWN; returns once the server's BYE arrives. *)
