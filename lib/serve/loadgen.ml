type summary = {
  requests : int;
  frames : int;
  yes : int;
  no : int;
  errors : int;
  audited : int;
  fingerprint : int64;
  wall_s : float;
  rps : float;
  p50_us : float;
  p99_us : float;
}

let mixed_item ~seed ~m ~n ~id : Frame.decide_body =
  let st = Parallel.Rng.state ~seed ~index:id in
  let problem, algorithm =
    match id mod 4 with
    | 0 -> (Problems.Decide.Multiset_equality, Frame.Fingerprint)
    | 1 -> (Problems.Decide.Check_sort, Frame.Sort)
    | 2 -> (Problems.Decide.Set_equality, Frame.Sort)
    | _ -> (Problems.Decide.Multiset_equality, Frame.Nst)
  in
  let yes = Random.State.bool st in
  let inst =
    if yes then Problems.Generators.yes_instance st problem ~m ~n
    else Problems.Generators.no_instance st problem ~m ~n
  in
  {
    Frame.problem = Frame.Core problem;
    algorithm;
    instance = Problems.Instance.encode inst;
  }

(* FNV-1a, 64-bit *)
let fnv_init = 0xcbf29ce484222325L
let fnv_prime = 0x100000001b3L

let fnv_byte h b =
  Int64.mul (Int64.logxor h (Int64.of_int (b land 0xFF))) fnv_prime

let percentile sorted q =
  let n = Array.length sorted in
  if n = 0 then 0.0
  else
    let rank = int_of_float (ceil (q *. float_of_int n)) in
    sorted.(max 0 (min (n - 1) (rank - 1)))

let run ~socket ~requests ?(batch = 1) ?(first_id = 0) ?(m = 6) ?(n = 8) ~seed ()
    =
  if requests < 1 then invalid_arg "Loadgen.run: requests must be >= 1";
  if batch < 1 then invalid_arg "Loadgen.run: batch must be >= 1";
  let c = Client.connect socket in
  Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
  let yes = ref 0
  and no = ref 0
  and errors = ref 0
  and audited = ref 0
  and frames = ref 0
  and fp = ref fnv_init in
  let latencies = ref [] in
  let fold_verdict (v : Frame.verdict) =
    if v.Frame.verdict then incr yes else incr no;
    if v.Frame.audited then incr audited;
    fp := fnv_byte !fp (if v.Frame.verdict then 1 else 0);
    fp := fnv_byte !fp (if v.Frame.audited then 1 else 0)
  in
  let fold_error code =
    incr errors;
    fp := fnv_byte !fp (0x80 lor Frame.error_code_byte code)
  in
  let t0 = Unix.gettimeofday () in
  let sent = ref 0 in
  while !sent < requests do
    let k = min batch (requests - !sent) in
    let head_id = first_id + !sent in
    let items =
      List.init k (fun i -> mixed_item ~seed ~m ~n ~id:(head_id + i))
    in
    incr frames;
    let f0 = Unix.gettimeofday () in
    (match (k, items) with
    | 1, [ item ] -> (
        match
          Client.decide c ~id:head_id ~problem:item.Frame.problem
            ~algorithm:item.Frame.algorithm ~instance:item.Frame.instance
        with
        | Ok v -> fold_verdict v
        | Error (code, _) -> fold_error code)
    | _ -> (
        match Client.batch c ~id:head_id items with
        | Ok vs -> List.iter fold_verdict vs
        | Error (code, _) ->
            (* the whole group is lost; fold the code once per item so
               the fingerprint still covers every id *)
            List.iter (fun _ -> fold_error code) items));
    latencies := (Unix.gettimeofday () -. f0) *. 1e6 :: !latencies;
    sent := !sent + k
  done;
  let wall_s = Unix.gettimeofday () -. t0 in
  let lat = Array.of_list !latencies in
  Array.sort compare lat;
  {
    requests;
    frames = !frames;
    yes = !yes;
    no = !no;
    errors = !errors;
    audited = !audited;
    fingerprint = !fp;
    wall_s;
    rps = (if wall_s > 0.0 then float_of_int requests /. wall_s else 0.0);
    p50_us = percentile lat 0.50;
    p99_us = percentile lat 0.99;
  }

let print_summary s =
  Printf.printf "loadgen: %d request(s) in %d frame(s)\n" s.requests s.frames;
  Printf.printf "verdicts: yes=%d no=%d errors=%d audited=%d\n" s.yes s.no
    s.errors s.audited;
  Printf.printf "workload fingerprint: 0x%016Lx\n" s.fingerprint;
  Printf.printf
    "throughput: %.1fr/s   latency p50=%.1fus p99=%.1fus   wall %.3fs\n" s.rps
    s.p50_us s.p99_us s.wall_s
