(** The stlb/1 wire codec — the length-prefixed binary protocol
    [stlb serve] speaks over its Unix socket.

    PROTOCOL.md is the {e normative} specification of this format
    (frame layout, request/response types, error codes, the
    seed-derivation rule and versioning); this module is the reference
    implementation, and the conformance test in [test/test_serve.ml]
    parses the hex-dump examples out of PROTOCOL.md and round-trips
    them through {!encode}/{!decode}, so the document cannot drift from
    this code.

    Shape recap (see PROTOCOL.md §2 for the byte-exact rules): a frame
    is a 4-byte big-endian payload length followed by the payload; the
    payload is a 1-byte protocol version ({!version}), a 1-byte message
    type, an 8-byte big-endian request id, and a type-specific body.
    Responses echo the id of the request they answer. *)

val version : int
(** The protocol version byte this implementation speaks: [0x01]. *)

val max_id : int
(** The largest valid request id, [2^62 - 1]: ids are unsigned and must
    be [< 2^62] so they survive the wire-[int64] → OCaml-[int]
    conversion and can key the splitmix64 seed derivation. On 64-bit
    OCaml this is [max_int]; larger wire values are rejected as
    malformed. *)

type algorithm = Reference | Sort | Fingerprint | Nst

(** The wire problem space (PROTOCOL.md §3): the three core decision
    problems plus two query-layer reductions — [Relalg_symdiff] (byte
    [0x04]) decides SET-EQUALITY by evaluating Theorem 11(b)'s
    [(R1−R2) ∪ (R2−R1)] through the streaming relational-algebra
    evaluator, and [Xpath_filter] (byte [0x05]) decides "is some
    [set1] string missing from [set2]?" by running Theorem 13's Figure
    1 XPath filter over the Section 4 instance document. All five take
    the same [{0,1,#}] instance encoding; the query problems accept
    only the [reference] and [sort] algorithms. *)
type problem =
  | Core of Problems.Decide.problem
  | Relalg_symdiff
  | Xpath_filter

type decide_body = {
  problem : problem;
  algorithm : algorithm;
  instance : string;  (** the [{0,1,#}] instance encoding, raw bytes *)
}

type verdict = {
  verdict : bool;
  audited : bool;
      (** [true] when the run's {!Obs.Audit} theorem-budget check ran
          and passed; [false] when no budget applies (reference runs,
          NST rejections). A {e failed} audit is never a verdict — it
          is an [Audit_failed] error response. *)
  scans : int;
  internal : int;  (** meter peak: bits (fingerprint) or registers *)
  tapes : int;
}

type error_code =
  | Bad_version
  | Bad_type
  | Malformed
  | Too_large
  | Overloaded
  | Budget
  | Audit_failed
  | Internal

type request =
  | Ping
  | Decide of decide_body
  | Batch of decide_body list
  | Stats
  | Health
  | Shutdown

type response =
  | Pong
  | Verdict of verdict
  | Batch_verdict of verdict list
  | Stats_json of string
  | Health_json of string
  | Bye
  | Error of { code : error_code; message : string }

type payload = Request of request | Response of response
type msg = { id : int; payload : payload }

val error_code_byte : error_code -> int
val error_code_name : error_code -> string

val encode : msg -> string
(** The full frame: length prefix and payload.
    @raise Invalid_argument on out-of-range ids, batch counts or body
    sizes — the codec never emits a frame it would not decode. *)

(** One attempt to decode a frame off the front of a byte buffer. *)
type decode_result =
  | Complete of msg * int
      (** a whole well-formed frame; [int] is the bytes consumed *)
  | Incomplete  (** a frame prefix — read more bytes and retry *)
  | Broken of { code : error_code; message : string; consumed : int }
      (** a whole frame arrived but does not parse. [consumed = 0]
          means framing itself is unrecoverable (oversized or absurd
          length prefix) and the connection must be closed; otherwise
          the broken frame can be skipped and the stream resynchronizes
          at the next length prefix. *)

val decode : ?max_frame:int -> string -> pos:int -> decode_result
(** Decode the frame starting at [pos]. [max_frame] bounds the payload
    length ({!default_max_frame} by default); a longer announced
    payload is [Broken] with [Too_large] and [consumed = 0]. *)

val default_max_frame : int
(** [1 lsl 20] — 1 MiB of payload. *)

val peek_id : string -> pos:int -> int option
(** Best-effort request id of the (possibly broken) frame at [pos], for
    addressing error responses; [None] if even the header is cut short
    or the id is out of range. *)

val describe : msg -> string
(** One-line canonical rendering, e.g.
    [{|request DECIDE id=7 problem=multiset-eq algorithm=fingerprint instance=01#10#01#10#|}].
    PROTOCOL.md's worked examples pair each hex dump with exactly this
    string, and the conformance test compares them verbatim. *)

val problem_byte : problem -> int
val problem_name : problem -> string
val algorithm_byte : algorithm -> int
val algorithm_name : algorithm -> string
