(* stlb/1 frame codec. PROTOCOL.md is the normative spec; keep the two
   in lockstep — the conformance test executes the document's hex
   examples against this code. *)

let version = 0x01

(* the id space is [0, 2^62): on 64-bit OCaml that is exactly the
   nonnegative native ints, so [max_id] is the largest VALID id (not an
   exclusive bound — 2^62 itself does not fit in a native int) *)
let max_id = max_int
let default_max_frame = 1 lsl 20

type algorithm = Reference | Sort | Fingerprint | Nst

(* The wire problem space: the three core decision problems plus the
   two query-layer reductions (Theorem 11(b)'s relational symmetric
   difference and Theorem 13's Figure 1 XPath filter). All five take
   the same {0,1,#} instance encoding. *)
type problem =
  | Core of Problems.Decide.problem
  | Relalg_symdiff
  | Xpath_filter

type decide_body = {
  problem : problem;
  algorithm : algorithm;
  instance : string;
}

type verdict = {
  verdict : bool;
  audited : bool;
  scans : int;
  internal : int;
  tapes : int;
}

type error_code =
  | Bad_version
  | Bad_type
  | Malformed
  | Too_large
  | Overloaded
  | Budget
  | Audit_failed
  | Internal

type request =
  | Ping
  | Decide of decide_body
  | Batch of decide_body list
  | Stats
  | Health
  | Shutdown

type response =
  | Pong
  | Verdict of verdict
  | Batch_verdict of verdict list
  | Stats_json of string
  | Health_json of string
  | Bye
  | Error of { code : error_code; message : string }

type payload = Request of request | Response of response
type msg = { id : int; payload : payload }

(* ---------------------------------------------------------------- *)
(* byte tags (PROTOCOL.md §3)                                        *)

let t_ping = 0x01
let t_decide = 0x02
let t_batch = 0x03
let t_stats = 0x04
let t_health = 0x05
let t_shutdown = 0x06
let t_pong = 0x81
let t_verdict = 0x82
let t_batch_verdict = 0x83
let t_stats_r = 0x84
let t_health_r = 0x85
let t_bye = 0x86
let t_error = 0xEE

let problem_byte = function
  | Core Problems.Decide.Set_equality -> 0x01
  | Core Problems.Decide.Multiset_equality -> 0x02
  | Core Problems.Decide.Check_sort -> 0x03
  | Relalg_symdiff -> 0x04
  | Xpath_filter -> 0x05

let problem_of_byte = function
  | 0x01 -> Some (Core Problems.Decide.Set_equality)
  | 0x02 -> Some (Core Problems.Decide.Multiset_equality)
  | 0x03 -> Some (Core Problems.Decide.Check_sort)
  | 0x04 -> Some Relalg_symdiff
  | 0x05 -> Some Xpath_filter
  | _ -> None

let problem_name = function
  | Core p -> Problems.Decide.problem_name p
  | Relalg_symdiff -> "RELALG-SYMDIFF"
  | Xpath_filter -> "XPATH-FILTER"

let algorithm_byte = function
  | Reference -> 0x01
  | Sort -> 0x02
  | Fingerprint -> 0x03
  | Nst -> 0x04

let algorithm_of_byte = function
  | 0x01 -> Some Reference
  | 0x02 -> Some Sort
  | 0x03 -> Some Fingerprint
  | 0x04 -> Some Nst
  | _ -> None

let algorithm_name = function
  | Reference -> "reference"
  | Sort -> "sort"
  | Fingerprint -> "fingerprint"
  | Nst -> "nst"

let error_code_byte = function
  | Bad_version -> 0x01
  | Bad_type -> 0x02
  | Malformed -> 0x03
  | Too_large -> 0x04
  | Overloaded -> 0x05
  | Budget -> 0x06
  | Audit_failed -> 0x07
  | Internal -> 0x08

let error_code_of_byte = function
  | 0x01 -> Some Bad_version
  | 0x02 -> Some Bad_type
  | 0x03 -> Some Malformed
  | 0x04 -> Some Too_large
  | 0x05 -> Some Overloaded
  | 0x06 -> Some Budget
  | 0x07 -> Some Audit_failed
  | 0x08 -> Some Internal
  | _ -> None

let error_code_name = function
  | Bad_version -> "BAD_VERSION"
  | Bad_type -> "BAD_TYPE"
  | Malformed -> "MALFORMED"
  | Too_large -> "TOO_LARGE"
  | Overloaded -> "OVERLOADED"
  | Budget -> "BUDGET"
  | Audit_failed -> "AUDIT_FAILED"
  | Internal -> "INTERNAL"

(* ---------------------------------------------------------------- *)
(* encoding                                                          *)

let add_u16 b v =
  if v < 0 || v > 0xFFFF then invalid_arg "Frame: u16 out of range";
  Buffer.add_char b (Char.chr ((v lsr 8) land 0xFF));
  Buffer.add_char b (Char.chr (v land 0xFF))

let add_u32 b v =
  if v < 0 || v > 0xFFFFFFFF then invalid_arg "Frame: u32 out of range";
  for i = 3 downto 0 do
    Buffer.add_char b (Char.chr ((v lsr (8 * i)) land 0xFF))
  done

let add_u64 b v =
  if v < 0 then invalid_arg "Frame: id out of range";
  let v64 = Int64.of_int v in
  for i = 7 downto 0 do
    Buffer.add_char b
      (Char.chr Int64.(to_int (logand (shift_right_logical v64 (8 * i)) 0xFFL)))
  done

let add_decide_body b (d : decide_body) =
  Buffer.add_char b (Char.chr (problem_byte d.problem));
  Buffer.add_char b (Char.chr (algorithm_byte d.algorithm));
  Buffer.add_string b d.instance

let add_verdict b (v : verdict) =
  Buffer.add_char b (if v.verdict then '\x01' else '\x00');
  Buffer.add_char b (if v.audited then '\x01' else '\x00');
  add_u32 b v.scans;
  add_u32 b v.internal;
  add_u32 b v.tapes

let with_len b f =
  (* 4-byte length prefix around a sub-encoding *)
  let mark = Buffer.length b in
  add_u32 b 0;
  f b;
  let len = Buffer.length b - mark - 4 in
  let bytes = Buffer.to_bytes b in
  for i = 3 downto 0 do
    Bytes.set bytes (mark + 3 - i) (Char.chr ((len lsr (8 * i)) land 0xFF))
  done;
  Buffer.clear b;
  Buffer.add_bytes b bytes

let encode ({ id; payload } : msg) : string =
  if id < 0 then invalid_arg "Frame.encode: id out of range";
  let ty, fill =
    match payload with
    | Request Ping -> (t_ping, fun _ -> ())
    | Request (Decide d) -> (t_decide, fun b -> add_decide_body b d)
    | Request (Batch items) ->
        ( t_batch,
          fun b ->
            add_u16 b (List.length items);
            List.iter (fun d -> with_len b (fun b -> add_decide_body b d)) items
        )
    | Request Stats -> (t_stats, fun _ -> ())
    | Request Health -> (t_health, fun _ -> ())
    | Request Shutdown -> (t_shutdown, fun _ -> ())
    | Response Pong -> (t_pong, fun _ -> ())
    | Response (Verdict v) -> (t_verdict, fun b -> add_verdict b v)
    | Response (Batch_verdict vs) ->
        ( t_batch_verdict,
          fun b ->
            add_u16 b (List.length vs);
            List.iter (fun v -> with_len b (fun b -> add_verdict b v)) vs )
    | Response (Stats_json s) -> (t_stats_r, fun b -> Buffer.add_string b s)
    | Response (Health_json s) -> (t_health_r, fun b -> Buffer.add_string b s)
    | Response Bye -> (t_bye, fun _ -> ())
    | Response (Error { code; message }) ->
        ( t_error,
          fun b ->
            Buffer.add_char b (Char.chr (error_code_byte code));
            Buffer.add_string b message )
  in
  let body = Buffer.create 64 in
  fill body;
  let payload_len = 10 + Buffer.length body in
  if payload_len > default_max_frame then
    invalid_arg "Frame.encode: payload over max frame size";
  let out = Buffer.create (4 + payload_len) in
  add_u32 out payload_len;
  Buffer.add_char out (Char.chr version);
  Buffer.add_char out (Char.chr ty);
  add_u64 out id;
  Buffer.add_buffer out body;
  Buffer.contents out

(* ---------------------------------------------------------------- *)
(* decoding                                                          *)

type decode_result =
  | Complete of msg * int
  | Incomplete
  | Broken of { code : error_code; message : string; consumed : int }

let u16_at s i = (Char.code s.[i] lsl 8) lor Char.code s.[i + 1]

let u32_at s i =
  (Char.code s.[i] lsl 24)
  lor (Char.code s.[i + 1] lsl 16)
  lor (Char.code s.[i + 2] lsl 8)
  lor Char.code s.[i + 3]

let u64_at s i =
  (* unsigned 64-bit read, [None] when the value needs bit 62 or above *)
  let v = ref 0L in
  for k = 0 to 7 do
    v := Int64.(logor (shift_left !v 8) (of_int (Char.code s.[i + k])))
  done;
  if Int64.compare !v 0L < 0 || Int64.compare !v (Int64.of_int max_id) > 0 then
    None
  else Some (Int64.to_int !v)

let peek_id buf ~pos =
  if String.length buf - pos < 4 + 10 then None else u64_at buf (pos + 6)

let decode_decide_body s off len : (decide_body, string) result =
  if len < 2 then Stdlib.Error "decide body shorter than 2 bytes"
  else
    match
      ( problem_of_byte (Char.code s.[off]),
        algorithm_of_byte (Char.code s.[off + 1]) )
    with
    | None, _ -> Stdlib.Error "unknown problem byte"
    | _, None -> Stdlib.Error "unknown algorithm byte"
    | Some problem, Some algorithm ->
        Ok { problem; algorithm; instance = String.sub s (off + 2) (len - 2) }

let decode_verdict s off len : (verdict, string) result =
  if len <> 14 then Stdlib.Error "verdict body must be 14 bytes"
  else
    match (Char.code s.[off], Char.code s.[off + 1]) with
    | ((0 | 1) as v), ((0 | 1) as a) ->
        Ok
          {
            verdict = v = 1;
            audited = a = 1;
            scans = u32_at s (off + 2);
            internal = u32_at s (off + 6);
            tapes = u32_at s (off + 10);
          }
    | _ -> Stdlib.Error "verdict flag bytes must be 0 or 1"

(* count-prefixed list of length-prefixed items *)
let decode_items s off len item =
  if len < 2 then Stdlib.Error "batch body shorter than 2 bytes"
  else begin
    let count = u16_at s off in
    let rec go acc k p =
      if k = count then
        if p = off + len then Ok (List.rev acc)
        else Stdlib.Error "trailing bytes after last batch item"
      else if off + len - p < 4 then Stdlib.Error "batch item length cut short"
      else
        let ilen = u32_at s p in
        if off + len - (p + 4) < ilen then
          Stdlib.Error "batch item body cut short"
        else
          match item s (p + 4) ilen with
          | Stdlib.Error _ as e -> e
          | Ok d -> go (d :: acc) (k + 1) (p + 4 + ilen)
    in
    go [] 0 (off + 2)
  end

let decode ?(max_frame = default_max_frame) buf ~pos =
  let avail = String.length buf - pos in
  if avail < 4 then Incomplete
  else begin
    let plen = u32_at buf pos in
    if plen > max_frame then
      Broken
        {
          code = Too_large;
          message = Printf.sprintf "payload of %d bytes exceeds limit %d" plen max_frame;
          consumed = 0;
        }
    else if plen < 10 then
      Broken
        {
          code = Malformed;
          message = "payload shorter than the 10-byte header";
          consumed = (if avail >= 4 + plen then 4 + plen else 0);
        }
    else if avail < 4 + plen then Incomplete
    else begin
      let consumed = 4 + plen in
      let broken code message = Broken { code; message; consumed } in
      let ver = Char.code buf.[pos + 4] in
      let ty = Char.code buf.[pos + 5] in
      if ver <> version then
        broken Bad_version (Printf.sprintf "version 0x%02x, expected 0x%02x" ver version)
      else
        match u64_at buf (pos + 6) with
        | None -> broken Malformed "request id uses bit 62 or above"
        | Some id -> (
            let off = pos + 14 in
            let blen = plen - 10 in
            let complete payload = Complete ({ id; payload }, consumed) in
            let empty payload what =
              if blen = 0 then complete payload
              else broken Malformed (what ^ " takes an empty body")
            in
            match ty with
            | t when t = t_ping -> empty (Request Ping) "PING"
            | t when t = t_stats -> empty (Request Stats) "STATS"
            | t when t = t_health -> empty (Request Health) "HEALTH"
            | t when t = t_shutdown -> empty (Request Shutdown) "SHUTDOWN"
            | t when t = t_pong -> empty (Response Pong) "PONG"
            | t when t = t_bye -> empty (Response Bye) "BYE"
            | t when t = t_decide -> (
                match decode_decide_body buf off blen with
                | Ok d -> complete (Request (Decide d))
                | Stdlib.Error m -> broken Malformed m)
            | t when t = t_batch -> (
                match decode_items buf off blen decode_decide_body with
                | Ok items -> complete (Request (Batch items))
                | Stdlib.Error m -> broken Malformed m)
            | t when t = t_verdict -> (
                match decode_verdict buf off blen with
                | Ok v -> complete (Response (Verdict v))
                | Stdlib.Error m -> broken Malformed m)
            | t when t = t_batch_verdict -> (
                match decode_items buf off blen decode_verdict with
                | Ok vs -> complete (Response (Batch_verdict vs))
                | Stdlib.Error m -> broken Malformed m)
            | t when t = t_stats_r ->
                complete (Response (Stats_json (String.sub buf off blen)))
            | t when t = t_health_r ->
                complete (Response (Health_json (String.sub buf off blen)))
            | t when t = t_error -> (
                if blen < 1 then broken Malformed "ERROR body needs a code byte"
                else
                  match error_code_of_byte (Char.code buf.[off]) with
                  | None -> broken Malformed "unknown error code byte"
                  | Some code ->
                      complete
                        (Response
                           (Error
                              {
                                code;
                                message = String.sub buf (off + 1) (blen - 1);
                              })))
            | t -> broken Bad_type (Printf.sprintf "unknown type byte 0x%02x" t))
    end
  end

(* ---------------------------------------------------------------- *)
(* canonical description (PROTOCOL.md worked examples)               *)

let describe ({ id; payload } : msg) =
  let verdict_str (v : verdict) =
    Printf.sprintf "verdict=%s audited=%b scans=%d internal=%d tapes=%d"
      (if v.verdict then "YES" else "NO")
      v.audited v.scans v.internal v.tapes
  in
  let decide_str (d : decide_body) =
    Printf.sprintf "problem=%s algorithm=%s instance=%s"
      (problem_name d.problem)
      (algorithm_name d.algorithm) d.instance
  in
  match payload with
  | Request Ping -> Printf.sprintf "request PING id=%d" id
  | Request (Decide d) -> Printf.sprintf "request DECIDE id=%d %s" id (decide_str d)
  | Request (Batch items) ->
      Printf.sprintf "request BATCH id=%d count=%d [%s]" id (List.length items)
        (String.concat "; " (List.map decide_str items))
  | Request Stats -> Printf.sprintf "request STATS id=%d" id
  | Request Health -> Printf.sprintf "request HEALTH id=%d" id
  | Request Shutdown -> Printf.sprintf "request SHUTDOWN id=%d" id
  | Response Pong -> Printf.sprintf "response PONG id=%d" id
  | Response (Verdict v) ->
      Printf.sprintf "response VERDICT id=%d %s" id (verdict_str v)
  | Response (Batch_verdict vs) ->
      Printf.sprintf "response BATCH_VERDICT id=%d count=%d [%s]" id
        (List.length vs)
        (String.concat "; " (List.map verdict_str vs))
  | Response (Stats_json s) -> Printf.sprintf "response STATS id=%d json=%s" id s
  | Response (Health_json s) ->
      Printf.sprintf "response HEALTH id=%d json=%s" id s
  | Response Bye -> Printf.sprintf "response BYE id=%d" id
  | Response (Error { code; message }) ->
      Printf.sprintf "response ERROR id=%d code=%s message=%s" id
        (error_code_name code) message
