(** [stlb serve] — the deciders as a long-running service.

    A single-process server on a stdlib Unix-domain socket speaking the
    stlb/1 frame protocol ({!Frame}, PROTOCOL.md). Connections are
    multiplexed with [Unix.select] on the main domain; decide work is
    fanned out over a {!Parallel.Pool}, and every verdict depends only
    on the pair (server seed, request id) — never on the worker count,
    the batching, the arrival order or the device backend — so a run is
    replayable by restarting the server with the same [--seed] and
    re-sending the same ids.

    Per-request determinism: request [id] draws its randomness from
    [Parallel.Rng.request_state ~server_seed ~request_id:id], the same
    splitmix64 derivation the Monte Carlo pool uses for chunk seeds
    (PROTOCOL.md §5 spells out the exact arithmetic). Batch item [i] of
    a BATCH frame with id [R] behaves exactly like a singleton DECIDE
    with id [R + i], which is what makes server-side coalescing and
    client-side batching invisible to the results.

    Backpressure: parsed requests go through a bounded queue; when the
    queue is full the server {e sheds} the frame with an [OVERLOADED]
    error response instead of stalling the read loop, and oversized or
    malformed frames are answered with loud errors (the connection is
    closed only when framing itself is unrecoverable). Every response
    to a decide runs under its theorem-budget audit ({!Obs.Audit}); a
    run that exceeds its budget is reported as an [AUDIT_FAILED] error,
    never as a silent verdict. *)

type config = {
  socket : string;  (** Unix-domain socket path (stale paths are taken over) *)
  seed : int;  (** root of the per-request seed derivation *)
  domains : int;  (** pool workers for decide fan-out ([>= 1]) *)
  device : Tape.Device.spec option;
      (** tape backend for sort/fingerprint runs; [None] = in-RAM *)
  max_scans : int option;
      (** optional hard scan budget on the sort decider (as
          [stlb decide --max-scans]); trips report a [BUDGET] error *)
  max_frame : int;  (** payload byte bound; above it the frame is shed *)
  max_batch : int;  (** decide items accepted per BATCH frame *)
  queue_bound : int;  (** pending-request bound before shedding *)
  max_requests : int option;
      (** stop serving after this many frames — the smoke-test and
          load-test safety net; [None] runs until SHUTDOWN *)
}

val default : socket:string -> config
(** seed 42, 1 domain, mem device, no scan budget, 1 MiB frames,
    batches of up to 64, a queue bound of 128, no request limit. *)

val run : ?on_ready:(unit -> unit) -> config -> unit
(** Bind, listen and serve until a SHUTDOWN frame (or [max_requests]).
    [on_ready] fires once the socket is listening — in-process harnesses
    use it to know when to connect. Blocks the calling domain. With an
    {!Obs.Trace} sink installed, every audited decide emits its ledger
    and audit events (main domain, request-id order — deterministic for
    any worker count). *)
