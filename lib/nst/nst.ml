module I = Problems.Instance
module B = Util.Bitstring
module D = Problems.Decide

type entry = { efst : int; esnd : int; evalue : string }

type certificate = {
  kind : [ `Perm | `Funs ];
  copies : entry array array;  (* 2m copies, each of 2m entries *)
}

type cell = Blank | Val of string | Ent of entry

(* ------------------------------------------------------------------ *)
(* Prover                                                              *)

let sorted_indices half =
  let m = Array.length half in
  let idx = Array.init m (fun i -> i + 1) in
  Array.sort (fun a b -> B.compare half.(a - 1) half.(b - 1)) idx;
  idx

let perm_witness inst =
  (* π with v_i = v'_π(i), if the halves are multiset-equal *)
  let xs = I.xs inst and ys = I.ys inst in
  let m = Array.length xs in
  let xi = sorted_indices xs and yi = sorted_indices ys in
  let pi = Array.make m 0 in
  let ok = ref true in
  for k = 0 to m - 1 do
    if not (B.equal xs.(xi.(k) - 1) ys.(yi.(k) - 1)) then ok := false;
    pi.(xi.(k) - 1) <- yi.(k)
  done;
  if !ok then Some pi else None

let table_of_perm inst pi =
  let m = I.m inst in
  Array.init (2 * m) (fun e0 ->
      if e0 < m then
        { efst = e0 + 1; esnd = pi.(e0); evalue = B.to_string (I.x inst (e0 + 1)) }
      else begin
        let j = e0 - m + 1 in
        (* second-half entry m+j carries (g(j), j, v'_j); for a
           permutation witness g = π⁻¹ *)
        let g = ref 0 in
        Array.iteri (fun i0 target -> if target = j then g := i0 + 1) pi;
        { efst = !g; esnd = j; evalue = B.to_string (I.y inst j) }
      end)

let funs_witness inst =
  let xs = I.xs inst and ys = I.ys inst in
  let m = Array.length xs in
  let find half v =
    let r = ref 0 in
    Array.iteri (fun i0 w -> if !r = 0 && B.equal w v then r := i0 + 1) half;
    if !r = 0 then None else Some !r
  in
  let f = Array.make m 0 and g = Array.make m 0 in
  let ok = ref true in
  for i0 = 0 to m - 1 do
    (match find ys xs.(i0) with Some j -> f.(i0) <- j | None -> ok := false);
    match find xs ys.(i0) with Some i -> g.(i0) <- i | None -> ok := false
  done;
  if !ok then Some (f, g) else None

let table_of_funs inst f g =
  let m = I.m inst in
  Array.init (2 * m) (fun e0 ->
      if e0 < m then
        { efst = e0 + 1; esnd = f.(e0); evalue = B.to_string (I.x inst (e0 + 1)) }
      else begin
        let j = e0 - m + 1 in
        { efst = g.(j - 1); esnd = j; evalue = B.to_string (I.y inst j) }
      end)

let replicate_table m table =
  { kind = `Perm; copies = Array.init (max 1 (2 * m)) (fun _ -> Array.copy table) }

let prove problem inst =
  let m = I.m inst in
  match problem with
  | D.Multiset_equality ->
      Option.map (fun pi -> replicate_table m (table_of_perm inst pi)) (perm_witness inst)
  | D.Check_sort ->
      if D.check_sort inst then
        Option.map
          (fun pi -> replicate_table m (table_of_perm inst pi))
          (perm_witness inst)
      else None
  | D.Set_equality ->
      Option.map
        (fun (f, g) ->
          { kind = `Funs; copies = Array.init (max 1 (2 * m)) (fun _ -> table_of_funs inst f g) })
        (funs_witness inst)

(* ------------------------------------------------------------------ *)
(* Corruption (for soundness tests)                                    *)

type corruption = Swap_pi | Wrong_value | Duplicate_target

let corrupt st corruption cert =
  let copies = Array.map Array.copy cert.copies in
  let ncopies = Array.length copies in
  let width = Array.length copies.(0) in
  let m = width / 2 in
  if m < 2 then invalid_arg "Nst.corrupt: need m >= 2";
  (match corruption with
  | Swap_pi ->
      (* desynchronize one copy: swap two first-half entries there *)
      let l = Random.State.int st ncopies in
      let a = Random.State.int st m in
      let b = (a + 1 + Random.State.int st (m - 1)) mod m in
      let tmp = copies.(l).(a) in
      copies.(l).(a) <- copies.(l).(b);
      copies.(l).(b) <- tmp
  | Wrong_value ->
      (* flip a claimed value consistently in every copy *)
      let a = Random.State.int st m in
      let flip e =
        let v = Bytes.of_string e.evalue in
        if Bytes.length v = 0 then { e with evalue = "0" }
        else begin
          let b = Random.State.int st (Bytes.length v) in
          Bytes.set v b (if Bytes.get v b = '0' then '1' else '0');
          { e with evalue = Bytes.to_string v }
        end
      in
      let corrupted = flip copies.(0).(a) in
      Array.iter (fun copy -> copy.(a) <- corrupted) copies
  | Duplicate_target ->
      (* π maps two sources to the same target, consistently *)
      let a = Random.State.int st m in
      let b = (a + 1 + Random.State.int st (m - 1)) mod m in
      Array.iter
        (fun copy -> copy.(a) <- { copy.(a) with esnd = copy.(b).esnd })
        copies);
  { cert with copies }

(* ------------------------------------------------------------------ *)
(* Verifier                                                            *)

type report = { scans : int; internal_registers : int; tapes : int }

let seek tp target =
  while Tape.position tp < target do
    Tape.move tp Tape.Right
  done;
  while Tape.position tp > target do
    Tape.move tp Tape.Left
  done

let verify ?obs problem inst cert =
  let m = I.m inst in
  let g = Tape.Group.create () in
  (match obs with None -> () | Some r -> Obs.Ledger.Recorder.observe r g);
  let meter = Tape.Group.meter g in
  let flat = Array.to_list (Array.concat (Array.to_list cert.copies)) in
  let inputs =
    List.map (fun v -> Val (B.to_string v))
      (Array.to_list (I.xs inst) @ Array.to_list (I.ys inst))
  in
  let t1 =
    Tape.Group.tape_of_list g ~name:"input+copies" ~blank:Blank
      (inputs @ List.map (fun e -> Ent e) flat)
  in
  let t2 =
    Tape.Group.tape_of_list g ~name:"guess" ~blank:Blank
      (List.map (fun e -> Ent e) flat)
  in
  let perm_kind = cert.kind = `Perm in
  let ok = ref (Array.length cert.copies = max 1 (2 * m)) in
  Array.iter (fun copy -> if Array.length copy <> 2 * m then ok := false) cert.copies;
  if m > 0 && !ok then
    Tape.Meter.with_units meter 8 (fun () ->
        let read_val tp =
          match Tape.read tp with
          | Val v -> v
          | Ent _ | Blank -> ok := false; ""
        in
        let read_ent tp =
          match Tape.read tp with
          | Ent e -> e
          | Val _ | Blank ->
              ok := false;
              { efst = 0; esnd = 0; evalue = "" }
        in
        (* ---- forward scan: local checks, copy l against input l ---- *)
        let prev = ref "" in
        for l = 1 to 2 * m do
          let v = read_val t1 in
          if problem = D.Check_sort && l > m + 1 && String.compare !prev v > 0
          then ok := false;
          if l > m then prev := v;
          let count = ref 0 in
          for e = 1 to 2 * m do
            let ent = read_ent t2 in
            if e <= m then begin
              if ent.efst <> e then ok := false;
              if l <= m && e = l && not (String.equal ent.evalue v) then
                ok := false;
              if l > m && ent.esnd = l - m then begin
                incr count;
                if not (String.equal ent.evalue v) then ok := false
              end
            end
            else begin
              if ent.esnd <> e - m then ok := false;
              if l <= m && ent.efst = l && not (String.equal ent.evalue v) then
                ok := false;
              if l > m && e = m + (l - m) && not (String.equal ent.evalue v) then
                ok := false
            end;
            Tape.move t2 Tape.Right
          done;
          if l > m && perm_kind && !count <> 1 then ok := false;
          Tape.move t1 Tape.Right
        done;
        (* ---- skip t1 forward over its copy region ---- *)
        let copies_cells = 2 * m * 2 * m in
        seek t1 ((2 * m) + copies_cells - 1);
        (* ---- backward scan: copy l on t1 vs copy l-1 on t2 ---- *)
        seek t2 (copies_cells - (2 * m) - 1);
        for _ = 1 to copies_cells - (2 * m) do
          let a = read_ent t1 and b = read_ent t2 in
          if a <> b then ok := false;
          if not (Tape.at_left_end t1) then Tape.move t1 Tape.Left;
          if not (Tape.at_left_end t2) then Tape.move t2 Tape.Left
        done);
  let grp = Tape.Group.report g in
  ( !ok,
    {
      scans = grp.Tape.Group.scans_used;
      internal_registers = grp.Tape.Group.internal_peak_units;
      tapes = List.length grp.Tape.Group.reversals_by_tape;
    } )

let decide_with_prover ?obs problem inst =
  match prove problem inst with
  | None -> (false, None)
  | Some cert ->
      let ok, rep = verify ?obs problem inst cert in
      (ok, Some rep)
