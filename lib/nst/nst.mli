(** Nondeterministic upper bounds (Theorem 8(b)):
    [SET-EQUALITY, MULTISET-EQUALITY, CHECK-SORT ∈ NST(3, O(log N), 2)].

    The paper's machine {e guesses} a permutation [π] with
    [v_i = v'_π(i)] together with many copies of the annotated input,
    then verifies every copy locally: copy [l] certifies one comparison,
    and a final backward scan checks each copy equals its predecessor
    (with the two external tapes offset by one copy), which makes all
    local certifications consistent. We reproduce this at cell
    granularity: a {e prover} constructs the copy stream from a witness
    permutation; the {e verifier} is a resource-metered two-tape checker
    — one forward scan interleaving guess-writing with the local
    checks, one backward scan for copy consistency — so its measured
    resources are within the [NST(3, O(log N), 2)] envelope. Soundness
    is exercised in the test suite by corrupting certificates.

    Certificate layout (tape 2, and replicated after the input on
    tape 1): [2m] copies of the table
    [(1, π(1), w_1) … (m, π(m), w_m)] where [w_i] is the claimed value
    of [v_i]. During the forward scan, copy [i ≤ m] is checked against
    [v_i] under the input head ([w_i = v_i], first components
    ascending), and copy [m+j] against [v'_j] (the unique entry with
    second component [j] satisfies [w = v'_j]). For CHECK-SORT the
    second half additionally verifies [v'_{j-1} ≤ v'_j]; for
    SET-EQUALITY two function tables (one per direction) replace the
    permutation table and the uniqueness requirement is dropped. *)

type certificate
(** An opaque witness (permutation / function tables). *)

val prove : Problems.Decide.problem -> Problems.Instance.t -> certificate option
(** The honest prover: a witness if the instance is a yes-instance,
    [None] otherwise. *)

type corruption =
  | Swap_pi  (** make the permutation table inconsistent between copies *)
  | Wrong_value  (** claim a wrong [w_i] *)
  | Duplicate_target  (** break injectivity of [π] *)

val corrupt : Random.State.t -> corruption -> certificate -> certificate
(** A wrong certificate for soundness tests. Requires [m ≥ 2]. *)

type report = {
  scans : int;
  internal_registers : int;  (** O(1) cell registers + counters *)
  tapes : int;  (** 2 *)
}

val verify :
  ?obs:Obs.Ledger.Recorder.t ->
  Problems.Decide.problem -> Problems.Instance.t -> certificate -> bool * report
(** The metered verifier. Accepts iff the certificate is a valid
    witness for the instance. [?obs] registers the verifier's tape
    group with a ledger recorder for theorem-budget auditing. *)

val decide_with_prover :
  ?obs:Obs.Ledger.Recorder.t ->
  Problems.Decide.problem -> Problems.Instance.t -> bool * report option
(** [prove] then [verify] — the behaviour of the nondeterministic
    machine on its accepting branch (report is [None] when no witness
    exists and the machine would reject on every branch). *)
