module B = Util.Bitstring
module P = Util.Permutation

let random_half st ~m ~n = Array.init m (fun _ -> B.random st ~width:n)

let shuffle st a =
  let a = Array.copy a in
  for i = Array.length a - 1 downto 1 do
    let j = Random.State.int st (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done;
  a

let yes_instance st problem ~m ~n =
  let xs = random_half st ~m ~n in
  let ys =
    match problem with
    | Decide.Set_equality | Decide.Multiset_equality -> shuffle st xs
    | Decide.Check_sort ->
        let s = Array.copy xs in
        Array.sort B.compare s;
        s
  in
  Instance.make xs ys

let flip_random_bit st v =
  let n = B.length v in
  let i = Random.State.int st n in
  let s = Bytes.of_string (B.to_string v) in
  Bytes.set s i (if Bytes.get s i = '0' then '1' else '0');
  B.of_string (Bytes.to_string s)

let no_instance st problem ~m ~n =
  if m < 1 || n < 1 then invalid_arg "Generators.no_instance: m, n >= 1";
  let rec attempt () =
    let base = yes_instance st problem ~m ~n in
    let ys = Instance.ys base in
    let j = Random.State.int st m in
    ys.(j) <- flip_random_bit st ys.(j);
    let inst = Instance.make (Instance.xs base) ys in
    if Decide.decide problem inst then attempt () else inst
  in
  attempt ()

let labelled st problem ~m ~n =
  if Random.State.bool st then (yes_instance st problem ~m ~n, true)
  else (no_instance st problem ~m ~n, false)

let set_yes_multiset_no st ~m ~n =
  if m < 3 then invalid_arg "Generators.set_yes_multiset_no: m >= 3";
  if n >= 62 || 1 lsl n <= m then
    invalid_arg "Generators.set_yes_multiset_no: need 2^n > m, n < 62";
  (* Both halves carry the m-1 distinct values d_0..d_{m-2}; xs
     duplicates d_0, ys duplicates d_1. Sets agree, multiplicities
     don't. (For m = 2 no such instance exists.) *)
  let d = Array.init (m - 1) (fun i -> B.of_int ~width:n i) in
  let xs = Array.init m (fun i -> if i = 0 then d.(0) else d.(i - 1)) in
  let ys = Array.init m (fun i -> if i = 0 then d.(1) else d.(i - 1)) in
  Instance.make (shuffle st xs) (shuffle st ys)

module Checkphi = struct
  (* [inv] is materialized once: the adversary and the yes-generator
     need ϕ⁻¹ per sample, and recomputing the O(m) inversion per draw
     shows up in the sample sweeps. Eager (not lazy) so concurrent pool
     workers can read it without a forcing race. *)
  type space = { phi : P.t; intervals : Intervals.t; inv : P.t }

  let make_space ~m ~n ~phi =
    if P.size phi <> m then invalid_arg "Checkphi.make_space: phi size";
    let intervals = Intervals.make ~m ~n in
    if n <= Intervals.log2m intervals then
      invalid_arg "Checkphi.make_space: intervals must have >= 2 elements";
    { phi; intervals; inv = P.inverse phi }

  let default_space ~m ~n = make_space ~m ~n ~phi:(P.reverse_binary m)
  let phi s = s.phi
  let intervals s = s.intervals
  let inv_phi s = s.inv

  let member s inst =
    let m = P.size s.phi in
    Instance.m inst = m
    && (match Instance.uniform_length inst with
       | Some n -> n = Intervals.n s.intervals
       | None -> false)
    &&
    let ok = ref true in
    for i = 1 to m do
      if not (Intervals.mem s.intervals (P.apply s.phi i) (Instance.x inst i))
      then ok := false;
      if not (Intervals.mem s.intervals i (Instance.y inst i)) then ok := false
    done;
    !ok

  let yes st s =
    let m = P.size s.phi in
    let inv = s.inv in
    let xs =
      Array.init m (fun i0 ->
          Intervals.random_element st s.intervals (P.apply s.phi (i0 + 1)))
    in
    (* v'_j must equal v_{ϕ⁻¹(j)}, which indeed lies in I_j. *)
    let ys = Array.init m (fun j0 -> xs.(P.apply inv (j0 + 1) - 1)) in
    Instance.make xs ys

  let no st s =
    let m = P.size s.phi in
    let base = yes st s in
    let ys = Instance.ys base in
    let j = Random.State.int st m in
    let rec fresh () =
      let w = Intervals.random_element st s.intervals (j + 1) in
      if B.equal w ys.(j) then fresh () else w
    in
    ys.(j) <- fresh ();
    Instance.make (Instance.xs base) ys

  let is_yes s inst = Decide.check_phi ~phi:s.phi inst
end
