(** Instance generators for the three decision problems.

    Yes-instances are built directly from the problem's definition;
    no-instances are built by perturbing a yes-instance and {e verified}
    against the reference decider (resampling on the rare collision), so
    every generated instance carries a guaranteed label. *)

val yes_instance :
  Random.State.t -> Decide.problem -> m:int -> n:int -> Instance.t
(** A random positive instance with [m] strings of length [n] per half. *)

val no_instance :
  Random.State.t -> Decide.problem -> m:int -> n:int -> Instance.t
(** A random negative instance with the same shape. Requires [m ≥ 1] and
    [n ≥ 1].
    @raise Invalid_argument otherwise. *)

val labelled :
  Random.State.t -> Decide.problem -> m:int -> n:int -> Instance.t * bool
(** A fair coin flip between {!yes_instance} and {!no_instance}, with
    its label. Requires [m ≥ 1] and [n ≥ 1]. *)

val set_yes_multiset_no :
  Random.State.t -> m:int -> n:int -> Instance.t
(** An instance whose two halves are equal as sets but not as multisets
    (some element duplicated on one side only) — separates SET-EQUALITY
    from MULTISET-EQUALITY in tests. Requires [m ≥ 3] (no such instance
    exists for [m ≤ 2]) and [2^n > m]. *)

(** Generators over the CHECK-ϕ hard-instance space of Lemmas 21/22:
    [I = I_ϕ(1) × .. × I_ϕ(m) × I_1 × .. × I_m]. *)
module Checkphi : sig
  type space
  (** The product space determined by [(m, n, ϕ)]. *)

  val make_space : m:int -> n:int -> phi:Util.Permutation.t -> space
  (** @raise Invalid_argument unless [m] is a power of two matching
      [size phi], [n ≥ log2 m], and each interval has at least two
      elements ([n > log2 m]). *)

  val default_space : m:int -> n:int -> space
  (** [make_space] with [ϕ = reverse_binary m] (Remark 20). *)

  val phi : space -> Util.Permutation.t
  val intervals : space -> Intervals.t

  val inv_phi : space -> Util.Permutation.t
  (** [ϕ⁻¹], computed once at space construction — sample generation
      and the adversary's resampling step need it per draw. *)

  val member : space -> Instance.t -> bool
  (** Whether the instance lies in the product space [I]. *)

  val yes : Random.State.t -> space -> Instance.t
  (** Uniform over the yes-instances
      [(v_1,..,v_m) = (v'_ϕ(1),..,v'_ϕ(m))] of the space. *)

  val no : Random.State.t -> space -> Instance.t
  (** A member of [I] violating the CHECK-ϕ condition (one [v'_j]
      resampled within its interval to a different value). *)

  val is_yes : space -> Instance.t -> bool
  (** Reference CHECK-ϕ decision. *)
end
