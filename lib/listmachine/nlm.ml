type sym = In of int | Ch of int | St of int | Open | Close

(* Cells as hash-consed DAGs.

   A written cell is the tuple y = a⟨x_1⟩…⟨x_t⟩⟨c⟩ of Definition 14; the
   components x_τ are the cells under the heads when y was written. The
   flat-string representation copies those components, so cell sizes
   compound with every reversal (the t^O(r) cell-size bound of Lemma 30
   is exponential in r) and machines beyond m=16 never finish a run.
   Representing y as a node that *references* its components keeps every
   write O(t), which is also the faithful reading of the definition: the
   machine writes a tuple, not a transcription.

   Each node memoizes, at construction time:
   - [len]: the flattened symbol count (saturating; the honest Lemma 30
     measure, reported by {!cell_size});
   - [hash]/[skhash]: rolling hashes of the flattened symbol string,
     choice-sensitive and choice-blind (skeletons wildcard [Ch _]), with
     [hpow] = MULT^len so concatenations combine in O(1);
   - [inputs]: the sorted distinct input positions occurring anywhere in
     the cell — membership tests (planner checks, skeleton position
     sets) are a binary search instead of a walk of the expansion.

   Hashes are functions of the flattened string only, so a [Syms] cell
   and a [Written] cell with the same expansion hash alike, and every
   hash is deterministic across runs and domains. The [uid] is NOT: it
   is a process-global stamp used for physical-identity fast paths and
   comparison memo tables; it never reaches any output. *)

type cell = {
  uid : int;
  shape : shape;
  len : int;
  hash : int;
  skhash : int;
  hpow : int;
  inputs : int array;
}

and shape = Syms of sym array | Written of { state : int; comps : cell array; choice : int }

let cell_shape c = c.shape
let uid_counter = Atomic.make 0
let fresh_uid () = Atomic.fetch_and_add uid_counter 1

(* rolling (Horner) hash: H(s·t) = H(s)*MULT^|t| + H(t), on wrapping
   native ints. MULT odd so powers never vanish. *)
let mult = 0x5851F42D4C957F2D

let sym_code = function
  | In i -> (i lsl 3) lor 1
  | Ch c -> (c lsl 3) lor 2
  | St a -> (a lsl 3) lor 3
  | Open -> 4
  | Close -> 5

(* choice-blind code: every [Ch _] collapses to the wildcard *)
let sym_skcode = function Ch _ -> 2 | s -> sym_code s

let sat_add a b =
  let s = a + b in
  if s < 0 then max_int else s

(* Union of sorted distinct arrays, sorted distinct. This runs once per
   written cell — millions of times in an adversary sweep — so it is a
   k-way merge over the already-sorted inputs (no re-sort) with two
   sharing fast paths: if every array is a subset of the largest, the
   largest is returned physically (the common case once a run's cells
   have accumulated most positions), and the merge buffer is returned
   as-is when nothing was deduplicated. *)
let merge_inputs arrays =
  let arrays = Array.of_list arrays in
  let k = Array.length arrays in
  let total = Array.fold_left (fun acc a -> acc + Array.length a) 0 arrays in
  if total = 0 then [||]
  else begin
    let big = ref 0 in
    for i = 1 to k - 1 do
      if Array.length arrays.(i) > Array.length arrays.(!big) then big := i
    done;
    let big = arrays.(!big) in
    let contains a x =
      let lo = ref 0 and hi = ref (Array.length a) in
      while !lo < !hi do
        let mid = (!lo + !hi) / 2 in
        if a.(mid) < x then lo := mid + 1 else hi := mid
      done;
      !lo < Array.length a && a.(!lo) = x
    in
    let subsumed =
      Array.for_all
        (fun a -> a == big || Array.for_all (fun x -> contains big x) a)
        arrays
    in
    if subsumed then big
    else begin
      let idx = Array.make k 0 in
      let buf = Array.make total 0 in
      let n = ref 0 in
      let last = ref min_int in
      let continue_ = ref true in
      while !continue_ do
        (* smallest head across the k cursors *)
        let best = ref (-1) in
        for i = 0 to k - 1 do
          if idx.(i) < Array.length arrays.(i) then
            let x = arrays.(i).(idx.(i)) in
            if !best < 0 || x < arrays.(!best).(idx.(!best)) then best := i
        done;
        if !best < 0 then continue_ := false
        else begin
          let x = arrays.(!best).(idx.(!best)) in
          idx.(!best) <- idx.(!best) + 1;
          if x <> !last then begin
            buf.(!n) <- x;
            incr n;
            last := x
          end
        end
      done;
      if !n = total then buf else Array.sub buf 0 !n
    end
  end

let cell_of_sym_array arr =
  let len = Array.length arr in
  let hash = ref 0 and skhash = ref 0 and hpow = ref 1 in
  let inputs = ref [] in
  Array.iter
    (fun s ->
      hash := (!hash * mult) + sym_code s;
      skhash := (!skhash * mult) + sym_skcode s;
      hpow := !hpow * mult;
      match s with In i -> inputs := i :: !inputs | Ch _ | St _ | Open | Close -> ())
    arr;
  {
    uid = fresh_uid ();
    shape = Syms (Array.copy arr);
    len;
    hash = !hash;
    skhash = !skhash;
    hpow = !hpow;
    inputs = Array.of_list (List.sort_uniq Int.compare !inputs);
  }

let cell_of_syms syms = cell_of_sym_array (Array.of_list syms)

(* flattening of a written cell: a ⟨x_1⟩ … ⟨x_t⟩ ⟨c⟩ *)
let written_cell ~state ~comps ~choice =
  let h = ref (sym_code (St state)) and skh = ref (sym_skcode (St state)) in
  let pow = ref mult in
  let len = ref 1 in
  let app_sym code skcode =
    h := (!h * mult) + code;
    skh := (!skh * mult) + skcode;
    pow := !pow * mult;
    len := sat_add !len 1
  in
  let app_cell c =
    h := (!h * c.hpow) + c.hash;
    skh := (!skh * c.hpow) + c.skhash;
    pow := !pow * c.hpow;
    len := sat_add !len c.len
  in
  let copen = sym_code Open and cclose = sym_code Close in
  Array.iter
    (fun c ->
      app_sym copen copen;
      app_cell c;
      app_sym cclose cclose)
    comps;
  app_sym copen copen;
  app_sym (sym_code (Ch choice)) (sym_skcode (Ch choice));
  app_sym cclose cclose;
  {
    uid = fresh_uid ();
    shape = Written { state; comps = Array.copy comps; choice };
    len = !len;
    hash = !h;
    skhash = !skh;
    hpow = !pow;
    inputs = merge_inputs (Array.to_list (Array.map (fun c -> c.inputs) comps));
  }

(* -------------------------------------------------------------- *)
(* Flattened views. These walk the full expansion of the DAG — cost
   proportional to [cell_size], i.e. potentially exponential in the
   reversal count. They exist for rendering, tests and the merge-lemma
   position sequences of small machines; nothing on the adversary's hot
   path flattens. *)

let fold_syms f init cell =
  let rec go acc cell =
    match cell.shape with
    | Syms arr -> Array.fold_left f acc arr
    | Written { state; comps; choice } ->
        let acc = f acc (St state) in
        let acc =
          Array.fold_left
            (fun acc c -> f (go (f acc Open) c) Close)
            acc comps
        in
        f (f (f acc Open) (Ch choice)) Close
  in
  go init cell

let iter_syms f cell = fold_syms (fun () s -> f s) () cell

let syms_of_cell cell = List.rev (fold_syms (fun acc s -> s :: acc) [] cell)

exception Enough

(* first symbols of the expansion, without materializing it *)
let cell_prefix_syms cell n =
  let acc = ref [] and k = ref 0 in
  (try
     iter_syms
       (fun s ->
         if !k >= n then raise Enough;
         acc := s :: !acc;
         incr k)
       cell
   with Enough -> ());
  List.rev !acc

(* last symbols of the expansion, by a mirrored walk *)
let cell_suffix_syms cell n =
  let acc = ref [] and k = ref 0 in
  let push s =
    if !k >= n then raise Enough;
    acc := s :: !acc;
    incr k
  in
  let rec go cell =
    match cell.shape with
    | Syms arr ->
        for i = Array.length arr - 1 downto 0 do
          push arr.(i)
        done
    | Written { state; comps; choice } ->
        push Close;
        push (Ch choice);
        push Open;
        for i = Array.length comps - 1 downto 0 do
          push Close;
          go comps.(i);
          push Open
        done;
        push (St state)
  in
  (try go cell with Enough -> ());
  !acc

(* -------------------------------------------------------------- *)
(* Equality. The cheap rejections are [len] and the content hashes; the
   structural descent memoizes proven-equal uid pairs so shared
   substructure — ubiquitous between entries of one run, absent across
   runs — is never re-traversed. Mixed Syms/Written comparisons fall
   back to a streaming walk of both expansions (bounded by [len], which
   the guard has already forced equal). *)

let stream_equal ~skblind a b =
  (* compare flattened expansions symbol by symbol via two explicit
     continuation stacks *)
  let code = if skblind then sym_skcode else sym_code in
  let module S = struct
    type frame = FSym of sym | FCell of cell
  end in
  let open S in
  let next stack =
    (* pop until a symbol is produced *)
    let rec go = function
      | [] -> (None, [])
      | FSym s :: rest -> (Some s, rest)
      | FCell c :: rest -> (
          match c.shape with
          | Syms arr ->
              go (Array.fold_right (fun s acc -> FSym s :: acc) arr rest)
          | Written { state; comps; choice } ->
              let tail =
                Array.fold_right
                  (fun comp acc -> FSym Open :: FCell comp :: FSym Close :: acc)
                  comps
                  (FSym Open :: FSym (Ch choice) :: FSym Close :: rest)
              in
              go (FSym (St state) :: tail))
    in
    go stack
  in
  let rec loop sa sb =
    match (next sa, next sb) with
    | (None, _), (None, _) -> true
    | (Some x, sa'), (Some y, sb') -> code x = code y && loop sa' sb'
    | (None, _), (Some _, _) | (Some _, _), (None, _) -> false
  in
  loop [ FCell a ] [ FCell b ]

let cell_equal_memo ~skblind memo =
  let hash_of c = if skblind then c.skhash else c.hash in
  let rec eq a b =
    a == b
    || a.uid = b.uid
    || (a.len = b.len
       && hash_of a = hash_of b
       &&
       let key = if a.uid < b.uid then (a.uid, b.uid) else (b.uid, a.uid) in
       match Hashtbl.find_opt memo key with
       | Some r -> r
       | None ->
           let r =
             match (a.shape, b.shape) with
             | Syms xs, Syms ys ->
                 let code = if skblind then sym_skcode else sym_code in
                 Array.length xs = Array.length ys
                 && Array.for_all2 (fun x y -> code x = code y) xs ys
             | Written wa, Written wb ->
                 wa.state = wb.state
                 && (skblind || wa.choice = wb.choice)
                 && Array.length wa.comps = Array.length wb.comps
                 && Array.for_all2 eq wa.comps wb.comps
             | Syms _, Written _ | Written _, Syms _ ->
                 stream_equal ~skblind a b
           in
           Hashtbl.replace memo key r;
           r)
  in
  eq

let cell_equal a b =
  a == b || (a.len = b.len && a.hash = b.hash && cell_equal_memo ~skblind:false (Hashtbl.create 16) a b)

let cell_sk_equal a b =
  a == b
  || (a.len = b.len && a.skhash = b.skhash && cell_equal_memo ~skblind:true (Hashtbl.create 16) a b)

let cell_sk_equal_memo memo = cell_equal_memo ~skblind:true memo
let cell_hash c = c.hash
let cell_sk_hash c = c.skhash
let cell_uid c = c.uid
let merge_input_positions arrays = merge_inputs (Array.to_list arrays)

let cell_mentions c i =
  let arr = c.inputs in
  let lo = ref 0 and hi = ref (Array.length arr) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if arr.(mid) < i then lo := mid + 1 else hi := mid
  done;
  !lo < Array.length arr && arr.(!lo) = i

let cell_input_positions c = c.inputs

type movement = { dir : int; move : bool }
type transition = { next_state : int; movements : movement array }

type 'v alpha =
  values:'v array -> state:int -> cells:cell array -> choice:int -> transition

type 'v t = {
  lists : int;
  input_length : int;
  num_choices : int;
  state_count : int;
  initial : int;
  is_final : int -> bool;
  is_accepting : int -> bool;
  alpha : 'v alpha;
  name : string;
}

let make ~name ~lists ~input_length ~num_choices ~state_count ~initial ~is_final
    ~is_accepting ~alpha =
  if lists < 1 then invalid_arg "Nlm.make: lists >= 1";
  if input_length < 0 then invalid_arg "Nlm.make: input_length >= 0";
  if num_choices < 1 then invalid_arg "Nlm.make: num_choices >= 1";
  if state_count < 1 then invalid_arg "Nlm.make: state_count >= 1";
  if initial < 0 then invalid_arg "Nlm.make: initial state";
  {
    lists;
    input_length;
    num_choices;
    state_count;
    initial;
    is_final;
    is_accepting;
    alpha;
    name;
  }

type config = {
  state : int;
  pos : int array;
  head_dir : int array;
  contents : cell array array;
  revs : int array;
  ids : int array array;
  next_id : int;
}

let empty_cell = cell_of_sym_array [| Open; Close |]

let initial_config m =
  let first =
    if m.input_length = 0 then [| empty_cell |]
    else Array.init m.input_length (fun i0 -> cell_of_sym_array [| Open; In (i0 + 1); Close |])
  in
  let contents =
    Array.init m.lists (fun tau -> if tau = 0 then first else [| empty_cell |])
  in
  let counter = ref 0 in
  let ids =
    Array.map
      (Array.map (fun _ ->
           incr counter;
           !counter))
      contents
  in
  {
    state = m.initial;
    pos = Array.make m.lists 1;
    head_dir = Array.make m.lists 1;
    contents;
    revs = Array.make m.lists 0;
    ids;
    next_id = !counter + 1;
  }

let current_cells c =
  Array.mapi (fun tau p -> c.contents.(tau).(p - 1)) c.pos

let splice_replace arr j y =
  let fresh = Array.copy arr in
  fresh.(j - 1) <- y;
  fresh

let splice_insert_before arr j y =
  (* y becomes cell j; old cell j shifts to j+1 *)
  Array.concat [ Array.sub arr 0 (j - 1); [| y |]; Array.sub arr (j - 1) (Array.length arr - j + 1) ]

let splice_insert_after arr j y =
  Array.concat [ Array.sub arr 0 j; [| y |]; Array.sub arr j (Array.length arr - j) ]

let step m ~values c ~choice =
  if m.is_final c.state then invalid_arg "Nlm.step: final configuration";
  if choice < 0 || choice >= m.num_choices then invalid_arg "Nlm.step: choice range";
  let cells = current_cells c in
  let tr = m.alpha ~values ~state:c.state ~cells ~choice in
  if Array.length tr.movements <> m.lists then
    invalid_arg "Nlm.step: alpha returned wrong movement arity";
  (* clamp at list ends (Definition 24(c)) *)
  let clamped =
    Array.mapi
      (fun tau e ->
        let len = Array.length c.contents.(tau) in
        if e.dir <> -1 && e.dir <> 1 then invalid_arg "Nlm.step: dir must be ±1";
        if c.pos.(tau) = 1 && e.dir = -1 && e.move then { dir = -1; move = false }
        else if c.pos.(tau) = len && e.dir = 1 && e.move then { dir = 1; move = false }
        else e)
      tr.movements
  in
  let f =
    Array.mapi (fun tau e -> e.move || e.dir <> c.head_dir.(tau)) clamped
  in
  if Array.for_all not f then
    ( { c with state = tr.next_state }, Array.make m.lists 0 )
  else begin
    (* the forced write: an O(t) node referencing the current cells *)
    let y = written_cell ~state:c.state ~comps:cells ~choice in
    let contents = Array.copy c.contents in
    let ids = Array.copy c.ids in
    let next_id = ref c.next_id in
    let fresh () =
      let id = !next_id in
      incr next_id;
      id
    in
    let pos = Array.copy c.pos in
    let head_dir = Array.copy c.head_dir in
    let revs = Array.copy c.revs in
    let cellmoves = Array.make m.lists 0 in
    for tau = 0 to m.lists - 1 do
      let e = clamped.(tau) in
      let p = c.pos.(tau) in
      if e.move then begin
        contents.(tau) <- splice_replace c.contents.(tau) p y;
        (* overwrite: the cell keeps its identity, so [ids.(tau)] can
           keep sharing [c.ids.(tau)] *)
        pos.(tau) <- (if e.dir = 1 then p + 1 else p - 1);
        cellmoves.(tau) <- e.dir
      end
      else begin
        (if c.head_dir.(tau) = 1 then begin
           contents.(tau) <- splice_insert_before c.contents.(tau) p y;
           ids.(tau) <- splice_insert_before c.ids.(tau) p (fresh ());
           pos.(tau) <- p + 1
         end
         else begin
           contents.(tau) <- splice_insert_after c.contents.(tau) p y;
           ids.(tau) <- splice_insert_after c.ids.(tau) p (fresh ());
           pos.(tau) <- p
         end);
        cellmoves.(tau) <- 0
      end;
      if e.dir <> c.head_dir.(tau) then begin
        revs.(tau) <- revs.(tau) + 1;
        head_dir.(tau) <- e.dir
      end
    done;
    ( { state = tr.next_state; pos; head_dir; contents; revs; ids; next_id = !next_id },
      cellmoves )
  end

type trace = {
  accepted : bool;
  configs : config array;
  moves : int array array;
  choices_used : int array;
  total_revs : int;
}

let run ?(fuel = 100_000) m ~values ~choices =
  if Array.length values <> m.input_length then
    invalid_arg "Nlm.run: values arity";
  let configs = ref [] in
  let moves = ref [] in
  let used = ref [] in
  let c = ref (initial_config m) in
  let steps = ref 0 in
  configs := [ !c ];
  while not (m.is_final !c.state) do
    if !steps >= fuel then failwith "Nlm.run: out of fuel";
    let choice = ((choices !steps mod m.num_choices) + m.num_choices) mod m.num_choices in
    let c', mv = step m ~values !c ~choice in
    c := c';
    configs := c' :: !configs;
    moves := mv :: !moves;
    used := choice :: !used;
    incr steps
  done;
  let final = !c in
  {
    accepted = m.is_accepting final.state;
    configs = Array.of_list (List.rev !configs);
    moves = Array.of_list (List.rev !moves);
    choices_used = Array.of_list (List.rev !used);
    total_revs = Array.fold_left ( + ) 0 final.revs;
  }

let scans tr = 1 + tr.total_revs

(* -------------------------------------------------------------- *)
(* The in-place runner. [step] is persistent: it snapshots both list
   arrays, so a full [run] allocates O(list length) of major-heap arrays
   per step — hundreds of MB on adversary-sized machines, and the
   domains of a parallel census then serialize on the shared GC. The
   skeleton pipeline only ever looks at the O(t) local view per step
   (state, head directions, cells under the heads) plus the final
   configuration, so [run_view] keeps the lists in growable scratch
   buffers mutated in place (inserts memmove within one buffer — no
   fresh arrays) and records just the views. Cells are immutable DAG
   nodes, so captured views stay valid as the buffers shift under them. *)

type view = { vstate : int; vdirs : int array; vcells : cell array }

type view_trace = {
  vaccepted : bool;
  views : view array;
  vmoves : int array array;
  vchoices_used : int array;
  vtotal_revs : int;
  final : config;
  max_total_list_length : int;
  max_cell_size : int;
}

let run_view ?(fuel = 100_000) m ~values ~choices =
  if Array.length values <> m.input_length then
    invalid_arg "Nlm.run_view: values arity";
  let t = m.lists in
  let init = initial_config m in
  let grow_to cap arr filler len =
    let fresh = Array.make cap filler in
    Array.blit arr 0 fresh 0 len;
    fresh
  in
  let bufs =
    Array.init t (fun tau ->
        let src = init.contents.(tau) in
        grow_to (max 16 (2 * Array.length src)) src empty_cell (Array.length src))
  in
  let idbufs =
    Array.init t (fun tau ->
        let src = init.ids.(tau) in
        grow_to (max 16 (2 * Array.length src)) src 0 (Array.length src))
  in
  let lens = Array.init t (fun tau -> Array.length init.contents.(tau)) in
  let pos = Array.copy init.pos in
  let head_dir = Array.copy init.head_dir in
  let revs = Array.copy init.revs in
  let next_id = ref init.next_id in
  let state = ref m.initial in
  let insert tau j y id =
    (* make y cell number [j] of list [tau], shifting the tail right *)
    let len = lens.(tau) in
    if len = Array.length bufs.(tau) then begin
      bufs.(tau) <- grow_to (2 * len) bufs.(tau) empty_cell len;
      idbufs.(tau) <- grow_to (2 * len) idbufs.(tau) 0 len
    end;
    Array.blit bufs.(tau) (j - 1) bufs.(tau) j (len - j + 1);
    Array.blit idbufs.(tau) (j - 1) idbufs.(tau) j (len - j + 1);
    bufs.(tau).(j - 1) <- y;
    idbufs.(tau).(j - 1) <- id;
    lens.(tau) <- len + 1
  in
  let current_view () =
    {
      vstate = !state;
      vdirs = Array.copy head_dir;
      vcells = Array.init t (fun tau -> bufs.(tau).(pos.(tau) - 1));
    }
  in
  let views = ref [ current_view () ] in
  let moves = ref [] in
  let used = ref [] in
  let steps = ref 0 in
  let max_total = ref (Array.fold_left ( + ) 0 lens) in
  let max_cell = ref 3 in
  while not (m.is_final !state) do
    if !steps >= fuel then failwith "Nlm.run_view: out of fuel";
    let choice =
      ((choices !steps mod m.num_choices) + m.num_choices) mod m.num_choices
    in
    let cells = Array.init t (fun tau -> bufs.(tau).(pos.(tau) - 1)) in
    let tr = m.alpha ~values ~state:!state ~cells ~choice in
    if Array.length tr.movements <> t then
      invalid_arg "Nlm.run_view: alpha returned wrong movement arity";
    let clamped =
      Array.mapi
        (fun tau e ->
          if e.dir <> -1 && e.dir <> 1 then
            invalid_arg "Nlm.run_view: dir must be ±1";
          if pos.(tau) = 1 && e.dir = -1 && e.move then { dir = -1; move = false }
          else if pos.(tau) = lens.(tau) && e.dir = 1 && e.move then
            { dir = 1; move = false }
          else e)
        tr.movements
    in
    let f = Array.mapi (fun tau e -> e.move || e.dir <> head_dir.(tau)) clamped in
    let cellmoves = Array.make t 0 in
    if Array.exists Fun.id f then begin
      let y = written_cell ~state:!state ~comps:cells ~choice in
      if y.len > !max_cell then max_cell := y.len;
      for tau = 0 to t - 1 do
        let e = clamped.(tau) in
        let p = pos.(tau) in
        if e.move then begin
          (* overwrite: the cell keeps its identity *)
          bufs.(tau).(p - 1) <- y;
          pos.(tau) <- (if e.dir = 1 then p + 1 else p - 1);
          cellmoves.(tau) <- e.dir
        end
        else begin
          let id = !next_id in
          incr next_id;
          if head_dir.(tau) = 1 then begin
            insert tau p y id;
            pos.(tau) <- p + 1
          end
          else insert tau (p + 1) y id
        end;
        if e.dir <> head_dir.(tau) then begin
          revs.(tau) <- revs.(tau) + 1;
          head_dir.(tau) <- e.dir
        end
      done;
      let total = Array.fold_left ( + ) 0 lens in
      if total > !max_total then max_total := total
    end;
    state := tr.next_state;
    views := current_view () :: !views;
    moves := cellmoves :: !moves;
    used := choice :: !used;
    incr steps
  done;
  let final =
    {
      state = !state;
      pos = Array.copy pos;
      head_dir = Array.copy head_dir;
      contents = Array.init t (fun tau -> Array.sub bufs.(tau) 0 lens.(tau));
      revs = Array.copy revs;
      ids = Array.init t (fun tau -> Array.sub idbufs.(tau) 0 lens.(tau));
      next_id = !next_id;
    }
  in
  {
    vaccepted = m.is_accepting !state;
    views = Array.of_list (List.rev !views);
    vmoves = Array.of_list (List.rev !moves);
    vchoices_used = Array.of_list (List.rev !used);
    vtotal_revs = Array.fold_left ( + ) 0 revs;
    final;
    max_total_list_length = !max_total;
    max_cell_size = !max_cell;
  }

let accept_probability st ?(samples = 500) ?fuel m ~values =
  let hits = ref 0 in
  for _ = 1 to samples do
    let tr =
      run ?fuel m ~values ~choices:(fun _ -> Random.State.int st m.num_choices)
    in
    if tr.accepted then incr hits
  done;
  float_of_int !hits /. float_of_int samples

(* configs carry memoized cells whose [uid] differs between otherwise
   identical successors, so grouping keys on the uid-free projection *)
let config_key (c : config) =
  (c.state, c.pos, c.head_dir, c.revs, Array.map (Array.map (fun cell -> cell.hash)) c.contents)

let exact_probability ?(fuel = 200_000) m ~values =
  let expanded = ref 0 in
  let rec go c =
    incr expanded;
    if !expanded > fuel then failwith "Nlm.exact_probability: out of fuel";
    if m.is_final c.state then if m.is_accepting c.state then 1.0 else 0.0
    else begin
      (* group identical successors so that choice-insensitive steps do
         not blow up the tree (cell hashes are deterministic per choice,
         so the content projection is sound here) *)
      let successors = ref [] in
      for choice = 0 to m.num_choices - 1 do
        let c', _ = step m ~values c ~choice in
        let k = config_key c' in
        match List.assoc_opt k !successors with
        | Some (c0, count) ->
            successors := (k, (c0, count + 1)) :: List.remove_assoc k !successors
        | None -> successors := (k, (c', 1)) :: !successors
      done;
      List.fold_left
        (fun acc (_, (c', count)) ->
          acc +. (float_of_int count *. go c' /. float_of_int m.num_choices))
        0.0 !successors
    end
  in
  go (initial_config m)

let cell_inputs cell =
  List.rev
    (fold_syms
       (fun acc s ->
         match s with In i -> i :: acc | Ch _ | St _ | Open | Close -> acc)
       [] cell)

let cell_components cell =
  match cell.shape with
  | Written { state; comps; choice } -> Some (state, Array.to_list comps, choice)
  | Syms arr -> (
      (* parse a⟨x_1⟩…⟨x_t⟩⟨c⟩ by bracket matching, for hand-built cells *)
      match Array.to_list arr with
      | St a :: rest ->
          let rec comps_of acc rest =
            match rest with
            | [] -> Some (List.rev acc)
            | Open :: tl ->
                let rec grab depth body tl =
                  match tl with
                  | [] -> None
                  | Close :: tl' ->
                      if depth = 0 then Some (List.rev body, tl')
                      else grab (depth - 1) (Close :: body) tl'
                  | Open :: tl' -> grab (depth + 1) (Open :: body) tl'
                  | (In _ | Ch _ | St _) as s :: tl' -> grab depth (s :: body) tl'
                in
                (match grab 0 [] tl with
                | None -> None
                | Some (body, tl') -> comps_of (body :: acc) tl')
            | (In _ | Ch _ | St _ | Close) :: _ -> None
          in
          (match comps_of [] rest with
          | Some parts when List.length parts >= 1 -> (
              match List.rev parts with
              | [ Ch ch ] :: xs_rev ->
                  Some (a, List.rev_map cell_of_syms xs_rev, ch)
              | _ -> None)
          | Some _ | None -> None)
      | [] | (In _ | Ch _ | Open | Close) :: _ -> None)

let resolve_cell ~values cell =
  List.map
    (function
      | In i -> Either.Left values.(i - 1)
      | Ch c -> Either.Right (-1 - c)
      | St a -> Either.Right a
      | Open -> Either.Right min_int
      | Close -> Either.Right (min_int + 1))
    (syms_of_cell cell)

let cell_size c = c.len

let pp_sym ppf = function
  | In i -> Format.fprintf ppf "v%d" i
  | Ch c -> Format.fprintf ppf "c%d" c
  | St a -> Format.fprintf ppf "a%d" a
  | Open -> Format.pp_print_string ppf "<"
  | Close -> Format.pp_print_string ppf ">"

let pp_cell ppf cell = iter_syms (fun s -> pp_sym ppf s) cell
