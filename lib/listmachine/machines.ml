module B = Util.Bitstring
module P = Util.Permutation

let chain_partition phi =
  let m = P.size phi in
  (* chains store (i, ϕ(i)) in reverse i-order; direction 0 undecided *)
  let chains = ref [] in
  for i = 1 to m do
    let j = P.apply phi i in
    let best = ref None in
    List.iteri
      (fun idx (pairs, dirn) ->
        let _, last_j = List.hd pairs in
        let ok =
          match dirn with 0 -> true | 1 -> j > last_j | _ -> j < last_j
        in
        if ok then begin
          let badness = abs (j - last_j) in
          match !best with
          | Some (_, b) when b <= badness -> ()
          | Some _ | None -> best := Some (idx, badness)
        end)
      !chains;
    match !best with
    | Some (sel, _) ->
        chains :=
          List.mapi
            (fun idx (pairs, dirn) ->
              if idx = sel then begin
                let _, last_j = List.hd pairs in
                let dirn' = if dirn <> 0 then dirn else if j > last_j then 1 else -1 in
                ((i, j) :: pairs, dirn')
              end
              else (pairs, dirn))
            !chains
    | None -> chains := ([ (i, j) ], 0) :: !chains
  done;
  List.rev_map (fun (pairs, _) -> List.rev pairs) !chains

let is_ascending chain =
  match chain with
  | (_, j0) :: (_, j1) :: _ -> j1 > j0
  | [ _ ] | [] -> true

(* Plan one chain's verification pass on planner [p]: a copy sweep of
   head 1 across the chain's x-cells (each exit splices a copy of the
   exited cell into list 2), then a monotone comparison sweep pairing
   each copy with its y-cell. *)
let plan_chain p cell_id ~m chain =
  let iset = List.map fst chain in
  let copies = Hashtbl.create 16 in
  let i_first = List.hd iset in
  let i_last = List.nth iset (List.length iset - 1) in
  Plan.goto p ~tau:1 ~id:cell_id.(i_first - 1);
  let rec sweep () =
    let cur = Plan.id_at p ~tau:1 in
    let is_chain_cell = List.exists (fun i -> cell_id.(i - 1) = cur) iset in
    Plan.advance p ~tau:1 ~dir:1;
    if is_chain_cell then begin
      let i = List.find (fun i -> cell_id.(i - 1) = cur) iset in
      (* the spliced copy lands before the head when it faces right,
         after it when it faces left (Definition 24(c)) *)
      let pos2 = (Plan.positions p).(1) in
      let idx = if (Plan.dirs p).(1) = 1 then pos2 - 1 else pos2 + 1 in
      Hashtbl.replace copies i (Plan.id_at_index p ~tau:2 ~index:idx)
    end;
    if cur <> cell_id.(i_last - 1) then sweep ()
  in
  sweep ();
  let compare_pair (i, j) =
    Plan.goto p ~tau:2 ~id:(Hashtbl.find copies i);
    Plan.goto p ~tau:1 ~id:cell_id.(m + j - 1);
    Plan.check_inputs_equal p ~eq:B.equal i (m + j)
  in
  if is_ascending chain then List.iter compare_pair chain
  else List.iter compare_pair (List.rev chain)

let input_cell_ids p ~m =
  Array.init (2 * m) (fun k -> Plan.id_at_index p ~tau:1 ~index:(k + 1))

let staircase_checkphi ~space ~chains ~optimistic =
  let phi = Problems.Generators.Checkphi.phi space in
  let m = P.size phi in
  let all = chain_partition phi in
  let used = List.filteri (fun idx _ -> idx < chains) all in
  let complete = chains >= List.length all in
  let p = Plan.create ~lists:2 ~input_length:(2 * m) () in
  let cell_id = input_cell_ids p ~m in
  List.iter (fun chain -> plan_chain p cell_id ~m chain) used;
  Plan.build p
    ~name:
      (Printf.sprintf "staircase-checkphi(m=%d,chains=%d%s)" m chains
         (if optimistic then ",optimistic" else ""))
    ~accept_at_end:(optimistic || complete)

let random_chain_checkphi ~space =
  let phi = Problems.Generators.Checkphi.phi space in
  let m = P.size phi in
  let all = chain_partition phi in
  let planners =
    List.map
      (fun chain ->
        let p = Plan.create ~lists:2 ~input_length:(2 * m) () in
        let cell_id = input_cell_ids p ~m in
        plan_chain p cell_id ~m chain;
        p)
      all
  in
  Plan.build_choice_dispatch planners
    ~name:(Printf.sprintf "random-chain-checkphi(m=%d,chains=%d)" m (List.length all))
    ~accept_at_end:true

let chains_needed ~space =
  List.length (chain_partition (Problems.Generators.Checkphi.phi space))

let dispatch_probability machine ~values =
  let k = machine.Nlm.num_choices in
  let hits = ref 0 in
  for c = 0 to k - 1 do
    if (Nlm.run_view machine ~values ~choices:(fun _ -> c)).Nlm.vaccepted then
      incr hits
  done;
  float_of_int !hits /. float_of_int k

let coin ~input_length =
  Nlm.make ~name:"coin" ~lists:1 ~input_length ~num_choices:2 ~state_count:3
    ~initial:0
    ~is_final:(fun s -> s >= 1)
    ~is_accepting:(fun s -> s = 1)
    ~alpha:(fun ~values:_ ~state:_ ~cells:_ ~choice ->
      {
        Nlm.next_state = (if choice = 0 then 1 else 2);
        movements = [| { Nlm.dir = 1; move = false } |];
      })

let blind ~input_length ~accept =
  Nlm.make
    ~name:(if accept then "blind-accept" else "blind-reject")
    ~lists:1 ~input_length ~num_choices:1 ~state_count:3 ~initial:0
    ~is_final:(fun s -> s >= 1)
    ~is_accepting:(fun s -> s = 1)
    ~alpha:(fun ~values:_ ~state:_ ~cells:_ ~choice:_ ->
      {
        Nlm.next_state = (if accept then 1 else 2);
        movements = [| { Nlm.dir = 1; move = false } |];
      })
