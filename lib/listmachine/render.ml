let sym_to_string = function
  | Nlm.In i -> Printf.sprintf "v%d" i
  | Nlm.Ch c -> Printf.sprintf "c%d" c
  | Nlm.St a -> Printf.sprintf "a%d" a
  | Nlm.Open -> "<"
  | Nlm.Close -> ">"

(* Render without flattening: cells are DAGs whose expansions can be
   astronomically long, so only walk enough symbols to fill the width.
   Matches the old flat-string behavior (full string if it fits in
   [max_width] chars, else first/last [(max_width-2)/2] chars joined by
   ".."), but costs O(max_width), not O(cell_size). *)
let cell_to_string ?(max_width = 24) cell =
  (* enough leading symbols to cover [max_width+1] chars, or all of them *)
  let prefix = Nlm.cell_prefix_syms cell (max_width + 1) in
  let front = String.concat "" (List.map sym_to_string prefix) in
  if List.length prefix <= max_width && String.length front <= max_width then front
  else begin
    let keep = (max_width - 2) / 2 in
    let back =
      String.concat "" (List.map sym_to_string (Nlm.cell_suffix_syms cell keep))
    in
    let back_keep = min keep (String.length back) in
    String.sub front 0 keep ^ ".."
    ^ String.sub back (String.length back - back_keep) back_keep
  end

let config_to_string ?max_width (c : Nlm.config) =
  let buf = Buffer.create 256 in
  Array.iteri
    (fun tau list ->
      Buffer.add_string buf (Printf.sprintf "list %d: " (tau + 1));
      Array.iteri
        (fun j cell ->
          let s = cell_to_string ?max_width cell in
          if j + 1 = c.Nlm.pos.(tau) then
            Buffer.add_string buf (Printf.sprintf ">[%s]< " s)
          else Buffer.add_string buf (Printf.sprintf "[%s] " s))
        list;
      Buffer.add_string buf
        (Printf.sprintf "  (dir %+d, %d reversal%s)\n" c.Nlm.head_dir.(tau)
           c.Nlm.revs.(tau)
           (if c.Nlm.revs.(tau) = 1 then "" else "s")))
    c.Nlm.contents;
  Buffer.contents buf

let trace_to_string ?max_width ?(max_steps = 20) (tr : Nlm.trace) =
  let buf = Buffer.create 1024 in
  let steps = Array.length tr.Nlm.moves in
  Buffer.add_string buf "initial configuration:\n";
  Buffer.add_string buf (config_to_string ?max_width tr.Nlm.configs.(0));
  let shown = min steps max_steps in
  for i = 0 to shown - 1 do
    let mv =
      String.concat ","
        (Array.to_list (Array.map (Printf.sprintf "%+d") tr.Nlm.moves.(i)))
    in
    Buffer.add_string buf
      (Printf.sprintf "\nstep %d (choice %d, cell moves [%s]):\n" (i + 1)
         tr.Nlm.choices_used.(i) mv);
    Buffer.add_string buf (config_to_string ?max_width tr.Nlm.configs.(i + 1))
  done;
  if shown < steps then
    Buffer.add_string buf (Printf.sprintf "\n... %d further steps elided ...\n" (steps - shown));
  Buffer.add_string buf
    (Printf.sprintf "\nrun %s after %d steps, %d reversals (%d scans)\n"
       (if tr.Nlm.accepted then "ACCEPTS" else "rejects")
       steps tr.Nlm.total_revs (Nlm.scans tr));
  Buffer.contents buf

let skeleton_summary (sk : Skeleton.t) =
  let buf = Buffer.create 256 in
  Array.iteri
    (fun j entry ->
      match entry with
      | Skeleton.Collapsed -> ()
      | Skeleton.View { state; dirs; cells = _ } ->
          let dirs =
            String.concat ""
              (Array.to_list (Array.map (fun d -> if d = 1 then "+" else "-") dirs))
          in
          let positions =
            match Skeleton.positions_of_entry entry with
            | [] -> "-"
            | ps -> String.concat "," (List.map string_of_int ps)
          in
          Buffer.add_string buf
            (Printf.sprintf "entry %3d: state %3d dirs %s positions {%s}\n" j state
               dirs positions))
    sk.Skeleton.entries;
  Buffer.contents buf
