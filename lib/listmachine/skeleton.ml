type ind_sym = IIn of int | IWild | ISt of int | IOpen | IClose

type entry =
  | View of { state : int; dirs : int array; cells : Nlm.cell array }
  | Collapsed

type t = { entries : entry array; moves : int array array; hash : int }

(* Deterministic skeleton hash: a function of the choice-blind content
   only (cell sk-hashes are rolling hashes of the flattened strings, so
   they are stable across runs, processes and domains). Structurally
   equal skeletons hash equal; the census and the intern table key on
   this. *)
let mix h x = (h * 0x5851F42D4C957F2D) + x

let hash_entries entries moves =
  let h = ref 0x9E3779B9 in
  Array.iter
    (fun e ->
      match e with
      | Collapsed -> h := mix !h 1
      | View v ->
          h := mix (mix !h 2) v.state;
          Array.iter (fun d -> h := mix !h (d + 2)) v.dirs;
          Array.iter (fun c -> h := mix !h (Nlm.cell_sk_hash c)) v.cells)
    entries;
  Array.iter (fun mv -> Array.iter (fun d -> h := mix !h (d + 5)) mv) moves;
  !h

let view_of_config (c : Nlm.config) =
  View
    {
      state = c.Nlm.state;
      dirs = Array.copy c.Nlm.head_dir;
      cells = Nlm.current_cells c;
    }

let of_trace (tr : Nlm.trace) =
  let n = Array.length tr.Nlm.configs in
  let entries =
    Array.init n (fun j ->
        if j = 0 then view_of_config tr.Nlm.configs.(0)
        else begin
          let mv = tr.Nlm.moves.(j - 1) in
          if Array.exists (fun d -> d <> 0) mv then view_of_config tr.Nlm.configs.(j)
          else Collapsed
        end)
  in
  let moves = Array.map Array.copy tr.Nlm.moves in
  { entries; moves; hash = hash_entries entries moves }

(* The fast path: a view run already recorded exactly the per-config
   data a skeleton keeps, with freshly allocated arrays we may own. *)
let of_views (vt : Nlm.view_trace) =
  let entries =
    Array.mapi
      (fun j (v : Nlm.view) ->
        if j = 0 || Array.exists (fun d -> d <> 0) vt.Nlm.vmoves.(j - 1) then
          View { state = v.Nlm.vstate; dirs = v.Nlm.vdirs; cells = v.Nlm.vcells }
        else Collapsed)
      vt.Nlm.views
  in
  let moves = vt.Nlm.vmoves in
  { entries; moves; hash = hash_entries entries moves }

let hash sk = sk.hash

let ind_of_sym = function
  | Nlm.In i -> IIn i
  | Nlm.Ch _ -> IWild
  | Nlm.St a -> ISt a
  | Nlm.Open -> IOpen
  | Nlm.Close -> IClose

let serialize sk =
  let buf = Buffer.create 256 in
  let sym s =
    match ind_of_sym s with
    | IIn i -> Buffer.add_string buf (Printf.sprintf "i%d," i)
    | IWild -> Buffer.add_string buf "?,"
    | ISt a -> Buffer.add_string buf (Printf.sprintf "a%d," a)
    | IOpen -> Buffer.add_string buf "<"
    | IClose -> Buffer.add_string buf ">"
  in
  Array.iter
    (fun e ->
      match e with
      | Collapsed -> Buffer.add_string buf "|?"
      | View v ->
          Buffer.add_string buf (Printf.sprintf "|S%d[" v.state);
          Array.iter (fun d -> Buffer.add_string buf (if d = 1 then "+" else "-")) v.dirs;
          Buffer.add_string buf "]";
          Array.iter
            (fun cell ->
              Buffer.add_string buf "{";
              List.iter sym (Nlm.syms_of_cell cell);
              Buffer.add_string buf "}")
            v.cells)
    sk.entries;
  Buffer.add_string buf "@";
  Array.iter
    (fun mv ->
      Buffer.add_string buf "(";
      Array.iter (fun d -> Buffer.add_string buf (string_of_int (d + 1))) mv;
      Buffer.add_string buf ")")
    sk.moves;
  Buffer.contents buf

(* Structural, choice-blind equality. All cell comparisons for one
   skeleton pair share a memo table: within a run cells share structure
   physically, across runs the (uid, uid) memo keeps the descent linear
   in the DAG size instead of exponential in the expansion. *)
let equal a b =
  a == b
  || (a.hash = b.hash
     && Array.length a.entries = Array.length b.entries
     && Array.length a.moves = Array.length b.moves
     && Array.for_all2 (fun x y -> x = y) a.moves b.moves
     &&
     let memo = Hashtbl.create 64 in
     let cell_eq = Nlm.cell_sk_equal_memo memo in
     Array.for_all2
       (fun ea eb ->
         match (ea, eb) with
         | Collapsed, Collapsed -> true
         | View va, View vb ->
             va.state = vb.state
             && va.dirs = vb.dirs
             && Array.length va.cells = Array.length vb.cells
             && Array.for_all2 cell_eq va.cells vb.cells
         | Collapsed, View _ | View _, Collapsed -> false)
       a.entries b.entries)

(* merge the cells' sorted distinct position arrays *)
let entry_positions_arr = function
  | Collapsed -> [||]
  | View v -> Nlm.merge_input_positions (Array.map Nlm.cell_input_positions v.cells)

let positions_of_entry e = Array.to_list (entry_positions_arr e)

let mem_sorted arr i =
  let lo = ref 0 and hi = ref (Array.length arr) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if arr.(mid) < i then lo := mid + 1 else hi := mid
  done;
  !lo < Array.length arr && arr.(!lo) = i

(* the nonempty per-entry position sets, computed once per query *)
let position_sets sk =
  Array.to_list sk.entries
  |> List.filter_map (fun e ->
         match entry_positions_arr e with [||] -> None | ps -> Some ps)

let compared sk i i' =
  Array.exists
    (fun e ->
      let ps = entry_positions_arr e in
      mem_sorted ps i && mem_sorted ps i')
    sk.entries

let compared_pairs sk =
  let tbl = Hashtbl.create 64 in
  Array.iter
    (fun e ->
      let ps = entry_positions_arr e in
      let n = Array.length ps in
      for idx = 0 to n - 1 do
        for idx' = idx + 1 to n - 1 do
          Hashtbl.replace tbl (ps.(idx), ps.(idx')) ()
        done
      done)
    sk.entries;
  Hashtbl.fold (fun pr () acc -> pr :: acc) tbl [] |> List.sort compare

let phi_compared_count sk ~m ~phi =
  let sets = position_sets sk in
  let count = ref 0 in
  for i = 1 to m do
    let j = m + Util.Permutation.apply phi i in
    if List.exists (fun ps -> mem_sorted ps i && mem_sorted ps j) sets then incr count
  done;
  !count

let uncompared_phi_indices sk ~m ~phi =
  let sets = position_sets sk in
  List.filter
    (fun i ->
      let j = m + Util.Permutation.apply phi i in
      not (List.exists (fun ps -> mem_sorted ps i && mem_sorted ps j) sets))
    (List.init m (fun i0 -> i0 + 1))

let fnv_prime = 0x100000001b3L
let fnv_init = 0xcbf29ce484222325L

let fnv64 s =
  let h = ref fnv_init in
  String.iter
    (fun c ->
      h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) fnv_prime)
    s;
  !h

(* 64-bit structural content digest: FNV-1a over the per-entry states,
   directions, choice-blind cell hashes and the move matrix — the same
   stream [hash] folds, through a different and wider mixer. Costs
   O(entries x heads), never the flat cell expansion (which can be
   exponential in the trace depth — the reason [serialize] must stay
   out of the census path). Equal skeletons digest equal; distinct
   classes collide only if the underlying rolling cell hashes collide
   under two independent mixers — beyond-astronomically unlikely, and
   the property suite pins digest-keyed censuses to the exact
   structural-equality ones. *)
let digest sk =
  let h = ref fnv_init in
  let feed x =
    for k = 0 to 7 do
      h :=
        Int64.mul
          (Int64.logxor !h (Int64.of_int ((x lsr (8 * k)) land 0xff)))
          fnv_prime
    done
  in
  feed (Array.length sk.entries);
  Array.iter
    (fun e ->
      match e with
      | Collapsed -> feed (-1)
      | View v ->
          feed v.state;
          feed (Array.length v.dirs);
          Array.iter feed v.dirs;
          Array.iter (fun c -> feed (Nlm.cell_sk_hash c)) v.cells)
    sk.entries;
  Array.iter (fun mv -> Array.iter feed mv) sk.moves;
  !h

module Intern = struct
  type stats = {
    classes : int;
    front_hits : int;
    spill_reads : int;
    spill_writes : int;
    spill_bytes : int;
    resident_reps : int;
  }

  type backend = Ram | Spill of { spec : Tape.Device.spec; recent : int }

  (* The spill tier stores one fixed-size slot per class on a
     [Tape.Device] — open addressing keyed on the skeleton hash, slot
     payloads Tuple-packed [(hash, id, digest sk, entry count)] so
     encodings are byte-comparable and self-delimiting. RAM holds only
     a fixed bloom filter, a bounded FIFO front of recently interned
     representatives (structural-equality fast path), and scalar state:
     per-class RAM cost is zero, which is the bounded-memory
     guarantee. *)
  type spill = {
    device : string Tape.Device.t;
    mutable capacity : int;  (* slots in the live region; power of two *)
    mutable base : int;  (* first device position of the live region *)
    bloom : Bytes.t;
    recent : (int, (t * int) list ref) Hashtbl.t;
    order : (int * int) Queue.t;  (* (hash, id), insertion order *)
    recent_cap : int;
    mutable resident : int;
    mutable front_hits : int;
    mutable reads : int;
    mutable writes : int;
    mutable bytes : int;
  }

  type tier = Buckets of (int, (t * int) list ref) Hashtbl.t | Store of spill
  type table = { tier : tier; mutable next : int }

  let bloom_bits = 1 lsl 17
  let initial_capacity = 1 lsl 10

  let create ?(size = 64) ?(backend = Ram) () =
    match backend with
    | Ram -> { tier = Buckets (Hashtbl.create size); next = 0 }
    | Spill { spec; recent } ->
        let device =
          Tape.Device.instantiate
            ~codec:(Tape.Device.Codec.tuple_string ~max_len:48)
            spec ~blank:"" ~name:"skeleton-intern"
        in
        {
          tier =
            Store
              {
                device;
                capacity = initial_capacity;
                base = 0;
                bloom = Bytes.make (bloom_bits / 8) '\000';
                recent = Hashtbl.create (2 * recent);
                order = Queue.create ();
                recent_cap = max 1 recent;
                resident = 0;
                front_hits = 0;
                reads = 0;
                writes = 0;
                bytes = 0;
              };
          next = 0;
        }

  let count tbl = tbl.next

  let stats tbl =
    match tbl.tier with
    | Buckets _ ->
        {
          classes = tbl.next;
          front_hits = 0;
          spill_reads = 0;
          spill_writes = 0;
          spill_bytes = 0;
          resident_reps = tbl.next;
        }
    | Store s ->
        {
          classes = tbl.next;
          front_hits = s.front_hits;
          spill_reads = s.reads;
          spill_writes = s.writes;
          spill_bytes = s.bytes;
          resident_reps = s.resident;
        }

  let close tbl =
    match tbl.tier with Buckets _ -> () | Store s -> Tape.Device.close s.device

  (* mix the (structured, low-entropy) content hash before using it for
     bloom bits and probe starts *)
  let scramble h =
    let h = h * 0x9E3779B1 in
    let h = h lxor (h lsr 21) in
    let h = h * 0x45D9F3B in
    (h lxor (h lsr 17)) land max_int

  let bloom_probe s h on_bit =
    let g = scramble h in
    let b1 = g mod bloom_bits and b2 = g / bloom_bits mod bloom_bits in
    on_bit s b1 && on_bit s b2

  let bloom_get s bit =
    Char.code (Bytes.get s.bloom (bit / 8)) land (1 lsl (bit mod 8)) <> 0

  let bloom_set s bit =
    Bytes.set s.bloom (bit / 8)
      (Char.chr (Char.code (Bytes.get s.bloom (bit / 8)) lor (1 lsl (bit mod 8))))

  (* slots carry the digest truncated to OCaml's 63 int bits (the
     tuple codec is int-native); both pack and probe truncate the same
     way, so the compare domain is consistent and the slot identity is
     the ~126-bit (hash, digest mod 2^63) pair *)
  let digest_slot d = Int64.to_int d

  let slot_pack ~hash ~id ~digest ~len =
    Tape.Tuple.(pack [ Int hash; Int id; Int (digest_slot digest); Int len ])

  let slot_unpack payload =
    match Tape.Tuple.unpack payload with
    | Tape.Tuple.[ Int hash; Int id; Int digest; Int len ] ->
        (hash, id, digest, len)
    | _ -> invalid_arg "Skeleton.Intern: malformed spill slot"

  let read_slot s pos =
    s.reads <- s.reads + 1;
    Obs.Counters.add_census_spill_reads 1;
    Tape.Device.get s.device pos

  let write_slot s pos payload =
    s.writes <- s.writes + 1;
    s.bytes <- s.bytes + String.length payload;
    Obs.Counters.add_census_spill_writes 1;
    Obs.Counters.add_census_spill_bytes (String.length payload);
    Tape.Device.set s.device pos payload

  (* place a packed slot into the live region by linear probing; load
     factor is kept <= 1/2, so an empty slot always exists *)
  let place s ~hash payload =
    let mask = s.capacity - 1 in
    let rec probe i =
      let pos = s.base + ((scramble hash + i) land mask) in
      if Tape.Device.get s.device pos = "" then write_slot s pos payload
      else probe (i + 1)
    in
    probe 0

  let grow s =
    let old_base = s.base and old_cap = s.capacity in
    s.base <- old_base + old_cap;
    s.capacity <- 2 * old_cap;
    for i = 0 to old_cap - 1 do
      let payload = read_slot s (old_base + i) in
      if payload <> "" then begin
        let hash, _, _, _ = slot_unpack payload in
        place s ~hash payload;
        (* blank the migrated slot so [verify]/scrub walks stay clean *)
        Tape.Device.set s.device (old_base + i) ""
      end
    done

  let front_add s sk id =
    (if s.resident >= s.recent_cap then
       match Queue.take_opt s.order with
       | None -> ()
       | Some (h, old_id) -> (
           s.resident <- s.resident - 1;
           match Hashtbl.find_opt s.recent h with
           | None -> ()
           | Some bucket -> (
               bucket := List.filter (fun (_, i) -> i <> old_id) !bucket;
               match !bucket with [] -> Hashtbl.remove s.recent h | _ -> ())));
    (match Hashtbl.find_opt s.recent sk.hash with
    | Some bucket -> bucket := (sk, id) :: !bucket
    | None -> Hashtbl.add s.recent sk.hash (ref [ (sk, id) ]));
    Queue.add (sk.hash, id) s.order;
    s.resident <- s.resident + 1

  let intern_spill tbl s sk =
    match
      Option.bind
        (Hashtbl.find_opt s.recent sk.hash)
        (fun bucket -> List.find_opt (fun (rep, _) -> equal rep sk) !bucket)
    with
    | Some (rep, id) ->
        s.front_hits <- s.front_hits + 1;
        (id, rep)
    | None ->
        let fresh () =
          let id = tbl.next in
          tbl.next <- id + 1;
          Obs.Counters.add_census_classes 1;
          if 2 * (tbl.next + 1) > s.capacity then grow s;
          place s ~hash:sk.hash
            (slot_pack ~hash:sk.hash ~id ~digest:(digest sk)
               ~len:(Array.length sk.entries));
          let g = scramble sk.hash in
          bloom_set s (g mod bloom_bits);
          bloom_set s (g / bloom_bits mod bloom_bits);
          front_add s sk id;
          (id, sk)
        in
        if not (bloom_probe s sk.hash bloom_get) then fresh ()
        else begin
          (* maybe on disk: probe the live region for a digest match *)
          let dslot = digest_slot (digest sk) and len = Array.length sk.entries in
          let mask = s.capacity - 1 in
          let rec probe i =
            let pos = s.base + ((scramble sk.hash + i) land mask) in
            let payload = read_slot s pos in
            if payload = "" then fresh ()
            else
              let h', id', d', l' = slot_unpack payload in
              if h' = sk.hash && d' = dslot && l' = len then begin
                front_add s sk id';
                (id', sk)
              end
              else probe (i + 1)
          in
          probe 0
        end

  let intern tbl sk =
    match tbl.tier with
    | Store s -> intern_spill tbl s sk
    | Buckets buckets -> (
        match Hashtbl.find_opt buckets sk.hash with
        | Some bucket -> (
            match List.find_opt (fun (rep, _) -> equal rep sk) !bucket with
            | Some (rep, id) -> (id, rep)
            | None ->
                let id = tbl.next in
                tbl.next <- id + 1;
                Obs.Counters.add_census_classes 1;
                bucket := (sk, id) :: !bucket;
                (id, sk))
        | None ->
            let id = tbl.next in
            tbl.next <- id + 1;
            Obs.Counters.add_census_classes 1;
            Hashtbl.add buckets sk.hash (ref [ (sk, id) ]);
            (id, sk))
end

let monotone_partition_upper seq =
  (* Greedy: maintain chains, each ascending or descending (direction
     decided by its second element). Append to the chain whose tail is
     closest while staying consistent; otherwise open a new chain. *)
  let chains = ref [] in
  (* chain = (last, direction) with direction 0 = undecided, ±1 *)
  List.iter
    (fun x ->
      let best = ref None in
      List.iteri
        (fun idx (last, dirn) ->
          let ok =
            match dirn with
            | 0 -> true
            | 1 -> x >= last
            | _ -> x <= last
          in
          if ok then begin
            let badness = abs (x - last) in
            match !best with
            | Some (_, b) when b <= badness -> ()
            | Some _ | None -> best := Some (idx, badness)
          end)
        !chains;
      match !best with
      | Some (idx, _) ->
          chains :=
            List.mapi
              (fun k (last, dirn) ->
                if k = idx then
                  let dirn' =
                    if dirn <> 0 then dirn
                    else if x > last then 1
                    else if x < last then -1
                    else 0
                  in
                  (x, dirn')
                else (last, dirn))
              !chains
      | None -> chains := (x, 0) :: !chains)
    seq;
  List.length !chains

let replays_to ~machine ~values ~choices sk =
  let tr = Nlm.run machine ~values ~choices in
  equal (of_trace tr) sk

let monotone_partition_exact ?(max_n = 16) seq =
  let arr = Array.of_list seq in
  let n = Array.length arr in
  if n > max_n then invalid_arg "Skeleton.monotone_partition_exact: too long";
  if n = 0 then 0
  else begin
    (* can [arr] be covered by k monotone chains? DFS over assignments;
       chains are (last, direction) with direction 0 = undecided. Fresh
       chains are opened in canonical order to kill symmetry. *)
    let feasible k =
      let last = Array.make k 0 and dirn = Array.make k 2 in
      (* dirn: 2 = unopened, 0 = undecided, ±1 *)
      let rec go i =
        i = n
        || begin
             let x = arr.(i) in
             let rec try_chain c opened_fresh =
               c < k
               && begin
                    let ok, new_dirn =
                      match dirn.(c) with
                      | 2 -> (not opened_fresh, 0)
                      | 0 ->
                          if x > last.(c) then (true, 1)
                          else if x < last.(c) then (true, -1)
                          else (true, 0)
                      | d ->
                          if d = 1 then (x >= last.(c), 1) else (x <= last.(c), -1)
                    in
                    (if ok then begin
                       let saved_l = last.(c) and saved_d = dirn.(c) in
                       last.(c) <- x;
                       dirn.(c) <- new_dirn;
                       let r = go (i + 1) in
                       last.(c) <- saved_l;
                       dirn.(c) <- saved_d;
                       r
                     end
                     else false)
                    || try_chain (c + 1) (opened_fresh || dirn.(c) = 2)
                  end
             in
             try_chain 0 false
           end
      in
      go 0
    in
    let rec find k = if feasible k then k else find (k + 1) in
    find 1
  end

let list_position_sequence (c : Nlm.config) tau =
  if tau < 1 || tau > Array.length c.Nlm.contents then
    invalid_arg "Skeleton.list_position_sequence";
  Array.to_list c.Nlm.contents.(tau - 1) |> List.concat_map Nlm.cell_inputs
