type ind_sym = IIn of int | IWild | ISt of int | IOpen | IClose

type entry =
  | View of { state : int; dirs : int array; cells : Nlm.cell array }
  | Collapsed

type t = { entries : entry array; moves : int array array; hash : int }

(* Deterministic skeleton hash: a function of the choice-blind content
   only (cell sk-hashes are rolling hashes of the flattened strings, so
   they are stable across runs, processes and domains). Structurally
   equal skeletons hash equal; the census and the intern table key on
   this. *)
let mix h x = (h * 0x5851F42D4C957F2D) + x

let hash_entries entries moves =
  let h = ref 0x9E3779B9 in
  Array.iter
    (fun e ->
      match e with
      | Collapsed -> h := mix !h 1
      | View v ->
          h := mix (mix !h 2) v.state;
          Array.iter (fun d -> h := mix !h (d + 2)) v.dirs;
          Array.iter (fun c -> h := mix !h (Nlm.cell_sk_hash c)) v.cells)
    entries;
  Array.iter (fun mv -> Array.iter (fun d -> h := mix !h (d + 5)) mv) moves;
  !h

let view_of_config (c : Nlm.config) =
  View
    {
      state = c.Nlm.state;
      dirs = Array.copy c.Nlm.head_dir;
      cells = Nlm.current_cells c;
    }

let of_trace (tr : Nlm.trace) =
  let n = Array.length tr.Nlm.configs in
  let entries =
    Array.init n (fun j ->
        if j = 0 then view_of_config tr.Nlm.configs.(0)
        else begin
          let mv = tr.Nlm.moves.(j - 1) in
          if Array.exists (fun d -> d <> 0) mv then view_of_config tr.Nlm.configs.(j)
          else Collapsed
        end)
  in
  let moves = Array.map Array.copy tr.Nlm.moves in
  { entries; moves; hash = hash_entries entries moves }

(* The fast path: a view run already recorded exactly the per-config
   data a skeleton keeps, with freshly allocated arrays we may own. *)
let of_views (vt : Nlm.view_trace) =
  let entries =
    Array.mapi
      (fun j (v : Nlm.view) ->
        if j = 0 || Array.exists (fun d -> d <> 0) vt.Nlm.vmoves.(j - 1) then
          View { state = v.Nlm.vstate; dirs = v.Nlm.vdirs; cells = v.Nlm.vcells }
        else Collapsed)
      vt.Nlm.views
  in
  let moves = vt.Nlm.vmoves in
  { entries; moves; hash = hash_entries entries moves }

let hash sk = sk.hash

let ind_of_sym = function
  | Nlm.In i -> IIn i
  | Nlm.Ch _ -> IWild
  | Nlm.St a -> ISt a
  | Nlm.Open -> IOpen
  | Nlm.Close -> IClose

let serialize sk =
  let buf = Buffer.create 256 in
  let sym s =
    match ind_of_sym s with
    | IIn i -> Buffer.add_string buf (Printf.sprintf "i%d," i)
    | IWild -> Buffer.add_string buf "?,"
    | ISt a -> Buffer.add_string buf (Printf.sprintf "a%d," a)
    | IOpen -> Buffer.add_string buf "<"
    | IClose -> Buffer.add_string buf ">"
  in
  Array.iter
    (fun e ->
      match e with
      | Collapsed -> Buffer.add_string buf "|?"
      | View v ->
          Buffer.add_string buf (Printf.sprintf "|S%d[" v.state);
          Array.iter (fun d -> Buffer.add_string buf (if d = 1 then "+" else "-")) v.dirs;
          Buffer.add_string buf "]";
          Array.iter
            (fun cell ->
              Buffer.add_string buf "{";
              List.iter sym (Nlm.syms_of_cell cell);
              Buffer.add_string buf "}")
            v.cells)
    sk.entries;
  Buffer.add_string buf "@";
  Array.iter
    (fun mv ->
      Buffer.add_string buf "(";
      Array.iter (fun d -> Buffer.add_string buf (string_of_int (d + 1))) mv;
      Buffer.add_string buf ")")
    sk.moves;
  Buffer.contents buf

(* Structural, choice-blind equality. All cell comparisons for one
   skeleton pair share a memo table: within a run cells share structure
   physically, across runs the (uid, uid) memo keeps the descent linear
   in the DAG size instead of exponential in the expansion. *)
let equal a b =
  a == b
  || (a.hash = b.hash
     && Array.length a.entries = Array.length b.entries
     && Array.length a.moves = Array.length b.moves
     && Array.for_all2 (fun x y -> x = y) a.moves b.moves
     &&
     let memo = Hashtbl.create 64 in
     let cell_eq = Nlm.cell_sk_equal_memo memo in
     Array.for_all2
       (fun ea eb ->
         match (ea, eb) with
         | Collapsed, Collapsed -> true
         | View va, View vb ->
             va.state = vb.state
             && va.dirs = vb.dirs
             && Array.length va.cells = Array.length vb.cells
             && Array.for_all2 cell_eq va.cells vb.cells
         | Collapsed, View _ | View _, Collapsed -> false)
       a.entries b.entries)

(* merge the cells' sorted distinct position arrays *)
let entry_positions_arr = function
  | Collapsed -> [||]
  | View v -> Nlm.merge_input_positions (Array.map Nlm.cell_input_positions v.cells)

let positions_of_entry e = Array.to_list (entry_positions_arr e)

let mem_sorted arr i =
  let lo = ref 0 and hi = ref (Array.length arr) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if arr.(mid) < i then lo := mid + 1 else hi := mid
  done;
  !lo < Array.length arr && arr.(!lo) = i

(* the nonempty per-entry position sets, computed once per query *)
let position_sets sk =
  Array.to_list sk.entries
  |> List.filter_map (fun e ->
         match entry_positions_arr e with [||] -> None | ps -> Some ps)

let compared sk i i' =
  Array.exists
    (fun e ->
      let ps = entry_positions_arr e in
      mem_sorted ps i && mem_sorted ps i')
    sk.entries

let compared_pairs sk =
  let tbl = Hashtbl.create 64 in
  Array.iter
    (fun e ->
      let ps = entry_positions_arr e in
      let n = Array.length ps in
      for idx = 0 to n - 1 do
        for idx' = idx + 1 to n - 1 do
          Hashtbl.replace tbl (ps.(idx), ps.(idx')) ()
        done
      done)
    sk.entries;
  Hashtbl.fold (fun pr () acc -> pr :: acc) tbl [] |> List.sort compare

let phi_compared_count sk ~m ~phi =
  let sets = position_sets sk in
  let count = ref 0 in
  for i = 1 to m do
    let j = m + Util.Permutation.apply phi i in
    if List.exists (fun ps -> mem_sorted ps i && mem_sorted ps j) sets then incr count
  done;
  !count

let uncompared_phi_indices sk ~m ~phi =
  let sets = position_sets sk in
  List.filter
    (fun i ->
      let j = m + Util.Permutation.apply phi i in
      not (List.exists (fun ps -> mem_sorted ps i && mem_sorted ps j) sets))
    (List.init m (fun i0 -> i0 + 1))

module Intern = struct
  type table = { buckets : (int, (t * int) list ref) Hashtbl.t; mutable next : int }

  let create ?(size = 64) () = { buckets = Hashtbl.create size; next = 0 }
  let count tbl = tbl.next

  let intern tbl sk =
    match Hashtbl.find_opt tbl.buckets sk.hash with
    | Some bucket -> (
        match List.find_opt (fun (rep, _) -> equal rep sk) !bucket with
        | Some (rep, id) -> (id, rep)
        | None ->
            let id = tbl.next in
            tbl.next <- id + 1;
            bucket := (sk, id) :: !bucket;
            (id, sk))
    | None ->
        let id = tbl.next in
        tbl.next <- id + 1;
        Hashtbl.add tbl.buckets sk.hash (ref [ (sk, id) ]);
        (id, sk)
end

let monotone_partition_upper seq =
  (* Greedy: maintain chains, each ascending or descending (direction
     decided by its second element). Append to the chain whose tail is
     closest while staying consistent; otherwise open a new chain. *)
  let chains = ref [] in
  (* chain = (last, direction) with direction 0 = undecided, ±1 *)
  List.iter
    (fun x ->
      let best = ref None in
      List.iteri
        (fun idx (last, dirn) ->
          let ok =
            match dirn with
            | 0 -> true
            | 1 -> x >= last
            | _ -> x <= last
          in
          if ok then begin
            let badness = abs (x - last) in
            match !best with
            | Some (_, b) when b <= badness -> ()
            | Some _ | None -> best := Some (idx, badness)
          end)
        !chains;
      match !best with
      | Some (idx, _) ->
          chains :=
            List.mapi
              (fun k (last, dirn) ->
                if k = idx then
                  let dirn' =
                    if dirn <> 0 then dirn
                    else if x > last then 1
                    else if x < last then -1
                    else 0
                  in
                  (x, dirn')
                else (last, dirn))
              !chains
      | None -> chains := (x, 0) :: !chains)
    seq;
  List.length !chains

let replays_to ~machine ~values ~choices sk =
  let tr = Nlm.run machine ~values ~choices in
  equal (of_trace tr) sk

let monotone_partition_exact ?(max_n = 16) seq =
  let arr = Array.of_list seq in
  let n = Array.length arr in
  if n > max_n then invalid_arg "Skeleton.monotone_partition_exact: too long";
  if n = 0 then 0
  else begin
    (* can [arr] be covered by k monotone chains? DFS over assignments;
       chains are (last, direction) with direction 0 = undecided. Fresh
       chains are opened in canonical order to kill symmetry. *)
    let feasible k =
      let last = Array.make k 0 and dirn = Array.make k 2 in
      (* dirn: 2 = unopened, 0 = undecided, ±1 *)
      let rec go i =
        i = n
        || begin
             let x = arr.(i) in
             let rec try_chain c opened_fresh =
               c < k
               && begin
                    let ok, new_dirn =
                      match dirn.(c) with
                      | 2 -> (not opened_fresh, 0)
                      | 0 ->
                          if x > last.(c) then (true, 1)
                          else if x < last.(c) then (true, -1)
                          else (true, 0)
                      | d ->
                          if d = 1 then (x >= last.(c), 1) else (x <= last.(c), -1)
                    in
                    (if ok then begin
                       let saved_l = last.(c) and saved_d = dirn.(c) in
                       last.(c) <- x;
                       dirn.(c) <- new_dirn;
                       let r = go (i + 1) in
                       last.(c) <- saved_l;
                       dirn.(c) <- saved_d;
                       r
                     end
                     else false)
                    || try_chain (c + 1) (opened_fresh || dirn.(c) = 2)
                  end
             in
             try_chain 0 false
           end
      in
      go 0
    in
    let rec find k = if feasible k then k else find (k + 1) in
    find 1
  end

let list_position_sequence (c : Nlm.config) tau =
  if tau < 1 || tau > Array.length c.Nlm.contents then
    invalid_arg "Skeleton.list_position_sequence";
  Array.to_list c.Nlm.contents.(tau - 1) |> List.concat_map Nlm.cell_inputs
