type 'v check = values:'v array -> cells:Nlm.cell array -> bool

type 'v step = {
  movements : Nlm.movement array;  (* raw, pre-clamp *)
  check : 'v check option;
  dirs_before : int array;
}

type 'v t = {
  lists : int;
  input_length : int;
  pilot_machine : unit Nlm.t;
  pilot_values : unit array;
  mutable pilot : Nlm.config;
  mutable steps : 'v step list;  (* reversed *)
  mutable count : int;
}

let create ~lists ~input_length () =
  let pilot_machine =
    Nlm.make ~name:"pilot" ~lists ~input_length ~num_choices:1 ~state_count:1
      ~initial:0
      ~is_final:(fun _ -> false)
      ~is_accepting:(fun _ -> false)
      ~alpha:(fun ~values:_ ~state:_ ~cells:_ ~choice:_ ->
        invalid_arg "Plan: pilot alpha placeholder")
  in
  {
    lists;
    input_length;
    pilot_machine;
    pilot_values = Array.make input_length ();
    pilot = Nlm.initial_config pilot_machine;
    steps = [];
    count = 0;
  }

let cells p = Nlm.current_cells p.pilot
let positions p = Array.copy p.pilot.Nlm.pos
let dirs p = Array.copy p.pilot.Nlm.head_dir

let list_length p tau =
  if tau < 1 || tau > p.lists then invalid_arg "Plan.list_length";
  Array.length p.pilot.Nlm.contents.(tau - 1)

let steps_planned p = p.count
let reversals_planned p = Array.fold_left ( + ) 0 p.pilot.Nlm.revs

let move p ?check movements =
  if Array.length movements <> p.lists then invalid_arg "Plan.move: arity";
  let dirs_before = Array.copy p.pilot.Nlm.head_dir in
  (* pilot-execute with a throwaway single-step machine *)
  let pending = { Nlm.next_state = 0; movements } in
  let machine =
    {
      p.pilot_machine with
      Nlm.alpha = (fun ~values:_ ~state:_ ~cells:_ ~choice:_ -> pending);
    }
  in
  let c', _mv = Nlm.step machine ~values:p.pilot_values p.pilot ~choice:0 in
  p.pilot <- c';
  p.steps <- { movements; check; dirs_before } :: p.steps;
  p.count <- p.count + 1

let neutral p =
  Array.map (fun d -> { Nlm.dir = d; move = false }) p.pilot.Nlm.head_dir

let pause p ?check () = move p ?check (neutral p)

let advance p ~tau ~dir =
  if tau < 1 || tau > p.lists then invalid_arg "Plan.advance: tau";
  if dir <> 1 && dir <> -1 then invalid_arg "Plan.advance: dir";
  let pos = p.pilot.Nlm.pos.(tau - 1) in
  let len = Array.length p.pilot.Nlm.contents.(tau - 1) in
  if (pos = 1 && dir = -1) || (pos = len && dir = 1) then
    invalid_arg "Plan.advance: head at list end";
  let movements = neutral p in
  movements.(tau - 1) <- { Nlm.dir; move = true };
  move p movements

let walk_until p ~tau ~dir pred =
  let fuel = ref (2 * (list_length p tau + 2)) in
  let rec go () =
    if pred (cells p).(tau - 1) then ()
    else begin
      decr fuel;
      if !fuel < 0 then failwith "Plan.walk_until: target not found";
      (try advance p ~tau ~dir
       with Invalid_argument _ -> failwith "Plan.walk_until: hit list end");
      go ()
    end
  in
  go ()

let rewind p ~tau =
  while p.pilot.Nlm.pos.(tau - 1) > 1 do
    advance p ~tau ~dir:(-1)
  done

let id_at p ~tau =
  if tau < 1 || tau > p.lists then invalid_arg "Plan.id_at";
  p.pilot.Nlm.ids.(tau - 1).(p.pilot.Nlm.pos.(tau - 1) - 1)

let id_at_index p ~tau ~index =
  if tau < 1 || tau > p.lists then invalid_arg "Plan.id_at_index";
  let arr = p.pilot.Nlm.ids.(tau - 1) in
  if index < 1 || index > Array.length arr then
    invalid_arg "Plan.id_at_index: index out of range";
  arr.(index - 1)

let goto p ~tau ~id =
  let arr = p.pilot.Nlm.ids.(tau - 1) in
  let target = ref None in
  Array.iteri (fun j x -> if x = id then target := Some (j + 1)) arr;
  match !target with
  | None -> failwith "Plan.goto: id not found"
  | Some idx ->
      let dir = if idx > p.pilot.Nlm.pos.(tau - 1) then 1 else -1 in
      while p.pilot.Nlm.pos.(tau - 1) <> idx do
        advance p ~tau ~dir
      done

let contains_input i cell = Nlm.cell_mentions cell i

let check_inputs_equal p ~eq i j =
  let cs = cells p in
  let visible k = Array.exists (contains_input k) cs in
  if not (visible i) then
    invalid_arg (Printf.sprintf "Plan.check_inputs_equal: In %d not visible" i);
  if not (visible j) then
    invalid_arg (Printf.sprintf "Plan.check_inputs_equal: In %d not visible" j);
  let check ~values ~cells =
    let find k =
      if Array.exists (contains_input k) cells then Some values.(k - 1) else None
    in
    match (find i, find j) with
    | Some a, Some b -> eq a b
    | None, _ | _, None -> false
  in
  pause p ~check ()

let build_choice_dispatch planners ~name ~accept_at_end =
  (match planners with [] -> invalid_arg "Plan.build_choice_dispatch: empty" | _ -> ());
  let first = List.hd planners in
  List.iter
    (fun p ->
      if p.lists <> first.lists || p.input_length <> first.input_length then
        invalid_arg "Plan.build_choice_dispatch: planner shapes differ")
    planners;
  let scripts =
    Array.of_list (List.map (fun p -> Array.of_list (List.rev p.steps)) planners)
  in
  let k = Array.length scripts in
  let stride = 1 + Array.fold_left (fun acc s -> max acc (Array.length s)) 0 scripts in
  (* state encoding: 0 = dispatch; 1 + c*stride + i = step i of script c;
     then the two sinks *)
  let accept_state = 1 + (k * stride) in
  let reject_state = accept_state + 1 in
  let neutral_initial = Array.make first.lists { Nlm.dir = 1; move = false } in
  let alpha ~values ~state ~cells ~choice =
    if state = 0 then begin
      let c = choice mod k in
      if Array.length scripts.(c) = 0 then
        { Nlm.next_state = accept_state; movements = neutral_initial }
      else { Nlm.next_state = 1 + (c * stride); movements = neutral_initial }
    end
    else begin
      let c = (state - 1) / stride in
      let i = (state - 1) mod stride in
      let script = scripts.(c) in
      if i >= Array.length script then
        invalid_arg "dispatch alpha: past end of script"
      else begin
        let s = script.(i) in
        let ok = match s.check with None -> true | Some f -> f ~values ~cells in
        let at_end = i + 1 >= Array.length script in
        if ok then
          {
            Nlm.next_state = (if at_end then accept_state else state + 1);
            movements = s.movements;
          }
        else
          {
            Nlm.next_state = reject_state;
            movements =
              Array.map (fun d -> { Nlm.dir = d; move = false }) s.dirs_before;
          }
      end
    end
  in
  Nlm.make ~name ~lists:first.lists ~input_length:first.input_length
    ~num_choices:k
    ~state_count:(reject_state + 1)
    ~initial:0
    ~is_final:(fun s -> s >= accept_state)
    ~is_accepting:(fun s -> s = accept_state && accept_at_end)
    ~alpha

let build p ~name ~accept_at_end =
  let script = Array.of_list (List.rev p.steps) in
  let len = Array.length script in
  let accept_state = len in
  let reject_state = len + 1 in
  let alpha ~values ~state ~cells ~choice:_ =
    if state >= len then invalid_arg "scripted alpha: final state"
    else begin
      let s = script.(state) in
      let ok =
        match s.check with None -> true | Some f -> f ~values ~cells
      in
      if ok then { Nlm.next_state = state + 1; movements = s.movements }
      else
        {
          Nlm.next_state = reject_state;
          movements =
            Array.map (fun d -> { Nlm.dir = d; move = false }) s.dirs_before;
        }
    end
  in
  Nlm.make ~name ~lists:p.lists ~input_length:p.input_length ~num_choices:1
    ~state_count:(len + 2) ~initial:0
    ~is_final:(fun s -> s >= len)
    ~is_accepting:(fun s -> s = accept_state && accept_at_end)
    ~alpha
