type 'v check = values:'v array -> cells:Nlm.cell array -> bool

type 'v step = {
  movements : Nlm.movement array;  (* raw, pre-clamp *)
  check : 'v check option;
  dirs_before : int array;
}

(* The pilot configuration. Semantically this is exactly an
   [Nlm.config] driven by [Nlm.step], but materialized as one
   doubly-linked list of cells per tape: Definition 24(c) forces a
   write into every list whose head holds still, so under the array
   representation each planned step pays an O(list length) splice and a
   long plan goes quadratic (a staircase build at m = 64 spent ~14 s
   pilot-splicing ~40k-cell arrays). Here an insert at the cursor is
   O(1) and a planned step is O(lists), so plan time is O(steps) plus
   the O(distance) head walks the caller asks for. *)
type node = {
  nid : int;  (* the stable cell identity, = Nlm.config ids *)
  mutable ncell : Nlm.cell;
  mutable prev : node option;
  mutable next : node option;
}

type seq = {
  mutable first : node;
  mutable cur : node;  (* the node under the head *)
  mutable pos : int;  (* 1-based index of [cur] *)
  mutable len : int;
  mutable hdir : int;
  mutable srevs : int;
}

type 'v t = {
  lists : int;
  input_length : int;
  seqs : seq array;
  mutable next_id : int;
  mutable steps : 'v step list;  (* reversed *)
  mutable count : int;
}

let create ~lists ~input_length () =
  (* mirror [Nlm.initial_config]: list 1 holds one <In i> cell per
     input position, every other list one empty cell; ids count up
     list-major, exactly as the real initial configuration numbers
     them *)
  let next_id = ref 1 in
  let fresh_node cell =
    let id = !next_id in
    incr next_id;
    { nid = id; ncell = cell; prev = None; next = None }
  in
  let seq_of_cells cells =
    let first = fresh_node (List.hd cells) in
    let last = ref first in
    List.iter
      (fun c ->
        let n = fresh_node c in
        n.prev <- Some !last;
        !last.next <- Some n;
        last := n)
      (List.tl cells);
    {
      first;
      cur = first;
      pos = 1;
      len = List.length cells;
      hdir = 1;
      srevs = 0;
    }
  in
  let first_list =
    if input_length = 0 then [ Nlm.cell_of_syms [ Nlm.Open; Nlm.Close ] ]
    else
      List.init input_length (fun i0 ->
          Nlm.cell_of_syms [ Nlm.Open; Nlm.In (i0 + 1); Nlm.Close ])
  in
  let seqs =
    Array.init lists (fun tau ->
        if tau = 0 then seq_of_cells first_list
        else seq_of_cells [ Nlm.cell_of_syms [ Nlm.Open; Nlm.Close ] ])
  in
  { lists; input_length; seqs; next_id = !next_id; steps = []; count = 0 }

let cells p = Array.map (fun s -> s.cur.ncell) p.seqs
let positions p = Array.map (fun s -> s.pos) p.seqs
let dirs p = Array.map (fun s -> s.hdir) p.seqs

let list_length p tau =
  if tau < 1 || tau > p.lists then invalid_arg "Plan.list_length";
  p.seqs.(tau - 1).len

let steps_planned p = p.count
let reversals_planned p = Array.fold_left (fun a s -> a + s.srevs) 0 p.seqs

(* One pilot step, following [Nlm.step] symbol for symbol: clamp at
   list ends, and if any head moves or turns, write the forced cell
   into every list — overwrite-in-place under a moving head, insert at
   the cursor under a resting one (before it when the head faces
   right, after it when it faces left). *)
let pilot_step p movements =
  Array.iter
    (fun (e : Nlm.movement) ->
      if e.Nlm.dir <> -1 && e.Nlm.dir <> 1 then
        invalid_arg "Nlm.step: dir must be ±1")
    movements;
  let clamped =
    Array.mapi
      (fun tau (e : Nlm.movement) ->
        let s = p.seqs.(tau) in
        if s.pos = 1 && e.Nlm.dir = -1 && e.Nlm.move then
          { Nlm.dir = -1; move = false }
        else if s.pos = s.len && e.Nlm.dir = 1 && e.Nlm.move then
          { Nlm.dir = 1; move = false }
        else e)
      movements
  in
  let f =
    Array.mapi
      (fun tau (e : Nlm.movement) -> e.Nlm.move || e.Nlm.dir <> p.seqs.(tau).hdir)
      clamped
  in
  if Array.exists Fun.id f then begin
    let y = Nlm.written_cell ~state:0 ~comps:(cells p) ~choice:0 in
    Array.iteri
      (fun tau (e : Nlm.movement) ->
        let s = p.seqs.(tau) in
        if e.Nlm.move then begin
          (* overwrite: the cell keeps its identity, then the head
             steps off it (the clamp guarantees a neighbour exists) *)
          s.cur.ncell <- y;
          if e.Nlm.dir = 1 then begin
            s.cur <- Option.get s.cur.next;
            s.pos <- s.pos + 1
          end
          else begin
            s.cur <- Option.get s.cur.prev;
            s.pos <- s.pos - 1
          end
        end
        else begin
          let fresh = { nid = p.next_id; ncell = y; prev = None; next = None } in
          p.next_id <- p.next_id + 1;
          if s.hdir = 1 then begin
            (* insert before the cursor; the cursor's index shifts up *)
            fresh.prev <- s.cur.prev;
            fresh.next <- Some s.cur;
            (match s.cur.prev with
            | Some q -> q.next <- Some fresh
            | None -> s.first <- fresh);
            s.cur.prev <- Some fresh;
            s.pos <- s.pos + 1
          end
          else begin
            fresh.next <- s.cur.next;
            fresh.prev <- Some s.cur;
            (match s.cur.next with Some q -> q.prev <- Some fresh | None -> ());
            s.cur.next <- Some fresh
          end;
          s.len <- s.len + 1
        end;
        if e.Nlm.dir <> s.hdir then begin
          s.srevs <- s.srevs + 1;
          s.hdir <- e.Nlm.dir
        end)
      clamped
  end

let move p ?check movements =
  if Array.length movements <> p.lists then invalid_arg "Plan.move: arity";
  let dirs_before = dirs p in
  pilot_step p movements;
  p.steps <- { movements; check; dirs_before } :: p.steps;
  p.count <- p.count + 1

let neutral p = Array.map (fun s -> { Nlm.dir = s.hdir; move = false }) p.seqs

let pause p ?check () = move p ?check (neutral p)

let advance p ~tau ~dir =
  if tau < 1 || tau > p.lists then invalid_arg "Plan.advance: tau";
  if dir <> 1 && dir <> -1 then invalid_arg "Plan.advance: dir";
  let s = p.seqs.(tau - 1) in
  if (s.pos = 1 && dir = -1) || (s.pos = s.len && dir = 1) then
    invalid_arg "Plan.advance: head at list end";
  let movements = neutral p in
  movements.(tau - 1) <- { Nlm.dir; move = true };
  move p movements

let walk_until p ~tau ~dir pred =
  let fuel = ref (2 * (list_length p tau + 2)) in
  let rec go () =
    if pred (cells p).(tau - 1) then ()
    else begin
      decr fuel;
      if !fuel < 0 then failwith "Plan.walk_until: target not found";
      (try advance p ~tau ~dir
       with Invalid_argument _ -> failwith "Plan.walk_until: hit list end");
      go ()
    end
  in
  go ()

let rewind p ~tau =
  let s = p.seqs.(tau - 1) in
  while s.pos > 1 do
    advance p ~tau ~dir:(-1)
  done

let id_at p ~tau =
  if tau < 1 || tau > p.lists then invalid_arg "Plan.id_at";
  p.seqs.(tau - 1).cur.nid

(* Find the 1-based index of the node with identity [id], or None.
   O(len) pointer walk — gotos dominate it with their own O(distance)
   head walks, so there is nothing to save by indexing. *)
let index_of_id s id =
  let rec scan n i =
    if n.nid = id then Some i
    else match n.next with Some n' -> scan n' (i + 1) | None -> None
  in
  scan s.first 1

let id_at_index p ~tau ~index =
  if tau < 1 || tau > p.lists then invalid_arg "Plan.id_at_index";
  let s = p.seqs.(tau - 1) in
  if index < 1 || index > s.len then
    invalid_arg "Plan.id_at_index: index out of range";
  (* walk from the cursor when the target is nearby (the common case:
     the cell just spliced next to the head), else from the front *)
  let d = index - s.pos in
  let node =
    if abs d <= index - 1 then begin
      let n = ref s.cur in
      if d >= 0 then
        for _ = 1 to d do
          n := Option.get !n.next
        done
      else
        for _ = 1 to -d do
          n := Option.get !n.prev
        done;
      !n
    end
    else begin
      let n = ref s.first in
      for _ = 1 to index - 1 do
        n := Option.get !n.next
      done;
      !n
    end
  in
  node.nid

let goto p ~tau ~id =
  let s = p.seqs.(tau - 1) in
  match index_of_id s id with
  | None -> failwith "Plan.goto: id not found"
  | Some idx ->
      (* only head [tau] moves, so [idx] is stable during the walk:
         overwrites keep list [tau]'s length, and the forced inserts
         land on the other lists *)
      let dir = if idx > s.pos then 1 else -1 in
      while s.pos <> idx do
        advance p ~tau ~dir
      done

let contains_input i cell = Nlm.cell_mentions cell i

let check_inputs_equal p ~eq i j =
  let cs = cells p in
  let visible k = Array.exists (contains_input k) cs in
  if not (visible i) then
    invalid_arg (Printf.sprintf "Plan.check_inputs_equal: In %d not visible" i);
  if not (visible j) then
    invalid_arg (Printf.sprintf "Plan.check_inputs_equal: In %d not visible" j);
  let check ~values ~cells =
    let find k =
      if Array.exists (contains_input k) cells then Some values.(k - 1) else None
    in
    match (find i, find j) with
    | Some a, Some b -> eq a b
    | None, _ | _, None -> false
  in
  pause p ~check ()

let build_choice_dispatch planners ~name ~accept_at_end =
  (match planners with [] -> invalid_arg "Plan.build_choice_dispatch: empty" | _ -> ());
  let first = List.hd planners in
  List.iter
    (fun p ->
      if p.lists <> first.lists || p.input_length <> first.input_length then
        invalid_arg "Plan.build_choice_dispatch: planner shapes differ")
    planners;
  let scripts =
    Array.of_list (List.map (fun p -> Array.of_list (List.rev p.steps)) planners)
  in
  let k = Array.length scripts in
  let stride = 1 + Array.fold_left (fun acc s -> max acc (Array.length s)) 0 scripts in
  (* state encoding: 0 = dispatch; 1 + c*stride + i = step i of script c;
     then the two sinks *)
  let accept_state = 1 + (k * stride) in
  let reject_state = accept_state + 1 in
  let neutral_initial = Array.make first.lists { Nlm.dir = 1; move = false } in
  let alpha ~values ~state ~cells ~choice =
    if state = 0 then begin
      let c = choice mod k in
      if Array.length scripts.(c) = 0 then
        { Nlm.next_state = accept_state; movements = neutral_initial }
      else { Nlm.next_state = 1 + (c * stride); movements = neutral_initial }
    end
    else begin
      let c = (state - 1) / stride in
      let i = (state - 1) mod stride in
      let script = scripts.(c) in
      if i >= Array.length script then
        invalid_arg "dispatch alpha: past end of script"
      else begin
        let s = script.(i) in
        let ok = match s.check with None -> true | Some f -> f ~values ~cells in
        let at_end = i + 1 >= Array.length script in
        if ok then
          {
            Nlm.next_state = (if at_end then accept_state else state + 1);
            movements = s.movements;
          }
        else
          {
            Nlm.next_state = reject_state;
            movements =
              Array.map (fun d -> { Nlm.dir = d; move = false }) s.dirs_before;
          }
      end
    end
  in
  Nlm.make ~name ~lists:first.lists ~input_length:first.input_length
    ~num_choices:k
    ~state_count:(reject_state + 1)
    ~initial:0
    ~is_final:(fun s -> s >= accept_state)
    ~is_accepting:(fun s -> s = accept_state && accept_at_end)
    ~alpha

let build p ~name ~accept_at_end =
  let script = Array.of_list (List.rev p.steps) in
  let len = Array.length script in
  let accept_state = len in
  let reject_state = len + 1 in
  let alpha ~values ~state ~cells ~choice:_ =
    if state >= len then invalid_arg "scripted alpha: final state"
    else begin
      let s = script.(state) in
      let ok =
        match s.check with None -> true | Some f -> f ~values ~cells
      in
      if ok then { Nlm.next_state = state + 1; movements = s.movements }
      else
        {
          Nlm.next_state = reject_state;
          movements =
            Array.map (fun d -> { Nlm.dir = d; move = false }) s.dirs_before;
        }
    end
  in
  Nlm.make ~name ~lists:p.lists ~input_length:p.input_length ~num_choices:1
    ~state_count:(len + 2) ~initial:0
    ~is_final:(fun s -> s >= len)
    ~is_accepting:(fun s -> s = accept_state && accept_at_end)
    ~alpha
