(** Nondeterministic list machines (Definitions 14 and 24).

    An NLM has [t] lists whose cells store {e strings} over the machine
    alphabet [A = I ∪ C ∪ A ∪ {⟨,⟩}]. The transition function only
    chooses the new state and the head movements; whenever at least one
    head moves or turns, the string

    {v y = a ⟨x_1,p_1⟩ ⟨x_2,p_2⟩ … ⟨x_t,p_t⟩ ⟨c⟩ v}

    (current state, all cells under heads, nondeterministic choice) is
    written behind every head — either overwriting the current cell
    (when the head leaves it) or spliced in as a fresh cell. This forced
    write is what makes information flow trackable: every input value
    ever seen together flows into the same cell.

    Faithfulness notes. Cells store input {e positions} ([In i]), not
    values: the run supplies the value vector, so the same machine can
    be replayed on inputs that differ only at chosen positions — exactly
    what the composition lemma (Lemma 34) and the lower-bound adversary
    need. Head clamping at list ends, the three splice cases, and the
    position update table are implemented verbatim from Definition 24(c).

    Representation. A cell is a hash-consed DAG node, not a flat string:
    a written cell stores [a], {e references} to the component cells
    [x_τ], and [c]. Cell sizes grow like [t^O(r)] (Lemma 30), so the
    flat representation is exponential in the reversal count while the
    DAG write is O(t). Every node memoizes its flattened length, rolling
    content hashes (choice-sensitive and choice-blind), and the set of
    input positions it mentions; functions documented as "flattened
    view" walk the full expansion and cost [cell_size]. *)

type sym =
  | In of int  (** input number by 1-based input position *)
  | Ch of int  (** nondeterministic choice [c ∈ C], 0-based *)
  | St of int  (** abstract state *)
  | Open
  | Close

type cell
(** A cell content — a string over the alphabet, represented as a
    memoized DAG node. Two cells with the same flattened string are
    [cell_equal] regardless of how they were built. *)

and shape = Syms of sym array | Written of { state : int; comps : cell array; choice : int }
(** The top layer of a cell: either an explicit symbol string or a
    written tuple [a⟨x_1⟩…⟨x_t⟩⟨c⟩] referencing its components. *)

val cell_shape : cell -> shape

val cell_of_syms : sym list -> cell
(** Build a leaf cell from an explicit symbol string. *)

val written_cell : state:int -> comps:cell array -> choice:int -> cell
(** The forced-write node [a⟨x_1⟩…⟨x_t⟩⟨c⟩] of Definition 24(c) — the
    cell {!step} writes under every head whenever some head moves or
    turns. Exposed so {!Plan}'s pilot builds bit-identical cells
    without paying {!step}'s array splices. *)

val syms_of_cell : cell -> sym list
(** Flattened view: the full symbol string. Cost [cell_size]. *)

val cell_equal : cell -> cell -> bool
(** Structural equality of the flattened strings. O(1) on physically
    shared nodes and hash-mismatching nodes; memoized descent otherwise. *)

val cell_sk_equal : cell -> cell -> bool
(** Choice-blind equality: like {!cell_equal} but every [Ch _] matches
    every [Ch _] — the cell-level congruence of skeletons
    (Definition 28 wildcards the choices). *)

val cell_hash : cell -> int
(** Deterministic rolling hash of the flattened string. Equal cells
    hash equal; independent of construction history, process, domain. *)

val cell_sk_hash : cell -> int
(** Choice-blind variant of {!cell_hash}: invariant under replacing any
    [Ch c] by [Ch c']. *)

val cell_sk_equal_memo : ((int * int), bool) Hashtbl.t -> cell -> cell -> bool
(** {!cell_sk_equal} with a caller-owned memo table keyed on ordered
    uid pairs, so a batch of comparisons over structurally shared cells
    (all the entries of one skeleton pair) traverses each DAG node pair
    once. The table must not be shared across domains. *)

val merge_input_positions : int array array -> int array
(** Union of sorted distinct position arrays, sorted distinct. *)

val cell_uid : cell -> int
(** Process-global construction stamp, for physical-identity memo
    tables. NOT deterministic across runs — never expose it in output. *)

val cell_mentions : cell -> int -> bool
(** [cell_mentions c i] — does input position [i] occur anywhere in the
    flattened string? Binary search over the memoized position set. *)

val cell_input_positions : cell -> int array
(** Sorted distinct input positions occurring in the cell. The returned
    array is owned by the cell — do not mutate. *)

val cell_prefix_syms : cell -> int -> sym list
(** First [n] symbols of the flattened string, without materializing the
    rest. For bounded rendering. *)

val cell_suffix_syms : cell -> int -> sym list
(** Last [n] symbols of the flattened string, by a mirrored walk. *)

type movement = { dir : int; move : bool }
(** [dir ∈ {-1,+1}]; [move] is the Definition 14 move flag. *)

type transition = { next_state : int; movements : movement array }

type 'v alpha =
  values:'v array -> state:int -> cells:cell array -> choice:int -> transition
(** The transition function [alpha : (A minus B) x (A* )^t x C -> A x Movement^t].
    [values.(i-1)] resolves [In i]; [cells.(τ)] is the cell under head
    [τ+1]. Must be a pure function of the {e resolved} cell contents,
    the state, and the choice — it must not inspect positions beyond
    resolving them to values (the skeleton machinery checks replays for
    consistency). *)

type 'v t = {
  lists : int;  (** [t ≥ 1] *)
  input_length : int;  (** [m] *)
  num_choices : int;  (** [|C| ≥ 1]; 1 = deterministic *)
  state_count : int;  (** declared [|A|] = the [k] of the bound formulas *)
  initial : int;
  is_final : int -> bool;
  is_accepting : int -> bool;
  alpha : 'v alpha;
  name : string;
}

val make :
  name:string -> lists:int -> input_length:int -> num_choices:int ->
  state_count:int -> initial:int -> is_final:(int -> bool) ->
  is_accepting:(int -> bool) -> alpha:'v alpha -> 'v t
(** Validates the scalar parameters. @raise Invalid_argument. *)

(** {1 Configurations} *)

type config = {
  state : int;
  pos : int array;  (** 1-based head positions, per list *)
  head_dir : int array;  (** last head direction, [+1] initially *)
  contents : cell array array;  (** [contents.(τ).(j-1)] = cell [j] of list [τ+1] *)
  revs : int array;  (** direction changes so far, per list *)
  ids : int array array;  (** stable cell identities, parallel to
      [contents]: an overwritten cell keeps its id, a spliced-in cell
      gets a fresh one. Ids are an analysis aid (provenance tracking for
      planners and the adversary); they carry no semantics. *)
  next_id : int;
}

val initial_config : 'v t -> config
(** List 1 holds [⟨v_1⟩,…,⟨v_m⟩] as [⟨In i⟩] cells; other lists hold the
    single cell [⟨⟩]. *)

val current_cells : config -> cell array
(** The [t] cells under the heads. *)

val step : 'v t -> values:'v array -> config -> choice:int -> config * int array
(** One step (Definition 24(c)): applies [α], clamps movements at list
    ends, performs the forced write and splices, updates positions,
    directions and reversal counts. Returns the new configuration and
    the per-list {e cell movement} vector ([-1/0/+1] — whether each head
    ended on the previous / same / next cell, the [moves(ρ)] entry of
    Definition 27).
    @raise Invalid_argument if the configuration is final or the choice
    is out of range. *)

(** {1 Runs} *)

type trace = {
  accepted : bool;
  configs : config array;  (** [ρ_1 … ρ_ℓ] *)
  moves : int array array;  (** [moves.(i)] = cell-movement vector of step [i+1] *)
  choices_used : int array;
  total_revs : int;
}

val run : ?fuel:int -> 'v t -> values:'v array -> choices:(int -> int) -> trace
(** [ρ_M(v, c)] (Definition 15). [fuel] (default 100_000) bounds the
    run length; @raise Failure on exhaustion (an (r,t)-bounded NLM has
    finite runs — Lemma 31 gives the bound). *)

val scans : trace -> int
(** [1 + Σ_τ rev(ρ, τ)] — the (r,t)-bound usage. *)

(** {2 View runs — the allocation-light fast path}

    {!run} snapshots the full configuration after every step; the
    snapshots are persistent, so each step copies the spliced list
    arrays — O(total list length) of fresh major-heap arrays per step,
    which on adversary-sized machines dominates the run cost and makes
    parallel sweeps contend on the shared GC. The skeleton pipeline
    (Definition 27) only consumes the local view of each configuration:
    state, head directions, and the [t] cells under the heads. A view
    run keeps the lists in scratch buffers mutated in place and records
    exactly those views, allocating O(t) per step. *)

type view = {
  vstate : int;
  vdirs : int array;  (** head directions in this configuration *)
  vcells : cell array;  (** the [t] cells under the heads *)
}

type view_trace = {
  vaccepted : bool;
  views : view array;  (** local views of [ρ_1 … ρ_ℓ] *)
  vmoves : int array array;  (** as {!trace.moves} *)
  vchoices_used : int array;
  vtotal_revs : int;
  final : config;  (** the full final configuration, materialized once *)
  max_total_list_length : int;  (** max over the run of [Σ_τ |list τ|] *)
  max_cell_size : int;  (** max {!cell_size} over all cells of the run *)
}

val run_view : ?fuel:int -> 'v t -> values:'v array -> choices:(int -> int) -> view_trace
(** Same semantics as {!run} — identical states, moves, acceptance, and
    (choice-blind) skeleton — without the per-step configuration
    snapshots. The arrays in each {!view} are freshly allocated and
    owned by the caller. *)

val accept_probability :
  Random.State.t -> ?samples:int -> ?fuel:int -> 'v t -> values:'v array -> float
(** Monte-Carlo estimate of [Pr(M accepts v)] by sampling uniform choice
    sequences (Lemma 25). Exact for deterministic machines (one
    sample suffices; we still run [samples] of them). *)

val exact_probability : ?fuel:int -> 'v t -> values:'v array -> float
(** Exact [Pr(M accepts v)] by weighted exploration of the choice tree
    (each step branches uniformly over the [num_choices] choices, as in
    the randomized semantics before Definition 15). Exponential in the
    run length — for small machines and tests. [fuel] (default 200_000)
    bounds the number of configurations expanded.
    @raise Failure on fuel exhaustion. *)

(** {1 Cell utilities} *)

val cell_inputs : cell -> int list
(** Input positions occurring in the flattened cell string, in order of
    occurrence, duplicates preserved. Flattened view — cost
    [cell_size]; hot paths should use {!cell_mentions} /
    {!cell_input_positions} instead. *)

val cell_components : cell -> (int * cell list * int) option
(** Decompose a written cell [a⟨x_1⟩…⟨x_t⟩⟨c⟩] into
    [(a, \[x_1;…;x_t\], c)]; [None] for unwritten cells ([⟨v⟩] or
    [⟨⟩]). O(t) on machine-written cells; hand-built [Syms] cells are
    parsed by bracket matching. Machines use this to navigate nested
    payloads. *)

val resolve_cell : values:'v array -> cell -> ('v, int) Either.t list
(** The resolved content α may depend on: [Left value] for inputs,
    [Right code] for the other symbols (choices as [Right (-1-c)],
    states as [Right a], brackets as [Right min_int / min_int+1]).
    Provided so machine implementations can be written against resolved
    data only. Flattened view — cost [cell_size]. *)

val cell_size : cell -> int
(** Length of the flattened string (number of alphabet symbols) — the
    cell-size measure of Lemma 30(b). O(1); saturates at [max_int]. *)

val pp_cell : Format.formatter -> cell -> unit
(** Prints the full flattened string — cost [cell_size]; prefer
    {!cell_prefix_syms}/{!cell_suffix_syms} for large cells. *)
