(** Skeletons of list-machine runs (Definitions 27, 28, 33).

    The skeleton of a run replaces every input value by its input
    {e position} and every nondeterministic choice by a wildcard; between
    head movements, local views are collapsed to ["?"]. Skeletons are the
    counting device of the lower bound: Lemma 32 bounds how many exist,
    Definition 33 reads off which input positions were ever {e compared}
    (co-occurred in the cells under the heads at some step), and the
    composition lemma swaps values at uncompared positions.

    Views keep the machine's DAG cells; the choice-wildcarding of
    Definition 28 lives in the comparison functions ({!equal} and the
    cell sk-hashes are choice-blind) rather than in a rewritten copy of
    every cell. {!serialize} still renders the flat wildcarded string —
    it costs the full expansion and exists for display and golden tests,
    not for the census, which keys on {!hash} / {!Intern} ids. *)

type ind_sym = IIn of int | IWild | ISt of int | IOpen | IClose

type entry =
  | View of { state : int; dirs : int array; cells : Nlm.cell array }
      (** [skel(lv(γ))] = state, head directions, the cells under the
          heads (choices wildcarded at comparison time) *)
  | Collapsed  (** the ["?"] entries for movement-free steps *)

type t = { entries : entry array; moves : int array array; hash : int }
(** [hash] is the deterministic choice-blind content hash (equal
    skeletons hash equal; stable across runs, processes and domains). *)

val of_trace : Nlm.trace -> t
(** [skel(ρ)] per Definition 28: entry 0 is always a [View]; entry
    [i+1] is a [View] iff step [i+1] moved some head to another cell. *)

val of_views : Nlm.view_trace -> t
(** [skel(ρ)] from an allocation-light {!Nlm.run_view} run. Equal (per
    {!equal}, and in {!hash}) to [of_trace] of the corresponding full
    run. Takes ownership of the view/move arrays — do not mutate them
    after this call. *)

val equal : t -> t -> bool
(** Structural choice-blind equality. Hash mismatch rejects in O(1);
    the structural descent memoizes cell pairs, so it is linear in the
    DAG size, never in the flattened expansion. *)

val hash : t -> int

val serialize : t -> string
(** An injective string encoding of the wildcarded flat skeleton —
    costs the full cell expansion ([Nlm.cell_size] per view cell); for
    display and small-machine tests, {e not} for the census (which
    keys on {!hash} / {!digest}). Injective modulo {!equal}: two
    skeletons serialize to the same string iff they are equal. *)

val fnv64 : string -> int64
(** FNV-1a 64 over the bytes of a string — the mixer behind {!digest}
    and the adversary's mergeable census fingerprints. *)

val digest : t -> int64
(** A 64-bit structural content digest: FNV-1a over the same
    choice-blind stream {!hash} folds (states, head directions, cell
    hashes, moves), costing O(entries × heads) — never the flat
    expansion, unlike {!serialize}. Equal skeletons digest equal;
    distinct classes collide only if the rolling cell hashes collide
    under two independent mixers. This is the cross-process class
    identity of the sharded census and the spill tier's slot key. *)

(** Skeleton interning: the census device of the adversary (proof step
    5). Structurally equal skeletons map to the same small id, so class
    counting keys on ints and each new skeleton is compared only against
    the representatives in its hash bucket.

    Two backends share one id discipline (dense, first-intern order):

    - {!backend.Ram} (the default) keeps every representative in a
      hash-bucketed table — exact structural equality, O(classes) RAM.
    - [Spill] is the two-tier census store for beyond-RAM class counts:
      a bounded FIFO front of recently interned representatives (the
      structural-equality fast path) over a {!Tape.Device}-backed slot
      store holding one fixed-size Tuple-packed record per class —
      [(hash, id, digest, entry count)], open-addressed on the
      choice-blind content hash, fronted by a fixed bloom filter. RAM
      cost per class is {e zero}; lookups that miss the front pay spill
      reads (counted in {!stats} and [Obs.Counters]). Class identity in
      the spill tier is the ~126-bit [(hash, digest)] fingerprint
      rather than a structural comparison; the property suite pins both
      tiers to identical id streams. *)
module Intern : sig
  type table

  type backend = Ram | Spill of { spec : Tape.Device.spec; recent : int }
  (** [recent] bounds the in-RAM representative front (>= 1). *)

  type stats = {
    classes : int;
    front_hits : int;  (** interns answered by the in-RAM front *)
    spill_reads : int;  (** slot reads against the device store *)
    spill_writes : int;  (** slot writes (inserts + growth migration) *)
    spill_bytes : int;  (** payload bytes written to the device store *)
    resident_reps : int;  (** representatives currently held in RAM *)
  }

  val create : ?size:int -> ?backend:backend -> unit -> table
  (** [size] seeds the RAM tier's bucket table; [backend] defaults to
      {!backend.Ram}. *)

  val intern : table -> t -> int * t
  (** [(id, rep)] — ids are dense, assigned in first-intern order, and
      [rep] is the first structurally equal skeleton interned (so
      repeated interning returns a physically shared representative).
      With a [Spill] backend, [rep] is the front-resident
      representative when the front hits and the argument itself
      otherwise (the store keeps fingerprints, not structures). *)

  val count : table -> int
  (** Number of distinct classes interned so far. *)

  val stats : table -> stats

  val close : table -> unit
  (** Release the spill device (deleting its backing files); no-op for
      the RAM backend. *)
end

val positions_of_entry : entry -> int list
(** Sorted, deduplicated input positions occurring in a [View];
    [] for [Collapsed]. O(positions) via the cells' memoized sets. *)

val compared : t -> int -> int -> bool
(** Definition 33: positions [i] and [i'] are compared iff they occur
    together in some [View] entry. *)

val compared_pairs : t -> (int * int) list
(** All unordered compared pairs [(i, i')], [i < i']. *)

val phi_compared_count : t -> m:int -> phi:Util.Permutation.t -> int
(** For a machine with [2m] input positions: the number of
    [i ∈ {1..m}] such that positions [i] and [m + ϕ(i)] are compared —
    the quantity Lemma 38 bounds by [t^{2r} · sortedness(ϕ)]. *)

val uncompared_phi_indices : t -> m:int -> phi:Util.Permutation.t -> int list
(** The [i ∈ {1..m}] with [(i, m+ϕ(i))] {e not} compared — the indices
    available to the adversary (Claim 3 of the Lemma 21 proof). *)

val monotone_partition_upper : int list -> int
(** A greedy upper bound on the minimal number of monotone (ascending
    or descending) subsequences covering the given sequence — an
    empirical check of the merge lemma (Lemma 37), which promises a
    cover by [t^r] monotone subsequences for any position sequence
    occurring in a configuration. *)

val monotone_partition_exact : ?max_n:int -> int list -> int
(** The exact minimum, by branch-and-bound over chain assignments —
    exponential, guarded by [max_n] (default 16). Used by the test
    suite to validate the greedy bound and to check Lemma 37 tightly on
    small traces.
    @raise Invalid_argument if the sequence is longer than [max_n]. *)

val replays_to :
  machine:'v Nlm.t -> values:'v array -> choices:(int -> int) -> t -> bool
(** Remark 29: a run is fully determined by its skeleton together with
    the input values and the choice sequence. This is the checkable
    direction — re-run the machine and compare the resulting skeleton
    (the adversary relies on it when it replays the witness run on
    resampled inputs). *)

val list_position_sequence : Nlm.config -> int -> int list
(** The input positions occurring on list [τ] (1-based), cell by cell,
    left to right, in order of occurrence inside each cell — the
    sequence the merge lemma speaks about. Flattens each cell. *)
