(** Planner for {e scripted} list machines.

    Useful list machines in this reproduction are {e data-oblivious}:
    their head movements depend only on the input length, never on the
    input values (values influence only accept/reject). Such a machine
    is most naturally constructed by {e piloting} a dry run — the
    planner executes every movement on a pilot configuration (using the
    real Definition 24 semantics, so all forced writes, splices, and
    clamps are accounted for), records the script, and lets the caller
    attach value {e checks} along the way. {!build} then packages the
    script as an {!Nlm.t}: state = step index, one extra rejecting sink
    entered when a check fails at run time.

    The pilot mirrors {!Nlm.step} decision for decision (same clamps,
    forced writes via {!Nlm.written_cell}, splice placement and id
    numbering), but keeps each list as a doubly-linked cell sequence so
    the per-step cost is O(lists) instead of an O(list length) array
    splice — Definition 24(c) writes into every resting list each step,
    so long plans grow long lists and the array pilot went quadratic
    (~14 s to plan the m = 64 staircase; milliseconds here). Every
    plan-time observation (cell contents, head positions, list lengths)
    is guaranteed to hold at run time; the listmachine test suite pins
    pilot observations against replayed {!Nlm.step} configurations. *)

type 'v check = values:'v array -> cells:Nlm.cell array -> bool
(** A runtime predicate over the resolved values visible in the cells
    under the heads. Contract: it must only use values reachable through
    the [cells] (the planner verifies at plan time that the positions a
    check wants are present). *)

type 'v t

val create : lists:int -> input_length:int -> unit -> 'v t

val cells : 'v t -> Nlm.cell array
(** Pilot cells under the heads (input symbols appear as [In i]). *)

val positions : 'v t -> int array
val dirs : 'v t -> int array
val list_length : 'v t -> int -> int
(** Current pilot length of list [τ] (1-based). *)

val steps_planned : 'v t -> int
val reversals_planned : 'v t -> int

val move : 'v t -> ?check:'v check -> Nlm.movement array -> unit
(** Record one scripted step (with an optional check evaluated on the
    cells {e before} the step's write). *)

val pause : 'v t -> ?check:'v check -> unit -> unit
(** A state-only step: all heads keep their direction, no head moves —
    nothing is written ([f_i = 0] for all [i]); useful to attach a
    check without disturbing the lists. *)

val advance : 'v t -> tau:int -> dir:int -> unit
(** Move head [tau] (1-based) one cell in direction [dir] ([±1]),
    holding the other heads neutral. (If the head must first turn, the
    direction change happens in the same step, as in the model.)
    @raise Invalid_argument if the head is at the list end in that
    direction (the planner refuses silently-clamped moves). *)

val walk_until : 'v t -> tau:int -> dir:int -> (Nlm.cell -> bool) -> unit
(** {!advance} head [tau] until its current cell satisfies the
    predicate; no-op if it already does.
    @raise Failure if the list end is reached first. *)

val rewind : 'v t -> tau:int -> unit
(** Walk head [tau] to position 1. *)

val id_at : 'v t -> tau:int -> int
(** Stable identity of the cell under head [tau]. *)

val id_at_index : 'v t -> tau:int -> index:int -> int
(** Identity of the cell at 1-based [index] of list [tau].
    @raise Invalid_argument if out of range. *)

val goto : 'v t -> tau:int -> id:int -> unit
(** Walk head [tau] straight to the cell with the given identity (only
    head [tau] moves, so indices on list [tau] are stable during the
    walk). No-op if already there.
    @raise Failure if no cell of list [tau] has this identity. *)

val contains_input : int -> Nlm.cell -> bool
(** [contains_input i cell] — whether [In i] occurs in the cell
    (payloads survive nesting, so this is the standard walk target). *)

val check_inputs_equal : 'v t -> eq:('v -> 'v -> bool) -> int -> int -> unit
(** [check_inputs_equal p ~eq i j] attaches (via {!pause}) the runtime
    check "the resolved values of [In i] and [In j] are equal", after
    asserting at plan time that both positions are visible in the
    current head cells.
    @raise Invalid_argument if a position is not visible. *)

val build : 'v t -> name:string -> accept_at_end:bool -> 'v Nlm.t
(** Package the script. The machine runs the recorded steps; a failing
    check diverts to a rejecting sink; reaching the end of the script
    accepts iff [accept_at_end] (otherwise rejects). [state_count] is
    the script length plus the two sinks. *)

val build_choice_dispatch :
  'v t list -> name:string -> accept_at_end:bool -> 'v Nlm.t
(** Package several scripts (planned independently from the initial
    configuration) as one {e nondeterministic} machine: its first step
    consumes the nondeterministic choice — a state-only step, nothing
    written — and the rest of the run follows the chosen script. With
    uniformly random choices the machine thus runs a uniformly random
    script: the shape the adversary's Lemma 26 step has to handle.
    @raise Invalid_argument on an empty list or mismatched
    lists/input_length across planners. *)
