type tuple = string array

type relation = { schema : string list; tuples : tuple list }

let encode_tuple (t : tuple) = String.concat "\x00" (Array.to_list t)

let decode_tuple s =
  if s = "" then [||] else Array.of_list (String.split_on_char '\x00' s)

let dedup_tuples tuples =
  let tbl = Hashtbl.create 64 in
  List.filter
    (fun t ->
      let k = encode_tuple t in
      if Hashtbl.mem tbl k then false
      else begin
        Hashtbl.add tbl k ();
        true
      end)
    tuples

let relation ~schema tuples =
  let seen = Hashtbl.create 8 in
  List.iter
    (fun a ->
      if Hashtbl.mem seen a then invalid_arg "Relalg.relation: duplicate attribute";
      Hashtbl.add seen a ())
    schema;
  let w = List.length schema in
  List.iter
    (fun t ->
      if Array.length t <> w then invalid_arg "Relalg.relation: tuple arity")
    tuples;
  { schema; tuples = dedup_tuples tuples }

type operand = Attr of string | Const of string

type pred =
  | Eq of operand * operand
  | Neq of operand * operand
  | Lt of operand * operand
  | And of pred * pred
  | Or of pred * pred
  | Not of pred

type expr =
  | Rel of string
  | Select of pred * expr
  | Project of string list * expr
  | Rename of (string * string) list * expr
  | Union of expr * expr
  | Diff of expr * expr
  | Inter of expr * expr
  | Product of expr * expr
  | Join of string list * expr * expr

let symmetric_difference r1 r2 =
  Union (Diff (Rel r1, Rel r2), Diff (Rel r2, Rel r1))

type db = (string * relation) list

(* ------------------------------------------------------------------ *)
(* Shared semantics helpers                                            *)

let attr_index schema a =
  let rec go i = function
    | [] -> invalid_arg (Printf.sprintf "Relalg: unknown attribute %S" a)
    | x :: _ when String.equal x a -> i
    | _ :: tl -> go (i + 1) tl
  in
  go 0 schema

let operand_value schema (t : tuple) = function
  | Const c -> c
  | Attr a -> t.(attr_index schema a)

let rec eval_pred schema t = function
  | Eq (a, b) -> String.equal (operand_value schema t a) (operand_value schema t b)
  | Neq (a, b) -> not (String.equal (operand_value schema t a) (operand_value schema t b))
  | Lt (a, b) -> String.compare (operand_value schema t a) (operand_value schema t b) < 0
  | And (p, q) -> eval_pred schema t p && eval_pred schema t q
  | Or (p, q) -> eval_pred schema t p || eval_pred schema t q
  | Not p -> not (eval_pred schema t p)

let check_same_schema op a b =
  if a.schema <> b.schema then
    invalid_arg (Printf.sprintf "Relalg: %s requires identical schemas" op)

let project_schema schema attrs =
  List.iter (fun a -> ignore (attr_index schema a)) attrs;
  attrs

let rename_schema schema renames =
  List.iter (fun (old_, _) -> ignore (attr_index schema old_)) renames;
  List.map
    (fun a ->
      match List.assoc_opt a renames with Some fresh -> fresh | None -> a)
    schema

let product_schema a b =
  List.iter
    (fun x ->
      if List.mem x b.schema then
        invalid_arg "Relalg: product schemas must be disjoint")
    a.schema;
  a.schema @ b.schema

(* Join desugaring: once the two schemas are known, a natural join on
   [keys] is rename(b keys fresh) |> product |> select(key equalities)
   |> project(a's schema + b's non-keys). Fresh names use a character
   forbidden in user schemas only by convention; collisions are
   rejected. *)
let join_plan keys schema_a schema_b =
  List.iter
    (fun k ->
      if not (List.mem k schema_a && List.mem k schema_b) then
        invalid_arg (Printf.sprintf "Relalg: join key %S must occur on both sides" k))
    keys;
  List.iter
    (fun x ->
      if (not (List.mem x keys)) && List.mem x schema_a then
        invalid_arg "Relalg: join non-key attributes must be disjoint")
    schema_b;
  let fresh k =
    let f = k ^ "'" in
    if List.mem f schema_a || List.mem f schema_b then
      invalid_arg "Relalg: join fresh-name collision"
    else f
  in
  let renames = List.map (fun k -> (k, fresh k)) keys in
  let equalities =
    List.map (fun (k, f) -> Eq (Attr k, Attr f)) renames
  in
  let selection =
    match equalities with
    | [] -> invalid_arg "Relalg: join needs at least one key"
    | e :: rest -> List.fold_left (fun acc p -> And (acc, p)) e rest
  in
  let out_schema =
    schema_a @ List.filter (fun x -> not (List.mem x keys)) schema_b
  in
  (renames, selection, out_schema)

(* ------------------------------------------------------------------ *)
(* Reference evaluator                                                 *)

let lookup db name =
  match List.assoc_opt name db with
  | Some r -> r
  | None -> invalid_arg (Printf.sprintf "Relalg: unknown relation %S" name)

let rec eval db = function
  | Rel name -> lookup db name
  | Select (p, e) ->
      let r = eval db e in
      { r with tuples = List.filter (fun t -> eval_pred r.schema t p) r.tuples }
  | Project (attrs, e) ->
      let r = eval db e in
      let schema = project_schema r.schema attrs in
      let idxs = List.map (attr_index r.schema) attrs in
      relation ~schema
        (List.map (fun t -> Array.of_list (List.map (fun i -> t.(i)) idxs)) r.tuples)
  | Rename (renames, e) ->
      let r = eval db e in
      { r with schema = rename_schema r.schema renames }
  | Union (a, b) ->
      let ra = eval db a and rb = eval db b in
      check_same_schema "union" ra rb;
      relation ~schema:ra.schema (ra.tuples @ rb.tuples)
  | Diff (a, b) ->
      let ra = eval db a and rb = eval db b in
      check_same_schema "difference" ra rb;
      let keys = Hashtbl.create 64 in
      List.iter (fun t -> Hashtbl.replace keys (encode_tuple t) ()) rb.tuples;
      { ra with tuples = List.filter (fun t -> not (Hashtbl.mem keys (encode_tuple t))) ra.tuples }
  | Inter (a, b) ->
      let ra = eval db a and rb = eval db b in
      check_same_schema "intersection" ra rb;
      let keys = Hashtbl.create 64 in
      List.iter (fun t -> Hashtbl.replace keys (encode_tuple t) ()) rb.tuples;
      { ra with tuples = List.filter (fun t -> Hashtbl.mem keys (encode_tuple t)) ra.tuples }
  | Product (a, b) ->
      let ra = eval db a and rb = eval db b in
      let schema = product_schema ra rb in
      relation ~schema
        (List.concat_map
           (fun ta -> List.map (fun tb -> Array.append ta tb) rb.tuples)
           ra.tuples)
  | Join (keys, a, b) ->
      let ra = eval db a and rb = eval db b in
      let renames, selection, out_schema = join_plan keys ra.schema rb.schema in
      eval
        [ ("join.a", ra); ("join.b", rb) ]
        (Project
           ( out_schema,
             Select (selection, Product (Rel "join.a", Rename (renames, Rel "join.b")))
           ))

(* ------------------------------------------------------------------ *)
(* Streaming evaluator                                                 *)

type report = { n : int; scans : int; registers : int; tapes : int }

(* A stream: a tape of encoded tuples plus its logical length and
   schema. All tapes live in one group so scans accumulate. *)
type stream = { tape : string Tape.t; len : int; sschema : string list }

let seek tp target =
  while Tape.position tp < target do
    Tape.move tp Tape.Right
  done;
  while Tape.position tp > target do
    Tape.move tp Tape.Left
  done

let read_at tp pos =
  seek tp pos;
  Tape.read tp

let write_at tp pos x =
  seek tp pos;
  Tape.write tp x

(* Atomic so concurrent streaming runs (the query fuzzer fans over a
   domain pool) never hand two tapes the same name. *)
let fresh_counter = Atomic.make 0

(* Evaluation context: the tape group plus the two optional hooks the
   query layer threads in — a byte codec (opting every intermediate
   tape into the group's device spec) and a per-node profile callback
   receiving (operator label, scans spent by that node exclusive of
   its children). *)
type ctx = {
  g : Tape.Group.t;
  codec : string Tape.Device.Codec.t option;
  prof : string -> int -> unit;
}

let fresh_tape ctx =
  let id = Atomic.fetch_and_add fresh_counter 1 + 1 in
  Tape.Group.tape ctx.g ?codec:ctx.codec
    ~name:(Printf.sprintf "op%d" id)
    ~blank:"" ()

(* one-pass transform: read each cell, emit zero or more cells *)
let map_stream ctx s ~schema ~f =
  let out = fresh_tape ctx in
  let written = ref 0 in
  for i = 0 to s.len - 1 do
    List.iter
      (fun cell ->
        write_at out !written cell;
        incr written)
      (f (read_at s.tape i))
  done;
  { tape = out; len = !written; sschema = schema }

let sorted_copy ctx s =
  let out = map_stream ctx s ~schema:s.sschema ~f:(fun c -> [ c ]) in
  if out.len > 1 then Extsort.sort_tape ?codec:ctx.codec ctx.g out.tape ~len:out.len;
  out

(* merge two sorted streams; [emit] decides, per distinct key, given
   (present_in_a, present_in_b), whether the tuple is in the output *)
let merge_set_op ctx a b ~emit =
  let out = fresh_tape ctx in
  let written = ref 0 in
  let push c =
    write_at out !written c;
    incr written
  in
  let i = ref 0 and j = ref 0 in
  while !i < a.len || !j < b.len do
    let skip_run s idx v =
      while !idx < s.len && String.equal (read_at s.tape !idx) v do
        incr idx
      done
    in
    if !i >= a.len then begin
      let v = read_at b.tape !j in
      if emit false true then push v;
      skip_run b j v
    end
    else if !j >= b.len then begin
      let v = read_at a.tape !i in
      if emit true false then push v;
      skip_run a i v
    end
    else begin
      let va = read_at a.tape !i and vb = read_at b.tape !j in
      let cmp = String.compare va vb in
      if cmp < 0 then begin
        if emit true false then push va;
        skip_run a i va
      end
      else if cmp > 0 then begin
        if emit false true then push vb;
        skip_run b j vb
      end
      else begin
        if emit true true then push va;
        skip_run a i va;
        skip_run b j vb
      end
    end
  done;
  { tape = out; len = !written; sschema = a.sschema }

(* n1 concatenated copies of the whole stream, by doubling appends *)
let repeat_whole ctx s ~times =
  let out = map_stream ctx s ~schema:s.sschema ~f:(fun c -> [ c ]) in
  let copies = ref (if s.len = 0 then times else 1) in
  let written = ref out.len in
  while !copies < times do
    let add = min !copies (times - !copies) in
    let cells = add * s.len in
    for i = 0 to cells - 1 do
      write_at out.tape !written (read_at out.tape i);
      incr written
    done;
    copies := !copies + add
  done;
  { out with len = !written }

(* every cell repeated [times] in place, by doubling passes *)
let stretch_each ctx s ~times =
  let cur = ref (map_stream ctx s ~schema:s.sschema ~f:(fun c -> [ c ])) in
  let rep = ref 1 in
  while !rep < times do
    if 2 * !rep <= times then begin
      cur := map_stream ctx !cur ~schema:s.sschema ~f:(fun c -> [ c; c ]);
      rep := 2 * !rep
    end
    else begin
      (* final exact pass: keep [times] of each group of [!rep] *)
      let keep = times - !rep in
      let count = ref 0 in
      cur :=
        map_stream ctx !cur ~schema:s.sschema ~f:(fun c ->
            let k = !count mod !rep in
            count := !count + 1;
            if k < keep then [ c; c ] else [ c ]);
      rep := times
    end
  done;
  !cur

(* [profiled ctx label f]: run the node body [f] (children already
   evaluated) and report the scans it spent, exclusive of subtrees. *)
let profiled ctx label f =
  let s0 = Tape.Group.scans ctx.g in
  let r = f () in
  ctx.prof label (Tape.Group.scans ctx.g - s0);
  r

let rec eval_stream ctx db = function
  | Rel name ->
      let r = lookup db name in
      let cells = List.map encode_tuple r.tuples in
      let tape =
        let id = Atomic.fetch_and_add fresh_counter 1 + 1 in
        Tape.Group.tape_of_list ctx.g ?codec:ctx.codec
          ~name:(Printf.sprintf "in-%s%d" name id)
          ~blank:"" cells
      in
      ctx.prof "input" 0;
      { tape; len = List.length cells; sschema = r.schema }
  | Select (p, e) ->
      let s = eval_stream ctx db e in
      profiled ctx "select" (fun () ->
          map_stream ctx s ~schema:s.sschema ~f:(fun c ->
              if eval_pred s.sschema (decode_tuple c) p then [ c ] else []))
  | Project (attrs, e) ->
      let s = eval_stream ctx db e in
      profiled ctx "project" (fun () ->
          let schema = project_schema s.sschema attrs in
          let idxs = List.map (attr_index s.sschema) attrs in
          let projected =
            map_stream ctx s ~schema ~f:(fun c ->
                let t = decode_tuple c in
                [ encode_tuple (Array.of_list (List.map (fun i -> t.(i)) idxs)) ])
          in
          (* projection can create duplicates: sort + dedup scan *)
          let sorted = sorted_copy ctx projected in
          let prev = ref None in
          map_stream ctx sorted ~schema ~f:(fun c ->
              match !prev with
              | Some p when String.equal p c -> []
              | Some _ | None ->
                  prev := Some c;
                  [ c ]))
  | Rename (renames, e) ->
      let s = eval_stream ctx db e in
      ctx.prof "rename" 0;
      { s with sschema = rename_schema s.sschema renames }
  | Union (a, b) ->
      let sa = eval_stream ctx db a and sb = eval_stream ctx db b in
      if sa.sschema <> sb.sschema then invalid_arg "Relalg: union schemas";
      profiled ctx "union" (fun () ->
          merge_set_op ctx (sorted_copy ctx sa) (sorted_copy ctx sb)
            ~emit:(fun _ _ -> true))
  | Diff (a, b) ->
      let sa = eval_stream ctx db a and sb = eval_stream ctx db b in
      if sa.sschema <> sb.sschema then invalid_arg "Relalg: difference schemas";
      profiled ctx "diff" (fun () ->
          merge_set_op ctx (sorted_copy ctx sa) (sorted_copy ctx sb)
            ~emit:(fun ina inb -> ina && not inb))
  | Inter (a, b) ->
      let sa = eval_stream ctx db a and sb = eval_stream ctx db b in
      if sa.sschema <> sb.sschema then invalid_arg "Relalg: intersection schemas";
      profiled ctx "inter" (fun () ->
          merge_set_op ctx (sorted_copy ctx sa) (sorted_copy ctx sb)
            ~emit:(fun ina inb -> ina && inb))
  | Product (a, b) ->
      let sa = eval_stream ctx db a and sb = eval_stream ctx db b in
      profiled ctx "product" (fun () ->
          let schema = product_schema { schema = sa.sschema; tuples = [] }
              { schema = sb.sschema; tuples = [] } in
          if sa.len = 0 || sb.len = 0 then
            { tape = fresh_tape ctx; len = 0; sschema = schema }
          else begin
            let left = stretch_each ctx sa ~times:sb.len in
            let right = repeat_whole ctx sb ~times:sa.len in
            (* zip: left cell k pairs with right cell k *)
            let out = fresh_tape ctx in
            for k = 0 to left.len - 1 do
              let ta = decode_tuple (read_at left.tape k) in
              let tb = decode_tuple (read_at right.tape k) in
              write_at out k (encode_tuple (Array.append ta tb))
            done;
            { tape = out; len = left.len; sschema = schema }
          end)
  | Join (keys, a, b) ->
      let sa = eval_stream ctx db a and sb = eval_stream ctx db b in
      profiled ctx "join" (fun () ->
          let renames, selection, out_schema =
            join_plan keys sa.sschema sb.sschema
          in
          (* glue: re-expose the two sub-results as relations of a local
             db and desugar; their tuples re-enter through fresh input
             tapes of the same group, so the accounting stays complete.
             The desugared subtree runs unprofiled: its cost is the join
             node's own. *)
          let rel_of s =
            {
              schema = s.sschema;
              tuples = List.init s.len (fun i -> decode_tuple (read_at s.tape i));
            }
          in
          eval_stream { ctx with prof = (fun _ _ -> ()) }
            [ ("join.a", rel_of sa); ("join.b", rel_of sb) ]
            (Project
               ( out_schema,
                 Select
                   (selection, Product (Rel "join.a", Rename (renames, Rel "join.b")))
               )))

let db_size db = List.fold_left (fun acc (_, r) -> acc + List.length r.tuples) 0 db

(* Static byte bound for one encoded cell anywhere in the plan: every
   atom written to a tape comes from the database (predicates only
   compare constants, they never emit them), and products/joins only
   concatenate leaf widths — so (sum of leaf widths) × (longest atom +
   1 separator) bounds every intermediate cell. Used to derive the
   fixed-width codec a byte-backed device needs. *)
let max_cell_bytes db expr =
  let max_atom =
    List.fold_left
      (fun acc (_, r) ->
        List.fold_left
          (fun acc t -> Array.fold_left (fun acc v -> max acc (String.length v)) acc t)
          acc r.tuples)
      1 db
  in
  let rec leaf_width = function
    | Rel name -> List.length (lookup db name).schema
    | Select (_, e) | Project (_, e) | Rename (_, e) -> leaf_width e
    | Union (a, b) | Diff (a, b) | Inter (a, b) | Product (a, b)
    | Join (_, a, b) ->
        leaf_width a + leaf_width b
  in
  let width = max 1 (leaf_width expr) in
  width * (max_atom + 1)

let eval_streaming ?device ?observe ?profile db expr =
  let g = Tape.Group.create ?device () in
  (match observe with None -> () | Some f -> f g);
  let codec =
    match Tape.Group.device g with
    | Tape.Device.Mem -> None
    | _ -> Some (Tape.Device.Codec.tuple_string ~max_len:(max_cell_bytes db expr))
  in
  let ctx =
    { g; codec; prof = (match profile with None -> fun _ _ -> () | Some f -> f) }
  in
  let meter = Tape.Group.meter g in
  Fun.protect
    ~finally:(fun () -> Tape.Group.close_all g)
    (fun () ->
      let result =
        Tape.Meter.with_units meter 8 (fun () ->
            let s = eval_stream ctx db expr in
            let tuples =
              List.init s.len (fun i -> decode_tuple (read_at s.tape i))
            in
            relation ~schema:s.sschema tuples)
      in
      let rep = Tape.Group.report g in
      ( result,
        {
          n = db_size db;
          scans = rep.Tape.Group.scans_used;
          registers = rep.Tape.Group.internal_peak_units;
          tapes = List.length rep.Tape.Group.reversals_by_tape;
        } ))

let instance_db inst =
  let half h = List.map (fun v -> [| Util.Bitstring.to_string v |]) (Array.to_list h) in
  [
    ("R1", relation ~schema:[ "v" ] (half (Problems.Instance.xs inst)));
    ("R2", relation ~schema:[ "v" ] (half (Problems.Instance.ys inst)));
  ]

let pp_relation ppf r =
  Format.fprintf ppf "@[<v>%s@," (String.concat " | " r.schema);
  List.iter
    (fun t -> Format.fprintf ppf "%s@," (String.concat " | " (Array.to_list t)))
    r.tuples;
  Format.fprintf ppf "@]"
