(** Relational algebra over tuple streams (Theorem 11).

    Theorem 11(a): every relational algebra query can be evaluated over
    a stream of the input relations' tuples with [O(log N)] head
    reversals and constant internal memory — each operator is a
    constant number of scans and sorting steps. Theorem 11(b): the
    query [Q' = (R1 − R2) ∪ (R2 − R1)] cannot be evaluated with
    [o(log N)] reversals (its result is empty iff [R1 = R2], i.e. it
    decides SET-EQUALITY).

    This module provides the algebra (set semantics), a reference
    in-memory evaluator, and a {e streaming} evaluator whose primitive
    operations — selection/projection scans, sort-based
    union/difference/intersection, doubling-based products — run on the
    instrumented {!Tape} substrate, so the measured scan count of any
    fixed query is [O(log N)]. *)

type tuple = string array

type relation = { schema : string list; tuples : tuple list }

val relation : schema:string list -> tuple list -> relation
(** Validates arity and deduplicates (set semantics).
    @raise Invalid_argument on arity mismatch or duplicate attributes. *)

type operand = Attr of string | Const of string

type pred =
  | Eq of operand * operand
  | Neq of operand * operand
  | Lt of operand * operand
  | And of pred * pred
  | Or of pred * pred
  | Not of pred

type expr =
  | Rel of string
  | Select of pred * expr
  | Project of string list * expr
  | Rename of (string * string) list * expr  (** [(old, new)] pairs *)
  | Union of expr * expr
  | Diff of expr * expr
  | Inter of expr * expr
  | Product of expr * expr
  | Join of string list * expr * expr
      (** [Join (keys, a, b)]: natural join on [keys], which must occur
          in both schemas; the non-key attributes must be disjoint.
          Desugared at evaluation time (once schemas are known) into
          rename–product–select–project, so the streaming evaluator
          keeps its O(log N) scan envelope. *)

val symmetric_difference : string -> string -> expr
(** The Theorem 11(b) query [Q' = (R1 − R2) ∪ (R2 − R1)]. *)

type db = (string * relation) list

val eval : db -> expr -> relation
(** Reference in-memory evaluator.
    @raise Invalid_argument on unknown relations/attributes, schema
    mismatches in set operations, or overlapping product schemas. *)

type report = { n : int; scans : int; registers : int; tapes : int }

val eval_streaming :
  ?device:Tape.Device.spec ->
  ?observe:(Tape.Group.t -> unit) ->
  ?profile:(string -> int -> unit) ->
  db -> expr -> relation * report
(** Evaluate with every tuple movement going through metered tapes:
    inputs are loaded as streams; each operator materializes its output
    on a fresh tape of the same group. The report's [n] is the total
    number of input tuples.

    [device] selects the backend for every tape of the run (default
    mem); under a byte-backed spec all intermediate tapes use a
    fixed-width tuple codec sized by a static pass over [db] and
    [expr]. [observe] is called with the tape group right after
    creation — the seam for attaching an {!Obs.Ledger.Recorder} without
    a [relalg → obs] dependency. [profile] receives, for each plan
    node in post-order, its operator label ([input], [select],
    [project], [rename], [union], [diff], [inter], [product], [join])
    and the scans that node spent exclusive of its children — the query
    layer audits each delta against the Theorem 11 per-operator budget.
    All tapes are closed (backing files deleted) before returning. *)

val db_size : db -> int
(** Total number of tuples. *)

val instance_db : Problems.Instance.t -> db
(** The Theorem 11(b) reduction: a SET-EQUALITY instance as two unary
    relations [R1 = {v_i}], [R2 = {v'_i}] over schema [\["v"\]]. *)

val pp_relation : Format.formatter -> relation -> unit
