(* Deterministic RNG splitting for the Monte Carlo pool.

   Each chunk of trials gets its own [Random.State], derived from the
   root seed and the chunk index by a splitmix64-style finalizer. The
   derivation depends only on (seed, index) - never on how chunks are
   assigned to domains - which is what makes every pool result
   bit-identical across worker counts. *)

let golden = 0x9E3779B97F4A7C15L

(* splitmix64 finalizer (Steele, Lea & Flood 2014). *)
let mix64 z =
  let open Int64 in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let stream ~seed ~index =
  (* distinct golden-ratio streams per index; [index + 1] keeps the
     index-0 stream away from the raw seed *)
  let open Int64 in
  add (of_int seed) (mul (of_int (index + 1)) golden)

let derive ~seed ~index =
  let base = stream ~seed ~index in
  Array.init 4 (fun i ->
      let open Int64 in
      let word = mix64 (add base (mul (of_int (i + 1)) golden)) in
      (* [Random.State.make] takes native ints; keep the low 62 bits *)
      to_int (logand word 0x3FFFFFFFFFFFFFFFL))

let state ~seed ~index = Random.State.make (derive ~seed ~index)

(* The serve protocol's per-request seed rule (PROTOCOL.md §5) is the
   chunk derivation verbatim, with the request id as the index: naming
   it keeps the doc's cross-reference one hop from the arithmetic. *)
let request_state ~server_seed ~request_id = state ~seed:server_seed ~index:request_id

let seed_of_state st = Random.State.full_int st max_int
