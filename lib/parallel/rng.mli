(** Deterministic RNG splitting (splitmix64) for chunked Monte Carlo.

    A root [seed] and a chunk [index] determine a [Random.State]
    independently of which domain runs the chunk, so pool results are
    bit-identical for any worker count (including 1). *)

val mix64 : int64 -> int64
(** The splitmix64 finalizer; exposed for tests. *)

val derive : seed:int -> index:int -> int array
(** The four 62-bit words seeding chunk [index] of stream [seed]. *)

val state : seed:int -> index:int -> Random.State.t
(** [state ~seed ~index] is the chunk's private generator:
    [Random.State.make (derive ~seed ~index)]. *)

val request_state : server_seed:int -> request_id:int -> Random.State.t
(** The stlb/1 per-request seed rule (PROTOCOL.md §5): request [id] on
    a server seeded [S] draws from [state ~seed:S ~index:id]. Same
    derivation as the Monte Carlo chunks, so a request's verdict is a
    function of [(S, id)] — replayable across restarts, worker counts
    and batching. *)

val seed_of_state : Random.State.t -> int
(** Draw a root seed from an existing generator (one [full_int] pull) -
    the bridge from the harness's legacy [Random.State] plumbing into
    the seed-indexed scheme. *)
