(** Stdlib-[Domain] work pool: deterministic fan-out for the Monte
    Carlo experiment harness.

    Every reproduction table runs hundreds of independent trials; this
    pool spreads them over OCaml 5 domains while keeping the results
    {e bit-identical for every worker count}. The scheme: trials are cut
    into fixed-size chunks (never a function of the worker count), chunk
    [i] draws from the private generator [Rng.state ~seed ~index:i], and
    reductions fold chunk results in index order. A 1-domain pool runs
    the same chunk-seeded code inline without spawning - the [-j 1]
    sequential path.

    Pools hold no persistent domains: each call spawns, joins, and
    returns, so an exception in a worker is re-raised at the call site
    after all workers have stopped, and the pool remains usable.

    A pool also carries a {!watchdog}: per-chunk supervision that
    re-runs a failing chunk (with the {e same} index, hence the same
    derived seed — attempt 2 computes exactly what attempt 1 would
    have), flags chunks that overran a cooperative deadline, and
    degrades gracefully to fewer workers — ultimately the sequential
    path — when [Domain.spawn] itself fails. {!health} reports what the
    watchdog absorbed. *)

type t

(** Chunk supervision policy. *)
type watchdog = {
  max_chunk_retries : int;
      (** extra attempts per chunk after the first ([≥ 0]) *)
  chunk_deadline_s : float option;
      (** cooperative deadline: OCaml domains cannot be interrupted
          from outside, so an overrunning chunk is {e flagged} in
          {!health} when it completes, never killed mid-flight *)
  retryable : exn -> bool;
      (** which exceptions re-run the chunk; anything else (and
          exhausted retries) propagates to the caller. The fault
          harness passes [Faults.Retry.is_transient]-style predicates;
          the default accepts nothing. *)
}

val default_watchdog : watchdog
(** 2 retries, no deadline, nothing retryable — a plain pool behaves
    exactly as one without a watchdog. *)

(** What the watchdog absorbed since creation / {!reset_health}. *)
type health = {
  chunks_retried : int;  (** chunk re-runs (each kept its chunk seed) *)
  deadline_overruns : int;  (** chunks that finished past the deadline *)
  degraded_spawns : int;  (** [Domain.spawn] failures absorbed *)
}

val create : ?domains:int -> ?watchdog:watchdog -> unit -> t
(** A pool of [domains] workers (clamped to [>= 1]); defaults to
    {!default_domains} and {!default_watchdog}.
    @raise Invalid_argument if [watchdog.max_chunk_retries < 0]. *)

val domains : t -> int
val watchdog : t -> watchdog

val health : t -> health
(** Cumulative over the pool's lifetime; counters are atomics, safe to
    read from any domain. *)

val reset_health : t -> unit

val default : unit -> t
(** [create ()] - a pool sized by {!default_domains}. *)

val set_default_domains : int -> unit
(** Driver hook for [-j N]: overrides {!default_domains} process-wide
    (clamped to [>= 1]). *)

val default_domains : unit -> int
(** Worker count used when none is given: the [-j] override if set,
    else the [STLB_DOMAINS] environment variable (ignored unless a
    positive integer), else [Domain.recommended_domain_count ()]. *)

val map_chunks : t -> chunks:int -> (int -> 'a) -> 'a array
(** [map_chunks t ~chunks f] computes [[| f 0; ...; f (chunks-1) |]],
    running the [f i] on the pool's domains. Result order is index
    order regardless of scheduling. Each [f i] runs under the pool's
    watchdog (retries re-run [f i] verbatim). An exception in any
    [f i] — after the watchdog's retries — is re-raised after all
    workers stop; remaining indices are skipped. *)

val map : t -> ('a -> 'b) -> 'a array -> 'b array
(** [map t f arr] is [Array.map f arr] with each element its own pool
    job (for pure per-element work such as replaying list-machine runs);
    element order is preserved. *)

val monte_carlo : t -> trials:int -> seed:int -> (Random.State.t -> 'r) -> 'r array
(** [monte_carlo t ~trials ~seed f] runs [f] once per trial and returns
    the per-trial results in trial order. Trials are chunked
    ({!trials_per_chunk} to a chunk) and chunk [i] hands [f] the
    generator [Rng.state ~seed ~index:i], so the output depends only on
    [(trials, seed)] - not on the worker count. *)

val monte_carlo_fold :
  t ->
  trials:int ->
  seed:int ->
  init:'acc ->
  combine:('acc -> 'r -> 'acc) ->
  (Random.State.t -> 'r) ->
  'acc
(** Fold the {!monte_carlo} results in trial order. *)

val monte_carlo_count :
  t -> trials:int -> seed:int -> (Random.State.t -> bool) -> int
(** Number of trials on which [f] returns [true]. *)

val trials_per_chunk : int
(** The fixed chunk size (exposed for tests). *)
