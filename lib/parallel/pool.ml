(* A stdlib-Domain work pool for the experiment harness.

   No domainslib: workers are plain [Domain.spawn]ed fibers that pull
   job indices off a shared atomic counter, write results into
   per-index slots, and join before the call returns. A pool value is
   just a worker count plus a watchdog - there are no persistent
   domains to leak, so "shutdown" is the join at the end of every call
   and a pool survives a raising job (the exception is re-raised on the
   caller's domain after every worker has stopped).

   Determinism: job i's result lands in slot i and reductions fold the
   slots in index order, so every result is bit-identical for any
   worker count, including 1 (which never spawns and runs the exact
   same chunk-seeded code inline). The watchdog preserves this: a
   retried job re-runs [exec i] verbatim, and every seeded caller
   (monte_carlo below) re-derives chunk i's generator from
   [Rng.state ~seed ~index:i] inside [exec], so attempt 2 of a chunk
   produces exactly what attempt 1 would have. *)

(* Chunk-level supervision. Deadlines are cooperative: OCaml domains
   cannot be killed from outside, so an overrunning chunk is detected
   when it finishes (or raises) and counted in [health] rather than
   interrupted - the honest option on a runtime without asynchronous
   cancellation. Retries fire on exceptions [retryable] selects;
   nothing is retryable by default, so plain pools behave exactly as
   before. *)
type watchdog = {
  max_chunk_retries : int;
  chunk_deadline_s : float option;
  retryable : exn -> bool;
}

let default_watchdog =
  { max_chunk_retries = 2; chunk_deadline_s = None; retryable = (fun _ -> false) }

type health = {
  chunks_retried : int;
  deadline_overruns : int;
  degraded_spawns : int;
}

type t = {
  domains : int;
  watchdog : watchdog;
  retried : int Atomic.t;
  timed_out : int Atomic.t;
  degraded : int Atomic.t;
}

let clamp d = max 1 d

let hardware_domains () = Domain.recommended_domain_count ()

let env_domains () =
  match Sys.getenv_opt "STLB_DOMAINS" with
  | None -> None
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some d when d >= 1 -> Some d
      | _ -> None)

(* 0 = unset; the -j flag of the drivers stores into this *)
let override = Atomic.make 0

let set_default_domains d = Atomic.set override (clamp d)

let default_domains () =
  let o = Atomic.get override in
  if o > 0 then o
  else match env_domains () with Some d -> d | None -> hardware_domains ()

let create ?domains ?(watchdog = default_watchdog) () =
  if watchdog.max_chunk_retries < 0 then
    invalid_arg "Pool.create: max_chunk_retries < 0";
  {
    domains = (match domains with Some d -> clamp d | None -> default_domains ());
    watchdog;
    retried = Atomic.make 0;
    timed_out = Atomic.make 0;
    degraded = Atomic.make 0;
  }

let domains t = t.domains
let watchdog t = t.watchdog

let default () = create ()

let health t =
  {
    chunks_retried = Atomic.get t.retried;
    deadline_overruns = Atomic.get t.timed_out;
    degraded_spawns = Atomic.get t.degraded;
  }

let reset_health t =
  Atomic.set t.retried 0;
  Atomic.set t.timed_out 0;
  Atomic.set t.degraded 0

(* Run one job under the watchdog: time it against the (cooperative)
   deadline, re-run it on retryable exceptions with the SAME index -
   and therefore the same derived seed - up to the retry bound. *)
let guarded_exec t exec i =
  let w = t.watchdog in
  Obs.Counters.add_pool_chunks 1;
  let rec attempt k =
    let t0 =
      match w.chunk_deadline_s with None -> 0.0 | Some _ -> Unix.gettimeofday ()
    in
    let check_deadline () =
      match w.chunk_deadline_s with
      | Some d when Unix.gettimeofday () -. t0 > d ->
          Atomic.incr t.timed_out;
          Obs.Counters.add_pool_deadline_overruns 1
      | _ -> ()
    in
    match exec i with
    | () -> check_deadline ()
    | exception e ->
        check_deadline ();
        if w.retryable e && k < w.max_chunk_retries then begin
          Atomic.incr t.retried;
          Obs.Counters.add_pool_chunk_retries 1;
          attempt (k + 1)
        end
        else raise e
  in
  attempt 0

(* Run [exec 0 .. exec (jobs-1)], work-stealing off an atomic counter.
   The first (post-retry) exception wins; late workers stop claiming
   new jobs. If [Domain.spawn] itself fails (fd or thread exhaustion),
   the pool degrades gracefully: the failed spawn is counted in
   [health] and its share of the work is absorbed by the domains that
   did start - in the worst case the caller's own domain runs
   everything sequentially, which is the bit-identical -j 1 path. *)
let run_jobs t ~jobs exec =
  let exec i = guarded_exec t exec i in
  if jobs <= 0 then ()
  else if t.domains <= 1 || jobs = 1 then
    for i = 0 to jobs - 1 do
      exec i
    done
  else begin
    let next = Atomic.make 0 in
    let failed = Atomic.make None in
    let worker () =
      let continue_ = ref true in
      while !continue_ do
        if Atomic.get failed <> None then continue_ := false
        else begin
          let i = Atomic.fetch_and_add next 1 in
          if i >= jobs then continue_ := false
          else
            try exec i
            with e ->
              let bt = Printexc.get_raw_backtrace () in
              ignore (Atomic.compare_and_set failed None (Some (e, bt)));
              continue_ := false
        end
      done
    in
    let spawned =
      Array.init
        (min t.domains jobs - 1)
        (fun _ ->
          match Domain.spawn worker with
          | d -> Some d
          | exception _ ->
              Atomic.incr t.degraded;
              Obs.Counters.add_pool_degraded_spawns 1;
              None)
      |> Array.to_list |> List.filter_map Fun.id
    in
    worker ();
    List.iter Domain.join spawned;
    match Atomic.get failed with
    | Some (e, bt) -> Printexc.raise_with_backtrace e bt
    | None -> ()
  end

let map_chunks t ~chunks f =
  if chunks < 0 then invalid_arg "Pool.map_chunks: chunks < 0";
  let out = Array.make chunks None in
  run_jobs t ~jobs:chunks (fun i -> out.(i) <- Some (f i));
  Array.map (function Some v -> v | None -> assert false) out

let map t f arr =
  let n = Array.length arr in
  let out = Array.make n None in
  run_jobs t ~jobs:n (fun i -> out.(i) <- Some (f arr.(i)));
  Array.map (function Some v -> v | None -> assert false) out

(* Trials per chunk: small enough to load-balance hundreds of trials
   over a handful of domains, large enough to amortize the spawn. Fixed
   - it must never depend on the worker count. *)
let trials_per_chunk = 25

let chunk_count trials = (trials + trials_per_chunk - 1) / trials_per_chunk

let monte_carlo t ~trials ~seed f =
  if trials < 0 then invalid_arg "Pool.monte_carlo: trials < 0";
  if trials = 0 then [||]
  else begin
    let parts =
      map_chunks t ~chunks:(chunk_count trials) (fun i ->
          let lo = i * trials_per_chunk in
          let hi = min trials (lo + trials_per_chunk) in
          let st = Rng.state ~seed ~index:i in
          (* every chunk is nonempty, so seed the array with trial 0 *)
          let a = Array.make (hi - lo) (f st) in
          for j = 1 to hi - lo - 1 do
            a.(j) <- f st
          done;
          a)
    in
    Array.concat (Array.to_list parts)
  end

let monte_carlo_fold t ~trials ~seed ~init ~combine f =
  Array.fold_left combine init (monte_carlo t ~trials ~seed f)

let monte_carlo_count t ~trials ~seed f =
  monte_carlo_fold t ~trials ~seed ~init:0
    ~combine:(fun acc hit -> if hit then acc + 1 else acc)
    f
