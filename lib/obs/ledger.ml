type tape_stats = {
  tape : string;
  reversals : int;
  cells : int;
  head_moves : int;
  reads : int;
  writes : int;
  faults : int;
}

type t = {
  label : string;
  n : int;
  scans : int;
  reversals : int;
  internal_peak : int;
  budget_overruns : int;
  faults_injected : int;
  tapes : tape_stats list;
  counters : Counters.snapshot;
}

let tape_count l = List.length l.tapes

let sum_by f l = List.fold_left (fun acc ts -> acc + f ts) 0 l.tapes

let head_moves l = sum_by (fun ts -> ts.head_moves) l
let reads l = sum_by (fun ts -> ts.reads) l
let writes l = sum_by (fun ts -> ts.writes) l

let pp ppf l =
  Format.fprintf ppf
    "@[<v>ledger %s (N=%d)@,\
     scans: %d  reversals: %d  internal peak: %d@,\
     tapes: %d  head moves: %d  reads: %d  writes: %d@]" l.label l.n l.scans
    l.reversals l.internal_peak (tape_count l) (head_moves l) (reads l)
    (writes l);
  if l.faults_injected > 0 then
    Format.fprintf ppf "@,faults injected: %d" l.faults_injected;
  if l.budget_overruns > 0 then
    Format.fprintf ppf "@,budget overruns: %d" l.budget_overruns

module Recorder = struct
  type counts = {
    mutable c_moves : int;
    mutable c_reads : int;
    mutable c_writes : int;
  }

  type t = {
    r_label : string;
    mutable groups : Tape.Group.t list; (* reversed observe order *)
    counts : (string, counts) Hashtbl.t;
    baseline : Counters.snapshot;
  }

  let create ?(label = "run") () =
    {
      r_label = label;
      groups = [];
      counts = Hashtbl.create 8;
      baseline = Counters.snapshot ();
    }

  let counts_for r name =
    match Hashtbl.find_opt r.counts name with
    | Some c -> c
    | None ->
        let c = { c_moves = 0; c_reads = 0; c_writes = 0 } in
        Hashtbl.add r.counts name c;
        c

  let observe r g =
    Tape.Group.set_observer g
      (Some
         (fun name ->
           let c = counts_for r name in
           {
             Tape.Observer.on_read = (fun ~pos:_ -> c.c_reads <- c.c_reads + 1);
             on_write = (fun ~pos:_ -> c.c_writes <- c.c_writes + 1);
             on_move = (fun ~pos:_ _ -> c.c_moves <- c.c_moves + 1);
           }));
    r.groups <- g :: r.groups

  let ledger ?(n = 0) r =
    let groups = List.rev r.groups in
    let reports = List.map Tape.Group.report groups in
    let tapes =
      List.concat_map
        (fun rep ->
          List.map2
            (fun (name, revs) ((_, cells), (_, faults)) ->
              let c =
                match Hashtbl.find_opt r.counts name with
                | Some c -> c
                | None -> { c_moves = 0; c_reads = 0; c_writes = 0 }
              in
              {
                tape = name;
                reversals = revs;
                cells;
                head_moves = c.c_moves;
                reads = c.c_reads;
                writes = c.c_writes;
                faults;
              })
            rep.Tape.Group.reversals_by_tape
            (List.combine rep.Tape.Group.cells_by_tape
               rep.Tape.Group.faults_by_tape))
        reports
    in
    let reversals =
      List.fold_left (fun acc (ts : tape_stats) -> acc + ts.reversals) 0 tapes
    in
    {
      label = r.r_label;
      n;
      scans = 1 + reversals;
      reversals;
      internal_peak =
        List.fold_left
          (fun acc rep -> max acc rep.Tape.Group.internal_peak_units)
          0 reports;
      budget_overruns =
        List.fold_left
          (fun acc rep -> acc + rep.Tape.Group.budget_overruns)
          0 reports;
      faults_injected =
        List.fold_left (fun acc (ts : tape_stats) -> acc + ts.faults) 0 tapes;
      tapes;
      counters = Counters.diff (Counters.snapshot ()) ~since:r.baseline;
    }

  (* Summed device stats over every observed group — how much backing
     I/O and cache residency the run's tapes cost. Kept out of the
     ledger record so the trace schema (and its pinned goldens) is
     unchanged; E18 emits these through [Trace.emit_device]. *)
  let device_stats r =
    List.fold_left
      (fun acc g ->
        let s = Tape.Group.device_stats g in
        Tape.Device.
          {
            resident_bytes = acc.resident_bytes + s.resident_bytes;
            io_read_bytes = acc.io_read_bytes + s.io_read_bytes;
            io_write_bytes = acc.io_write_bytes + s.io_write_bytes;
            backing_files = acc.backing_files + s.backing_files;
          })
      Tape.Device.zero_stats r.groups
end
