(** Machine-checking a finished run's {!Ledger} against the complexity
    class a theorem claims for it — the paper's budgets turned into
    executable assertions.

    A {!spec} declares, per resource, an allowance as a function of the
    input size [N]: a constant ([At_most]) or [a·⌈log2 N⌉ + b]
    ({!Log2}), which covers every class the reproduction exercises —
    [ST(O(log N), O(1), O(1))] for the Corollary 7 merge-sort deciders,
    [co-RST(2, O(log N), 1)] for the Theorem 8(a) fingerprint,
    [NST(3, O(log N), 2)] for the Theorem 8(b) verifier. {!check}
    compares a ledger against a spec and reports every resource, pass
    or fail; {!enforce} raises {!Budget_violated} so an over-budget
    machine fails loudly. *)

type bound =
  | At_most of int  (** measured [≤ k], independent of [N] *)
  | Log2 of { per_log2 : float; offset : float }
      (** measured [≤ per_log2 · ⌈log2 (max N 2)⌉ + offset] *)

type spec = {
  name : string;
  scans : bound option;  (** on [ledger.scans] — the [r(N)] budget *)
  internal : bound option;
      (** on [ledger.internal_peak] — the [s(N)] budget, in the
          algorithm's own meter units (bits or registers) *)
  tapes : bound option;  (** on the number of external tapes — [t] *)
}

type check = {
  resource : string;  (** ["scans"], ["internal"] or ["tapes"] *)
  measured : int;
  allowed : int;
  ok : bool;
}

type outcome = {
  spec_name : string;
  n : int;
  ok : bool;  (** all checks passed *)
  checks : check list;
}

exception Budget_violated of outcome

val allowance : bound -> n:int -> int
(** The numeric budget a bound grants at input size [n]. *)

val check : spec -> Ledger.t -> outcome
(** Audit the ledger (at its recorded [n]) against the spec. A spec
    field of [None] skips that resource. *)

val enforce : spec -> Ledger.t -> unit
(** {!check}, raising {!Budget_violated} unless every resource is
    within budget. *)

val pp_outcome : Format.formatter -> outcome -> unit

(** {2 The paper's envelopes}

    Constants are derived from the implementations (see the .ml for
    the arithmetic); they are {e falsifiable} claims the E17 experiment
    and the test suite check on N spanning [2^8 .. 2^14]. *)

val fingerprint_spec : spec
(** Theorem 8(a): 2 scans (1 reversal), [O(log N)] internal bits
    ([44·⌈log2 N⌉ + 88] — eleven [O(log N)]-bit registers with
    [log2 k ≤ 4·log2 N + O(log log N)]), exactly 1 external tape. *)

val mergesort_spec : spec
(** Corollary 7 deciders: [24·⌈log2 N⌉ + 48] scans — exactly three
    times [Extsort.theoretical_scan_bound]'s single-sort envelope,
    covering the second half-sort and the comparison scan (the test
    suite asserts the 3x relationship) — [O(1)] item registers, at
    most 8 tapes (two halves plus two auxiliaries each). *)

val nst_spec : spec
(** Theorem 8(b) verifier: at most 3 scans, [O(1)] registers, 2
    external tapes. *)

val relalg_node_spec : spec
(** Theorem 11(a), per plan node: each relational-algebra operator of
    a fixed query costs [O(log N)] scans exclusive of its subtrees —
    [64·⌈log2 N⌉ + 96], the constant sized for plans of product depth
    at most 4 (the query layer's bound) whose intermediates reach
    [N^4] cells. Scans only; the whole-plan specs own meter and tape
    counts. The query executor audits every [Relalg.eval_streaming]
    profile delta against this envelope. *)

val relalg_symdiff_spec : spec
(** Theorem 11(b): the full symmetric-difference plan
    [(R1 − R2) ∪ (R2 − R1)] — [80·⌈log2 N⌉ + 200] scans (three
    sort-based set operators at two [8·log2+16] half-sorts plus a
    merge each), at most 24 meter units and 40 tapes. *)

val xpath_filter_spec : spec
(** Theorem 13's upper-bound side: the streaming Figure 1 filter —
    [16·⌈log2 N⌉ + 40] scans (extraction scan, two half-sorts, subset
    test) at stream length [N], 16 meter units, 8 tapes. *)
