(** Process-wide activity counters for the layers a single
    [Tape.Group] cannot see: the parallel pool, the retry combinators
    and the checkpoint journal.

    The instrumented layers ([lib/parallel], [lib/faults],
    [lib/harness]) bump these atomics as they work; a
    {!Ledger.Recorder} snapshots them at creation and again at capture
    time, so every ledger carries the {e delta} of pool/retry/checkpoint
    activity attributable to its run. All counters are atomics — safe
    to bump from any domain — and all of them are deterministic for a
    fixed workload: chunk counts depend on trial counts (never on the
    worker count), and retry/checkpoint events are seeded or
    journal-driven. *)

type snapshot = {
  retry_attempts : int;
      (** re-attempts performed by [Faults.Retry.run] after a
          transient failure *)
  retry_gave_up : int;  (** [Faults.Retry.Gave_up] raises *)
  pool_chunks : int;  (** pool jobs executed (chunk granularity) *)
  pool_chunk_retries : int;  (** watchdog chunk re-runs *)
  pool_deadline_overruns : int;  (** chunks that finished past a deadline *)
  pool_degraded_spawns : int;  (** [Domain.spawn] failures absorbed *)
  checkpoint_stored : int;  (** journal entries written *)
  checkpoint_replayed : int;  (** tables replayed from the journal *)
  checkpoint_discarded : int;
      (** corrupt/unparsable journal entries discarded — surfaced here
          so silent discards show up in every ledger *)
  device_corrupt_detected : int;
      (** CRC-framed device reads that failed verification
          ({!Tape.Device.Corrupt} raises) *)
  device_quarantine_rereads : int;
      (** quarantined blocks re-read cleanly — the recovery path *)
  device_cleanup_failures : int;
      (** close/remove failures during device close; each one is a
          potentially leaked spill file, surfaced so it is never
          invisible *)
  census_classes : int;
      (** distinct skeleton classes interned by the Lemma 21 census
          ([Skeleton.Intern], any backend) *)
  census_canonical_hits : int;
      (** machine runs the adversary's canonical-form memo answered
          without replaying the machine *)
  census_spill_reads : int;  (** slot reads against a spill-backed intern store *)
  census_spill_writes : int;  (** slot writes into a spill-backed intern store *)
  census_spill_bytes : int;  (** payload bytes written to spill-backed intern stores *)
  census_shard_merges : int;
      (** shard evidence files folded by [Adversary.Shard.merge] *)
}

val zero : snapshot

val snapshot : unit -> snapshot
(** Current totals since process start (or {!reset}). *)

val diff : snapshot -> since:snapshot -> snapshot
(** Field-wise subtraction: the activity between two snapshots. *)

val to_fields : snapshot -> (string * int) list
(** Every field as a [(name, value)] pair, in declaration order — the
    serialization the serve STATS endpoint and other JSON emitters
    share, so counter names stay consistent across surfaces. *)

val reset : unit -> unit
(** Zero every counter, including the device-side health atomics this
    module mirrors (tests only). *)

(** {2 Incrementors — called by the instrumented layers} *)

val add_retry_attempts : int -> unit
val add_retry_gave_up : int -> unit
val add_pool_chunks : int -> unit
val add_pool_chunk_retries : int -> unit
val add_pool_deadline_overruns : int -> unit
val add_pool_degraded_spawns : int -> unit
val add_checkpoint_stored : int -> unit
val add_checkpoint_replayed : int -> unit
val add_checkpoint_discarded : int -> unit
val add_census_classes : int -> unit
val add_census_canonical_hits : int -> unit
val add_census_spill_reads : int -> unit
val add_census_spill_writes : int -> unit
val add_census_spill_bytes : int -> unit
val add_census_shard_merges : int -> unit
