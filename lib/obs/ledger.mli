(** The cost ledger: everything one run of a tape algorithm consumed,
    in the currencies the paper's theorems are priced in.

    A {!Recorder} is attached to the [Tape.Group]s an algorithm runs on
    (the deciders take an optional [?obs] recorder and attach it
    themselves); it installs value-blind {!Tape.Observer}s on every
    member tape — current and future, so internally created auxiliary
    tapes are covered — and snapshots the process-wide {!Counters} at
    creation. {!Recorder.ledger} then folds the group reports, the
    per-tape observer counts and the counter deltas into one immutable
    {!t}.

    Determinism: a ledger captured around a single-domain run depends
    only on the run itself. Ledgers captured around pool fan-outs see
    chunk counts, which are a function of the trial count, never the
    worker count — so ledgers are bit-identical for [-j 1/2/4], a
    property the test suite pins. A recorder is not itself thread-safe:
    attach it to groups running on one domain (give each parallel trial
    its own recorder). *)

type tape_stats = {
  tape : string;  (** tape name *)
  reversals : int;
  cells : int;  (** cells used (high-water position + 1) *)
  head_moves : int;
  reads : int;
  writes : int;
  faults : int;  (** injected faults *)
}

type t = {
  label : string;
  n : int;  (** input size [N] the run was charged for (0 if unknown) *)
  scans : int;  (** [1 + Σ reversals] — the paper's [r(N)] usage *)
  reversals : int;
  internal_peak : int;  (** meter high-water mark — the [s(N)] usage *)
  budget_overruns : int;
  faults_injected : int;
  tapes : tape_stats list;  (** registration order *)
  counters : Counters.snapshot;
      (** pool/retry/checkpoint activity since the recorder was made *)
}

val tape_count : t -> int
val head_moves : t -> int
(** Total over all tapes. *)

val reads : t -> int
val writes : t -> int

val pp : Format.formatter -> t -> unit

module Recorder : sig
  type ledger := t
  type t

  val create : ?label:string -> unit -> t
  (** A fresh recorder; snapshots {!Counters} now. *)

  val observe : t -> Tape.Group.t -> unit
  (** Instrument the group: every member tape, current and future,
      gets move/read/write counting under its name. Groups are folded
      into the ledger in [observe] order. *)

  val ledger : ?n:int -> t -> ledger
  (** Capture the ledger now. [n] records the input size for budget
      auditing (default 0). Can be called repeatedly; each call
      re-reads the live groups and counters. *)

  val device_stats : t -> Tape.Device.stats
  (** Summed {!Tape.Group.device_stats} over every observed group —
      backing I/O bytes and cache residency. I/O counters survive the
      tapes' [close], so this can be read after a decider returns.
      Deliberately not part of {!ledger}: the trace schema (and its
      pinned goldens) is unchanged; E18 emits these separately through
      [Trace.emit_device]. *)
end
