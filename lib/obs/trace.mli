(** JSONL trace sink — a structured, machine-readable event stream for
    a run of the drivers ([stlb --trace FILE], [bench/main.exe --trace
    FILE]).

    Design constraints, both load-bearing for the test suite:

    - {e Deterministic}: events carry no timestamps, no wall clocks and
      no worker-count-dependent data; field order is fixed by the
      emitter. Two identically seeded runs produce byte-identical
      trace files, for every [-j].
    - {e Main-domain only}: the drivers emit events from the
      sequential experiment loop (per-trial work fans out, but ledgers
      are folded and emitted in trial order on the calling domain), so
      the sink needs no locking.

    Schema: one JSON object per line, always with an ["event"] field.
    The emitters in this tree produce:

    - [{"event":"table","name":"exp1","status":"start"|"done"|"replayed"}]
      — experiment-table lifecycle (from [Harness.Checkpoint.run]);
    - [{"event":"ledger","label":..,"n":..,"scans":..,"reversals":..,
       "internal_peak":..,"tapes":..,"head_moves":..,"reads":..,
       "writes":..,"faults":..,"budget_overruns":..,"retry_attempts":..,
       "pool_chunks":..,"checkpoint_discarded":..}] — one captured
      {!Ledger};
    - [{"event":"audit","spec":..,"n":..,"ok":..,
       "<resource>_measured":..,"<resource>_allowed":..}] — one
      {!Audit} outcome;
    - [{"event":"device","label":..,"kind":..,"resident_bytes":..,
       "io_read_bytes":..,"io_write_bytes":..,"backing_files":..}] —
      one tape group's summed {!Tape.Device.stats} (E18 emits these
      for its external-memory rows; cache geometry and access pattern
      fix the byte counts, so the event is as deterministic as the
      rest of the stream). *)

type t

type value = Bool of bool | Int of int | String of string

val open_file : string -> t
(** Open (truncating) a trace file. *)

val of_channel : out_channel -> t
(** Wrap an existing channel; {!close} flushes but does not close it. *)

val emit : t -> event:string -> (string * value) list -> unit
(** Write one line: [{"event":<event>, <fields in order>}]. *)

val close : t -> unit

val emit_ledger : t -> Ledger.t -> unit
val emit_audit : t -> Audit.outcome -> unit

val emit_device : t -> label:string -> kind:string -> Tape.Device.stats -> unit

(** {2 Current-sink plumbing}

    The experiment harness is a call tree, not a value pipeline;
    threading a sink through every table function would churn every
    signature. Instead the drivers install the sink here and the
    harness emits through {!emit_current}, a no-op when no sink is
    installed. Main-domain only, like the sink itself. *)

val set_current : t option -> unit
val current : unit -> t option

val emit_current : event:string -> (string * value) list -> unit
val ledger_current : Ledger.t -> unit
val audit_current : Audit.outcome -> unit
val device_current : label:string -> kind:string -> Tape.Device.stats -> unit

val with_sink : t -> (unit -> 'a) -> 'a
(** Install the sink, run, restore the previous sink, close this one. *)
