type snapshot = {
  retry_attempts : int;
  retry_gave_up : int;
  pool_chunks : int;
  pool_chunk_retries : int;
  pool_deadline_overruns : int;
  pool_degraded_spawns : int;
  checkpoint_stored : int;
  checkpoint_replayed : int;
  checkpoint_discarded : int;
  device_corrupt_detected : int;
  device_quarantine_rereads : int;
  device_cleanup_failures : int;
}

let zero =
  {
    retry_attempts = 0;
    retry_gave_up = 0;
    pool_chunks = 0;
    pool_chunk_retries = 0;
    pool_deadline_overruns = 0;
    pool_degraded_spawns = 0;
    checkpoint_stored = 0;
    checkpoint_replayed = 0;
    checkpoint_discarded = 0;
    device_corrupt_detected = 0;
    device_quarantine_rereads = 0;
    device_cleanup_failures = 0;
  }

let retry_attempts = Atomic.make 0
let retry_gave_up = Atomic.make 0
let pool_chunks = Atomic.make 0
let pool_chunk_retries = Atomic.make 0
let pool_deadline_overruns = Atomic.make 0
let pool_degraded_spawns = Atomic.make 0
let checkpoint_stored = Atomic.make 0
let checkpoint_replayed = Atomic.make 0
let checkpoint_discarded = Atomic.make 0

let all =
  [
    retry_attempts; retry_gave_up; pool_chunks; pool_chunk_retries;
    pool_deadline_overruns; pool_degraded_spawns; checkpoint_stored;
    checkpoint_replayed; checkpoint_discarded;
  ]

(* the device_* fields are owned by [Tape.Device] (the tape library
   cannot depend on this one); snapshotting reads its atomics *)
let snapshot () =
  {
    retry_attempts = Atomic.get retry_attempts;
    retry_gave_up = Atomic.get retry_gave_up;
    pool_chunks = Atomic.get pool_chunks;
    pool_chunk_retries = Atomic.get pool_chunk_retries;
    pool_deadline_overruns = Atomic.get pool_deadline_overruns;
    pool_degraded_spawns = Atomic.get pool_degraded_spawns;
    checkpoint_stored = Atomic.get checkpoint_stored;
    checkpoint_replayed = Atomic.get checkpoint_replayed;
    checkpoint_discarded = Atomic.get checkpoint_discarded;
    device_corrupt_detected = Tape.Device.corrupt_detected ();
    device_quarantine_rereads = Tape.Device.quarantine_rereads ();
    device_cleanup_failures = Tape.Device.cleanup_failures ();
  }

let diff now ~since =
  {
    retry_attempts = now.retry_attempts - since.retry_attempts;
    retry_gave_up = now.retry_gave_up - since.retry_gave_up;
    pool_chunks = now.pool_chunks - since.pool_chunks;
    pool_chunk_retries = now.pool_chunk_retries - since.pool_chunk_retries;
    pool_deadline_overruns =
      now.pool_deadline_overruns - since.pool_deadline_overruns;
    pool_degraded_spawns = now.pool_degraded_spawns - since.pool_degraded_spawns;
    checkpoint_stored = now.checkpoint_stored - since.checkpoint_stored;
    checkpoint_replayed = now.checkpoint_replayed - since.checkpoint_replayed;
    checkpoint_discarded = now.checkpoint_discarded - since.checkpoint_discarded;
    device_corrupt_detected =
      now.device_corrupt_detected - since.device_corrupt_detected;
    device_quarantine_rereads =
      now.device_quarantine_rereads - since.device_quarantine_rereads;
    device_cleanup_failures =
      now.device_cleanup_failures - since.device_cleanup_failures;
  }

let to_fields s =
  [
    ("retry_attempts", s.retry_attempts);
    ("retry_gave_up", s.retry_gave_up);
    ("pool_chunks", s.pool_chunks);
    ("pool_chunk_retries", s.pool_chunk_retries);
    ("pool_deadline_overruns", s.pool_deadline_overruns);
    ("pool_degraded_spawns", s.pool_degraded_spawns);
    ("checkpoint_stored", s.checkpoint_stored);
    ("checkpoint_replayed", s.checkpoint_replayed);
    ("checkpoint_discarded", s.checkpoint_discarded);
    ("device_corrupt_detected", s.device_corrupt_detected);
    ("device_quarantine_rereads", s.device_quarantine_rereads);
    ("device_cleanup_failures", s.device_cleanup_failures);
  ]

let reset () =
  List.iter (fun c -> Atomic.set c 0) all;
  Tape.Device.reset_health ()

let add c n = if n <> 0 then ignore (Atomic.fetch_and_add c n)

let add_retry_attempts n = add retry_attempts n
let add_retry_gave_up n = add retry_gave_up n
let add_pool_chunks n = add pool_chunks n
let add_pool_chunk_retries n = add pool_chunk_retries n
let add_pool_deadline_overruns n = add pool_deadline_overruns n
let add_pool_degraded_spawns n = add pool_degraded_spawns n
let add_checkpoint_stored n = add checkpoint_stored n
let add_checkpoint_replayed n = add checkpoint_replayed n
let add_checkpoint_discarded n = add checkpoint_discarded n
