type snapshot = {
  retry_attempts : int;
  retry_gave_up : int;
  pool_chunks : int;
  pool_chunk_retries : int;
  pool_deadline_overruns : int;
  pool_degraded_spawns : int;
  checkpoint_stored : int;
  checkpoint_replayed : int;
  checkpoint_discarded : int;
  device_corrupt_detected : int;
  device_quarantine_rereads : int;
  device_cleanup_failures : int;
  census_classes : int;
  census_canonical_hits : int;
  census_spill_reads : int;
  census_spill_writes : int;
  census_spill_bytes : int;
  census_shard_merges : int;
}

let zero =
  {
    retry_attempts = 0;
    retry_gave_up = 0;
    pool_chunks = 0;
    pool_chunk_retries = 0;
    pool_deadline_overruns = 0;
    pool_degraded_spawns = 0;
    checkpoint_stored = 0;
    checkpoint_replayed = 0;
    checkpoint_discarded = 0;
    device_corrupt_detected = 0;
    device_quarantine_rereads = 0;
    device_cleanup_failures = 0;
    census_classes = 0;
    census_canonical_hits = 0;
    census_spill_reads = 0;
    census_spill_writes = 0;
    census_spill_bytes = 0;
    census_shard_merges = 0;
  }

let retry_attempts = Atomic.make 0
let retry_gave_up = Atomic.make 0
let pool_chunks = Atomic.make 0
let pool_chunk_retries = Atomic.make 0
let pool_deadline_overruns = Atomic.make 0
let pool_degraded_spawns = Atomic.make 0
let checkpoint_stored = Atomic.make 0
let checkpoint_replayed = Atomic.make 0
let checkpoint_discarded = Atomic.make 0
let census_classes = Atomic.make 0
let census_canonical_hits = Atomic.make 0
let census_spill_reads = Atomic.make 0
let census_spill_writes = Atomic.make 0
let census_spill_bytes = Atomic.make 0
let census_shard_merges = Atomic.make 0

let all =
  [
    retry_attempts; retry_gave_up; pool_chunks; pool_chunk_retries;
    pool_deadline_overruns; pool_degraded_spawns; checkpoint_stored;
    checkpoint_replayed; checkpoint_discarded; census_classes;
    census_canonical_hits; census_spill_reads; census_spill_writes;
    census_spill_bytes; census_shard_merges;
  ]

(* the device_* fields are owned by [Tape.Device] (the tape library
   cannot depend on this one); snapshotting reads its atomics *)
let snapshot () =
  {
    retry_attempts = Atomic.get retry_attempts;
    retry_gave_up = Atomic.get retry_gave_up;
    pool_chunks = Atomic.get pool_chunks;
    pool_chunk_retries = Atomic.get pool_chunk_retries;
    pool_deadline_overruns = Atomic.get pool_deadline_overruns;
    pool_degraded_spawns = Atomic.get pool_degraded_spawns;
    checkpoint_stored = Atomic.get checkpoint_stored;
    checkpoint_replayed = Atomic.get checkpoint_replayed;
    checkpoint_discarded = Atomic.get checkpoint_discarded;
    device_corrupt_detected = Tape.Device.corrupt_detected ();
    device_quarantine_rereads = Tape.Device.quarantine_rereads ();
    device_cleanup_failures = Tape.Device.cleanup_failures ();
    census_classes = Atomic.get census_classes;
    census_canonical_hits = Atomic.get census_canonical_hits;
    census_spill_reads = Atomic.get census_spill_reads;
    census_spill_writes = Atomic.get census_spill_writes;
    census_spill_bytes = Atomic.get census_spill_bytes;
    census_shard_merges = Atomic.get census_shard_merges;
  }

let diff now ~since =
  {
    retry_attempts = now.retry_attempts - since.retry_attempts;
    retry_gave_up = now.retry_gave_up - since.retry_gave_up;
    pool_chunks = now.pool_chunks - since.pool_chunks;
    pool_chunk_retries = now.pool_chunk_retries - since.pool_chunk_retries;
    pool_deadline_overruns =
      now.pool_deadline_overruns - since.pool_deadline_overruns;
    pool_degraded_spawns = now.pool_degraded_spawns - since.pool_degraded_spawns;
    checkpoint_stored = now.checkpoint_stored - since.checkpoint_stored;
    checkpoint_replayed = now.checkpoint_replayed - since.checkpoint_replayed;
    checkpoint_discarded = now.checkpoint_discarded - since.checkpoint_discarded;
    device_corrupt_detected =
      now.device_corrupt_detected - since.device_corrupt_detected;
    device_quarantine_rereads =
      now.device_quarantine_rereads - since.device_quarantine_rereads;
    device_cleanup_failures =
      now.device_cleanup_failures - since.device_cleanup_failures;
    census_classes = now.census_classes - since.census_classes;
    census_canonical_hits = now.census_canonical_hits - since.census_canonical_hits;
    census_spill_reads = now.census_spill_reads - since.census_spill_reads;
    census_spill_writes = now.census_spill_writes - since.census_spill_writes;
    census_spill_bytes = now.census_spill_bytes - since.census_spill_bytes;
    census_shard_merges = now.census_shard_merges - since.census_shard_merges;
  }

let to_fields s =
  [
    ("retry_attempts", s.retry_attempts);
    ("retry_gave_up", s.retry_gave_up);
    ("pool_chunks", s.pool_chunks);
    ("pool_chunk_retries", s.pool_chunk_retries);
    ("pool_deadline_overruns", s.pool_deadline_overruns);
    ("pool_degraded_spawns", s.pool_degraded_spawns);
    ("checkpoint_stored", s.checkpoint_stored);
    ("checkpoint_replayed", s.checkpoint_replayed);
    ("checkpoint_discarded", s.checkpoint_discarded);
    ("device_corrupt_detected", s.device_corrupt_detected);
    ("device_quarantine_rereads", s.device_quarantine_rereads);
    ("device_cleanup_failures", s.device_cleanup_failures);
    ("census_classes", s.census_classes);
    ("census_canonical_hits", s.census_canonical_hits);
    ("census_spill_reads", s.census_spill_reads);
    ("census_spill_writes", s.census_spill_writes);
    ("census_spill_bytes", s.census_spill_bytes);
    ("census_shard_merges", s.census_shard_merges);
  ]

let reset () =
  List.iter (fun c -> Atomic.set c 0) all;
  Tape.Device.reset_health ()

let add c n = if n <> 0 then ignore (Atomic.fetch_and_add c n)

let add_retry_attempts n = add retry_attempts n
let add_retry_gave_up n = add retry_gave_up n
let add_pool_chunks n = add pool_chunks n
let add_pool_chunk_retries n = add pool_chunk_retries n
let add_pool_deadline_overruns n = add pool_deadline_overruns n
let add_pool_degraded_spawns n = add pool_degraded_spawns n
let add_checkpoint_stored n = add checkpoint_stored n
let add_checkpoint_replayed n = add checkpoint_replayed n
let add_checkpoint_discarded n = add checkpoint_discarded n
let add_census_classes n = add census_classes n
let add_census_canonical_hits n = add census_canonical_hits n
let add_census_spill_reads n = add census_spill_reads n
let add_census_spill_writes n = add census_spill_writes n
let add_census_spill_bytes n = add census_spill_bytes n
let add_census_shard_merges n = add census_shard_merges n
