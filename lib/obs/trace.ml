type value = Bool of bool | Int of int | String of string

type t = { oc : out_channel; owns : bool }

let open_file path = { oc = open_out path; owns = true }
let of_channel oc = { oc; owns = false }

let escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let emit t ~event fields =
  let b = Buffer.create 128 in
  Buffer.add_string b "{\"event\":\"";
  Buffer.add_string b (escape event);
  Buffer.add_char b '"';
  List.iter
    (fun (k, v) ->
      Buffer.add_string b ",\"";
      Buffer.add_string b (escape k);
      Buffer.add_string b "\":";
      match v with
      | Bool bo -> Buffer.add_string b (if bo then "true" else "false")
      | Int i -> Buffer.add_string b (string_of_int i)
      | String s ->
          Buffer.add_char b '"';
          Buffer.add_string b (escape s);
          Buffer.add_char b '"')
    fields;
  Buffer.add_string b "}\n";
  Out_channel.output_string t.oc (Buffer.contents b)

let close t =
  flush t.oc;
  if t.owns then close_out t.oc

let ledger_fields (l : Ledger.t) =
  let c = l.Ledger.counters in
  [
    ("label", String l.Ledger.label);
    ("n", Int l.Ledger.n);
    ("scans", Int l.Ledger.scans);
    ("reversals", Int l.Ledger.reversals);
    ("internal_peak", Int l.Ledger.internal_peak);
    ("tapes", Int (Ledger.tape_count l));
    ("head_moves", Int (Ledger.head_moves l));
    ("reads", Int (Ledger.reads l));
    ("writes", Int (Ledger.writes l));
    ("faults", Int l.Ledger.faults_injected);
    ("budget_overruns", Int l.Ledger.budget_overruns);
    ("retry_attempts", Int c.Counters.retry_attempts);
    ("retry_gave_up", Int c.Counters.retry_gave_up);
    ("pool_chunks", Int c.Counters.pool_chunks);
    ("pool_chunk_retries", Int c.Counters.pool_chunk_retries);
    ("checkpoint_discarded", Int c.Counters.checkpoint_discarded);
    ("device_corrupt", Int c.Counters.device_corrupt_detected);
    ("device_rereads", Int c.Counters.device_quarantine_rereads);
    ("device_cleanup_failures", Int c.Counters.device_cleanup_failures);
  ]

let emit_ledger t l = emit t ~event:"ledger" (ledger_fields l)

let audit_fields (o : Audit.outcome) =
  (("spec", String o.Audit.spec_name)
  :: ("n", Int o.Audit.n)
  :: ("ok", Bool o.Audit.ok)
  :: List.concat_map
       (fun c ->
         [
           (c.Audit.resource ^ "_measured", Int c.Audit.measured);
           (c.Audit.resource ^ "_allowed", Int c.Audit.allowed);
         ])
       o.Audit.checks)

let emit_audit t o = emit t ~event:"audit" (audit_fields o)

(* Device stats are deterministic for a fixed program: cache geometry
   and access pattern fix the I/O byte counts, so the event keeps the
   -j 1/2/4 bit-identity the sink promises. *)
let device_fields ~label ~kind (s : Tape.Device.stats) =
  [
    ("label", String label);
    ("kind", String kind);
    ("resident_bytes", Int s.Tape.Device.resident_bytes);
    ("io_read_bytes", Int s.Tape.Device.io_read_bytes);
    ("io_write_bytes", Int s.Tape.Device.io_write_bytes);
    ("backing_files", Int s.Tape.Device.backing_files);
  ]

let emit_device t ~label ~kind s = emit t ~event:"device" (device_fields ~label ~kind s)

(* main-domain only, like the sink itself *)
let current_sink = ref None

let set_current t = current_sink := t
let current () = !current_sink

let emit_current ~event fields =
  match !current_sink with None -> () | Some t -> emit t ~event fields

let ledger_current l =
  match !current_sink with None -> () | Some t -> emit_ledger t l

let audit_current o =
  match !current_sink with None -> () | Some t -> emit_audit t o

let device_current ~label ~kind s =
  match !current_sink with None -> () | Some t -> emit_device t ~label ~kind s

(* Device integrity events flow into whatever sink is current. The
   listener is installed once, at link time; it emits tape names and
   cell offsets (never backing paths, whose names embed pids and
   allocation counters) plus the basename of a leaked file, so traces
   of identically-seeded runs stay byte-identical. *)
let () =
  Tape.Device.on_event (fun e ->
      match e with
      | Tape.Device.Corrupt_detected { device; offset } ->
          emit_current ~event:"storage"
            [
              ("what", String "corrupt"); ("device", String device);
              ("offset", Int offset);
            ]
      | Tape.Device.Quarantine_reread { device; offset } ->
          emit_current ~event:"storage"
            [
              ("what", String "reread"); ("device", String device);
              ("offset", Int offset);
            ]
      | Tape.Device.Cleanup_failed { device; path; error = _ } ->
          emit_current ~event:"storage"
            [
              ("what", String "cleanup-failed"); ("device", String device);
              ("file", String (Filename.basename path));
            ])

let with_sink t f =
  let saved = !current_sink in
  current_sink := Some t;
  Fun.protect
    ~finally:(fun () ->
      current_sink := saved;
      close t)
    f
