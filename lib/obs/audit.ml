type bound = At_most of int | Log2 of { per_log2 : float; offset : float }

type spec = {
  name : string;
  scans : bound option;
  internal : bound option;
  tapes : bound option;
}

type check = { resource : string; measured : int; allowed : int; ok : bool }
type outcome = { spec_name : string; n : int; ok : bool; checks : check list }

exception Budget_violated of outcome

let ceil_log2 n =
  int_of_float (ceil (log (float_of_int (max 2 n)) /. log 2.0))

let allowance bound ~n =
  match bound with
  | At_most k -> k
  | Log2 { per_log2; offset } ->
      int_of_float ((per_log2 *. float_of_int (ceil_log2 n)) +. offset)

let check spec (l : Ledger.t) =
  let n = l.Ledger.n in
  let one resource bound measured =
    match bound with
    | None -> None
    | Some b ->
        let allowed = allowance b ~n in
        Some { resource; measured; allowed; ok = measured <= allowed }
  in
  let checks =
    List.filter_map Fun.id
      [
        one "scans" spec.scans l.Ledger.scans;
        one "internal" spec.internal l.Ledger.internal_peak;
        one "tapes" spec.tapes (Ledger.tape_count l);
      ]
  in
  {
    spec_name = spec.name;
    n;
    ok = List.for_all (fun (c : check) -> c.ok) checks;
    checks;
  }

let enforce spec l =
  let o = check spec l in
  if not o.ok then raise (Budget_violated o)

let pp_outcome ppf o =
  Format.fprintf ppf "@[<v>audit %s at N=%d: %s" o.spec_name o.n
    (if o.ok then "PASS" else "FAIL");
  List.iter
    (fun c ->
      Format.fprintf ppf "@,  %-8s %d <= %d  %s" c.resource c.measured c.allowed
        (if c.ok then "ok" else "VIOLATED"))
    o.checks;
  Format.fprintf ppf "@]"

(* Theorem 8(a). Internal bits: the second scan holds 11 registers of
   [bits_of (6k)] bits with k = m^3 * n * ceil(log2 (m^3 n)). Since
   2m <= N and n <= N, m^3 n <= N^4 / 8, so
   log2 (6k) <= 4*log2 N + log2 (0.75 * 4 * log2 N) <= 4*log2 N +
   log2 log2 N + 2, and 11 of those registers fit in
   44*ceil(log2 N) + 88 bits with room for the scan-1 counters. *)
let fingerprint_spec =
  {
    name = "fingerprint (Thm 8a)";
    scans = Some (At_most 2);
    internal = Some (Log2 { per_log2 = 44.0; offset = 88.0 });
    tapes = Some (At_most 1);
  }

(* Corollary 7. Scans: the deciders sort BOTH halves, and each
   half-sort runs ceil(log2 m) distribute+merge passes at 12 reversals
   per pass across the data and auxiliary tapes (E3 fits the two-sort
   deciders at 24·log2 N − 114 exactly). The closed form below is
   three times [Extsort.theoretical_scan_bound]'s 8·ceil(log2 N) + 16
   single-sort envelope — same O(log N) class, headroom for the second
   sort plus the comparison scan. The constants are duplicated on
   purpose: the audit layer must not depend on the code it audits —
   the test suite asserts the 3x relationship holds. Registers: the
   2-way sort holds 6, a comparison scan at most 4. Tapes: two halves
   plus two auxiliaries per sorted half. *)
let mergesort_spec =
  {
    name = "merge sort (Cor 7)";
    scans = Some (Log2 { per_log2 = 24.0; offset = 48.0 });
    internal = Some (At_most 16);
    tapes = Some (At_most 8);
  }

(* Theorem 8(b): one forward scan with local checks, one backward scan
   for copy consistency, 8 cell registers, 2 external tapes. *)
let nst_spec =
  {
    name = "NST verifier (Thm 8b)";
    scans = Some (At_most 3);
    internal = Some (At_most 8);
    tapes = Some (At_most 2);
  }

(* Theorem 11(a): each relational-algebra operator of a fixed query is
   a constant number of scans plus sorting steps, so O(log N) scans
   per plan node. The constant absorbs intermediate blow-up: a product
   chain of depth d sorts streams of up to N^d cells, multiplying the
   8·log2+16 single-sort envelope by d. The query layer bounds plans
   to product depth ≤ 4 (comprehensions take at most three
   generators), so 4 × (2 sorts + merge + copies) fits under
   64·⌈log2 N⌉ + 96. Only scans are bounded: the node-level meter and
   tape counts are owned by the whole-plan specs below. *)
let relalg_node_spec =
  {
    name = "relalg operator (Thm 11a)";
    scans = Some (Log2 { per_log2 = 64.0; offset = 96.0 });
    internal = None;
    tapes = None;
  }

(* Theorem 11(b): the symmetric-difference query
   Q' = (R1 − R2) ∪ (R2 − R1) — two diffs and a union, each two
   sorted copies (8·log2+16 apiece) plus a merge scan, over streams
   never longer than N. Tapes: 2 inputs + 3 ops × (2 sorted copies,
   each with 2 sort auxiliaries, + 1 output). Internal: the evaluator
   pins 8 meter units; the in-flight sort adds its own transient
   registers. *)
let relalg_symdiff_spec =
  {
    name = "relalg symdiff (Thm 11b)";
    scans = Some (Log2 { per_log2 = 80.0; offset = 200.0 });
    internal = Some (At_most 24);
    tapes = Some (At_most 40);
  }

(* Theorem 13 upper bound (via Corollary 7): the Figure 1 filter on a
   serialized instance document — one extraction scan, two half-sorts
   of the string multisets (8·log2+16 each, multiset size < stream
   length), one merged subset-test scan. Tapes: stream + two string
   tapes + 2 sort auxiliaries each. *)
let xpath_filter_spec =
  {
    name = "xpath filter (Thm 13)";
    scans = Some (Log2 { per_log2 = 16.0; offset = 40.0 });
    internal = Some (At_most 16);
    tapes = Some (At_most 8);
  }
