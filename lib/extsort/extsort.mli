(** External-memory merge sort and the Corollary 7 upper bounds.

    Chen and Yap (Lemma 7 of "Reversal complexity") show sorting is
    possible with [O(log N)] head reversals, [O(1)] internal memory and
    two extra external tapes; Corollary 7 uses this to place
    SET-EQUALITY, MULTISET-EQUALITY and CHECK-SORT in
    [ST(O(log N), O(1), 2)]. This module implements the classic
    balanced two-way merge sort on the instrumented {!Tape} substrate —
    every reversal is counted by the tapes themselves, and the
    experiment harness verifies the [a·log2 N + b] growth.

    Internal-memory convention: the meter charges one unit per {e item
    register} the algorithm holds (current run heads, counters). Whole
    items are compared under the heads at unit cost, as in the paper's
    model where the machine state compares streams symbol by symbol; no
    unbounded buffering ever happens, so every algorithm here reports
    an O(1) register peak. *)

(** All deciders accept an optional [budget]: running inside a
    [Tape.Group] budget turns every claimed resource bound into an
    {e enforced} one — exceeding it raises [Tape.Budget_exceeded]
    mid-run, which the tests use to demonstrate that O(log N) scans are
    genuinely needed by this implementation.

    All deciders also accept an optional fault plan ([?faults]) and
    retry policy ([?retry]). With a plan attached, every data and
    auxiliary tape draws injected faults from the plan's deterministic
    per-tape streams, and each restartable phase (a distribution pass,
    a merge pass, a comparison scan) runs under [Faults.Retry.run]: a
    transient I/O fault re-runs the phase from scratch, re-seeking the
    tapes through ordinary [move] calls so recovery pays honest
    reversal costs. A [?retry] policy alone (no plan) engages the same
    combinator for faults that originate {e below} the device seam — a
    storage fault plan ({!Faults.Storage}) surfaces checksum failures
    and I/O errors from ordinary reads and writes, and the phases
    recover identically. Without both the retry machinery is skipped
    entirely and behaviour is bit-identical to the pre-fault code.

    Every decider further accepts an optional device spec
    ([?device]): with [Tape.Device.File _] or [Shard _] the data and
    auxiliary tapes spill to backing storage behind a bounded cache —
    the ST model at external N — while all counters, budgets, fault
    hooks and ledgers behave identically to the in-RAM backend (the
    backend-parity property the tests pin down). Spill files are
    scratch: they are deleted when the decider returns. [?codec] on the
    in-place sorts is the cell byte-format the group's device needs;
    the wrappers derive it from the items automatically.

    Finally, every decider accepts an optional ledger recorder
    ([?obs]). The recorder observes the decider's private tape group —
    including every auxiliary tape the sort creates — so that after
    the run [Obs.Ledger.Recorder.ledger] yields per-tape head
    movements, reversals, reads and writes for theorem-budget auditing
    ({!Obs.Audit}). Without [?obs] no observer is installed and the
    per-operation cost is a single pattern match on [None]. *)

type report = {
  n : int;  (** input size [N] of the instance (or item count for raw sorts) *)
  scans : int;  (** [1 + Σ reversals] over all external tapes *)
  reversals : int;
  register_peak : int;  (** internal-memory meter peak *)
  tapes : int;  (** number of external tapes used *)
  faults : int;  (** injected faults over all tapes (0 without a plan) *)
}

val sort_tape :
  ?faults:Faults.Plan.t ->
  ?retry:Faults.Retry.policy ->
  ?codec:string Tape.Device.Codec.t ->
  Tape.Group.t -> string Tape.t -> len:int -> unit
(** [sort_tape g t ~len] sorts the first [len] cells of [t]
    (lexicographically ascending, the CHECK-SORT order) in place, using
    two auxiliary tapes registered in [g]. The head is left at
    position 0. [?faults] attaches the plan to the auxiliary tapes it
    creates (the caller attaches it to [t]) and wraps each pass in
    retries. *)

val sort_tape_k :
  ?faults:Faults.Plan.t ->
  ?retry:Faults.Retry.policy ->
  ?codec:string Tape.Device.Codec.t ->
  Tape.Group.t -> string Tape.t -> len:int -> ways:int -> unit
(** [ways]-way balanced merge sort ([ways ≥ 2]; {!sort_tape} is the
    2-way case): [ways] auxiliary tapes, [⌈log_ways len⌉] passes. The
    ablation experiment (E14) measures the scan trade-off: more tapes
    per pass but logarithmically fewer passes, the classic
    tape-sorting design choice. The model charges nothing extra for
    tapes (t is a constant parameter), so larger [ways] strictly
    reduces scans until the per-pass constant dominates.
    @raise Invalid_argument if [ways < 2]. *)

val sort_k :
  ?faults:Faults.Plan.t ->
  ?retry:Faults.Retry.policy ->
  ?obs:Obs.Ledger.Recorder.t ->
  ?device:Tape.Device.spec ->
  ways:int -> string list -> string list * report
(** Wrapper over {!sort_tape_k} with measured resources. *)

val sort :
  ?budget:Tape.Group.budget ->
  ?faults:Faults.Plan.t ->
  ?retry:Faults.Retry.policy ->
  ?obs:Obs.Ledger.Recorder.t ->
  ?device:Tape.Device.spec ->
  string list -> string list * report
(** Convenience wrapper: sort a list of items through the tape
    machinery and report the measured resources. *)

val check_sort :
  ?budget:Tape.Group.budget ->
  ?faults:Faults.Plan.t ->
  ?retry:Faults.Retry.policy ->
  ?obs:Obs.Ledger.Recorder.t ->
  ?device:Tape.Device.spec ->
  Problems.Instance.t -> bool * report
(** Corollary 7 algorithm for CHECK-SORT: sort the first half, then a
    single parallel scan against the second half. *)

val multiset_equality :
  ?budget:Tape.Group.budget ->
  ?faults:Faults.Plan.t ->
  ?retry:Faults.Retry.policy ->
  ?obs:Obs.Ledger.Recorder.t ->
  ?device:Tape.Device.spec ->
  Problems.Instance.t -> bool * report
(** Sort both halves, compare pointwise. *)

val set_equality :
  ?budget:Tape.Group.budget ->
  ?faults:Faults.Plan.t ->
  ?retry:Faults.Retry.policy ->
  ?obs:Obs.Ledger.Recorder.t ->
  ?device:Tape.Device.spec ->
  Problems.Instance.t -> bool * report
(** Sort both halves, compare with on-the-fly duplicate elimination
    (one carried item per stream). *)

val decide :
  ?budget:Tape.Group.budget ->
  ?faults:Faults.Plan.t ->
  ?retry:Faults.Retry.policy ->
  ?obs:Obs.Ledger.Recorder.t ->
  ?device:Tape.Device.spec ->
  Problems.Decide.problem -> Problems.Instance.t ->
  bool * report
(** Dispatch on the problem. *)

val disjoint :
  ?budget:Tape.Group.budget ->
  ?faults:Faults.Plan.t ->
  ?retry:Faults.Retry.policy ->
  ?obs:Obs.Ledger.Recorder.t ->
  ?device:Tape.Device.spec ->
  Problems.Instance.t -> bool * report
(** The DISJOINT-SETS problem (the paper's Section 9 open case): sort
    both halves, one merge scan looking for a common element. The same
    [O(log N)] scans / O(1) registers envelope as the Corollary 7
    deciders — the open question is only whether [o(log N)] is
    impossible, not whether [O(log N)] suffices. *)

val theoretical_scan_bound : n:int -> int
(** A closed-form bound [8·⌈log2 max(n,2)⌉ + 16] on the scans a
    {e single} tape sort (and the one-sort decider {!check_sort}) uses
    on instances of size [n]; the test suite asserts the measured
    scans never exceed it. The two-sort deciders ({!multiset_equality},
    {!set_equality}, {!disjoint}) stay within three times this bound —
    the allowance [Obs.Audit.mergesort_spec] grants. *)
