module I = Problems.Instance
module B = Util.Bitstring

type report = {
  n : int;
  scans : int;
  reversals : int;
  register_peak : int;
  tapes : int;
  faults : int;
}

let seek tp target =
  while Tape.position tp < target do
    Tape.move tp Tape.Right
  done;
  while Tape.position tp > target do
    Tape.move tp Tape.Left
  done

(* Fault plumbing. Every phase below (a distribution pass, a merge
   pass, a comparison scan) is restartable: it re-seeks its tapes and
   rebuilds its registers from scratch, so wrapping it in [Retry.run]
   survives injected [Faults.Transient_io] failures — and the re-seeks
   go through the ordinary [move] calls, so recovery is charged honest
   reversal costs by the tapes themselves. Fault-free runs ([?faults]
   absent) skip the combinator entirely. *)

let attach_opt faults tp =
  match faults with None -> () | Some p -> Faults.attach_string p tp

(* Register the decider's private group with the caller's ledger
   recorder. Must run before any tape is added so the recorder's
   observer factory reaches the data tapes and every auxiliary tape
   the sort creates later. *)
let observe_opt obs g =
  match obs with None -> () | Some r -> Obs.Ledger.Recorder.observe r g

(* A byte-backed device needs a cell codec; the items themselves bound
   the encoded size. [Tuple] framing is order-preserving, so cells in a
   spilled run compare bytewise exactly as the in-RAM strings do. *)
let codec_for g items =
  match Tape.Group.device g with
  | Tape.Device.Mem -> None
  | _ ->
      let max_len =
        List.fold_left (fun a s -> max a (String.length s)) 1 items
      in
      Some (Tape.Device.Codec.tuple_string ~max_len)

(* A retry policy alone (no above-seam plan) also engages the
   combinator: storage-level faults injected below the [Device.Raw]
   seam surface as [Corrupt]/[Unix_error] from ordinary reads and
   writes, and the phases recover from those exactly as from injected
   tape faults — rewinding through ordinary [move]s, paying honest
   reversals. Runs with neither are bit-identical to the bare code. *)
let phase ?faults ?retry ~label f =
  match (faults, retry) with
  | None, None -> f ()
  | _ ->
      let seed = match faults with Some p -> Faults.Plan.seed p | None -> 0 in
      Faults.Retry.run ?policy:retry ~seed ~label f

let read_at tp pos =
  seek tp pos;
  Tape.read tp

(* Read cells [0 .. len-1] in one left-to-right scan: seek once, then
   read/advance cell by cell. Indexed [read_at] reads would re-seek
   from wherever the head was left — correct, but each seek is charged
   head moves, and an application order other than strictly ascending
   turns the readback into O(len · seek). *)
let read_run tp ~len =
  seek tp 0;
  let out = ref [] in
  for i = 0 to len - 1 do
    if i > 0 then Tape.move tp Tape.Right;
    out := Tape.read tp :: !out
  done;
  List.rev !out

let write_at tp pos x =
  seek tp pos;
  Tape.write tp x

let sort_tape ?faults ?retry ?codec g t ~len =
  let meter = Tape.Group.meter g in
  (* registers: run length, three stream indices, two run bounds *)
  Tape.Meter.with_units meter 6 (fun () ->
      let aux1 =
        Tape.Group.tape g ~name:(Tape.name t ^ "-aux1") ?codec ~blank:"" ()
      in
      let aux2 =
        Tape.Group.tape g ~name:(Tape.name t ^ "-aux2") ?codec ~blank:"" ()
      in
      attach_opt faults aux1;
      attach_opt faults aux2;
      let run = ref 1 in
      while !run < len do
        (* distribute alternating runs of length !run onto aux1/aux2;
           a retry redistributes from the (unchanged) data tape *)
        let n1 = ref 0 and n2 = ref 0 in
        phase ?faults ?retry ~label:"sort-distribute" (fun () ->
            n1 := 0;
            n2 := 0;
            for i = 0 to len - 1 do
              let x = read_at t i in
              if i / !run mod 2 = 0 then begin
                write_at aux1 !n1 x;
                incr n1
              end
              else begin
                write_at aux2 !n2 x;
                incr n2
              end
            done);
        (* merge run pairs back onto t; a retry re-merges from the
           (unchanged) aux tapes, rewriting t from position 0 *)
        phase ?faults ?retry ~label:"sort-merge" (fun () ->
            let out = ref 0 in
            let k = ref 0 in
            while !out < len do
              let lo1 = !k * !run and lo2 = !k * !run in
              let hi1 = min (lo1 + !run) !n1 and hi2 = min (lo2 + !run) !n2 in
              let i1 = ref lo1 and i2 = ref lo2 in
              while !i1 < hi1 || !i2 < hi2 do
                let take1 =
                  if !i2 >= hi2 then true
                  else if !i1 >= hi1 then false
                  else String.compare (read_at aux1 !i1) (read_at aux2 !i2) <= 0
                in
                if take1 then begin
                  write_at t !out (read_at aux1 !i1);
                  incr i1
                end
                else begin
                  write_at t !out (read_at aux2 !i2);
                  incr i2
                end;
                incr out
              done;
              incr k
            done);
        run := !run * 2
      done;
      phase ?faults ?retry ~label:"sort-rewind" (fun () -> seek t 0))

let sort_tape_k ?faults ?retry ?codec g t ~len ~ways =
  if ways < 2 then invalid_arg "Extsort.sort_tape_k: ways >= 2";
  let meter = Tape.Group.meter g in
  (* registers: run length, [ways] stream indices and bounds, counters *)
  Tape.Meter.with_units meter (2 + (2 * ways)) (fun () ->
      let aux =
        Array.init ways (fun i ->
            Tape.Group.tape g ~name:(Printf.sprintf "%s-aux%d" (Tape.name t) i)
              ?codec ~blank:"" ())
      in
      Array.iter (attach_opt faults) aux;
      let run = ref 1 in
      while !run < len do
        (* distribute runs of length !run round-robin over the aux tapes *)
        let counts = Array.make ways 0 in
        phase ?faults ?retry ~label:"sort-distribute" (fun () ->
            Array.fill counts 0 ways 0;
            for i = 0 to len - 1 do
              let w = i / !run mod ways in
              write_at aux.(w) counts.(w) (read_at t i);
              counts.(w) <- counts.(w) + 1
            done);
        (* merge groups of [ways] runs back onto t *)
        phase ?faults ?retry ~label:"sort-merge" (fun () ->
        let out = ref 0 in
        let k = ref 0 in
        while !out < len do
          let lo = !k * !run in
          let idx = Array.make ways lo in
          let hi = Array.map (fun c -> min (lo + !run) c) counts in
          let exhausted w = idx.(w) >= hi.(w) in
          while Array.exists (fun w -> not (exhausted w)) (Array.init ways Fun.id) do
            (* pick the smallest current head among live streams *)
            let best = ref (-1) in
            for w = 0 to ways - 1 do
              if not (exhausted w) then
                if
                  !best = -1
                  || String.compare (read_at aux.(w) idx.(w))
                       (read_at aux.(!best) idx.(!best))
                     < 0
                then best := w
            done;
            write_at t !out (read_at aux.(!best) idx.(!best));
            idx.(!best) <- idx.(!best) + 1;
            incr out
          done;
          incr k
        done);
        run := !run * ways
      done;
      phase ?faults ?retry ~label:"sort-rewind" (fun () -> seek t 0))

let report_of ?(n_override = None) g n =
  let r = Tape.Group.report g in
  {
    n = (match n_override with Some v -> v | None -> n);
    scans = r.Tape.Group.scans_used;
    reversals = r.Tape.Group.scans_used - 1;
    register_peak = r.Tape.Group.internal_peak_units;
    tapes = List.length r.Tape.Group.reversals_by_tape;
    faults = Tape.Group.faults_injected g;
  }

let sort ?budget ?faults ?retry ?obs ?device items =
  let g = Tape.Group.create ?budget ?device () in
  observe_opt obs g;
  let codec = codec_for g items in
  Fun.protect ~finally:(fun () -> Tape.Group.close_all g) @@ fun () ->
  let t = Tape.Group.tape g ~name:"data" ?codec ~blank:"" () in
  phase ?faults ?retry ~label:"preload" (fun () -> Tape.preload t items);
  attach_opt faults t;
  let len = List.length items in
  if len > 1 then sort_tape ?faults ?retry ?codec g t ~len;
  let out =
    phase ?faults ?retry ~label:"sort-readback" (fun () -> read_run t ~len)
  in
  (out, report_of g len)

let sort_k ?faults ?retry ?obs ?device ~ways items =
  let g = Tape.Group.create ?device () in
  observe_opt obs g;
  let codec = codec_for g items in
  Fun.protect ~finally:(fun () -> Tape.Group.close_all g) @@ fun () ->
  let t = Tape.Group.tape g ~name:"data" ?codec ~blank:"" () in
  phase ?faults ?retry ~label:"preload" (fun () -> Tape.preload t items);
  attach_opt faults t;
  let len = List.length items in
  if len > 1 then sort_tape_k ?faults ?retry ?codec g t ~len ~ways;
  let out =
    phase ?faults ?retry ~label:"sort-readback" (fun () -> read_run t ~len)
  in
  (out, report_of g len)

let items_of half = Array.to_list (Array.map B.to_string half)

(* The preload is device-level and idempotent (fixed-position writes of
   fixed values), so it runs under the same retry combinator as the
   scan phases: a below-seam I/O error during the initial spill heals
   by re-preloading. The above-seam plan is attached only afterwards,
   exactly as before, so injection runs never fault their own setup. *)
let instance_tapes ?faults ?retry g inst =
  let xs = items_of (I.xs inst) and ys = items_of (I.ys inst) in
  let codec = codec_for g (xs @ ys) in
  let tx = Tape.Group.tape g ~name:"xs" ?codec ~blank:"" () in
  let ty = Tape.Group.tape g ~name:"ys" ?codec ~blank:"" () in
  phase ?faults ?retry ~label:"preload" (fun () ->
      Tape.preload tx xs;
      Tape.preload ty ys);
  attach_opt faults tx;
  attach_opt faults ty;
  (tx, ty, codec)

let check_sort ?budget ?faults ?retry ?obs ?device inst =
  let g = Tape.Group.create ?budget ?device () in
  observe_opt obs g;
  Fun.protect ~finally:(fun () -> Tape.Group.close_all g) @@ fun () ->
  let meter = Tape.Group.meter g in
  let m = I.m inst in
  let tx, ty, codec = instance_tapes ?faults ?retry g inst in
  if m > 1 then sort_tape ?faults ?retry ?codec g tx ~len:m;
  let ok =
    Tape.Meter.with_units meter 2 (fun () ->
        phase ?faults ?retry ~label:"compare" (fun () ->
            let ok = ref true in
            for i = 0 to m - 1 do
              if not (String.equal (read_at tx i) (read_at ty i)) then ok := false
            done;
            !ok))
  in
  (ok, report_of g (I.size inst))

let multiset_equality ?budget ?faults ?retry ?obs ?device inst =
  let g = Tape.Group.create ?budget ?device () in
  observe_opt obs g;
  Fun.protect ~finally:(fun () -> Tape.Group.close_all g) @@ fun () ->
  let meter = Tape.Group.meter g in
  let m = I.m inst in
  let tx, ty, codec = instance_tapes ?faults ?retry g inst in
  if m > 1 then begin
    sort_tape ?faults ?retry ?codec g tx ~len:m;
    sort_tape ?faults ?retry ?codec g ty ~len:m
  end;
  let ok =
    Tape.Meter.with_units meter 2 (fun () ->
        phase ?faults ?retry ~label:"compare" (fun () ->
            let ok = ref true in
            for i = 0 to m - 1 do
              if not (String.equal (read_at tx i) (read_at ty i)) then ok := false
            done;
            !ok))
  in
  (ok, report_of g (I.size inst))

let set_equality ?budget ?faults ?retry ?obs ?device inst =
  let g = Tape.Group.create ?budget ?device () in
  observe_opt obs g;
  Fun.protect ~finally:(fun () -> Tape.Group.close_all g) @@ fun () ->
  let meter = Tape.Group.meter g in
  let m = I.m inst in
  let tx, ty, codec = instance_tapes ?faults ?retry g inst in
  if m > 1 then begin
    sort_tape ?faults ?retry ?codec g tx ~len:m;
    sort_tape ?faults ?retry ?codec g ty ~len:m
  end;
  (* compare the deduplicated sorted streams with one carried item each *)
  let ok =
    Tape.Meter.with_units meter 4 (fun () ->
        phase ?faults ?retry ~label:"compare" (fun () ->
            let next_distinct tp i =
              (* first index > i whose item differs from item at i *)
              let x = read_at tp i in
              let j = ref (i + 1) in
              while !j < m && String.equal (read_at tp !j) x do
                incr j
              done;
              !j
            in
            let rec go i j =
              if i >= m && j >= m then true
              else if i >= m || j >= m then false
              else if not (String.equal (read_at tx i) (read_at ty j)) then false
              else go (next_distinct tx i) (next_distinct ty j)
            in
            go 0 0))
  in
  (ok, report_of g (I.size inst))

let decide ?budget ?faults ?retry ?obs ?device problem inst =
  match problem with
  | Problems.Decide.Set_equality ->
      set_equality ?budget ?faults ?retry ?obs ?device inst
  | Problems.Decide.Multiset_equality ->
      multiset_equality ?budget ?faults ?retry ?obs ?device inst
  | Problems.Decide.Check_sort ->
      check_sort ?budget ?faults ?retry ?obs ?device inst

let disjoint ?budget ?faults ?retry ?obs ?device inst =
  let g = Tape.Group.create ?budget ?device () in
  observe_opt obs g;
  Fun.protect ~finally:(fun () -> Tape.Group.close_all g) @@ fun () ->
  let meter = Tape.Group.meter g in
  let m = I.m inst in
  let tx, ty, codec = instance_tapes ?faults ?retry g inst in
  if m > 1 then begin
    sort_tape ?faults ?retry ?codec g tx ~len:m;
    sort_tape ?faults ?retry ?codec g ty ~len:m
  end;
  let ok =
    Tape.Meter.with_units meter 3 (fun () ->
        phase ?faults ?retry ~label:"compare" (fun () ->
            let i = ref 0 and j = ref 0 in
            let shared = ref false in
            while !i < m && !j < m do
              let c = String.compare (read_at tx !i) (read_at ty !j) in
              if c = 0 then begin
                shared := true;
                i := m
              end
              else if c < 0 then incr i
              else incr j
            done;
            not !shared))
  in
  (ok, report_of g (I.size inst))

let theoretical_scan_bound ~n =
  let lg =
    int_of_float (ceil (log (float_of_int (max 2 n)) /. log 2.0))
  in
  (8 * lg) + 16
