(* Differential query fuzzer: seeded splitmix64 generation of
   well-typed random queries, executed both by the naive in-memory
   oracle (Naive) and the compiled tape pipeline (Exec), with
   deterministic shrinking of any disagreement.

   Determinism contract (pinned by the test suite): case [index] of
   stream [seed] depends only on (seed, index) — generation draws from
   [Parallel.Rng.state ~seed ~index] and the campaign folds case
   fingerprints in index order, so a campaign's FNV-1a fingerprint is
   bit-identical for any pool size and for mem/file/shard devices
   (backend-blind cost accounting is the E18 property this leans on). *)

open Ast

(* ------------------------------------------------------------------ *)
(* FNV-1a, 64-bit *)

let fnv_prime = 0x100000001b3L
let fnv_init = 0xcbf29ce484222325L

let fnv_byte h b = Int64.mul (Int64.logxor h (Int64.of_int (b land 0xff))) fnv_prime

let fnv_string h s =
  let h = ref h in
  String.iter (fun c -> h := fnv_byte !h (Char.code c)) s;
  fnv_byte !h 0x1f (* field separator *)

let fnv_int h i =
  let h = ref h in
  for k = 0 to 7 do
    h := fnv_byte !h ((i lsr (8 * k)) land 0xff)
  done;
  !h

(* ------------------------------------------------------------------ *)
(* Generation *)

let atom_pool =
  [| "0"; "1"; "00"; "01"; "10"; "11"; "a"; "b"; "ab"; "ba"; "2"; "7" |]

let base_rels = [ ("r1", 1); ("r2", 1); ("r3", 2); ("r4", 2) ]

let gen_atom rng = atom_pool.(Random.State.int rng (Array.length atom_pool))

let gen_rows rng ~arity ~max_rows =
  List.init (Random.State.int rng (max_rows + 1)) (fun _ ->
      List.init arity (fun _ -> gen_atom rng))

let gen_env rng : Naive.env =
  List.map
    (fun (name, arity) ->
      (name, (arity, List.sort_uniq compare (gen_rows rng ~arity ~max_rows:8))))
    base_rels

(* Fresh comprehension-variable supply per generated expression. *)
type gctx = { rng : Random.State.t; mutable vars : int }

let fresh_var g =
  g.vars <- g.vars + 1;
  Printf.sprintf "v%d" g.vars

(* [wb] budgets the product width (Typecheck.product_width) so every
   generated plan stays inside relalg_node_spec's constant. *)
let rec gen_expr g ~arity ~depth ~wb =
  let rng = g.rng in
  let leaf () =
    let candidates =
      List.filter (fun (_, k) -> k = arity) base_rels |> List.map fst
    in
    match candidates with
    | _ :: _ when Random.State.bool rng ->
        Ref (List.nth candidates (Random.State.int rng (List.length candidates)))
    | _ -> (
        match gen_rows rng ~arity ~max_rows:3 |> List.sort_uniq compare with
        | [] when arity <> 1 ->
            (* [[]] is the empty *unary* relation; at other arities an
               empty literal leaf would be ill-typed *)
            Lit [ List.init arity (fun _ -> gen_atom rng) ]
        | rows -> Lit rows)
  in
  if depth = 0 || wb < 1 then leaf ()
  else
    let pick = Random.State.int rng 100 in
    if pick < 25 then leaf ()
    else if pick < 55 then
      let mk =
        match Random.State.int rng 3 with
        | 0 -> fun a b -> Union (a, b)
        | 1 -> fun a b -> Diff (a, b)
        | _ -> fun a b -> Inter (a, b)
      in
      mk (gen_expr g ~arity ~depth:(depth - 1) ~wb)
        (gen_expr g ~arity ~depth:(depth - 1) ~wb)
    else if pick < 70 && arity = 2 && wb >= 2 then
      let wa = 1 + Random.State.int rng (wb - 1) in
      Compose
        ( gen_expr g ~arity:2 ~depth:(depth - 1) ~wb:wa,
          gen_expr g ~arity:2 ~depth:(depth - 1) ~wb:(wb - wa) )
    else if pick < 85 && arity = 1 && depth >= 2 then
      let mk = if Random.State.bool rng then fun a b -> Xfilter (a, b) else fun a b -> Xeq (a, b) in
      (* sub-plans run as their own segments: width budget resets *)
      mk
        (gen_expr g ~arity:1 ~depth:(depth - 1) ~wb:4)
        (gen_expr g ~arity:1 ~depth:(depth - 1) ~wb:4)
    else gen_comp g ~arity ~depth ~wb

and gen_comp g ~arity ~depth ~wb =
  let rng = g.rng in
  let ngens = if wb >= 2 && Random.State.bool rng then 2 else 1 in
  let bound = ref [] in
  let quals = ref [] in
  let share = max 1 (wb / ngens) in
  for _ = 1 to ngens do
    let k = 1 + Random.State.int rng 2 in
    let e = gen_expr g ~arity:k ~depth:(max 0 (depth - 1)) ~wb:share in
    let pats =
      List.init k (fun _ ->
          let roll = Random.State.int rng 100 in
          if roll < 55 then begin
            let v = fresh_var g in
            bound := !bound @ [ v ];
            Pvar v
          end
          else if roll < 70 && !bound <> [] then
            Pvar (List.nth !bound (Random.State.int rng (List.length !bound)))
          else if roll < 85 then Pwild
          else Pconst (gen_atom rng))
    in
    quals := Gen (pats, e) :: !quals
  done;
  let nguards = if !bound = [] then 0 else Random.State.int rng 3 in
  for _ = 1 to nguards do
    let v = List.nth !bound (Random.State.int rng (List.length !bound)) in
    let other =
      if Random.State.bool rng && List.length !bound > 1 then
        Svar (List.nth !bound (Random.State.int rng (List.length !bound)))
      else Sconst (gen_atom rng)
    in
    let c =
      match Random.State.int rng 3 with 0 -> Ceq | 1 -> Cne | _ -> Clt
    in
    quals := Guard (Svar v, c, other) :: !quals
  done;
  let quals = List.rev !quals in
  let avail = ref !bound in
  let head =
    List.init arity (fun _ ->
        match !avail with
        | [] -> Sconst (gen_atom rng)
        | vs when Random.State.int rng 10 < 8 ->
            let v = List.nth vs (Random.State.int rng (List.length vs)) in
            avail := List.filter (fun x -> x <> v) !avail;
            Svar v
        | _ -> Sconst (gen_atom rng))
  in
  Comp (head, quals)

let gen_case ~seed ~index =
  let rng = Parallel.Rng.state ~seed ~index in
  let env = gen_env rng in
  let g = { rng; vars = 0 } in
  let arity = 1 + Random.State.int rng 2 in
  let depth = 2 + Random.State.int rng 2 in
  (env, gen_expr g ~arity ~depth ~wb:4)

(* ------------------------------------------------------------------ *)
(* Differential check *)

let program_text (env : Naive.env) e =
  String.concat "; "
    (List.map (fun (n, (_, rows)) -> n ^ " = " ^ Pretty.rows rows) env)
  ^ "; " ^ Pretty.expr e

type verdict =
  | Agree of Exec.outcome
  | Disagree of { expected : string; got : string }
  | Illtyped of string  (* a generator bug — counted as its own failure *)

let check ?device (env : Naive.env) e : verdict =
  match Typecheck.arity_of (List.map (fun (n, (k, _)) -> (n, k)) env) e with
  | Error m -> Illtyped m
  | Ok _ -> (
      let _, want = Naive.eval env e in
      match Exec.run ?device ~env e with
      | Error m -> Disagree { expected = Pretty.rows want; got = "error: " ^ m }
      | Ok o ->
          if o.Exec.rows = want then Agree o
          else
            Disagree { expected = Pretty.rows want; got = Pretty.rows o.Exec.rows })

(* shrink predicate: a reduction must stay well-typed AND disagreeing *)
let disagrees ?device env e =
  match check ?device env e with
  | Disagree _ -> true
  | Agree _ | Illtyped _ -> false

(* Deterministic greedy shrinking: keep applying the first reduction
   that preserves the disagreement until none applies. *)
let subexprs = function
  | Lit _ | Ref _ -> []
  | Union (a, b) | Diff (a, b) | Inter (a, b) | Compose (a, b)
  | Xfilter (a, b) | Xeq (a, b) ->
      [ a; b ]
  | Comp (_, quals) ->
      List.filter_map (function Gen (_, e) -> Some e | Guard _ -> None) quals

let drop_nth n xs = List.filteri (fun i _ -> i <> n) xs

let expr_reductions e =
  let head_reds =
    match e with
    | Comp (head, quals) ->
        let nq = List.length quals in
        List.init nq (fun i -> Comp (head, drop_nth i quals))
    | _ -> []
  in
  subexprs e @ head_reds

let env_reductions (env : Naive.env) =
  List.concat_map
    (fun (name, (_, rows)) ->
      List.init (List.length rows) (fun i ->
          List.map
            (fun (n, (k', rows')) ->
              if n = name then (n, (k', drop_nth i rows')) else (n, (k', rows')))
            env))
    env

let shrink ?device env e =
  let budget = ref 400 in
  let rec go env e =
    if !budget <= 0 then (env, e)
    else begin
      decr budget;
      let try_expr =
        List.find_opt (fun e' -> disagrees ?device env e') (expr_reductions e)
      in
      match try_expr with
      | Some e' -> go env e'
      | None -> (
          let try_env =
            List.find_opt (fun env' -> disagrees ?device env' e) (env_reductions env)
          in
          match try_env with Some env' -> go env' e | None -> (env, e))
    end
  in
  go env e

(* ------------------------------------------------------------------ *)
(* Campaign *)

type discrepancy = {
  d_index : int;
  d_program : string;  (* shrunk, self-contained *)
  d_expected : string;
  d_got : string;
}

type case_result = {
  c_index : int;
  c_ok : bool;
  c_audit_ok : bool;
  c_scans : int;
  c_plan_nodes : int;
  c_fingerprint : int64;
  c_discrepancy : discrepancy option;
}

let run_case ?device ~seed ~index () : case_result =
  let env, e = gen_case ~seed ~index in
  match check ?device env e with
  | Illtyped m ->
      let h = fnv_int (fnv_int fnv_init index) 0xe11 in
      let h = fnv_string h m in
      {
        c_index = index;
        c_ok = false;
        c_audit_ok = true;
        c_scans = 0;
        c_plan_nodes = 0;
        c_fingerprint = h;
        c_discrepancy =
          Some
            {
              d_index = index;
              d_program = program_text env e;
              d_expected = "a well-typed query from the generator";
              d_got = "type error: " ^ m;
            };
      }
  | Agree o ->
      let h = fnv_int fnv_init index in
      let h = fnv_int h (if o.Exec.audit_ok then 1 else 0) in
      let h = fnv_int h o.Exec.arity in
      let h = fnv_int h o.Exec.scans in
      let h = fnv_int h (List.length o.Exec.rows) in
      let h =
        List.fold_left
          (fun h row -> List.fold_left fnv_string h row)
          h o.Exec.rows
      in
      {
        c_index = index;
        c_ok = true;
        c_audit_ok = o.Exec.audit_ok;
        c_scans = o.Exec.scans;
        c_plan_nodes = o.Exec.plan_nodes;
        c_fingerprint = h;
        c_discrepancy = None;
      }
  | Disagree _ ->
      let env', e' = shrink ?device env e in
      let expected, got =
        match check ?device env' e' with
        | Disagree { expected; got } -> (expected, got)
        | Agree _ | Illtyped _ -> ("<unstable shrink>", "<unstable shrink>")
      in
      let h = fnv_int (fnv_int fnv_init index) 0xbad in
      let h = fnv_string h expected in
      let h = fnv_string h got in
      {
        c_index = index;
        c_ok = false;
        c_audit_ok = true;
        c_scans = 0;
        c_plan_nodes = 0;
        c_fingerprint = h;
        c_discrepancy =
          Some
            {
              d_index = index;
              d_program = program_text env' e';
              d_expected = expected;
              d_got = got;
            };
      }

type campaign = {
  seed : int;
  iters : int;
  matches : int;
  mismatches : int;
  audit_failures : int;
  total_scans : int;
  total_plan_nodes : int;
  fingerprint : int64;
  discrepancies : discrepancy list;  (* index order *)
}

let run_campaign ?pool ?device ~seed ~iters () : campaign =
  let run index = run_case ?device ~seed ~index () in
  let results =
    match pool with
    | Some p -> Parallel.Pool.map p run (Array.init iters Fun.id)
    | None -> Array.init iters run
  in
  let c =
    Array.fold_left
      (fun acc r ->
        {
          acc with
          matches = (acc.matches + if r.c_ok then 1 else 0);
          mismatches = (acc.mismatches + if r.c_ok then 0 else 1);
          audit_failures = (acc.audit_failures + if r.c_audit_ok then 0 else 1);
          total_scans = acc.total_scans + r.c_scans;
          total_plan_nodes = acc.total_plan_nodes + r.c_plan_nodes;
          fingerprint =
            Int64.mul (Int64.logxor acc.fingerprint r.c_fingerprint) fnv_prime;
          discrepancies =
            (match r.c_discrepancy with
            | Some d -> d :: acc.discrepancies
            | None -> acc.discrepancies);
        })
      {
        seed;
        iters;
        matches = 0;
        mismatches = 0;
        audit_failures = 0;
        total_scans = 0;
        total_plan_nodes = 0;
        fingerprint = fnv_init;
        discrepancies = [];
      }
      results
  in
  { c with discrepancies = List.rev c.discrepancies }

let report c =
  let b = Buffer.create 256 in
  Printf.bprintf b
    "query-fuzz: seed=%d iters=%d matches=%d mismatches=%d audit_failures=%d \
     plan_nodes=%d scans=%d fingerprint=%016Lx\n"
    c.seed c.iters c.matches c.mismatches c.audit_failures c.total_plan_nodes
    c.total_scans c.fingerprint;
  List.iter
    (fun d ->
      Printf.bprintf b
        "DISCREPANCY at index %d:\n  program:  %s\n  expected: %s\n  got:      %s\n"
        d.d_index d.d_program d.d_expected d.d_got)
    c.discrepancies;
  Buffer.contents b
