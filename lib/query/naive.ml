(* Reference evaluator: direct in-memory semantics over sorted
   deduplicated row lists. Deliberately shares no code with the
   compiler or relalg — it is the independent oracle the differential
   fuzzer trusts. Callers typecheck first; ill-typed input raises
   [Invalid_argument]. *)

open Ast

type value = string list list (* sorted, distinct; row length = arity *)

type env = (string * (int * value)) list

let norm rows = List.sort_uniq compare rows

let lookup env n =
  match List.assoc_opt n env with
  | Some v -> v
  | None -> invalid_arg (Printf.sprintf "Query.Naive: unknown relation %S" n)

let rec eval (env : env) (e : expr) : int * value =
  match e with
  | Lit [] -> (1, [])
  | Lit (t :: _ as ts) -> (List.length t, norm ts)
  | Ref n -> lookup env n
  | Union (a, b) ->
      let k, ra = eval env a in
      let _, rb = eval env b in
      (k, norm (ra @ rb))
  | Diff (a, b) ->
      let k, ra = eval env a in
      let _, rb = eval env b in
      (k, List.filter (fun r -> not (List.mem r rb)) ra)
  | Inter (a, b) ->
      let k, ra = eval env a in
      let _, rb = eval env b in
      (k, List.filter (fun r -> List.mem r rb) ra)
  | Compose (a, b) ->
      let _, ra = eval env a in
      let _, rb = eval env b in
      ( 2,
        norm
          (List.concat_map
             (fun r ->
               match r with
               | [ x; y ] ->
                   List.filter_map
                     (function
                       | [ z; w ] when String.equal y z -> Some [ x; w ]
                       | _ -> None)
                     rb
               | _ -> invalid_arg "Query.Naive: composition of non-binary rows")
             ra) )
  | Comp (head, quals) ->
      let envs =
        List.fold_left
          (fun envs q ->
            match q with
            | Gen (pats, e) ->
                let _, rows = eval env e in
                List.concat_map
                  (fun b ->
                    List.filter_map (fun row -> match_pats b pats row) rows)
                  envs
            | Guard (a, c, b) ->
                List.filter
                  (fun bind ->
                    let va = scalar_value bind a and vb = scalar_value bind b in
                    match c with
                    | Ceq -> String.equal va vb
                    | Cne -> not (String.equal va vb)
                    | Clt -> String.compare va vb < 0)
                  envs)
          [ [] ] quals
      in
      ( List.length head,
        norm (List.map (fun b -> List.map (scalar_value b) head) envs) )
  | Xfilter (a, b) ->
      let _, ra = eval env a in
      let _, rb = eval env b in
      (1, if List.exists (fun r -> not (List.mem r rb)) ra then [ [ "true" ] ] else [])
  | Xeq (a, b) ->
      let _, ra = eval env a in
      let _, rb = eval env b in
      (1, if ra = rb then [ [ "true" ] ] else [])

and match_pats bind pats row =
  match (pats, row) with
  | [], [] -> Some bind
  | pat :: pats, v :: row -> (
      match pat with
      | Pwild -> match_pats bind pats row
      | Pconst c -> if String.equal c v then match_pats bind pats row else None
      | Pvar x -> (
          match List.assoc_opt x bind with
          | Some v0 ->
              if String.equal v0 v then match_pats bind pats row else None
          | None -> match_pats ((x, v) :: bind) pats row))
  | _ -> invalid_arg "Query.Naive: pattern/row arity mismatch"

and scalar_value bind = function
  | Sconst c -> c
  | Svar v -> (
      match List.assoc_opt v bind with
      | Some x -> x
      | None -> invalid_arg (Printf.sprintf "Query.Naive: unbound variable %S" v))
