(* Statement processor behind both [stlb query] (one-shot) and
   [stlb repl] (interactive / batch). Every evaluation runs the
   compiled plan on the tape substrate, audits each node, and
   cross-checks the naive oracle; output is deterministic (no wall
   clocks, no device paths) so batch transcripts can be golden-tested
   byte-for-byte. *)

type t = {
  mutable env : Naive.env;
  mutable device : Tape.Device.spec;
  mutable budget : bool;  (* enforce audits: violations flip the exit status *)
  mutable trace : Obs.Trace.t option;
  mutable failed : bool;  (* any error or (under :budget on) audit failure *)
  out : Buffer.t -> unit;  (* line sink *)
}

let create ?(device = Tape.Device.Mem) ~out () =
  { env = []; device; budget = true; trace = None; failed = false; out }

let printf st fmt =
  Printf.ksprintf
    (fun s ->
      let b = Buffer.create (String.length s + 1) in
      Buffer.add_string b s;
      Buffer.add_char b '\n';
      st.out b)
    fmt

let close st =
  match st.trace with
  | None -> ()
  | Some t ->
      Obs.Trace.close t;
      st.trace <- None

(* one audited run of [e] in the current environment *)
let run_expr st e =
  let recorder = Obs.Ledger.Recorder.create ~label:"query" () in
  let observe = Obs.Ledger.Recorder.observe recorder in
  match Exec.run ~device:st.device ~observe ~env:st.env e with
  | Error m ->
      st.failed <- true;
      printf st "error: %s" m;
      None
  | Ok o ->
      let _, want = Naive.eval st.env e in
      if o.Exec.rows <> want then begin
        (* the differential fuzzer's invariant, surfaced interactively *)
        st.failed <- true;
        printf st "DISCREPANCY: compiled plan disagrees with the oracle";
        printf st "  compiled: %s" (Pretty.rows o.Exec.rows);
        printf st "  oracle:   %s" (Pretty.rows want)
      end;
      (match st.trace with
      | None -> ()
      | Some t ->
          Obs.Trace.emit_ledger t (Obs.Ledger.Recorder.ledger ~n:o.Exec.n recorder);
          Obs.Trace.emit t ~event:"query"
            [
              ("nodes", Obs.Trace.Int o.Exec.plan_nodes);
              ("segments", Obs.Trace.Int o.Exec.segments);
              ("scans", Obs.Trace.Int o.Exec.scans);
              ("audit_ok", Obs.Trace.Bool o.Exec.audit_ok);
            ]);
      Some o

let audit_line st (o : Exec.outcome) =
  let total = List.length o.Exec.nodes in
  let passed =
    List.length (List.filter (fun na -> na.Exec.ok) o.Exec.nodes)
  in
  printf st "  plan: %d nodes, %d segments; N=%d; scans=%d; audit: %s (%d/%d within budget)"
    o.Exec.plan_nodes o.Exec.segments o.Exec.n o.Exec.scans
    (if o.Exec.audit_ok then "PASS" else "FAIL")
    passed total;
  if not o.Exec.audit_ok then begin
    List.iter
      (fun na ->
        if not na.Exec.ok then
          printf st "  over budget: %s used %d scans, allowed %d" na.Exec.label
            na.Exec.scans na.Exec.allowed)
      o.Exec.nodes;
    if st.budget then st.failed <- true
  end

let do_stmt st = function
  | Ast.Bind (x, e) -> (
      match run_expr st e with
      | None -> ()
      | Some o ->
          st.env <- (x, (o.Exec.arity, o.Exec.rows)) :: List.remove_assoc x st.env;
          printf st "%s : rel[%d] = %d tuples" x o.Exec.arity
            (List.length o.Exec.rows);
          audit_line st o)
  | Ast.Eval e -> (
      match run_expr st e with
      | None -> ()
      | Some o ->
          printf st "= %s" (Pretty.rows o.Exec.rows);
          audit_line st o)

let do_program st src =
  match Parser.parse_program src with
  | Error e ->
      st.failed <- true;
      printf st "parse error: %s" (Parser.error_to_string e)
  | Ok stmts -> List.iter (do_stmt st) stmts

let do_directive st line =
  let parts =
    String.split_on_char ' ' line |> List.filter (fun s -> s <> "")
  in
  match parts with
  | [ ":quit" ] | [ ":q" ] -> `Quit
  | [ ":env" ] ->
      if st.env = [] then printf st "(no relations bound)"
      else
        List.iter
          (fun (n, (k, rows)) ->
            printf st "%s : rel[%d] = %d tuples" n k (List.length rows))
          (List.sort compare st.env);
      `Continue
  | [ ":budget"; ("on" | "off") as v ] ->
      st.budget <- v = "on";
      printf st "budget enforcement %s" v;
      `Continue
  | [ ":trace"; "off" ] ->
      close st;
      printf st "trace off";
      `Continue
  | [ ":trace"; file ] ->
      close st;
      st.trace <- Some (Obs.Trace.open_file file);
      printf st "tracing to %s" file;
      `Continue
  | [ ":load"; file ] -> (
      (* a loaded file is one whole program (statements + # comments;
         no directives), so the parser sees it in a single piece *)
      match In_channel.with_open_text file In_channel.input_all with
      | exception Sys_error m ->
          st.failed <- true;
          printf st "error: %s" m;
          `Continue
      | src ->
          do_program st src;
          `Continue)
  | [ ":help" ] ->
      printf st
        "directives: :env  :budget on|off  :trace FILE|off  :load FILE  :quit";
      `Continue
  | d :: _ ->
      st.failed <- true;
      printf st "unknown directive %s (try :help)" d;
      `Continue
  | [] -> `Continue

let do_line st line =
  let trimmed = String.trim line in
  if trimmed = "" || trimmed.[0] = '#' then `Continue
  else if trimmed.[0] = ':' then do_directive st trimmed
  else begin
    do_program st trimmed;
    `Continue
  end

(* Drive a whole channel. [echo] reproduces the input lines in the
   output (prefixed with the prompt) so a batch transcript reads like
   an interactive session; [prompt] writes the prompt eagerly for a
   human on a tty. *)
let drive st ~echo ~prompt ic =
  let rec loop () =
    if prompt then begin
      print_string "query> ";
      flush stdout
    end;
    match In_channel.input_line ic with
    | None -> ()
    | Some line ->
        if echo then printf st "query> %s" line;
        (match do_line st line with `Quit -> () | `Continue -> loop ())
  in
  loop ();
  close st
