(* Canonical printer. The parser/printer pair is a law the test suite
   pins: [parse_expr (expr e) = Ok e] for every well-formed AST the
   fuzzer generates. Minimal parentheses: sum ops (+ - &) are one
   left-associative level, composition (o) binds tighter, everything
   else is atomic. *)

open Ast

let atom s = if is_canonical_int s then s else "\"" ^ s ^ "\""

let scalar = function Sconst c -> atom c | Svar v -> v

let pat = function Pvar v -> v | Pwild -> "_" | Pconst c -> atom c

let tuple f xs = "<" ^ String.concat ", " (List.map f xs) ^ ">"

let cmp = function Ceq -> "==" | Cne -> "!=" | Clt -> "<"

(* levels: 0 = sum, 1 = compose, 2 = atom *)
let rec at level e =
  match e with
  | Union (a, b) -> wrap level 0 (at 0 a ^ " + " ^ at 1 b)
  | Diff (a, b) -> wrap level 0 (at 0 a ^ " - " ^ at 1 b)
  | Inter (a, b) -> wrap level 0 (at 0 a ^ " & " ^ at 1 b)
  | Compose (a, b) -> wrap level 1 (at 1 a ^ " o " ^ at 2 b)
  | Lit [] -> "[]"
  | Lit ts -> "[" ^ String.concat ", " (List.map (tuple atom) ts) ^ "]"
  | Ref n -> n
  | Comp (head, quals) ->
      "[ " ^ tuple scalar head ^ " | "
      ^ String.concat ", " (List.map qual quals)
      ^ " ]"
  | Xfilter (a, b) -> "xfilter(" ^ at 0 a ^ ", " ^ at 0 b ^ ")"
  | Xeq (a, b) -> "xeq(" ^ at 0 a ^ ", " ^ at 0 b ^ ")"

and wrap level own s = if level > own then "(" ^ s ^ ")" else s

and qual = function
  | Gen (ps, e) -> tuple pat ps ^ " <- " ^ at 0 e
  | Guard (a, c, b) -> scalar a ^ " " ^ cmp c ^ " " ^ scalar b

let expr e = at 0 e

let stmt = function
  | Bind (x, e) -> x ^ " = " ^ expr e
  | Eval e -> expr e

let program stmts = String.concat "; " (List.map stmt stmts)

(* A result relation, printed as a re-parseable literal in sorted row
   order — what the REPL echoes and what discrepancy reports embed. *)
let rows rs =
  match rs with
  | [] -> "[]"
  | rs -> "[" ^ String.concat ", " (List.map (tuple atom) rs) ^ "]"
