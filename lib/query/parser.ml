(* Hand-written lexer + recursive-descent parser. Total: every entry
   point returns [Ok _ | Error located] and never raises, whatever the
   input bytes — a property the qcheck suite hammers with arbitrary
   strings. A nesting cap keeps adversarial inputs from overflowing
   the parser's stack. *)

open Ast

type error = { line : int; col : int; msg : string }

let error_to_string e = Printf.sprintf "line %d, col %d: %s" e.line e.col e.msg

exception Fail of error (* internal; caught at the entry points *)

type token =
  | IDENT of string
  | INT of string
  | STRING of string
  | LT | GT | COMMA | LBRACKET | RBRACKET | LPAREN | RPAREN
  | PIPE | PLUS | MINUS | AMP | ARROW (* <- *)
  | EQ | EQEQ | NEQ | SEMI | UNDERSCORE
  | EOF

type ltok = { tok : token; tline : int; tcol : int }

let fail line col msg = raise (Fail { line; col; msg })

let lex (src : string) : ltok array =
  let n = String.length src in
  let toks = ref [] in
  let line = ref 1 and col = ref 1 in
  let i = ref 0 in
  let push tok tline tcol = toks := { tok; tline; tcol } :: !toks in
  let advance () =
    (if !i < n then
       if src.[!i] = '\n' then begin
         incr line;
         col := 1
       end
       else incr col);
    incr i
  in
  while !i < n do
    let c = src.[!i] and tl = !line and tc = !col in
    match c with
    | ' ' | '\t' | '\r' | '\n' -> advance ()
    | '#' ->
        (* comment to end of line *)
        while !i < n && src.[!i] <> '\n' do
          advance ()
        done
    | '<' ->
        if !i + 1 < n && src.[!i + 1] = '-' then begin
          advance ();
          advance ();
          push ARROW tl tc
        end
        else begin
          advance ();
          push LT tl tc
        end
    | '>' -> advance (); push GT tl tc
    | ',' -> advance (); push COMMA tl tc
    | '[' -> advance (); push LBRACKET tl tc
    | ']' -> advance (); push RBRACKET tl tc
    | '(' -> advance (); push LPAREN tl tc
    | ')' -> advance (); push RPAREN tl tc
    | '|' -> advance (); push PIPE tl tc
    | '+' -> advance (); push PLUS tl tc
    | '-' -> advance (); push MINUS tl tc
    | '&' -> advance (); push AMP tl tc
    | ';' -> advance (); push SEMI tl tc
    | '=' ->
        if !i + 1 < n && src.[!i + 1] = '=' then begin
          advance ();
          advance ();
          push EQEQ tl tc
        end
        else begin
          advance ();
          push EQ tl tc
        end
    | '!' ->
        if !i + 1 < n && src.[!i + 1] = '=' then begin
          advance ();
          advance ();
          push NEQ tl tc
        end
        else fail tl tc "stray '!' (expected '!=')"
    | '_' -> advance (); push UNDERSCORE tl tc
    | '"' ->
        advance ();
        let b = Buffer.create 16 in
        let closed = ref false in
        while (not !closed) && !i < n do
          let c = src.[!i] in
          if c = '"' then begin
            advance ();
            closed := true
          end
          else if atom_char c then begin
            Buffer.add_char b c;
            advance ()
          end
          else
            fail !line !col
              (Printf.sprintf "character %C not allowed in a string atom" c)
        done;
        if not !closed then fail tl tc "unterminated string literal";
        push (STRING (Buffer.contents b)) tl tc
    | '0' .. '9' ->
        let b = Buffer.create 8 in
        while !i < n && src.[!i] >= '0' && src.[!i] <= '9' do
          Buffer.add_char b src.[!i];
          advance ()
        done;
        let s = Buffer.contents b in
        if not (is_canonical_int s) then
          fail tl tc (Printf.sprintf "non-canonical integer literal %S" s)
        else push (INT s) tl tc
    | 'a' .. 'z' | 'A' .. 'Z' ->
        let b = Buffer.create 8 in
        while
          !i < n
          &&
          let c = src.[!i] in
          (c >= 'a' && c <= 'z')
          || (c >= 'A' && c <= 'Z')
          || (c >= '0' && c <= '9')
          || c = '_'
        do
          Buffer.add_char b src.[!i];
          advance ()
        done;
        push (IDENT (Buffer.contents b)) tl tc
    | c -> fail tl tc (Printf.sprintf "unexpected character %C" c)
  done;
  push EOF !line !col;
  Array.of_list (List.rev !toks)

(* ------------------------------------------------------------------ *)

type st = { toks : ltok array; mutable pos : int }

let max_depth = 200

let peek st = st.toks.(st.pos)
let next st =
  let t = st.toks.(st.pos) in
  if t.tok <> EOF then st.pos <- st.pos + 1;
  t

let err_at (t : ltok) msg = fail t.tline t.tcol msg

let expect st tok what =
  let t = next st in
  if t.tok <> tok then err_at t ("expected " ^ what)

let deeper st d =
  if d >= max_depth then
    err_at (peek st) "expression too deeply nested";
  d + 1

let ident_name (t : ltok) =
  match t.tok with
  | IDENT s ->
      if List.mem s reserved then
        err_at t (Printf.sprintf "reserved word %S cannot be a name" s)
      else s
  | _ -> err_at t "expected a name"

let parse_scalar st =
  let t = next st in
  match t.tok with
  | INT s | STRING s -> Sconst s
  | IDENT s when not (List.mem s reserved) -> Svar s
  | _ -> err_at t "expected a value or variable"

let parse_pat st =
  let t = next st in
  match t.tok with
  | UNDERSCORE -> Pwild
  | INT s | STRING s -> Pconst s
  | IDENT s when not (List.mem s reserved) -> Pvar s
  | _ -> err_at t "expected a pattern (variable, _, or value)"

let parse_tuple st elem =
  expect st LT "'<'";
  let rec go acc =
    let x = elem st in
    let t = next st in
    match t.tok with
    | COMMA -> go (x :: acc)
    | GT -> List.rev (x :: acc)
    | _ -> err_at t "expected ',' or '>' in tuple"
  in
  go []

let const_of_scalar (t : ltok) = function
  | Sconst c -> c
  | Svar v ->
      err_at t (Printf.sprintf "variable %S not allowed in a relation literal" v)

let rec parse_expr st d =
  let d = deeper st d in
  let rec sums acc =
    match (peek st).tok with
    | PLUS ->
        ignore (next st);
        sums (Union (acc, parse_term st d))
    | MINUS ->
        ignore (next st);
        sums (Diff (acc, parse_term st d))
    | AMP ->
        ignore (next st);
        sums (Inter (acc, parse_term st d))
    | _ -> acc
  in
  sums (parse_term st d)

and parse_term st d =
  let d = deeper st d in
  let rec composes acc =
    match (peek st).tok with
    | IDENT "o" ->
        ignore (next st);
        composes (Compose (acc, parse_factor st d))
    | _ -> acc
  in
  composes (parse_factor st d)

and parse_factor st d =
  let d = deeper st d in
  let t = next st in
  match t.tok with
  | LPAREN ->
      let e = parse_expr st d in
      expect st RPAREN "')'";
      e
  | IDENT ("xfilter" as f) | IDENT ("xeq" as f) ->
      expect st LPAREN "'(' after builtin";
      let a = parse_expr st d in
      expect st COMMA "','";
      let b = parse_expr st d in
      expect st RPAREN "')'";
      if f = "xfilter" then Xfilter (a, b) else Xeq (a, b)
  | IDENT s ->
      if List.mem s reserved then
        err_at t (Printf.sprintf "reserved word %S cannot start an expression" s)
      else Ref s
  | LBRACKET -> parse_bracket st d t
  | _ -> err_at t "expected an expression"

(* '[' already consumed: either a relation literal or a comprehension *)
and parse_bracket st d open_tok =
  match (peek st).tok with
  | RBRACKET ->
      ignore (next st);
      Lit []
  | _ -> (
      let first_tok = peek st in
      let first = parse_tuple st parse_scalar in
      let t = next st in
      match t.tok with
      | PIPE ->
          let quals = parse_quals st d in
          Comp (first, quals)
      | RBRACKET ->
          Lit [ List.map (const_of_scalar first_tok) first ]
      | COMMA ->
          let first = List.map (const_of_scalar first_tok) first in
          let rec go acc =
            let tup_tok = peek st in
            let tup =
              List.map (const_of_scalar tup_tok) (parse_tuple st parse_scalar)
            in
            let t = next st in
            match t.tok with
            | COMMA -> go (tup :: acc)
            | RBRACKET -> List.rev (tup :: acc)
            | _ -> err_at t "expected ',' or ']' in relation literal"
          in
          Lit (first :: go [])
      | _ -> err_at open_tok "unterminated '[' (expected '|', ',' or ']')")

and parse_quals st d =
  let parse_qual () =
    match (peek st).tok with
    | LT ->
        let pats = parse_tuple st parse_pat in
        expect st ARROW "'<-' after generator pattern";
        Gen (pats, parse_expr st d)
    | _ ->
        let a = parse_scalar st in
        let t = next st in
        let c =
          match t.tok with
          | EQEQ -> Ceq
          | NEQ -> Cne
          | LT -> Clt
          | _ -> err_at t "expected '==', '!=' or '<' in guard"
        in
        Guard (a, c, parse_scalar st)
  in
  let rec go acc =
    let q = parse_qual () in
    let t = next st in
    match t.tok with
    | COMMA -> go (q :: acc)
    | RBRACKET -> List.rev (q :: acc)
    | _ -> err_at t "expected ',' or ']' after qualifier"
  in
  go []

let parse_stmt st =
  match ((peek st).tok, st.toks.(min (st.pos + 1) (Array.length st.toks - 1)).tok) with
  | IDENT _, EQ ->
      let name = ident_name (next st) in
      ignore (next st) (* '=' *);
      Bind (name, parse_expr st 0)
  | _ -> Eval (parse_expr st 0)

let parse_program_tokens st =
  let rec go acc =
    match (peek st).tok with
    | EOF -> List.rev acc
    | SEMI ->
        ignore (next st);
        go acc
    | _ ->
        let s = parse_stmt st in
        let t = peek st in
        (match t.tok with
        | SEMI | EOF -> ()
        | _ -> err_at t "expected ';' or end of input after statement");
        go (s :: acc)
  in
  go []

let run f src =
  match lex src with
  | exception Fail e -> Error e
  | toks -> (
      let st = { toks; pos = 0 } in
      match f st with exception Fail e -> Error e | v -> Ok v)

let parse_program src : (program, error) result = run parse_program_tokens src

let parse_expr_string src : (expr, error) result =
  run
    (fun st ->
      let e = parse_expr st 0 in
      let t = peek st in
      if t.tok <> EOF then err_at t "trailing input after expression";
      e)
    src
