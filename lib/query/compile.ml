(* Lowering: query AST → relalg plans, with the two document builtins
   (xfilter/xeq) split off as xmlq sub-plans whose boolean results
   re-enter the enclosing relalg expression as unary relations.

   Canonical schemas: every compiled (sub)expression produces columns
   c1..ck, so set operations line up by construction. Internal
   attribute names (l*/r* for composition, g<i>_<j> for comprehension
   generators, h<j> for constant head legs) can never collide with
   canonical names or each other. Fresh relation names start with '%',
   which the surface language cannot spell. *)

open Ast

type plan = {
  rexpr : Relalg.expr;
  lits : (string * Relalg.relation) list;  (* literal relations this segment needs *)
  subs : (string * sub) list;  (* xmlq sub-plans feeding this segment, in order *)
  arity : int;
}

and sub = Sfilter of plan * plan | Sxeq of plan * plan

(* Hidden fault-injection switch for the differential fuzzer's
   negative control: when set, composition compiles with its operands
   swapped — a classic silent planner bug the naive evaluator must
   catch. Never set outside tests/E21. *)
let swap_compose = ref false

let col j = Printf.sprintf "c%d" j
let cols k = List.init k (fun j -> col (j + 1))

let rename_to_canonical attrs =
  List.mapi (fun j a -> (a, col (j + 1))) attrs

let compile (env : Typecheck.env) (e : expr) : (plan, string) result =
  match Typecheck.arity_of env e with
  | Error m -> Error m
  | Ok _ ->
      let ctr = ref 0 in
      let fresh prefix =
        incr ctr;
        Printf.sprintf "%%%s%d" prefix !ctr
      in
      let rec plan_of e =
        let lits = ref [] and subs = ref [] in
        let add_lit rel =
          let name = fresh "lit" in
          lits := (name, rel) :: !lits;
          name
        in
        let rec go e =
          match e with
          | Lit [] ->
              (* the empty unary relation *)
              let name = add_lit (Relalg.relation ~schema:(cols 1) []) in
              (Relalg.Rel name, 1)
          | Lit (t :: _ as ts) ->
              let k = List.length t in
              let name =
                add_lit
                  (Relalg.relation ~schema:(cols k)
                     (List.map Array.of_list ts))
              in
              (Relalg.Rel name, k)
          | Ref n -> (Relalg.Rel n, List.assoc n env)
          | Union (a, b) -> set_op (fun x y -> Relalg.Union (x, y)) a b
          | Diff (a, b) -> set_op (fun x y -> Relalg.Diff (x, y)) a b
          | Inter (a, b) -> set_op (fun x y -> Relalg.Inter (x, y)) a b
          | Compose (a, b) ->
              let a', _ = go a and b', _ = go b in
              let a', b' = if !swap_compose then (b', a') else (a', b') in
              let left = Relalg.Rename ([ (col 1, "l1"); (col 2, "l2") ], a') in
              let right = Relalg.Rename ([ (col 1, "r1"); (col 2, "r2") ], b') in
              let joined =
                Relalg.Select
                  ( Relalg.Eq (Relalg.Attr "l2", Relalg.Attr "r1"),
                    Relalg.Product (left, right) )
              in
              ( Relalg.Rename
                  ( [ ("l1", col 1); ("r2", col 2) ],
                    Relalg.Project ([ "l1"; "r2" ], joined) ),
                2 )
          | Comp (head, quals) -> comp head quals
          | Xfilter (a, b) ->
              let pa = plan_of a and pb = plan_of b in
              let name = fresh "x" in
              subs := (name, Sfilter (pa, pb)) :: !subs;
              (Relalg.Rel name, 1)
          | Xeq (a, b) ->
              let pa = plan_of a and pb = plan_of b in
              let name = fresh "x" in
              subs := (name, Sxeq (pa, pb)) :: !subs;
              (Relalg.Rel name, 1)
        and set_op mk a b =
          let a', k = go a in
          let b', _ = go b in
          (mk a' b', k)
        and comp head quals =
          (* generators fold into one product; pattern constants,
             repeated variables and guards become selections; the head
             projects and renames back to canonical columns. *)
          let bindings = ref [] (* var -> internal attr, first binding wins *) in
          let preds = ref [] (* in occurrence order *) in
          let product = ref None in
          let gen_i = ref 0 in
          List.iter
            (function
              | Gen (pats, e) ->
                  incr gen_i;
                  let i = !gen_i in
                  let e', k = go e in
                  let gattr j = Printf.sprintf "g%d_%d" i j in
                  let renamed =
                    Relalg.Rename
                      (List.init k (fun j -> (col (j + 1), gattr (j + 1))), e')
                  in
                  product :=
                    Some
                      (match !product with
                      | None -> renamed
                      | Some p -> Relalg.Product (p, renamed));
                  List.iteri
                    (fun j pat ->
                      let a = gattr (j + 1) in
                      match pat with
                      | Pwild -> ()
                      | Pconst c ->
                          preds :=
                            Relalg.Eq (Relalg.Attr a, Relalg.Const c) :: !preds
                      | Pvar v -> (
                          match List.assoc_opt v !bindings with
                          | Some a0 ->
                              preds :=
                                Relalg.Eq (Relalg.Attr a0, Relalg.Attr a)
                                :: !preds
                          | None -> bindings := (v, a) :: !bindings))
                    pats
              | Guard (a, c, b) ->
                  let operand = function
                    | Sconst s -> Relalg.Const s
                    | Svar v -> Relalg.Attr (List.assoc v !bindings)
                  in
                  let p =
                    match c with
                    | Ceq -> Relalg.Eq (operand a, operand b)
                    | Cne -> Relalg.Neq (operand a, operand b)
                    | Clt -> Relalg.Lt (operand a, operand b)
                  in
                  preds := p :: !preds)
            quals;
          let body = Option.get !product in
          let selected =
            List.fold_left
              (fun acc p -> Relalg.Select (p, acc))
              body (List.rev !preds)
          in
          (* constant head elements ride in as one-tuple product legs *)
          let with_consts, head_attrs =
            List.fold_left
              (fun (acc, attrs) (j, s) ->
                match s with
                | Svar v -> (acc, List.assoc v !bindings :: attrs)
                | Sconst c ->
                    let h = Printf.sprintf "h%d" j in
                    let name =
                      add_lit (Relalg.relation ~schema:[ h ] [ [| c |] ])
                    in
                    (Relalg.Product (acc, Relalg.Rel name), h :: attrs))
              (selected, [])
              (List.mapi (fun j s -> (j + 1, s)) head)
          in
          let head_attrs = List.rev head_attrs in
          ( Relalg.Rename
              ( rename_to_canonical head_attrs,
                Relalg.Project (head_attrs, with_consts) ),
            List.length head )
        in
        let rexpr, arity = go e in
        { rexpr; lits = List.rev !lits; subs = List.rev !subs; arity }
      in
      Ok (plan_of e)

(* Count the relalg operator nodes of a compiled segment — what the
   REPL reports and E21 tabulates. *)
let rec node_count (e : Relalg.expr) =
  match e with
  | Relalg.Rel _ -> 1
  | Relalg.Select (_, e) | Relalg.Project (_, e) | Relalg.Rename (_, e) ->
      1 + node_count e
  | Relalg.Union (a, b) | Relalg.Diff (a, b) | Relalg.Inter (a, b)
  | Relalg.Product (a, b) | Relalg.Join (_, a, b) ->
      1 + node_count a + node_count b

let rec plan_nodes p =
  node_count p.rexpr
  + List.fold_left
      (fun acc (_, s) ->
        acc
        +
        match s with
        | Sfilter (a, b) | Sxeq (a, b) -> 1 + plan_nodes a + plan_nodes b)
      0 p.subs
