(* Plan execution on the tape substrate, with per-node budget audits.

   A compiled plan is a tree of segments: one relalg expression plus
   xmlq sub-plans (xfilter/xeq) whose boolean verdicts feed it as
   unary relations. Each segment runs on its own [Tape.Group]
   (relalg and the stream filters create their own); [observe] is
   forwarded to every group so one [Obs.Ledger.Recorder] can fold the
   whole run. Every relalg operator's exclusive scan delta is audited
   against [Obs.Audit.relalg_node_spec]; every document builtin
   against [Obs.Audit.xpath_filter_spec]. *)

open Ast

type node_audit = { label : string; scans : int; allowed : int; ok : bool }

type outcome = {
  arity : int;
  rows : string list list;  (* sorted, distinct *)
  n : int;  (* total input tuples / stream bytes charged across segments *)
  scans : int;  (* total over all segments *)
  nodes : node_audit list;  (* audit per plan node, execution order *)
  audit_ok : bool;
  segments : int;  (* tape runs: one per relalg segment + one per builtin *)
  plan_nodes : int;
}

let rec referenced acc (e : Relalg.expr) =
  match e with
  | Relalg.Rel n -> if List.mem n acc then acc else n :: acc
  | Relalg.Select (_, e) | Relalg.Project (_, e) | Relalg.Rename (_, e) ->
      referenced acc e
  | Relalg.Union (a, b) | Relalg.Diff (a, b) | Relalg.Inter (a, b)
  | Relalg.Product (a, b) | Relalg.Join (_, a, b) ->
      referenced (referenced acc a) b

(* Serialize two unary results as the Section 4 instance document the
   stream filters consume. Atoms are already XML-safe by the lexer's
   alphabet. *)
let doc_of_rows rows1 rows2 =
  let items rows =
    String.concat ""
      (List.map
         (fun r -> "<item><string>" ^ List.hd r ^ "</string></item>")
         rows)
  in
  "<instance><set1>" ^ items rows1 ^ "</set1><set2>" ^ items rows2
  ^ "</set2></instance>"

let relation_of_rows ~arity rows =
  Relalg.relation
    ~schema:(Compile.cols arity)
    (List.map Array.of_list rows)

let rows_of_relation (r : Relalg.relation) =
  List.sort_uniq compare (List.map Array.to_list r.Relalg.tuples)

type acc = {
  mutable a_nodes : node_audit list;  (* reversed *)
  mutable a_scans : int;
  mutable a_n : int;
  mutable a_segments : int;
}

let run ?device ?observe ~(env : Naive.env) (e : expr) :
    (outcome, string) result =
  let tenv = List.map (fun (n, (k, _)) -> (n, k)) env in
  match Compile.compile tenv e with
  | Error m -> Error m
  | Ok plan -> (
      let acc = { a_nodes = []; a_scans = 0; a_n = 0; a_segments = 0 } in
      let audit_node spec label scans ~n =
        let allowed =
          match spec.Obs.Audit.scans with
          | Some b -> Obs.Audit.allowance b ~n
          | None -> max_int
        in
        acc.a_nodes <-
          { label; scans; allowed; ok = scans <= allowed } :: acc.a_nodes
      in
      let rec exec_plan (p : Compile.plan) : string list list =
        let sub_rels =
          List.map
            (fun (name, s) ->
              let builtin, verdict, rep =
                match s with
                | Compile.Sfilter (pa, pb) ->
                    let ra = exec_plan pa and rb = exec_plan pb in
                    let v, rep =
                      Xmlq.Stream_filter.figure1_filter ?observe
                        (doc_of_rows ra rb)
                    in
                    ("xfilter", v, rep)
                | Compile.Sxeq (pa, pb) ->
                    let ra = exec_plan pa and rb = exec_plan pb in
                    let v, rep =
                      Xmlq.Stream_filter.theorem12_query ?observe
                        (doc_of_rows ra rb)
                    in
                    ("xeq", v, rep)
              in
              acc.a_scans <- acc.a_scans + rep.Xmlq.Stream_filter.scans;
              acc.a_n <- acc.a_n + rep.Xmlq.Stream_filter.n;
              acc.a_segments <- acc.a_segments + 1;
              audit_node Obs.Audit.xpath_filter_spec builtin
                rep.Xmlq.Stream_filter.scans ~n:rep.Xmlq.Stream_filter.n;
              ( name,
                relation_of_rows ~arity:1 (if verdict then [ [ "true" ] ] else [])
              ))
            p.Compile.subs
        in
        let names = referenced [] p.Compile.rexpr in
        let db =
          List.filter_map
            (fun name ->
              if List.mem_assoc name sub_rels || List.mem_assoc name p.Compile.lits
              then None
              else
                match List.assoc_opt name env with
                | Some (k, rows) -> Some (name, relation_of_rows ~arity:k rows)
                | None -> None)
            names
          @ p.Compile.lits @ sub_rels
        in
        let seg_n = max 1 (Relalg.db_size db) in
        let result, rep =
          Relalg.eval_streaming ?device ?observe
            ~profile:(fun label scans ->
              audit_node Obs.Audit.relalg_node_spec label scans ~n:seg_n)
            db p.Compile.rexpr
        in
        acc.a_scans <- acc.a_scans + rep.Relalg.scans;
        acc.a_n <- acc.a_n + rep.Relalg.n;
        acc.a_segments <- acc.a_segments + 1;
        rows_of_relation result
      in
      match exec_plan plan with
      | exception Invalid_argument m -> Error m
      | rows ->
          let nodes = List.rev acc.a_nodes in
          Ok
            {
              arity = plan.Compile.arity;
              rows;
              n = acc.a_n;
              scans = acc.a_scans;
              nodes;
              audit_ok = List.for_all (fun na -> na.ok) nodes;
              segments = acc.a_segments;
              plan_nodes = Compile.plan_nodes plan;
            })
