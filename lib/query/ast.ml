(* Abstract syntax of the list-relation query language (the Rascal
   ListRelation design adapted to the paper's workloads). Atoms are
   strings over a safe charset shared with the XML document layer;
   integers are just atoms whose spelling is canonical-numeric. *)

type cmp = Ceq | Cne | Clt

type scalar =
  | Sconst of string  (* atom: bare integer or quoted string *)
  | Svar of string  (* comprehension variable *)

type pat =
  | Pvar of string
  | Pwild  (* _ *)
  | Pconst of string

type expr =
  | Lit of string list list  (* [<1,10>, <2,20>]; [] is the empty unary relation *)
  | Ref of string  (* named relation *)
  | Union of expr * expr  (* a + b *)
  | Diff of expr * expr  (* a - b *)
  | Inter of expr * expr  (* a & b *)
  | Compose of expr * expr  (* a o b — binary relation composition *)
  | Comp of scalar list * qual list  (* [ <head> | quals ] *)
  | Xfilter of expr * expr  (* xfilter(a,b): some a-atom missing from b (Thm 13) *)
  | Xeq of expr * expr  (* xeq(a,b): equal as sets (Thm 12) *)

and qual =
  | Gen of pat list * expr  (* <pats> <- e *)
  | Guard of scalar * cmp * scalar  (* s == s | s != s | s < s *)

type stmt = Bind of string * expr | Eval of expr

type program = stmt list

(* Structural equality; string lists, so polymorphic compare is exact.
   Named so the qcheck round-trip property reads as a law. *)
let equal_expr (a : expr) (b : expr) = a = b
let equal_program (a : program) (b : program) = a = b

(* The language's atom alphabet. Deliberately excludes angle brackets,
   ampersands, double quotes and NUL so every atom can flow into
   relalg's NUL-joined tuple encoding and the XML document stream
   unescaped. *)
let atom_char c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || (c >= '0' && c <= '9')
  || c = '_' || c = '.' || c = '-'

let is_atom s = String.for_all atom_char s

(* Atoms spelled like canonical integers print bare (and re-lex as
   INT); everything else prints quoted. Bounded length keeps the
   spelling unambiguous without bignum concerns. *)
let is_canonical_int s =
  let n = String.length s in
  n > 0 && n <= 18
  && String.for_all (fun c -> c >= '0' && c <= '9') s
  && (n = 1 || s.[0] <> '0')

let reserved = [ "o"; "xfilter"; "xeq"; "_" ]

let is_ident s =
  String.length s > 0
  && s.[0] >= 'a'
  && s.[0] <= 'z'
  && String.for_all
       (fun c ->
         (c >= 'a' && c <= 'z')
         || (c >= 'A' && c <= 'Z')
         || (c >= '0' && c <= '9')
         || c = '_')
       s
  && not (List.mem s reserved)
