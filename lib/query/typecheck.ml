(* Arity checking — the language's whole type system. A relation's
   type is its arity; [[]] is the empty unary relation. *)

open Ast

type env = (string * int) list (* relation name -> arity *)

let rec arity_of (env : env) (e : expr) : (int, string) result =
  match e with
  | Lit [] -> Ok 1
  | Lit (t :: ts) ->
      let k = List.length t in
      if k = 0 then Error "empty tuple in relation literal"
      else if List.exists (fun t' -> List.length t' <> k) ts then
        Error "relation literal mixes tuple arities"
      else Ok k
  | Ref n -> (
      match List.assoc_opt n env with
      | Some k -> Ok k
      | None -> Error (Printf.sprintf "unknown relation %S" n))
  | Union (a, b) -> same_arity env "+" a b
  | Diff (a, b) -> same_arity env "-" a b
  | Inter (a, b) -> same_arity env "&" a b
  | Compose (a, b) -> (
      match (arity_of env a, arity_of env b) with
      | Ok 2, Ok 2 -> Ok 2
      | Ok k, Ok 2 | Ok 2, Ok k ->
          Error (Printf.sprintf "composition needs binary relations, got arity %d" k)
      | Ok k, Ok _ ->
          Error (Printf.sprintf "composition needs binary relations, got arity %d" k)
      | (Error _ as e), _ | _, (Error _ as e) -> e)
  | Xfilter (a, b) | Xeq (a, b) -> (
      match (arity_of env a, arity_of env b) with
      | Ok 1, Ok 1 -> Ok 1
      | Ok k, Ok 1 | Ok 1, Ok k | Ok k, Ok _ ->
          Error
            (Printf.sprintf "document builtins need unary relations, got arity %d" k)
      | (Error _ as e), _ | _, (Error _ as e) -> e)
  | Comp (head, quals) -> comp_arity env head quals

and same_arity env op a b =
  match (arity_of env a, arity_of env b) with
  | Ok ka, Ok kb when ka = kb -> Ok ka
  | Ok ka, Ok kb ->
      Error (Printf.sprintf "'%s' needs equal arities, got %d and %d" op ka kb)
  | (Error _ as e), _ | _, (Error _ as e) -> e

and comp_arity env head quals =
  if head = [] then Error "empty comprehension head"
  else
    let rec walk bound gens = function
      | [] -> Ok (bound, gens)
      | Gen (pats, e) :: rest -> (
          if pats = [] then Error "empty generator pattern"
          else
            match arity_of env e with
            | Error _ as err -> err_pair err
            | Ok k when k <> List.length pats ->
                Error
                  (Printf.sprintf
                     "generator pattern has %d elements but relation has arity %d"
                     (List.length pats) k)
            | Ok _ ->
                let bound =
                  List.fold_left
                    (fun acc -> function
                      | Pvar v -> if List.mem v acc then acc else v :: acc
                      | Pwild | Pconst _ -> acc)
                    bound pats
                in
                walk bound (gens + 1) rest)
      | Guard (a, _, b) :: rest -> (
          match check_scalar bound a with
          | Some m -> Error m
          | None -> (
              match check_scalar bound b with
              | Some m -> Error m
              | None -> walk bound gens rest))
    and err_pair = function Error m -> Error m | Ok _ -> assert false
    and check_scalar bound = function
      | Sconst _ -> None
      | Svar v ->
          if List.mem v bound then None
          else Some (Printf.sprintf "variable %S used before it is bound" v)
    in
    match walk [] 0 quals with
    | Error m -> Error m
    | Ok (_, 0) -> Error "comprehension needs at least one generator"
    | Ok (bound, _) ->
        let rec head_ok seen = function
          | [] -> Ok (List.length head)
          | Sconst _ :: rest -> head_ok seen rest
          | Svar v :: rest ->
              if not (List.mem v bound) then
                Error (Printf.sprintf "head variable %S is not bound" v)
              else if List.mem v seen then
                Error (Printf.sprintf "head variable %S repeated" v)
              else head_ok (v :: seen) rest
        in
        head_ok [] head

(* A plan-size witness the audit layer cares about: the number of
   relation-valued leaves under products bounds how large an
   intermediate stream can get (N^depth). The fuzzer keeps this ≤ 4 so
   [Obs.Audit.relalg_node_spec]'s constant covers every generated
   plan. *)
let rec product_width = function
  | Lit _ | Ref _ -> 1
  | Union (a, b) | Diff (a, b) | Inter (a, b) -> max (product_width a) (product_width b)
  | Compose (a, b) -> product_width a + product_width b
  | Comp (_, quals) ->
      List.fold_left
        (fun acc -> function
          | Gen (_, e) -> acc + product_width e
          | Guard _ -> acc)
        0 quals
      |> max 1
  | Xfilter (a, b) | Xeq (a, b) -> max (product_width a) (product_width b)
