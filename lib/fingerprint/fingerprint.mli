(** The Theorem 8(a) fingerprinting algorithm:
    [MULTISET-EQUALITY ∈ co-RST(2, O(log N), 1)].

    One forward scan determines the parameters [(m, n, N)]; then the
    machine draws a uniformly random prime [p1 ≤ k] for
    [k = m³·n·⌈log(m³·n)⌉], a fixed prime [p2 ∈ (3k, 6k]] (Bertrand),
    and a random evaluation point [x ∈ {1,..,p2−1}]; a second,
    {e backward} scan (so the total is two scans — one head reversal —
    on the single external tape, as the class requires) accumulates

    {v Σ_i x^{e_i}  and  Σ_i x^{e'_i}  (mod p2),   e_i = v_i mod p1 v}

    and accepts iff the sums agree. Equal multisets are always accepted
    (no false negatives); unequal multisets are accepted with
    probability at most [1/3 + O(1/m)] — Claim 1 bounds the chance the
    residues collide, and a nonzero difference polynomial of degree
    [< p1] has at most [p1 ≤ (p2−1)/3] roots.

    Internal memory holds a constant number of [O(log N)]-bit numbers;
    the meter reports bits. *)

type params = {
  m : int;
  n : int;  (** maximum string length seen *)
  input_size : int;
  k : int;
  p1 : int;
  p2 : int;
  x : int;
}

type report = {
  scans : int;  (** measured on the tape group; always 2 when fault-free *)
  internal_bits : int;  (** meter peak, in bits *)
  tapes : int;  (** always 1 *)
  faults : int;  (** injected faults on the input tape (0 without a plan) *)
}

val run :
  ?faults:Faults.Plan.t ->
  ?retry:Faults.Retry.policy ->
  ?obs:Obs.Ledger.Recorder.t ->
  ?device:Tape.Device.spec ->
  Random.State.t -> Problems.Instance.t -> bool * report * params
(** Execute the algorithm on the encoded instance. With a fault plan
    attached ([?faults]) the input tape draws injected faults from the
    plan's deterministic per-tape stream, the parser treats corrupted
    symbols leniently (a stuck read shows the blank), and each scan
    runs under [Faults.Retry.run]: a transient I/O fault restarts the
    scan from its end of the tape, re-seeking through ordinary [move]
    calls so recovery pays honest reversal costs (visible in
    [report.scans]). Without [?faults], behaviour is bit-identical to
    the fault-free code. [?obs] registers the run's tape group with a
    ledger recorder for theorem-budget auditing ({!Obs.Audit}); without
    it no observer is installed. [?device] puts the input tape on a
    byte-backed backend ([Tape.Device.File]/[Shard]) behind a bounded
    cache — the two-scan decider at external N, with identical measured
    counters; the spill is deleted when the run returns. *)

val decide :
  ?faults:Faults.Plan.t ->
  ?retry:Faults.Retry.policy ->
  ?obs:Obs.Ledger.Recorder.t ->
  ?device:Tape.Device.spec ->
  Random.State.t -> Problems.Instance.t -> bool
(** Just the answer. *)

val amplified : Random.State.t -> rounds:int -> Problems.Instance.t -> bool
(** Accept only if all [rounds] independent runs accept: false-positive
    probability drops below [2^{-rounds}]-ish while false negatives
    remain impossible.
    @raise Invalid_argument if [rounds < 1]. *)

val false_positive_rate :
  ?pool:Parallel.Pool.t -> Random.State.t -> m:int -> n:int -> trials:int -> float
(** Empirical false-positive rate over random {e unequal} instances
    (one run each) — the experiment behind Claim 1 / Theorem 8(a).
    Trials fan out over [pool] (default {!Parallel.Pool.default}) with
    seed-split generators: for a fixed caller state the estimate is
    bit-identical for every worker count. *)

val residue_collision_rate :
  ?k:int ->
  ?pool:Parallel.Pool.t ->
  Random.State.t -> m:int -> n:int -> trials:int -> float
(** Claim 1 in isolation: the empirical probability that two distinct
    random [n]-bit values [v_i ≠ v'_j] in an unequal instance collide
    modulo a random prime [p ≤ k] (estimated over fresh instances and
    primes). [k] defaults to the paper's [m³·n·⌈log(m³n)⌉]; overriding
    it is the E15 ablation — the [m³] factor exists because Claim 1
    union-bounds over [m²] value pairs and still wants an [O(1/m)]
    failure rate, and smaller prime ranges measurably collide. *)
