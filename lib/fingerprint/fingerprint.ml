module I = Problems.Instance
module N = Numtheory

type params = {
  m : int;
  n : int;
  input_size : int;
  k : int;
  p1 : int;
  p2 : int;
  x : int;
}

type report = { scans : int; internal_bits : int; tapes : int; faults : int }

let bits_of v = max 1 (int_of_float (ceil (log (float_of_int (max 2 v)) /. log 2.0)))

(* Fault plumbing (see [lib/faults]): both scans are restartable — a
   retry rewinds (scan 1) or re-seeks to the right end (scan 2) through
   ordinary [move] calls, charging honest reversal costs, and rebuilds
   its registers from scratch. Fault-free runs skip the combinator and
   are bit-identical to the pre-fault code. *)
let phase ?faults ?retry ~label f =
  match (faults, retry) with
  | None, None -> f ()
  | _ ->
      let seed = match faults with Some p -> Faults.Plan.seed p | None -> 0 in
      Faults.Retry.run ?policy:retry ~seed ~label f

let run ?faults ?retry ?obs ?device st inst =
  let g = Tape.Group.create ?device () in
  (match obs with None -> () | Some r -> Obs.Ledger.Recorder.observe r g);
  let meter = Tape.Group.meter g in
  let encoded = I.encode inst in
  (* char cells have a byte codec for free, so the input tape follows
     the group's device spec; the preload is device-level (no head
     motion), so the decider still measures exactly two scans at any
     backend — the Theorem 8(a) audit is backend-independent. *)
  let codec =
    match Tape.Group.device g with
    | Tape.Device.Mem -> None
    | _ -> Some Tape.Device.Codec.tuple_char
  in
  let tape = Tape.Group.tape g ~name:"input" ?codec ~blank:'_' () in
  Fun.protect ~finally:(fun () -> Tape.Group.close_all g) @@ fun () ->
  (* the preload is device-level and idempotent, so a below-seam I/O
     fault during the initial spill heals by re-preloading *)
  phase ?faults ?retry ~label:"fp-preload" (fun () ->
      Tape.preload_seq tape (String.to_seq encoded));
  (match faults with None -> () | Some p -> Faults.attach_char p tape);
  (* Under injection a read may return any symbol (a stuck read shows
     the blank); parse leniently then instead of rejecting the input. *)
  let strict = faults = None in
  let len0 = String.length encoded in
  (* ---- scan 1 (forward): determine m, n, N ---- *)
  let hashes = ref 0 and cur = ref 0 and maxlen = ref 0 and total = ref 0 in
  phase ?faults ?retry ~label:"fp-scan1" (fun () ->
      Tape.rewind tape;
      hashes := 0;
      cur := 0;
      maxlen := 0;
      total := 0;
      for _ = 1 to len0 do
        (incr total;
         match Tape.read tape with
         | '#' ->
             incr hashes;
             if !cur > !maxlen then maxlen := !cur;
             cur := 0
         | '0' | '1' -> incr cur
         | _ -> if strict then invalid_arg "Fingerprint.run: bad input symbol");
        Tape.move tape Tape.Right
      done);
  let m = !hashes / 2 in
  let n = max 1 !maxlen in
  let input_size = !total in
  (* charge the scan-1 counters: four numbers bounded by N *)
  Tape.Meter.alloc meter (4 * bits_of (input_size + 2));
  Tape.Meter.free meter (4 * bits_of (input_size + 2));
  (* ---- parameter choice (internal memory only) ---- *)
  let k = max 2 (N.fingerprint_k ~m:(max 1 m) ~n) in
  let p1 = N.random_prime_le st k in
  let p2 = N.bertrand_prime k in
  let x = N.random_unit st p2 in
  (* registers live for the whole second scan: e, pw, sum1, sum2, string
     and marker counters, and the parameters k, p1, p2, x — all
     O(log N)-bit numbers (log k = O(log N) since k is polynomial in N) *)
  let reg_bits = 11 * bits_of (6 * k) in
  let accept =
    Tape.Meter.with_units meter reg_bits (fun () ->
        phase ?faults ?retry ~label:"fp-scan2" (fun () ->
            (* ---- scan 2 (backward): accumulate the two sums ---- *)
            (* The head is one past the last cell after scan 1 (a retry
               re-seeks it there, paying the reversals); strings come in
               reverse order, bits LSB-first: e = Σ b_j·2^j mod p1. *)
            while Tape.position tape < len0 do
              Tape.move tape Tape.Right
            done;
            let sum_y = ref 0 and sum_x = ref 0 in
            let e = ref 0 and pw = ref (1 mod p1) in
            let seen = ref 0 in
            (* strings 2m..m+1 belong to the y-half in backward order *)
            let flush () =
              incr seen;
              let contribution = N.pow_mod x !e p2 in
              if !seen <= m then sum_y := N.add_mod !sum_y contribution p2
              else sum_x := N.add_mod !sum_x contribution p2;
              e := 0;
              pw := 1 mod p1
            in
            (* Walking leftward, each '#' precedes (in reading order) the
               bits of the string it terminates, so a '#' closes the string
               accumulated since the previous marker — except the first
               (rightmost) marker, which opens the very last string. The
               leftmost string is closed at the left end of the tape. *)
            let markers = ref 0 in
            let continue_ = ref (not (Tape.at_left_end tape)) in
            if !continue_ then Tape.move tape Tape.Left;
            while !continue_ do
              (match Tape.read tape with
              | '#' ->
                  incr markers;
                  if !markers > 1 then flush ()
              | '0' -> pw := N.add_mod !pw !pw p1
              | '1' ->
                  e := N.add_mod !e !pw p1;
                  pw := N.add_mod !pw !pw p1
              | _ -> ());
              if Tape.at_left_end tape then begin
                continue_ := false;
                if m > 0 && !seen < 2 * m then flush ()
              end
              else Tape.move tape Tape.Left
            done;
            !sum_x = !sum_y))
  in
  let grp = Tape.Group.report g in
  ( accept,
    {
      scans = grp.Tape.Group.scans_used;
      internal_bits = grp.Tape.Group.internal_peak_units;
      tapes = List.length grp.Tape.Group.reversals_by_tape;
      faults = Tape.Group.faults_injected g;
    },
    { m; n; input_size; k; p1; p2; x } )

let decide ?faults ?retry ?obs ?device st inst =
  let accept, _, _ = run ?faults ?retry ?obs ?device st inst in
  accept

let amplified st ~rounds inst =
  if rounds < 1 then invalid_arg "Fingerprint.amplified: rounds >= 1";
  let rec go r = if r = 0 then true else decide st inst && go (r - 1) in
  go rounds

(* The Monte Carlo estimators fan their independent trials out over the
   pool. The root seed is drawn from the caller's state (one pull, on
   the calling domain), then each chunk of trials runs on its own
   seed-split [Random.State] - so for a fixed caller state the estimate
   is bit-identical for every worker count. *)

let pool_of = function Some p -> p | None -> Parallel.Pool.default ()

let false_positive_rate ?pool st ~m ~n ~trials =
  let pool = pool_of pool in
  let seed = Parallel.Rng.seed_of_state st in
  let fp =
    Parallel.Pool.monte_carlo_count pool ~trials ~seed (fun st ->
        let inst =
          Problems.Generators.no_instance st Problems.Decide.Multiset_equality
            ~m ~n
        in
        decide st inst)
  in
  float_of_int fp /. float_of_int trials

let residue_collision_rate ?k ?pool st ~m ~n ~trials =
  let k =
    match k with Some k -> max 2 k | None -> max 2 (N.fingerprint_k ~m ~n)
  in
  let pool = pool_of pool in
  let seed = Parallel.Rng.seed_of_state st in
  let collisions =
    Parallel.Pool.monte_carlo_count pool ~trials ~seed (fun st ->
        let inst =
          Problems.Generators.no_instance st Problems.Decide.Multiset_equality
            ~m ~n
        in
        let p = N.random_prime_le st k in
        let residues half =
          Array.map (fun v -> N.mod_of_bits v ~modulus:p) half
          |> Array.to_list
          |> List.sort Int.compare
        in
        let xs = residues (I.xs inst) and ys = residues (I.ys inst) in
        xs = ys)
  in
  float_of_int collisions /. float_of_int trials
