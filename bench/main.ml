(* Experiment + micro-benchmark driver.

   Usage:
     dune exec bench/main.exe                          - all tables + benches
     dune exec bench/main.exe -- exp4                  - one experiment
     dune exec bench/main.exe -- tables                - experiment tables only
     dune exec bench/main.exe -- micro                 - micro-benchmarks only
     dune exec bench/main.exe -- micro --json PATH     - benches + per-table
                                                         wall clock, as JSON
     dune exec bench/main.exe -- -j 4 tables           - 4 worker domains
     dune exec bench/main.exe -- --checkpoint DIR tables - journal/resume
     dune exec bench/main.exe -- --trace FILE tables   - JSONL event trace

   [-j N] sizes the Domain pool the Monte Carlo harness fans trials out
   over (default: STLB_DOMAINS, else the hardware); table contents are
   bit-identical for every N. [--trace FILE] installs a JSONL
   observability sink for the run (table/ledger/audit events, see
   lib/obs; deterministic and worker-count-independent, like the
   tables themselves). [--checkpoint DIR] journals each
   completed table under DIR and replays journaled tables verbatim, so
   an interrupted table sweep resumes where it was killed (it applies
   to the experiment-table paths, not to micro benches, whose wall
   clocks must be measured fresh). [micro --json PATH] writes the bench
   trajectory (Bechamel ns/run per micro-benchmark, wall-clock seconds
   per experiment table) so future perf PRs can diff against a
   committed baseline; [--quick] shrinks the Bechamel quota and skips
   the table sweep - the @bench-smoke alias uses it to catch driver
   bitrot in seconds. *)

open Bechamel
open Toolkit

let micro_tests () =
  let st = Random.State.make [| 123 |] in
  let module G = Problems.Generators in
  let module D = Problems.Decide in
  let fp_inst = G.yes_instance st D.Multiset_equality ~m:64 ~n:12 in
  let sort_items =
    List.init 256 (fun i -> Printf.sprintf "%05d" ((i * 7919) mod 256))
  in
  (* file-backed variant of the merge sort: same items, cells on
     64 KiB-block-cached spill files (created and deleted every run -
     the backend's setup cost is part of what is being measured) *)
  let file_device =
    Tape.Device.file_spec ~block_bytes:(1 lsl 16) ~cache_blocks:16
      (Filename.concat
         (Filename.get_temp_dir_name ())
         (Printf.sprintf "stlb-bench-spill-%d" (Unix.getpid ())))
  in
  let tuples =
    List.init 1000 (fun i ->
        Tape.Tuple.[ Str (Printf.sprintf "cell-%04d" i); Int ((i * 7919) - 500) ])
  in
  let cs_inst = G.yes_instance st D.Check_sort ~m:128 ~n:10 in
  let space = G.Checkphi.default_space ~m:8 ~n:16 in
  let lm =
    Listmachine.Machines.staircase_checkphi ~space
      ~chains:(Listmachine.Machines.chains_needed ~space)
      ~optimistic:false
  in
  let lm_values =
    let i = G.Checkphi.yes st space in
    Array.append (Problems.Instance.xs i) (Problems.Instance.ys i)
  in
  let ra_db = Relalg.instance_db (G.yes_instance st D.Set_equality ~m:64 ~n:10) in
  let xml_stream =
    Xmlq.Doc.serialize
      (Xmlq.Doc.of_instance (G.yes_instance st D.Set_equality ~m:32 ~n:10))
  in
  let tm = Turing.Zoo.pair_equality () in
  let pool4 = Parallel.Pool.create ~domains:4 () in
  (* the full Lemma 21 pipeline (sample, sweep, census, compose) at
     m=16 against the one-chain-short staircase — the FOOLED case; a
     1-domain pool and a pinned seed keep the measured work fixed *)
  let adv_space = G.Checkphi.default_space ~m:16 ~n:32 in
  let adv_machine =
    Listmachine.Machines.staircase_checkphi ~space:adv_space
      ~chains:(Listmachine.Machines.chains_needed ~space:adv_space - 1)
      ~optimistic:true
  in
  let adv_pool = Parallel.Pool.create ~domains:1 () in
  (* the same pipeline at m=32 — the scale the canonical-form reduction
     unlocked (each census sweep collapses to one machine run per rank
     pattern); tracks the cost of the big-m frontier the E4 table pins *)
  let adv32_space = G.Checkphi.default_space ~m:32 ~n:64 in
  let adv32_machine =
    Listmachine.Machines.staircase_checkphi ~space:adv32_space
      ~chains:(Listmachine.Machines.chains_needed ~space:adv32_space - 1)
      ~optimistic:true
  in
  (* spill-backed interning: a stream of 256 skeletons (runs of the
     staircase machine on random value patterns, so classes repeat but
     don't collapse) interned into a fresh 64 KiB-block file-backed
     two-tier table per run — measures bloom/front filtering, slot
     probes and growth migration, setup and teardown included *)
  let spill_skels =
    Array.init 256 (fun _ ->
        let values =
          Array.init 16 (fun _ -> Util.Bitstring.random st ~width:4)
        in
        Listmachine.Skeleton.of_views
          (Listmachine.Nlm.run_view lm ~values ~choices:(fun _ -> 0)))
  in
  let spill_backend =
    Listmachine.Skeleton.Intern.Spill
      { spec = file_device; recent = 16 }
  in
  (* one 64 KiB block round-trip through the CRC framing: a 1-block
     cache bounces between two blocks, so every iteration pays two
     evict-flushes (checksum + pwrite) and two loads (pread + verify).
     This is the per-block integrity overhead the file backend charges;
     the mem backend has none (the guard's 25% gate pins that). *)
  let crc_dev =
    Tape.Device.instantiate ~codec:Tape.Device.Codec.tuple_char
      (Tape.Device.file_spec ~block_bytes:(1 lsl 16) ~cache_blocks:1
         (Filename.concat
            (Filename.get_temp_dir_name ())
            (Printf.sprintf "stlb-bench-spill-%d" (Unix.getpid ()))))
      ~blank:'_' ~name:"crc-bench"
  in
  let crc_slots = (1 lsl 16) / 4 in
  (* the query front-end: a join-shaped comprehension over two 24-row
     binary relations, measured at each stage - parse alone, the full
     compile + tape execution + per-node audit, the naive in-memory
     oracle it is differentially checked against, and one complete
     fuzz case (generate env + query, run both sides, compare) *)
  let q_env : Query.Naive.env =
    let rows tag =
      List.init 24 (fun i ->
          [ Printf.sprintf "%s%02d" tag (i mod 12); string_of_int (i * 7 mod 24) ])
    in
    [
      ("qr", (2, List.sort_uniq compare (rows "a")));
      ("qs", (2, List.sort_uniq compare (List.map List.rev (rows "b"))));
    ]
  in
  let q_src = "(qr o qs) + [ <y, x> | <x, y> <- qr, x == \"a01\" ]" in
  let q_expr =
    match Query.Parser.parse_expr_string q_src with
    | Ok e -> e
    | Error _ -> assert false
  in
  [
    Test.make ~name:"fingerprint-multiset-eq-m64"
      (Staged.stage (fun () -> ignore (Fingerprint.run st fp_inst)));
    Test.make ~name:"device-crc-block-64k"
      (Staged.stage (fun () ->
           Tape.Device.set crc_dev 0 'x';
           ignore (Tape.Device.get crc_dev crc_slots);
           Tape.Device.set crc_dev crc_slots 'y';
           ignore (Tape.Device.get crc_dev 0)));
    Test.make ~name:"tape-merge-sort-256"
      (Staged.stage (fun () -> ignore (Extsort.sort sort_items)));
    Test.make ~name:"tape-file-merge-sort-64k"
      (Staged.stage (fun () ->
           ignore (Extsort.sort ~device:file_device sort_items)));
    Test.make ~name:"tuple-encode-decode-1k"
      (Staged.stage (fun () ->
           List.iter
             (fun t -> ignore (Tape.Tuple.unpack (Tape.Tuple.pack t)))
             tuples));
    Test.make ~name:"checksort-decider-m128"
      (Staged.stage (fun () -> ignore (Extsort.check_sort cs_inst)));
    Test.make ~name:"staircase-lm-run-m8"
      (Staged.stage (fun () ->
           ignore (Listmachine.Nlm.run lm ~values:lm_values ~choices:(fun _ -> 0))));
    Test.make ~name:"adversary-census-m16"
      (Staged.stage (fun () ->
           ignore
             (Stcore.Adversary.attack ~pool:adv_pool ~seed:7 st ~space:adv_space
                ~machine:adv_machine ())));
    Test.make ~name:"adversary-census-m32"
      (Staged.stage (fun () ->
           ignore
             (Stcore.Adversary.attack ~pool:adv_pool ~seed:7 st
                ~space:adv32_space ~machine:adv32_machine ())));
    Test.make ~name:"skeleton-intern-spill-64k"
      (Staged.stage (fun () ->
           let tbl =
             Listmachine.Skeleton.Intern.create ~backend:spill_backend ()
           in
           Array.iter
             (fun sk -> ignore (Listmachine.Skeleton.Intern.intern tbl sk))
             spill_skels;
           Listmachine.Skeleton.Intern.close tbl));
    Test.make ~name:"sortedness-phi-4096"
      (Staged.stage (fun () ->
           ignore (Util.Permutation.sortedness (Util.Permutation.reverse_binary 4096))));
    Test.make ~name:"relalg-symdiff-m64"
      (Staged.stage (fun () ->
           ignore (Relalg.eval_streaming ra_db (Relalg.symmetric_difference "R1" "R2"))));
    Test.make ~name:"xml-stream-filter-m32"
      (Staged.stage (fun () -> ignore (Xmlq.Stream_filter.figure1_filter xml_stream)));
    Test.make ~name:"tm-pair-equality-n32"
      (Staged.stage (fun () ->
           ignore
             (Turing.Machine.run_deterministic tm
                ~input:(String.make 32 '0' ^ "#" ^ String.make 32 '0' ^ "#"))));
    Test.make ~name:"random-prime-le-k66560"
      (Staged.stage (fun () -> ignore (Numtheory.random_prime_le st 66_560)));
    Test.make ~name:"pool-monte-carlo-j4-100"
      (Staged.stage (fun () ->
           ignore
             (Parallel.Pool.monte_carlo_count pool4 ~trials:100 ~seed:7
                (fun st -> Random.State.bool st))));
    Test.make ~name:"query-parse-compose-join"
      (Staged.stage (fun () -> ignore (Query.Parser.parse_expr_string q_src)));
    Test.make ~name:"query-exec-compose-join"
      (Staged.stage (fun () -> ignore (Query.Exec.run ~env:q_env q_expr)));
    Test.make ~name:"query-naive-oracle"
      (Staged.stage (fun () -> ignore (Query.Naive.eval q_env q_expr)));
    Test.make ~name:"query-fuzz-case"
      (Staged.stage (fun () ->
           ignore (Query.Fuzz.run_case ~seed:11 ~index:0 ())));
  ]

(* (name, ns/run estimate) per micro-benchmark *)
let micro_estimates ~quota =
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:Measure.[| run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second quota) ~kde:(Some 1000) ()
  in
  List.concat_map
    (fun test ->
      let results = Benchmark.all cfg instances test in
      let analyzed = Analyze.all ols Instance.monotonic_clock results in
      Hashtbl.fold
        (fun name ols_result acc ->
          let est =
            match Analyze.OLS.estimates ols_result with
            | Some [ est ] -> Some est
            | Some _ | None -> None
          in
          (name, est) :: acc)
        analyzed [])
    (List.map
       (fun t -> Test.make_grouped ~name:"" ~fmt:"%s%s" [ t ])
       (micro_tests ()))

let print_estimates estimates =
  print_endline "Micro-benchmarks (Bechamel, monotonic clock, ns/run):";
  List.iter
    (fun (name, est) ->
      match est with
      | Some est -> Printf.printf "  %-34s %14.1f ns/run\n" name est
      | None -> Printf.printf "  %-34s (no estimate)\n" name)
    estimates

(* (name, loadgen summary) per serve scenario: an in-process
   [Serve.Server] on its own domain driven by the deterministic mixed
   workload, so the trajectory tracks request throughput and tail
   latency alongside the micro ns/run numbers. Scenarios stay small
   (sub-second); tools/bench_guard.sh warns when p99 regresses. *)
let serve_estimates ~quick () =
  let requests = if quick then 80 else 400 in
  let scenarios =
    [ ("serve/singleton-j1", 1, 1); ("serve/batch8-j2", 2, 8) ]
  in
  List.mapi
    (fun i (name, jobs, batch) ->
      let socket =
        Filename.concat (Filename.get_temp_dir_name ())
          (Printf.sprintf "stlb-bench-%d-%d.sock" (Unix.getpid ()) i)
      in
      let cfg =
        { (Serve.Server.default ~socket) with Serve.Server.seed = 42;
          domains = jobs }
      in
      let ready = Atomic.make false in
      let srv =
        Domain.spawn (fun () ->
            Serve.Server.run ~on_ready:(fun () -> Atomic.set ready true) cfg)
      in
      while not (Atomic.get ready) do
        Unix.sleepf 0.002
      done;
      let s =
        Serve.Loadgen.run ~socket ~requests ~batch ~m:6 ~n:8 ~seed:7 ()
      in
      let c = Serve.Client.connect socket in
      Serve.Client.shutdown c ~id:requests;
      Serve.Client.close c;
      Domain.join srv;
      (name, s))
    scenarios

let print_serve serve =
  print_endline "Serve scenarios (loadgen over a Unix-domain socket):";
  List.iter
    (fun (name, (s : Serve.Loadgen.summary)) ->
      Printf.printf "  %-34s %10.1f req/s   p50 %8.1f us   p99 %8.1f us\n"
        name s.Serve.Loadgen.rps s.Serve.Loadgen.p50_us s.Serve.Loadgen.p99_us)
    serve

let time_tables () =
  List.map
    (fun (name, f) ->
      let t0 = Unix.gettimeofday () in
      f ();
      print_newline ();
      (name, Unix.gettimeofday () -. t0))
    Harness.Experiments.all

(* Minimal JSON writer - names are ASCII identifiers, so escaping only
   needs the JSON specials. *)
let json_string s =
  let buf = Buffer.create (String.length s + 2) in
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"';
  Buffer.contents buf

let write_trajectory ~path ~quick ~estimates ~serve ~tables =
  let oc = open_out path in
  let out fmt = Printf.fprintf oc fmt in
  out "{\n";
  out "  \"schema\": \"stlb-bench-trajectory/1\",\n";
  out "  \"domains\": %d,\n" (Parallel.Pool.default_domains ());
  out "  \"quick\": %b,\n" quick;
  out "  \"ocaml\": %s,\n" (json_string Sys.ocaml_version);
  out "  \"micro\": [\n";
  List.iteri
    (fun i (name, est) ->
      out "    {\"name\": %s, \"ns_per_run\": %s}%s\n" (json_string name)
        (match est with Some e -> Printf.sprintf "%.1f" e | None -> "null")
        (if i = List.length estimates - 1 then "" else ","))
    estimates;
  out "  ],\n";
  out "  \"serve\": [\n";
  List.iteri
    (fun i (name, (s : Serve.Loadgen.summary)) ->
      out
        "    {\"name\": %s, \"rps\": %.1f, \"p50_us\": %.1f, \"p99_us\": \
         %.1f, \"fingerprint\": \"0x%016Lx\"}%s\n"
        (json_string name) s.Serve.Loadgen.rps s.Serve.Loadgen.p50_us
        s.Serve.Loadgen.p99_us s.Serve.Loadgen.fingerprint
        (if i = List.length serve - 1 then "" else ","))
    serve;
  out "  ],\n";
  out "  \"tables\": [\n";
  List.iteri
    (fun i (name, wall) ->
      out "    {\"name\": %s, \"wall_s\": %.3f}%s\n" (json_string name) wall
        (if i = List.length tables - 1 then "" else ","))
    tables;
  out "  ]\n";
  out "}\n";
  close_out oc

let run_micro ?json ~quick () =
  let quota = if quick then 0.05 else 0.5 in
  match json with
  | None -> print_estimates (micro_estimates ~quota)
  | Some path ->
      (* the table sweep is the expensive half of the trajectory; the
         smoke path skips it. Time it before Bechamel churns the heap
         so the wall clocks track the standalone runs. *)
      let tables = if quick then [] else time_tables () in
      let estimates = micro_estimates ~quota in
      print_estimates estimates;
      (* after Bechamel so the socket servers see a settled heap *)
      let serve = serve_estimates ~quick () in
      print_serve serve;
      write_trajectory ~path ~quick ~estimates ~serve ~tables;
      Printf.printf "wrote bench trajectory to %s\n" path

let usage () =
  prerr_endline
    "usage: main.exe [-j N] [--checkpoint DIR] [--trace FILE] [expN | tables \
     | micro [--json PATH] [--quick]]";
  exit 1

let () =
  (* strip the global [-j N] / [--checkpoint DIR] / [--trace FILE]
     options anywhere on the command line, then dispatch *)
  let checkpoint = ref None in
  let trace = ref None in
  let rec split_global acc = function
    | "-j" :: n :: rest -> (
        match int_of_string_opt n with
        | Some d when d >= 1 ->
            Parallel.Pool.set_default_domains d;
            split_global acc rest
        | _ -> usage ())
    | "-j" :: [] -> usage ()
    | "--checkpoint" :: dir :: rest ->
        checkpoint := Some (Harness.Checkpoint.open_dir dir);
        split_global acc rest
    | "--checkpoint" :: [] -> usage ()
    | "--trace" :: path :: rest ->
        trace := Some path;
        split_global acc rest
    | "--trace" :: [] -> usage ()
    | a :: rest -> split_global (a :: acc) rest
    | [] -> List.rev acc
  in
  let args = split_global [] (List.tl (Array.to_list Sys.argv)) in
  let checkpoint = !checkpoint in
  let with_trace f =
    match !trace with
    | None -> f ()
    | Some p -> Obs.Trace.with_sink (Obs.Trace.open_file p) f
  in
  with_trace @@ fun () ->
  match args with
  | [] ->
      Harness.Experiments.run_all ?checkpoint ();
      run_micro ~quick:false ()
  | [ "tables" ] -> Harness.Experiments.run_all ?checkpoint ()
  | "micro" :: opts ->
      let rec parse json quick = function
        | "--json" :: path :: rest -> parse (Some path) quick rest
        | "--quick" :: rest -> parse json true rest
        | [] -> (json, quick)
        | _ -> usage ()
      in
      let json, quick = parse None false opts in
      run_micro ?json ~quick ()
  | [ name ] -> (
      match List.assoc_opt name Harness.Experiments.all with
      | Some f -> Harness.Checkpoint.run checkpoint ~name f
      | None ->
          Printf.eprintf "unknown experiment %S; available: %s, tables, micro\n" name
            (String.concat ", " (List.map fst Harness.Experiments.all));
          exit 1)
  | _ -> usage ()
