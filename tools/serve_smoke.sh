#!/bin/sh
# Serve smoke: start a real out-of-process `stlb serve`, drive it with
# the bounded deterministic loadgen, and require the verdict summary
# (counts + workload fingerprint, timing line stripped) to be
# byte-identical across -j 1/2/4, across a singleton-frame re-run of
# the batched workload, and across a server restart. Each server is
# stopped with a SHUTDOWN frame and must exit 0 - a worker crash or a
# wedged accept loop fails the script, not just the diff.
#
# Usage: serve_smoke.sh STLB_EXE [WORKDIR]
# Exits non-zero on the first divergence.
set -u

STLB=$1
WORK=${2:-serve-smoke-work}
rm -rf "$WORK"
mkdir -p "$WORK"
fail() { echo "serve-smoke: FAIL: $1" >&2; exit 1; }

REQUESTS=80
LOAD_SEED=7
SERVER_SEED=42

# The timing line (throughput/latency/wall) is the only
# non-deterministic output; everything above it must be stable.
strip_timing() { grep -v '^throughput:' "$1"; }

run_one() { # run_one NAME JOBS BATCH
  name=$1; jobs=$2; batch=$3
  sock="$WORK/$name.sock"
  "$STLB" serve --socket "$sock" --seed $SERVER_SEED -j "$jobs" \
    >"$WORK/$name.server.log" 2>&1 &
  pid=$!
  # the client retries connect until the listener is up, so no sleep
  # loop is needed here - but bail early if the server died at startup
  "$STLB" loadgen --socket "$sock" --seed $LOAD_SEED \
    --requests $REQUESTS --batch "$batch" --shutdown \
    >"$WORK/$name.out" 2>&1 ||
    { kill "$pid" 2>/dev/null; fail "$name: loadgen failed"; }
  wait "$pid" || fail "$name: server did not exit cleanly after SHUTDOWN"
  strip_timing "$WORK/$name.out" >"$WORK/$name.stable"
}

# verdict parity across worker counts (batched frames)
for j in 1 2 4; do
  run_one "j$j" "$j" 4
done
cmp -s "$WORK/j1.stable" "$WORK/j2.stable" || fail "-j 1 vs -j 2 diverged"
cmp -s "$WORK/j1.stable" "$WORK/j4.stable" || fail "-j 1 vs -j 4 diverged"

# batching equivalence: the same ids in singleton DECIDE frames must
# produce the same verdicts (frame count differs, so compare only the
# verdict + fingerprint lines)
run_one "singleton" 2 1
for f in j1 singleton; do
  grep -E '^(verdicts|workload fingerprint):' "$WORK/$f.stable" \
    >"$WORK/$f.verdicts"
done
cmp -s "$WORK/j1.verdicts" "$WORK/singleton.verdicts" ||
  fail "batched vs singleton frames diverged"

# restart determinism: a fresh server process with the same seed must
# reproduce the fingerprint bit for bit
run_one "restart" 2 4
cmp -s "$WORK/j2.stable" "$WORK/restart.stable" ||
  fail "restart diverged from first run"

fp=$(grep '^workload fingerprint:' "$WORK/j1.stable")
echo "serve-smoke: OK ($REQUESTS requests x 5 servers, $fp)"
