#!/bin/sh
# Crash-matrix: kill `stlb decide` at seeded raw-syscall crash points,
# scrub the spill it left behind, re-run, and require the recovered
# run's stdout AND event trace to be byte-identical to an
# uninterrupted reference. Also proves the checkpoint-journal path:
# a journaled decide replays verbatim without touching the tapes.
#
# Usage: crash_matrix.sh STLB_EXE [WORKDIR]
# Exits non-zero on the first divergence.
set -u

STLB=$1
WORK=${2:-crash-matrix-work}
rm -rf "$WORK"
mkdir -p "$WORK"
fail() { echo "crash-matrix: FAIL: $1" >&2; exit 1; }

"$STLB" gen -m 512 -n 12 --seed 11 >"$WORK/inst.txt" || fail "gen"

for dev in file shard; do
  # shard files are 16 blocks: 64-byte blocks keep both backends small
  # enough that every pass streams and crash points land mid-data
  bs=64
  ref_spill="$WORK/ref-$dev"
  "$STLB" decide -f "$WORK/inst.txt" --device $dev --block-size $bs \
    --spill-dir "$ref_spill" --trace "$WORK/ref-$dev.jsonl" \
    >"$WORK/ref-$dev.out" || fail "$dev reference run"
  [ -z "$(find "$ref_spill" -type f 2>/dev/null)" ] ||
    fail "$dev reference left spill files"

  for k in 9 60 150 400; do
    spill="$WORK/spill-$dev-$k"
    "$STLB" decide -f "$WORK/inst.txt" --device $dev --block-size $bs \
      --spill-dir "$spill" --crash-at $k >/dev/null 2>&1
    [ $? -eq 70 ] || fail "$dev crash-at $k: expected exit 70"

    # reopen protocol: discard torn/orphaned frames, keep survivors
    "$STLB" scrub --fix "$spill" >/dev/null
    s=$?
    { [ $s -eq 0 ] || [ $s -eq 12 ]; } || fail "$dev scrub after crash at $k"
    "$STLB" scrub "$spill" >/dev/null ||
      fail "$dev re-scrub not clean after fix (crash at $k)"

    # resume: recompute through the scrubbed directory; verdict and
    # cost accounting must match the uninterrupted reference exactly
    "$STLB" decide -f "$WORK/inst.txt" --device $dev --block-size $bs \
      --spill-dir "$spill" --trace "$WORK/res-$dev-$k.jsonl" \
      >"$WORK/res-$dev-$k.out" || fail "$dev resume after crash at $k"
    cmp -s "$WORK/ref-$dev.out" "$WORK/res-$dev-$k.out" ||
      fail "$dev stdout diverged after crash at $k"
    cmp -s "$WORK/ref-$dev.jsonl" "$WORK/res-$dev-$k.jsonl" ||
      fail "$dev trace diverged after crash at $k"
    [ -z "$(find "$spill" -type f 2>/dev/null)" ] ||
      fail "$dev resume left spill files (crash at $k)"
  done
done

# checkpoint journal: first run computes and journals, second replays
# byte-identically with the tapes untouched (no spill dir is created)
"$STLB" decide -f "$WORK/inst.txt" --device file --block-size 64 \
  --spill-dir "$WORK/ck-spill" --checkpoint "$WORK/ckpt" \
  >"$WORK/ck-a.out" || fail "checkpoint first run"
"$STLB" decide -f "$WORK/inst.txt" --device file --block-size 64 \
  --spill-dir "$WORK/ck-spill-2" --checkpoint "$WORK/ckpt" \
  >"$WORK/ck-b.out" || fail "checkpoint replay run"
cmp -s "$WORK/ck-a.out" "$WORK/ck-b.out" || fail "checkpoint replay diverged"
[ ! -d "$WORK/ck-spill-2" ] || fail "checkpoint replay touched the tapes"

rm -rf "$WORK"
echo "crash-matrix: OK (2 devices x 4 crash points + checkpoint replay)"
