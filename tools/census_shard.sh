#!/bin/sh
# Sharded-census smoke: run the Lemma 21 adversary once directly, then
# as K cooperating shard collectors whose evidence files are merged
# back, and require the merged census fingerprint (and the whole
# verdict block) to be byte-identical to the unsharded run — for every
# K in the sweep and for the spill-backed intern table. This is the
# end-to-end check of the `--shard I/K` / `--merge` protocol: sharding
# repartitions work, it must never repartition randomness.
#
# Usage: census_shard.sh STLB_EXE [WORKDIR] [M] [SEED]
# Exits non-zero on the first divergence.
set -u

STLB=$1
WORK=${2:-census-shard-work}
M=${3:-8}
SEED=${4:-42}
rm -rf "$WORK"
mkdir -p "$WORK"
fail() { echo "census-shard: FAIL: $1" >&2; exit 1; }

# verdict block of a run: everything except the timing-free lines are
# already deterministic, so no normalization is needed
"$STLB" adversary -m "$M" --seed "$SEED" >"$WORK/direct.out" ||
  fail "direct run"
ref_fp=$(sed -n 's/^census fingerprint: \(0x[0-9a-f]*\).*/\1/p' "$WORK/direct.out")
[ -n "$ref_fp" ] || fail "direct run printed no fingerprint"

for k in 2 3 4; do
  merge_args=""
  for i in $(seq 1 "$k"); do
    ev="$WORK/m$M-k$k-s$i.ev"
    "$STLB" adversary -m "$M" --seed "$SEED" --shard "$i/$k" --out "$ev" \
      >/dev/null || fail "collect shard $i/$k"
    merge_args="$merge_args --merge $ev"
  done
  # shellcheck disable=SC2086
  "$STLB" adversary -m "$M" --seed "$SEED" $merge_args \
    >"$WORK/merged-k$k.out" || fail "merge k=$k"
  fp=$(sed -n 's/^census fingerprint: \(0x[0-9a-f]*\).*/\1/p' "$WORK/merged-k$k.out")
  [ "$fp" = "$ref_fp" ] ||
    fail "k=$k merged fingerprint $fp != unsharded $ref_fp"
done

# the spill-backed intern table must not move a bit either
for backend in file shard; do
  "$STLB" adversary -m "$M" --seed "$SEED" --intern "$backend" \
    --spill-dir "$WORK/spill-$backend" >"$WORK/intern-$backend.out" ||
    fail "--intern $backend run"
  fp=$(sed -n 's/^census fingerprint: \(0x[0-9a-f]*\).*/\1/p' "$WORK/intern-$backend.out")
  [ "$fp" = "$ref_fp" ] ||
    fail "--intern $backend fingerprint $fp != mem $ref_fp"
  [ -z "$(find "$WORK/spill-$backend" -type f 2>/dev/null)" ] ||
    fail "--intern $backend left spill files behind"
done

echo "census-shard: OK (m=$M seed=$SEED, k=2..4 merges + file/shard intern all at $ref_fp)"
