#!/bin/sh
# Query-fuzz gate: run the differential query fuzzer (compiled tape
# plans vs the naive in-memory oracle) at a fixed seed and require
# the campaign summary line - case counts, audit verdicts and the
# FNV-1a fingerprint - to be byte-identical across -j 1/2/4 and
# across the mem / file / shard devices. Then prove the gate has
# teeth: the same campaign with the planted swap-compose planner bug
# (--inject-swap-compose) must exit 4 with a shrunk counterexample
# program in its report.
#
# Usage: query_fuzz.sh STLB_EXE [WORKDIR]
# Iterations come from STLB_FUZZ_ITERS (default 200). Every campaign
# report is left under WORKDIR so CI can upload it as an artifact on
# failure. Exits non-zero on the first divergence.
set -u

STLB=$1
WORK=${2:-query-fuzz-work}
ITERS=${STLB_FUZZ_ITERS:-200}
SEED=2021
rm -rf "$WORK"
mkdir -p "$WORK"
fail() { echo "query-fuzz: FAIL: $1" >&2; exit 1; }

run_clean() { # run_clean NAME JOBS [DEVICE-ARGS...]
  name=$1; jobs=$2; shift 2
  "$STLB" query --fuzz --seed $SEED --iters "$ITERS" -j "$jobs" \
    --report "$WORK/$name.report" "$@" >"$WORK/$name.out" 2>&1 ||
    fail "$name: campaign failed (see $WORK/$name.report)"
  grep '^query-fuzz:' "$WORK/$name.out" >"$WORK/$name.summary" ||
    fail "$name: no campaign summary line in output"
}

run_clean mem-j1 1
run_clean mem-j2 2
run_clean mem-j4 4
run_clean file-j1 1 --device file --spill-dir "$WORK/spill-file"
run_clean shard-j1 1 --device shard --spill-dir "$WORK/spill-shard"

for name in mem-j2 mem-j4 file-j1 shard-j1; do
  diff "$WORK/mem-j1.summary" "$WORK/$name.summary" >/dev/null ||
    fail "campaign summary diverges: mem-j1 vs $name"
done

# Negative control: the planted planner bug (composition operands
# swapped) must be caught within the same budget and shrunk.
"$STLB" query --fuzz --seed $SEED --iters "$ITERS" --inject-swap-compose \
  --report "$WORK/inject.report" >"$WORK/inject.out" 2>&1
status=$?
[ "$status" -eq 4 ] ||
  fail "planted swap-compose bug: expected exit 4, got $status"
grep -q '^DISCREPANCY' "$WORK/inject.report" ||
  fail "planted swap-compose bug: no shrunk counterexample in report"

echo "query-fuzz: PASS ($ITERS cases x 5 configs, one fingerprint; planted bug caught)"
cat "$WORK/mem-j1.summary"
