#!/usr/bin/env bash
# Bench-regression guard: compare a fresh bench trajectory against the
# committed baseline and WARN (never fail) on large micro-benchmark
# regressions.
#
#   tools/bench_guard.sh FRESH.json [BASELINE.json] [THRESHOLD_PCT]
#
# Both files are stlb-bench-trajectory/1 JSON as written by
# `bench/main.exe micro --json PATH`. A micro bench whose fresh
# ns/run exceeds the baseline by more than THRESHOLD_PCT (default 25)
# is reported, and likewise an experiment table whose wall-clock
# seconds (the "tables" section, present on full non-quick runs)
# exceeds its baseline by the same margin, and a serve scenario whose
# p99 latency (the "serve" section) does. The script exits 0
# regardless: CI runners are noisy shared machines, quick-quota
# estimates doubly so, so the guard is a review signal, not a gate.
# Missing-in-baseline benches/tables (new in this PR) are listed
# informationally.
set -euo pipefail

fresh=${1:?usage: bench_guard.sh FRESH.json [BASELINE.json] [THRESHOLD_PCT]}
baseline=${2:-BENCH_micro.json}
threshold=${3:-25}

if ! command -v jq >/dev/null 2>&1; then
  echo "bench-guard: jq not available; skipping" >&2
  exit 0
fi
for f in "$fresh" "$baseline"; do
  if [ ! -f "$f" ]; then
    echo "bench-guard: $f not found; skipping" >&2
    exit 0
  fi
done

echo "bench-guard: $fresh vs $baseline (warn > ${threshold}% ns/run)"

# name<TAB>ns pairs, nulls dropped
pairs() {
  jq -r '.micro[] | select(.ns_per_run != null)
         | "\(.name)\t\(.ns_per_run)"' "$1"
}

regressions=0
while IFS=$'\t' read -r name fresh_ns; do
  base_ns=$(pairs "$baseline" | awk -F'\t' -v n="$name" '$1 == n { print $2 }')
  if [ -z "$base_ns" ]; then
    printf '  NEW      %-34s %14.1f ns/run (no baseline)\n' "$name" "$fresh_ns"
    continue
  fi
  pct=$(awk -v f="$fresh_ns" -v b="$base_ns" \
    'BEGIN { printf "%.1f", (f - b) / b * 100 }')
  if awk -v p="$pct" -v t="$threshold" 'BEGIN { exit !(p > t) }'; then
    printf '  WARN     %-34s %14.1f -> %14.1f ns/run (+%s%%)\n' \
      "$name" "$base_ns" "$fresh_ns" "$pct"
    regressions=$((regressions + 1))
  else
    printf '  ok       %-34s %14.1f -> %14.1f ns/run (%+s%%)\n' \
      "$name" "$base_ns" "$fresh_ns" "$pct"
  fi
done < <(pairs "$fresh")

# name<TAB>wall_s pairs from the experiment-table sweep (empty on
# --quick trajectories, which skip the sweep)
table_pairs() {
  jq -r '(.tables // [])[] | select(.wall_s != null)
         | "\(.name)\t\(.wall_s)"' "$1"
}

table_regressions=0
while IFS=$'\t' read -r name fresh_s; do
  [ -z "$name" ] && continue
  base_s=$(table_pairs "$baseline" | awk -F'\t' -v n="$name" '$1 == n { print $2 }')
  if [ -z "$base_s" ]; then
    printf '  NEW      %-34s %10.3f s (no baseline)\n' "$name" "$fresh_s"
    continue
  fi
  pct=$(awk -v f="$fresh_s" -v b="$base_s" \
    'BEGIN { printf "%.1f", (f - b) / b * 100 }')
  if awk -v p="$pct" -v t="$threshold" 'BEGIN { exit !(p > t) }'; then
    printf '  WARN     %-34s %10.3f -> %10.3f s (+%s%%)\n' \
      "$name" "$base_s" "$fresh_s" "$pct"
    table_regressions=$((table_regressions + 1))
  else
    printf '  ok       %-34s %10.3f -> %10.3f s (%+s%%)\n' \
      "$name" "$base_s" "$fresh_s" "$pct"
  fi
done < <(table_pairs "$fresh")

# name<TAB>p99_us pairs from the serve scenarios (absent on
# trajectories predating the serve section). p99 is the guarded
# number: throughput wobbles with runner load, but a tail-latency jump
# usually means a real queueing or decide-path regression.
serve_pairs() {
  jq -r '(.serve // [])[] | select(.p99_us != null)
         | "\(.name)\t\(.p99_us)"' "$1"
}

serve_regressions=0
while IFS=$'\t' read -r name fresh_us; do
  [ -z "$name" ] && continue
  base_us=$(serve_pairs "$baseline" | awk -F'\t' -v n="$name" '$1 == n { print $2 }')
  if [ -z "$base_us" ]; then
    printf '  NEW      %-34s %12.1f us p99 (no baseline)\n' "$name" "$fresh_us"
    continue
  fi
  pct=$(awk -v f="$fresh_us" -v b="$base_us" \
    'BEGIN { printf "%.1f", (f - b) / b * 100 }')
  if awk -v p="$pct" -v t="$threshold" 'BEGIN { exit !(p > t) }'; then
    printf '  WARN     %-34s %12.1f -> %12.1f us p99 (+%s%%)\n' \
      "$name" "$base_us" "$fresh_us" "$pct"
    serve_regressions=$((serve_regressions + 1))
  else
    printf '  ok       %-34s %12.1f -> %12.1f us p99 (%+s%%)\n' \
      "$name" "$base_us" "$fresh_us" "$pct"
  fi
done < <(serve_pairs "$fresh")

total=$((regressions + table_regressions + serve_regressions))
if [ "$total" -gt 0 ]; then
  echo "bench-guard: $regressions bench(es), $table_regressions table(s) and $serve_regressions serve scenario(s) regressed beyond ${threshold}% - non-blocking, but worth a look"
else
  echo "bench-guard: no regressions beyond ${threshold}%"
fi
exit 0
