(* stlb - command-line driver for the randomized-external-memory
   lower-bound reproduction.

   Subcommands:
     gen         generate problem instances
     decide      run a decider (reference / sort / fingerprint / nst)
     adversary   run the Lemma 21 attack on a staircase list machine
     experiment  run one (or all) of the E1..E22 experiment tables,
                 optionally journaling/resuming via --checkpoint and
                 emitting a JSONL event trace via --trace
     serve       expose the deciders over a Unix-domain socket (stlb/1,
                 PROTOCOL.md); per-request verdicts depend only on
                 (--seed, request id) - replayable across restarts
     loadgen     drive a deterministic mixed workload against serve and
                 report throughput + latency percentiles
     classes     print the paper's classification table
     sortedness  sortedness of the reverse-binary permutation

   A run that trips an enforced resource budget (Tape.Budget_exceeded,
   e.g. decide --max-scans) exits with status 10 and a one-line
   diagnostic instead of an uncaught backtrace. *)

open Cmdliner

module D = Problems.Decide
module G = Problems.Generators
module I = Problems.Instance

let seed_arg =
  let doc = "Random seed." in
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc)

let jobs_arg =
  let doc =
    "Worker domains for Monte Carlo trial fan-out (default: the \
     $(b,STLB_DOMAINS) environment variable, else the hardware). Results \
     are bit-identical for every worker count; $(b,-j 1) forces the \
     sequential path."
  in
  Arg.(value & opt (some int) None & info [ "j"; "jobs" ] ~docv:"N" ~doc)

let apply_jobs = function
  | Some d when d >= 1 -> Parallel.Pool.set_default_domains d
  | Some _ | None -> ()

let m_arg default =
  let doc = "Number of strings per half (m)." in
  Arg.(value & opt int default & info [ "m" ] ~docv:"M" ~doc)

let n_arg default =
  let doc = "Length of each string (n)." in
  Arg.(value & opt int default & info [ "n" ] ~docv:"N" ~doc)

let problem_arg =
  let conv_problem =
    Arg.enum
      [
        ("set-eq", D.Set_equality);
        ("multiset-eq", D.Multiset_equality);
        ("check-sort", D.Check_sort);
      ]
  in
  let doc = "Problem: set-eq, multiset-eq or check-sort." in
  Arg.(
    value & opt conv_problem D.Multiset_equality & info [ "problem"; "p" ] ~docv:"PROBLEM" ~doc)

let state_of seed = Random.State.make [| seed |]

let trace_arg =
  let doc =
    "Append-free JSONL event trace: (re)create $(docv) and write one JSON \
     object per line - $(b,table) events (status start/done/replayed), \
     $(b,ledger) events (measured per-run cost: scans, reversals, internal \
     peak, per-tape head movements) and $(b,audit) events \
     (measured-vs-theorem budget checks). Events carry no timestamps and \
     no worker-count-dependent fields, so traces are bit-identical for \
     $(b,-j) 1/2/4."
  in
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)

let with_trace path f =
  match path with
  | None -> f ()
  | Some p -> Obs.Trace.with_sink (Obs.Trace.open_file p) f

let budget_exit =
  Cmd.Exit.info 10
    ~doc:
      "an enforced resource limit ended the run: a tripped budget (e.g. \
       $(b,decide --max-scans)), a full or read-only disk (ENOSPC/EROFS) \
       or retries exhausted on persistent corruption; the diagnostic is \
       printed on stderr."

let scrub_exit =
  Cmd.Exit.info 12
    ~doc:"$(b,scrub) found corruption, torn frames or orphan files."

let crash_exit =
  Cmd.Exit.info 70
    ~doc:"$(b,decide --crash-at) fired: the process _exited abruptly."

let exits = budget_exit :: scrub_exit :: crash_exit :: Cmd.Exit.defaults

(* ------------------------------------------------------------------ *)

let gen_cmd =
  let run seed problem m n label =
    let st = state_of seed in
    let inst =
      match label with
      | `Yes -> G.yes_instance st problem ~m ~n
      | `No -> G.no_instance st problem ~m ~n
    in
    print_endline (I.encode inst)
  in
  let label_arg =
    let doc = "Generate a yes- or no-instance." in
    Arg.(value & opt (Arg.enum [ ("yes", `Yes); ("no", `No) ]) `Yes
         & info [ "label" ] ~docv:"LABEL" ~doc)
  in
  let doc = "Generate a problem instance (the {0,1,#} encoding, on stdout)." in
  Cmd.v (Cmd.info "gen" ~doc)
    Term.(const run $ seed_arg $ problem_arg $ m_arg 8 $ n_arg 12 $ label_arg)

let read_instance = function
  | Some path ->
      let ic = open_in path in
      let line = try input_line ic with End_of_file -> "" in
      close_in ic;
      I.decode (String.trim line)
  | None -> I.decode (String.trim (input_line stdin))

let decide_cmd =
  let run seed problem algorithm file max_scans trace dev block_size spill_dir
      storage_seed bit_rot storage_eio enospc_at crash_at checkpoint =
    with_trace trace @@ fun () ->
    let st = state_of seed in
    let inst = read_instance file in
    (* Storage-fault flags build a seeded below-seam plan injected at
       the Device.Raw syscall layer of the file/shard backends. The
       crash hook is an abrupt _exit(70): no cleanup runs, leaving the
       torn spill the crash-matrix test recovers from with scrub. *)
    let storage_plan =
      if
        bit_rot > 0.0 || storage_eio > 0.0 || enospc_at <> None
        || crash_at <> None
      then
        Some
          (Faults.Storage.Plan.create ?enospc_after:enospc_at
             ?crash_at
             ~crash:(fun _op -> Unix._exit 70)
             ~seed:storage_seed
             ~rates:
               {
                 Faults.Storage.zero with
                 Faults.Storage.bit_rot;
                 io_error = storage_eio;
               }
             ())
      else None
    in
    let raw = Option.map Faults.Storage.raw_for storage_plan in
    let retry =
      match storage_plan with
      | None -> None
      | Some _ ->
          Some { Faults.Retry.default with Faults.Retry.attempts = 8 }
    in
    (* --device picks the tape backend for the sort and fingerprint
       deciders (reference and nst are in-memory by construction).
       Spill files are scratch: the deciders delete them on the way out,
       so the directory is left holding at most the empty dir itself. *)
    let spill () =
      match spill_dir with
      | Some d -> d
      | None ->
          Filename.concat
            (Filename.get_temp_dir_name ())
            (Printf.sprintf "stlb-spill-%d" (Unix.getpid ()))
    in
    let device =
      match dev with
      | `Mem -> None
      | `File ->
          Some
            (Tape.Device.file_spec ~block_bytes:block_size ~cache_blocks:16
               ?raw (spill ()))
      | `Shard ->
          Some
            (Tape.Device.shard_spec ~shard_bytes:(16 * block_size)
               ~cache_shards:2 ?raw (spill ()))
    in
    let budget =
      Option.map
        (fun s -> { Tape.Group.max_scans = Some s; max_internal = None })
        max_scans
    in
    (* With --trace, a ledger recorder observes the decider's tapes and
       the run's measured ledger plus its theorem-budget audit land in
       the trace; without it no observer is installed. *)
    let recorder label =
      match trace with
      | None -> None
      | Some _ -> Some (Obs.Ledger.Recorder.create ~label ())
    in
    let emit obs spec =
      match obs with
      | None -> ()
      | Some r ->
          let l = Obs.Ledger.Recorder.ledger ~n:(I.size inst) r in
          Obs.Trace.ledger_current l;
          Obs.Trace.audit_current (Obs.Audit.check spec l)
    in
    let decide_once () =
      let verdict, resources =
        match algorithm with
        | `Reference -> (D.decide problem inst, "(in-memory reference)")
        | `Sort ->
            let obs = recorder "sort" in
            let v, rep =
              Extsort.decide ?budget ?retry ?obs ?device problem inst
            in
            emit obs Obs.Audit.mergesort_spec;
            ( v,
              Printf.sprintf "scans=%d registers=%d tapes=%d" rep.Extsort.scans
                rep.Extsort.register_peak rep.Extsort.tapes )
        | `Fingerprint ->
            if problem <> D.Multiset_equality then
              failwith "fingerprint solves multiset-eq only";
            let obs = recorder "fingerprint" in
            let v, rep, _ = Fingerprint.run ?retry ?obs ?device st inst in
            emit obs Obs.Audit.fingerprint_spec;
            ( v,
              Printf.sprintf "scans=%d internal-bits=%d tapes=%d" rep.Fingerprint.scans
                rep.Fingerprint.internal_bits rep.Fingerprint.tapes )
        | `Nst -> (
            let obs = recorder "nst" in
            let v, rep = Nst.decide_with_prover ?obs problem inst in
            emit obs Obs.Audit.nst_spec;
            match rep with
            | Some r ->
                ( v,
                  Printf.sprintf "scans=%d registers=%d tapes=%d" r.Nst.scans
                    r.Nst.internal_registers r.Nst.tapes )
            | None -> (v, "(no witness: every branch rejects)"))
      in
      Printf.printf "%s: %s  %s\n" (D.problem_name problem)
        (if verdict then "YES" else "NO")
        resources
    in
    (* --checkpoint journals the decide's entire stdout keyed by the
       run parameters: a run killed by --crash-at recomputes on the
       next invocation, while a completed run replays byte-identically
       without touching the tapes at all. *)
    match checkpoint with
    | None -> decide_once ()
    | Some dir ->
        let name =
          Printf.sprintf "decide-%s-%s-seed%d" (D.problem_name problem)
            (match algorithm with
            | `Reference -> "reference"
            | `Sort -> "sort"
            | `Fingerprint -> "fingerprint"
            | `Nst -> "nst")
            seed
        in
        Harness.Checkpoint.run
          (Some (Harness.Checkpoint.open_dir dir))
          ~name decide_once
  in
  let algorithm_arg =
    let doc = "Algorithm: reference, sort (Cor 7), fingerprint (Thm 8a), nst (Thm 8b)." in
    Arg.(
      value
      & opt
          (Arg.enum
             [
               ("reference", `Reference);
               ("sort", `Sort);
               ("fingerprint", `Fingerprint);
               ("nst", `Nst);
             ])
          `Sort
      & info [ "algorithm"; "a" ] ~docv:"ALGO" ~doc)
  in
  let file_arg =
    let doc = "Instance file (first line, {0,1,#} encoding); stdin if omitted." in
    Arg.(value & opt (some string) None & info [ "file"; "f" ] ~docv:"FILE" ~doc)
  in
  let max_scans_arg =
    let doc =
      "Enforce a scan budget on the sort decider: exceeding $(docv) scans \
       aborts with exit status 10 (the O(log N) bound, made falsifiable). \
       Pick $(docv) at least $(b,24*ceil(log2 N\\) + 48) (the Corollary 7 \
       audit allowance) for a run that should succeed."
    in
    Arg.(value & opt (some int) None & info [ "max-scans" ] ~docv:"R" ~doc)
  in
  let device_arg =
    let doc =
      "Tape cell storage for the sort and fingerprint deciders: $(b,mem) \
       (in-RAM, the default), $(b,file) (block-cached flat files) or \
       $(b,shard) (a sharded run directory). The measured scans, internal \
       peak and audit verdict are backend-independent; only the I/O \
       traffic differs. $(b,reference) and $(b,nst) ignore this."
    in
    Arg.(
      value
      & opt (Arg.enum [ ("mem", `Mem); ("file", `File); ("shard", `Shard) ]) `Mem
      & info [ "device" ] ~docv:"DEV" ~doc)
  in
  let block_size_arg =
    let doc =
      "Cache block size in bytes for $(b,--device file) (a shard is 16 \
       blocks). Each tape caches 16 blocks."
    in
    Arg.(value & opt int 65536 & info [ "block-size" ] ~docv:"BYTES" ~doc)
  in
  let spill_dir_arg =
    let doc =
      "Directory for device backing files (default: a per-process \
       directory under the system temp dir). Files are deleted when the \
       decider's tapes close."
    in
    Arg.(value & opt (some string) None & info [ "spill-dir" ] ~docv:"DIR" ~doc)
  in
  let storage_seed_arg =
    let doc = "Seed for the below-seam storage fault plan." in
    Arg.(value & opt int 0 & info [ "storage-seed" ] ~docv:"SEED" ~doc)
  in
  let bit_rot_arg =
    let doc =
      "Per-pread probability of flipping one random bit of the bytes read \
       back from a $(b,file)/$(b,shard) device. The CRC framing detects \
       every flip; the decider quarantines, re-reads and re-scans (paying \
       honest reversals) or gives up loudly - it never mis-decides."
    in
    Arg.(value & opt float 0.0 & info [ "bit-rot" ] ~docv:"RATE" ~doc)
  in
  let storage_eio_arg =
    let doc = "Per-syscall probability of EIO from the raw pread/pwrite." in
    Arg.(value & opt float 0.0 & info [ "storage-eio" ] ~docv:"RATE" ~doc)
  in
  let enospc_at_arg =
    let doc =
      "Make the $(docv)-th and every later raw write fail with ENOSPC (a \
       full disk stays full). Fatal by classification: the run aborts with \
       exit status 10 and leaves no orphan spill files."
    in
    Arg.(value & opt (some int) None & info [ "enospc-at" ] ~docv:"K" ~doc)
  in
  let crash_at_arg =
    let doc =
      "Abruptly _exit(70) at the $(docv)-th raw device syscall - no \
       cleanup, no atexit - simulating a crash mid-run. Recover with \
       $(b,stlb scrub --fix) on the spill directory, then re-run."
    in
    Arg.(value & opt (some int) None & info [ "crash-at" ] ~docv:"K" ~doc)
  in
  let checkpoint_arg =
    let doc =
      "Journal the decide's output under $(docv) (created if missing) and \
       replay it verbatim if already journaled - the crash-matrix resume \
       protocol."
    in
    Arg.(value & opt (some string) None & info [ "checkpoint" ] ~docv:"DIR" ~doc)
  in
  let doc = "Decide an instance and report the measured resources." in
  Cmd.v (Cmd.info "decide" ~doc ~exits)
    Term.(
      const run $ seed_arg $ problem_arg $ algorithm_arg $ file_arg
      $ max_scans_arg $ trace_arg $ device_arg $ block_size_arg
      $ spill_dir_arg $ storage_seed_arg $ bit_rot_arg $ storage_eio_arg
      $ enospc_at_arg $ crash_at_arg $ checkpoint_arg)

(* ------------------------------------------------------------------ *)

let socket_arg =
  let doc = "Unix-domain socket path the server listens on." in
  Arg.(
    required
    & opt (some string) None
    & info [ "socket"; "s" ] ~docv:"PATH" ~doc)

let serve_cmd =
  let run socket seed jobs dev block_size spill_dir max_scans max_frame
      max_batch queue_bound max_requests trace =
    with_trace trace @@ fun () ->
    let spill () =
      match spill_dir with
      | Some d -> d
      | None ->
          Filename.concat
            (Filename.get_temp_dir_name ())
            (Printf.sprintf "stlb-serve-spill-%d" (Unix.getpid ()))
    in
    let device =
      match dev with
      | `Mem -> None
      | `File ->
          Some
            (Tape.Device.file_spec ~block_bytes:block_size ~cache_blocks:16
               (spill ()))
      | `Shard ->
          Some
            (Tape.Device.shard_spec ~shard_bytes:(16 * block_size)
               ~cache_shards:2 (spill ()))
    in
    let domains = match jobs with Some d when d >= 1 -> d | _ -> 1 in
    let cfg =
      {
        (Serve.Server.default ~socket) with
        Serve.Server.seed;
        domains;
        device;
        max_scans;
        max_frame;
        max_batch;
        queue_bound;
        max_requests;
      }
    in
    Printf.printf
      "stlb serve: listening on %s (seed %d, %d domain(s), device %s)\n%!"
      socket seed domains
      (match dev with `Mem -> "mem" | `File -> "file" | `Shard -> "shard");
    Serve.Server.run cfg;
    Printf.printf "stlb serve: shut down cleanly\n%!"
  in
  let max_frame_arg =
    let doc = "Largest accepted frame payload in bytes (bigger frames are \
               answered with a TOO_LARGE error)." in
    Arg.(value & opt int (1 lsl 20) & info [ "max-frame" ] ~docv:"BYTES" ~doc)
  in
  let max_batch_arg =
    let doc = "Decide items accepted per BATCH frame (bigger batches are \
               shed with an OVERLOADED error)." in
    Arg.(value & opt int 64 & info [ "max-batch" ] ~docv:"K" ~doc)
  in
  let queue_bound_arg =
    let doc =
      "Pending-request bound: frames arriving while $(docv) requests are \
       already queued are shed with an OVERLOADED error instead of \
       stalling the read loop."
    in
    Arg.(value & opt int 128 & info [ "queue-bound" ] ~docv:"K" ~doc)
  in
  let max_requests_arg =
    let doc =
      "Stop serving after $(docv) frames (the smoke-test safety net); \
       default: run until a SHUTDOWN frame."
    in
    Arg.(value & opt (some int) None & info [ "max-requests" ] ~docv:"K" ~doc)
  in
  let max_scans_arg =
    let doc =
      "Enforce a scan budget on sort-decider requests: exceeding $(docv) \
       scans reports a BUDGET error for that request (the server keeps \
       running)."
    in
    Arg.(value & opt (some int) None & info [ "max-scans" ] ~docv:"R" ~doc)
  in
  let device_arg =
    let doc =
      "Tape cell storage for sort and fingerprint requests: $(b,mem), \
       $(b,file) or $(b,shard). Verdicts are backend-independent."
    in
    Arg.(
      value
      & opt (Arg.enum [ ("mem", `Mem); ("file", `File); ("shard", `Shard) ]) `Mem
      & info [ "device" ] ~docv:"DEV" ~doc)
  in
  let block_size_arg =
    let doc = "Cache block size in bytes for $(b,--device file)." in
    Arg.(value & opt int 65536 & info [ "block-size" ] ~docv:"BYTES" ~doc)
  in
  let spill_dir_arg =
    let doc = "Directory for device backing files." in
    Arg.(value & opt (some string) None & info [ "spill-dir" ] ~docv:"DIR" ~doc)
  in
  let doc =
    "Serve the deciders over a Unix-domain socket (the stlb/1 protocol, \
     PROTOCOL.md). Every verdict is a function of ($(b,--seed), request \
     id) only - identical across worker counts, batching, devices and \
     restarts."
  in
  Cmd.v (Cmd.info "serve" ~doc ~exits)
    Term.(
      const run $ socket_arg $ seed_arg $ jobs_arg $ device_arg
      $ block_size_arg $ spill_dir_arg $ max_scans_arg $ max_frame_arg
      $ max_batch_arg $ queue_bound_arg $ max_requests_arg $ trace_arg)

let loadgen_cmd =
  let run socket seed requests batch first_id m n shutdown =
    (* --requests 0 --shutdown is the documented pure-stop command *)
    if requests > 0 then begin
      let s =
        Serve.Loadgen.run ~socket ~requests ~batch ~first_id ~m ~n ~seed ()
      in
      Serve.Loadgen.print_summary s
    end;
    if shutdown then begin
      let c = Serve.Client.connect socket in
      Serve.Client.shutdown c ~id:(first_id + requests);
      Serve.Client.close c
    end
  in
  let requests_arg =
    let doc =
      "Decide requests to send (ids first-id .. first-id+$(docv)-1); 0 \
       skips the load phase (useful with $(b,--shutdown))."
    in
    Arg.(value & opt int 100 & info [ "requests" ] ~docv:"K" ~doc)
  in
  let batch_arg =
    let doc = "Group requests into BATCH frames of $(docv) (1 = singleton \
               DECIDE frames)." in
    Arg.(value & opt int 1 & info [ "batch" ] ~docv:"K" ~doc)
  in
  let first_id_arg =
    let doc = "First request id." in
    Arg.(value & opt int 0 & info [ "first-id" ] ~docv:"ID" ~doc)
  in
  let shutdown_arg =
    let doc = "Send a SHUTDOWN frame after the run (stops the server)." in
    Arg.(value & flag & info [ "shutdown" ] ~doc)
  in
  let doc =
    "Drive a deterministic mixed decider workload (fingerprint, sort, nst \
     across all three problems) against a running $(b,stlb serve) and \
     report requests/s with p50/p99 latency. Same ($(b,--seed), \
     $(b,--first-id), $(b,--requests)) + same server seed = the same \
     workload fingerprint, bit for bit."
  in
  Cmd.v (Cmd.info "loadgen" ~doc ~exits)
    Term.(
      const run $ socket_arg $ seed_arg $ requests_arg $ batch_arg
      $ first_id_arg $ m_arg 6 $ n_arg 8 $ shutdown_arg)

(* ------------------------------------------------------------------ *)

let scrub_cmd =
  let run fix dir =
    let rep = Tape.Device.Scrub.dir ~fix dir in
    let count what =
      List.length
        (List.filter
           (fun (f : Tape.Device.Scrub.finding) -> f.Tape.Device.Scrub.what = what)
           rep.Tape.Device.Scrub.findings)
    in
    Printf.printf
      "scrub %s: %d file(s), %d block(s) checked\n\
      \  crc-mismatch %d   torn %d   orphan %d   missing %d   bad-header %d\n"
      dir rep.Tape.Device.Scrub.files_checked rep.Tape.Device.Scrub.blocks_checked
      (count "crc-mismatch") (count "torn") (count "orphan") (count "missing")
      (count "bad-header");
    List.iter
      (fun (f : Tape.Device.Scrub.finding) ->
        Printf.printf "  %-12s %s%s\n" f.Tape.Device.Scrub.what
          f.Tape.Device.Scrub.path
          (if f.Tape.Device.Scrub.offset >= 0 then
             Printf.sprintf " @%d" f.Tape.Device.Scrub.offset
           else ""))
      rep.Tape.Device.Scrub.findings;
    if fix then Printf.printf "  removed %d file(s)\n" rep.Tape.Device.Scrub.removed;
    if rep.Tape.Device.Scrub.findings <> [] then exit 12
  in
  let fix_arg =
    let doc = "Remove every flagged file and prune emptied shard dirs." in
    Arg.(value & flag & info [ "fix" ] ~doc)
  in
  let dir_arg =
    let doc = "Spill directory to verify (as passed to --spill-dir)." in
    Arg.(required & pos 0 (some string) None & info [] ~docv:"DIR" ~doc)
  in
  let doc =
    "Verify the CRC of every tape block and shard in a spill directory \
     (exit 12 if corruption, torn frames or orphans were found; with \
     $(b,--fix), also remove them so a crashed run's survivors reopen \
     cleanly)."
  in
  Cmd.v (Cmd.info "scrub" ~doc ~exits) Term.(const run $ fix_arg $ dir_arg)

let adversary_cmd =
  let print_outcome ~space ~machine outcome =
    match outcome with
    | Stcore.Adversary.Fooled { input; i0; skeleton_classes; yes_acceptance; _ } as o ->
        Printf.printf
          "FOOLED: the machine accepts the following CHECK-phi NO-instance\n\
           (uncompared index i0=%d, %d skeleton class(es), yes-acceptance %.2f):\n%s\n\
           independent re-validation: %b\n"
          i0 skeleton_classes yes_acceptance (I.encode input)
          (Stcore.Adversary.verify_fooled ~space ~machine o)
    | Stcore.Adversary.Not_fooled { reason; yes_acceptance; _ } ->
        Printf.printf "not fooled: %s (yes-acceptance %.2f)\n" reason yes_acceptance
    | Stcore.Adversary.Contract_violated { yes_acceptance } ->
        Printf.printf
          "contract violated: the machine accepts only %.2f of yes-instances\n\
           (a (1/2,0)-solver must accept at least half)\n"
          yes_acceptance
  in
  let print_census ~space ~machine (c : Stcore.Adversary.census) =
    print_outcome ~space ~machine c.Stcore.Adversary.outcome;
    Printf.printf "census fingerprint: 0x%016Lx (seed=%d hits=%d/%d classes=%d)\n"
      c.Stcore.Adversary.fingerprint c.Stcore.Adversary.chosen_seed
      c.Stcore.Adversary.hits c.Stcore.Adversary.samples
      c.Stcore.Adversary.classes;
    Printf.printf "census work: machine-runs=%d canonical-hits=%d shards-merged=%d\n"
      c.Stcore.Adversary.machine_runs c.Stcore.Adversary.canonical_hits
      c.Stcore.Adversary.shards_merged;
    Obs.Trace.emit_current ~event:"census"
      [
        ("fingerprint", Obs.Trace.String (Printf.sprintf "0x%016Lx" c.Stcore.Adversary.fingerprint));
        ("seed", Obs.Trace.Int c.Stcore.Adversary.chosen_seed);
        ("hits", Obs.Trace.Int c.Stcore.Adversary.hits);
        ("samples", Obs.Trace.Int c.Stcore.Adversary.samples);
        ("classes", Obs.Trace.Int c.Stcore.Adversary.classes);
        ("shards_merged", Obs.Trace.Int c.Stcore.Adversary.shards_merged);
      ]
  in
  let backend_of intern spill_dir =
    match intern with
    | `Mem -> Listmachine.Skeleton.Intern.Ram
    | (`File | `Shard) as kind ->
        let dir =
          match spill_dir with
          | Some d -> d
          | None ->
              Filename.concat
                (Filename.get_temp_dir_name ())
                (Printf.sprintf "stlb-census-%d" (Unix.getpid ()))
        in
        (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
        let spec =
          match kind with
          | `File -> Tape.Device.file_spec dir
          | `Shard -> Tape.Device.shard_spec dir
        in
        Listmachine.Skeleton.Intern.Spill { spec; recent = 64 }
  in
  let run seed jobs m chains optimistic canon intern spill_dir shard out merges
      trace =
    apply_jobs jobs;
    with_trace trace @@ fun () ->
    let st = state_of seed in
    let space = G.Checkphi.default_space ~m ~n:(2 * m) in
    let needed = Listmachine.Machines.chains_needed ~space in
    let chains = match chains with Some c -> c | None -> needed - 1 in
    let machine =
      Listmachine.Machines.staircase_checkphi ~space ~chains ~optimistic
    in
    let backend = backend_of intern spill_dir in
    match merges with
    | _ :: _ ->
        (* fold shard evidence files into the single-process verdict *)
        let read_evidence path =
          let ic = open_in_bin path in
          let len = in_channel_length ic in
          let s = really_input_string ic len in
          close_in ic;
          Stcore.Adversary.Shard.of_string s
        in
        Printf.printf "machine: %s (complete coverage needs %d chains)\n"
          machine.Listmachine.Nlm.name needed;
        print_census ~space ~machine
          (Stcore.Adversary.Shard.merge ~space ~machine
             (List.map read_evidence merges))
    | [] -> (
        let i, k = shard in
        if k = 1 && out = None then begin
          (* the direct path: collect 1/1 + merge, one process *)
          Printf.printf "machine: %s (complete coverage needs %d chains)\n"
            machine.Listmachine.Nlm.name needed;
          print_census ~space ~machine
            (Stcore.Adversary.attack_census ~canon ~intern:backend st ~space
               ~machine ())
        end
        else begin
          (* collect one shard's evidence; merge happens in --merge mode *)
          let root = Parallel.Rng.seed_of_state st in
          let ev =
            Stcore.Adversary.Shard.collect ~canon ~intern:backend ~root ~space
              ~machine ~shard:i ~of_:k ()
          in
          let s = Stcore.Adversary.Shard.to_string ev in
          match out with
          | None -> print_string s
          | Some path ->
              let oc = open_out_bin path in
              output_string oc s;
              close_out oc;
              Printf.printf
                "shard %d/%d: accepted-records=%d classes=%d machine-runs=%d \
                 canonical-hits=%d fingerprint=0x%016Lx -> %s\n"
                i k
                (Array.fold_left
                   (fun a t -> a + Array.length t)
                   0 ev.Stcore.Adversary.Shard.accepted)
                (Array.length ev.Stcore.Adversary.Shard.classes)
                ev.Stcore.Adversary.Shard.machine_runs
                ev.Stcore.Adversary.Shard.canonical_hits
                (Stcore.Adversary.Shard.fingerprint ev)
                path
        end)
  in
  let chains_arg =
    let doc = "Verified chains (default: one fewer than needed for completeness)." in
    Arg.(value & opt (some int) None & info [ "chains" ] ~docv:"K" ~doc)
  in
  let optimistic_arg =
    let doc = "Accept unverified pairs (default true; the honest-but-wrong mode)." in
    Arg.(value & opt bool true & info [ "optimistic" ] ~doc)
  in
  let canon_arg =
    let doc =
      "Memoize machine runs modulo value renaming (default true; sound for \
       machines that only compare values for equality - all machines here). \
       Never changes the verdict, only the number of machine runs."
    in
    Arg.(value & opt bool true & info [ "canon" ] ~doc)
  in
  let intern_arg =
    let doc =
      "Census intern table backend: $(b,mem) (RAM-resident), $(b,file) or \
       $(b,shard) (two-tier, spilled to a Tape.Device under --spill-dir). \
       The verdict and fingerprint are identical for all three."
    in
    Arg.(
      value
      & opt (Arg.enum [ ("mem", `Mem); ("file", `File); ("shard", `Shard) ]) `Mem
      & info [ "intern" ] ~docv:"BACKEND" ~doc)
  in
  let spill_dir_arg =
    let doc =
      "Directory for the spilled census table (created if missing; default: a \
       per-process directory under the system temp dir)."
    in
    Arg.(value & opt (some string) None & info [ "spill-dir" ] ~docv:"DIR" ~doc)
  in
  let shard_arg =
    let parse s =
      match String.split_on_char '/' s with
      | [ i; k ] -> (
          match (int_of_string_opt i, int_of_string_opt k) with
          | Some i, Some k when 1 <= i && i <= k -> Ok (i, k)
          | _ -> Error (`Msg "expected I/K with 1 <= I <= K"))
      | _ -> Error (`Msg "expected I/K, e.g. 2/4")
    in
    let print ppf (i, k) = Format.fprintf ppf "%d/%d" i k in
    let doc =
      "Census only the sample indices owned by shard $(b,I) of $(b,K) \
       (1-based; ownership is index mod K) and emit mergeable evidence \
       instead of a verdict - to stdout, or to --out. Fold a complete set \
       back with --merge."
    in
    Arg.(
      value
      & opt (Arg.conv (parse, print)) (1, 1)
      & info [ "shard" ] ~docv:"I/K" ~doc)
  in
  let out_arg =
    let doc = "Write this shard's evidence to $(docv) (with a summary line on stdout)." in
    Arg.(value & opt (some string) None & info [ "out" ] ~docv:"FILE" ~doc)
  in
  let merge_arg =
    let doc =
      "Merge shard evidence files (repeatable; pass one per shard) into the \
       exact single-process verdict and fingerprint."
    in
    Arg.(value & opt_all string [] & info [ "merge" ] ~docv:"FILE" ~doc)
  in
  let doc = "Run the Lemma 21 adversary against a staircase CHECK-phi machine." in
  Cmd.v (Cmd.info "adversary" ~doc)
    Term.(
      const run $ seed_arg $ jobs_arg $ m_arg 8 $ chains_arg $ optimistic_arg
      $ canon_arg $ intern_arg $ spill_dir_arg $ shard_arg $ out_arg $ merge_arg
      $ trace_arg)

let experiment_cmd =
  let run jobs checkpoint trace name =
    apply_jobs jobs;
    with_trace trace @@ fun () ->
    let checkpoint = Option.map Harness.Checkpoint.open_dir checkpoint in
    match name with
    | "all" -> Harness.Experiments.run_all ?checkpoint ()
    | name -> (
        match List.assoc_opt name Harness.Experiments.all with
        | Some f -> Harness.Checkpoint.run checkpoint ~name f
        | None ->
            Printf.eprintf "unknown experiment %S (exp1..exp22 or all)\n" name;
            exit 1)
  in
  let name_arg =
    let doc = "Experiment name: exp1..exp22, or all." in
    Arg.(value & pos 0 string "all" & info [] ~docv:"NAME" ~doc)
  in
  let checkpoint_arg =
    let doc =
      "Journal each completed table under $(docv) (created if missing) and \
       replay journaled tables verbatim on the next run - an interrupted \
       sweep resumes where it was killed with byte-identical output. \
       Corrupt journal entries are detected by checksum, discarded with a \
       warning, and recomputed."
    in
    Arg.(value & opt (some string) None & info [ "checkpoint" ] ~docv:"DIR" ~doc)
  in
  let doc = "Run reproduction experiments (the EXPERIMENTS.md tables)." in
  Cmd.v (Cmd.info "experiment" ~doc ~exits)
    Term.(const run $ jobs_arg $ checkpoint_arg $ trace_arg $ name_arg)

let classes_cmd =
  let run () =
    let t =
      Util.Table.create ~title:"Paper classification results"
        ~columns:[ "problem"; "class"; "member"; "provenance" ]
    in
    List.iter
      (fun m ->
        Util.Table.add_row t
          [
            m.Stcore.Classes.problem;
            m.Stcore.Classes.class_label;
            (if m.Stcore.Classes.member then "yes" else "NO");
            m.Stcore.Classes.provenance;
          ])
      Stcore.Classes.paper_results;
    Util.Table.print t
  in
  let doc = "Print every membership/non-membership the paper proves." in
  Cmd.v (Cmd.info "classes" ~doc) Term.(const run $ const ())

let sortedness_cmd =
  let run m random seed =
    if random then begin
      let st = state_of seed in
      let p = Util.Permutation.random st m in
      Printf.printf "sortedness(random permutation of %d) = %d\n" m
        (Util.Permutation.sortedness p)
    end
    else begin
      let p = Util.Permutation.reverse_binary m in
      Printf.printf "sortedness(phi_%d) = %d   (bound 2*sqrt(m)-1 = %.1f)\n" m
        (Util.Permutation.sortedness p)
        ((2.0 *. sqrt (float_of_int m)) -. 1.0)
    end
  in
  let random_arg =
    let doc = "Use a uniformly random permutation instead of phi_m." in
    Arg.(value & flag & info [ "random" ] ~doc)
  in
  let doc = "Sortedness (Definition 19) of phi_m (Remark 20) or a random permutation." in
  Cmd.v (Cmd.info "sortedness" ~doc) Term.(const run $ m_arg 1024 $ random_arg $ seed_arg)

let trace_cmd =
  let run seed m chains steps =
    let st = state_of seed in
    let space = G.Checkphi.default_space ~m ~n:(2 * m) in
    let machine =
      Listmachine.Machines.staircase_checkphi ~space ~chains ~optimistic:true
    in
    let inst = G.Checkphi.yes st space in
    Printf.printf "instance: %s\n\n" (I.encode inst);
    let values = Array.append (I.xs inst) (I.ys inst) in
    let tr = Listmachine.Nlm.run machine ~values ~choices:(fun _ -> 0) in
    print_string (Listmachine.Render.trace_to_string ~max_steps:steps tr);
    print_newline ();
    print_string
      (Listmachine.Render.skeleton_summary (Listmachine.Skeleton.of_trace tr))
  in
  let chains_arg =
    let doc = "Chains to verify." in
    Arg.(value & opt int 1 & info [ "chains" ] ~docv:"K" ~doc)
  in
  let steps_arg =
    let doc = "Steps to render before eliding." in
    Arg.(value & opt int 8 & info [ "steps" ] ~docv:"S" ~doc)
  in
  let doc = "Render a list machine run (Figure 2 style) and its skeleton." in
  Cmd.v (Cmd.info "trace" ~doc)
    Term.(const run $ seed_arg $ m_arg 4 $ chains_arg $ steps_arg)

let simulate_cmd =
  let run inputs =
    let tm = Turing.Zoo.pair_equality () in
    let inputs =
      match inputs with
      | [] -> [| "0110"; "0110" |]
      | l -> Array.of_list l
    in
    let r = Simulation.simulate tm ~inputs ~choices:(fun _ -> 0) in
    Printf.printf
      "machine: %s on %s\n\
       verdict: %b (TM and LM agree: %b)\n\
       TM reversals: %d   LM reversals: %d   block crossings: %d\n\n"
      tm.Turing.Machine.name
      (String.concat "#" (Array.to_list inputs))
      r.Simulation.lm_trace.Listmachine.Nlm.accepted r.Simulation.agreement
      r.Simulation.tm_ext_reversals r.Simulation.lm_reversals
      r.Simulation.crossings;
    print_string
      (Listmachine.Render.trace_to_string ~max_steps:10 r.Simulation.lm_trace)
  in
  let inputs_arg =
    let doc = "Input segments v1 v2 ... (default: 0110 0110)." in
    Arg.(value & pos_all string [] & info [] ~docv:"SEGMENTS" ~doc)
  in
  let doc = "Run the Lemma 16 TM->list-machine simulation and render the LM run." in
  Cmd.v (Cmd.info "simulate" ~doc) Term.(const run $ inputs_arg)

(* ------------------------------------------------------------------ *)

let query_device_arg =
  let doc =
    "Tape cell storage for compiled query plans: $(b,mem), $(b,file) or \
     $(b,shard). Results, scan counts and audit verdicts are \
     backend-independent."
  in
  Arg.(
    value
    & opt (Arg.enum [ ("mem", `Mem); ("file", `File); ("shard", `Shard) ]) `Mem
    & info [ "device" ] ~docv:"DEV" ~doc)

let query_block_size_arg =
  let doc = "Cache block size in bytes for $(b,--device file)." in
  Arg.(value & opt int 65536 & info [ "block-size" ] ~docv:"BYTES" ~doc)

let query_spill_dir_arg =
  let doc = "Directory for device backing files." in
  Arg.(value & opt (some string) None & info [ "spill-dir" ] ~docv:"DIR" ~doc)

let query_device ~tag dev block_size spill_dir =
  let spill () =
    match spill_dir with
    | Some d -> d
    | None ->
        Filename.concat
          (Filename.get_temp_dir_name ())
          (Printf.sprintf "stlb-%s-spill-%d" tag (Unix.getpid ()))
  in
  match dev with
  | `Mem -> Tape.Device.Mem
  | `File ->
      Tape.Device.file_spec ~block_bytes:block_size ~cache_blocks:16 (spill ())
  | `Shard ->
      Tape.Device.shard_spec ~shard_bytes:(16 * block_size) ~cache_shards:2
        (spill ())

let fuzz_exit =
  Cmd.Exit.info 4
    ~doc:
      "the differential query fuzzer found a discrepancy between a compiled \
       plan and the naive oracle; the shrunk counterexample is in the report."

let query_exits = fuzz_exit :: exits

let query_cmd =
  let run seed jobs program file fuzz iters report_file inject dev block_size
      spill_dir trace no_budget =
    let device = query_device ~tag:"query" dev block_size spill_dir in
    if inject then Query.Compile.swap_compose := true;
    if fuzz then begin
      let pool =
        match jobs with
        | Some d when d > 1 -> Some (Parallel.Pool.create ~domains:d ())
        | _ -> None
      in
      let dev_opt = match device with Tape.Device.Mem -> None | s -> Some s in
      let c = Query.Fuzz.run_campaign ?pool ?device:dev_opt ~seed ~iters () in
      let rep = Query.Fuzz.report c in
      print_string rep;
      (match report_file with
      | None -> ()
      | Some f ->
          Out_channel.with_open_text f (fun oc -> output_string oc rep));
      if c.Query.Fuzz.mismatches > 0 then exit 4
    end
    else begin
      let src =
        match (program, file) with
        | Some p, _ -> p
        | None, Some f -> In_channel.with_open_text f In_channel.input_all
        | None, None -> In_channel.input_all stdin
      in
      let st =
        Query.Repl.create ~device ~out:(Buffer.output_buffer stdout) ()
      in
      (match trace with
      | None -> ()
      | Some p -> st.Query.Repl.trace <- Some (Obs.Trace.open_file p));
      if no_budget then st.Query.Repl.budget <- false;
      Query.Repl.do_program st src;
      Query.Repl.close st;
      if st.Query.Repl.failed then exit 1
    end
  in
  let program_arg =
    let doc =
      "Program text: statements separated by $(b,;) (e.g. \
       'r = [<1,10>, <2,20>]; [ <y> | <x,y> <- r, x == 1 ]'). \
       Read from $(b,--file), else stdin, if omitted."
    in
    Arg.(value & pos 0 (some string) None & info [] ~docv:"PROGRAM" ~doc)
  in
  let file_arg =
    let doc = "Read the program from $(docv)." in
    Arg.(value & opt (some string) None & info [ "file"; "f" ] ~docv:"FILE" ~doc)
  in
  let fuzz_arg =
    let doc =
      "Run the differential fuzzer instead of a program: generate seeded \
       random (environment, query) cases, run each compiled plan on the \
       tape substrate and cross-check the naive in-memory oracle. Any \
       mismatch is shrunk to a minimal self-contained program and the run \
       exits 4. The campaign fingerprint is bit-identical for every \
       $(b,-j) and device."
    in
    Arg.(value & flag & info [ "fuzz" ] ~doc)
  in
  let iters_arg =
    let doc = "Fuzz cases to run." in
    Arg.(value & opt int 200 & info [ "iters" ] ~docv:"N" ~doc)
  in
  let report_arg =
    let doc = "Also write the fuzz campaign report to $(docv)." in
    Arg.(value & opt (some string) None & info [ "report" ] ~docv:"FILE" ~doc)
  in
  let inject_arg =
    let doc =
      "Deliberately miscompile composition (swapped operands) - the \
       negative control proving the fuzzer catches a planted planner bug."
    in
    Arg.(value & flag & info [ "inject-swap-compose" ] ~doc)
  in
  let no_budget_arg =
    let doc =
      "Report per-node audit failures without failing the run (the \
       default treats any node over its Theorem 11-13 scan budget as an \
       error)."
    in
    Arg.(value & flag & info [ "no-budget" ] ~doc)
  in
  let doc =
    "Evaluate a list-relation query program on the tape substrate (every \
     plan node audited against its theorem budget, every result \
     cross-checked against a naive oracle), or fuzz the compiler with \
     $(b,--fuzz)."
  in
  Cmd.v (Cmd.info "query" ~doc ~exits:query_exits)
    Term.(
      const run $ seed_arg $ jobs_arg $ program_arg $ file_arg $ fuzz_arg
      $ iters_arg $ report_arg $ inject_arg $ query_device_arg
      $ query_block_size_arg $ query_spill_dir_arg $ trace_arg $ no_budget_arg)

let repl_cmd =
  let run batch dev block_size spill_dir =
    let device = query_device ~tag:"repl" dev block_size spill_dir in
    let st =
      Query.Repl.create ~device ~out:(Buffer.output_buffer stdout) ()
    in
    let tty = (not batch) && Unix.isatty Unix.stdin in
    (* piped input always echoes, so a transcript is self-contained *)
    Query.Repl.drive st ~echo:(not tty) ~prompt:tty stdin;
    if st.Query.Repl.failed then exit 1
  in
  let batch_arg =
    let doc =
      "Force batch mode even on a tty: no prompt is printed eagerly; \
       instead every input line is echoed after a $(b,query> ) prefix, \
       making the output a self-contained transcript (what the golden \
       tests diff)."
    in
    Arg.(value & flag & info [ "batch" ] ~doc)
  in
  let doc =
    "Interactive query session. Directives: $(b,:load FILE), $(b,:budget \
     on|off), $(b,:trace FILE|off), $(b,:env), $(b,:help), $(b,:quit)."
  in
  Cmd.v (Cmd.info "repl" ~doc ~exits)
    Term.(
      const run $ batch_arg $ query_device_arg $ query_block_size_arg
      $ query_spill_dir_arg)

let () =
  let doc =
    "Randomized computations on large data sets: tight lower bounds (PODS'06) \
     - executable reproduction"
  in
  let info = Cmd.info "stlb" ~version:"1.0.0" ~doc ~exits in
  let group =
    Cmd.group info
      [
        gen_cmd; decide_cmd; query_cmd; repl_cmd; adversary_cmd;
        experiment_cmd; serve_cmd; loadgen_cmd; classes_cmd; sortedness_cmd;
        trace_cmd; simulate_cmd; scrub_cmd;
      ]
  in
  (* a tripped resource budget, a full disk or exhausted retries on
     persistent corruption are diagnosed outcomes, not crashes *)
  try exit (Cmd.eval ~catch:false group) with
  | Tape.Budget_exceeded msg ->
      Printf.eprintf "stlb: budget exceeded: %s\n" msg;
      exit 10
  | Unix.Unix_error (((Unix.ENOSPC | Unix.EROFS) as e), fn, _) ->
      Printf.eprintf "stlb: fatal storage error: %s in %s\n"
        (Unix.error_message e) fn;
      exit 10
  | Faults.Retry.Gave_up { label; attempts; last } ->
      Printf.eprintf "stlb: gave up after %d attempts in %s: %s\n" attempts
        label (Printexc.to_string last);
      exit 10
