examples/fooling_adversary.mli:
