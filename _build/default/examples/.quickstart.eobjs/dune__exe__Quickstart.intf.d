examples/quickstart.mli:
