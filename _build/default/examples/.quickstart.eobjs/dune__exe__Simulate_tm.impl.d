examples/simulate_tm.ml: Array List Listmachine Printf Random Simulation String Turing
