examples/relational_diff.mli:
