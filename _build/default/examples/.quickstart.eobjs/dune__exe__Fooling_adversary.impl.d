examples/fooling_adversary.ml: Array List Listmachine Printf Problems Random Stcore Util
