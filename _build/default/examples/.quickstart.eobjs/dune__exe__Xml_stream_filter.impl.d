examples/xml_stream_filter.ml: Format List Printf Problems Random String Util Xmlq
