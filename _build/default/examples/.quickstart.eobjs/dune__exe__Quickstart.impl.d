examples/quickstart.ml: Extsort Fingerprint List Printf Problems Random
