examples/relational_diff.ml: Format List Printf Problems Random Relalg
