examples/xml_stream_filter.mli:
