examples/trace_walkthrough.ml: Array List Listmachine Printf Problems Random String Turing
