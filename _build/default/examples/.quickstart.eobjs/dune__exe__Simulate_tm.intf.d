examples/simulate_tm.mli:
