(* The executable lower bound (Theorem 6 / Lemma 21).

     dune exec examples/fooling_adversary.exe

   Builds honest (r,2)-bounded list machines for CHECK-phi with
   increasing scan budgets and runs the Lemma 21 adversary against each:
   the proof pipeline (fix a choice sequence, census the skeletons, find
   an uncompared pair (i0, m+phi(i0)), swap values, compose) terminates
   with a concrete NO-instance the machine wrongly accepts - until the
   machine's comparison coverage is complete. *)

let () =
  let st = Random.State.make [| 21 |] in
  let m = 16 in
  let space = Problems.Generators.Checkphi.default_space ~m ~n:(2 * m) in
  let phi = Problems.Generators.Checkphi.phi space in
  let needed = Listmachine.Machines.chains_needed ~space in

  Printf.printf
    "CHECK-phi with m = %d, phi = reverse-binary (sortedness %d, Remark 20\n\
     bound %.0f). Full verification needs %d monotone chains.\n\n"
    m
    (Util.Permutation.sortedness phi)
    ((2.0 *. sqrt (float_of_int m)) -. 1.0)
    needed;

  List.iter
    (fun chains ->
      let machine =
        Listmachine.Machines.staircase_checkphi ~space ~chains
          ~optimistic:(chains < needed)
      in
      let values inst =
        Array.append (Problems.Instance.xs inst) (Problems.Instance.ys inst)
      in
      let tr =
        Listmachine.Nlm.run machine
          ~values:(values (Problems.Generators.Checkphi.yes st space))
          ~choices:(fun _ -> 0)
      in
      Printf.printf "machine with %d/%d chains (%d scans):\n" chains needed
        (Listmachine.Nlm.scans tr);
      match Stcore.Adversary.attack st ~space ~machine () with
      | Stcore.Adversary.Fooled { input; i0; _ } as outcome ->
          Printf.printf
            "  FOOLED - pair (%d, m+phi(%d)=%d) is never compared; the machine\n\
            \  accepts this NO-instance (re-validated: %b):\n  %s\n\n"
            i0 i0
            (m + Util.Permutation.apply phi i0)
            (Stcore.Adversary.verify_fooled ~space ~machine outcome)
            (Problems.Instance.encode input)
      | Stcore.Adversary.Not_fooled { reason; _ } ->
          Printf.printf "  cannot be fooled: %s\n\n" reason
      | Stcore.Adversary.Contract_violated { yes_acceptance } ->
          Printf.printf
            "  contract violated: accepts only %.0f%% of yes-instances\n\n"
            (100.0 *. yes_acceptance))
    [ 1; 2; 3; needed ];

  print_endline
    "This is Theorem 6 in action: with o(log N) scans some pair must stay\n\
     uncompared (merge lemma + sortedness of phi), and the composition lemma\n\
     turns that blind spot into a wrong accept. Only the full-coverage\n\
     machine - whose scan count is what Corollary 7 says is necessary and\n\
     sufficient - survives."
