(* Streaming relational algebra (Theorem 11).

     dune exec examples/relational_diff.exe

   Builds a small employee/contractor database, evaluates the paper's
   query Q' = (R1 - R2) u (R2 - R1) and a few other algebra expressions
   through the streaming evaluator, and shows the O(log N) scan growth
   that Theorem 11(b) proves tight. *)

let header title = Printf.printf "--- %s ---\n" title

let () =
  (* a readable toy database *)
  let people_2024 =
    Relalg.relation ~schema:[ "name"; "team" ]
      [
        [| "ada"; "db" |];
        [| "grace"; "os" |];
        [| "edsger"; "algo" |];
        [| "barbara"; "db" |];
      ]
  in
  let people_2025 =
    Relalg.relation ~schema:[ "name"; "team" ]
      [
        [| "ada"; "db" |];
        [| "edsger"; "algo" |];
        [| "barbara"; "pl" |];
        [| "tony"; "pl" |];
      ]
  in
  let db = [ ("Y2024", people_2024); ("Y2025", people_2025) ] in

  header "churn = symmetric difference (the Theorem 11(b) query Q')";
  let churn, rep =
    Relalg.eval_streaming db (Relalg.symmetric_difference "Y2024" "Y2025")
  in
  Format.printf "%a@." Relalg.pp_relation churn;
  Printf.printf "(measured: %d scans, %d registers)\n\n" rep.Relalg.scans
    rep.Relalg.registers;

  header "db-team members who left (selection o difference)";
  let left_db, _ =
    Relalg.eval_streaming db
      (Relalg.Select
         ( Relalg.Eq (Relalg.Attr "team", Relalg.Const "db"),
           Relalg.Diff (Relalg.Rel "Y2024", Relalg.Rel "Y2025") ))
  in
  Format.printf "%a@." Relalg.pp_relation left_db;

  header "every (2025 person, 2024 team) combination (product via doubling)";
  let combos, rep2 =
    Relalg.eval_streaming db
      (Relalg.Product
         ( Relalg.Project ([ "name" ], Relalg.Rel "Y2025"),
           Relalg.Rename
             ( [ ("team", "team24") ],
               Relalg.Project ([ "team" ], Relalg.Rel "Y2024") ) ))
  in
  Printf.printf "%d tuples (measured: %d scans)\n\n"
    (List.length combos.Relalg.tuples)
    rep2.Relalg.scans;

  header "Q' emptiness decides SET-EQUALITY: scan growth with N";
  List.iter
    (fun m ->
      let st = Random.State.make [| m |] in
      let inst =
        Problems.Generators.yes_instance st Problems.Decide.Set_equality ~m ~n:10
      in
      let dbi = Relalg.instance_db inst in
      let res, r =
        Relalg.eval_streaming dbi (Relalg.symmetric_difference "R1" "R2")
      in
      Printf.printf "  m=%4d tuples=%4d scans=%4d empty=%b\n" m r.Relalg.n
        r.Relalg.scans
        (res.Relalg.tuples = []))
    [ 16; 64; 256; 1024 ];
  print_endline
    "\nScans grow logarithmically - and by Theorem 11(b) (via Theorem 6) no\n\
     evaluation strategy can do better than Omega(log N) random accesses."
