(* The simulation lemma, live (Lemma 16).

     dune exec examples/simulate_tm.exe

   Runs the two-tape pair-equality Turing machine on inputs of growing
   size and derives, step by step, the list machine run that simulates
   it: one list cell per tape block, head events only when a TM head
   crosses a block boundary or turns. The resource comparison (the whole
   point of the lemma) is printed per run. *)

let () =
  let tm = Turing.Zoo.pair_equality () in
  Printf.printf "machine: %s (normalized: %b, external tapes: %d)\n\n"
    tm.Turing.Machine.name
    (Turing.Machine.is_normalized tm)
    tm.Turing.Machine.ext;

  List.iter
    (fun n ->
      let v = String.init n (fun i -> if (i * i mod 7) land 1 = 0 then '0' else '1') in
      let inputs = [| v; v |] in
      let r = Simulation.simulate tm ~inputs ~choices:(fun _ -> 0) in
      Printf.printf
        "n=%4d  verdict=%-5b agree=%b  TM reversals=%d  LM reversals=%d  \
         crossings=%d  LM steps=%d\n"
        n r.Simulation.lm_trace.Listmachine.Nlm.accepted r.Simulation.agreement
        r.Simulation.tm_ext_reversals r.Simulation.lm_reversals
        r.Simulation.crossings
        (Array.length r.Simulation.lm_trace.Listmachine.Nlm.configs))
    [ 2; 8; 32; 128 ];

  print_newline ();

  (* nondeterministic machines keep their acceptance distribution *)
  let st = Random.State.make [| 16 |] in
  let nd = Turing.Zoo.nondet_find_one () in
  List.iter
    (fun inputs ->
      let ptm, plm = Simulation.acceptance_agreement st ~samples:500 nd ~inputs in
      Printf.printf "find-one on %-8s Pr_TM=%.3f  Pr_LM=%.3f\n"
        (String.concat "#" (Array.to_list inputs))
        ptm plm)
    [ [| "1" |]; [| "11" |]; [| "101"; "1" |] ];

  print_newline ();
  Printf.printf
    "Lemma 16's counting side: simulating an (r,s,t)-bounded TM at m=16,\n\
     n=64 needs at most 2^%.0f abstract list-machine states (bound (2)) -\n\
     finite, which is what makes the Lemma 21 counting argument go through.\n"
    (Simulation.abstract_state_bound_log2 ~d:4 ~t:2 ~r:3 ~s:8 ~m:16 ~n:64)
