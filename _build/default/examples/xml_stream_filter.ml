(* XML query evaluation on document streams (Theorems 12 and 13).

     dune exec examples/xml_stream_filter.exe

   Encodes SET-EQUALITY instances as the paper's <instance>/<set1>/<set2>
   documents, runs the Figure 1 XPath filter and the Theorem 12 XQuery
   query against them, and shows the streaming implementation of the
   filter with its measured scan count. *)

let () =
  let st = Random.State.make [| 13 |] in

  (* a small instance, hand-readable *)
  let bs = Util.Bitstring.of_string in
  let inst =
    Problems.Instance.make
      [| bs "0101"; bs "1100"; bs "0011" |]
      [| bs "0011"; bs "0101"; bs "0101" |]
  in
  let doc = Xmlq.Doc.of_instance inst in
  Printf.printf "document stream (%d symbols):\n%s\n\n"
    (Xmlq.Doc.stream_length doc) (Xmlq.Doc.serialize doc);

  Printf.printf "Figure 1 XPath query:\n  %s\n\n"
    (Format.asprintf "%a" Xmlq.Xpath.pp_path Xmlq.Xpath.figure1);

  let selected = Xmlq.Xpath.select_values doc Xmlq.Xpath.figure1 in
  Printf.printf "items selected (set1 strings missing from set2): [%s]\n"
    (String.concat "; " selected);
  Printf.printf "filter matches: %b\n\n" (Xmlq.Xpath.matches doc Xmlq.Xpath.figure1);

  Printf.printf "Theorem 12 XQuery (set equality): %s\n\n"
    (Xmlq.Doc.serialize (Xmlq.Xquery.eval Xmlq.Xquery.theorem12_query doc));

  (* the streaming filter, with resource accounting *)
  print_endline "streaming Figure-1 filter over growing documents:";
  List.iter
    (fun m ->
      let inst, _ =
        Problems.Generators.labelled st Problems.Decide.Set_equality ~m ~n:10
      in
      let stream = Xmlq.Doc.serialize (Xmlq.Doc.of_instance inst) in
      let matches, rep = Xmlq.Stream_filter.figure1_filter stream in
      let tree_matches = Xmlq.Xpath.matches (Xmlq.Doc.parse stream) Xmlq.Xpath.figure1 in
      Printf.printf "  m=%4d N=%6d scans=%3d matches=%-5b (tree eval agrees: %b)\n" m
        rep.Xmlq.Stream_filter.n rep.Xmlq.Stream_filter.scans matches
        (matches = tree_matches))
    [ 8; 32; 128; 512 ];
  print_endline
    "\nTheorem 13: any randomized filter with no false negatives needs\n\
     Omega(log N) scans in the sublogarithmic-memory regime - the sort-based\n\
     streaming filter above is therefore asymptotically optimal."
