(* Quickstart: the two headline algorithms on MULTISET-EQUALITY.

     dune exec examples/quickstart.exe

   A MULTISET-EQUALITY instance is two lists of bit strings; the
   question is whether they agree as multisets. The paper's Theorem 8(a)
   solves it with TWO sequential scans and O(log N) internal memory
   (randomized, one-sided error); Corollary 7 solves it exactly with
   O(log N) scans via tape merge sort. Both resource counts below are
   measured by the tape substrate, not asserted. *)

let () =
  let st = Random.State.make [| 2006 |] in

  (* a yes-instance and a no-instance, m = 64 strings of n = 16 bits *)
  let yes =
    Problems.Generators.yes_instance st Problems.Decide.Multiset_equality
      ~m:64 ~n:16
  in
  let no =
    Problems.Generators.no_instance st Problems.Decide.Multiset_equality
      ~m:64 ~n:16
  in
  Printf.printf "instance size N = %d symbols\n\n" (Problems.Instance.size yes);

  (* --- Theorem 8(a): randomized fingerprinting, 2 scans --- *)
  List.iter
    (fun (label, inst) ->
      let verdict, rep, params = Fingerprint.run st inst in
      Printf.printf
        "fingerprint  %-3s -> %-5b  (scans=%d, internal bits=%d, p1=%d, p2=%d)\n"
        label verdict rep.Fingerprint.scans rep.Fingerprint.internal_bits
        params.Fingerprint.p1 params.Fingerprint.p2)
    [ ("yes", yes); ("no", no) ];

  print_newline ();

  (* --- Corollary 7: deterministic merge sort, O(log N) scans --- *)
  List.iter
    (fun (label, inst) ->
      let verdict, rep = Extsort.multiset_equality inst in
      Printf.printf
        "merge sort   %-3s -> %-5b  (scans=%d, registers=%d, tapes=%d)\n" label
        verdict rep.Extsort.scans rep.Extsort.register_peak rep.Extsort.tapes)
    [ ("yes", yes); ("no", no) ];

  print_newline ();
  print_endline
    "The gap (2 scans vs Theta(log N) scans) is the paper's point:\n\
     randomization with false POSITIVES allowed (co-RST) beats every\n\
     deterministic algorithm, while Theorem 6 shows that with false\n\
     NEGATIVES allowed (RST) no o(log N)-scan algorithm exists at all."
