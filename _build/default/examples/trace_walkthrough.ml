(* A guided tour of both computation models, step by step.

     dune exec examples/trace_walkthrough.exe

   First a Turing machine run (the two-tape pair-equality machine of the
   zoo) rendered configuration by configuration; then a list machine run
   in the Figure 2 style, showing the forced writes, splices, and the
   skeleton the lower-bound machinery extracts from the trace. *)

let rule title =
  Printf.printf "%s\n%s\n" title (String.make (String.length title) '=')

let () =
  rule "1. Turing machine: pair-equality on 01#01#";
  let tm = Turing.Zoo.pair_equality () in
  print_string (Turing.Render.run_to_string ~max_steps:12 tm ~input:"01#01#"
                  ~choices:(fun _ -> 0));

  print_newline ();
  rule "2. List machine: one chain of the staircase CHECK-phi verifier (m=4)";
  let space = Problems.Generators.Checkphi.default_space ~m:4 ~n:4 in
  let machine =
    Listmachine.Machines.staircase_checkphi ~space ~chains:1 ~optimistic:true
  in
  let st = Random.State.make [| 4 |] in
  let inst = Problems.Generators.Checkphi.yes st space in
  Printf.printf "input instance: %s\n\n" (Problems.Instance.encode inst);
  let values =
    Array.append (Problems.Instance.xs inst) (Problems.Instance.ys inst)
  in
  let tr = Listmachine.Nlm.run machine ~values ~choices:(fun _ -> 0) in
  print_string (Listmachine.Render.trace_to_string ~max_width:18 ~max_steps:6 tr);

  print_newline ();
  rule "3. The skeleton of that run (what the adversary sees)";
  let sk = Listmachine.Skeleton.of_trace tr in
  print_string (Listmachine.Render.skeleton_summary sk);
  let phi = Problems.Generators.Checkphi.phi space in
  Printf.printf
    "\ncompared phi-pairs: %d of %d; uncompared x-positions: [%s]\n"
    (Listmachine.Skeleton.phi_compared_count sk ~m:4 ~phi)
    4
    (String.concat "; "
       (List.map string_of_int
          (Listmachine.Skeleton.uncompared_phi_indices sk ~m:4 ~phi)));
  print_endline
    "\nEvery write splices the string a<x1><x2><c> behind each head - the\n\
     forced co-location of everything the heads see is exactly what the\n\
     skeleton records, and uncompared pairs are where Lemma 21 attacks."
