lib/turing/machine.mli: Hashtbl
