lib/turing/zoo.ml: Build List Machine String
