lib/turing/render.ml: Array Buffer List Machine Option Printf String
