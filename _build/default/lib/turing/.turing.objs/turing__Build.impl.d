lib/turing/build.ml: Array List Machine String
