lib/turing/render.mli: Machine
