lib/turing/closure.ml: Array Char Hashtbl List Machine Printf String
