lib/turing/build.mli: Machine
