lib/turing/accept.mli: Machine Random
