lib/turing/accept.ml: List Machine Random String
