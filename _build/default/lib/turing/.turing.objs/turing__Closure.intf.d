lib/turing/closure.mli: Machine
