lib/turing/machine.ml: Array Bytes Hashtbl List Option Printf String
