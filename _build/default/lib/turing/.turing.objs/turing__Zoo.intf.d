lib/turing/zoo.mli: Machine
