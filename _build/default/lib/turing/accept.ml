type prob_stats = { probability : float; runs_explored : int; max_steps : int }

let exact_probability ?(fuel = 100_000) m ~input =
  let expanded = ref 0 in
  let runs = ref 0 in
  let deepest = ref 0 in
  let rec go c depth =
    incr expanded;
    if !expanded > fuel then failwith "Accept.exact_probability: out of fuel";
    if Machine.is_final m c then begin
      incr runs;
      if depth > !deepest then deepest := depth;
      if Machine.is_accepting m c then 1.0 else 0.0
    end
    else begin
      match Machine.enabled m c with
      | [] -> failwith "Accept.exact_probability: stuck configuration"
      | trs ->
          let k = float_of_int (List.length trs) in
          List.fold_left
            (fun acc tr -> acc +. (go (Machine.apply m c tr) (depth + 1) /. k))
            0.0 trs
    end
  in
  let p = go (Machine.initial_config m input) 0 in
  { probability = p; runs_explored = !runs; max_steps = !deepest }

let estimate_probability st ?(samples = 1000) ?fuel m ~input =
  let hits = ref 0 in
  for _ = 1 to samples do
    let stats =
      Machine.run ?fuel m ~input ~choices:(fun _ -> Random.State.full_int st max_int)
    in
    if stats.Machine.outcome = Machine.Accepted then incr hits
  done;
  float_of_int !hits /. float_of_int samples

type bound_report = { scans_used : int; int_space_used : int; within : bool }

let check_bounded ~r ~s m ~input ~choices =
  let stats = Machine.run m ~input ~choices in
  let n = String.length input in
  let scans_used = Machine.scans stats in
  let int_space_used = Machine.total_int_space stats in
  { scans_used; int_space_used; within = scans_used <= r n && int_space_used <= s n }

let one_sided_monte_carlo st ?(samples = 400) m ~positives ~negatives =
  let sample_accepts input =
    let stats =
      Machine.run m ~input ~choices:(fun _ -> Random.State.full_int st max_int)
    in
    stats.Machine.outcome = Machine.Accepted
  in
  let bad_negative =
    List.find_opt
      (fun w ->
        let rec any i = i < samples && (sample_accepts w || any (i + 1)) in
        any 0)
      negatives
  in
  match bad_negative with
  | Some w -> `False_positive w
  | None -> (
      let weak =
        List.filter_map
          (fun w ->
            let hits = ref 0 in
            for _ = 1 to samples do
              if sample_accepts w then incr hits
            done;
            let p = float_of_int !hits /. float_of_int samples in
            if p < 0.45 then Some (w, p) else None)
          positives
      in
      match weak with [] -> `Ok | (w, p) :: _ -> `Low_acceptance (w, p))

let lemma3_bound ~n ~r ~s ~t ~c =
  float_of_int n *. (2.0 ** float_of_int (c * r * (t + s)))
