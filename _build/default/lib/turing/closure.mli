(** Closure operations on machines, as used implicitly by the paper.

    The proof of Corollary 9(b) uses that the deterministic ST classes
    are closed under complement; the proof of Theorem 13 builds a
    machine running two sub-machines and combining their verdicts.
    These constructions are mechanical on machine tables; this module
    makes them executable so the closure claims can be tested.

    All operations preserve the [(r,s,t)] envelope up to the obvious
    bookkeeping (complement: unchanged; union: the max of the two
    machines' usage plus one initial branching step). *)

val complement : Machine.t -> Machine.t
(** Swap accepting and rejecting among the final states. Decides the
    complement language for {e deterministic} machines all of whose
    runs terminate in final states (the ST setting); for
    nondeterministic machines this is {e not} language complement.
    @raise Invalid_argument if the machine is nondeterministic (some
    [(state, reads)] has several transitions). *)

val nondet_union : Machine.t -> Machine.t -> Machine.t
(** A machine accepting iff either argument has an accepting run: a
    fresh start state branches nondeterministically (one state-only
    step, nothing moved or written) into either machine.
    @raise Invalid_argument if the machines disagree on [ext], [int_]
    or [blank]. *)
