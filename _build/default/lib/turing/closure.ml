let transitions_of (m : Machine.t) =
  Hashtbl.fold
    (fun (q, reads) trs acc ->
      List.fold_left (fun acc tr -> (q, reads, tr) :: acc) acc trs)
    m.Machine.delta []

let alphabet_of (m : Machine.t) =
  let syms = Hashtbl.create 16 in
  Hashtbl.replace syms m.Machine.blank ();
  Hashtbl.iter
    (fun (_, reads) trs ->
      String.iter (fun ch -> Hashtbl.replace syms ch ()) reads;
      List.iter
        (fun (tr : Machine.transition) ->
          String.iter (fun ch -> Hashtbl.replace syms ch ()) tr.Machine.writes)
        trs)
    m.Machine.delta;
  Hashtbl.fold (fun ch () acc -> ch :: acc) syms []

let is_deterministic (m : Machine.t) =
  Hashtbl.fold (fun _ trs acc -> acc && List.length trs <= 1) m.Machine.delta true

let complement (m : Machine.t) =
  if not (is_deterministic m) then
    invalid_arg "Closure.complement: machine is nondeterministic";
  Machine.create
    ~name:(m.Machine.name ^ "~complement")
    ~state_names:m.Machine.state_names ~start:m.Machine.start
    ~final:m.Machine.final
    ~accepting:
      (Array.mapi
         (fun q final_acc -> m.Machine.final.(q) && not final_acc)
         m.Machine.accepting)
    ~blank:m.Machine.blank ~ext:m.Machine.ext ~int_:m.Machine.int_
    (transitions_of m)

(* All read tuples over the given alphabet, for a machine with [tapes]
   tapes. Exponential; used only for the single branching state. *)
let all_tuples alphabet tapes =
  let rec go i acc =
    if i = tapes then acc
    else
      go (i + 1)
        (List.concat_map
           (fun prefix -> List.map (fun ch -> prefix ^ String.make 1 ch) alphabet)
           acc)
  in
  go 0 [ "" ]

let nondet_union (a : Machine.t) (b : Machine.t) =
  if a.Machine.ext <> b.Machine.ext || a.Machine.int_ <> b.Machine.int_ then
    invalid_arg "Closure.nondet_union: tape counts differ";
  if a.Machine.blank <> b.Machine.blank then
    invalid_arg "Closure.nondet_union: blanks differ";
  let tapes = a.Machine.ext + a.Machine.int_ in
  let na = a.Machine.num_states in
  let shift_a q = q + 1 in
  let shift_b q = q + 1 + na in
  let state_names =
    Array.concat
      [
        [| "branch" |];
        Array.map (fun s -> "a." ^ s) a.Machine.state_names;
        Array.map (fun s -> "b." ^ s) b.Machine.state_names;
      ]
  in
  let final =
    Array.concat [ [| false |]; a.Machine.final; b.Machine.final ]
  in
  let accepting =
    Array.concat [ [| false |]; a.Machine.accepting; b.Machine.accepting ]
  in
  let retarget shift (q, reads, (tr : Machine.transition)) =
    (shift q, reads, { tr with Machine.next_state = shift tr.Machine.next_state })
  in
  let alphabet =
    List.sort_uniq Char.compare (alphabet_of a @ alphabet_of b)
  in
  let stay = Array.make tapes Machine.Stay in
  let branch_transitions =
    List.concat_map
      (fun reads ->
        [
          (0, reads,
           { Machine.next_state = shift_a a.Machine.start; writes = reads; moves = stay });
          (0, reads,
           { Machine.next_state = shift_b b.Machine.start; writes = reads; moves = stay });
        ])
      (all_tuples alphabet tapes)
  in
  Machine.create
    ~name:(Printf.sprintf "(%s|%s)" a.Machine.name b.Machine.name)
    ~state_names ~start:0 ~final ~accepting ~blank:a.Machine.blank
    ~ext:a.Machine.ext ~int_:a.Machine.int_
    (branch_transitions
    @ List.map (retarget shift_a) (transitions_of a)
    @ List.map (retarget shift_b) (transitions_of b))
