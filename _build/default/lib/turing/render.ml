let config_to_string (m : Machine.t) (c : Machine.config) =
  let buf = Buffer.create 256 in
  let tapes = m.Machine.ext + m.Machine.int_ in
  for i = 0 to tapes - 1 do
    let kind = if i < m.Machine.ext then "ext" else "int" in
    Buffer.add_string buf (Printf.sprintf "tape %d (%s): " (i + 1) kind);
    let content = Machine.tape_contents m c i in
    let pos = Machine.head_position c i in
    let upto = max (String.length content) (pos + 1) in
    for j = 0 to upto - 1 do
      let ch = if j < String.length content then content.[j] else m.Machine.blank in
      if j = pos then Buffer.add_string buf (Printf.sprintf "[%c] " ch)
      else Buffer.add_string buf (Printf.sprintf "%c " ch)
    done;
    if i = 0 then
      Buffer.add_string buf
        (Printf.sprintf "  state=%s" m.Machine.state_names.(Machine.config_state c));
    Buffer.add_char buf '\n'
  done;
  Buffer.contents buf

let run_to_string ?(max_steps = 30) (m : Machine.t) ~input ~choices =
  let buf = Buffer.create 1024 in
  let c = ref (Machine.initial_config m input) in
  Buffer.add_string buf "initial:\n";
  Buffer.add_string buf (config_to_string m !c);
  let steps = ref 0 in
  let outcome = ref None in
  while !outcome = None do
    if Machine.is_final m !c then
      outcome := Some (if Machine.is_accepting m !c then "ACCEPTS" else "rejects")
    else begin
      match Machine.enabled m !c with
      | [] -> outcome := Some "is stuck"
      | trs ->
          let k = List.length trs in
          let pick = ((choices !steps mod k) + k) mod k in
          c := Machine.apply m !c (List.nth trs pick);
          incr steps;
          if !steps <= max_steps then begin
            Buffer.add_string buf (Printf.sprintf "\nstep %d:\n" !steps);
            Buffer.add_string buf (config_to_string m !c)
          end
          else if !steps = max_steps + 1 then
            Buffer.add_string buf "\n... further steps elided ...\n";
          if !steps > 500_000 then outcome := Some "ran out of fuel"
    end
  done;
  let stats = Machine.run m ~input ~choices in
  Buffer.add_string buf
    (Printf.sprintf "\nrun %s after %d steps (scans = %d, internal space = %d)\n"
       (Option.get !outcome) !steps (Machine.scans stats)
       (Machine.total_int_space stats));
  Buffer.contents buf
