type pending = {
  p_from : int;
  p_reads : string;
  p_to : int;
  p_writes : string;
  p_moves : Machine.move array;
}

type b = {
  name : string;
  ext : int;
  int_ : int;
  blank : char;
  alphabet : char list;  (* includes blank *)
  mutable names : string list;  (* reversed *)
  mutable finals : bool list;  (* reversed *)
  mutable acceptings : bool list;  (* reversed *)
  mutable count : int;
  mutable pendings : pending list;  (* reversed *)
}

let make ~name ~ext ~int_ ?(blank = '_') ~alphabet () =
  let chars = List.init (String.length alphabet) (String.get alphabet) in
  let chars = if List.mem blank chars then chars else blank :: chars in
  {
    name;
    ext;
    int_;
    blank;
    alphabet = chars;
    names = [];
    finals = [];
    acceptings = [];
    count = 0;
    pendings = [];
  }

let state b ?(final = false) ?(accepting = false) name =
  if accepting && not final then invalid_arg "Build.state: accepting requires final";
  if List.mem name b.names then invalid_arg "Build.state: duplicate state name";
  let q = b.count in
  b.names <- name :: b.names;
  b.finals <- final :: b.finals;
  b.acceptings <- accepting :: b.acceptings;
  b.count <- q + 1;
  q

let on b ~from ~reads ~to_ ~writes ~moves =
  let tapes = b.ext + b.int_ in
  if String.length reads <> tapes || String.length writes <> tapes then
    invalid_arg "Build.on: reads/writes arity";
  if Array.length moves <> tapes then invalid_arg "Build.on: moves arity";
  (* expand '?' in reads over the alphabet *)
  let rec expand i acc =
    if i = String.length reads then List.map List.rev acc
    else begin
      let choices = if reads.[i] = '?' then b.alphabet else [ reads.[i] ] in
      expand (i + 1)
        (List.concat_map (fun prefix -> List.map (fun ch -> ch :: prefix) choices) acc)
    end
  in
  List.iter
    (fun rds ->
      let concrete_reads = String.init tapes (List.nth rds) in
      let concrete_writes =
        String.init tapes (fun i ->
            if writes.[i] = '?' then concrete_reads.[i] else writes.[i])
      in
      b.pendings <-
        {
          p_from = from;
          p_reads = concrete_reads;
          p_to = to_;
          p_writes = concrete_writes;
          p_moves = moves;
        }
        :: b.pendings)
    (expand 0 [ [] ])

let on' b ~from ~reads ~to_ ~writes ~moves =
  on b ~from ~reads ~to_ ~writes ~moves:(Array.of_list moves)

let build b =
  if b.count = 0 then invalid_arg "Build.build: no states";
  let transitions =
    List.rev_map
      (fun p ->
        ( p.p_from,
          p.p_reads,
          { Machine.next_state = p.p_to; writes = p.p_writes; moves = p.p_moves } ))
      b.pendings
  in
  Machine.create ~name:b.name
    ~state_names:(Array.of_list (List.rev b.names))
    ~start:0
    ~final:(Array.of_list (List.rev b.finals))
    ~accepting:(Array.of_list (List.rev b.acceptings))
    ~blank:b.blank ~ext:b.ext ~int_:b.int_ transitions
