type move = Left | Stay | Right

type transition = { next_state : int; writes : string; moves : move array }

type t = {
  name : string;
  num_states : int;
  state_names : string array;
  start : int;
  final : bool array;
  accepting : bool array;
  blank : char;
  ext : int;
  int_ : int;
  delta : (int * string, transition list) Hashtbl.t;
}

let validate m transitions =
  let tapes = m.ext + m.int_ in
  if m.ext < 1 then invalid_arg "Machine.create: need at least the input tape";
  if m.int_ < 0 then invalid_arg "Machine.create: negative internal tape count";
  if Array.length m.state_names <> m.num_states then
    invalid_arg "Machine.create: state_names arity";
  if Array.length m.final <> m.num_states || Array.length m.accepting <> m.num_states
  then invalid_arg "Machine.create: final/accepting arity";
  if m.start < 0 || m.start >= m.num_states then invalid_arg "Machine.create: start";
  Array.iteri
    (fun q acc -> if acc && not m.final.(q) then
        invalid_arg "Machine.create: accepting state not final")
    m.accepting;
  List.iter
    (fun (q, reads, tr) ->
      if q < 0 || q >= m.num_states then
        invalid_arg "Machine.create: transition source state out of range";
      if m.final.(q) then
        invalid_arg "Machine.create: transition out of a final state";
      if tr.next_state < 0 || tr.next_state >= m.num_states then
        invalid_arg "Machine.create: transition target state out of range";
      if String.length reads <> tapes then
        invalid_arg "Machine.create: reads arity";
      if String.length tr.writes <> tapes then
        invalid_arg "Machine.create: writes arity";
      if Array.length tr.moves <> tapes then
        invalid_arg "Machine.create: moves arity")
    transitions

let create ~name ~state_names ~start ~final ~accepting ?(blank = '_') ~ext ~int_
    transitions =
  let m =
    {
      name;
      num_states = Array.length state_names;
      state_names;
      start;
      final;
      accepting;
      blank;
      ext;
      int_;
      delta = Hashtbl.create 64;
    }
  in
  validate m transitions;
  (* Preserve declaration order within each (state, reads) bucket: the
     list order is the numbering that choice numbers index into. *)
  List.iter
    (fun (q, reads, tr) ->
      let key = (q, reads) in
      let existing = Option.value ~default:[] (Hashtbl.find_opt m.delta key) in
      Hashtbl.replace m.delta key (existing @ [ tr ]))
    transitions;
  m

let moving_heads tr =
  Array.to_list tr.moves
  |> List.mapi (fun i mv -> (i, mv))
  |> List.filter (fun (_, mv) -> mv <> Stay)

let is_normalized m =
  Hashtbl.fold
    (fun _ trs acc ->
      acc && List.for_all (fun tr -> List.length (moving_heads tr) <= 1) trs)
    m.delta true

(* ------------------------------------------------------------------ *)
(* Configurations                                                      *)

type config = {
  state : int;
  tapes : Bytes.t array;  (* content, growable on copy *)
  used : int array;  (* cells used so far, per tape *)
  pos : int array;
  dir : int array;  (* +1 / -1; +1 initially *)
  revs : int array;
}

let initial_config m input =
  let tapes_n = m.ext + m.int_ in
  let tapes =
    Array.init tapes_n (fun i ->
        if i = 0 then Bytes.of_string input else Bytes.make 1 m.blank)
  in
  let used =
    Array.init tapes_n (fun i -> if i = 0 then max 1 (String.length input) else 1)
  in
  {
    state = m.start;
    tapes;
    used;
    pos = Array.make tapes_n 0;
    dir = Array.make tapes_n 1;
    revs = Array.make tapes_n 0;
  }

let config_state c = c.state
let is_final m c = m.final.(c.state)
let is_accepting m c = m.accepting.(c.state)
let head_position c i = c.pos.(i)
let head_direction c i = c.dir.(i)

let read_cell m c i =
  let tape = c.tapes.(i) in
  if c.pos.(i) < Bytes.length tape then Bytes.get tape c.pos.(i) else m.blank

let reads_of m c = String.init (m.ext + m.int_) (read_cell m c)

let enabled m c =
  if m.final.(c.state) then []
  else Option.value ~default:[] (Hashtbl.find_opt m.delta (c.state, reads_of m c))

let grow_for blank tape pos =
  if pos < Bytes.length tape then tape
  else begin
    let fresh = Bytes.make (max (pos + 1) (2 * Bytes.length tape)) blank in
    Bytes.blit tape 0 fresh 0 (Bytes.length tape);
    fresh
  end

let apply m c tr =
  let tapes_n = m.ext + m.int_ in
  let tapes = Array.map Bytes.copy c.tapes in
  let used = Array.copy c.used in
  let pos = Array.copy c.pos in
  let dir = Array.copy c.dir in
  let revs = Array.copy c.revs in
  for i = 0 to tapes_n - 1 do
    tapes.(i) <- grow_for m.blank tapes.(i) pos.(i);
    Bytes.set tapes.(i) pos.(i) tr.writes.[i];
    if pos.(i) + 1 > used.(i) then used.(i) <- pos.(i) + 1;
    (match tr.moves.(i) with
    | Stay -> ()
    | Left ->
        if pos.(i) = 0 then invalid_arg "Machine.apply: head falls off tape";
        if dir.(i) = 1 then begin
          revs.(i) <- revs.(i) + 1;
          dir.(i) <- -1
        end;
        pos.(i) <- pos.(i) - 1
    | Right ->
        if dir.(i) = -1 then begin
          revs.(i) <- revs.(i) + 1;
          dir.(i) <- 1
        end;
        pos.(i) <- pos.(i) + 1;
        if pos.(i) + 1 > used.(i) then used.(i) <- pos.(i) + 1);
    tapes.(i) <- grow_for m.blank tapes.(i) pos.(i)
  done;
  { state = tr.next_state; tapes; used; pos; dir; revs }

(* ------------------------------------------------------------------ *)
(* Normalization                                                       *)

let normalize m =
  if is_normalized m then m
  else begin
    (* Serialize each k-move transition through k-1 fresh relay states.
       Relay steps must not depend on (or clobber) the cells they pass
       over, so the relay transition is emitted for every read tuple that
       can occur there. The cells under the heads after the first
       sub-step are exactly the symbols the original transition wrote
       (for the still-unmoved heads) and arbitrary alphabet symbols (for
       already-moved heads), so we enumerate over the machine's symbol
       universe for the moved coordinates. *)
    let alphabet =
      let syms = Hashtbl.create 16 in
      Hashtbl.add syms m.blank ();
      Hashtbl.iter
        (fun (_, reads) trs ->
          String.iter (fun ch -> Hashtbl.replace syms ch ()) reads;
          List.iter
            (fun tr -> String.iter (fun ch -> Hashtbl.replace syms ch ()) tr.writes)
            trs)
        m.delta;
      Hashtbl.fold (fun ch () acc -> ch :: acc) syms []
    in
    let tapes_n = m.ext + m.int_ in
    let fresh_names = ref [] in
    let fresh_count = ref 0 in
    let new_transitions = ref [] in
    let add q reads tr = new_transitions := (q, reads, tr) :: !new_transitions in
    let alloc_state name =
      let q = m.num_states + !fresh_count in
      incr fresh_count;
      fresh_names := name :: !fresh_names;
      q
    in
    (* All read tuples consistent with [known]: position i is
       [Some ch] (fixed) or [None] (any alphabet symbol). *)
    let rec tuples known i acc =
      if i = tapes_n then List.map (fun rev -> String.init tapes_n (List.nth (List.rev rev))) acc
      else begin
        let choices = match known.(i) with Some ch -> [ ch ] | None -> alphabet in
        let acc' =
          List.concat_map (fun prefix -> List.map (fun ch -> ch :: prefix) choices) acc
        in
        tuples known (i + 1) acc'
      end
    in
    let enumerate known = tuples known 0 [ [] ] in
    Hashtbl.iter
      (fun (q, reads) trs ->
        List.iter
          (fun tr ->
            match moving_heads tr with
            | [] | [ _ ] -> add q reads tr
            | (h0, mv0) :: rest ->
                (* first sub-step: all writes, first head moves *)
                let first_moves = Array.make tapes_n Stay in
                first_moves.(h0) <- mv0;
                let entry =
                  alloc_state (Printf.sprintf "%s~relay%d" m.state_names.(q) !fresh_count)
                in
                add q reads
                  { next_state = entry; writes = tr.writes; moves = first_moves };
                (* relay chain: one further head per sub-step *)
                let known = Array.make tapes_n None in
                String.iteri (fun i ch -> known.(i) <- Some ch) tr.writes;
                known.(h0) <- None;
                let current = ref entry in
                List.iteri
                  (fun idx (h, mv) ->
                    let is_last = idx = List.length rest - 1 in
                    let target =
                      if is_last then tr.next_state
                      else
                        alloc_state
                          (Printf.sprintf "%s~relay%d" m.state_names.(q) !fresh_count)
                    in
                    let mvs = Array.make tapes_n Stay in
                    mvs.(h) <- mv;
                    List.iter
                      (fun rds ->
                        add !current rds { next_state = target; writes = rds; moves = mvs })
                      (enumerate known);
                    known.(h) <- None;
                    current := target)
                  rest)
          trs)
      m.delta;
    let extra = !fresh_count in
    let state_names =
      Array.append m.state_names (Array.of_list (List.rev !fresh_names))
    in
    let final = Array.append m.final (Array.make extra false) in
    let accepting = Array.append m.accepting (Array.make extra false) in
    create ~name:(m.name ^ "~normalized") ~state_names ~start:m.start ~final
      ~accepting ~blank:m.blank ~ext:m.ext ~int_:m.int_
      (List.rev !new_transitions)
  end

(* ------------------------------------------------------------------ *)
(* Runs                                                                *)

type outcome = Accepted | Rejected | Stuck | Out_of_fuel

type run_stats = {
  outcome : outcome;
  steps : int;
  ext_reversals : int array;
  ext_space : int array;
  int_space : int array;
  final_config : config;
}

let scans st = 1 + Array.fold_left ( + ) 0 st.ext_reversals
let total_int_space st = Array.fold_left ( + ) 0 st.int_space

let stats_of m steps outcome c =
  {
    outcome;
    steps;
    ext_reversals = Array.sub c.revs 0 m.ext;
    ext_space = Array.sub c.used 0 m.ext;
    int_space = Array.sub c.used m.ext m.int_;
    final_config = c;
  }

let run ?(fuel = 10_000_000) m ~input ~choices =
  let c = ref (initial_config m input) in
  let steps = ref 0 in
  let result = ref None in
  while !result = None do
    if is_final m !c then
      result := Some (if is_accepting m !c then Accepted else Rejected)
    else if !steps >= fuel then result := Some Out_of_fuel
    else begin
      match enabled m !c with
      | [] -> result := Some Stuck
      | trs ->
          let k = List.length trs in
          let pick = ((choices !steps mod k) + k) mod k in
          c := apply m !c (List.nth trs pick);
          incr steps
    end
  done;
  stats_of m !steps (Option.get !result) !c

let run_deterministic ?fuel m ~input = run ?fuel m ~input ~choices:(fun _ -> 0)

let max_branching m =
  Hashtbl.fold (fun _ trs acc -> max acc (List.length trs)) m.delta 1

let tape_contents m c i =
  let raw = Bytes.sub_string c.tapes.(i) 0 (min c.used.(i) (Bytes.length c.tapes.(i))) in
  let last = ref (String.length raw) in
  while !last > 0 && raw.[!last - 1] = m.blank do
    decr last
  done;
  String.sub raw 0 !last
