open Machine

let pair_equality () =
  let b = Build.make ~name:"pair-equality" ~ext:2 ~int_:0 ~alphabet:"01#^" () in
  let init = Build.state b "init" in
  let copy = Build.state b "copy" in
  let advance = Build.state b "advance" in
  let rewind = Build.state b "rewind" in
  let compare_ = Build.state b "compare" in
  let step2 = Build.state b "step2" in
  let acc = Build.state b ~final:true ~accepting:true "accept" in
  let rej = Build.state b ~final:true "reject" in
  (* init: plant the start marker on tape 2 *)
  Build.on' b ~from:init ~reads:"?_" ~to_:copy ~writes:"?^" ~moves:[ Stay; Right ];
  (* copy v1 to tape 2, one cell per two steps (normalized) *)
  List.iter
    (fun c ->
      let cs = String.make 1 c in
      Build.on' b ~from:copy ~reads:(cs ^ "_") ~to_:advance ~writes:(cs ^ cs)
        ~moves:[ Stay; Right ];
      Build.on' b ~from:advance ~reads:(cs ^ "_") ~to_:copy ~writes:"??"
        ~moves:[ Right; Stay ])
    [ '0'; '1' ];
  (* '#' ends v1: move past it, start rewinding tape 2 *)
  Build.on' b ~from:copy ~reads:"#_" ~to_:rewind ~writes:"??" ~moves:[ Right; Stay ];
  (* rewind tape 2 to the marker *)
  List.iter
    (fun r ->
      Build.on' b ~from:rewind ~reads:r ~to_:rewind ~writes:"??" ~moves:[ Stay; Left ])
    [ "?0"; "?1"; "?_" ];
  Build.on' b ~from:rewind ~reads:"?^" ~to_:compare_ ~writes:"??" ~moves:[ Stay; Right ];
  (* compare v2 (tape 1) against the copy (tape 2) *)
  List.iter
    (fun c ->
      let cs = String.make 1 c in
      Build.on' b ~from:compare_ ~reads:(cs ^ cs) ~to_:step2 ~writes:"??"
        ~moves:[ Right; Stay ])
    [ '0'; '1' ];
  Build.on' b ~from:step2 ~reads:"??" ~to_:compare_ ~writes:"??" ~moves:[ Stay; Right ];
  Build.on' b ~from:compare_ ~reads:"#_" ~to_:acc ~writes:"??" ~moves:[ Stay; Stay ];
  List.iter
    (fun r ->
      Build.on' b ~from:compare_ ~reads:r ~to_:rej ~writes:"??" ~moves:[ Stay; Stay ])
    [ "01"; "10"; "0_"; "1_"; "#0"; "#1" ];
  Build.build b

let coin () =
  let b = Build.make ~name:"coin" ~ext:1 ~int_:0 ~alphabet:"01#" () in
  let s0 = Build.state b "toss" in
  let acc = Build.state b ~final:true ~accepting:true "accept" in
  let rej = Build.state b ~final:true "reject" in
  Build.on' b ~from:s0 ~reads:"?" ~to_:acc ~writes:"?" ~moves:[ Stay ];
  Build.on' b ~from:s0 ~reads:"?" ~to_:rej ~writes:"?" ~moves:[ Stay ];
  Build.build b

let parity_ones () =
  (* '#' separators are skipped so the machine also runs on the
     v1#...#vm# framing the simulation lemma uses *)
  let b = Build.make ~name:"parity-ones" ~ext:1 ~int_:0 ~alphabet:"01#" () in
  let even = Build.state b "even" in
  let odd = Build.state b "odd" in
  let acc = Build.state b ~final:true ~accepting:true "accept" in
  let rej = Build.state b ~final:true "reject" in
  Build.on' b ~from:even ~reads:"0" ~to_:even ~writes:"?" ~moves:[ Right ];
  Build.on' b ~from:even ~reads:"1" ~to_:odd ~writes:"?" ~moves:[ Right ];
  Build.on' b ~from:even ~reads:"#" ~to_:even ~writes:"?" ~moves:[ Right ];
  Build.on' b ~from:odd ~reads:"0" ~to_:odd ~writes:"?" ~moves:[ Right ];
  Build.on' b ~from:odd ~reads:"1" ~to_:even ~writes:"?" ~moves:[ Right ];
  Build.on' b ~from:odd ~reads:"#" ~to_:odd ~writes:"?" ~moves:[ Right ];
  Build.on' b ~from:even ~reads:"_" ~to_:acc ~writes:"?" ~moves:[ Stay ];
  Build.on' b ~from:odd ~reads:"_" ~to_:rej ~writes:"?" ~moves:[ Stay ];
  Build.build b

let nondet_find_one () =
  let b = Build.make ~name:"nondet-find-one" ~ext:1 ~int_:0 ~alphabet:"01#" () in
  let scan = Build.state b "scan" in
  let acc = Build.state b ~final:true ~accepting:true "accept" in
  let rej = Build.state b ~final:true "reject" in
  Build.on' b ~from:scan ~reads:"0" ~to_:scan ~writes:"?" ~moves:[ Right ];
  Build.on' b ~from:scan ~reads:"#" ~to_:scan ~writes:"?" ~moves:[ Right ];
  Build.on' b ~from:scan ~reads:"1" ~to_:acc ~writes:"?" ~moves:[ Stay ];
  Build.on' b ~from:scan ~reads:"1" ~to_:scan ~writes:"?" ~moves:[ Right ];
  Build.on' b ~from:scan ~reads:"_" ~to_:rej ~writes:"?" ~moves:[ Stay ];
  Build.build b

let ones_mod4 () =
  let b = Build.make ~name:"ones-mod4" ~ext:1 ~int_:1 ~alphabet:"01#^" () in
  let init = Build.state b "init" in
  let scan = Build.state b "scan" in
  let inc = Build.state b "inc" in
  let rewind = Build.state b "rewind" in
  let consume = Build.state b "consume" in
  let chk1 = Build.state b "chk1" in
  let chk2 = Build.state b "chk2" in
  let acc = Build.state b ~final:true ~accepting:true "accept" in
  let rej = Build.state b ~final:true "reject" in
  (* plant the counter marker; head 2 rests on bit 0 afterwards *)
  Build.on' b ~from:init ~reads:"?_" ~to_:scan ~writes:"?^" ~moves:[ Stay; Right ];
  (* scan: invariant - head 2 sits on counter bit 0 *)
  Build.on' b ~from:scan ~reads:"0?" ~to_:scan ~writes:"??" ~moves:[ Right; Stay ];
  Build.on' b ~from:scan ~reads:"#?" ~to_:scan ~writes:"??" ~moves:[ Right; Stay ];
  Build.on' b ~from:scan ~reads:"1?" ~to_:inc ~writes:"??" ~moves:[ Stay; Stay ];
  (* binary increment with carry propagation *)
  Build.on' b ~from:inc ~reads:"10" ~to_:rewind ~writes:"11" ~moves:[ Stay; Stay ];
  Build.on' b ~from:inc ~reads:"1_" ~to_:rewind ~writes:"11" ~moves:[ Stay; Stay ];
  Build.on' b ~from:inc ~reads:"11" ~to_:inc ~writes:"10" ~moves:[ Stay; Right ];
  (* return the counter head to bit 0, then consume the input 1 *)
  List.iter
    (fun r ->
      Build.on' b ~from:rewind ~reads:r ~to_:rewind ~writes:"??" ~moves:[ Stay; Left ])
    [ "10"; "11"; "1_" ];
  Build.on' b ~from:rewind ~reads:"1^" ~to_:consume ~writes:"??" ~moves:[ Stay; Right ];
  Build.on' b ~from:consume ~reads:"1?" ~to_:scan ~writes:"??" ~moves:[ Right; Stay ];
  (* end of input: the two lowest counter bits decide mod 4 *)
  Build.on' b ~from:scan ~reads:"_?" ~to_:chk1 ~writes:"??" ~moves:[ Stay; Stay ];
  Build.on' b ~from:chk1 ~reads:"_1" ~to_:rej ~writes:"??" ~moves:[ Stay; Stay ];
  Build.on' b ~from:chk1 ~reads:"__" ~to_:acc ~writes:"??" ~moves:[ Stay; Stay ];
  Build.on' b ~from:chk1 ~reads:"_0" ~to_:chk2 ~writes:"??" ~moves:[ Stay; Right ];
  Build.on' b ~from:chk2 ~reads:"_1" ~to_:rej ~writes:"??" ~moves:[ Stay; Stay ];
  Build.on' b ~from:chk2 ~reads:"_0" ~to_:acc ~writes:"??" ~moves:[ Stay; Stay ];
  Build.on' b ~from:chk2 ~reads:"__" ~to_:acc ~writes:"??" ~moves:[ Stay; Stay ];
  Build.build b

let copy_to_internal () =
  let b = Build.make ~name:"copy-to-internal" ~ext:1 ~int_:1 ~alphabet:"01" () in
  let copy = Build.state b "copy" in
  let advance = Build.state b "advance" in
  let acc = Build.state b ~final:true ~accepting:true "accept" in
  List.iter
    (fun c ->
      let cs = String.make 1 c in
      Build.on' b ~from:copy ~reads:(cs ^ "_") ~to_:advance ~writes:(cs ^ cs)
        ~moves:[ Stay; Right ];
      Build.on' b ~from:advance ~reads:(cs ^ "_") ~to_:copy ~writes:"??"
        ~moves:[ Right; Stay ])
    [ '0'; '1' ];
  Build.on' b ~from:copy ~reads:"__" ~to_:acc ~writes:"??" ~moves:[ Stay; Stay ];
  Build.build b
