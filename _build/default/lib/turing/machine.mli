(** Multi-tape nondeterministic Turing machines (Definition 23).

    A machine has [t] external-memory tapes ([ext]) — tape 1 is the
    input tape — and [u] internal-memory tapes ([int_]). All tapes are
    one-sided infinite with 0-based cells (the paper numbers them from
    1; only relative positions matter). The resources of Definition 1
    are tracked per run: [rev(ρ,i)] head-direction changes on each
    external tape and [space(ρ,i)] cells used on each internal tape.

    Nondeterminism follows Definition 17: a run is a deterministic
    function of the input and a sequence of {e choice numbers}; in step
    [i] the machine takes the [(c_i mod |Next(γ)|)]-th enabled
    transition. Uniformly random choice numbers induce exactly the
    randomized semantics of Section 2 (Lemma 18). *)

type move = Left | Stay | Right

type transition = {
  next_state : int;
  writes : string;  (** one written symbol per tape, length [ext + int_] *)
  moves : move array;  (** one move per tape, length [ext + int_] *)
}

type t = private {
  name : string;
  num_states : int;
  state_names : string array;
  start : int;
  final : bool array;  (** [F] *)
  accepting : bool array;  (** [F_acc ⊆ F] *)
  blank : char;
  ext : int;
  int_ : int;
  delta : (int * string, transition list) Hashtbl.t;
      (** keyed by (state, read symbols as a string of length
          [ext + int_]); the list order fixes the numbering used by
          choice numbers. *)
}

val create :
  name:string ->
  state_names:string array ->
  start:int ->
  final:bool array ->
  accepting:bool array ->
  ?blank:char ->
  ext:int ->
  int_:int ->
  (int * string * transition) list ->
  t
(** [create ... transitions] builds and validates a machine: state
    indices in range, [accepting ⊆ final], no transitions out of final
    states, writes/moves arity [ext + int_], [ext ≥ 1].
    @raise Invalid_argument on any violation. *)

val is_normalized : t -> bool
(** Whether every transition moves at most one head (the paper's
    normalization assumption). *)

val normalize : t -> t
(** An equivalent machine moving at most one head per step: each
    transition with [k > 1] moving heads is serialized through [k − 1]
    fresh intermediate states (writes happen in the first sub-step;
    heads then move one per sub-step, external tapes first). Acceptance,
    per-tape reversal counts and per-tape space usage are preserved. *)

(** {1 Configurations and runs} *)

type config
(** A machine configuration: state, tape contents, head positions, plus
    reversal/space accounting accumulated since the initial
    configuration. *)

val initial_config : t -> string -> config
(** Input written on tape 1 from cell 0; all heads at 0. *)

val config_state : config -> int
val is_final : t -> config -> bool
val is_accepting : t -> config -> bool

val head_position : config -> int -> int
(** Head position on tape [i] (0-based tape index, 0-based cell). *)

val head_direction : config -> int -> int
(** Direction ([+1]/[-1]) of the most recent movement of head [i]
    ([+1] initially). *)

val enabled : t -> config -> transition list
(** [Next_T(γ)] as a list; empty for final or stuck configurations. *)

val apply : t -> config -> transition -> config
(** One step; the configuration is copied, accounting updated. *)

type outcome = Accepted | Rejected | Stuck | Out_of_fuel

type run_stats = {
  outcome : outcome;
  steps : int;
  ext_reversals : int array;  (** per external tape *)
  ext_space : int array;  (** cells used per external tape *)
  int_space : int array;  (** cells used per internal tape *)
  final_config : config;
}

val scans : run_stats -> int
(** [1 + Σ_i rev(ρ, i)] over external tapes — the paper's [r(N)]
    usage (footnote 1). *)

val total_int_space : run_stats -> int
(** [Σ_i space(ρ, i)] over internal tapes — the paper's [s(N)] usage. *)

val run : ?fuel:int -> t -> input:string -> choices:(int -> int) -> run_stats
(** [run m ~input ~choices] executes [ρ_T(input, c)] (Definition 17):
    step [i] (0-based) takes the [(choices i mod |Next|)]-th enabled
    transition. [fuel] (default [10_000_000]) bounds the step count;
    exceeding it yields [Out_of_fuel]. *)

val run_deterministic : ?fuel:int -> t -> input:string -> run_stats
(** [run] with all choice numbers 0 — the unique run when the machine is
    deterministic. *)

val max_branching : t -> int
(** [b = max |Next_T(γ)|], computed from the transition table (the
    largest transition-list length; at least 1). Definition 17 sets
    [C_T = {1,..,lcm(1..b)}]. *)

val tape_contents : t -> config -> int -> string
(** Contents of tape [i] (0-based tape index) up to the last used cell,
    with trailing blanks trimmed. *)
