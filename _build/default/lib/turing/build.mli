(** A small DSL for constructing Turing machines.

    Transition tables written by hand are dominated by boilerplate: most
    steps read "any symbol" on most tapes and write back what they read.
    The builder expands two wildcard conventions against a declared
    alphabet:

    - in [reads], the character ['?'] matches every alphabet symbol
      (one concrete transition is emitted per match);
    - in [writes], the character ['?'] writes back the symbol that was
      read on that tape in the same step.

    Declared states receive indices in declaration order; the first
    declared state is the start state. *)

type b

val make : name:string -> ext:int -> int_:int -> ?blank:char -> alphabet:string -> unit -> b
(** [alphabet] lists the non-blank symbols; the blank (default ['_'])
    is always part of the wildcard expansion. *)

val state : b -> ?final:bool -> ?accepting:bool -> string -> int
(** Declare a state and return its index.
    @raise Invalid_argument on duplicate names or [accepting] without
    [final]. *)

val on :
  b -> from:int -> reads:string -> to_:int -> writes:string ->
  moves:Machine.move array -> unit
(** Add transitions for every wildcard expansion of [reads]. Several
    [on] entries from the same [(state, reads)] make the machine
    nondeterministic there, numbered in declaration order. *)

val on' :
  b -> from:int -> reads:string -> to_:int -> writes:string ->
  moves:Machine.move list -> unit
(** [on] with a list of moves, saving an [\[| ... |\]]. *)

val build : b -> Machine.t
(** Finalize. @raise Invalid_argument if no state was declared or the
    underlying machine fails validation. *)
