(** ASCII rendering of Turing machine configurations and runs. *)

val config_to_string : Machine.t -> Machine.config -> string
(** One line per tape: contents with the head cell bracketed, e.g.
    {v tape 1 (ext): 0 1 [1] 0 #   state=compare v}
    External tapes are listed first, then internal ones. *)

val run_to_string :
  ?max_steps:int -> Machine.t -> input:string -> choices:(int -> int) -> string
(** Step-by-step run rendering (configurations after each step), elided
    after [max_steps] (default 30), ending with the outcome and the
    measured resources. *)
