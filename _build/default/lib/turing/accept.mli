(** Acceptance probability and resource-bound checking for NTMs.

    Randomized semantics (Section 2): each step picks a uniformly random
    element of [Next_T(γ)]; [Pr(T accepts w)] is the total probability of
    accepting runs. {!exact_probability} computes it by exhaustive
    exploration of the run tree (exponential — for the small machines of
    the test suite); {!estimate_probability} samples runs (Lemma 18:
    uniformly random choice numbers induce the same distribution).

    Definition 1's [(r,s,t)]-boundedness is checked per run by
    {!check_bounded}; Lemma 3's run-length bound is {!lemma3_bound}. *)

type prob_stats = {
  probability : float;
  runs_explored : int;
  max_steps : int;  (** longest run seen *)
}

val exact_probability : ?fuel:int -> Machine.t -> input:string -> prob_stats
(** Exhaustive weighted exploration. [fuel] (default 100_000) bounds the
    total number of configurations expanded.
    @raise Failure if the fuel is exhausted or a run gets stuck (stuck
    runs have no probability semantics in the paper's model). *)

val estimate_probability :
  Random.State.t -> ?samples:int -> ?fuel:int -> Machine.t -> input:string -> float
(** Monte-Carlo estimate over [samples] (default 1000) sampled runs. *)

type bound_report = {
  scans_used : int;
  int_space_used : int;
  within : bool;
}

val check_bounded :
  r:(int -> int) -> s:(int -> int) -> Machine.t -> input:string ->
  choices:(int -> int) -> bound_report
(** Run [ρ_T(input, c)] and check Definition 1:
    [1 + Σ rev ≤ r(N)] on external tapes and [Σ space ≤ s(N)] on
    internal tapes, for [N] the input length. *)

val one_sided_monte_carlo :
  Random.State.t -> ?samples:int -> Machine.t ->
  positives:string list -> negatives:string list ->
  [ `Ok | `False_positive of string | `Low_acceptance of string * float ]
(** Empirical check of the [(½,0)]-RTM contract (Section 2): no
    accepting run may exist on a negative instance (checked by
    sampling), and positives must accept with probability ≥ ½
    (estimated; flagged below 0.45 to allow sampling noise). *)

val lemma3_bound : n:int -> r:int -> s:int -> t:int -> c:int -> float
(** The Lemma 3 bound [N · 2^{c·r·(t+s)}] on run length and external
    space, as a float (it overflows quickly). *)
