(** Concrete Turing machines used by tests, examples, and the
    simulation-lemma experiments (E7).

    All machines are normalized (at most one head moves per step) so
    they can be fed to the list-machine simulation directly. *)

val pair_equality : unit -> Machine.t
(** Input [v1#v2#] over [{0,1,#}]; accepts iff [v1 = v2]. Deterministic,
    two external tapes, no internal tapes; copies [v1] to tape 2 behind
    a start marker, rewinds tape 2, then compares. [(3, O(1), 2)]-bounded:
    tape 1 never reverses, tape 2 reverses twice. *)

val coin : unit -> Machine.t
(** One nondeterministic step: accepts with probability exactly 1/2 on
    any input. *)

val parity_ones : unit -> Machine.t
(** Accepts iff the input contains an even number of [1]s ([#]
    separators are skipped, so the machine also runs on the
    [v1#…#vm#] framing of the simulation lemma). Deterministic, one
    external tape, one scan. *)

val nondet_find_one : unit -> Machine.t
(** Scans right (skipping [#]); on each ['1'] nondeterministically
    accepts or continues; rejects at the end. Accepts some run iff the
    input contains a ['1']; on an input with [k] ones the acceptance
    probability is [1 − 2^{-k}]. *)

val copy_to_internal : unit -> Machine.t
(** Copies the [{0,1}]-input onto its internal tape and accepts:
    exercises internal-space accounting ([space = n + 1] on input
    length [n]). One external, one internal tape. *)

val ones_mod4 : unit -> Machine.t
(** Accepts iff the number of [1]s in the input (over [{0,1,#}], [#]
    skipped) is divisible by 4, by maintaining a binary counter on its
    internal tape (LSB first behind a [^] marker). One scan of the
    external tape; internal space [O(log n)] — a machine that genuinely
    {e uses} sublinear internal memory, unlike the toy copies. *)
