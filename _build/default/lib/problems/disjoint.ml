module B = Util.Bitstring

let decide inst =
  let xs = Instance.xs inst and ys = Instance.ys inst in
  let tbl = Hashtbl.create (Array.length xs) in
  Array.iter (fun v -> Hashtbl.replace tbl (B.to_string v) ()) xs;
  not (Array.exists (fun v -> Hashtbl.mem tbl (B.to_string v)) ys)

let yes_instance st ~m ~n =
  if n < 1 then invalid_arg "Disjoint.yes_instance: n >= 1";
  (* top bit 0 on the left half, 1 on the right: disjoint by construction *)
  let tagged bit =
    Array.init m (fun _ ->
        B.concat [ B.of_int ~width:1 bit; B.random st ~width:(n - 1) ])
  in
  Instance.make (tagged 0) (tagged 1)

let no_instance st ~m ~n =
  if m < 1 || n < 1 then invalid_arg "Disjoint.no_instance: m, n >= 1";
  let base = yes_instance st ~m ~n in
  let ys = Instance.ys base in
  (* plant one shared value *)
  ys.(Random.State.int st m) <- Instance.x base (1 + Random.State.int st m);
  Instance.make (Instance.xs base) ys

let labelled st ~m ~n =
  if Random.State.bool st then (yes_instance st ~m ~n, true)
  else (no_instance st ~m ~n, false)

let compose_halves v w =
  if Instance.m v <> Instance.m w then
    invalid_arg "Disjoint.compose_halves: m mismatch";
  Instance.make (Instance.xs v) (Instance.ys w)

let composition_preserves_yes st ~problem ~m ~n ~trials =
  let draw_yes () =
    match problem with
    | `Disjoint -> yes_instance st ~m ~n
    | `Checkphi space -> Generators.Checkphi.yes st space
  in
  let is_yes inst =
    match problem with
    | `Disjoint -> decide inst
    | `Checkphi space -> Generators.Checkphi.is_yes space inst
  in
  let preserved = ref 0 in
  let done_ = ref 0 in
  while !done_ < trials do
    let v = draw_yes () and w = draw_yes () in
    if not (Instance.equal v w) then begin
      incr done_;
      if is_yes (compose_halves v w) then incr preserved
    end
  done;
  !preserved
