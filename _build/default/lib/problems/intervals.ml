module B = Util.Bitstring

type t = { m : int; n : int; log2m : int }

let ceil_log2 m =
  let rec go acc x = if x <= 1 then acc else go (acc + 1) ((x + 1) / 2) in
  go 0 m

let make ~m ~n =
  if m < 1 || m land (m - 1) <> 0 then
    invalid_arg "Intervals.make: m must be a positive power of two";
  let log2m = ceil_log2 m in
  if n < log2m then invalid_arg "Intervals.make: n < log2 m";
  { m; n; log2m }

let m p = p.m
let n p = p.n
let log2m p = p.log2m

let index_of p v =
  if B.length v <> p.n then invalid_arg "Intervals.index_of: wrong length";
  if p.log2m = 0 then 1
  else B.to_int (B.sub v ~pos:0 ~len:p.log2m) + 1

let mem p j v = index_of p v = j

let check_j p j =
  if j < 1 || j > p.m then invalid_arg "Intervals: interval index out of range"

let random_element st p j =
  check_j p j;
  let top = B.of_int ~width:p.log2m (j - 1) in
  let rest = B.random st ~width:(p.n - p.log2m) in
  B.concat [ top; rest ]

let min_element p j =
  check_j p j;
  let top = B.of_int ~width:p.log2m (j - 1) in
  B.concat [ top; B.zero ~width:(p.n - p.log2m) ]
