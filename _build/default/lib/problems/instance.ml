module B = Util.Bitstring

type t = { xs : B.t array; ys : B.t array }

let make xs ys =
  if Array.length xs <> Array.length ys then
    invalid_arg "Instance.make: halves differ in length";
  { xs = Array.copy xs; ys = Array.copy ys }

let xs t = Array.copy t.xs
let ys t = Array.copy t.ys

let x t i =
  if i < 1 || i > Array.length t.xs then invalid_arg "Instance.x";
  t.xs.(i - 1)

let y t i =
  if i < 1 || i > Array.length t.ys then invalid_arg "Instance.y";
  t.ys.(i - 1)

let m t = Array.length t.xs

let size t =
  let half = Array.fold_left (fun acc v -> acc + B.length v + 1) 0 in
  half t.xs + half t.ys

let uniform_length t =
  if Array.length t.xs = 0 then Some 0
  else begin
    let n = B.length t.xs.(0) in
    let same = Array.for_all (fun v -> B.length v = n) in
    if same t.xs && same t.ys then Some n else None
  end

let encode t =
  let buf = Buffer.create (size t) in
  let emit v =
    Buffer.add_string buf (B.to_string v);
    Buffer.add_char buf '#'
  in
  Array.iter emit t.xs;
  Array.iter emit t.ys;
  Buffer.contents buf

let decode w =
  String.iter
    (fun c ->
      if c <> '0' && c <> '1' && c <> '#' then
        invalid_arg (Printf.sprintf "Instance.decode: bad char %C" c))
    w;
  if String.length w > 0 && w.[String.length w - 1] <> '#' then
    invalid_arg "Instance.decode: missing trailing #";
  let parts =
    if w = "" then []
    else String.split_on_char '#' (String.sub w 0 (String.length w - 1))
  in
  let strings = List.map B.of_string parts in
  let total = List.length strings in
  if total mod 2 <> 0 then invalid_arg "Instance.decode: odd number of strings";
  let half = total / 2 in
  let arr = Array.of_list strings in
  { xs = Array.sub arr 0 half; ys = Array.sub arr half half }

let equal a b =
  Array.length a.xs = Array.length b.xs
  && Array.for_all2 B.equal a.xs b.xs
  && Array.for_all2 B.equal a.ys b.ys

let pp ppf t = Format.pp_print_string ppf (encode t)
