(** The DISJOINT-SETS problem — the paper's explicitly open case
    (Section 9).

    {v DISJOINT-SETS: given v1#…#vm#v'1#…#v'm#,
       decide whether {v1,..,vm} ∩ {v'1,..,v'm} = ∅ v}

    The paper could not prove an RST lower bound for it even though it
    "looks very similar to the set equality problem". This module makes
    the problem — and the {e reason the Lemma 21 proof breaks} —
    concrete. The adversary's decisive step composes the halves of two
    accepted yes-instances that differ at an uncompared pair; for
    CHECK-ϕ this {e creates} a mismatch (a no-instance), but for
    DISJOINT-SETS yes-ness means "everything already differs", and
    crossing halves of two disjoint instances almost never manufactures
    the required {e equality}. {!composition_preserves_yes} measures
    that collapse; experiment E13 tabulates it against CHECK-ϕ. *)

val decide : Instance.t -> bool
(** [true] iff the two halves are disjoint as sets. *)

val yes_instance : Random.State.t -> m:int -> n:int -> Instance.t
(** Random disjoint instance (halves separated by the top value bit).
    Requires [n ≥ 1]. *)

val no_instance : Random.State.t -> m:int -> n:int -> Instance.t
(** Random intersecting instance (one shared value planted). Requires
    [m ≥ 1], [n ≥ 1]. *)

val labelled : Random.State.t -> m:int -> n:int -> Instance.t * bool

val compose_halves : Instance.t -> Instance.t -> Instance.t
(** [compose_halves v w] is the adversary's crossing step: the
    x-half of [v] with the y-half of [w].
    @raise Invalid_argument if the instances have different [m]. *)

val composition_preserves_yes :
  Random.State.t -> problem:[ `Disjoint | `Checkphi of Generators.Checkphi.space ] ->
  m:int -> n:int -> trials:int -> int
(** Draw [trials] pairs of {e distinct} random yes-instances of the
    problem, cross their halves, and count how many compositions are
    {e still} yes-instances. For CHECK-ϕ the count is 0 (crossing
    different witnesses always breaks a pair — this is what hands the
    adversary its fooling input); for DISJOINT-SETS it is essentially
    [trials] (crossing disjoint halves stays disjoint), which is why
    the same pipeline cannot refute a disjointness verifier. *)
