(** Reference deciders for the four decision problems (Section 3 and
    Lemma 22).

    These are straightforward in-memory implementations used as ground
    truth: every resource-bounded algorithm in the repository is checked
    against them. *)

val set_equality : Instance.t -> bool
(** [{v_1..v_m} = {v'_1..v'_m}] as sets. *)

val multiset_equality : Instance.t -> bool
(** Equality as multisets (same elements with multiplicities). *)

val check_sort : Instance.t -> bool
(** [(v'_1..v'_m)] is the lexicographically ascending sorted version of
    [(v_1..v_m)] — i.e. the multisets agree and the second list is
    sorted. *)

val check_phi : phi:Util.Permutation.t -> Instance.t -> bool
(** The CHECK-ϕ problem of Lemma 22:
    [(v_1,..,v_m) = (v'_ϕ(1),..,v'_ϕ(m))].
    @raise Invalid_argument if [size phi] differs from the instance's
    [m]. *)

type problem = Set_equality | Multiset_equality | Check_sort

val decide : problem -> Instance.t -> bool
val problem_name : problem -> string
val all_problems : problem list
