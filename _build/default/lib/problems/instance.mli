(** Input instances of the paper's decision problems (Section 3).

    All three problems — SET-EQUALITY, MULTISET-EQUALITY, CHECK-SORT —
    share the instance format

    {v v1# v2# ... vm# v'1# v'2# ... v'm# v}

    over the alphabet [{0,1,#}], where [m ≥ 0] and each [v_i], [v'_i] is
    a bit string. The input size is [N = 2m + Σ (|v_i| + |v'_i|)]; when
    all strings have the same length [n], [N = 2m(n+1)]. *)

type t
(** An instance: the two lists [(v_1..v_m)] and [(v'_1..v'_m)]. *)

val make : Util.Bitstring.t array -> Util.Bitstring.t array -> t
(** [make xs ys].
    @raise Invalid_argument if the arrays have different lengths. *)

val xs : t -> Util.Bitstring.t array
(** The first list [(v_1..v_m)]; fresh copy. *)

val ys : t -> Util.Bitstring.t array
(** The second list [(v'_1..v'_m)]; fresh copy. *)

val x : t -> int -> Util.Bitstring.t
(** [x inst i] is [v_i], 1-based. @raise Invalid_argument out of range. *)

val y : t -> int -> Util.Bitstring.t
(** [y inst i] is [v'_i], 1-based. *)

val m : t -> int
(** Number of strings per half. *)

val size : t -> int
(** The paper's [N = 2m + Σ(|v_i| + |v'_i|)]. *)

val uniform_length : t -> int option
(** [Some n] when all [2m] strings have length [n] (vacuously the common
    length [0] when [m = 0]); [None] otherwise. *)

val encode : t -> string
(** The [{0,1,#}] word [v1#...vm#v'1#...v'm#]. [String.length] of the
    result equals {!size}. *)

val decode : string -> t
(** Inverse of {!encode}.
    @raise Invalid_argument if the word is not well-formed (characters
    outside [{0,1,#}], missing trailing [#], or an odd number of
    strings). *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
