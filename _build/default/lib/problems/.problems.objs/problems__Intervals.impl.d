lib/problems/intervals.ml: Util
