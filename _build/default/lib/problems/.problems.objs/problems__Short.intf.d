lib/problems/short.mli: Instance Util
