lib/problems/decide.mli: Instance Util
