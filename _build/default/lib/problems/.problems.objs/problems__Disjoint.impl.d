lib/problems/disjoint.ml: Array Generators Hashtbl Instance Random Util
