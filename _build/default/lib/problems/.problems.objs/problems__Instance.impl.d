lib/problems/instance.ml: Array Buffer Format List Printf String Util
