lib/problems/intervals.mli: Random Util
