lib/problems/instance.mli: Format Util
