lib/problems/short.ml: Array Instance List Util
