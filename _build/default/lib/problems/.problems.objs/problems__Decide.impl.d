lib/problems/decide.ml: Array Instance List Util
