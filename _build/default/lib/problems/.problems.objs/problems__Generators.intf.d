lib/problems/generators.mli: Decide Instance Intervals Random Util
