lib/problems/disjoint.mli: Generators Instance Random
