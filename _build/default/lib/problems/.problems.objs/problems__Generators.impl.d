lib/problems/generators.ml: Array Bytes Decide Instance Intervals Random Util
