module B = Util.Bitstring

let sorted_copy a =
  let c = Array.copy a in
  Array.sort B.compare c;
  c

let multiset_equality inst =
  let xs = sorted_copy (Instance.xs inst) in
  let ys = sorted_copy (Instance.ys inst) in
  Array.length xs = Array.length ys && Array.for_all2 B.equal xs ys

let dedup_sorted a =
  (* distinct elements of an already-sorted array *)
  let out = ref [] in
  Array.iter
    (fun v ->
      match !out with
      | w :: _ when B.equal v w -> ()
      | _ -> out := v :: !out)
    a;
  Array.of_list (List.rev !out)

let set_equality inst =
  let xs = dedup_sorted (sorted_copy (Instance.xs inst)) in
  let ys = dedup_sorted (sorted_copy (Instance.ys inst)) in
  Array.length xs = Array.length ys && Array.for_all2 B.equal xs ys

let is_sorted a =
  let ok = ref true in
  for i = 0 to Array.length a - 2 do
    if B.compare a.(i) a.(i + 1) > 0 then ok := false
  done;
  !ok

let check_sort inst =
  is_sorted (Instance.ys inst) && multiset_equality inst

let check_phi ~phi inst =
  let m = Instance.m inst in
  if Util.Permutation.size phi <> m then
    invalid_arg "Decide.check_phi: permutation size mismatch";
  let ok = ref true in
  for i = 1 to m do
    if not (B.equal (Instance.x inst i) (Instance.y inst (Util.Permutation.apply phi i)))
    then ok := false
  done;
  !ok

type problem = Set_equality | Multiset_equality | Check_sort

let decide = function
  | Set_equality -> set_equality
  | Multiset_equality -> multiset_equality
  | Check_sort -> check_sort

let problem_name = function
  | Set_equality -> "SET-EQUALITY"
  | Multiset_equality -> "MULTISET-EQUALITY"
  | Check_sort -> "CHECK-SORT"

let all_problems = [ Set_equality; Multiset_equality; Check_sort ]
