(** The interval partition of [{0,1}^n] used by the hard instances.

    Lemma 21 identifies [I = {0,1}^n] with [{0,..,2^n − 1}] and divides
    it into [m] consecutive intervals [I_1,..,I_m], each of length
    [2^n / m]. For [m] a power of two this is equivalent to: [v ∈ I_j]
    iff the top [log2 m] bits of [v] encode [j − 1]. That formulation
    works for any [n ≥ log2 m], including the [n = m³] regime of
    Lemma 22 where values far exceed native integers. *)

type t
(** The partition determined by [(m, n)]. *)

val make : m:int -> n:int -> t
(** @raise Invalid_argument unless [m] is a positive power of two and
    [n ≥ log2 m]. *)

val m : t -> int
val n : t -> int
val log2m : t -> int

val index_of : t -> Util.Bitstring.t -> int
(** [index_of p v] is the [j ∈ {1,..,m}] with [v ∈ I_j].
    @raise Invalid_argument if [length v ≠ n]. *)

val mem : t -> int -> Util.Bitstring.t -> bool
(** [mem p j v] iff [v ∈ I_j]. *)

val random_element : Random.State.t -> t -> int -> Util.Bitstring.t
(** [random_element st p j] is uniform over [I_j]: top bits fixed to
    [j − 1], remaining [n − log2 m] bits uniform.
    @raise Invalid_argument if [j ∉ {1,..,m}]. *)

val min_element : t -> int -> Util.Bitstring.t
(** The smallest string of [I_j]. *)
