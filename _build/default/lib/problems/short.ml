module B = Util.Bitstring
module P = Util.Permutation

let exact_log2 m =
  let rec go acc x = if x <= 1 then acc else go (acc + 1) (x lsr 1) in
  if m < 1 || m land (m - 1) <> 0 then None else Some (go 0 m)

let block_length ~m =
  match exact_log2 m with
  | Some lg when lg >= 1 -> 5 * lg
  | Some _ | None -> invalid_arg "Short.block_length: m must be a power of two >= 2"

let blocks_per_string ~m ~n =
  match exact_log2 m with
  | Some lg when lg >= 1 -> (n + lg - 1) / lg
  | Some _ | None ->
      invalid_arg "Short.blocks_per_string: m must be a power of two >= 2"

let pad_to v ~len =
  (* pad with leading zeroes, as the paper pads the last sub-block *)
  let short = len - B.length v in
  if short < 0 then invalid_arg "Short.pad_to"
  else if short = 0 then v
  else B.concat [ B.zero ~width:short; v ]

let split_blocks v ~lg ~mu =
  let padded = pad_to v ~len:(lg * mu) in
  Array.init mu (fun j -> B.sub padded ~pos:(j * lg) ~len:lg)

let reduce ~phi inst =
  let m = Instance.m inst in
  if P.size phi <> m then invalid_arg "Short.reduce: phi size mismatch";
  let lg =
    match exact_log2 m with
    | Some lg when lg >= 1 -> lg
    | Some _ | None -> invalid_arg "Short.reduce: m must be a power of two >= 2"
  in
  let n =
    match Instance.uniform_length inst with
    | Some n when n >= 1 -> n
    | Some _ -> invalid_arg "Short.reduce: strings must be nonempty"
    | None -> invalid_arg "Short.reduce: strings must have uniform length"
  in
  let mu = (n + lg - 1) / lg in
  if mu > m * m * m then invalid_arg "Short.reduce: mu > m^3, BIN' overflows";
  let bin i = B.of_int ~width:lg (i - 1) in
  let bin' j = B.of_int ~width:(3 * lg) (j - 1) in
  let half header strings =
    (* block (i, j) at output index (i-1)·µ + (j-1) *)
    Array.concat
      (List.init m (fun i0 ->
           let blocks = split_blocks strings.(i0) ~lg ~mu in
           Array.mapi
             (fun j0 blk -> B.concat [ header (i0 + 1); bin' (j0 + 1); blk ])
             blocks))
  in
  let xs = half (fun i -> bin (P.apply phi i)) (Instance.xs inst) in
  let ys = half bin (Instance.ys inst) in
  Instance.make xs ys

let is_short ~c inst =
  let m' = Instance.m inst in
  if m' = 0 then true
  else begin
    let bound =
      let lg = int_of_float (ceil (log (float_of_int m') /. log 2.0)) in
      c * max 1 lg
    in
    let ok = Array.for_all (fun v -> B.length v <= bound) in
    ok (Instance.xs inst) && ok (Instance.ys inst)
  end
