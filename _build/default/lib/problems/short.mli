(** SHORT problem versions and the Corollary 7 reduction (Appendix E).

    The SHORT versions restrict instances to strings of length at most
    [c·log m'] for a constant [c ≥ 2]. Appendix E reduces CHECK-ϕ (with
    strings of length [n]) to the SHORT problems: each [v_i] is split
    into [µ = ⌈n / log m⌉] sub-blocks of [log m] bits, and block [(i,j)]
    becomes the short string

    {v  BIN(ϕ(i)) · BIN'(j) · v_{i,j}      (first half)
        BIN(i)    · BIN'(j) · v'_{i,j}     (second half) v}

    where [BIN] is a [log m]-bit index and [BIN'] a [3·log m]-bit block
    counter. The mapping preserves yes-ness for SHORT-MULTISET-EQUALITY,
    SHORT-SET-EQUALITY and SHORT-CHECK-SORT, and only needs a constant
    number of scans to compute — so a fast algorithm for a SHORT problem
    would yield one for CHECK-ϕ. *)

val reduce :
  phi:Util.Permutation.t -> Instance.t -> Instance.t
(** [reduce ~phi inst] is the Appendix-E image [f(inst)] of a CHECK-ϕ
    instance: [m' = µ·m] strings of length [5·log m] per half.
    @raise Invalid_argument unless the instance has [m = size phi ≥ 2]
    strings per half, [m] a power of two, a uniform string length
    [n ≥ 1], and [µ = ⌈n / log2 m⌉ ≤ m³]. *)

val is_short : c:int -> Instance.t -> bool
(** Whether every string has length [≤ c·log2 m'] (with [m'] the
    instance's own string count) — membership in the SHORT fragment. *)

val block_length : m:int -> int
(** Length [5·log2 m] of the short strings produced by {!reduce}. *)

val blocks_per_string : m:int -> n:int -> int
(** [µ = ⌈n / log2 m⌉]. *)
