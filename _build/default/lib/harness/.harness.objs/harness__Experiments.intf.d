lib/harness/experiments.mli:
