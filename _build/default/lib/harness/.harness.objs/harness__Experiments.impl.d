lib/harness/experiments.ml: Array Extsort Fingerprint Fun List Listmachine Nst Numtheory Printf Problems Random Relalg Simulation Stcore String Turing Util Xmlq
