(** Concrete list machines for the CHECK-ϕ experiments.

    The paper uses list machines only as a lower-bound analysis tool; it
    never programs them. To make the tightness story executable we still
    need {e honest} (r,t)-bounded list machines attempting CHECK-ϕ:

    - {!staircase_checkphi} verifies the pairs [(i, m+ϕ(i))] covered by
      a bounded number of {e monotone chains} of ϕ, one chain per
      constant-reversal pass (information can only be co-located along
      monotone alignments — the content of the merge lemma, Lemma 37).
      With all [≈ m / sortedness(ϕ)] chains it genuinely solves CHECK-ϕ
      on the instance space; truncated to fewer chains it must either
      reject yes-instances (pessimistic) or accept unverified inputs
      (optimistic) — and the Lemma 21 adversary then exhibits a fooling
      input.
    - {!coin} and {!blind} are degenerate baselines for the probability
      machinery and the adversary respectively. *)

val chain_partition : Util.Permutation.t -> (int * int) list list
(** Greedy partition of the pairs [(i, ϕ(i))] (listed with [i]
    ascending) into chains monotone in the second coordinate. The
    number of chains is at least [m / sortedness(ϕ)] and — for the
    greedy used here — typically within a small factor of it. *)

val staircase_checkphi :
  space:Problems.Generators.Checkphi.space ->
  chains:int ->
  optimistic:bool ->
  Util.Bitstring.t Nlm.t
(** A deterministic 2-list scripted machine for CHECK-ϕ on the given
    space that verifies the pairs of the first [chains] chains of
    {!chain_partition} (each pass costs O(1) reversals). On reaching
    the end it accepts iff all verified pairs matched and
    ([optimistic] or every pair was covered). *)

val chains_needed : space:Problems.Generators.Checkphi.space -> int
(** Number of chains {!chain_partition} produces for the space's ϕ —
    the [chains] value at which {!staircase_checkphi} is complete. *)

val random_chain_checkphi :
  space:Problems.Generators.Checkphi.space -> Util.Bitstring.t Nlm.t
(** A {e randomized} CHECK-ϕ attempt: the nondeterministic choice picks
    {e one} chain of {!chain_partition} uniformly, and the run verifies
    only that chain's pairs (optimistically accepting the rest). On
    yes-instances every run accepts (probability 1); on a no-instance
    broken at a single pair, only the runs that sampled the covering
    chain reject — so the acceptance probability stays positive and the
    machine violates the (1/2, 0)-RTM contract, as Theorem 6 says any
    cheap randomized machine must. Each run costs O(1) reversals; the
    Lemma 26 step of the adversary is nontrivial against this machine. *)

val dispatch_probability : 'v Nlm.t -> values:'v array -> float
(** Exact acceptance probability of a {e choice-dispatch} machine
    (from {!Plan.build_choice_dispatch}): only the first choice matters,
    so the probability is the average over the [num_choices] constant
    choice sequences. (General machines need
    {!Nlm.exact_probability}, which cannot exploit this structure
    because written cells record the choices.) *)

val coin : input_length:int -> 'v Nlm.t
(** One nondeterministic step, accepts with probability 1/2. *)

val blind : input_length:int -> accept:bool -> 'v Nlm.t
(** Accepts (or rejects) immediately without reading anything. *)
