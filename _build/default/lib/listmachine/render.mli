(** ASCII rendering of list machine configurations and runs — the
    Figure 2 view, for debugging, examples, and documentation.

    A configuration prints one line per list, cells boxed left to
    right, the cell under the head marked with [>…<] and the head
    direction appended:

    {v list 1: [x1] [x2] >[x3]< [x4]   (dir +1, 0 reversals) v}

    Cell contents longer than the width budget are elided around their
    input symbols, which is usually what one wants to see. *)

val cell_to_string : ?max_width:int -> Nlm.cell -> string
(** Compact rendering, e.g. ["<v3>"] or ["a2<v1..><..>c0"]; elides the
    middle when longer than [max_width] (default 24). *)

val config_to_string : ?max_width:int -> Nlm.config -> string
(** The multi-line configuration picture. *)

val trace_to_string : ?max_width:int -> ?max_steps:int -> Nlm.trace -> string
(** Step-by-step run rendering: each step shows the move vector and the
    resulting configuration; elided after [max_steps] (default 20). *)

val skeleton_summary : Skeleton.t -> string
(** One line per non-collapsed skeleton entry: state, directions, and
    the input positions visible under the heads. *)
