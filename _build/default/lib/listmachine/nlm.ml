type sym = In of int | Ch of int | St of int | Open | Close
type cell = sym list
type movement = { dir : int; move : bool }
type transition = { next_state : int; movements : movement array }

type 'v alpha =
  values:'v array -> state:int -> cells:cell array -> choice:int -> transition

type 'v t = {
  lists : int;
  input_length : int;
  num_choices : int;
  state_count : int;
  initial : int;
  is_final : int -> bool;
  is_accepting : int -> bool;
  alpha : 'v alpha;
  name : string;
}

let make ~name ~lists ~input_length ~num_choices ~state_count ~initial ~is_final
    ~is_accepting ~alpha =
  if lists < 1 then invalid_arg "Nlm.make: lists >= 1";
  if input_length < 0 then invalid_arg "Nlm.make: input_length >= 0";
  if num_choices < 1 then invalid_arg "Nlm.make: num_choices >= 1";
  if state_count < 1 then invalid_arg "Nlm.make: state_count >= 1";
  if initial < 0 then invalid_arg "Nlm.make: initial state";
  {
    lists;
    input_length;
    num_choices;
    state_count;
    initial;
    is_final;
    is_accepting;
    alpha;
    name;
  }

type config = {
  state : int;
  pos : int array;
  head_dir : int array;
  contents : cell array array;
  revs : int array;
  ids : int array array;
  next_id : int;
}

let initial_config m =
  let first =
    if m.input_length = 0 then [| [ Open; Close ] |]
    else Array.init m.input_length (fun i0 -> [ Open; In (i0 + 1); Close ])
  in
  let contents =
    Array.init m.lists (fun tau -> if tau = 0 then first else [| [ Open; Close ] |])
  in
  let counter = ref 0 in
  let ids =
    Array.map
      (Array.map (fun _ ->
           incr counter;
           !counter))
      contents
  in
  {
    state = m.initial;
    pos = Array.make m.lists 1;
    head_dir = Array.make m.lists 1;
    contents;
    revs = Array.make m.lists 0;
    ids;
    next_id = !counter + 1;
  }

let current_cells c =
  Array.mapi (fun tau p -> c.contents.(tau).(p - 1)) c.pos

let bracket x = (Open :: x) @ [ Close ]

let splice_replace arr j y =
  let fresh = Array.copy arr in
  fresh.(j - 1) <- y;
  fresh

let splice_insert_before arr j y =
  (* y becomes cell j; old cell j shifts to j+1 *)
  Array.concat [ Array.sub arr 0 (j - 1); [| y |]; Array.sub arr (j - 1) (Array.length arr - j + 1) ]

let splice_insert_after arr j y =
  Array.concat [ Array.sub arr 0 j; [| y |]; Array.sub arr j (Array.length arr - j) ]

let step m ~values c ~choice =
  if m.is_final c.state then invalid_arg "Nlm.step: final configuration";
  if choice < 0 || choice >= m.num_choices then invalid_arg "Nlm.step: choice range";
  let cells = current_cells c in
  let tr = m.alpha ~values ~state:c.state ~cells ~choice in
  if Array.length tr.movements <> m.lists then
    invalid_arg "Nlm.step: alpha returned wrong movement arity";
  (* clamp at list ends (Definition 24(c)) *)
  let clamped =
    Array.mapi
      (fun tau e ->
        let len = Array.length c.contents.(tau) in
        if e.dir <> -1 && e.dir <> 1 then invalid_arg "Nlm.step: dir must be ±1";
        if c.pos.(tau) = 1 && e.dir = -1 && e.move then { dir = -1; move = false }
        else if c.pos.(tau) = len && e.dir = 1 && e.move then { dir = 1; move = false }
        else e)
      tr.movements
  in
  let f =
    Array.mapi (fun tau e -> e.move || e.dir <> c.head_dir.(tau)) clamped
  in
  if Array.for_all not f then
    ( { c with state = tr.next_state }, Array.make m.lists 0 )
  else begin
    let y =
      (St c.state :: List.concat_map (fun x -> bracket x) (Array.to_list cells))
      @ bracket [ Ch choice ]
    in
    let contents = Array.copy c.contents in
    let ids = Array.copy c.ids in
    let next_id = ref c.next_id in
    let fresh () =
      let id = !next_id in
      incr next_id;
      id
    in
    let pos = Array.copy c.pos in
    let head_dir = Array.copy c.head_dir in
    let revs = Array.copy c.revs in
    let cellmoves = Array.make m.lists 0 in
    for tau = 0 to m.lists - 1 do
      let e = clamped.(tau) in
      let p = c.pos.(tau) in
      if e.move then begin
        contents.(tau) <- splice_replace c.contents.(tau) p y;
        (* overwrite: the cell keeps its identity *)
        ids.(tau) <- Array.copy c.ids.(tau);
        pos.(tau) <- (if e.dir = 1 then p + 1 else p - 1);
        cellmoves.(tau) <- e.dir
      end
      else begin
        (if c.head_dir.(tau) = 1 then begin
           contents.(tau) <- splice_insert_before c.contents.(tau) p y;
           ids.(tau) <- splice_insert_before c.ids.(tau) p (fresh ());
           pos.(tau) <- p + 1
         end
         else begin
           contents.(tau) <- splice_insert_after c.contents.(tau) p y;
           ids.(tau) <- splice_insert_after c.ids.(tau) p (fresh ());
           pos.(tau) <- p
         end);
        cellmoves.(tau) <- 0
      end;
      if e.dir <> c.head_dir.(tau) then begin
        revs.(tau) <- revs.(tau) + 1;
        head_dir.(tau) <- e.dir
      end
    done;
    ( { state = tr.next_state; pos; head_dir; contents; revs; ids; next_id = !next_id },
      cellmoves )
  end

type trace = {
  accepted : bool;
  configs : config array;
  moves : int array array;
  choices_used : int array;
  total_revs : int;
}

let run ?(fuel = 100_000) m ~values ~choices =
  if Array.length values <> m.input_length then
    invalid_arg "Nlm.run: values arity";
  let configs = ref [] in
  let moves = ref [] in
  let used = ref [] in
  let c = ref (initial_config m) in
  let steps = ref 0 in
  configs := [ !c ];
  while not (m.is_final !c.state) do
    if !steps >= fuel then failwith "Nlm.run: out of fuel";
    let choice = ((choices !steps mod m.num_choices) + m.num_choices) mod m.num_choices in
    let c', mv = step m ~values !c ~choice in
    c := c';
    configs := c' :: !configs;
    moves := mv :: !moves;
    used := choice :: !used;
    incr steps
  done;
  let final = !c in
  {
    accepted = m.is_accepting final.state;
    configs = Array.of_list (List.rev !configs);
    moves = Array.of_list (List.rev !moves);
    choices_used = Array.of_list (List.rev !used);
    total_revs = Array.fold_left ( + ) 0 final.revs;
  }

let scans tr = 1 + tr.total_revs

let accept_probability st ?(samples = 500) ?fuel m ~values =
  let hits = ref 0 in
  for _ = 1 to samples do
    let tr =
      run ?fuel m ~values ~choices:(fun _ -> Random.State.int st m.num_choices)
    in
    if tr.accepted then incr hits
  done;
  float_of_int !hits /. float_of_int samples

let exact_probability ?(fuel = 200_000) m ~values =
  let expanded = ref 0 in
  let rec go c =
    incr expanded;
    if !expanded > fuel then failwith "Nlm.exact_probability: out of fuel";
    if m.is_final c.state then if m.is_accepting c.state then 1.0 else 0.0
    else begin
      (* group identical successors so that choice-insensitive steps do
         not blow up the tree (cell ids are deterministic per choice, so
         structural equality is sound here) *)
      let successors = ref [] in
      for choice = 0 to m.num_choices - 1 do
        let c', _ = step m ~values c ~choice in
        match List.assoc_opt c' !successors with
        | Some count -> successors := (c', count + 1) :: List.remove_assoc c' !successors
        | None -> successors := (c', 1) :: !successors
      done;
      List.fold_left
        (fun acc (c', count) ->
          acc +. (float_of_int count *. go c' /. float_of_int m.num_choices))
        0.0 !successors
    end
  in
  go (initial_config m)

let cell_inputs cell =
  List.filter_map (function In i -> Some i | Ch _ | St _ | Open | Close -> None) cell

let cell_components cell =
  match cell with
  | St a :: rest ->
      (* parse ⟨x_1⟩…⟨x_t⟩⟨c⟩ by bracket matching *)
      let rec comps acc rest =
        match rest with
        | [] -> Some (List.rev acc)
        | Open :: tl ->
            let rec grab depth body tl =
              match tl with
              | [] -> None
              | Close :: tl' ->
                  if depth = 0 then Some (List.rev body, tl')
                  else grab (depth - 1) (Close :: body) tl'
              | Open :: tl' -> grab (depth + 1) (Open :: body) tl'
              | (In _ | Ch _ | St _) as s :: tl' -> grab depth (s :: body) tl'
            in
            (match grab 0 [] tl with
            | None -> None
            | Some (body, tl') -> comps (body :: acc) tl')
        | (In _ | Ch _ | St _ | Close) :: _ -> None
      in
      (match comps [] rest with
      | Some parts when List.length parts >= 1 -> (
          match List.rev parts with
          | [ Ch ch ] :: xs_rev -> Some (a, List.rev xs_rev, ch)
          | _ -> None)
      | Some _ | None -> None)
  | [] | (In _ | Ch _ | Open | Close) :: _ -> None

let resolve_cell ~values cell =
  List.map
    (function
      | In i -> Either.Left values.(i - 1)
      | Ch c -> Either.Right (-1 - c)
      | St a -> Either.Right a
      | Open -> Either.Right min_int
      | Close -> Either.Right (min_int + 1))
    cell

let cell_size = List.length

let pp_sym ppf = function
  | In i -> Format.fprintf ppf "v%d" i
  | Ch c -> Format.fprintf ppf "c%d" c
  | St a -> Format.fprintf ppf "a%d" a
  | Open -> Format.pp_print_string ppf "<"
  | Close -> Format.pp_print_string ppf ">"

let pp_cell ppf cell =
  List.iter (fun s -> pp_sym ppf s) cell
