let ipow base exp =
  let rec go acc b e =
    if e = 0 then acc
    else if e land 1 = 1 then go (acc * b) (b * b) (e lsr 1)
    else go acc (b * b) (e lsr 1)
  in
  if exp < 0 then invalid_arg "ipow: negative exponent" else go 1 base exp

let total_list_length_bound ~t ~r ~m = ipow (t + 1) r * m
let cell_size_bound ~t ~r = 11 * ipow (max t 2) r
let run_length_bound ~k ~t ~r ~m = k + (k * ipow (t + 1) (r + 1) * m)

let log2_skeleton_count_bound ~m ~k ~t ~r =
  let base = float_of_int (m + k + 3) in
  let e1 = 12.0 *. float_of_int m *. (float_of_int (t + 1) ** float_of_int ((2 * r) + 2)) in
  let e2 = 24.0 *. (float_of_int (t + 1) ** float_of_int r) in
  (e1 +. e2) *. (log base /. log 2.0)

type measurement = {
  max_total_list_length : int;
  max_cell_size : int;
  run_length : int;
  reversals : int;
}

let measure (tr : Nlm.trace) =
  let max_len = ref 0 in
  let max_cell = ref 0 in
  Array.iter
    (fun (c : Nlm.config) ->
      let total =
        Array.fold_left (fun acc l -> acc + Array.length l) 0 c.Nlm.contents
      in
      if total > !max_len then max_len := total;
      Array.iter
        (Array.iter (fun cell ->
             let s = Nlm.cell_size cell in
             if s > !max_cell then max_cell := s))
        c.Nlm.contents)
    tr.Nlm.configs;
  {
    max_total_list_length = !max_len;
    max_cell_size = !max_cell;
    run_length = Array.length tr.Nlm.configs;
    reversals = tr.Nlm.total_revs;
  }

let check tr ~t ~r ~m ~k =
  let me = measure tr in
  (* Lemma 30 bounds configurations *before the i-th direction change*;
     a run with r reversals in total lives before the (r+1)-th change,
     so the whole-trace bounds use exponent r+1. *)
  1 + me.reversals <= r + 1
  && me.max_total_list_length <= total_list_length_bound ~t ~r:(r + 1) ~m
  && me.max_cell_size <= cell_size_bound ~t ~r:(r + 1)
  && me.run_length <= run_length_bound ~k ~t ~r ~m
