(** The quantitative lemmas about list-machine runs (Lemmas 30, 31, 32)
    — bound formulas plus trace measurements to check them against.

    All bounds are stated for an (r,t)-bounded NLM with [m] input
    positions and [k = |A|] states. Several grow astronomically; those
    are exposed as base-2 logarithms. *)

val total_list_length_bound : t:int -> r:int -> m:int -> int
(** Lemma 30(a): total list length after at most [r] direction changes
    is [≤ (t+1)^r · m]. *)

val cell_size_bound : t:int -> r:int -> int
(** Lemma 30(b): cell size [≤ 11 · max(t,2)^r]. *)

val run_length_bound : k:int -> t:int -> r:int -> m:int -> int
(** Lemma 31(a): run length [ℓ ≤ k + k·(t+1)^{r+1}·m]. *)

val log2_skeleton_count_bound : m:int -> k:int -> t:int -> r:int -> float
(** Lemma 32: [log2] of [(m+k+3)^{12·m·(t+1)^{2r+2} + 24·(t+1)^r}]. *)

(** Measurements over an actual trace. *)
type measurement = {
  max_total_list_length : int;
  max_cell_size : int;
  run_length : int;
  reversals : int;
}

val measure : Nlm.trace -> measurement

val check : Nlm.trace -> t:int -> r:int -> m:int -> k:int -> bool
(** All three Lemma 30/31 bounds hold for the trace (using the given
    nominal parameters; [r] must be at least the trace's total
    reversal count). Lemma 30 bounds configurations {e before the i-th
    direction change}, so the whole-trace list-length and cell-size
    bounds are taken at exponent [r+1]. *)
