lib/listmachine/lm_bounds.ml: Array Nlm
