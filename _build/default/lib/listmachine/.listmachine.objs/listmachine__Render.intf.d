lib/listmachine/render.mli: Nlm Skeleton
