lib/listmachine/plan.mli: Nlm
