lib/listmachine/machines.ml: Array Hashtbl List Nlm Plan Printf Problems Util
