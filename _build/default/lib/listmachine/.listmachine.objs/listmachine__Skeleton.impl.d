lib/listmachine/skeleton.ml: Array Buffer Hashtbl Int List Nlm Printf Util
