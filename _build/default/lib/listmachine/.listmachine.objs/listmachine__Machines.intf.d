lib/listmachine/machines.mli: Nlm Problems Util
