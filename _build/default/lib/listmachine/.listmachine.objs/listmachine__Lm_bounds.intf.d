lib/listmachine/lm_bounds.mli: Nlm
