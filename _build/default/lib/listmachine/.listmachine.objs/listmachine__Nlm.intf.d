lib/listmachine/nlm.mli: Either Format Random
