lib/listmachine/nlm.ml: Array Either Format List Random
