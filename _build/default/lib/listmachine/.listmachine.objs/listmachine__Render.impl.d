lib/listmachine/render.ml: Array Buffer List Nlm Printf Skeleton String
