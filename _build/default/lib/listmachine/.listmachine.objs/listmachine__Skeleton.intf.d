lib/listmachine/skeleton.mli: Nlm Util
