lib/listmachine/plan.ml: Array List Nlm Printf
