type ind_sym = IIn of int | IWild | ISt of int | IOpen | IClose

type entry =
  | View of { state : int; dirs : int array; cells : ind_sym list array }
  | Collapsed

type t = { entries : entry array; moves : int array array }

let ind_of_cell cell =
  List.map
    (function
      | Nlm.In i -> IIn i
      | Nlm.Ch _ -> IWild
      | Nlm.St a -> ISt a
      | Nlm.Open -> IOpen
      | Nlm.Close -> IClose)
    cell

let view_of_config (c : Nlm.config) =
  View
    {
      state = c.Nlm.state;
      dirs = Array.copy c.Nlm.head_dir;
      cells = Array.map ind_of_cell (Nlm.current_cells c);
    }

let of_trace (tr : Nlm.trace) =
  let n = Array.length tr.Nlm.configs in
  let entries =
    Array.init n (fun j ->
        if j = 0 then view_of_config tr.Nlm.configs.(0)
        else begin
          let mv = tr.Nlm.moves.(j - 1) in
          if Array.exists (fun d -> d <> 0) mv then view_of_config tr.Nlm.configs.(j)
          else Collapsed
        end)
  in
  { entries; moves = Array.map Array.copy tr.Nlm.moves }

let serialize sk =
  let buf = Buffer.create 256 in
  let sym = function
    | IIn i -> Buffer.add_string buf (Printf.sprintf "i%d," i)
    | IWild -> Buffer.add_string buf "?,"
    | ISt a -> Buffer.add_string buf (Printf.sprintf "a%d," a)
    | IOpen -> Buffer.add_string buf "<"
    | IClose -> Buffer.add_string buf ">"
  in
  Array.iter
    (fun e ->
      match e with
      | Collapsed -> Buffer.add_string buf "|?"
      | View v ->
          Buffer.add_string buf (Printf.sprintf "|S%d[" v.state);
          Array.iter (fun d -> Buffer.add_string buf (if d = 1 then "+" else "-")) v.dirs;
          Buffer.add_string buf "]";
          Array.iter
            (fun cell ->
              Buffer.add_string buf "{";
              List.iter sym cell;
              Buffer.add_string buf "}")
            v.cells)
    sk.entries;
  Buffer.add_string buf "@";
  Array.iter
    (fun mv ->
      Buffer.add_string buf "(";
      Array.iter (fun d -> Buffer.add_string buf (string_of_int (d + 1))) mv;
      Buffer.add_string buf ")")
    sk.moves;
  Buffer.contents buf

let equal a b = serialize a = serialize b

let positions_of_entry = function
  | Collapsed -> []
  | View v ->
      let all =
        Array.to_list v.cells
        |> List.concat_map
             (List.filter_map (function
               | IIn i -> Some i
               | IWild | ISt _ | IOpen | IClose -> None))
      in
      List.sort_uniq Int.compare all

let compared sk i i' =
  Array.exists
    (fun e ->
      let ps = positions_of_entry e in
      List.mem i ps && List.mem i' ps)
    sk.entries

let compared_pairs sk =
  let tbl = Hashtbl.create 64 in
  Array.iter
    (fun e ->
      let ps = positions_of_entry e in
      List.iteri
        (fun idx i ->
          List.iteri
            (fun idx' i' -> if idx < idx' then Hashtbl.replace tbl (i, i') ())
            ps)
        ps)
    sk.entries;
  Hashtbl.fold (fun pr () acc -> pr :: acc) tbl []
  |> List.sort compare

let phi_compared_count sk ~m ~phi =
  let count = ref 0 in
  (* one scan collecting position sets per entry, then membership *)
  let sets =
    Array.to_list sk.entries
    |> List.filter_map (fun e ->
           match positions_of_entry e with [] -> None | ps -> Some ps)
  in
  for i = 1 to m do
    let j = m + Util.Permutation.apply phi i in
    if List.exists (fun ps -> List.mem i ps && List.mem j ps) sets then incr count
  done;
  !count

let uncompared_phi_indices sk ~m ~phi =
  let sets =
    Array.to_list sk.entries
    |> List.filter_map (fun e ->
           match positions_of_entry e with [] -> None | ps -> Some ps)
  in
  List.filter
    (fun i ->
      let j = m + Util.Permutation.apply phi i in
      not (List.exists (fun ps -> List.mem i ps && List.mem j ps) sets))
    (List.init m (fun i0 -> i0 + 1))

let monotone_partition_upper seq =
  (* Greedy: maintain chains, each ascending or descending (direction
     decided by its second element). Append to the chain whose tail is
     closest while staying consistent; otherwise open a new chain. *)
  let chains = ref [] in
  (* chain = (last, direction) with direction 0 = undecided, ±1 *)
  List.iter
    (fun x ->
      let best = ref None in
      List.iteri
        (fun idx (last, dirn) ->
          let ok =
            match dirn with
            | 0 -> true
            | 1 -> x >= last
            | _ -> x <= last
          in
          if ok then begin
            let badness = abs (x - last) in
            match !best with
            | Some (_, b) when b <= badness -> ()
            | Some _ | None -> best := Some (idx, badness)
          end)
        !chains;
      match !best with
      | Some (idx, _) ->
          chains :=
            List.mapi
              (fun k (last, dirn) ->
                if k = idx then
                  let dirn' =
                    if dirn <> 0 then dirn
                    else if x > last then 1
                    else if x < last then -1
                    else 0
                  in
                  (x, dirn')
                else (last, dirn))
              !chains
      | None -> chains := (x, 0) :: !chains)
    seq;
  List.length !chains

let replays_to ~machine ~values ~choices sk =
  let tr = Nlm.run machine ~values ~choices in
  equal (of_trace tr) sk

let monotone_partition_exact ?(max_n = 16) seq =
  let arr = Array.of_list seq in
  let n = Array.length arr in
  if n > max_n then invalid_arg "Skeleton.monotone_partition_exact: too long";
  if n = 0 then 0
  else begin
    (* can [arr] be covered by k monotone chains? DFS over assignments;
       chains are (last, direction) with direction 0 = undecided. Fresh
       chains are opened in canonical order to kill symmetry. *)
    let feasible k =
      let last = Array.make k 0 and dirn = Array.make k 2 in
      (* dirn: 2 = unopened, 0 = undecided, ±1 *)
      let rec go i =
        i = n
        || begin
             let x = arr.(i) in
             let rec try_chain c opened_fresh =
               c < k
               && begin
                    let ok, new_dirn =
                      match dirn.(c) with
                      | 2 -> (not opened_fresh, 0)
                      | 0 ->
                          if x > last.(c) then (true, 1)
                          else if x < last.(c) then (true, -1)
                          else (true, 0)
                      | d ->
                          if d = 1 then (x >= last.(c), 1) else (x <= last.(c), -1)
                    in
                    (if ok then begin
                       let saved_l = last.(c) and saved_d = dirn.(c) in
                       last.(c) <- x;
                       dirn.(c) <- new_dirn;
                       let r = go (i + 1) in
                       last.(c) <- saved_l;
                       dirn.(c) <- saved_d;
                       r
                     end
                     else false)
                    || try_chain (c + 1) (opened_fresh || dirn.(c) = 2)
                  end
             in
             try_chain 0 false
           end
      in
      go 0
    in
    let rec find k = if feasible k then k else find (k + 1) in
    find 1
  end

let list_position_sequence (c : Nlm.config) tau =
  if tau < 1 || tau > Array.length c.Nlm.contents then
    invalid_arg "Skeleton.list_position_sequence";
  Array.to_list c.Nlm.contents.(tau - 1) |> List.concat_map Nlm.cell_inputs
