lib/xmlq/stream_filter.mli:
