lib/xmlq/stream_filter.ml: Buffer Extsort List String Tape
