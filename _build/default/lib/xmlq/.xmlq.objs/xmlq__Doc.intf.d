lib/xmlq/doc.mli: Format Problems
