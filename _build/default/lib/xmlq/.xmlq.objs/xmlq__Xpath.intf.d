lib/xmlq/xpath.mli: Doc Format
