lib/xmlq/doc.ml: Array Buffer Format List Printf Problems String Util
