lib/xmlq/xpath.ml: Array Doc Format Int List String
