lib/xmlq/xquery.ml: Doc List Printf String Xpath
