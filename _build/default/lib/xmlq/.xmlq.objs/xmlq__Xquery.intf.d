lib/xmlq/xquery.mli: Doc Xpath
