(** An XPath engine covering the fragment the paper uses (Theorem 13,
    Figure 1): the [child], [descendant], [ancestor], [parent] and
    [self] axes, element name tests, and predicates built from path
    existence, negation, conjunction/disjunction, and the {e existential}
    general comparison [path1 = path2] (true iff some selected node of
    the first path has the same string-value as some node of the
    second — the W3C semantics the paper leans on). *)

type axis = Self | Child | Descendant | Descendant_or_self | Parent | Ancestor

type step = {
  axis : axis;
  test : string option;  (** element name; [None] matches any element *)
  preds : pred list;
}

and pred =
  | Exists of path
  | Not of pred
  | Value_eq of path * path
  | And of pred * pred
  | Or of pred * pred

and path = step list
(** Steps are applied left to right, starting (for this module's entry
    points) at the document node above the root element. *)

val step : ?preds:pred list -> axis -> string -> step
(** [step axis name]; [name = "*"] becomes a [None] test. *)

val figure1 : path
(** The Figure 1 query:
    [descendant::set1/child::item\[not(child::string =
    ancestor::instance/child::set2/child::item/child::string)\]]. *)

val select : Doc.t -> path -> Doc.t list
(** The selected nodes (as subtrees), in document order. *)

val select_values : Doc.t -> path -> string list
(** String-values of the selected nodes, in document order. *)

val matches : Doc.t -> path -> bool
(** Filtering semantics (Theorem 13): at least one node selected. *)

val pp_path : Format.formatter -> path -> unit
