(** XML documents: trees, serialization, parsing, and the Section 4
    instance encoding.

    The paper represents a SET-EQUALITY instance
    [x1#…#xm#y1#…#ym#] as

    {v <instance> <set1> <item><string>x1</string></item> … </set1>
                  <set2> <item><string>y1</string></item> … </set2>
       </instance> v}

    and evaluates XPath/XQuery queries against the serialized stream. *)

type t = Element of string * t list | Text of string

val element : string -> t list -> t
(** @raise Invalid_argument on an invalid name (must be nonempty,
    [\[A-Za-z\]\[A-Za-z0-9\]*]). *)

val text : string -> t

val serialize : t -> string
(** Tag-and-text serialization, e.g.
    ["<a><b>hi</b></a>"]. Text content is emitted raw — instance
    strings are over [{0,1}], so no escaping is needed; {!parse}
    rejects markup characters in text. *)

val stream_length : t -> int
(** Length of the serialized stream — the [N] of Theorems 12/13. *)

val parse : string -> t
(** Inverse of {!serialize}.
    @raise Invalid_argument on malformed input (unbalanced or mismatched
    tags, stray ['<'/'>'], multiple roots, empty input). *)

val of_instance : Problems.Instance.t -> t
(** The Section 4 encoding. *)

val to_instance : t -> Problems.Instance.t
(** Inverse of {!of_instance}.
    @raise Invalid_argument if the document does not have the
    instance/set1/set2 shape. *)

val string_value : t -> string
(** Concatenated text content, in document order (the XPath
    string-value of the node). *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
