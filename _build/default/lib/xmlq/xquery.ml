type cond =
  | Every of string * Xpath.path * cond
  | Some_ of string * Xpath.path * cond
  | Var_eq of string * string
  | And of cond * cond
  | Or of cond * cond
  | Not of cond

type query = { wrapper : string; witness : string; cond : cond }

let instance_strings set =
  [
    Xpath.step Xpath.Child "instance";
    Xpath.step Xpath.Child set;
    Xpath.step Xpath.Child "item";
    Xpath.step Xpath.Child "string";
  ]

let theorem12_query =
  let one_direction outer inner vx vy =
    Every (vx, instance_strings outer, Some_ (vy, instance_strings inner, Var_eq (vx, vy)))
  in
  {
    wrapper = "result";
    witness = "true";
    cond =
      And (one_direction "set1" "set2" "x" "y", one_direction "set2" "set1" "y2" "x2");
  }

let rec eval_cond doc env = function
  | Every (v, path, body) ->
      List.for_all
        (fun value -> eval_cond doc ((v, value) :: env) body)
        (Xpath.select_values doc path)
  | Some_ (v, path, body) ->
      List.exists
        (fun value -> eval_cond doc ((v, value) :: env) body)
        (Xpath.select_values doc path)
  | Var_eq (a, b) ->
      let get v =
        match List.assoc_opt v env with
        | Some value -> value
        | None -> invalid_arg (Printf.sprintf "Xquery: unbound variable $%s" v)
      in
      String.equal (get a) (get b)
  | And (p, q) -> eval_cond doc env p && eval_cond doc env q
  | Or (p, q) -> eval_cond doc env p || eval_cond doc env q
  | Not p -> not (eval_cond doc env p)

let holds q doc = eval_cond doc [] q.cond

let eval q doc =
  Doc.element q.wrapper (if holds q doc then [ Doc.element q.witness [] ] else [])
