type axis = Self | Child | Descendant | Descendant_or_self | Parent | Ancestor

type step = { axis : axis; test : string option; preds : pred list }

and pred =
  | Exists of path
  | Not of pred
  | Value_eq of path * path
  | And of pred * pred
  | Or of pred * pred

and path = step list

let step ?(preds = []) axis name =
  { axis; test = (if String.equal name "*" then None else Some name); preds }

let figure1 =
  let set2_strings =
    [
      step Ancestor "instance";
      step Child "set2";
      step Child "item";
      step Child "string";
    ]
  in
  [
    step Descendant "set1";
    step Child "item"
      ~preds:[ Not (Value_eq ([ step Child "string" ], set2_strings)) ];
  ]

(* ------------------------------------------------------------------ *)
(* Indexed document view: nodes in document order with parent links.
   Index -1 denotes the document node above the root element. *)

type ctx = {
  nodes : Doc.t array;
  parent : int array;
  first_child : int list array;  (* children indices, in order *)
}

let index doc =
  let rec count = function
    | Doc.Text _ -> 1
    | Doc.Element (_, kids) -> List.fold_left (fun acc k -> acc + count k) 1 kids
  in
  let n = count doc in
  let nodes = Array.make n (Doc.Text "") in
  let parent = Array.make n (-1) in
  let first_child = Array.make n [] in
  let counter = ref 0 in
  let rec go par node =
    let id = !counter in
    incr counter;
    nodes.(id) <- node;
    parent.(id) <- par;
    (match node with
    | Doc.Element (_, kids) -> first_child.(id) <- List.map (go id) kids
    | Doc.Text _ -> ());
    id
  in
  ignore (go (-1) doc);
  { nodes; parent; first_child }

let is_element ctx id =
  id >= 0 && match ctx.nodes.(id) with Doc.Element _ -> true | Doc.Text _ -> false

let name_matches ctx id = function
  | None -> is_element ctx id
  | Some name -> (
      id >= 0
      &&
      match ctx.nodes.(id) with
      | Doc.Element (n, _) -> String.equal n name
      | Doc.Text _ -> false)

let children_of ctx id = if id = -1 then [ 0 ] else ctx.first_child.(id)

let rec descendants_of ctx id =
  let kids = children_of ctx id in
  List.concat_map (fun k -> k :: descendants_of ctx k) kids

let ancestors_of ctx id =
  let rec go acc i =
    if i = -1 then List.rev acc
    else begin
      let p = ctx.parent.(i) in
      if p = -1 then List.rev acc else go (p :: acc) p
    end
  in
  go [] id

let axis_nodes ctx id = function
  | Self -> [ id ]
  | Child -> children_of ctx id
  | Descendant -> descendants_of ctx id
  | Descendant_or_self -> id :: descendants_of ctx id
  | Parent -> if id = -1 || ctx.parent.(id) = -1 then [] else [ ctx.parent.(id) ]
  | Ancestor -> ancestors_of ctx id

let rec eval_path ctx froms path =
  match path with
  | [] -> froms
  | s :: rest ->
      let next =
        List.concat_map
          (fun id ->
            axis_nodes ctx id s.axis
            |> List.filter (fun n -> name_matches ctx n s.test)
            |> List.filter (fun n ->
                   List.for_all (fun p -> eval_pred ctx n p) s.preds))
          froms
      in
      eval_path ctx (List.sort_uniq Int.compare next) rest

and eval_pred ctx id = function
  | Exists p -> eval_path ctx [ id ] p <> []
  | Not p -> not (eval_pred ctx id p)
  | And (p, q) -> eval_pred ctx id p && eval_pred ctx id q
  | Or (p, q) -> eval_pred ctx id p || eval_pred ctx id q
  | Value_eq (p1, p2) ->
      let values p =
        eval_path ctx [ id ] p
        |> List.map (fun n -> Doc.string_value ctx.nodes.(n))
      in
      let v2 = values p2 in
      List.exists (fun v -> List.mem v v2) (values p1)

let select doc path =
  let ctx = index doc in
  eval_path ctx [ -1 ] path |> List.map (fun id -> ctx.nodes.(id))

let select_values doc path = List.map Doc.string_value (select doc path)

let matches doc path = select doc path <> []

let axis_name = function
  | Self -> "self"
  | Child -> "child"
  | Descendant -> "descendant"
  | Descendant_or_self -> "descendant-or-self"
  | Parent -> "parent"
  | Ancestor -> "ancestor"

let rec pp_path ppf path =
  Format.pp_print_list
    ~pp_sep:(fun ppf () -> Format.pp_print_string ppf "/")
    pp_step ppf path

and pp_step ppf s =
  Format.fprintf ppf "%s::%s" (axis_name s.axis)
    (match s.test with None -> "*" | Some n -> n);
  List.iter (fun p -> Format.fprintf ppf "[%a]" pp_pred p) s.preds

and pp_pred ppf = function
  | Exists p -> pp_path ppf p
  | Not p -> Format.fprintf ppf "not(%a)" pp_pred p
  | And (p, q) -> Format.fprintf ppf "%a and %a" pp_pred p pp_pred q
  | Or (p, q) -> Format.fprintf ppf "%a or %a" pp_pred p pp_pred q
  | Value_eq (a, b) -> Format.fprintf ppf "%a = %a" pp_path a pp_path b
