(** An XQuery-lite evaluator for the Theorem 12 query.

    The fragment covers quantified conditions over path-selected node
    sequences ([every]/[some] … [satisfies]), general comparisons
    between bound variables, boolean connectives, and element
    construction with a conditional body — exactly what the paper's
    set-equality query uses. *)

type cond =
  | Every of string * Xpath.path * cond
      (** [every $v in path satisfies cond] (path from the document node) *)
  | Some_ of string * Xpath.path * cond
  | Var_eq of string * string  (** [$x = $y] on string-values *)
  | And of cond * cond
  | Or of cond * cond
  | Not of cond

type query = {
  wrapper : string;  (** constructed element, [<result>] in the paper *)
  witness : string;  (** child emitted when the condition holds, [<true/>] *)
  cond : cond;
}

val theorem12_query : query
(** The paper's query: every [set1] string has an equal [set2] string
    and vice versa, wrapped as
    [<result>if (…) then <true/> else ()</result>]. *)

val eval : query -> Doc.t -> Doc.t
(** Evaluate against a document; returns [<wrapper><witness/></wrapper>]
    or the empty [<wrapper></wrapper>].
    @raise Invalid_argument on an unbound variable in the condition. *)

val holds : query -> Doc.t -> bool
(** Whether the condition holds (the result contains the witness). *)
