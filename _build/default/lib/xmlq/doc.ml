type t = Element of string * t list | Text of string

let valid_name name =
  String.length name > 0
  && (match name.[0] with 'a' .. 'z' | 'A' .. 'Z' -> true | _ -> false)
  && String.for_all
       (function 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' -> true | _ -> false)
       name

let element name children =
  if not (valid_name name) then invalid_arg "Doc.element: invalid name";
  Element (name, children)

let text s = Text s

let serialize doc =
  let buf = Buffer.create 256 in
  let rec go = function
    | Text s -> Buffer.add_string buf s
    | Element (name, children) ->
        Buffer.add_char buf '<';
        Buffer.add_string buf name;
        Buffer.add_char buf '>';
        List.iter go children;
        Buffer.add_string buf "</";
        Buffer.add_string buf name;
        Buffer.add_char buf '>'
  in
  go doc;
  Buffer.contents buf

let stream_length doc = String.length (serialize doc)

let parse input =
  if String.length input = 0 then invalid_arg "Doc.parse: empty input";
  let pos = ref 0 in
  let len = String.length input in
  let peek () = if !pos < len then Some input.[!pos] else None in
  let fail msg = invalid_arg (Printf.sprintf "Doc.parse: %s at %d" msg !pos) in
  let read_name () =
    let start = !pos in
    while
      !pos < len
      && match input.[!pos] with 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' -> true | _ -> false
    do
      incr pos
    done;
    if !pos = start then fail "expected tag name";
    String.sub input start (!pos - start)
  in
  let expect c =
    if peek () = Some c then incr pos else fail (Printf.sprintf "expected %C" c)
  in
  let rec parse_node () =
    expect '<';
    let name = read_name () in
    if not (valid_name name) then fail "invalid tag name";
    expect '>';
    let children = parse_children () in
    expect '<';
    expect '/';
    let close = read_name () in
    if not (String.equal close name) then fail "mismatched closing tag";
    expect '>';
    Element (name, children)
  and parse_children () =
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '<' ->
        if !pos + 1 < len && input.[!pos + 1] = '/' then []
        else begin
          let node = parse_node () in
          node :: parse_children ()
        end
    | Some '>' -> fail "stray '>'"
    | Some _ ->
        let start = !pos in
        while !pos < len && input.[!pos] <> '<' && input.[!pos] <> '>' do
          incr pos
        done;
        let node = Text (String.sub input start (!pos - start)) in
        node :: parse_children ()
  in
  let root =
    match peek () with Some '<' -> parse_node () | Some _ | None -> fail "expected '<'"
  in
  if !pos <> len then fail "trailing content";
  root

let of_instance inst =
  let half name strings =
    element name
      (List.map
         (fun v ->
           element "item"
             [ element "string" [ text (Util.Bitstring.to_string v) ] ])
         (Array.to_list strings))
  in
  element "instance"
    [
      half "set1" (Problems.Instance.xs inst);
      half "set2" (Problems.Instance.ys inst);
    ]

let to_instance doc =
  let strings_of = function
    | Element (_, items) ->
        List.map
          (function
            | Element ("item", [ Element ("string", content) ]) ->
                Util.Bitstring.of_string
                  (String.concat ""
                     (List.map
                        (function Text s -> s | Element _ -> invalid_arg "Doc.to_instance")
                        content))
            | Element _ | Text _ -> invalid_arg "Doc.to_instance: bad item")
          items
    | Text _ -> invalid_arg "Doc.to_instance: bad set"
  in
  match doc with
  | Element ("instance", [ (Element ("set1", _) as s1); (Element ("set2", _) as s2) ]) ->
      Problems.Instance.make
        (Array.of_list (strings_of s1))
        (Array.of_list (strings_of s2))
  | Element _ | Text _ -> invalid_arg "Doc.to_instance: not an instance document"

let rec string_value = function
  | Text s -> s
  | Element (_, children) -> String.concat "" (List.map string_value children)

let equal (a : t) (b : t) = a = b

let rec pp ppf = function
  | Text s -> Format.pp_print_string ppf s
  | Element (name, children) ->
      Format.fprintf ppf "@[<hv 2><%s>%a@]</%s>" name
        (Format.pp_print_list ~pp_sep:(fun _ () -> ()) pp)
        children name
