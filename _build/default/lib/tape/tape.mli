(** Instrumented external-memory tapes — the cost model of the paper.

    The ST(r,s,t) model (Definitions 1 and 2) charges two resources:

    - [r(N)]: one plus the total number of head-direction changes
      ({e reversals}) over all [t] external-memory tapes, i.e. the number
      of sequential scans;
    - [s(N)]: the total space used on the internal-memory tapes.

    This module provides one-sided-infinite tapes whose heads track their
    direction and count reversals, an internal-memory {!Meter}, and a
    {!Group} that aggregates both against an optional budget so that an
    algorithm implemented on this substrate is {e resource-sound by
    construction}: its reported scan count and internal-memory peak are
    measured, not claimed. *)

type direction = Left | Right

type 'a t
(** A one-sided-infinite tape with cells holding values of type ['a]
    (blank-initialized), a read/write head, and reversal accounting.
    Cell positions are 0-based; the head starts at position 0 moving
    {!Right}. *)

exception Budget_exceeded of string
(** Raised by any movement or allocation that would exceed the enclosing
    {!Group}'s budget. The payload describes the violated resource. *)

val create : ?name:string -> blank:'a -> unit -> 'a t
(** An empty tape. [name] appears in reports and error messages. *)

val of_list : ?name:string -> blank:'a -> 'a list -> 'a t
(** A tape pre-loaded with the given cells starting at position 0. *)

val name : 'a t -> string

val read : 'a t -> 'a
(** The cell under the head (blank if never written). *)

val write : 'a t -> 'a -> unit
(** Overwrite the cell under the head. *)

val move : 'a t -> direction -> unit
(** Move the head one cell. A change of direction relative to the
    previous movement increments the reversal counter.
    @raise Invalid_argument when moving [Left] at position 0. *)

val position : 'a t -> int
val head_direction : 'a t -> direction
(** Direction of the most recent movement ([Right] initially). *)

val at_left_end : 'a t -> bool

val reversals : 'a t -> int
(** Head-direction changes so far on this tape. *)

val cells_used : 'a t -> int
(** Highest position ever visited or written, plus one. *)

val rewind : 'a t -> unit
(** Move the head back to position 0 by repeated [move Left]
    (costing one reversal if the head was last moving right and is not
    already at position 0). *)

val to_list : 'a t -> 'a list
(** Cells [0 .. cells_used - 1] as a list (includes blanks). *)

val iter_right : 'a t -> ('a -> unit) -> unit
(** Scan from the current position to the last used cell, applying the
    function to each cell and moving the head right past the end of the
    used region. *)

(** Internal-memory meter (the [s(N)] resource). *)
module Meter : sig
  type t

  val create : unit -> t

  val alloc : t -> int -> unit
  (** Charge [n ≥ 0] units (bytes/cells — the unit is the caller's
      convention, kept consistent per algorithm). *)

  val free : t -> int -> unit
  (** Release [n] units. @raise Invalid_argument on underflow. *)

  val with_units : t -> int -> (unit -> 'b) -> 'b
  (** [with_units m n f] allocates [n], runs [f], frees [n] (also on
      exceptions). *)

  val current : t -> int
  val peak : t -> int
end

(** Aggregation of tapes + meter against an [(r, s, t)] budget. *)
module Group : sig
  type 'a tape := 'a t
  type t

  type budget = {
    max_scans : int option;  (** bound on [1 + Σ reversals] *)
    max_internal : int option;  (** bound on the meter's peak *)
  }

  val unlimited : budget

  val create : ?budget:budget -> unit -> t

  val add_tape : t -> 'a tape -> unit
  (** Register a tape; all its subsequent reversals count toward the
      group's scan budget.
      @raise Invalid_argument if the tape already belongs to a group. *)

  val tape : t -> ?name:string -> blank:'a -> unit -> 'a tape
  (** Create and register in one step. *)

  val tape_of_list : t -> ?name:string -> blank:'a -> 'a list -> 'a tape

  val meter : t -> Meter.t

  val total_reversals : t -> int
  val scans : t -> int
  (** [1 + total_reversals] — the paper's [r(N)] usage. *)

  val internal_peak : t -> int

  type report = {
    scans_used : int;
    reversals_by_tape : (string * int) list;
    internal_peak_units : int;
    cells_by_tape : (string * int) list;
  }

  val report : t -> report
  val pp_report : Format.formatter -> report -> unit
end
