(** ASCII table rendering for the experiment harness.

    Every experiment in [bench/main.ml] prints one table; this module
    keeps the formatting uniform (column alignment, header rule, caption
    line referencing the paper's theorem / claim). *)

type t

val create : title:string -> columns:string list -> t
(** A table with a caption and column headers. *)

val add_row : t -> string list -> unit
(** @raise Invalid_argument if the row arity differs from the header. *)

val add_rows : t -> string list list -> unit

val render : t -> string
(** The full table: title, header, rule, rows; right-pads cells. *)

val print : t -> unit
(** [render] followed by [print_string] and a trailing newline. *)

val fmt_float : ?digits:int -> float -> string
(** Fixed-point rendering, default 3 digits. *)

val fmt_ratio : int -> int -> string
(** [fmt_ratio a b] renders [a/b] as ["a/b (p%)"] ; [b = 0] renders as
    ["0/0 (-)"]. *)
