type t = {
  title : string;
  columns : string list;
  mutable rows : string list list; (* reversed *)
}

let create ~title ~columns = { title; columns; rows = [] }

let add_row t row =
  if List.length row <> List.length t.columns then
    invalid_arg "Table.add_row: arity mismatch";
  t.rows <- row :: t.rows

let add_rows t rows = List.iter (add_row t) rows

let render t =
  let rows = List.rev t.rows in
  let all = t.columns :: rows in
  let ncols = List.length t.columns in
  let widths = Array.make ncols 0 in
  List.iter
    (fun row ->
      List.iteri (fun i cell -> widths.(i) <- max widths.(i) (String.length cell)) row)
    all;
  let buf = Buffer.create 1024 in
  Buffer.add_string buf t.title;
  Buffer.add_char buf '\n';
  let pad i cell =
    let w = widths.(i) in
    let slack = w - String.length cell in
    cell ^ String.make slack ' '
  in
  let render_row row =
    Buffer.add_string buf "  ";
    List.iteri
      (fun i cell ->
        if i > 0 then Buffer.add_string buf "  ";
        Buffer.add_string buf (pad i cell))
      row;
    Buffer.add_char buf '\n'
  in
  render_row t.columns;
  Buffer.add_string buf "  ";
  Array.iteri
    (fun i w ->
      if i > 0 then Buffer.add_string buf "  ";
      Buffer.add_string buf (String.make w '-'))
    widths;
  Buffer.add_char buf '\n';
  List.iter render_row rows;
  Buffer.contents buf

let print t =
  print_string (render t);
  print_newline ()

let fmt_float ?(digits = 3) x = Printf.sprintf "%.*f" digits x

let fmt_ratio a b =
  if b = 0 then "0/0 (-)"
  else Printf.sprintf "%d/%d (%.1f%%)" a b (100.0 *. float_of_int a /. float_of_int b)
