type t = int array
(* invariant: t.(i) ∈ {1..m} for all i, all distinct; t.(i-1) = ϕ(i). *)

let of_array a =
  let m = Array.length a in
  let seen = Array.make (m + 1) false in
  Array.iter
    (fun x ->
      if x < 1 || x > m then invalid_arg "Permutation.of_array: value out of range";
      if seen.(x) then invalid_arg "Permutation.of_array: duplicate value";
      seen.(x) <- true)
    a;
  Array.copy a

let to_array p = Array.copy p
let size = Array.length

let apply p i =
  if i < 1 || i > Array.length p then invalid_arg "Permutation.apply";
  p.(i - 1)

let identity m = Array.init m (fun i -> i + 1)

let inverse p =
  let m = Array.length p in
  let q = Array.make m 0 in
  Array.iteri (fun i x -> q.(x - 1) <- i + 1) p;
  q

let compose f g = Array.map (fun x -> f.(x - 1)) g
let equal a b = a = b

let random st m =
  let a = identity m in
  for i = m - 1 downto 1 do
    let j = Random.State.int st (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done;
  a

let is_power_of_two m = m > 0 && m land (m - 1) = 0

let reverse_binary m =
  if not (is_power_of_two m) then
    invalid_arg "Permutation.reverse_binary: m must be a positive power of two";
  let bits =
    let rec go acc x = if x <= 1 then acc else go (acc + 1) (x lsr 1) in
    go 0 m
  in
  let rev_bits x =
    let r = ref 0 in
    for b = 0 to bits - 1 do
      if (x lsr b) land 1 = 1 then r := !r lor (1 lsl (bits - 1 - b))
    done;
    !r
  in
  (* Sort 0-based indices by reversed binary representation; the sorted
     listing, shifted to 1-based, is (ϕ(1),..,ϕ(m)). Reversal is an
     involution, so the listing at position j is rev_bits(j) itself. *)
  Array.init m (fun j -> rev_bits j + 1)

(* Longest strictly increasing subsequence by patience sorting: tails.(k)
   holds the smallest possible tail of an increasing subsequence of
   length k+1. *)
let longest_increasing a =
  let n = Array.length a in
  let tails = Array.make n 0 in
  let len = ref 0 in
  Array.iter
    (fun x ->
      (* binary search for the first tail >= x *)
      let lo = ref 0 and hi = ref !len in
      while !lo < !hi do
        let mid = (!lo + !hi) / 2 in
        if tails.(mid) < x then lo := mid + 1 else hi := mid
      done;
      tails.(!lo) <- x;
      if !lo = !len then incr len)
    a;
  !len

let longest_decreasing a =
  longest_increasing (Array.map (fun x -> -x) a)

let sortedness p = max (longest_increasing p) (longest_decreasing p)

let pp ppf p =
  Format.fprintf ppf "(%a)"
    (Format.pp_print_array
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " ")
       Format.pp_print_int)
    p
