type t = string

let validate s =
  String.iter
    (fun c ->
      if c <> '0' && c <> '1' then
        invalid_arg (Printf.sprintf "Bitstring.of_string: bad char %C" c))
    s

let of_string s =
  validate s;
  s

let to_string v = v
let length = String.length

let get v i =
  if i < 0 || i >= String.length v then invalid_arg "Bitstring.get";
  v.[i] = '1'

let equal = String.equal
let compare = String.compare

let of_int ~width x =
  if width < 0 || width > 62 then invalid_arg "Bitstring.of_int: width";
  if x < 0 || (width < 62 && x lsr width <> 0) then
    invalid_arg "Bitstring.of_int: value out of range";
  String.init width (fun i ->
      if (x lsr (width - 1 - i)) land 1 = 1 then '1' else '0')

let to_int v =
  if String.length v > 62 then invalid_arg "Bitstring.to_int: too long";
  String.fold_left (fun acc c -> (acc lsl 1) lor Bool.to_int (c = '1')) 0 v

let zero ~width =
  if width < 0 then invalid_arg "Bitstring.zero";
  String.make width '0'

let concat vs = String.concat "" vs
let sub v ~pos ~len = String.sub v pos len

let random st ~width =
  if width < 0 then invalid_arg "Bitstring.random";
  String.init width (fun _ -> if Random.State.bool st then '1' else '0')

let random_in_range st ~width ~lo ~hi =
  if width < 0 || width > 62 then invalid_arg "Bitstring.random_in_range: width";
  if lo < 0 || hi <= lo || (width < 62 && hi > 1 lsl width) then
    invalid_arg "Bitstring.random_in_range: empty or out-of-bounds range";
  of_int ~width (lo + Random.State.int st (hi - lo))

let fold_bits f v init =
  let acc = ref init in
  String.iteri (fun i c -> acc := f i (c = '1') !acc) v;
  !acc

let pp ppf v = Format.pp_print_string ppf v
