let mean a =
  if Array.length a = 0 then invalid_arg "Stats.mean: empty";
  Array.fold_left ( +. ) 0.0 a /. float_of_int (Array.length a)

let stddev a =
  let n = Array.length a in
  if n = 0 then invalid_arg "Stats.stddev: empty";
  if n = 1 then 0.0
  else begin
    let m = mean a in
    let ss = Array.fold_left (fun acc x -> acc +. ((x -. m) ** 2.0)) 0.0 a in
    sqrt (ss /. float_of_int (n - 1))
  end

let linear_fit pts =
  let n = Array.length pts in
  if n < 2 then invalid_arg "Stats.linear_fit: need >= 2 points";
  let fn = float_of_int n in
  let sx = Array.fold_left (fun acc (x, _) -> acc +. x) 0.0 pts in
  let sy = Array.fold_left (fun acc (_, y) -> acc +. y) 0.0 pts in
  let sxx = Array.fold_left (fun acc (x, _) -> acc +. (x *. x)) 0.0 pts in
  let sxy = Array.fold_left (fun acc (x, y) -> acc +. (x *. y)) 0.0 pts in
  let denom = (fn *. sxx) -. (sx *. sx) in
  if abs_float denom < 1e-12 then invalid_arg "Stats.linear_fit: degenerate x";
  let a = ((fn *. sxy) -. (sx *. sy)) /. denom in
  let b = (sy -. (a *. sx)) /. fn in
  let ybar = sy /. fn in
  let ss_tot = Array.fold_left (fun acc (_, y) -> acc +. ((y -. ybar) ** 2.0)) 0.0 pts in
  let ss_res =
    Array.fold_left (fun acc (x, y) -> acc +. ((y -. ((a *. x) +. b)) ** 2.0)) 0.0 pts
  in
  let r2 = if ss_tot < 1e-12 then 1.0 else 1.0 -. (ss_res /. ss_tot) in
  (a, b, r2)

let log2_fit pts =
  linear_fit
    (Array.map
       (fun (x, y) -> (log (float_of_int x) /. log 2.0, float_of_int y))
       pts)

let binomial_ci95 ~successes ~trials =
  if trials <= 0 then invalid_arg "Stats.binomial_ci95: trials";
  let p = float_of_int successes /. float_of_int trials in
  let half = 1.96 *. sqrt (p *. (1.0 -. p) /. float_of_int trials) in
  (Float.max 0.0 (p -. half), Float.min 1.0 (p +. half))
