lib/util/stats.mli:
