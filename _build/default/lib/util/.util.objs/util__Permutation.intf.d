lib/util/permutation.mli: Format Random
