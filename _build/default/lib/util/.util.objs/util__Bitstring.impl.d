lib/util/bitstring.ml: Bool Format Printf Random String
