lib/util/bitstring.mli: Format Random
