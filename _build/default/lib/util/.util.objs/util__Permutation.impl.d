lib/util/permutation.ml: Array Format Random
