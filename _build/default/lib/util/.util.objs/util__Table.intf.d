lib/util/table.mli:
