(** Fixed-alphabet bit strings over [{0,1}].

    The paper's decision problems take inputs [v1#...#vm#v'1#...#v'm#]
    where each [v_i] is a string over [{0,1}]. This module provides a
    dedicated representation with the operations the reproduction needs:
    lexicographic order (CHECK-SORT sorts lexicographically in ascending
    order), conversion to/from integer values (the hard instances of
    Lemma 21 identify [{0,1}^n] with [{0,..,2^n - 1}]), and streaming
    access to bits most-significant first (the fingerprint algorithm of
    Theorem 8(a) reads [v_i] bit by bit). *)

type t
(** A bit string; immutable. The empty string is allowed. *)

val of_string : string -> t
(** [of_string s] validates that [s] consists only of ['0'] and ['1'].
    @raise Invalid_argument otherwise. *)

val to_string : t -> string

val length : t -> int

val get : t -> int -> bool
(** [get v i] is bit [i] counted from the most significant (leftmost)
    bit, [true] for ['1'].
    @raise Invalid_argument if [i] is out of bounds. *)

val equal : t -> t -> bool

val compare : t -> t -> int
(** Lexicographic order on the raw strings; this is the order
    CHECK-SORT uses. Note that for equal-length strings it coincides
    with numeric order of the binary values. *)

val of_int : width:int -> int -> t
(** [of_int ~width x] is the [width]-bit binary representation of [x],
    most significant bit first, zero padded.
    @raise Invalid_argument if [x < 0] or [x >= 2^width] or [width < 0]
    or [width > 62]. *)

val to_int : t -> int
(** Numeric value of the string read as binary, MSB first.
    @raise Invalid_argument if longer than 62 bits. *)

val zero : width:int -> t
(** The all-zeroes string. *)

val concat : t list -> t

val sub : t -> pos:int -> len:int -> t

val random : Random.State.t -> width:int -> t
(** Uniformly random string in [{0,1}^width]. *)

val random_in_range : Random.State.t -> width:int -> lo:int -> hi:int -> t
(** Uniformly random string whose numeric value lies in [\[lo, hi)].
    Requires [width <= 62].
    @raise Invalid_argument if the range is empty or out of bounds. *)

val fold_bits : (int -> bool -> 'a -> 'a) -> t -> 'a -> 'a
(** [fold_bits f v init] folds [f] over the bits MSB-first, passing the
    bit index and value. Used by streaming [mod] computations. *)

val pp : Format.formatter -> t -> unit
