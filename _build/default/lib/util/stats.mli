(** Small statistics helpers for the experiment harness.

    The experiments fit reversal counts against [a·log2 N + b]
    (Corollary 7 / Theorem 11 upper bounds are O(log N)) and report
    empirical error rates with confidence margins (Theorem 8(a)). *)

val mean : float array -> float
(** @raise Invalid_argument on the empty array. *)

val stddev : float array -> float
(** Sample standard deviation (n−1 denominator); 0 for singletons.
    @raise Invalid_argument on the empty array. *)

val linear_fit : (float * float) array -> float * float * float
(** [linear_fit pts] least-squares fit [y = a·x + b]; returns
    [(a, b, r2)] where [r2] is the coefficient of determination
    ([1.0] when the y-variance is zero).
    @raise Invalid_argument with fewer than two points. *)

val log2_fit : (int * int) array -> float * float * float
(** [log2_fit pts] fits [y = a·log2 x + b] over [(x, y)] pairs. *)

val binomial_ci95 : successes:int -> trials:int -> float * float
(** Normal-approximation 95% confidence interval for a proportion,
    clamped to [\[0,1\]]. [trials] must be positive. *)
