(** Permutations of [{1,..,m}] and the sortedness measure of Definition 19.

    The hard instances of the paper (Lemma 21, Lemma 22) are built from a
    permutation [ϕ_m] with small {e sortedness}: the length of the longest
    subsequence of [(ϕ(1),..,ϕ(m))] sorted in either ascending or
    descending order. Remark 20 observes that sorting [1..m]
    lexicographically by reverse binary representation yields
    [sortedness(ϕ_m) ≤ 2·√m − 1] (for [m] a power of two), while every
    permutation has sortedness [Ω(√m)] (Erdős–Szekeres). *)

type t
(** A permutation of [{1,..,m}]; immutable. *)

val of_array : int array -> t
(** [of_array a] interprets [a.(i-1)] as [ϕ(i)], 1-based values.
    @raise Invalid_argument if [a] is not a permutation of [1..m]. *)

val to_array : t -> int array
(** A fresh copy of the underlying 1-based image array. *)

val size : t -> int

val apply : t -> int -> int
(** [apply phi i] is [ϕ(i)] for [1 ≤ i ≤ size phi].
    @raise Invalid_argument if [i] is out of range. *)

val identity : int -> t

val inverse : t -> t

val compose : t -> t -> t
(** [compose f g] is the permutation [i ↦ f (g i)]. *)

val equal : t -> t -> bool

val random : Random.State.t -> int -> t
(** Uniform random permutation (Fisher–Yates). *)

val reverse_binary : int -> t
(** [reverse_binary m] is the permutation [ϕ_m] of Remark 20 for [m] a
    power of two: [(ϕ(1),..,ϕ(m))] lists [1..m] sorted lexicographically
    by the reverse binary representation of the {e 0-based} index.
    @raise Invalid_argument if [m] is not a positive power of two. *)

val sortedness : t -> int
(** [sortedness phi] per Definition 19: the maximum of the longest
    ascending and longest descending subsequence lengths of
    [(ϕ(1),..,ϕ(m))]. Runs in O(m log m). *)

val longest_increasing : int array -> int
(** Length of the longest strictly increasing subsequence. *)

val longest_decreasing : int array -> int

val pp : Format.formatter -> t -> unit
