type 'a decider = Random.State.t -> 'a -> bool

let repeat_or ~rounds decider =
  if rounds < 1 then invalid_arg "Boost.repeat_or: rounds >= 1";
  fun st x ->
    let rec go k = k > 0 && (decider st x || go (k - 1)) in
    go rounds

let repeat_and ~rounds decider =
  if rounds < 1 then invalid_arg "Boost.repeat_and: rounds >= 1";
  fun st x ->
    let rec go k = k = 0 || (decider st x && go (k - 1)) in
    go rounds

let rounds_for ~target ~base =
  if not (0.0 < base && base < 1.0) then invalid_arg "Boost.rounds_for: base";
  if not (0.0 < target && target < 1.0) then invalid_arg "Boost.rounds_for: target";
  let k = ceil (log target /. log base) in
  max 1 (int_of_float k)

let estimate_acceptance st ?(samples = 1000) decider x =
  let hits = ref 0 in
  for _ = 1 to samples do
    if decider st x then incr hits
  done;
  float_of_int !hits /. float_of_int samples
