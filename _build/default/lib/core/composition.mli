(** The composition lemma (Lemma 34) as a checkable property.

    If two runs of the same machine under the same choice sequence have
    the same skeleton, and the two inputs differ only at two positions
    [i, i'] that are {e not compared} in that skeleton, then crossing
    the inputs at those positions changes neither the skeleton nor the
    acceptance. This module states the property over concrete inputs so
    the test suite can exercise it (it is the correctness core of the
    adversary). *)

type verdict =
  | Holds
  | Precondition_failed of string
      (** skeletons differ, acceptance differs, or the pair is compared
          — the lemma does not apply *)
  | Violated of string
      (** preconditions held but a composed run changed skeleton or
          acceptance: indicates a machine whose [alpha] cheats (reads
          positions rather than values) — or a bug *)

val check :
  machine:'v Listmachine.Nlm.t ->
  choices:(int -> int) ->
  v:'v array ->
  w:'v array ->
  i:int ->
  i':int ->
  ?fuel:int ->
  unit ->
  verdict
(** [check ~machine ~choices ~v ~w ~i ~i' ()] verifies Lemma 34 for the
    two composed inputs [u = v\[i' ← w\]] and [u' = v\[i ← w\]].
    @raise Invalid_argument if [v] and [w] differ at positions other
    than [i, i'] or have the wrong arity. *)
