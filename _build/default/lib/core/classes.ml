type mode =
  | Deterministic
  | Randomized_one_sided
  | Co_randomized
  | Nondeterministic
  | Las_vegas

type spec = {
  mode : mode;
  r : int -> int;
  s : int -> int;
  t : int option;
  label : string;
}

let make_spec ~mode ~r ~s ?t ~label () = { mode; r; s; t; label }

type usage = { n : int; scans : int; space : int; tapes : int }

let admits spec u =
  u.scans <= spec.r u.n
  && u.space <= spec.s u.n
  && match spec.t with None -> true | Some t -> u.tapes <= t

let mode_name = function
  | Deterministic -> "deterministic (ST)"
  | Randomized_one_sided -> "randomized, no false positives (RST)"
  | Co_randomized -> "randomized, no false negatives (co-RST)"
  | Nondeterministic -> "nondeterministic (NST)"
  | Las_vegas -> "Las Vegas (LasVegas-RST)"

type membership = {
  problem : string;
  class_label : string;
  member : bool;
  provenance : string;
}

let lower = "RST(o(log N), O(N^{1/4}/log N), O(1))"

let paper_results =
  let mk problem class_label member provenance =
    { problem; class_label; member; provenance }
  in
  [
    (* Theorem 6: the main lower bound *)
    mk "SET-EQUALITY" lower false "Theorem 6";
    mk "MULTISET-EQUALITY" lower false "Theorem 6";
    mk "CHECK-SORT" lower false "Theorem 6";
    (* Corollary 7: upper bounds and SHORT versions *)
    mk "SET-EQUALITY" "ST(O(log N), O(1), 2)" true "Corollary 7";
    mk "MULTISET-EQUALITY" "ST(O(log N), O(1), 2)" true "Corollary 7";
    mk "CHECK-SORT" "ST(O(log N), O(1), 2)" true "Corollary 7";
    mk "SHORT-SET-EQUALITY" lower false "Corollary 7";
    mk "SHORT-MULTISET-EQUALITY" lower false "Corollary 7";
    mk "SHORT-CHECK-SORT" lower false "Corollary 7";
    mk "SHORT-SET-EQUALITY" "ST(O(log N), O(log N), 3)" true "Corollary 7";
    mk "SHORT-MULTISET-EQUALITY" "ST(O(log N), O(log N), 3)" true "Corollary 7";
    mk "SHORT-CHECK-SORT" "ST(O(log N), O(log N), 3)" true "Corollary 7";
    (* Theorem 8 *)
    mk "MULTISET-EQUALITY" "co-RST(2, O(log N), 1)" true "Theorem 8(a)";
    mk "MULTISET-EQUALITY" "NST(3, O(log N), 2)" true "Theorem 8(b)";
    mk "SET-EQUALITY" "NST(3, O(log N), 2)" true "Theorem 8(b)";
    mk "CHECK-SORT" "NST(3, O(log N), 2)" true "Theorem 8(b)";
    (* Corollary 10 *)
    mk "SORTING" "LasVegas-RST(o(log N), O(N^{1/4}/log N), O(1))" false
      "Corollary 10";
    (* Section 4 *)
    mk "relational algebra (any query, data complexity)"
      "ST(O(log N), O(1), O(1))" true "Theorem 11(a)";
    mk "relational algebra (query Q' = symmetric difference)"
      "LasVegas-RST(o(log N), O(N^{1/4}/log N), O(1))" false "Theorem 11(b)";
    mk "XQuery (set-equality query)"
      "LasVegas-RST(o(log N), O(N^{1/4}/log N), O(1))" false "Theorem 12";
    mk "XPath filtering (Figure 1 query)"
      "co-RST(o(log N), O(N^{1/4}/log N), O(1))" false "Theorem 13";
  ]
