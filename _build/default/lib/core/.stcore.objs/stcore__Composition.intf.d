lib/core/composition.mli: Listmachine
