lib/core/composition.ml: Array List Listmachine Printf
