lib/core/boost.mli: Random
