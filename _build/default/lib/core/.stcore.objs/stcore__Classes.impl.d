lib/core/classes.ml:
