lib/core/params.mli:
