lib/core/boost.ml: Random
