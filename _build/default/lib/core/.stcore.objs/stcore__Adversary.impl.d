lib/core/adversary.ml: Array Hashtbl List Listmachine Option Printf Problems Random String Util
