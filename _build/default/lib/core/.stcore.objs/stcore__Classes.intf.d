lib/core/classes.mli:
