lib/core/adversary.mli: Listmachine Problems Random Util
