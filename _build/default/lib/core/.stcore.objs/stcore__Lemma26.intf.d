lib/core/lemma26.mli: Listmachine Random
