lib/core/lemma26.ml: Array List Listmachine Random
