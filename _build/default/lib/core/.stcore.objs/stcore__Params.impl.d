lib/core/params.ml:
