(** The ST(r,s,t) complexity-class landscape as data (Section 2, and
    the paper's classification results).

    A {!spec} describes a resource envelope; {!admits} checks a
    measured resource usage against it. {!paper_results} encodes, as
    data, every membership / non-membership the paper proves, with its
    provenance — rendered by experiment E11 and cross-linked from
    EXPERIMENTS.md. *)

type mode =
  | Deterministic  (** ST classes *)
  | Randomized_one_sided  (** RST: no false positives, ≤ 1/2 false negatives *)
  | Co_randomized  (** co-RST: no false negatives, ≤ 1/2 false positives *)
  | Nondeterministic  (** NST *)
  | Las_vegas  (** LasVegas-RST, for function problems *)

type spec = {
  mode : mode;
  r : int -> int;  (** scan bound as a function of [N] *)
  s : int -> int;  (** internal-space bound *)
  t : int option;  (** number of external tapes; [None] = O(1), any *)
  label : string;  (** e.g. ["RST(o(log N), O(N^1/4/log N), O(1))"] *)
}

val make_spec :
  mode:mode -> r:(int -> int) -> s:(int -> int) -> ?t:int -> label:string -> unit -> spec

type usage = { n : int; scans : int; space : int; tapes : int }

val admits : spec -> usage -> bool
(** Whether the measured usage fits inside the envelope. *)

val mode_name : mode -> string

type membership = {
  problem : string;
  class_label : string;
  member : bool;
  provenance : string;  (** theorem / corollary in the paper *)
}

val paper_results : membership list
(** Every classification the paper states for the three decision
    problems, their SHORT versions, sorting, and the three query
    languages. *)
