module Nlm = Listmachine.Nlm
module Skeleton = Listmachine.Skeleton

type verdict =
  | Holds
  | Precondition_failed of string
  | Violated of string

let check ~machine ~choices ~v ~w ~i ~i' ?(fuel = 200_000) () =
  let ml = machine.Nlm.input_length in
  if Array.length v <> ml || Array.length w <> ml then
    invalid_arg "Composition.check: arity";
  if i < 1 || i > ml || i' < 1 || i' > ml || i = i' then
    invalid_arg "Composition.check: positions";
  Array.iteri
    (fun idx _ ->
      let pos = idx + 1 in
      if pos <> i && pos <> i' && v.(idx) <> w.(idx) then
        invalid_arg "Composition.check: inputs differ outside {i, i'}")
    v;
  let run values = Nlm.run ~fuel machine ~values ~choices in
  let tv = run v and tw = run w in
  let skv = Skeleton.of_trace tv and skw = Skeleton.of_trace tw in
  if not (Skeleton.equal skv skw) then
    Precondition_failed "runs on v and w have different skeletons"
  else if tv.Nlm.accepted <> tw.Nlm.accepted then
    Precondition_failed "runs on v and w disagree on acceptance"
  else if Skeleton.compared skv i i' then
    Precondition_failed "positions i and i' are compared in the skeleton"
  else begin
    let cross a b positions =
      let u = Array.copy a in
      List.iter (fun p -> u.(p - 1) <- b.(p - 1)) positions;
      u
    in
    let u = cross v w [ i' ] in
    let u' = cross v w [ i ] in
    let check_one label values =
      let tr = run values in
      if not (Skeleton.equal (Skeleton.of_trace tr) skv) then
        Some (Printf.sprintf "%s: skeleton changed" label)
      else if tr.Nlm.accepted <> tv.Nlm.accepted then
        Some (Printf.sprintf "%s: acceptance changed" label)
      else None
    in
    match (check_one "u" u, check_one "u'" u') with
    | None, None -> Holds
    | Some msg, _ | _, Some msg -> Violated msg
  end
