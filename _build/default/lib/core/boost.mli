(** Error-amplification combinators for one-sided randomized deciders.

    The paper uses amplification twice: Theorem 8(a)'s error budget is
    met by construction, while the proof of Theorem 13 runs its machine
    [T̃] twice and accepts if either run accepts, boosting a ≥ 1/4
    acceptance guarantee to the ≥ 1/2 the RST definition demands. These
    combinators package both directions with their exact error algebra,
    and the test suite verifies the algebra empirically on coin-style
    deciders with known acceptance probabilities.

    Conventions: a decider returns [true]/[false]; its {e error side}
    determines which answers are trustworthy.

    - {b RST-style} (no false positives): [true] is always right;
      positives may be missed with probability ≤ β. Repeating and
      OR-ing keeps "no false positives" and shrinks β to βᵏ.
    - {b co-RST-style} (no false negatives): [false] is always right;
      negatives may be accepted with probability ≤ β. Repeating and
      AND-ing keeps "no false negatives" and shrinks β to βᵏ. *)

type 'a decider = Random.State.t -> 'a -> bool

val repeat_or : rounds:int -> 'a decider -> 'a decider
(** Accept iff {e some} round accepts. Preserves "no false positives";
    false-negative probability βᵏ.
    @raise Invalid_argument if [rounds < 1]. *)

val repeat_and : rounds:int -> 'a decider -> 'a decider
(** Accept iff {e every} round accepts. Preserves "no false negatives";
    false-positive probability βᵏ.
    @raise Invalid_argument if [rounds < 1]. *)

val rounds_for : target:float -> base:float -> int
(** Smallest [k] with [base^k ≤ target], for [0 < base < 1] and
    [0 < target < 1].
    @raise Invalid_argument outside those ranges. *)

val estimate_acceptance :
  Random.State.t -> ?samples:int -> 'a decider -> 'a -> float
(** Empirical acceptance probability of a decider on one input
    ([samples] defaults to 1000). *)
