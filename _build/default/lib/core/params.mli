(** Parameter arithmetic of the lower bound (Lemma 21 and Lemma 22).

    Lemma 21 needs, for an (r,t)-bounded NLM with [k] states on [2m]
    inputs from [{0,1}^n]:

    {v t ≥ 2,  m ≥ 24·(t+1)^{4r} + 1,  k ≥ 2m + 3,
       n ≥ 1 + (m² + 1)·log2(2k) v}

    Lemma 22 instantiates them against resource functions [r(N)], [s(N)]:
    with [n = m³] and [N = 2m(m³+1)], [m] must satisfy equations (3)
    and (4):

    {v (3)  m  ≥ 24·(t+1)^{4·r(N)} + 1
       (4)  m³ ≥ 1 + d·t²·r(N)·s(N) + 3t·log2 N v}

    which is possible for large [m] exactly when [r(N) = o(log N)] and
    [r(N)·s(N) = o(N^{1/4})] — the tightness frontier of Theorem 6. *)

type lemma21 = {
  min_m : float;  (** [24·(t+1)^{4r} + 1] (overflows int quickly) *)
  min_k : int;  (** [2m + 3] *)
  min_n : float;  (** [1 + (m²+1)·log2(2k)] *)
}

val lemma21_thresholds : t:int -> r:int -> m:int -> k:int -> lemma21
(** The thresholds; [min_n] is computed from the given [m] and [k].
    @raise Invalid_argument if [t < 2]. *)

val lemma21_ok : t:int -> r:int -> m:int -> k:int -> n:int -> bool
(** All four Lemma 21 side conditions hold. *)

val input_size : m:int -> int
(** [N = 2m(m³+1)] — the CHECK-ϕ input size for [n = m³]. *)

val eq3_holds : t:int -> r:(int -> int) -> m:int -> bool
(** Equation (3) at [N = input_size m]. *)

val eq4_holds : t:int -> d:int -> r:(int -> int) -> s:(int -> int) -> m:int -> bool
(** Equation (4) at [N = input_size m], with simulation constant [d]. *)

val find_min_m :
  t:int -> d:int -> r:(int -> int) -> s:(int -> int) -> cap:int -> int option
(** The smallest power-of-two [m ≤ cap] satisfying both equations —
    [None] if no such [m] exists below the cap (as happens when [r]
    grows like [log N], illustrating tightness). *)

(** Stock resource functions for experiments. *)
val r_const : int -> int -> int
(** [r_const c] is [fun _ -> c]. *)

val r_log : ?scale:float -> unit -> int -> int
(** [⌈scale · log2 N⌉], default scale 1. *)

val r_loglog : unit -> int -> int
(** [⌈log2 log2 N⌉] — a stock [o(log N)] function. *)

val s_fourth_root : ?scale:float -> unit -> int -> int
(** [⌈scale · N^{1/4} / log2 N⌉] — the internal-memory frontier. *)
