let log2 x = log x /. log 2.0

type lemma21 = { min_m : float; min_k : int; min_n : float }

let lemma21_thresholds ~t ~r ~m ~k =
  if t < 2 then invalid_arg "Params.lemma21_thresholds: t >= 2";
  let min_m = (24.0 *. (float_of_int (t + 1) ** float_of_int (4 * r))) +. 1.0 in
  let min_k = (2 * m) + 3 in
  let min_n =
    1.0 +. ((float_of_int ((m * m) + 1)) *. log2 (2.0 *. float_of_int k))
  in
  { min_m; min_k; min_n }

let lemma21_ok ~t ~r ~m ~k ~n =
  t >= 2
  &&
  let th = lemma21_thresholds ~t ~r ~m ~k in
  float_of_int m >= th.min_m && k >= th.min_k && float_of_int n >= th.min_n

let input_size ~m =
  (* saturate on overflow (m^4 exceeds 62 bits around m = 2^15):
     input_size is only compared against thresholds, monotonically *)
  let cube = m * m * m in
  if m > 0 && cube / m / m <> m then max_int / 2
  else begin
    let v = 2 * m * (cube + 1) in
    if v < 0 then max_int / 2 else v
  end

let eq3_holds ~t ~r ~m =
  let n_sz = input_size ~m in
  float_of_int m >= (24.0 *. (float_of_int (t + 1) ** float_of_int (4 * r n_sz))) +. 1.0

let eq4_holds ~t ~d ~r ~s ~m =
  let n_sz = input_size ~m in
  let rhs =
    1.0
    +. (float_of_int (d * t * t) *. float_of_int (r n_sz) *. float_of_int (s n_sz))
    +. (3.0 *. float_of_int t *. log2 (float_of_int n_sz))
  in
  float_of_int (m * m * m) >= rhs

let find_min_m ~t ~d ~r ~s ~cap =
  let rec go m =
    if m > cap then None
    else if eq3_holds ~t ~r ~m && eq4_holds ~t ~d ~r ~s ~m then Some m
    else go (2 * m)
  in
  go 2

let r_const c = fun _ -> c

let r_log ?(scale = 1.0) () =
 fun n -> max 1 (int_of_float (ceil (scale *. log2 (float_of_int (max 2 n)))))

let r_loglog () =
 fun n ->
  max 1 (int_of_float (ceil (log2 (max 2.0 (log2 (float_of_int (max 2 n)))))))

let s_fourth_root ?(scale = 1.0) () =
 fun n ->
  let fn = float_of_int (max 2 n) in
  max 1 (int_of_float (ceil (scale *. (fn ** 0.25) /. log2 fn)))
