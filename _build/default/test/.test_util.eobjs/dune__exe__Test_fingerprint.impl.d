test/test_fingerprint.ml: Alcotest Array Fingerprint List Numtheory Printf Problems Random
