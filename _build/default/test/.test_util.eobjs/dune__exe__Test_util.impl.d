test/test_util.ml: Alcotest Array Int List Printf QCheck QCheck_alcotest Random String Util
