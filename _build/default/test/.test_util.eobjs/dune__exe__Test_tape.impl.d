test/test_tape.ml: Alcotest Char Gen List QCheck QCheck_alcotest Tape
