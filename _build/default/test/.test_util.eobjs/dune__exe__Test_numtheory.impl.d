test/test_numtheory.ml: Alcotest Hashtbl List Numtheory Printf QCheck QCheck_alcotest Random Util
