test/test_problems.ml: Alcotest Array List Printf Problems QCheck QCheck_alcotest Random Util
