test/test_stcore.mli:
