test/test_nst.ml: Alcotest List Nst Printf Problems Random
