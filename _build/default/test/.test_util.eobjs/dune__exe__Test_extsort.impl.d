test/test_extsort.ml: Alcotest Array Extsort Gen List Printf Problems QCheck QCheck_alcotest Random String Tape Util
