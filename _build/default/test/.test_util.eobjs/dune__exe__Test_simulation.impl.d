test/test_simulation.ml: Alcotest Array Int List Listmachine Random Simulation Turing
