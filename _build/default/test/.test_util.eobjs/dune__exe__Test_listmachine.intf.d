test/test_listmachine.mli:
