test/test_xmlq.ml: Alcotest Array Format List Printf Problems QCheck QCheck_alcotest Random String Util Xmlq
