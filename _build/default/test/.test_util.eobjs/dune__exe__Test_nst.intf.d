test/test_nst.mli:
