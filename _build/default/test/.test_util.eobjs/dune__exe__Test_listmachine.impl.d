test/test_listmachine.ml: Alcotest Array Fun Int List Listmachine Printf Problems QCheck QCheck_alcotest Random Stcore String Util
