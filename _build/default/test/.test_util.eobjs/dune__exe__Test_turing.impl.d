test/test_turing.ml: Alcotest List Printf Random String Turing
