test/test_stcore.ml: Alcotest Array List Listmachine Printf Problems Random Stcore Util
