test/test_relalg.ml: Alcotest Array List Printf Problems QCheck QCheck_alcotest Random Relalg Util
