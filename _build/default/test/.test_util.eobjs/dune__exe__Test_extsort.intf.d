test/test_extsort.mli:
