test/test_xmlq.mli:
