(* Tests for the problems library: instance encoding, reference
   deciders, intervals, generators, the CHECK-phi space, and the SHORT
   reduction of Corollary 7. *)

module B = Util.Bitstring
module P = Util.Permutation
module I = Problems.Instance
module D = Problems.Decide
module G = Problems.Generators

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

let bs = B.of_string

let inst xs ys = I.make (Array.of_list (List.map bs xs)) (Array.of_list (List.map bs ys))

(* ------------------------------------------------------------------ *)
(* Instance *)

let test_encode () =
  let i = inst [ "01"; "10" ] [ "10"; "01" ] in
  check_str "encoding" "01#10#10#01#" (I.encode i);
  check_int "size" 12 (I.size i);
  check_int "m" 2 (I.m i);
  check_str "N matches length" (I.encode i)
    (I.encode (I.decode (I.encode i)))

let test_decode_roundtrip () =
  let st = Random.State.make [| 8 |] in
  for _ = 1 to 50 do
    let i = G.yes_instance st D.Multiset_equality ~m:5 ~n:7 in
    check "roundtrip" true (I.equal (I.decode (I.encode i)) i)
  done

let test_decode_errors () =
  List.iter
    (fun w ->
      try
        ignore (I.decode w);
        Alcotest.fail (Printf.sprintf "accepted %S" w)
      with Invalid_argument _ -> ())
    [ "01"; "01#10"; "01#2#"; "0#" ]

let test_empty_instance () =
  let e = I.decode "" in
  check_int "m" 0 (I.m e);
  check_int "size" 0 (I.size e);
  check "set-eq" true (D.set_equality e);
  check "checksort" true (D.check_sort e)

let test_uniform_length () =
  check "uniform" true (I.uniform_length (inst [ "01"; "11" ] [ "00"; "10" ]) = Some 2);
  check "ragged" true (I.uniform_length (inst [ "01"; "1" ] [ "00"; "10" ]) = None)

(* ------------------------------------------------------------------ *)
(* Deciders *)

let test_multiset_vs_set () =
  let i = inst [ "00"; "00"; "01" ] [ "01"; "01"; "00" ] in
  check "sets equal" true (D.set_equality i);
  check "multisets differ" false (D.multiset_equality i)

let test_check_sort () =
  check "sorted" true (D.check_sort (inst [ "10"; "01" ] [ "01"; "10" ]));
  check "not sorted" false (D.check_sort (inst [ "10"; "01" ] [ "10"; "01" ]));
  check "wrong multiset" false (D.check_sort (inst [ "10"; "01" ] [ "01"; "11" ]));
  check "duplicates sorted" true
    (D.check_sort (inst [ "11"; "00"; "11" ] [ "00"; "11"; "11" ]))

let test_check_phi () =
  let phi = P.of_array [| 2; 1 |] in
  (* need v_1 = v'_2 and v_2 = v'_1 *)
  check "yes" true (D.check_phi ~phi (inst [ "01"; "10" ] [ "10"; "01" ]));
  check "no" false (D.check_phi ~phi (inst [ "01"; "10" ] [ "01"; "10" ]))

let prop_checksort_iff_sorted_multiset =
  QCheck.Test.make ~name:"check_sort = multiset_eq && sorted" ~count:200
    QCheck.(pair (int_range 1 8) (int_bound 1000))
    (fun (m, seed) ->
      let st = Random.State.make [| seed |] in
      let i, _ = G.labelled st D.Check_sort ~m ~n:4 in
      let ys = I.ys i in
      let sorted = ref true in
      for k = 0 to Array.length ys - 2 do
        if B.compare ys.(k) ys.(k + 1) > 0 then sorted := false
      done;
      D.check_sort i = (D.multiset_equality i && !sorted))

(* ------------------------------------------------------------------ *)
(* Intervals *)

let test_intervals () =
  let p = Problems.Intervals.make ~m:4 ~n:6 in
  check_int "log2m" 2 (Problems.Intervals.log2m p);
  check_int "index of min" 1 (Problems.Intervals.index_of p (bs "000000"));
  check_int "index of max" 4 (Problems.Intervals.index_of p (bs "111111"));
  check_int "interval 3" 3 (Problems.Intervals.index_of p (bs "100001"));
  check "membership" true (Problems.Intervals.mem p 2 (bs "010101"));
  check_str "min elt" "010000" (B.to_string (Problems.Intervals.min_element p 2))

let test_intervals_m1 () =
  let p = Problems.Intervals.make ~m:1 ~n:3 in
  check_int "everything in I_1" 1 (Problems.Intervals.index_of p (bs "101"))

let prop_random_element_in_interval =
  QCheck.Test.make ~name:"random_element lands in its interval" ~count:300
    QCheck.(pair (int_range 0 4) (int_bound 10000))
    (fun (lg, seed) ->
      let m = 1 lsl lg in
      let st = Random.State.make [| seed |] in
      let p = Problems.Intervals.make ~m ~n:(lg + 4) in
      let j = 1 + Random.State.int st m in
      Problems.Intervals.index_of p (Problems.Intervals.random_element st p j) = j)

(* ------------------------------------------------------------------ *)
(* Generators *)

let test_generators_labelled () =
  let st = Random.State.make [| 9 |] in
  List.iter
    (fun prob ->
      for _ = 1 to 40 do
        let i, label = G.labelled st prob ~m:6 ~n:8 in
        check "label correct" true (D.decide prob i = label)
      done)
    D.all_problems

let test_set_yes_multiset_no () =
  let st = Random.State.make [| 10 |] in
  for _ = 1 to 20 do
    let i = G.set_yes_multiset_no st ~m:5 ~n:6 in
    check "set yes" true (D.set_equality i);
    check "multiset no" false (D.multiset_equality i)
  done

(* ------------------------------------------------------------------ *)
(* CHECK-phi space *)

let space8 = G.Checkphi.default_space ~m:8 ~n:12

let test_checkphi_yes_no () =
  let st = Random.State.make [| 11 |] in
  for _ = 1 to 30 do
    let y = G.Checkphi.yes st space8 in
    check "member" true (G.Checkphi.member space8 y);
    check "yes" true (G.Checkphi.is_yes space8 y);
    let n = G.Checkphi.no st space8 in
    check "member no" true (G.Checkphi.member space8 n);
    check "no" false (G.Checkphi.is_yes space8 n)
  done

let test_checkphi_coincides_with_problems () =
  (* On the hard instance space, CHECK-phi, SET-EQUALITY,
     MULTISET-EQUALITY and CHECK-SORT all coincide (proof of Thm 6). *)
  let st = Random.State.make [| 12 |] in
  for _ = 1 to 30 do
    let y = G.Checkphi.yes st space8 and n = G.Checkphi.no st space8 in
    List.iter
      (fun i ->
        let expected = G.Checkphi.is_yes space8 i in
        check "set-eq coincides" true (D.set_equality i = expected);
        check "multiset-eq coincides" true (D.multiset_equality i = expected);
        check "checksort coincides" true (D.check_sort i = expected))
      [ y; n ]
  done

let test_checkphi_member_rejects () =
  let st = Random.State.make [| 13 |] in
  let y = G.Checkphi.yes st space8 in
  (* wrong m *)
  let small = inst [ "000000000000" ] [ "000000000000" ] in
  check "wrong m" false (G.Checkphi.member space8 small);
  (* move an x value into the wrong interval *)
  let xs = I.xs y in
  xs.(0) <- bs "111111111111";
  let moved = I.make xs (I.ys y) in
  check "wrong interval" true
    (not (G.Checkphi.member space8 moved)
    || Problems.Intervals.index_of (G.Checkphi.intervals space8) xs.(0)
       = P.apply (G.Checkphi.phi space8) 1)

(* ------------------------------------------------------------------ *)
(* SHORT reduction (Corollary 7, Appendix E) *)

let test_short_reduce_preserves () =
  let st = Random.State.make [| 14 |] in
  let m = 8 in
  let space = G.Checkphi.default_space ~m ~n:(m * m * m) in
  let phi = G.Checkphi.phi space in
  for _ = 1 to 5 do
    let y = G.Checkphi.yes st space in
    let fy = Problems.Short.reduce ~phi y in
    check "yes preserved (multiset)" true (D.multiset_equality fy);
    check "yes preserved (set)" true (D.set_equality fy);
    check "yes preserved (checksort)" true (D.check_sort fy);
    let n = G.Checkphi.no st space in
    let fn = Problems.Short.reduce ~phi n in
    check "no preserved (multiset)" false (D.multiset_equality fn);
    check "no preserved (set)" false (D.set_equality fn);
    check "no preserved (checksort)" false (D.check_sort fn)
  done

let test_short_is_short () =
  let st = Random.State.make [| 15 |] in
  let m = 8 in
  let space = G.Checkphi.default_space ~m ~n:(m * m * m) in
  let phi = G.Checkphi.phi space in
  let y = G.Checkphi.yes st space in
  let fy = Problems.Short.reduce ~phi y in
  check "strings short" true (Problems.Short.is_short ~c:2 fy);
  check_int "block length" (5 * 3) (Problems.Short.block_length ~m);
  check_int "blocks" ((m * m * m + 2) / 3) (Problems.Short.blocks_per_string ~m ~n:(m * m * m));
  check_int "m'" (I.m fy) (Problems.Short.blocks_per_string ~m ~n:(m * m * m) * m)

let test_short_size_linear () =
  (* |f(v)| = Theta(|v|) (property (1) in Appendix E) *)
  let st = Random.State.make [| 16 |] in
  List.iter
    (fun m ->
      let space = G.Checkphi.default_space ~m ~n:(m * m * m) in
      let phi = G.Checkphi.phi space in
      let y = G.Checkphi.yes st space in
      let fy = Problems.Short.reduce ~phi y in
      let ratio = float_of_int (I.size fy) /. float_of_int (I.size y) in
      check (Printf.sprintf "m=%d ratio %.2f" m ratio) true (ratio < 6.0 && ratio > 0.9))
    [ 4; 8; 16 ]

(* ------------------------------------------------------------------ *)
(* DISJOINT-SETS (Section 9 open problem) *)

let test_disjoint_decider () =
  check "disjoint" true (D.set_equality (inst [] []) |> fun _ ->
    Problems.Disjoint.decide (inst [ "00"; "01" ] [ "10"; "11" ]));
  check "shared" false (Problems.Disjoint.decide (inst [ "00"; "01" ] [ "01"; "11" ]));
  check "empty" true (Problems.Disjoint.decide (I.decode ""))

let test_disjoint_generators () =
  let st = Random.State.make [| 44 |] in
  for _ = 1 to 40 do
    let y = Problems.Disjoint.yes_instance st ~m:6 ~n:8 in
    check "yes disjoint" true (Problems.Disjoint.decide y);
    let n = Problems.Disjoint.no_instance st ~m:6 ~n:8 in
    check "no intersects" false (Problems.Disjoint.decide n);
    let i, label = Problems.Disjoint.labelled st ~m:6 ~n:8 in
    check "labelled" true (Problems.Disjoint.decide i = label)
  done

let test_disjoint_composition_dichotomy () =
  let st = Random.State.make [| 45 |] in
  let m = 8 in
  let space = G.Checkphi.default_space ~m ~n:(2 * m) in
  let cp =
    Problems.Disjoint.composition_preserves_yes st ~problem:(`Checkphi space) ~m
      ~n:(2 * m) ~trials:50
  in
  check_int "check-phi crossings all break" 0 cp;
  let dj =
    Problems.Disjoint.composition_preserves_yes st ~problem:`Disjoint ~m
      ~n:(2 * m) ~trials:50
  in
  check_int "disjoint crossings all preserved" 50 dj

let test_compose_halves () =
  let v = inst [ "00" ] [ "01" ] and w = inst [ "11" ] [ "10" ] in
  let u = Problems.Disjoint.compose_halves v w in
  check_str "x from v" "00" (Util.Bitstring.to_string (I.x u 1));
  check_str "y from w" "10" (Util.Bitstring.to_string (I.y u 1));
  try
    ignore (Problems.Disjoint.compose_halves v (inst [ "0"; "1" ] [ "0"; "1" ]));
    Alcotest.fail "m mismatch accepted"
  with Invalid_argument _ -> ()

let () =
  Alcotest.run "problems"
    [
      ( "instance",
        [
          Alcotest.test_case "encode" `Quick test_encode;
          Alcotest.test_case "decode roundtrip" `Quick test_decode_roundtrip;
          Alcotest.test_case "decode errors" `Quick test_decode_errors;
          Alcotest.test_case "empty" `Quick test_empty_instance;
          Alcotest.test_case "uniform length" `Quick test_uniform_length;
        ] );
      ( "deciders",
        [
          Alcotest.test_case "multiset vs set" `Quick test_multiset_vs_set;
          Alcotest.test_case "check-sort" `Quick test_check_sort;
          Alcotest.test_case "check-phi" `Quick test_check_phi;
          QCheck_alcotest.to_alcotest prop_checksort_iff_sorted_multiset;
        ] );
      ( "intervals",
        [
          Alcotest.test_case "partition" `Quick test_intervals;
          Alcotest.test_case "m=1" `Quick test_intervals_m1;
          QCheck_alcotest.to_alcotest prop_random_element_in_interval;
        ] );
      ( "generators",
        [
          Alcotest.test_case "labelled" `Quick test_generators_labelled;
          Alcotest.test_case "set-yes multiset-no" `Quick test_set_yes_multiset_no;
        ] );
      ( "check-phi space",
        [
          Alcotest.test_case "yes/no" `Quick test_checkphi_yes_no;
          Alcotest.test_case "problems coincide on the space" `Quick
            test_checkphi_coincides_with_problems;
          Alcotest.test_case "membership" `Quick test_checkphi_member_rejects;
        ] );
      ( "short reduction",
        [
          Alcotest.test_case "preserves yes/no" `Quick test_short_reduce_preserves;
          Alcotest.test_case "output is short" `Quick test_short_is_short;
          Alcotest.test_case "linear size" `Quick test_short_size_linear;
        ] );
      ( "disjoint sets",
        [
          Alcotest.test_case "decider" `Quick test_disjoint_decider;
          Alcotest.test_case "generators" `Quick test_disjoint_generators;
          Alcotest.test_case "composition dichotomy" `Quick
            test_disjoint_composition_dichotomy;
          Alcotest.test_case "compose_halves" `Quick test_compose_halves;
        ] );
    ]
