(* Tests for the number theory used by the Theorem 8(a) fingerprint:
   overflow-safe modular arithmetic, Miller-Rabin, prime sampling,
   Bertrand primes, streaming residues. *)

module N = Numtheory

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let test_add_mod () =
  check_int "simple" 1 (N.add_mod 3 5 7);
  check_int "no overflow near 2^61" 0
    (N.add_mod (2305843009213693950) 1 2305843009213693951)

let test_mul_mod_small () =
  check_int "simple" 6 (N.mul_mod 2 3 7);
  check_int "reduction" 2 (N.mul_mod 5 6 7);
  check_int "negative operand" 5 (N.mul_mod (-2) 1 7)

let test_mul_mod_large () =
  (* against a reference computed with independent modular identities:
     (a*b) mod m where a = m-1, b = m-1: (m-1)^2 = m^2-2m+1 ≡ 1 *)
  let m = 2305843009213693951 in
  check_int "(m-1)^2 mod m = 1" 1 (N.mul_mod (m - 1) (m - 1) m);
  check_int "(m-1)*2 mod m = m-2" (m - 2) (N.mul_mod (m - 1) 2 m)

let test_pow_mod () =
  check_int "2^10 mod 1000" 24 (N.pow_mod 2 10 1000);
  check_int "x^0" 1 (N.pow_mod 12345 0 97);
  (* Fermat: a^(p-1) = 1 mod p for large prime p *)
  let p = 1000000007 in
  check_int "fermat" 1 (N.pow_mod 123456789 (p - 1) p);
  let p61 = 2305843009213693951 in
  check_int "fermat mersenne-61" 1 (N.pow_mod 987654321987654321 (p61 - 1) p61)

let test_is_prime_small () =
  let sieve = N.primes_upto 2000 in
  let by_mr = List.filter N.is_prime (List.init 1999 (fun i -> i + 2)) in
  Alcotest.(check (list int)) "MR agrees with sieve below 2000" sieve by_mr

let test_is_prime_known () =
  check "2^61-1 prime" true (N.is_prime 2305843009213693951);
  check "2^62-? composite" false (N.is_prime (2305843009213693951 - 1));
  check "carmichael 561" false (N.is_prime 561);
  check "carmichael 41041" false (N.is_prime 41041);
  check "1" false (N.is_prime 1);
  check "0" false (N.is_prime 0);
  check "10^18+9 prime" true (N.is_prime 1000000000000000009)

let test_next_prime () =
  check_int "after 10" 11 (N.next_prime 10);
  check_int "after 0" 2 (N.next_prime 0);
  check_int "after 13" 17 (N.next_prime 13)

let test_bertrand () =
  List.iter
    (fun k ->
      let p = N.bertrand_prime k in
      check (Printf.sprintf "k=%d" k) true (N.is_prime p && p > 3 * k && p <= 6 * k))
    [ 1; 2; 10; 1000; 123456 ]

let test_random_prime_le () =
  let st = Random.State.make [| 4 |] in
  for _ = 1 to 50 do
    let p = N.random_prime_le st 1000 in
    check "prime and in range" true (N.is_prime p && p <= 1000)
  done

let test_random_prime_roughly_uniform () =
  (* every prime <= 30 should appear across many samples *)
  let st = Random.State.make [| 5 |] in
  let seen = Hashtbl.create 16 in
  for _ = 1 to 2000 do
    Hashtbl.replace seen (N.random_prime_le st 30) ()
  done;
  List.iter
    (fun p -> check (Printf.sprintf "saw %d" p) true (Hashtbl.mem seen p))
    [ 2; 3; 5; 7; 11; 13; 17; 19; 23; 29 ]

let test_mod_of_bits () =
  let v = Util.Bitstring.of_string "1101" in
  check_int "13 mod 5" 3 (N.mod_of_bits v ~modulus:5);
  check_int "13 mod 2" 1 (N.mod_of_bits v ~modulus:2);
  check_int "empty" 0 (N.mod_of_bits (Util.Bitstring.of_string "") ~modulus:7)

let prop_mod_of_bits_matches_int =
  QCheck.Test.make ~name:"mod_of_bits = to_int mod p" ~count:300
    QCheck.(pair (int_bound 100000) (int_range 1 999))
    (fun (x, p) ->
      let v = Util.Bitstring.of_int ~width:20 x in
      N.mod_of_bits v ~modulus:p = x mod p)

let prop_mul_mod_matches_small =
  QCheck.Test.make ~name:"mul_mod = direct for small moduli" ~count:500
    QCheck.(triple (int_bound 10000) (int_bound 10000) (int_range 1 10000))
    (fun (a, b, m) -> N.mul_mod a b m = a * b mod m)

let prop_mul_mod_large_associative =
  (* algebraic identity in a large modulus: (a*b)*c = a*(b*c) *)
  QCheck.Test.make ~name:"mul_mod associativity at 2^61-1" ~count:200
    QCheck.(triple pos_int pos_int pos_int)
    (fun (a, b, c) ->
      let m = 2305843009213693951 in
      N.mul_mod (N.mul_mod a b m) c m = N.mul_mod a (N.mul_mod b c m) m)

let prop_pow_mod_adds_exponents =
  QCheck.Test.make ~name:"x^(a+b) = x^a * x^b mod p" ~count:200
    QCheck.(triple (int_bound 1000) (int_bound 1000) (int_bound 1000000))
    (fun (a, b, x) ->
      let p = 1000000007 in
      N.pow_mod x (a + b) p = N.mul_mod (N.pow_mod x a p) (N.pow_mod x b p) p)

let test_fingerprint_k () =
  (* k = m^3 * n * ceil(log2 (m^3 n)) *)
  check_int "m=2,n=2" (8 * 2 * 4) (N.fingerprint_k ~m:2 ~n:2);
  check "monotone" true (N.fingerprint_k ~m:4 ~n:8 > N.fingerprint_k ~m:2 ~n:8);
  try
    ignore (N.fingerprint_k ~m:(1 lsl 21) ~n:(1 lsl 21));
    Alcotest.fail "overflow accepted"
  with Invalid_argument _ -> ()

let () =
  Alcotest.run "numtheory"
    [
      ( "modular",
        [
          Alcotest.test_case "add_mod" `Quick test_add_mod;
          Alcotest.test_case "mul_mod small" `Quick test_mul_mod_small;
          Alcotest.test_case "mul_mod large" `Quick test_mul_mod_large;
          Alcotest.test_case "pow_mod" `Quick test_pow_mod;
          QCheck_alcotest.to_alcotest prop_mul_mod_matches_small;
          QCheck_alcotest.to_alcotest prop_mul_mod_large_associative;
          QCheck_alcotest.to_alcotest prop_pow_mod_adds_exponents;
        ] );
      ( "primes",
        [
          Alcotest.test_case "MR vs sieve" `Quick test_is_prime_small;
          Alcotest.test_case "known primes" `Quick test_is_prime_known;
          Alcotest.test_case "next_prime" `Quick test_next_prime;
          Alcotest.test_case "bertrand" `Quick test_bertrand;
          Alcotest.test_case "random prime" `Quick test_random_prime_le;
          Alcotest.test_case "prime coverage" `Quick test_random_prime_roughly_uniform;
        ] );
      ( "streaming",
        [
          Alcotest.test_case "mod_of_bits" `Quick test_mod_of_bits;
          QCheck_alcotest.to_alcotest prop_mod_of_bits_matches_int;
          Alcotest.test_case "fingerprint_k" `Quick test_fingerprint_k;
        ] );
    ]
