(* Tests for the XML library: serialization/parsing, the Section 4
   instance encoding, the XPath engine on Figure 1, the XQuery-lite
   evaluator for the Theorem 12 query, and the streaming filter. *)

module G = Problems.Generators
module D = Problems.Decide
module I = Problems.Instance
module Doc = Xmlq.Doc
module Xpath = Xmlq.Xpath
module Xquery = Xmlq.Xquery

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

(* ------------------------------------------------------------------ *)
(* Documents *)

let test_serialize () =
  let d = Doc.element "a" [ Doc.element "b" [ Doc.text "01" ]; Doc.text "1" ] in
  check_str "serialized" "<a><b>01</b>1</a>" (Doc.serialize d);
  check_int "stream length" 17 (Doc.stream_length d)

let test_parse_roundtrip () =
  let docs =
    [
      Doc.element "a" [];
      Doc.element "a" [ Doc.text "0101" ];
      Doc.element "a" [ Doc.element "b" []; Doc.element "b" [ Doc.text "1" ] ];
    ]
  in
  List.iter
    (fun d -> check "roundtrip" true (Doc.equal (Doc.parse (Doc.serialize d)) d))
    docs

let test_parse_errors () =
  List.iter
    (fun s ->
      try
        ignore (Doc.parse s);
        Alcotest.fail (Printf.sprintf "accepted %S" s)
      with Invalid_argument _ -> ())
    [ ""; "<a>"; "<a></b>"; "text"; "<a></a><b></b>"; "<a>></a>"; "<1a></1a>" ]

let test_instance_encoding_roundtrip () =
  let st = Random.State.make [| 90 |] in
  for _ = 1 to 30 do
    let inst, _ = G.labelled st D.Set_equality ~m:5 ~n:8 in
    let doc = Doc.of_instance inst in
    check "parse . serialize = id" true (Doc.equal (Doc.parse (Doc.serialize doc)) doc);
    check "to_instance inverts" true (I.equal (Doc.to_instance doc) inst)
  done

let test_string_value () =
  let d = Doc.element "a" [ Doc.element "b" [ Doc.text "01" ]; Doc.text "10" ] in
  check_str "concatenated" "0110" (Doc.string_value d)

(* ------------------------------------------------------------------ *)
(* XPath *)

let doc_of xs ys =
  let bs = Util.Bitstring.of_string in
  Doc.of_instance
    (I.make (Array.of_list (List.map bs xs)) (Array.of_list (List.map bs ys)))

let test_simple_paths () =
  let d = doc_of [ "00"; "01" ] [ "01"; "00" ] in
  let strings set =
    [
      Xpath.step Xpath.Child "instance";
      Xpath.step Xpath.Child set;
      Xpath.step Xpath.Child "item";
      Xpath.step Xpath.Child "string";
    ]
  in
  Alcotest.(check (list string)) "set1 strings" [ "00"; "01" ]
    (Xpath.select_values d (strings "set1"));
  Alcotest.(check (list string)) "set2 strings" [ "01"; "00" ]
    (Xpath.select_values d (strings "set2"));
  (* descendant finds items at any depth *)
  check_int "all items" 4
    (List.length (Xpath.select d [ Xpath.step Xpath.Descendant "item" ]))

let test_ancestor_axis () =
  let d = doc_of [ "0" ] [ "1" ] in
  let path =
    [
      Xpath.step Xpath.Descendant "string";
      Xpath.step Xpath.Ancestor "instance";
    ]
  in
  check_int "both strings reach the root" 1 (List.length (Xpath.select d path))

let test_figure1_semantics () =
  (* figure 1 selects set1 items whose string is missing from set2 *)
  let cases =
    [
      ([ "00"; "01" ], [ "01"; "00" ], false);  (* equal sets *)
      ([ "00"; "01" ], [ "00"; "00" ], true);  (* 01 missing *)
      ([ "00"; "00" ], [ "00"; "11" ], false);  (* subset: nothing missing *)
      ([ "11"; "11" ], [ "00"; "00" ], true);
    ]
  in
  List.iter
    (fun (xs, ys, expect) ->
      check
        (Printf.sprintf "%s vs %s" (String.concat "," xs) (String.concat "," ys))
        true
        (Xpath.matches (doc_of xs ys) Xpath.figure1 = expect))
    cases

let prop_figure1_equals_set_difference =
  QCheck.Test.make ~name:"figure1 matches iff set1 - set2 nonempty" ~count:100
    QCheck.(int_bound 100000)
    (fun seed ->
      let st = Random.State.make [| seed |] in
      let inst, _ = G.labelled st D.Set_equality ~m:5 ~n:6 in
      let xs = Array.to_list (I.xs inst) and ys = Array.to_list (I.ys inst) in
      let expect = List.exists (fun x -> not (List.mem x ys)) xs in
      Xpath.matches (Doc.of_instance inst) Xpath.figure1 = expect)

let contains_sub hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let test_pp_path () =
  let s = Format.asprintf "%a" Xpath.pp_path Xpath.figure1 in
  check "mentions the descendant step" true (contains_sub s "descendant::set1");
  check "mentions the negated predicate" true (contains_sub s "not(")

(* ------------------------------------------------------------------ *)
(* XQuery *)

let test_theorem12_query () =
  let st = Random.State.make [| 91 |] in
  for _ = 1 to 40 do
    let inst, label = G.labelled st D.Set_equality ~m:6 ~n:8 in
    let doc = Doc.of_instance inst in
    check "query decides set-equality" true
      (Xquery.holds Xquery.theorem12_query doc = label)
  done

let test_query_result_document () =
  let yes = doc_of [ "0" ] [ "0" ] in
  let no = doc_of [ "0" ] [ "1" ] in
  check_str "yes result" "<result><true></true></result>"
    (Doc.serialize (Xquery.eval Xquery.theorem12_query yes));
  check_str "no result" "<result></result>"
    (Doc.serialize (Xquery.eval Xquery.theorem12_query no))

let test_unbound_variable () =
  let q = { Xquery.wrapper = "r"; witness = "t"; cond = Xquery.Var_eq ("a", "b") } in
  try
    ignore (Xquery.holds q (doc_of [ "0" ] [ "0" ]));
    Alcotest.fail "unbound variable accepted"
  with Invalid_argument _ -> ()

(* ------------------------------------------------------------------ *)
(* Streaming filter *)

let test_streaming_filter_agrees () =
  let st = Random.State.make [| 92 |] in
  for _ = 1 to 40 do
    let inst, _ = G.labelled st D.Set_equality ~m:6 ~n:8 in
    let doc = Doc.of_instance inst in
    let expected = Xpath.matches doc Xpath.figure1 in
    let got, _ = Xmlq.Stream_filter.figure1_filter (Doc.serialize doc) in
    check "streaming = tree evaluation" true (got = expected)
  done

let test_streaming_filter_resources () =
  let st = Random.State.make [| 93 |] in
  let points =
    List.map
      (fun m ->
        let inst = G.yes_instance st D.Set_equality ~m ~n:10 in
        let got, rep =
          Xmlq.Stream_filter.figure1_filter (Doc.serialize (Doc.of_instance inst))
        in
        check "equal sets never match" false got;
        check "O(1) registers" true (rep.Xmlq.Stream_filter.registers <= 16);
        (rep.Xmlq.Stream_filter.n, rep.Xmlq.Stream_filter.scans))
      [ 8; 16; 32; 64; 128; 256 ]
  in
  let _, _, r2 = Util.Stats.log2_fit (Array.of_list points) in
  check (Printf.sprintf "log growth r2=%.3f" r2) true (r2 > 0.97)

let test_streaming_theorem12 () =
  let st = Random.State.make [| 94 |] in
  for _ = 1 to 40 do
    let inst, label = G.labelled st D.Set_equality ~m:6 ~n:8 in
    let stream = Doc.serialize (Doc.of_instance inst) in
    let got, rep = Xmlq.Stream_filter.theorem12_query stream in
    check "decides set equality" true (got = label);
    check "O(1) registers" true (rep.Xmlq.Stream_filter.registers <= 16)
  done;
  (* agrees with the tree-walking XQuery evaluator *)
  for _ = 1 to 20 do
    let inst, _ = G.labelled st D.Set_equality ~m:5 ~n:6 in
    let doc = Doc.of_instance inst in
    let got, _ = Xmlq.Stream_filter.theorem12_query (Doc.serialize doc) in
    check "streaming = XQuery" true
      (got = Xquery.holds Xquery.theorem12_query doc)
  done

let test_streaming_filter_rejects_garbage () =
  try
    ignore (Xmlq.Stream_filter.figure1_filter "<a><string>01</string></a>");
    Alcotest.fail "string outside sets accepted"
  with Invalid_argument _ -> ()

let () =
  Alcotest.run "xmlq"
    [
      ( "documents",
        [
          Alcotest.test_case "serialize" `Quick test_serialize;
          Alcotest.test_case "parse roundtrip" `Quick test_parse_roundtrip;
          Alcotest.test_case "parse errors" `Quick test_parse_errors;
          Alcotest.test_case "instance encoding" `Quick test_instance_encoding_roundtrip;
          Alcotest.test_case "string value" `Quick test_string_value;
        ] );
      ( "xpath",
        [
          Alcotest.test_case "simple paths" `Quick test_simple_paths;
          Alcotest.test_case "ancestor axis" `Quick test_ancestor_axis;
          Alcotest.test_case "figure 1 semantics" `Quick test_figure1_semantics;
          Alcotest.test_case "pretty printing" `Quick test_pp_path;
          QCheck_alcotest.to_alcotest prop_figure1_equals_set_difference;
        ] );
      ( "xquery",
        [
          Alcotest.test_case "theorem 12 query" `Quick test_theorem12_query;
          Alcotest.test_case "result document" `Quick test_query_result_document;
          Alcotest.test_case "unbound variable" `Quick test_unbound_variable;
        ] );
      ( "streaming filter",
        [
          Alcotest.test_case "agrees with tree eval" `Quick test_streaming_filter_agrees;
          Alcotest.test_case "resources" `Quick test_streaming_filter_resources;
          Alcotest.test_case "theorem 12 streaming" `Quick test_streaming_theorem12;
          Alcotest.test_case "garbage rejected" `Quick test_streaming_filter_rejects_garbage;
        ] );
    ]
