(* Tests for the util library: bit strings, permutations, the
   sortedness measure of Definition 19 and Remark 20, statistics. *)

module B = Util.Bitstring
module P = Util.Permutation

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

let qtest = QCheck_alcotest.to_alcotest

(* ------------------------------------------------------------------ *)
(* Bitstring *)

let test_of_to_string () =
  check_str "roundtrip" "0110" (B.to_string (B.of_string "0110"));
  check_str "empty" "" (B.to_string (B.of_string ""));
  Alcotest.check_raises "bad char" (Invalid_argument "Bitstring.of_string: bad char 'x'")
    (fun () -> ignore (B.of_string "01x0"))

let test_of_int () =
  check_str "5 in 4 bits" "0101" (B.to_string (B.of_int ~width:4 5));
  check_str "0 in 3 bits" "000" (B.to_string (B.of_int ~width:3 0));
  check_int "to_int" 5 (B.to_int (B.of_string "0101"));
  check_int "max" 15 (B.to_int (B.of_int ~width:4 15));
  (try
     ignore (B.of_int ~width:3 8);
     Alcotest.fail "expected range failure"
   with Invalid_argument _ -> ())

let test_compare () =
  check "lex" true (B.compare (B.of_string "0011") (B.of_string "0100") < 0);
  check "prefix" true (B.compare (B.of_string "01") (B.of_string "011") < 0);
  check "equal" true (B.compare (B.of_string "01") (B.of_string "01") = 0)

let test_get_sub_concat () =
  let v = B.of_string "10110" in
  check "msb" true (B.get v 0);
  check "bit1" false (B.get v 1);
  check_str "sub" "011" (B.to_string (B.sub v ~pos:1 ~len:3));
  check_str "concat" "1010"
    (B.to_string (B.concat [ B.of_string "10"; B.of_string "10" ]));
  check_str "zero" "0000" (B.to_string (B.zero ~width:4))

let test_fold_bits () =
  let v = B.of_string "101" in
  let collected = B.fold_bits (fun i b acc -> (i, b) :: acc) v [] in
  Alcotest.(check (list (pair int bool)))
    "msb first"
    [ (2, true); (1, false); (0, true) ]
    collected

let test_random_in_range () =
  let st = Random.State.make [| 1 |] in
  for _ = 1 to 100 do
    let v = B.random_in_range st ~width:6 ~lo:16 ~hi:32 in
    let x = B.to_int v in
    check "in range" true (x >= 16 && x < 32);
    check_int "width" 6 (B.length v)
  done

let prop_int_roundtrip =
  QCheck.Test.make ~name:"of_int/to_int roundtrip" ~count:200
    QCheck.(pair (int_bound 20) (int_bound 1000))
    (fun (extra, x) ->
      let width = extra + 10 in
      B.to_int (B.of_int ~width x) = x)

let prop_compare_matches_int =
  QCheck.Test.make ~name:"lex order = numeric order at equal widths" ~count:300
    QCheck.(pair (int_bound 4095) (int_bound 4095))
    (fun (a, b) ->
      let va = B.of_int ~width:12 a and vb = B.of_int ~width:12 b in
      Int.compare a b = Int.compare (B.compare va vb) 0
      || compare (B.compare va vb > 0) (a > b) = 0)

(* ------------------------------------------------------------------ *)
(* Permutation *)

let test_identity_inverse () =
  let id = P.identity 6 in
  check "id apply" true (List.for_all (fun i -> P.apply id i = i) [ 1; 2; 3; 4; 5; 6 ]);
  let st = Random.State.make [| 2 |] in
  for _ = 1 to 20 do
    let p = P.random st 9 in
    let q = P.inverse p in
    check "inverse" true (P.equal (P.compose p q) (P.identity 9));
    check "inverse'" true (P.equal (P.compose q p) (P.identity 9))
  done

let test_of_array_validation () =
  (try
     ignore (P.of_array [| 1; 1; 3 |]);
     Alcotest.fail "duplicate accepted"
   with Invalid_argument _ -> ());
  try
    ignore (P.of_array [| 0; 1 |]);
    Alcotest.fail "out of range accepted"
  with Invalid_argument _ -> ()

let test_reverse_binary () =
  (* m = 8: reversing 3-bit indices of 0..7 gives 0 4 2 6 1 5 3 7 *)
  let p = P.reverse_binary 8 in
  Alcotest.(check (array int))
    "phi_8"
    [| 1; 5; 3; 7; 2; 6; 4; 8 |]
    (P.to_array p);
  try
    ignore (P.reverse_binary 6);
    Alcotest.fail "non power of two accepted"
  with Invalid_argument _ -> ()

let test_sortedness_remark20 () =
  (* Remark 20: sortedness(phi_m) <= 2*sqrt(m) - 1 *)
  List.iter
    (fun m ->
      let s = P.sortedness (P.reverse_binary m) in
      let bound = int_of_float ((2.0 *. sqrt (float_of_int m)) -. 1.0) in
      check (Printf.sprintf "m=%d: %d <= %d" m s bound) true (s <= bound))
    [ 4; 16; 64; 256; 1024; 4096 ]

let test_lis () =
  check_int "lis" 4 (P.longest_increasing [| 3; 1; 2; 5; 4; 7 |]);
  check_int "lds" 3 (P.longest_decreasing [| 3; 1; 2; 5; 4; 1 |]);
  check_int "lis empty" 0 (P.longest_increasing [||]);
  check_int "sorted" 5 (P.longest_increasing [| 1; 2; 3; 4; 5 |])

let prop_sortedness_lower_bound =
  (* Erdos-Szekeres: every permutation of m has sortedness >= ceil(sqrt m) *)
  QCheck.Test.make ~name:"sortedness >= sqrt m (Erdos-Szekeres)" ~count:100
    QCheck.(int_range 1 200)
    (fun m ->
      let st = Random.State.make [| m |] in
      let s = P.sortedness (P.random st m) in
      float_of_int (s * s) >= float_of_int m -. 1e-9)

let prop_sortedness_invariant_under_reverse =
  QCheck.Test.make ~name:"sortedness(pi) = sortedness(reversed pi)" ~count:100
    QCheck.(int_range 2 64)
    (fun m ->
      let st = Random.State.make [| m * 7 |] in
      let p = P.random st m in
      let arr = P.to_array p in
      let rev = Array.init m (fun i -> arr.(m - 1 - i)) in
      P.sortedness p = P.sortedness (P.of_array rev))

(* ------------------------------------------------------------------ *)
(* Stats *)

let test_mean_stddev () =
  Alcotest.(check (float 1e-9)) "mean" 2.5 (Util.Stats.mean [| 1.0; 2.0; 3.0; 4.0 |]);
  Alcotest.(check (float 1e-9)) "stddev single" 0.0 (Util.Stats.stddev [| 5.0 |]);
  let sd = Util.Stats.stddev [| 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 |] in
  Alcotest.(check (float 1e-6)) "stddev" 2.13809 sd

let test_linear_fit () =
  let a, b, r2 = Util.Stats.linear_fit [| (1.0, 3.0); (2.0, 5.0); (3.0, 7.0) |] in
  Alcotest.(check (float 1e-9)) "slope" 2.0 a;
  Alcotest.(check (float 1e-9)) "intercept" 1.0 b;
  Alcotest.(check (float 1e-9)) "r2" 1.0 r2

let test_log2_fit () =
  (* y = 3 log2 x + 1 exactly *)
  let pts = Array.map (fun x -> (1 lsl x, (3 * x) + 1)) [| 1; 2; 3; 4; 5; 6 |] in
  let a, b, r2 = Util.Stats.log2_fit pts in
  Alcotest.(check (float 1e-6)) "slope" 3.0 a;
  Alcotest.(check (float 1e-6)) "intercept" 1.0 b;
  Alcotest.(check (float 1e-6)) "r2" 1.0 r2

let test_binomial_ci () =
  let lo, hi = Util.Stats.binomial_ci95 ~successes:50 ~trials:100 in
  check "contains p" true (lo < 0.5 && 0.5 < hi);
  let lo0, _ = Util.Stats.binomial_ci95 ~successes:0 ~trials:10 in
  Alcotest.(check (float 1e-9)) "clamped" 0.0 lo0

(* ------------------------------------------------------------------ *)
(* Table *)

let test_table () =
  let t = Util.Table.create ~title:"T" ~columns:[ "a"; "bb" ] in
  Util.Table.add_row t [ "1"; "2" ];
  Util.Table.add_rows t [ [ "333"; "4" ] ];
  let s = Util.Table.render t in
  check "has title" true (String.length s > 0 && s.[0] = 'T');
  check "aligned" true
    (List.exists (fun line -> line = "  333  4 ") (String.split_on_char '\n' s));
  Alcotest.check_raises "arity" (Invalid_argument "Table.add_row: arity mismatch")
    (fun () -> Util.Table.add_row t [ "only-one" ])

let () =
  Alcotest.run "util"
    [
      ( "bitstring",
        [
          Alcotest.test_case "of/to string" `Quick test_of_to_string;
          Alcotest.test_case "of_int/to_int" `Quick test_of_int;
          Alcotest.test_case "compare" `Quick test_compare;
          Alcotest.test_case "get/sub/concat" `Quick test_get_sub_concat;
          Alcotest.test_case "fold_bits order" `Quick test_fold_bits;
          Alcotest.test_case "random_in_range" `Quick test_random_in_range;
          qtest prop_int_roundtrip;
          qtest prop_compare_matches_int;
        ] );
      ( "permutation",
        [
          Alcotest.test_case "identity/inverse" `Quick test_identity_inverse;
          Alcotest.test_case "validation" `Quick test_of_array_validation;
          Alcotest.test_case "reverse_binary phi_8" `Quick test_reverse_binary;
          Alcotest.test_case "Remark 20 bound" `Quick test_sortedness_remark20;
          Alcotest.test_case "lis/lds" `Quick test_lis;
          qtest prop_sortedness_lower_bound;
          qtest prop_sortedness_invariant_under_reverse;
        ] );
      ( "stats",
        [
          Alcotest.test_case "mean/stddev" `Quick test_mean_stddev;
          Alcotest.test_case "linear fit" `Quick test_linear_fit;
          Alcotest.test_case "log2 fit" `Quick test_log2_fit;
          Alcotest.test_case "binomial ci" `Quick test_binomial_ci;
        ] );
      ("table", [ Alcotest.test_case "render" `Quick test_table ]);
    ]
