(* Tests for the Lemma 16 simulation: acceptance preservation,
   reversal-budget preservation, crossing accounting, probability
   agreement for nondeterministic machines, and the bound formulas. *)

module TM = Turing.Machine
module Z = Turing.Zoo
module Nlm = Listmachine.Nlm

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let det_choices _ = 0

let test_pair_equality_simulation () =
  let tm = Z.pair_equality () in
  List.iter
    (fun (inputs, expect) ->
      let r = Simulation.simulate tm ~inputs ~choices:det_choices in
      check "agreement" true r.Simulation.agreement;
      check "lm verdict" true (r.Simulation.lm_trace.Nlm.accepted = expect);
      check "lm revs <= tm revs" true
        (r.Simulation.lm_reversals <= r.Simulation.tm_ext_reversals))
    [
      ([| "0110"; "0110" |], true);
      ([| "0110"; "0111" |], false);
      ([| "0"; "0" |], true);
      ([| "01"; "011" |], false);
    ]

let test_crossings_counted () =
  let tm = Z.pair_equality () in
  let r = Simulation.simulate tm ~inputs:[| "0011"; "0011" |] ~choices:det_choices in
  (* the input head crosses exactly once: from segment v1 into v2 *)
  check_int "one crossing" 1 r.Simulation.crossings

let test_parity_simulation () =
  let tm = Z.parity_ones () in
  List.iter
    (fun (inputs, expect) ->
      let r = Simulation.simulate tm ~inputs ~choices:det_choices in
      check "agreement" true r.Simulation.agreement;
      check "verdict" true (r.Simulation.lm_trace.Nlm.accepted = expect))
    [ ([| "11"; "0" |], true); ([| "1"; "0" |], false) ]

let test_multi_segment_walk () =
  (* parity machine scans the whole input: m-1 crossings, no reversals *)
  let tm = Z.parity_ones () in
  let inputs = [| "11"; "11"; "11"; "11" |] in
  let r = Simulation.simulate tm ~inputs ~choices:det_choices in
  check_int "three crossings" 3 r.Simulation.crossings;
  check_int "no reversals either side" 0 r.Simulation.lm_reversals;
  check "agreement" true r.Simulation.agreement

let test_lm_trace_is_legal () =
  (* the produced trace obeys the Lemma 30/31 bounds for its own r *)
  let tm = Z.pair_equality () in
  let r = Simulation.simulate tm ~inputs:[| "010101"; "010101" |] ~choices:det_choices in
  let me = Listmachine.Lm_bounds.measure r.Simulation.lm_trace in
  check "run length sane" true
    (me.Listmachine.Lm_bounds.run_length
     <= Array.length r.Simulation.lm_trace.Nlm.configs);
  (* every config has consistent ids *)
  Array.iter
    (fun (c : Nlm.config) ->
      Array.iteri
        (fun tau list ->
          check_int "ids parallel to contents"
            (Array.length list)
            (Array.length c.Nlm.ids.(tau)))
        c.Nlm.contents)
    r.Simulation.lm_trace.Nlm.configs

let test_requires_normalized () =
  (* build a 2-head-move machine: simulate must refuse *)
  let b = Turing.Build.make ~name:"sync" ~ext:2 ~int_:0 ~alphabet:"01#" () in
  let s = Turing.Build.state b "s" in
  let acc = Turing.Build.state b ~final:true ~accepting:true "acc" in
  Turing.Build.on' b ~from:s ~reads:"??" ~to_:acc ~writes:"??"
    ~moves:[ TM.Right; TM.Right ];
  let tm = Turing.Build.build b in
  try
    ignore (Simulation.simulate tm ~inputs:[| "0" |] ~choices:det_choices);
    Alcotest.fail "unnormalized machine accepted"
  with Invalid_argument _ -> ()

let test_nondet_probability_agreement () =
  let st = Random.State.make [| 70 |] in
  let tm = Z.nondet_find_one () in
  let ptm, plm = Simulation.acceptance_agreement st ~samples:300 tm ~inputs:[| "11" |] in
  Alcotest.(check (float 1e-9)) "identical by construction" ptm plm;
  check "near exact 3/4" true (abs_float (ptm -. 0.75) < 0.1)

let test_bound_formulas () =
  let b = Simulation.abstract_state_bound_log2 ~d:4 ~t:2 ~r:3 ~s:4 ~m:2 ~n:4 in
  (* d t^2 r s + 3 t log2(m(n+1)) = 4*4*3*4 + 6*log2 10 = 192 + 19.93 *)
  Alcotest.(check (float 0.1)) "formula (2)" 211.93 b;
  check "choice bound grows" true
    (Simulation.choice_sequence_bound_log2 ~c:1 ~r:2 ~s:2 ~t:2 ~n:100
    > Simulation.choice_sequence_bound_log2 ~c:1 ~r:1 ~s:2 ~t:2 ~n:100)

let test_simulated_skeletons_usable () =
  (* skeleton machinery applies to simulated traces *)
  let tm = Z.pair_equality () in
  let r = Simulation.simulate tm ~inputs:[| "01"; "01" |] ~choices:det_choices in
  let sk = Listmachine.Skeleton.of_trace r.Simulation.lm_trace in
  (* the machine reads both segments: positions 1 and 2 both appear *)
  let all_positions =
    Array.to_list sk.Listmachine.Skeleton.entries
    |> List.concat_map Listmachine.Skeleton.positions_of_entry
    |> List.sort_uniq Int.compare
  in
  Alcotest.(check (list int)) "both segments touched" [ 1; 2 ] all_positions

let () =
  Alcotest.run "simulation"
    [
      ( "lemma 16",
        [
          Alcotest.test_case "pair equality" `Quick test_pair_equality_simulation;
          Alcotest.test_case "crossings" `Quick test_crossings_counted;
          Alcotest.test_case "parity" `Quick test_parity_simulation;
          Alcotest.test_case "multi-segment walk" `Quick test_multi_segment_walk;
          Alcotest.test_case "trace legality" `Quick test_lm_trace_is_legal;
          Alcotest.test_case "requires normalized" `Quick test_requires_normalized;
          Alcotest.test_case "probability agreement" `Quick
            test_nondet_probability_agreement;
          Alcotest.test_case "bound formulas" `Quick test_bound_formulas;
          Alcotest.test_case "skeletons usable" `Quick test_simulated_skeletons_usable;
        ] );
    ]
