(* Tests for the Theorem 8(b) guess-and-check machinery: completeness
   (honest certificates verify), soundness (corrupted ones do not),
   and the NST(3, O(log N), 2) resource envelope. *)

module G = Problems.Generators
module D = Problems.Decide

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let test_completeness () =
  let st = Random.State.make [| 60 |] in
  List.iter
    (fun prob ->
      for _ = 1 to 30 do
        let m = 1 + Random.State.int st 10 in
        let inst = G.yes_instance st prob ~m ~n:8 in
        match Nst.prove prob inst with
        | None -> Alcotest.fail "no witness for a yes-instance"
        | Some cert ->
            let ok, _ = Nst.verify prob inst cert in
            check "verifies" true ok
      done)
    D.all_problems

let test_no_witness_for_no_instances () =
  let st = Random.State.make [| 61 |] in
  List.iter
    (fun prob ->
      for _ = 1 to 30 do
        let inst = G.no_instance st prob ~m:8 ~n:8 in
        check "prover refuses" true (Nst.prove prob inst = None)
      done)
    D.all_problems

let test_resource_envelope () =
  let st = Random.State.make [| 62 |] in
  List.iter
    (fun prob ->
      List.iter
        (fun m ->
          let inst = G.yes_instance st prob ~m ~n:8 in
          let _, rep = Nst.decide_with_prover prob inst in
          match rep with
          | None -> Alcotest.fail "prover failed"
          | Some r ->
              check
                (Printf.sprintf "%s m=%d scans=%d" (D.problem_name prob) m r.Nst.scans)
                true (r.Nst.scans <= 3);
              check_int "two tapes" 2 r.Nst.tapes;
              check "O(1) registers" true (r.Nst.internal_registers <= 10))
        [ 2; 8; 24 ])
    D.all_problems

let test_soundness_corruptions () =
  let st = Random.State.make [| 63 |] in
  List.iter
    (fun prob ->
      for _ = 1 to 25 do
        let inst = G.yes_instance st prob ~m:8 ~n:8 in
        match Nst.prove prob inst with
        | None -> Alcotest.fail "no witness"
        | Some cert ->
            (* Swap_pi desynchronizes copies: always caught by the
               backward consistency scan. Wrong_value flips a claimed
               value: always caught by the forward checks. *)
            List.iter
              (fun c ->
                let ok, _ = Nst.verify prob inst (Nst.corrupt st c cert) in
                check "corruption caught" false ok)
              [ Nst.Swap_pi; Nst.Wrong_value ]
      done)
    D.all_problems

let test_duplicate_target_caught_for_perm_problems () =
  (* breaking injectivity of pi is caught for the permutation-witness
     problems whenever values are distinct *)
  let st = Random.State.make [| 64 |] in
  let caught = ref 0 and total = ref 0 in
  for _ = 1 to 30 do
    let inst = G.yes_instance st D.Multiset_equality ~m:8 ~n:10 in
    match Nst.prove D.Multiset_equality inst with
    | None -> ()
    | Some cert ->
        incr total;
        let ok, _ =
          Nst.verify D.Multiset_equality inst (Nst.corrupt st Nst.Duplicate_target cert)
        in
        if not ok then incr caught
  done;
  (* with 10-bit random values collisions are rare; expect nearly all caught *)
  check (Printf.sprintf "caught %d/%d" !caught !total) true
    (!caught >= !total - 2)

let test_cross_problem_certificates () =
  (* a multiset certificate for an unsorted instance must fail CHECK-SORT
     verification *)
  let st = Random.State.make [| 65 |] in
  let rec unsorted () =
    let inst = G.yes_instance st D.Multiset_equality ~m:8 ~n:8 in
    if D.check_sort inst then unsorted () else inst
  in
  for _ = 1 to 10 do
    let inst = unsorted () in
    match Nst.prove D.Multiset_equality inst with
    | None -> Alcotest.fail "no multiset witness"
    | Some cert ->
        let ok, _ = Nst.verify D.Check_sort inst cert in
        check "unsorted rejected by checksort verifier" false ok
  done

let test_decide_with_prover_agrees () =
  let st = Random.State.make [| 66 |] in
  List.iter
    (fun prob ->
      for _ = 1 to 40 do
        let m = 1 + Random.State.int st 8 in
        let inst, label = G.labelled st prob ~m ~n:6 in
        let got, _ = Nst.decide_with_prover prob inst in
        check "agrees with reference" true (got = label)
      done)
    D.all_problems

let test_empty_instance () =
  let inst = Problems.Instance.decode "" in
  let got, _ = Nst.decide_with_prover D.Set_equality inst in
  check "empty yes" true got

let () =
  Alcotest.run "nst"
    [
      ( "theorem 8(b)",
        [
          Alcotest.test_case "completeness" `Quick test_completeness;
          Alcotest.test_case "no witness for no" `Quick test_no_witness_for_no_instances;
          Alcotest.test_case "NST(3, O(log N), 2) envelope" `Quick test_resource_envelope;
          Alcotest.test_case "soundness vs corruptions" `Quick test_soundness_corruptions;
          Alcotest.test_case "duplicate targets caught" `Quick
            test_duplicate_target_caught_for_perm_problems;
          Alcotest.test_case "cross-problem certificates" `Quick
            test_cross_problem_certificates;
          Alcotest.test_case "decide agrees with reference" `Quick
            test_decide_with_prover_agrees;
          Alcotest.test_case "empty instance" `Quick test_empty_instance;
        ] );
    ]
