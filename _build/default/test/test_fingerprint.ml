(* Tests for the Theorem 8(a) fingerprint algorithm: resource envelope
   co-RST(2, O(log N), 1), one-sidedness (no false negatives), error
   decay, Claim 1 collision rates, amplification. *)

module G = Problems.Generators
module D = Problems.Decide
module I = Problems.Instance

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let st0 () = Random.State.make [| 50 |]

let test_no_false_negatives () =
  let st = st0 () in
  for _ = 1 to 300 do
    let m = 1 + Random.State.int st 12 in
    let inst = G.yes_instance st D.Multiset_equality ~m ~n:10 in
    let ok, _, _ = Fingerprint.run st inst in
    check "yes accepted" true ok
  done

let test_resource_envelope () =
  let st = st0 () in
  List.iter
    (fun (m, n) ->
      let inst = G.yes_instance st D.Multiset_equality ~m ~n in
      let _, rep, params = Fingerprint.run st inst in
      check_int "two scans" 2 rep.Fingerprint.scans;
      check_int "one tape" 1 rep.Fingerprint.tapes;
      (* internal bits are O(log N): generous constant 40 *)
      let n_sz = float_of_int params.Fingerprint.input_size in
      check
        (Printf.sprintf "bits=%d at N=%d" rep.Fingerprint.internal_bits
           params.Fingerprint.input_size)
        true
        (float_of_int rep.Fingerprint.internal_bits <= 40.0 *. (log n_sz /. log 2.0)))
    [ (4, 8); (16, 16); (64, 24); (128, 12) ]

let test_parameters_well_formed () =
  let st = st0 () in
  let inst = G.yes_instance st D.Multiset_equality ~m:16 ~n:12 in
  let _, _, p = Fingerprint.run st inst in
  check_int "m detected" 16 p.Fingerprint.m;
  check_int "n detected" 12 p.Fingerprint.n;
  check_int "N detected" (I.size inst) p.Fingerprint.input_size;
  check "p1 prime <= k" true
    (Numtheory.is_prime p.Fingerprint.p1 && p.Fingerprint.p1 <= p.Fingerprint.k);
  check "p2 in (3k,6k]" true
    (Numtheory.is_prime p.Fingerprint.p2
    && p.Fingerprint.p2 > 3 * p.Fingerprint.k
    && p.Fingerprint.p2 <= 6 * p.Fingerprint.k);
  check "x unit" true (p.Fingerprint.x >= 1 && p.Fingerprint.x < p.Fingerprint.p2)

let test_false_positive_rate_small () =
  let st = st0 () in
  let rate = Fingerprint.false_positive_rate st ~m:8 ~n:10 ~trials:500 in
  check (Printf.sprintf "rate=%.4f" rate) true (rate <= 0.05)

let test_error_decays_with_m () =
  let st = st0 () in
  let r2 = Fingerprint.false_positive_rate st ~m:2 ~n:8 ~trials:600 in
  let r16 = Fingerprint.false_positive_rate st ~m:16 ~n:8 ~trials:600 in
  check (Printf.sprintf "%.4f >= %.4f" r2 r16) true (r2 >= r16)

let test_claim1_collision_rate () =
  let st = st0 () in
  let rate = Fingerprint.residue_collision_rate st ~m:8 ~n:10 ~trials:400 in
  (* Claim 1: O(1/m); with m=8 the constant makes this well below 0.2 *)
  check (Printf.sprintf "claim1 rate=%.4f" rate) true (rate <= 0.2)

let test_amplification () =
  let st = st0 () in
  (* amplified runs keep perfect completeness *)
  for _ = 1 to 50 do
    let inst = G.yes_instance st D.Multiset_equality ~m:6 ~n:8 in
    check "amplified yes" true (Fingerprint.amplified st ~rounds:3 inst)
  done;
  (* and shrink the false positive rate on adversarial tiny instances *)
  let fp_single = ref 0 and fp_amp = ref 0 in
  for _ = 1 to 400 do
    let inst = G.no_instance st D.Multiset_equality ~m:2 ~n:4 in
    if Fingerprint.decide st inst then incr fp_single;
    if Fingerprint.amplified st ~rounds:4 inst then incr fp_amp
  done;
  check "amplification does not hurt" true (!fp_amp <= !fp_single)

let test_detects_multiset_difference_with_equal_sets () =
  (* multisets differ but sets coincide: fingerprinting must reject
     (with high probability over repetitions) *)
  let st = st0 () in
  let misses = ref 0 in
  for _ = 1 to 100 do
    let inst = G.set_yes_multiset_no st ~m:8 ~n:8 in
    if Fingerprint.amplified st ~rounds:5 inst then incr misses
  done;
  check (Printf.sprintf "misses=%d" !misses) true (!misses <= 2)

let test_degenerate () =
  let st = st0 () in
  let ok, rep, _ = Fingerprint.run st (I.decode "") in
  check "empty accepted" true ok;
  check "empty scan count" true (rep.Fingerprint.scans <= 2);
  let ok1, _, _ = Fingerprint.run st (I.decode "0#0#") in
  check "singleton yes" true ok1

let test_order_invariance () =
  (* permuting the second half never changes the verdict (the sums are
     order-invariant) *)
  let st = st0 () in
  for _ = 1 to 20 do
    let inst = G.yes_instance st D.Multiset_equality ~m:6 ~n:8 in
    let ys = I.ys inst in
    let shuffled = Array.copy ys in
    for i = Array.length shuffled - 1 downto 1 do
      let j = Random.State.int st (i + 1) in
      let tmp = shuffled.(i) in
      shuffled.(i) <- shuffled.(j);
      shuffled.(j) <- tmp
    done;
    let inst' = I.make (I.xs inst) shuffled in
    let ok, _, _ = Fingerprint.run st inst' in
    check "still accepted" true ok
  done

let () =
  Alcotest.run "fingerprint"
    [
      ( "theorem 8(a)",
        [
          Alcotest.test_case "no false negatives" `Quick test_no_false_negatives;
          Alcotest.test_case "resource envelope" `Quick test_resource_envelope;
          Alcotest.test_case "parameters" `Quick test_parameters_well_formed;
          Alcotest.test_case "false positive rate" `Quick test_false_positive_rate_small;
          Alcotest.test_case "error decays with m" `Slow test_error_decays_with_m;
          Alcotest.test_case "claim 1 collisions" `Quick test_claim1_collision_rate;
          Alcotest.test_case "amplification" `Quick test_amplification;
          Alcotest.test_case "set-equal multiset-unequal" `Quick
            test_detects_multiset_difference_with_equal_sets;
          Alcotest.test_case "degenerate" `Quick test_degenerate;
          Alcotest.test_case "order invariance" `Quick test_order_invariance;
        ] );
    ]
