(* Tests for relational algebra on streams (Theorem 11): reference vs
   streaming agreement, the symmetric-difference query as SET-EQUALITY,
   and the O(log N) scan envelope. *)

module R = Relalg
module G = Problems.Generators
module D = Problems.Decide

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let sort_tuples r = List.sort compare (List.map Array.to_list r.R.tuples)

let rel_equal a b = a.R.schema = b.R.schema && sort_tuples a = sort_tuples b

let db0 =
  [
    ( "R1",
      R.relation ~schema:[ "a"; "b" ]
        [ [| "1"; "x" |]; [| "2"; "y" |]; [| "3"; "x" |]; [| "4"; "w" |] ] );
    ("R2", R.relation ~schema:[ "a"; "b" ] [ [| "2"; "y" |]; [| "5"; "z" |] ]);
    ("S", R.relation ~schema:[ "c" ] [ [| "p" |]; [| "q" |]; [| "r" |] ]);
    ("Empty", R.relation ~schema:[ "c" ] []);
  ]

(* ------------------------------------------------------------------ *)
(* Reference evaluator *)

let test_select () =
  let r = R.eval db0 (R.Select (R.Eq (R.Attr "b", R.Const "x"), R.Rel "R1")) in
  check_int "two rows" 2 (List.length r.R.tuples)

let test_select_compound_pred () =
  let p = R.And (R.Neq (R.Attr "b", R.Const "x"), R.Not (R.Lt (R.Attr "a", R.Const "3"))) in
  let r = R.eval db0 (R.Select (p, R.Rel "R1")) in
  check "only (4,w)" true (sort_tuples r = [ [ "4"; "w" ] ])

let test_project_dedups () =
  let r = R.eval db0 (R.Project ([ "b" ], R.Rel "R1")) in
  check "three distinct" true (sort_tuples r = [ [ "w" ]; [ "x" ]; [ "y" ] ])

let test_rename () =
  let r = R.eval db0 (R.Rename ([ ("a", "id") ], R.Rel "R1")) in
  Alcotest.(check (list string)) "schema" [ "id"; "b" ] r.R.schema

let test_set_ops () =
  let u = R.eval db0 (R.Union (R.Rel "R1", R.Rel "R2")) in
  check_int "union" 5 (List.length u.R.tuples);
  let d = R.eval db0 (R.Diff (R.Rel "R1", R.Rel "R2")) in
  check_int "diff" 3 (List.length d.R.tuples);
  let i = R.eval db0 (R.Inter (R.Rel "R1", R.Rel "R2")) in
  check "inter" true (sort_tuples i = [ [ "2"; "y" ] ])

let test_product () =
  let p = R.eval db0 (R.Product (R.Rel "R2", R.Rel "S")) in
  check_int "cardinality" 6 (List.length p.R.tuples);
  Alcotest.(check (list string)) "schema" [ "a"; "b"; "c" ] p.R.schema;
  let pe = R.eval db0 (R.Product (R.Rel "R2", R.Rel "Empty")) in
  check_int "times empty" 0 (List.length pe.R.tuples)

let test_schema_validation () =
  (try
     ignore (R.eval db0 (R.Union (R.Rel "R1", R.Rel "S")));
     Alcotest.fail "union schema mismatch accepted"
   with Invalid_argument _ -> ());
  (try
     ignore (R.eval db0 (R.Product (R.Rel "R1", R.Rel "R1")));
     Alcotest.fail "overlapping product accepted"
   with Invalid_argument _ -> ());
  try
    ignore (R.eval db0 (R.Rel "Nope"));
    Alcotest.fail "unknown relation accepted"
  with Invalid_argument _ -> ()

(* ------------------------------------------------------------------ *)
(* Streaming agreement *)

let exprs_to_check =
  [
    R.Rel "R1";
    R.Select (R.Eq (R.Attr "b", R.Const "x"), R.Rel "R1");
    R.Project ([ "b" ], R.Rel "R1");
    R.Rename ([ ("a", "id") ], R.Rel "R1");
    R.Union (R.Rel "R1", R.Rel "R2");
    R.Diff (R.Rel "R1", R.Rel "R2");
    R.Diff (R.Rel "R2", R.Rel "R1");
    R.Inter (R.Rel "R1", R.Rel "R2");
    R.Product (R.Rel "R2", R.Rel "S");
    R.Product (R.Rel "S", R.Rename ([ ("c", "e") ], R.Rel "Empty"));
    R.symmetric_difference "R1" "R2";
    R.Project ([ "c" ], R.Product (R.Rel "R2", R.Rel "S"));
    R.Union (R.Project ([ "b" ], R.Rel "R1"), R.Project ([ "b" ], R.Rel "R2"));
  ]

let test_streaming_matches_reference () =
  List.iter
    (fun e ->
      let expected = R.eval db0 e in
      let got, _ = R.eval_streaming db0 e in
      check "streaming = reference" true (rel_equal expected got))
    exprs_to_check

let prop_streaming_matches_on_random_dbs =
  QCheck.Test.make ~name:"streaming = reference on random databases" ~count:60
    QCheck.(int_bound 100000)
    (fun seed ->
      let st = Random.State.make [| seed |] in
      let random_rel () =
        let n = Random.State.int st 8 in
        R.relation ~schema:[ "a"; "b" ]
          (List.init n (fun _ ->
               [|
                 string_of_int (Random.State.int st 4);
                 string_of_int (Random.State.int st 3);
               |]))
      in
      let db = [ ("R1", random_rel ()); ("R2", random_rel ()) ] in
      List.for_all
        (fun e ->
          let expected = R.eval db e in
          let got, _ = R.eval_streaming db e in
          rel_equal expected got)
        [
          R.Union (R.Rel "R1", R.Rel "R2");
          R.Diff (R.Rel "R1", R.Rel "R2");
          R.Inter (R.Rel "R1", R.Rel "R2");
          R.symmetric_difference "R1" "R2";
          R.Project ([ "a" ], R.Rel "R1");
        ])

(* ------------------------------------------------------------------ *)
(* Theorem 11 *)

let test_qprime_decides_set_equality () =
  let st = Random.State.make [| 80 |] in
  for _ = 1 to 40 do
    let inst, label = G.labelled st D.Set_equality ~m:8 ~n:8 in
    let db = R.instance_db inst in
    let res, _ = R.eval_streaming db (R.symmetric_difference "R1" "R2") in
    check "empty iff equal" true ((res.R.tuples = []) = label)
  done

let test_scan_growth () =
  let st = Random.State.make [| 81 |] in
  let points =
    List.map
      (fun m ->
        let inst = G.yes_instance st D.Set_equality ~m ~n:10 in
        let db = R.instance_db inst in
        let _, rep = R.eval_streaming db (R.symmetric_difference "R1" "R2") in
        (rep.R.n, rep.R.scans))
      [ 16; 32; 64; 128; 256; 512 ]
  in
  let slope, _, r2 = Util.Stats.log2_fit (Array.of_list points) in
  check (Printf.sprintf "r2=%.3f" r2) true (r2 > 0.97);
  check (Printf.sprintf "slope=%.1f" slope) true (slope < 80.0);
  (* O(1) registers *)
  let inst = G.yes_instance st D.Set_equality ~m:64 ~n:10 in
  let _, rep = R.eval_streaming (R.instance_db inst) (R.symmetric_difference "R1" "R2") in
  check "O(1) registers" true (rep.R.registers <= 16)

let test_natural_join () =
  let db =
    [
      ( "Emp",
        R.relation ~schema:[ "name"; "dept" ]
          [ [| "ada"; "db" |]; [| "grace"; "os" |]; [| "tony"; "db" |] ] );
      ( "Dept",
        R.relation ~schema:[ "dept"; "floor" ]
          [ [| "db"; "3" |]; [| "os"; "1" |]; [| "pl"; "2" |] ] );
    ]
  in
  let j = R.Join ([ "dept" ], R.Rel "Emp", R.Rel "Dept") in
  let r = R.eval db j in
  Alcotest.(check (list string)) "schema" [ "name"; "dept"; "floor" ] r.R.schema;
  check_int "three matches" 3 (List.length r.R.tuples);
  check "ada on 3" true
    (List.exists (fun t -> Array.to_list t = [ "ada"; "db"; "3" ]) r.R.tuples);
  (* streaming agrees *)
  let got, rep = R.eval_streaming db j in
  check "streaming join" true (rel_equal r got);
  check "metered" true (rep.R.scans > 0);
  (* key validation *)
  (try
     ignore (R.eval db (R.Join ([ "nope" ], R.Rel "Emp", R.Rel "Dept")));
     Alcotest.fail "bad key accepted"
   with Invalid_argument _ -> ());
  try
    ignore (R.eval db (R.Join ([], R.Rel "Emp", R.Rel "Dept")));
    Alcotest.fail "empty key list accepted"
  with Invalid_argument _ -> ()

let test_join_empty_side () =
  let db =
    [
      ("A", R.relation ~schema:[ "k"; "x" ] [ [| "1"; "a" |] ]);
      ("B", R.relation ~schema:[ "k"; "y" ] []);
    ]
  in
  let r = R.eval db (R.Join ([ "k" ], R.Rel "A", R.Rel "B")) in
  check_int "empty join" 0 (List.length r.R.tuples);
  let got, _ = R.eval_streaming db (R.Join ([ "k" ], R.Rel "A", R.Rel "B")) in
  check "streaming agrees" true (rel_equal r got)

let test_relation_validation () =
  (try
     ignore (R.relation ~schema:[ "a"; "a" ] []);
     Alcotest.fail "duplicate attribute accepted"
   with Invalid_argument _ -> ());
  try
    ignore (R.relation ~schema:[ "a" ] [ [| "1"; "2" |] ]);
    Alcotest.fail "arity mismatch accepted"
  with Invalid_argument _ -> ()

let () =
  Alcotest.run "relalg"
    [
      ( "reference",
        [
          Alcotest.test_case "select" `Quick test_select;
          Alcotest.test_case "compound predicates" `Quick test_select_compound_pred;
          Alcotest.test_case "project dedups" `Quick test_project_dedups;
          Alcotest.test_case "rename" `Quick test_rename;
          Alcotest.test_case "set ops" `Quick test_set_ops;
          Alcotest.test_case "product" `Quick test_product;
          Alcotest.test_case "validation" `Quick test_schema_validation;
          Alcotest.test_case "relation validation" `Quick test_relation_validation;
          Alcotest.test_case "natural join" `Quick test_natural_join;
          Alcotest.test_case "join with empty side" `Quick test_join_empty_side;
        ] );
      ( "streaming",
        [
          Alcotest.test_case "matches reference" `Quick test_streaming_matches_reference;
          QCheck_alcotest.to_alcotest prop_streaming_matches_on_random_dbs;
        ] );
      ( "theorem 11",
        [
          Alcotest.test_case "Q' decides SET-EQUALITY" `Quick
            test_qprime_decides_set_equality;
          Alcotest.test_case "O(log N) scans" `Quick test_scan_growth;
        ] );
    ]
