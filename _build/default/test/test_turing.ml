(* Tests for the Turing machine model: Definition 1 resource accounting,
   Definition 17 choice-driven runs, Lemma 18 probabilities,
   normalization, and the zoo machines. *)

module M = Turing.Machine
module A = Turing.Accept
module Z = Turing.Zoo

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let accepted st = st.M.outcome = M.Accepted

(* ------------------------------------------------------------------ *)
(* Core semantics *)

let test_validation () =
  let bad () =
    M.create ~name:"bad" ~state_names:[| "a" |] ~start:0 ~final:[| false |]
      ~accepting:[| true |] ~ext:1 ~int_:0 []
  in
  (try
     ignore (bad ());
     Alcotest.fail "accepting non-final accepted"
   with Invalid_argument _ -> ());
  try
    ignore
      (M.create ~name:"bad2" ~state_names:[| "a" |] ~start:0 ~final:[| true |]
         ~accepting:[| true |] ~ext:1 ~int_:0
         [ (0, "x", { M.next_state = 0; writes = "x"; moves = [| M.Stay |] }) ]);
    Alcotest.fail "transition out of final state accepted"
  with Invalid_argument _ -> ()

let test_pair_equality () =
  let m = Z.pair_equality () in
  List.iter
    (fun (input, expect) ->
      let st = M.run_deterministic m ~input in
      check input true (accepted st = expect))
    [
      ("0110#0110#", true);
      ("0110#0111#", false);
      ("##", true);
      ("0#0#", true);
      ("0#1#", false);
      ("01#011#", false);
      ("011#01#", false);
      ("1#", false);
    ]

let test_pair_equality_resources () =
  let m = Z.pair_equality () in
  (* (3, O(1), 2)-bounded: 3 scans regardless of input size *)
  List.iter
    (fun n ->
      let v = String.concat "" (List.init n (fun i -> if i mod 2 = 0 then "0" else "1")) in
      let st = M.run_deterministic m ~input:(v ^ "#" ^ v ^ "#") in
      check_int (Printf.sprintf "scans at n=%d" n) 3 (M.scans st);
      check_int "no internal tapes" 0 (M.total_int_space st))
    [ 1; 8; 64; 256 ]

let test_parity () =
  let m = Z.parity_ones () in
  check "even" true (accepted (M.run_deterministic m ~input:"101101"));
  check "odd" false (accepted (M.run_deterministic m ~input:"10110"));
  check "empty" true (accepted (M.run_deterministic m ~input:""));
  check_int "one scan" 1 (M.scans (M.run_deterministic m ~input:"111111"))

let test_copy_to_internal_space () =
  let m = Z.copy_to_internal () in
  List.iter
    (fun n ->
      let input = String.make n '1' in
      let st = M.run_deterministic m ~input in
      check "accepts" true (accepted st);
      check_int "internal space = n+1" (n + 1) (M.total_int_space st))
    [ 1; 5; 20 ]

let test_ones_mod4 () =
  let m = Z.ones_mod4 () in
  List.iter
    (fun (input, expect) ->
      let st = M.run_deterministic m ~input in
      check (Printf.sprintf "%S" input) true (accepted st = expect))
    [
      ("", true);
      ("1", false);
      ("11", false);
      ("111", false);
      ("1111", true);
      ("1010#101", true);
      ("10101#011", false);
      ("11111111", true);
      ("0#0#", true);
      ("1#1#1#1#1#", false);
    ]

let test_ones_mod4_internal_space_logarithmic () =
  let m = Z.ones_mod4 () in
  let space_for k =
    let st = M.run_deterministic m ~input:(String.make k '1') in
    M.total_int_space st
  in
  (* counter of b bits needs marker + b cells + one carry overshoot *)
  List.iter
    (fun k ->
      let s = space_for k in
      let logk = int_of_float (ceil (log (float_of_int (k + 2)) /. log 2.0)) in
      check (Printf.sprintf "k=%d space=%d" k s) true (s <= logk + 3))
    [ 1; 4; 16; 64; 256; 1024 ];
  (* and it genuinely grows (uses the internal tape) *)
  check "grows" true (space_for 1024 > space_for 4)

let test_stuck_and_fuel () =
  let m = Z.parity_ones () in
  (* '^' is outside the machine's alphabet: no transition applies *)
  let st = M.run_deterministic m ~input:"1^1" in
  check "stuck" true (st.M.outcome = M.Stuck);
  let st2 = M.run ~fuel:2 m ~input:"11111" ~choices:(fun _ -> 0) in
  check "out of fuel" true (st2.M.outcome = M.Out_of_fuel)

(* ------------------------------------------------------------------ *)
(* Nondeterminism and probabilities *)

let test_coin_probability () =
  let m = Z.coin () in
  let p = A.exact_probability m ~input:"0" in
  Alcotest.(check (float 1e-9)) "exact 1/2" 0.5 p.A.probability;
  check_int "two runs" 2 p.A.runs_explored

let test_find_one_probability () =
  let m = Z.nondet_find_one () in
  (* k ones: acceptance probability 1 - 2^-k *)
  List.iter
    (fun (input, expect) ->
      let p = A.exact_probability m ~input in
      Alcotest.(check (float 1e-9)) input expect p.A.probability)
    [ ("", 0.0); ("0", 0.0); ("1", 0.5); ("11", 0.75); ("0101", 0.75); ("111", 0.875) ]

let test_estimate_matches_exact () =
  let m = Z.nondet_find_one () in
  let st = Random.State.make [| 17 |] in
  let est = A.estimate_probability st ~samples:4000 m ~input:"11" in
  check "estimate near 3/4" true (abs_float (est -. 0.75) < 0.05)

let test_choice_driven_runs_deterministic () =
  (* Definition 17: same choice sequence, same run *)
  let m = Z.nondet_find_one () in
  let choices i = (i * 7) + 3 in
  let a = M.run m ~input:"1101" ~choices in
  let b = M.run m ~input:"1101" ~choices in
  check "same outcome" true (a.M.outcome = b.M.outcome);
  check_int "same steps" a.M.steps b.M.steps

let test_one_sided_checker () =
  let m = Z.coin () in
  let st = Random.State.make [| 18 |] in
  (* coin accepts everything with prob 1/2: fine as (1/2,0)-RTM only if
     negatives are never accepted - a negative input IS accepted
     sometimes, so flag it *)
  (match A.one_sided_monte_carlo st m ~positives:[ "1" ] ~negatives:[ "0" ] with
  | `False_positive _ -> ()
  | `Ok | `Low_acceptance _ -> Alcotest.fail "coin should false-positive");
  match A.one_sided_monte_carlo st m ~positives:[ "1" ] ~negatives:[] with
  | `Ok -> ()
  | `False_positive _ | `Low_acceptance _ -> Alcotest.fail "coin accepts half"

(* ------------------------------------------------------------------ *)
(* Bounds *)

let test_check_bounded () =
  let m = Z.pair_equality () in
  let r = A.check_bounded ~r:(fun _ -> 3) ~s:(fun _ -> 0) m ~input:"01#01#"
      ~choices:(fun _ -> 0)
  in
  check "within (3,0)" true r.A.within;
  let r2 = A.check_bounded ~r:(fun _ -> 2) ~s:(fun _ -> 0) m ~input:"01#01#"
      ~choices:(fun _ -> 0)
  in
  check "violates (2,0)" false r2.A.within

let test_lemma3_bound () =
  (* every run is shorter than the Lemma 3 bound with c generous *)
  let m = Z.pair_equality () in
  List.iter
    (fun n ->
      let v = String.make n '0' in
      let input = v ^ "#" ^ v ^ "#" in
      let st = M.run_deterministic m ~input in
      let bound = A.lemma3_bound ~n:(String.length input) ~r:3 ~s:1 ~t:2 ~c:4 in
      check "run length below bound" true (float_of_int st.M.steps <= bound))
    [ 1; 4; 16 ]

(* ------------------------------------------------------------------ *)
(* Normalization *)

let two_head_machine () =
  (* copies input tape to tape 2 moving both heads simultaneously *)
  let b = Turing.Build.make ~name:"sync-copy" ~ext:2 ~int_:0 ~alphabet:"01" () in
  let s = Turing.Build.state b "scan" in
  let acc = Turing.Build.state b ~final:true ~accepting:true "acc" in
  List.iter
    (fun c ->
      let cs = String.make 1 c in
      Turing.Build.on' b ~from:s ~reads:(cs ^ "_") ~to_:s ~writes:(cs ^ cs)
        ~moves:[ M.Right; M.Right ])
    [ '0'; '1' ];
  Turing.Build.on' b ~from:s ~reads:"__" ~to_:acc ~writes:"__" ~moves:[ M.Stay; M.Stay ];
  Turing.Build.build b

let test_normalize () =
  let m = two_head_machine () in
  check "not normalized" false (M.is_normalized m);
  let nm = M.normalize m in
  check "normalized" true (M.is_normalized nm);
  List.iter
    (fun input ->
      let a = M.run_deterministic m ~input in
      let b = M.run_deterministic nm ~input in
      check "same outcome" true (a.M.outcome = b.M.outcome);
      Alcotest.(check (array int))
        "same reversals" a.M.ext_reversals b.M.ext_reversals;
      (* tape contents also agree *)
      Alcotest.(check string)
        "tape 2 content"
        (M.tape_contents m a.M.final_config 1)
        (M.tape_contents nm b.M.final_config 1))
    [ ""; "1"; "0110"; "111000" ]

let test_normalize_idempotent_on_normalized () =
  let m = Z.parity_ones () in
  check "already normalized" true (M.is_normalized m);
  check "normalize = same machine" true (M.normalize m == m)

(* ------------------------------------------------------------------ *)
(* Closure operations *)

let test_complement () =
  let par = Z.parity_ones () in
  let odd = Turing.Closure.complement par in
  List.iter
    (fun input ->
      let a = accepted (M.run_deterministic par ~input) in
      let b = accepted (M.run_deterministic odd ~input) in
      check input true (a = not b))
    [ ""; "1"; "11"; "10101"; "1111" ];
  (* complement of a nondeterministic machine is rejected *)
  try
    ignore (Turing.Closure.complement (Z.coin ()));
    Alcotest.fail "complement of NTM accepted"
  with Invalid_argument _ -> ()

let test_complement_preserves_resources () =
  let par = Z.parity_ones () in
  let odd = Turing.Closure.complement par in
  let a = M.run_deterministic par ~input:"110101" in
  let b = M.run_deterministic odd ~input:"110101" in
  check_int "same scans" (M.scans a) (M.scans b);
  check_int "same steps" a.M.steps b.M.steps

let test_nondet_union () =
  (* parity-even OR contains-a-one *)
  let u = Turing.Closure.nondet_union (Z.parity_ones ()) (Z.nondet_find_one ()) in
  let accepts input =
    let p = A.exact_probability u ~input in
    p.A.probability > 0.0
  in
  check "even, no ones: left accepts" true (accepts "00");
  check "odd ones: right accepts" true (accepts "100");
  check "empty: left accepts" true (accepts "");
  (* a word where neither accepts does not exist for this pair (odd
     ones implies contains a one), so check branch counts instead *)
  let p = A.exact_probability u ~input:"1" in
  (* branch left: parity odd -> reject; branch right: 1/2 accept.
     total = 1/2 * 0 + 1/2 * 1/2 = 1/4 *)
  Alcotest.(check (float 1e-9)) "probability algebra" 0.25 p.A.probability

let test_nondet_union_validation () =
  try
    ignore (Turing.Closure.nondet_union (Z.parity_ones ()) (Z.pair_equality ()));
    Alcotest.fail "tape-count mismatch accepted"
  with Invalid_argument _ -> ()

let () =
  Alcotest.run "turing"
    [
      ( "semantics",
        [
          Alcotest.test_case "validation" `Quick test_validation;
          Alcotest.test_case "pair equality" `Quick test_pair_equality;
          Alcotest.test_case "pair equality resources" `Quick
            test_pair_equality_resources;
          Alcotest.test_case "parity" `Quick test_parity;
          Alcotest.test_case "internal space" `Quick test_copy_to_internal_space;
          Alcotest.test_case "ones mod 4" `Quick test_ones_mod4;
          Alcotest.test_case "counter space O(log n)" `Quick
            test_ones_mod4_internal_space_logarithmic;
          Alcotest.test_case "stuck / fuel" `Quick test_stuck_and_fuel;
        ] );
      ( "randomized",
        [
          Alcotest.test_case "coin exact" `Quick test_coin_probability;
          Alcotest.test_case "find-one exact" `Quick test_find_one_probability;
          Alcotest.test_case "estimate vs exact" `Quick test_estimate_matches_exact;
          Alcotest.test_case "choice-driven determinism" `Quick
            test_choice_driven_runs_deterministic;
          Alcotest.test_case "one-sided contract checker" `Quick test_one_sided_checker;
        ] );
      ( "bounds",
        [
          Alcotest.test_case "check_bounded" `Quick test_check_bounded;
          Alcotest.test_case "lemma 3" `Quick test_lemma3_bound;
        ] );
      ( "normalization",
        [
          Alcotest.test_case "serializes multi-head moves" `Quick test_normalize;
          Alcotest.test_case "idempotent" `Quick test_normalize_idempotent_on_normalized;
        ] );
      ( "render",
        [
          Alcotest.test_case "config and run rendering" `Quick (fun () ->
              let m = Z.pair_equality () in
              let cfg =
                Turing.Render.config_to_string m (M.initial_config m "01#01#")
              in
              check "shows tapes" true
                (String.split_on_char '\n' cfg
                |> List.exists (fun l ->
                       String.length l > 6 && String.sub l 0 6 = "tape 1"));
              let run =
                Turing.Render.run_to_string ~max_steps:3 m ~input:"0#0#"
                  ~choices:(fun _ -> 0)
              in
              check "shows outcome" true
                (String.split_on_char '\n' run
                |> List.exists (fun l ->
                       List.mem "ACCEPTS" (String.split_on_char ' ' l))));
        ] );
      ( "closure",
        [
          Alcotest.test_case "complement" `Quick test_complement;
          Alcotest.test_case "complement resources" `Quick
            test_complement_preserves_resources;
          Alcotest.test_case "nondeterministic union" `Quick test_nondet_union;
          Alcotest.test_case "union validation" `Quick test_nondet_union_validation;
        ] );
    ]
